// GraphDB shootout: run the same ingest-then-search workload across all
// six GraphDB Service implementations (paper §4.1) and print a comparison
// in the spirit of Figures 5.3 and 5.4 — Array and HashMap in memory,
// MySQL/BerkeleyDB substitutes, StreamDB, and grDB out of core.
//
//	go run ./examples/dbshootout
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mssg"
)

func main() {
	dir, err := os.MkdirTemp("", "mssg-shootout-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mssg.PubMedS(0.002)
	edges, err := mssg.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := mssg.ComputeStats(cfg.Name, edges, cfg.Vertices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d vertices, %d undirected edges\n\n", cfg.Name, stats.Vertices, stats.UndEdges)

	queries := [][2]mssg.VertexID{{1, 4000}, {12, 7300}, {200, 6500}, {33, 5001}, {2500, 7000}}

	fmt.Printf("%-8s  %12s  %12s  %14s\n", "backend", "ingest", "search(5q)", "edges/s")
	for _, backend := range mssg.Backends() {
		eng, err := mssg.New(mssg.Config{
			Backends: 8,
			Backend:  backend,
			Dir:      fmt.Sprintf("%s/%s", dir, backend),
			Ingest:   mssg.IngestConfig{AddReverse: true},
		})
		if err != nil {
			log.Fatal(err)
		}

		t0 := time.Now()
		if _, err := eng.IngestEdges(edges); err != nil {
			log.Fatal(err)
		}
		ingestTime := time.Since(t0)

		var searchTime time.Duration
		var traversed int64
		for _, q := range queries {
			t1 := time.Now()
			res, err := eng.BFS(mssg.BFSConfig{Source: q[0], Dest: q[1]})
			if err != nil {
				log.Fatal(err)
			}
			searchTime += time.Since(t1)
			traversed += res.EdgesTraversed
		}
		if err := eng.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %12s  %12s  %14.0f\n",
			backend, ingestTime.Round(time.Millisecond), searchTime.Round(time.Millisecond),
			float64(traversed)/searchTime.Seconds())
	}
	fmt.Println("\npaper shape: StreamDB fastest ingest; MySQL slowest everywhere;")
	fmt.Println("search time Array < HashMap < grDB < BerkeleyDB << MySQL")
}
