// Quickstart: build a small graph, ingest it into a 4-node MSSG cluster
// backed by grDB, and run a parallel out-of-core BFS between two
// vertices.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"mssg"
)

func main() {
	dir, err := os.MkdirTemp("", "mssg-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// An engine is a simulated cluster: 4 back-end storage nodes, each
	// with its own grDB instance, plus the ingestion and query services.
	eng, err := mssg.New(mssg.Config{
		Backends: 4,
		Backend:  "grdb",
		Dir:      dir,
		Ingest:   mssg.IngestConfig{AddReverse: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// A small collaboration graph: 0-1-2-3 chain plus shortcuts.
	edges := []mssg.Edge{
		{Src: 0, Dst: 1},
		{Src: 1, Dst: 2},
		{Src: 2, Dst: 3},
		{Src: 3, Dst: 4},
		{Src: 1, Dst: 5},
		{Src: 5, Dst: 4},
	}
	if _, err := eng.IngestEdges(edges); err != nil {
		log.Fatal(err)
	}

	for _, q := range [][2]mssg.VertexID{{0, 4}, {0, 3}, {2, 5}} {
		res, err := eng.BFS(mssg.BFSConfig{Source: q[0], Dest: q[1]})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shortest path %d -> %d: length %d (traversed %d edges)\n",
			q[0], q[1], res.PathLength, res.EdgesTraversed)
	}

	// The same search, pipelined (the paper's Algorithm 2).
	res, err := eng.BFS(mssg.BFSConfig{Source: 0, Dest: 4, Pipelined: true, Threshold: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipelined 0 -> 4: length %d\n", res.PathLength)
}
