// PubMed-style relationship analysis: generate a scale-free citation
// graph shaped like the paper's PubMed-S extract (power-law body plus a
// giant hub), store it out-of-core in grDB across 8 back-end nodes, and
// answer relationship queries — "how many citation hops separate
// publication A from publication B?" — with the parallel BFS.
//
//	go run ./examples/pubmed
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mssg"
)

func main() {
	dir, err := os.MkdirTemp("", "mssg-pubmed-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 0.1% of the real PubMed-S vertex count keeps this example quick;
	// raise the scale to stress the out-of-core path.
	cfg := mssg.PubMedS(0.001)
	edges, err := mssg.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := mssg.ComputeStats(cfg.Name, edges, cfg.Vertices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation graph: %d publications, %d citations, max degree %d (hub %d), avg degree %.1f\n",
		stats.Vertices, stats.UndEdges, stats.MaxDegree, stats.MaxDegreeVertex, stats.AvgDegree)

	eng, err := mssg.New(mssg.Config{
		Backends: 8,
		Backend:  "grdb",
		Dir:      dir,
		Ingest:   mssg.IngestConfig{AddReverse: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	start := time.Now()
	if _, err := eng.IngestEdges(edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested in %s\n\n", time.Since(start).Round(time.Millisecond))

	// Relationship queries. The small-world property means almost every
	// pair is within a handful of hops — and long queries touch a large
	// share of the graph, which is what makes out-of-core storage hard.
	queries := [][2]mssg.VertexID{
		{17, 3000},
		{42, 2719},
		{5, stats.MaxDegreeVertex}, // to the hub: always short
		{1234, 987},
	}
	for _, q := range queries {
		t0 := time.Now()
		res, err := eng.BFS(mssg.BFSConfig{Source: q[0], Dest: q[1]})
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(t0)
		share := float64(res.EdgesTraversed) / float64(2*stats.UndEdges) * 100
		if res.Found {
			fmt.Printf("pub %4d ~ pub %4d: %d hops  (%6.2f%% of edges touched, %s)\n",
				q[0], q[1], res.PathLength, share, el.Round(time.Microsecond))
		} else {
			fmt.Printf("pub %4d ~ pub %4d: unconnected (%s)\n", q[0], q[1], el.Round(time.Microsecond))
		}
	}

	// Relationship analysis proper: not just how far, but through which
	// publications the connection runs.
	res, err := eng.BFS(mssg.BFSConfig{Source: 17, Dest: 3000, ReturnPath: true})
	if err != nil {
		log.Fatal(err)
	}
	if res.Found {
		fmt.Printf("\ncitation chain 17 ~ 3000: %v\n", res.Path)
	}

	// Neighbourhood profile: how much of the corpus sits within 2 hops
	// of a random publication? (Small-world: usually a large share.)
	kh, err := mssg.KHop(eng, mssg.KHopConfig{Source: 42, K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within 2 hops of pub 42: %d of %d publications (per level: %v)\n",
		kh.Total, stats.Vertices, kh.PerLevel)
}
