// Semantic social-network analysis in the style of the paper's Figure
// 1.1: an ontology restricts which vertex types may be linked by which
// edge types (a 'Person' attends a 'Meeting'; a 'Meeting' occurs on a
// 'Date'; a 'Person' never connects to a 'Date' directly). The example
// builds an ontology-validated semantic graph, stores it in MSSG, and
// uses BFS relationship analysis to find how two people are connected
// through shared meetings and travel.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"os"

	"mssg"
)

// Vertex ID layout: type is encoded in the high decimal digit range so
// the example stays readable. Real deployments would keep a directory
// service; MSSG itself only sees opaque 61-bit IDs.
const (
	personBase  = 1000
	meetingBase = 2000
	dateBase    = 3000
	travelBase  = 4000
)

func main() {
	// The Figure 1.1 ontology.
	ont := mssg.NewOntology()
	person := ont.DefineVertexType("Person")
	meeting := ont.DefineVertexType("Meeting")
	date := ont.DefineVertexType("Date")
	travel := ont.DefineVertexType("Travel")
	attends := ont.DefineEdgeType("attends")
	occurredOn := ont.DefineEdgeType("occurred on")
	travels := ont.DefineEdgeType("travels")
	ont.AllowSymmetric(person, attends, meeting)
	ont.AllowSymmetric(meeting, occurredOn, date)
	ont.AllowSymmetric(person, travels, travel)
	ont.AllowSymmetric(travel, occurredOn, date)

	typeOf := func(v mssg.VertexID) mssg.TypeID {
		switch {
		case v >= travelBase:
			return travel
		case v >= dateBase:
			return date
		case v >= meetingBase:
			return meeting
		default:
			return person
		}
	}

	// The instance graph: people attend meetings, meetings occur on
	// dates, people take trips, trips occur on dates.
	type rel struct {
		src, dst mssg.VertexID
		et       mssg.TypeID
	}
	rels := []rel{
		{personBase + 1, meetingBase + 1, attends},
		{personBase + 2, meetingBase + 1, attends},
		{personBase + 2, meetingBase + 2, attends},
		{personBase + 3, meetingBase + 2, attends},
		{personBase + 4, meetingBase + 3, attends},
		{meetingBase + 1, dateBase + 1, occurredOn},
		{meetingBase + 2, dateBase + 2, occurredOn},
		{meetingBase + 3, dateBase + 2, occurredOn},
		{personBase + 4, travelBase + 1, travels},
		{travelBase + 1, dateBase + 1, occurredOn},
	}

	// Validate every edge against the ontology before ingestion — the
	// "blueprint" role of Figure 1.1.
	var edges []mssg.Edge
	for _, r := range rels {
		te := mssg.TypedEdge{
			Edge:     mssg.Edge{Src: r.src, Dst: r.dst},
			SrcType:  typeOf(r.src),
			EdgeType: r.et,
			DstType:  typeOf(r.dst),
		}
		if err := ont.Validate(te); err != nil {
			log.Fatalf("rejected by ontology: %v", err)
		}
		edges = append(edges, te.Edge)
	}
	// An illegal edge (Person directly to Date) must be rejected.
	bad := mssg.TypedEdge{
		Edge:     mssg.Edge{Src: personBase + 1, Dst: dateBase + 1},
		SrcType:  person,
		EdgeType: attends,
		DstType:  date,
	}
	if err := ont.Validate(bad); err != nil {
		fmt.Printf("ontology correctly rejected: %v\n\n", err)
	} else {
		log.Fatal("ontology failed to reject an illegal edge")
	}

	dir, err := os.MkdirTemp("", "mssg-social-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := mssg.New(mssg.Config{
		Backends: 3,
		Backend:  "grdb",
		Dir:      dir,
		Ingest:   mssg.IngestConfig{AddReverse: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.IngestEdges(edges); err != nil {
		log.Fatal(err)
	}

	// Relationship analysis: how closely are two people associated?
	// person1 ~ person2: share meeting1             => 2 hops
	// person1 ~ person3: meeting1 - person2 - meeting2 => 4 hops
	// person1 ~ person4: meeting1 - date1 - travel1   => 4 hops
	pairs := [][2]mssg.VertexID{
		{personBase + 1, personBase + 2},
		{personBase + 1, personBase + 3},
		{personBase + 1, personBase + 4},
	}
	for _, q := range pairs {
		res, err := eng.BFS(mssg.BFSConfig{Source: q[0], Dest: q[1]})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("person%d ~ person%d: association distance %d\n",
			q[0]-personBase, q[1]-personBase, res.PathLength)
	}

	// Typed traversal: store each vertex's ontology type as GraphDB
	// metadata, then ask for associations that avoid Date vertices —
	// person1 and person4 are only connected through date1, so the
	// filtered search must fail while the unfiltered one succeeds.
	for _, db := range eng.Databases() {
		for v := mssg.VertexID(personBase); v < travelBase+100; v++ {
			if err := db.SetMetadata(v, int32(typeOf(v))); err != nil {
				log.Fatal(err)
			}
		}
	}
	res, err := eng.BFS(mssg.BFSConfig{
		Source: personBase + 1, Dest: personBase + 4,
		Filter: mssg.MetaFilter{Op: mssg.FilterNotEqual, Ref: int32(date)},
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Found {
		log.Fatalf("date-free association should not exist, got distance %d", res.PathLength)
	}
	fmt.Println("\nperson1 ~ person4 excluding Date vertices: no association (as the ontology implies)")

	// K-hop profile: how much of the network is within 2 hops of person2?
	kh, err := mssg.KHop(eng, mssg.KHopConfig{Source: personBase + 2, K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within 2 hops of person2: %d entities (per level: %v)\n", kh.Total, kh.PerLevel)
}
