module mssg

go 1.22
