package mssg_test

// End-to-end CLI test: build the real binaries and drive the
// gen → ingest → query pipeline across processes, verifying the database
// directory written by one process is readable by the next (the
// deployment story of README.md).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the CLI binaries once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI end-to-end skipped in -short mode")
	}
	binDir := t.TempDir()
	for _, tool := range []string{"mssg-gen", "mssg-ingest", "mssg-query", "mssg-bench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return binDir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	binDir := buildTools(t)
	work := t.TempDir()
	edgeFile := filepath.Join(work, "graph.txt")
	dbDir := filepath.Join(work, "db")

	// Generate.
	run(t, filepath.Join(binDir, "mssg-gen"),
		"-preset", "pubmed-s", "-scale", "0.0005", "-out", edgeFile)
	st, err := os.Stat(edgeFile)
	if err != nil || st.Size() == 0 {
		t.Fatalf("edge file not written: %v", err)
	}

	// Ingest across 4 back-ends with 2 front-ends.
	out := run(t, filepath.Join(binDir, "mssg-ingest"),
		"-in", edgeFile, "-dir", dbDir, "-backend", "grdb",
		"-backends", "4", "-frontends", "2")
	if !strings.Contains(out, "ingested") {
		t.Fatalf("unexpected ingest output: %s", out)
	}

	// Query from a separate process against the persisted database.
	out = run(t, filepath.Join(binDir, "mssg-query"),
		"-dir", dbDir, "-backend", "grdb", "-backends", "4",
		"-source", "0", "-dest", "500")
	if !strings.Contains(out, "path length") {
		t.Fatalf("query found no path: %s", out)
	}

	// Pipelined random queries.
	out = run(t, filepath.Join(binDir, "mssg-query"),
		"-dir", dbDir, "-backend", "grdb", "-backends", "4",
		"-random", "3", "-maxvertex", "1800", "-pipelined")
	if strings.Count(out, "->") < 2 {
		t.Fatalf("random queries produced too little output: %s", out)
	}
}

func TestCLIBinaryFormatRoundTrip(t *testing.T) {
	binDir := buildTools(t)
	work := t.TempDir()
	binFile := filepath.Join(work, "graph.bin")
	dbDir := filepath.Join(work, "db")

	run(t, filepath.Join(binDir, "mssg-gen"),
		"-vertices", "500", "-m", "3", "-seed", "7", "-format", "binary", "-out", binFile)
	run(t, filepath.Join(binDir, "mssg-ingest"),
		"-in", binFile, "-format", "binary", "-dir", dbDir,
		"-backend", "bdb", "-backends", "2")
	out := run(t, filepath.Join(binDir, "mssg-query"),
		"-dir", dbDir, "-backend", "bdb", "-backends", "2",
		"-source", "0", "-dest", "100")
	if !strings.Contains(out, "path length") {
		t.Fatalf("binary-format pipeline broken: %s", out)
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	binDir := buildTools(t)
	out := run(t, filepath.Join(binDir, "mssg-bench"),
		"-scale", "0.0005", "-queries", "3", "table5.1")
	for _, want := range []string{"PubMed-S'", "Syn'", "table5.1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bench output missing %q:\n%s", want, out)
		}
	}
}
