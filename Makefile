# Developer/CI entry points. `make ci` is the gate every change must
# pass: vet, build, the full test suite under the race detector (the
# concurrency-conformance suite only means something with -race), a
# short fuzz pass over the edge codec, and the headline benchmarks.

GO ?= go

.PHONY: ci vet build test race fuzz bench bench-workers clean

ci: vet build race fuzz bench-workers

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the edge codec (regression corpus + 10s of
# exploration per target).
fuzz:
	$(GO) test -run xxx -fuzz FuzzEdgeRoundTrip -fuzztime 10s ./internal/graph
	$(GO) test -run xxx -fuzz FuzzEdgeDecodeNoPanic -fuzztime 10s ./internal/graph

# Paper figure/table regenerations (slow; one full experiment per bench).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig|BenchmarkTable' -benchtime=1x .

# Serial vs parallel fringe expansion on the shootout graph.
bench-workers:
	$(GO) test -run xxx -bench BenchmarkBFSWorkers -benchtime=1x .

clean:
	$(GO) clean ./...
