# Developer/CI entry points. `make ci` is the gate every change must
# pass: vet, build, the full test suite under the race detector (the
# concurrency-conformance suite only means something with -race), a
# short fuzz pass over the edge codec, and the headline benchmarks.

GO ?= go

.PHONY: ci vet build test race fuzz chaos bench bench-json bench-workers clean

ci: vet build race chaos fuzz bench-workers

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: chaos
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos-conformance suite: replay three fixed seeded fault plans over
# both fabrics under the race detector (DESIGN.md "Failure model").
chaos:
	MSSG_CHAOS_SEEDS=1,7,42 $(GO) test -race -count=1 -run 'TestChaos' ./internal/chaos

# Short fuzz pass over the edge codec and the TCP frame decoder
# (regression corpus + 10s of exploration per target).
fuzz:
	$(GO) test -run xxx -fuzz FuzzEdgeRoundTrip -fuzztime 10s ./internal/graph
	$(GO) test -run xxx -fuzz FuzzEdgeDecodeNoPanic -fuzztime 10s ./internal/graph
	$(GO) test -run xxx -fuzz FuzzTCPFrameDecode -fuzztime 10s ./internal/cluster

# Paper figure/table regenerations (slow; one full experiment per bench).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig|BenchmarkTable' -benchtime=1x .

# Machine-readable benchmark sweep: runs every experiment through
# cmd/mssg-bench and writes BENCH_<timestamp>.json (tables plus ingest
# throughput, per-level BFS latency percentiles, and cache hit rates
# from the observability registry).
bench-json:
	$(GO) run ./cmd/mssg-bench -json auto all

# Serial vs parallel fringe expansion on the shootout graph.
bench-workers:
	$(GO) test -run xxx -bench BenchmarkBFSWorkers -benchtime=1x .

clean:
	$(GO) clean ./...
