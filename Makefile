# Developer/CI entry points. `make ci` is the gate every change must
# pass: vet, build, the full test suite under the race detector (the
# concurrency-conformance suite only means something with -race), the
# chaos and crash conformance suites, a short fuzz pass over the wire
# and storage codecs, and the headline benchmarks.

GO ?= go

.PHONY: ci vet build test race fuzz chaos crash failover migrate tenants scrub bench bench-json bench-workers bench-qps bench-io bench-migration clean

# ci keeps the fuzz leg to a 5s-per-target smoke; run `make fuzz` for
# the full exploration pass.
ci: FUZZTIME = 5s
ci: vet build race chaos crash failover migrate tenants fuzz bench-workers

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: chaos crash failover migrate tenants
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos-conformance suite: replay three fixed seeded fault plans over
# both fabrics under the race detector (DESIGN.md "Failure model").
chaos:
	MSSG_CHAOS_SEEDS=1,7,42 $(GO) test -race -count=1 -run 'TestChaos' ./internal/chaos

# Crash-conformance suite: kill the durable store at every filesystem
# operation under four torn-write policies, recover, and verify against
# the oracle (DESIGN.md "Durability & crash recovery"). Set
# MSSG_CRASH_STRIDE=N to subsample the sweep.
crash:
	$(GO) test -race -count=1 -run 'TestKillAtEverySyncpoint|TestCrashDuringRecovery|TestTorn' ./internal/crash
	$(GO) test -race -count=1 -run 'TestIngestCrashResumeSweep' ./internal/ingest

# Replication/failover conformance suite: replica-reroute equality,
# all-replicas-dead degradation, and the mid-query kill scenarios,
# under the race detector (DESIGN.md "Replication & failover").
failover:
	$(GO) test -race -count=1 -run 'TestFailover|TestChaosFailover' ./internal/query ./internal/chaos

# Elastic-topology conformance suite: live join/drain migrations with
# BFS running throughout, a kill sweep crashing the source, destination
# and coordinator at every migration phase boundary, and crash-then-
# resume from the durable checkpoint, all under the race detector
# (DESIGN.md "Elastic topology & live migration").
migrate:
	MSSG_CHAOS_SEEDS=1,7,42 $(GO) test -race -count=1 -run 'TestChaosMigrate' ./internal/chaos
	$(GO) test -race -count=1 -run 'TestMigrate|TestDurableMigration|TestPlacementHolder|TestManifest' ./internal/ingest
	$(GO) test -race -count=1 -run 'TestEngineElasticTopology' ./internal/core

# Multi-tenant serving conformance suite: fair-share flood/weight/
# isolation/deadline scheduling tests plus the end-to-end result-cache
# test (oracle equality, ingest-commit and epoch-advance invalidation),
# under the race detector (DESIGN.md "Multi-tenant serving").
tenants:
	$(GO) test -race -count=1 -run 'TestTenant|TestDeadlineStartsAtExecution|TestEngineResultCache|TestEngineCacheSkips' ./internal/query
	$(GO) test -race -count=1 -run 'TestQueryCacheEndToEnd' ./internal/core

# Offline checksum scrub of every node database under DIR (quarantines
# and repairs corrupt blocks): make scrub DIR=/data/mssg
scrub:
	$(GO) run ./cmd/mssg-bench -check $(DIR)

# Short fuzz pass over the wire and storage codecs (regression corpus +
# FUZZTIME of exploration per target): make fuzz FUZZTIME=5s
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz FuzzEdgeRoundTrip -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run xxx -fuzz FuzzEdgeDecodeNoPanic -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run xxx -fuzz FuzzTCPFrameDecode -fuzztime $(FUZZTIME) ./internal/cluster
	$(GO) test -run xxx -fuzz FuzzRecordScan -fuzztime $(FUZZTIME) ./internal/storage/wal
	$(GO) test -run xxx -fuzz FuzzManifestDecode -fuzztime $(FUZZTIME) ./internal/graphdb/grdb
	$(GO) test -run xxx -fuzz FuzzStateRecordDecode -fuzztime $(FUZZTIME) ./internal/graphdb/grdb
	$(GO) test -run xxx -fuzz FuzzWALRecordDecode -fuzztime $(FUZZTIME) ./internal/graphdb/reldb
	$(GO) test -run xxx -fuzz FuzzPlacementDecode -fuzztime $(FUZZTIME) ./internal/ingest
	$(GO) test -run xxx -fuzz FuzzFringeChunkDecode -fuzztime $(FUZZTIME) ./internal/query
	$(GO) test -run xxx -fuzz FuzzFringeChunkRoundTrip -fuzztime $(FUZZTIME) ./internal/query
	$(GO) test -run xxx -fuzz FuzzCanonicalParams -fuzztime $(FUZZTIME) ./internal/query/qcache
	$(GO) test -run xxx -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME) ./internal/storage/compress
	$(GO) test -run xxx -fuzz FuzzDecodeArbitrary -fuzztime $(FUZZTIME) ./internal/storage/compress
	$(GO) test -run xxx -fuzz FuzzStoreDecode -fuzztime $(FUZZTIME) ./internal/storage/compress

# Paper figure/table regenerations (slow; one full experiment per bench).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig|BenchmarkTable' -benchtime=1x .

# Machine-readable benchmark sweep: runs every experiment through
# cmd/mssg-bench and writes BENCH_<timestamp>.json (tables plus ingest
# throughput, per-level BFS latency percentiles, and cache hit rates
# from the observability registry).
bench-json:
	$(GO) run ./cmd/mssg-bench -json auto all

# Serial vs parallel fringe expansion on the shootout graph.
bench-workers:
	$(GO) test -run xxx -bench BenchmarkBFSWorkers -benchtime=1x .

# Concurrent mixed-workload benchmark: a resident query engine serving
# BFS + k-hop queries at several concurrency levels, then the
# two-tenant fair-share workload (solo vs contended vs cached, with the
# fairness ratio in the table notes); QPS, latency percentiles,
# per-tenant breakdowns, and the result-cache summary land in
# BENCH_<timestamp>.json (DESIGN.md §16).
bench-qps:
	$(GO) run ./cmd/mssg-bench -json auto -queries 200 -concurrency 8 qps tenants

# Semi-external I/O engine ablation (DESIGN.md §13): prefetch ×
# compression × shared SLRU cache on grDB under the harsh disk model;
# the table plus registry counters land in BENCH_<timestamp>.json.
bench-io:
	$(GO) run ./cmd/mssg-bench -json auto io

# Query latency under a live shard migration (DESIGN.md §15): the same
# BFS workload quiescent, during a join migration, and after its epoch
# commit; the three-phase table lands in BENCH_<timestamp>.json.
bench-migration:
	$(GO) run ./cmd/mssg-bench -json auto migration

clean:
	$(GO) clean ./...
