package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"mssg/internal/experiments"
	"mssg/internal/obs"
)

// report is the machine-readable counterpart of the printed tables: the
// experiment results plus the observability registry's view of the run
// (ingest throughput, per-level BFS latency percentiles, cache hit
// rates). It is written as BENCH_<timestamp>.json (or a caller-chosen
// path) so sweeps can be diffed and plotted without scraping text.
type report struct {
	Generated   string             `json:"generated"`
	Scale       float64            `json:"scale"`
	Queries     int                `json:"queries"`
	Workers     int                `json:"workers"`
	Interrupted bool               `json:"interrupted,omitempty"`
	Experiments []experimentResult `json:"experiments"`
	Ingest      ingestSummary      `json:"ingest"`
	BFS         bfsSummary         `json:"bfs"`
	Engine      engineSummary      `json:"engine"`
	Cache       cacheSummary       `json:"cache"`
	Metrics     obs.Snapshot       `json:"metrics"`
}

type experimentResult struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMs int64      `json:"elapsed_ms"`
}

type ingestSummary struct {
	Runs           int64            `json:"runs"`
	EdgesRouted    int64            `json:"edges_routed"`
	WindowsApplied int64            `json:"windows_applied"`
	TotalNs        int64            `json:"total_ns"`
	EdgesPerSec    float64          `json:"edges_per_sec"`
	RunNs          obs.HistSnapshot `json:"run_ns"`
	WindowBuildNs  obs.HistSnapshot `json:"window_build_ns"`
	DeclusterSkewX int64            `json:"decluster_skew_x1000"`
}

type bfsSummary struct {
	Runs            int64                       `json:"runs"`
	PartialCoverage int64                       `json:"partial_coverage"`
	FringeSize      obs.HistSnapshot            `json:"fringe_size"`
	ExpandNs        obs.HistSnapshot            `json:"expand_ns"`
	Levels          map[string]obs.HistSnapshot `json:"levels,omitempty"`
}

// engineSummary aggregates the resident query scheduler's admission
// counters and latency: QPS here is total completed queries over total
// submit-to-finish time actually spent in queries (concurrency already
// folded in by the overlap), and the percentiles come straight from the
// query.engine.query_ns histogram.
type engineSummary struct {
	Admitted  int64            `json:"admitted"`
	Rejected  int64            `json:"rejected"`
	Completed int64            `json:"completed"`
	Cancelled int64            `json:"cancelled"`
	Failed    int64            `json:"failed"`
	QPS       float64          `json:"qps"`
	QueryNs   obs.HistSnapshot `json:"query_ns"`
	ExecNs    obs.HistSnapshot `json:"exec_ns"`
}

type cacheSummary struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// buildReport assembles the report from the finished experiments and the
// process-wide registry.
func buildReport(p *experiments.Params, results []experimentResult, interrupted bool) *report {
	snap := obs.Default().Snapshot()

	var ing ingestSummary
	ing.RunNs = snap.Histograms["ingest.run_ns"]
	ing.WindowBuildNs = snap.Histograms["ingest.window_build_ns"]
	ing.Runs = ing.RunNs.Count
	ing.TotalNs = ing.RunNs.Sum
	ing.WindowsApplied = snap.Counters["ingest.windows_applied"]
	ing.DeclusterSkewX = snap.Counters["ingest.decluster_skew_x1000"]
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "ingest.dest_") && strings.HasSuffix(name, ".edges") {
			ing.EdgesRouted += v
		}
	}
	if ing.TotalNs > 0 {
		ing.EdgesPerSec = float64(ing.EdgesRouted) / (float64(ing.TotalNs) / 1e9)
	}

	bfs := bfsSummary{
		Runs:            snap.Counters["query.bfs.runs"],
		PartialCoverage: snap.Counters["query.bfs.partial_coverage"],
		FringeSize:      snap.Histograms["query.bfs.fringe_size"],
		ExpandNs:        snap.Histograms["query.bfs.level_expand_ns"],
	}
	levelNames := make([]string, 0, 16)
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "query.bfs.level_") && strings.HasSuffix(name, ".expand_ns") {
			levelNames = append(levelNames, name)
		}
	}
	sort.Strings(levelNames)
	if len(levelNames) > 0 {
		bfs.Levels = make(map[string]obs.HistSnapshot, len(levelNames))
		for _, name := range levelNames {
			bfs.Levels[name] = snap.Histograms[name]
		}
	}

	eng := engineSummary{
		Admitted:  snap.Counters["query.engine.admitted"],
		Rejected:  snap.Counters["query.engine.rejected"],
		Completed: snap.Counters["query.engine.completed"],
		Cancelled: snap.Counters["query.engine.cancelled"],
		Failed:    snap.Counters["query.engine.failed"],
		QueryNs:   snap.Histograms["query.engine.query_ns"],
		ExecNs:    snap.Histograms["query.engine.exec_ns"],
	}
	if eng.ExecNs.Sum > 0 {
		eng.QPS = float64(eng.Completed) / (float64(eng.ExecNs.Sum) / 1e9)
	}

	var ca cacheSummary
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "cache.") {
			switch {
			case strings.HasSuffix(name, ".hits"):
				ca.Hits += v
			case strings.HasSuffix(name, ".misses"):
				ca.Misses += v
			}
		}
	}
	if total := ca.Hits + ca.Misses; total > 0 {
		ca.HitRate = float64(ca.Hits) / float64(total)
	}

	return &report{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Scale:       p.Scale,
		Queries:     p.Queries,
		Workers:     p.Workers,
		Interrupted: interrupted,
		Experiments: results,
		Ingest:      ing,
		BFS:         bfs,
		Engine:      eng,
		Cache:       ca,
		Metrics:     snap,
	}
}

// writeReport marshals the report to path. "auto" picks a timestamped
// BENCH_*.json name in the working directory.
func writeReport(r *report, path string) (string, error) {
	if path == "auto" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
