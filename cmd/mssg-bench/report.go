package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"mssg/internal/experiments"
	"mssg/internal/obs"
)

// report is the machine-readable counterpart of the printed tables: the
// experiment results plus the observability registry's view of the run
// (ingest throughput, per-level BFS latency percentiles, cache hit
// rates). It is written as BENCH_<timestamp>.json (or a caller-chosen
// path) so sweeps can be diffed and plotted without scraping text.
type report struct {
	Generated   string             `json:"generated"`
	Provenance  provenanceInfo     `json:"provenance"`
	Scale       float64            `json:"scale"`
	Queries     int                `json:"queries"`
	Workers     int                `json:"workers"`
	Interrupted bool               `json:"interrupted,omitempty"`
	Experiments []experimentResult `json:"experiments"`
	Ingest      ingestSummary      `json:"ingest"`
	BFS         bfsSummary         `json:"bfs"`
	Engine      engineSummary      `json:"engine"`
	Cache       cacheSummary       `json:"cache"`
	ResultCache resultCacheSummary `json:"result_cache"`
	Metrics     obs.Snapshot       `json:"metrics"`
}

// provenanceInfo pins what produced a BENCH json, so two sweeps can be
// compared knowing they ran the same code against the same shape of
// cluster: the VCS commit, the toolchain, the committed placement epoch
// at the end of the run, and the effective workload configuration.
type provenanceInfo struct {
	GitCommit      string      `json:"git_commit,omitempty"`
	GitDirty       bool        `json:"git_dirty,omitempty"`
	GoVersion      string      `json:"go_version"`
	PlacementEpoch int64       `json:"placement_epoch"`
	Config         benchConfig `json:"config"`
}

// benchConfig is the effective experiment configuration (flag values
// after defaulting).
type benchConfig struct {
	Scale       float64 `json:"scale"`
	Queries     int     `json:"queries"`
	Workers     int     `json:"workers"`
	Concurrency int     `json:"concurrency"`
	Prefetch    bool    `json:"prefetch,omitempty"`
	Compress    bool    `json:"compress,omitempty"`
	SharedCache bool    `json:"shared_cache,omitempty"`
	FaultSeed   int64   `json:"fault_seed,omitempty"`
	// Tenants lists the tenant names that submitted queries during the
	// run (scraped from the query.tenant.* metric family).
	Tenants []string `json:"tenants,omitempty"`
}

type experimentResult struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMs int64      `json:"elapsed_ms"`
}

type ingestSummary struct {
	Runs           int64            `json:"runs"`
	EdgesRouted    int64            `json:"edges_routed"`
	WindowsApplied int64            `json:"windows_applied"`
	TotalNs        int64            `json:"total_ns"`
	EdgesPerSec    float64          `json:"edges_per_sec"`
	RunNs          obs.HistSnapshot `json:"run_ns"`
	WindowBuildNs  obs.HistSnapshot `json:"window_build_ns"`
	DeclusterSkewX int64            `json:"decluster_skew_x1000"`
}

type bfsSummary struct {
	Runs            int64                       `json:"runs"`
	PartialCoverage int64                       `json:"partial_coverage"`
	FringeSize      obs.HistSnapshot            `json:"fringe_size"`
	ExpandNs        obs.HistSnapshot            `json:"expand_ns"`
	Levels          map[string]obs.HistSnapshot `json:"levels,omitempty"`
}

// engineSummary aggregates the resident query scheduler's admission
// counters and latency: QPS here is total completed queries over total
// submit-to-finish time actually spent in queries (concurrency already
// folded in by the overlap), and the percentiles come straight from the
// query.engine.query_ns histogram.
type engineSummary struct {
	Admitted  int64            `json:"admitted"`
	Rejected  int64            `json:"rejected"`
	Completed int64            `json:"completed"`
	Cancelled int64            `json:"cancelled"`
	Failed    int64            `json:"failed"`
	CacheHits int64            `json:"cache_hits"`
	QPS       float64          `json:"qps"`
	QueryNs   obs.HistSnapshot `json:"query_ns"`
	ExecNs    obs.HistSnapshot `json:"exec_ns"`
	// QueueWaitNs is admission-to-execution delay, excluded from each
	// query's deadline budget; its growth under load is pure scheduler
	// backpressure.
	QueueWaitNs obs.HistSnapshot `json:"queue_wait_ns"`
	// Tenants breaks the scheduler down per tenant (query.tenant.<t>.*):
	// per-tenant percentiles come from each tenant's query_ns histogram.
	Tenants map[string]tenantSummary `json:"tenants,omitempty"`
}

// tenantSummary is one tenant's serving view in the BENCH json.
type tenantSummary struct {
	Admitted    int64            `json:"admitted"`
	Rejected    int64            `json:"rejected"`
	Completed   int64            `json:"completed"`
	CacheHits   int64            `json:"cache_hits"`
	QueryNs     obs.HistSnapshot `json:"query_ns"`
	QueueWaitNs obs.HistSnapshot `json:"queue_wait_ns"`
}

type cacheSummary struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// resultCacheSummary aggregates the serving tier's epoch-keyed result
// cache (qcache.*) — distinct from the block-level cacheSummary.
type resultCacheSummary struct {
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

// buildReport assembles the report from the finished experiments and the
// process-wide registry.
func buildReport(p *experiments.Params, results []experimentResult, interrupted bool) *report {
	snap := obs.Default().Snapshot()

	var ing ingestSummary
	ing.RunNs = snap.Histograms["ingest.run_ns"]
	ing.WindowBuildNs = snap.Histograms["ingest.window_build_ns"]
	ing.Runs = ing.RunNs.Count
	ing.TotalNs = ing.RunNs.Sum
	ing.WindowsApplied = snap.Counters["ingest.windows_applied"]
	ing.DeclusterSkewX = snap.Counters["ingest.decluster_skew_x1000"]
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "ingest.dest_") && strings.HasSuffix(name, ".edges") {
			ing.EdgesRouted += v
		}
	}
	if ing.TotalNs > 0 {
		ing.EdgesPerSec = float64(ing.EdgesRouted) / (float64(ing.TotalNs) / 1e9)
	}

	bfs := bfsSummary{
		Runs:            snap.Counters["query.bfs.runs"],
		PartialCoverage: snap.Counters["query.bfs.partial_coverage"],
		FringeSize:      snap.Histograms["query.bfs.fringe_size"],
		ExpandNs:        snap.Histograms["query.bfs.level_expand_ns"],
	}
	levelNames := make([]string, 0, 16)
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "query.bfs.level_") && strings.HasSuffix(name, ".expand_ns") {
			levelNames = append(levelNames, name)
		}
	}
	sort.Strings(levelNames)
	if len(levelNames) > 0 {
		bfs.Levels = make(map[string]obs.HistSnapshot, len(levelNames))
		for _, name := range levelNames {
			bfs.Levels[name] = snap.Histograms[name]
		}
	}

	eng := engineSummary{
		Admitted:  snap.Counters["query.engine.admitted"],
		Rejected:  snap.Counters["query.engine.rejected"],
		Completed: snap.Counters["query.engine.completed"],
		Cancelled: snap.Counters["query.engine.cancelled"],
		Failed:    snap.Counters["query.engine.failed"],
		CacheHits: snap.Counters["query.engine.cache_hits"],
		QueryNs:   snap.Histograms["query.engine.query_ns"],
		ExecNs:    snap.Histograms["query.engine.exec_ns"],

		QueueWaitNs: snap.Histograms["query.engine.queue_wait_ns"],
	}
	if eng.ExecNs.Sum > 0 {
		eng.QPS = float64(eng.Completed) / (float64(eng.ExecNs.Sum) / 1e9)
	}
	var tenantNames []string
	for name := range snap.Counters {
		if t, ok := strings.CutPrefix(name, "query.tenant."); ok {
			if t, ok = strings.CutSuffix(t, ".admitted"); ok {
				tenantNames = append(tenantNames, t)
			}
		}
	}
	sort.Strings(tenantNames)
	if len(tenantNames) > 0 {
		eng.Tenants = make(map[string]tenantSummary, len(tenantNames))
		for _, t := range tenantNames {
			p := "query.tenant." + t + "."
			eng.Tenants[t] = tenantSummary{
				Admitted:    snap.Counters[p+"admitted"],
				Rejected:    snap.Counters[p+"rejected"],
				Completed:   snap.Counters[p+"completed"],
				CacheHits:   snap.Counters[p+"cache_hits"],
				QueryNs:     snap.Histograms[p+"query_ns"],
				QueueWaitNs: snap.Histograms[p+"queue_wait_ns"],
			}
		}
	}

	var ca cacheSummary
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "cache.") {
			switch {
			case strings.HasSuffix(name, ".hits"):
				ca.Hits += v
			case strings.HasSuffix(name, ".misses"):
				ca.Misses += v
			}
		}
	}
	if total := ca.Hits + ca.Misses; total > 0 {
		ca.HitRate = float64(ca.Hits) / float64(total)
	}

	rc := resultCacheSummary{
		Hits:          snap.Counters["qcache.hits"],
		Misses:        snap.Counters["qcache.misses"],
		Evictions:     snap.Counters["qcache.evictions"],
		Invalidations: snap.Counters["qcache.invalidations"],
	}
	if total := rc.Hits + rc.Misses; total > 0 {
		rc.HitRate = float64(rc.Hits) / float64(total)
	}

	commit, dirty := gitCommit()
	prov := provenanceInfo{
		GitCommit:      commit,
		GitDirty:       dirty,
		GoVersion:      runtime.Version(),
		PlacementEpoch: snap.Gauges["placement.epoch"],
		Config: benchConfig{
			Scale:       p.Scale,
			Queries:     p.Queries,
			Workers:     p.Workers,
			Concurrency: p.Concurrency,
			Prefetch:    p.Prefetch,
			Compress:    p.Compress,
			SharedCache: p.SharedCache,
			FaultSeed:   p.FaultSeed,
			Tenants:     tenantNames,
		},
	}

	return &report{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Provenance:  prov,
		Scale:       p.Scale,
		Queries:     p.Queries,
		Workers:     p.Workers,
		Interrupted: interrupted,
		Experiments: results,
		Ingest:      ing,
		BFS:         bfs,
		Engine:      eng,
		Cache:       ca,
		ResultCache: rc,
		Metrics:     snap,
	}
}

// gitCommit resolves the VCS revision this binary was built from:
// preferring the stamp the Go toolchain embeds at build time, falling
// back to asking git directly (the `go run` path, where the main module
// is built without VCS stamping).
func gitCommit() (commit string, dirty bool) {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				commit = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if commit == "" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			commit = strings.TrimSpace(string(out))
			if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
				dirty = len(st) > 0
			}
		}
	}
	return commit, dirty
}

// writeReport marshals the report to path. "auto" picks a timestamped
// BENCH_*.json name in the working directory.
func writeReport(r *report, path string) (string, error) {
	if path == "auto" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
