// Command mssg-bench regenerates the tables and figures of the paper's
// evaluation (chapter 5). Each experiment prints an aligned text table
// with notes on the shape the paper reports.
//
// Usage:
//
//	mssg-bench [flags] <experiment>|all
//
// Experiments: table5.1 fig5.1 fig5.2 fig5.3 fig5.4 fig5.5 fig5.6 fig5.7
// fig5.8 fig5.9.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"mssg/internal/experiments"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/grdb"
	"mssg/internal/obs"
)

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale,
		"fraction of the paper's vertex counts to generate")
	queries := flag.Int("queries", 30, "random BFS queries per search experiment (paper: 100)")
	dir := flag.String("dir", "", "scratch directory (default: a temp dir, removed on exit)")
	verbose := flag.Bool("v", false, "print progress")
	workers := flag.Int("workers", 0,
		"fringe-expansion goroutines per back-end node (0 = GOMAXPROCS, 1 = serial)")
	concurrency := flag.Int("concurrency", 8,
		"top in-flight query count for the qps experiment (sweep doubles 1 -> this)")
	faultSeed := flag.Int64("fault-seed", 0,
		"non-zero: run over a fault-injecting fabric (1% drops) masked by reliable delivery, seeded with this value")
	deadline := flag.Duration("deadline", 0,
		"per-ingestion deadline (0 = none); overruns abort the experiment instead of hanging")
	metricsAddr := flag.String("metrics-addr", "",
		"serve live /metrics, /trace and /debug/pprof on this address during the run; implies -json auto")
	jsonOut := flag.String("json", "",
		"write a machine-readable BENCH report: a path, or \"auto\" for BENCH_<timestamp>.json")
	prefetch := flag.Bool("prefetch", false,
		"enable fringe prefetch in every search experiment's BFS (pipelined on grDB, sync warm-up elsewhere)")
	compress := flag.Bool("compress", false,
		"open every out-of-core grDB with delta-varint block compression")
	sharedCache := flag.Bool("shared-cache", false,
		"replace each grDB engine's per-node caches with one shared scan-resistant SLRU cache")
	check := flag.Bool("check", false,
		"instead of an experiment, scrub every grDB node database under the <dir> argument: verify all block checksums, quarantine and repair corrupt blocks, and run the structural check")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <experiment>...|all\n       %s -check <dir>\n\nexperiments:\n", os.Args[0], os.Args[0])
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-9s  %s\n", e.ID, e.Desc)
		}
		fmt.Fprintln(os.Stderr, "\nflags:")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || (*check && flag.NArg() != 1) {
		flag.Usage()
		os.Exit(2)
	}

	if *check {
		runCheck(flag.Arg(0))
		return
	}

	workDir := *dir
	if workDir == "" {
		td, err := os.MkdirTemp("", "mssg-bench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(td)
		workDir = td
	}

	if *metricsAddr != "" && *jsonOut == "" {
		*jsonOut = "auto"
	}

	p := &experiments.Params{
		Scale: *scale, Queries: *queries, Dir: workDir, Workers: *workers,
		Concurrency: *concurrency,
		FaultSeed:   *faultSeed, Deadline: *deadline,
		Prefetch: *prefetch, Compress: *compress, SharedCache: *sharedCache,
		// A bench that reports latency percentiles and cache hit rates
		// needs the gated per-op metrics on.
		Metrics: *jsonOut != "" || *metricsAddr != "",
	}
	if *verbose {
		p.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] "+format+"\n",
				append([]any{time.Now().Format("15:04:05")}, args...)...)
		}
	}

	if *metricsAddr != "" {
		s, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer s.Close()
		fmt.Fprintf(os.Stderr, "mssg-bench: metrics on http://%s/metrics\n", s.Addr())
	}

	var toRun []experiments.Experiment
	if flag.NArg() == 1 && flag.Arg(0) == "all" {
		toRun = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				flag.Usage()
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	// Completed results accumulate under a lock so a SIGINT/SIGTERM can
	// dump a partial report instead of losing the finished experiments.
	var (
		resMu   sync.Mutex
		results []experimentResult
	)
	dump := func(interrupted bool) {
		if *jsonOut == "" {
			return
		}
		resMu.Lock()
		snap := make([]experimentResult, len(results))
		copy(snap, results)
		resMu.Unlock()
		path, err := writeReport(buildReport(p, snap, interrupted), *jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mssg-bench: writing report:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "mssg-bench: report written to %s\n", path)
	}
	obs.OnSignal(func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "mssg-bench: %v: writing partial report\n", sig)
		dump(true)
		os.Exit(130)
	})

	for _, e := range toRun {
		start := time.Now()
		table, err := e.Run(p)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		elapsed := time.Since(start)
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %s)\n\n", e.ID, elapsed.Round(time.Millisecond))
		resMu.Lock()
		results = append(results, experimentResult{
			ID: table.ID, Title: table.Title, Header: table.Header,
			Rows: table.Rows, Notes: table.Notes,
			ElapsedMs: elapsed.Milliseconds(),
		})
		resMu.Unlock()
	}
	dump(false)
}

// runCheck scrubs every grDB node database under root (the layout
// mssg-ingest and the experiments produce: root/node000, root/node001,
// ...): block checksums are verified, corrupt blocks quarantined and
// repaired, and the structural check run on each instance.
func runCheck(root string) {
	reports, err := grdb.ScrubDir(root, graphdb.Options{})
	if err != nil {
		fatal(err)
	}
	if len(reports) == 0 {
		fatal(fmt.Errorf("no grDB databases found under %s", root))
	}
	names := make([]string, 0, len(reports))
	for name := range reports {
		names = append(names, name)
	}
	sort.Strings(names)
	var scanned, corrupt int64
	for _, name := range names {
		rep := reports[name]
		scanned += rep.BlocksScanned
		corrupt += rep.CorruptBlocks
		fmt.Printf("%s: %d blocks scanned, %d corrupt\n", name, rep.BlocksScanned, rep.CorruptBlocks)
		for _, q := range rep.Quarantined {
			fmt.Printf("  quarantined %s\n", q)
		}
	}
	if corrupt > 0 {
		fmt.Printf("scrub: repaired %d corrupt blocks of %d (raw bytes preserved in quarantine/)\n", corrupt, scanned)
		os.Exit(1)
	}
	fmt.Printf("scrub OK: %d databases, %d blocks, all checksums valid\n", len(reports), scanned)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssg-bench:", err)
	os.Exit(1)
}
