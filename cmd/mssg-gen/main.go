// Command mssg-gen generates synthetic scale-free edge lists: either the
// paper's preset graphs (pubmed-s, pubmed-l, syn-2b) at a chosen scale,
// or a custom configuration. Output is an ASCII ("src dst" per line) or
// binary (16-byte records) edge stream.
//
// Examples:
//
//	mssg-gen -preset pubmed-s -scale 0.01 -out pubmed-s.txt -stats
//	mssg-gen -vertices 100000 -m 5 -hub 0.1 -seed 7 -format binary -out g.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
)

func main() {
	preset := flag.String("preset", "", "preset graph: pubmed-s, pubmed-l, syn-2b (overrides -vertices/-m/-hub)")
	scale := flag.Float64("scale", 0.004, "preset scale (fraction of the paper's vertex counts)")
	vertices := flag.Int64("vertices", 10000, "custom: vertex count")
	m := flag.Int("m", 5, "custom: attachment edges per vertex (≈ half the avg degree)")
	hub := flag.Float64("hub", 0, "custom: hub fraction (probability vertex 0 links to each vertex)")
	seed := flag.Int64("seed", 1, "custom: random seed")
	format := flag.String("format", "ascii", "output format: ascii or binary")
	out := flag.String("out", "-", "output file (- for stdout)")
	stats := flag.Bool("stats", false, "print Table 5.1-style statistics to stderr")
	durability := flag.String("durability", "none",
		"none or full: full fsyncs the output file before exit so the edge list survives a crash")
	verifyOnOpen := flag.Bool("verify-on-open", false,
		"re-open and re-parse the written file, failing if any record is unreadable or the edge count differs")
	metricsAddr := flag.String("metrics-addr", "",
		"serve live /metrics and /debug/pprof on this address while generating")
	flag.Parse()

	if *metricsAddr != "" {
		s, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer s.Close()
		fmt.Fprintf(os.Stderr, "mssg-gen: metrics on http://%s/metrics\n", s.Addr())
	}

	var cfg gen.Config
	if *preset != "" {
		c, err := gen.Preset(*preset, *scale)
		if err != nil {
			fatal(err)
		}
		cfg = c
	} else {
		cfg = gen.Config{Name: "custom", Vertices: *vertices, M: *m, HubFraction: *hub, Seed: *seed}
	}

	if _, err := graphdb.ParseDurability(*durability); err != nil {
		fatal(err)
	}
	if (*durability == "full" || *verifyOnOpen) && *out == "-" {
		fatal(fmt.Errorf("-durability full and -verify-on-open need -out to name a file"))
	}

	var sink io.Writer = os.Stdout
	var outFile *os.File
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		sink = f
	}

	var w graph.EdgeWriter
	switch *format {
	case "ascii":
		w = graph.NewASCIIEdgeWriter(sink)
	case "binary":
		w = graph.NewBinaryEdgeWriter(sink)
	default:
		fatal(fmt.Errorf("unknown format %q (want ascii or binary)", *format))
	}

	g, err := gen.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}

	// Signal handling: the generation loop polls a flag rather than the
	// handler touching the writer, so the flush below never races a
	// WriteEdge in flight. The deferred close then runs normally.
	var stop atomic.Bool
	obs.OnSignal(func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "mssg-gen: %v: stopping; flushing partial output\n", sig)
		stop.Store(true)
	})

	mEdges := obs.Default().Counter("gen.edges")
	deg := make([]int64, cfg.Vertices)
	var edges int64
	for !stop.Load() {
		e, err := g.ReadEdge()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := w.WriteEdge(e); err != nil {
			fatal(err)
		}
		deg[e.Src]++
		deg[e.Dst]++
		edges++
		mEdges.Inc()
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if *durability == "full" && outFile != nil {
		if err := outFile.Sync(); err != nil {
			fatal(err)
		}
	}
	if stop.Load() {
		fmt.Fprintf(os.Stderr, "mssg-gen: interrupted after %d edges; output flushed\n", edges)
	}
	if *verifyOnOpen {
		if err := verifyOutput(*out, *format, edges); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mssg-gen: verified %d edges re-parse cleanly\n", edges)
	}

	if *stats {
		s := statsFromDegrees(cfg.Name, deg, edges)
		fmt.Fprintln(os.Stderr, gen.StatsHeader)
		fmt.Fprintln(os.Stderr, s.String())
	}
}

// verifyOutput re-opens the written edge list and re-parses every record,
// checking the count matches what was generated.
func verifyOutput(path, format string, want int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var r graph.EdgeReader
	switch format {
	case "ascii":
		r = graph.NewASCIIEdgeReader(f)
	case "binary":
		r = graph.NewBinaryEdgeReader(f)
	}
	var got int64
	for {
		if _, err := r.ReadEdge(); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("verify: record %d: %w", got, err)
		}
		got++
	}
	if got != want {
		return fmt.Errorf("verify: re-parsed %d edges, wrote %d", got, want)
	}
	return nil
}

func statsFromDegrees(name string, deg []int64, edges int64) gen.Stats {
	s := gen.Stats{Name: name, UndEdges: edges, MinDegree: -1}
	for v, d := range deg {
		if d == 0 {
			continue
		}
		s.Vertices++
		if s.MinDegree < 0 || d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
			s.MaxDegreeVertex = graph.VertexID(v)
		}
	}
	if s.MinDegree < 0 {
		s.MinDegree = 0
	}
	if s.Vertices > 0 {
		s.AvgDegree = 2 * float64(edges) / float64(s.Vertices)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssg-gen:", err)
	os.Exit(1)
}
