// Command mssg-query runs parallel out-of-core BFS queries against a
// database previously built by mssg-ingest. The -backend/-backends flags
// must match the ingestion run (the working directory holds one database
// per back-end node).
//
// Example:
//
//	mssg-query -dir /tmp/db -backend grdb -backends 8 -source 0 -dest 42
//	mssg-query -dir /tmp/db -backend grdb -backends 8 -random 100 -maxvertex 15000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/obs"
	"mssg/internal/query"
)

func main() {
	dir := flag.String("dir", "", "database working directory (required)")
	backend := flag.String("backend", "grdb", "GraphDB backend used at ingestion")
	backends := flag.Int("backends", 8, "number of back-end nodes used at ingestion")
	source := flag.Int64("source", -1, "source vertex")
	dest := flag.Int64("dest", -1, "destination vertex")
	random := flag.Int("random", 0, "instead of -source/-dest, run this many random queries")
	maxVertex := flag.Int64("maxvertex", 0, "vertex id bound for -random")
	seed := flag.Int64("seed", 4242, "seed for -random")
	pipelined := flag.Bool("pipelined", false, "use the pipelined BFS (Algorithm 2)")
	threshold := flag.Int("threshold", 1024, "pipelined fringe chunk threshold")
	broadcast := flag.Bool("broadcast", false, "broadcast fringes (for edge-granularity databases)")
	prefetch := flag.Bool("prefetch", false, "warm the block cache per level with offset-sorted prefetch (grDB)")
	workers := flag.Int("workers", 0, "fringe-expansion goroutines per back-end node (0 = GOMAXPROCS, 1 = serial)")
	showPath := flag.Bool("path", false, "also reconstruct and print the shortest path")
	extVisited := flag.String("extvisited", "", "directory for an external-memory visited structure (default: in-memory)")
	khop := flag.Int("khop", 0, "instead of a path query, count vertices within k hops of -source")
	component := flag.Bool("component", false, "instead of a path query, measure -source's connected component")
	listAnalyses := flag.Bool("list-analyses", false, "list registered Query Service analyses and exit")
	durability := flag.String("durability", "none",
		"crash safety mode the database was ingested with: none or full (must match, checksum sidecars are only kept under full)")
	verifyOnOpen := flag.Bool("verify-on-open", false,
		"run the backend's structural consistency check after recovery when opening each database")
	metricsAddr := flag.String("metrics-addr", "",
		"serve live /metrics, /trace and /debug/pprof on this address (e.g. :8080); also enables per-op backend latency histograms")
	flag.Parse()

	if *listAnalyses {
		for _, name := range query.Analyses() {
			a, _ := query.LookupAnalysis(name)
			fmt.Printf("%-10s %s\n", name, a.Describe())
		}
		return
	}

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mssg-query: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	durLevel, err := graphdb.ParseDurability(*durability)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Backends:  *backends,
		Backend:   *backend,
		Dir:       *dir,
		DBOptions: graphdb.Options{Durability: durLevel, VerifyOnOpen: *verifyOnOpen},
	}
	var obsServer *obs.Server
	if *metricsAddr != "" {
		cfg.Metrics = obs.Default()
		s, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			fatal(err)
		}
		obsServer = s
		fmt.Fprintf(os.Stderr, "mssg-query: metrics on http://%s/metrics\n", s.Addr())
	}
	defer obsServer.Close()
	eng, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()

	// Graceful shutdown: drain the metrics server (a final scrape sees
	// the counters of every completed query) and release the databases.
	obs.OnSignal(func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "mssg-query: %v: shutting down\n", sig)
		obsServer.Close()
		eng.Close()
		os.Exit(130)
	})

	ownership := query.KnownMapping
	if *broadcast {
		ownership = query.BroadcastFringe
	}
	var newVisited func(cluster.NodeID) (query.Visited, error)
	if *extVisited != "" {
		var seq atomic.Int64
		newVisited = func(n cluster.NodeID) (query.Visited, error) {
			q := seq.Add(1)
			return query.NewExtVisited(fmt.Sprintf("%s/q%d-n%d", *extVisited, q, n), 0)
		}
	}

	switch {
	case *khop > 0:
		if *source < 0 {
			fatal(fmt.Errorf("-khop needs -source"))
		}
		res, err := eng.RunAnalysis("khop", map[string]string{
			"source": fmt.Sprint(*source), "k": fmt.Sprint(*khop),
			"broadcast": fmt.Sprint(*broadcast),
		})
		if err != nil {
			fatal(err)
		}
		kh := res.(query.KHopResult)
		fmt.Printf("within %d hops of %d: %d vertices (per level: %v, %d edges traversed)\n",
			*khop, *source, kh.Total, kh.PerLevel, kh.EdgesTraversed)
		return
	case *component:
		if *source < 0 {
			fatal(fmt.Errorf("-component needs -source"))
		}
		res, err := eng.RunAnalysis("component", map[string]string{
			"source": fmt.Sprint(*source), "broadcast": fmt.Sprint(*broadcast),
		})
		if err != nil {
			fatal(err)
		}
		comp := res.(query.ComponentResult)
		fmt.Printf("component of %d: %d vertices, eccentricity %d (%d edges traversed)\n",
			*source, comp.Size, comp.Eccentricity, comp.EdgesTraversed)
		return
	}

	runOne := func(s, d graph.VertexID) error {
		start := time.Now()
		res, err := eng.BFS(query.BFSConfig{
			Source: s, Dest: d,
			Pipelined: *pipelined, Threshold: *threshold, Ownership: ownership,
			Prefetch: *prefetch, NewVisited: newVisited, ReturnPath: *showPath,
			Workers: *workers,
		})
		if err != nil {
			return err
		}
		el := time.Since(start)
		if res.Found {
			fmt.Printf("%d -> %d: path length %d (%d levels, %d edges traversed, %s, %.0f edges/s)\n",
				s, d, res.PathLength, res.Levels, res.EdgesTraversed,
				el.Round(time.Microsecond), float64(res.EdgesTraversed)/el.Seconds())
			if res.Path != nil {
				fmt.Printf("  path: %v\n", res.Path)
			}
		} else {
			fmt.Printf("%d -> %d: not connected (%d levels, %d edges traversed, %s)\n",
				s, d, res.Levels, res.EdgesTraversed, el.Round(time.Microsecond))
		}
		return nil
	}

	switch {
	case *random > 0:
		if *maxVertex <= 1 {
			fatal(fmt.Errorf("-random needs -maxvertex"))
		}
		rng := gen.NewRNG(*seed)
		for i := 0; i < *random; i++ {
			s := graph.VertexID(rng.Int63n(*maxVertex))
			d := graph.VertexID(rng.Int63n(*maxVertex))
			if s == d {
				continue
			}
			if err := runOne(s, d); err != nil {
				fatal(err)
			}
		}
	case *source >= 0 && *dest >= 0:
		if err := runOne(graph.VertexID(*source), graph.VertexID(*dest)); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "mssg-query: need -source and -dest, or -random with -maxvertex")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssg-query:", err)
	os.Exit(1)
}
