// Command mssg-query runs parallel out-of-core BFS queries against a
// database previously built by mssg-ingest. The -backend/-backends flags
// must match the ingestion run (the working directory holds one database
// per back-end node).
//
// Example:
//
//	mssg-query -dir /tmp/db -backend grdb -backends 8 -source 0 -dest 42
//	mssg-query -dir /tmp/db -backend grdb -backends 8 -random 100 -maxvertex 15000
//
// With -serve it becomes a resident query service: it reads one query
// per line from stdin, runs them concurrently through the admission-
// controlled scheduler, and prints each result as it completes:
//
//	printf 'bfs 0 42\nkhop 0 3\ncomponent 7\n' |
//	    mssg-query -dir /tmp/db -backends 8 -serve -max-inflight 4
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/ingest"
	"mssg/internal/obs"
	"mssg/internal/query"
	"mssg/internal/storage/cache"
)

// Exit statuses: 1 = operational error, 2 = usage, 3 = partial coverage
// (every replica of a required shard was unreachable — the answer is
// missing or, under -allow-partial, a lower bound).
const exitPartial = 3

func main() {
	dir := flag.String("dir", "", "database working directory (required)")
	backend := flag.String("backend", "grdb", "GraphDB backend used at ingestion")
	backends := flag.Int("backends", 8, "number of back-end nodes used at ingestion")
	source := flag.Int64("source", -1, "source vertex")
	dest := flag.Int64("dest", -1, "destination vertex")
	random := flag.Int("random", 0, "instead of -source/-dest, run this many random queries")
	maxVertex := flag.Int64("maxvertex", 0, "vertex id bound for -random")
	seed := flag.Int64("seed", 4242, "seed for -random")
	pipelined := flag.Bool("pipelined", false, "use the pipelined BFS (Algorithm 2)")
	threshold := flag.Int("threshold", 1024, "pipelined fringe chunk threshold")
	broadcast := flag.Bool("broadcast", false, "broadcast fringes (for edge-granularity databases)")
	prefetch := flag.Bool("prefetch", false, "warm the block cache per level with offset-sorted prefetch (grDB)")
	workers := flag.Int("workers", 0, "fringe-expansion goroutines per back-end node (0 = GOMAXPROCS, 1 = serial)")
	showPath := flag.Bool("path", false, "also reconstruct and print the shortest path")
	extVisited := flag.String("extvisited", "", "directory for an external-memory visited structure (default: in-memory)")
	khop := flag.Int("khop", 0, "instead of a path query, count vertices within k hops of -source")
	component := flag.Bool("component", false, "instead of a path query, measure -source's connected component")
	listAnalyses := flag.Bool("list-analyses", false, "list registered Query Service analyses and exit")
	serve := flag.Bool("serve", false, "read queries from stdin and run them concurrently (one per line: 'bfs S D', 'khop S K', 'component S', or '<analysis> key=value ...')")
	maxInflight := flag.Int("max-inflight", 4, "serve mode: concurrently executing queries")
	queueDepth := flag.Int("queue-depth", 16, "serve mode: admitted-but-not-running queries before rejection (per tenant)")
	queryTimeout := flag.Duration("query-timeout", 0, "serve mode: per-query deadline, starting when the query begins executing (0 = none)")
	tenantSpec := flag.String("tenants", "",
		"serve mode: per-tenant fair-share weights as 'name:weight,...' (e.g. 'alice:4,bob:1'); prefix a query line with @name to submit as that tenant, unprefixed lines use the 'default' tenant")
	tenantInflight := flag.Int("tenant-inflight", 0, "serve mode: per-tenant cap on concurrently executing queries (0 = no per-tenant cap)")
	tenantQueue := flag.Int("tenant-queue", 0, "serve mode: per-tenant queue depth (0 = inherit -queue-depth)")
	cacheMB := flag.Int64("cache-mb", 0,
		"serve mode: epoch-keyed result cache budget in MB; repeated identical queries against an unchanged graph are answered from the cache (0 = disabled)")
	deadList := flag.String("dead", "",
		"comma-separated back-end ids to treat as crashed: their databases are never read, so queries must fail over to surviving replicas (for failover drills)")
	allowPartial := flag.Bool("allow-partial", false,
		"when every replica of a required shard is dead, degrade to a best-effort answer with an explicit coverage fraction instead of failing (partial results exit with status 3)")
	compress := flag.Bool("compress", false,
		"the databases were ingested with delta-varint block compression (grDB; must match the ingest setting)")
	sharedCacheMB := flag.Int64("shared-cache", 0,
		"non-zero: share one scan-resistant SLRU block cache of this many MB across all back-end nodes (grDB, durability none)")
	durability := flag.String("durability", "none",
		"crash safety mode the database was ingested with: none or full (must match, checksum sidecars are only kept under full)")
	verifyOnOpen := flag.Bool("verify-on-open", false,
		"run the backend's structural consistency check after recovery when opening each database")
	metricsAddr := flag.String("metrics-addr", "",
		"serve live /metrics, /trace and /debug/pprof on this address (e.g. :8080); also enables per-op backend latency histograms")
	flag.Parse()

	if *listAnalyses {
		for _, name := range query.Analyses() {
			a, _ := query.LookupAnalysis(name)
			fmt.Printf("%-10s %s\n", name, a.Describe())
		}
		return
	}

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mssg-query: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	durLevel, err := graphdb.ParseDurability(*durability)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Backends: *backends,
		Backend:  *backend,
		Dir:      *dir,
		DBOptions: graphdb.Options{
			Durability: durLevel, VerifyOnOpen: *verifyOnOpen,
			Compress: *compress,
		},
	}
	if *sharedCacheMB > 0 {
		cfg.DBOptions.SharedCache = cache.NewWithPolicy(*sharedCacheMB<<20, cache.PolicySLRU)
	}
	cfg.AllowPartial = *allowPartial
	// A placement manifest (written by a rendezvous/replicated ingest)
	// reconstructs the exact ingest-time mapping: queries route fringes by
	// the recorded policy, restrict themselves to the committed member
	// roster, and fail over to replicas when a back-end dies. The holder
	// keeps the snapshot reloadable, so a long-lived -serve process picks
	// up a migration committed by another process.
	var holder *ingest.PlacementHolder
	if h, ok, err := ingest.OpenPlacementHolder(*dir); err != nil {
		fatal(err)
	} else if ok {
		pl := h.Placement()
		if pl.Backends > *backends {
			fatal(fmt.Errorf("placement manifest spans %d back-ends but -backends is %d", pl.Backends, *backends))
		}
		holder = h
		cfg.Placement = holder
		fmt.Fprintf(os.Stderr, "mssg-query: placement: %s over %d back-ends, %d-way replicated, epoch %d, members %v\n",
			pl.Policy, pl.Backends, pl.Replication, pl.Epoch, pl.Members())
		if p := h.Manifest().Pending; p != nil {
			fmt.Fprintf(os.Stderr, "mssg-query: warning: a migration to epoch %d is pending (begun but not committed); routing stays at epoch %d until it commits — resume or abort it with mssg-ingest\n",
				p.Epoch, pl.Epoch)
		}
	}
	var obsServer *obs.Server
	if *metricsAddr != "" {
		cfg.Metrics = obs.Default()
		s, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			fatal(err)
		}
		obsServer = s
		fmt.Fprintf(os.Stderr, "mssg-query: metrics on http://%s/metrics\n", s.Addr())
	}
	defer obsServer.Close()
	eng, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()

	// Graceful shutdown: drain the metrics server (a final scrape sees
	// the counters of every completed query) and release the databases.
	obs.OnSignal(func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "mssg-query: %v: shutting down\n", sig)
		obsServer.Close()
		eng.Close()
		os.Exit(130)
	})

	ownership := query.KnownMapping
	if *broadcast {
		ownership = query.BroadcastFringe
	}

	// -dead ids are validated against the committed placement's member
	// roster (or [0, backends) without a manifest): a typo'd or drained
	// node would silently drill the wrong failover scenario, so every
	// unknown id is collected and the run fails fast with the full list.
	var activeNodes []cluster.NodeID
	if *deadList != "" {
		members := make([]cluster.NodeID, 0, *backends)
		if holder != nil {
			members = holder.Placement().Members()
		} else {
			for i := 0; i < *backends; i++ {
				members = append(members, cluster.NodeID(i))
			}
		}
		isMember := func(n int) bool {
			for _, m := range members {
				if int(m) == n {
					return true
				}
			}
			return false
		}
		dead := map[int]bool{}
		var unknown []string
		for _, s := range strings.Split(*deadList, ",") {
			s = strings.TrimSpace(s)
			if n, err := strconv.Atoi(s); err == nil && isMember(n) {
				dead[n] = true
			} else {
				unknown = append(unknown, fmt.Sprintf("%q", s))
			}
		}
		if len(unknown) > 0 {
			fatal(fmt.Errorf("-dead: unknown back-end id(s) %s (placement members: %v)",
				strings.Join(unknown, ", "), members))
		}
		for _, m := range members {
			if !dead[int(m)] {
				activeNodes = append(activeNodes, m)
			}
		}
		if len(activeNodes) == 0 {
			fatal(fmt.Errorf("-dead: every member of %v is declared dead", members))
		}
		fmt.Fprintf(os.Stderr, "mssg-query: treating %d back-end(s) as crashed, querying %v\n",
			len(dead), activeNodes)
	}

	if *serve {
		tenants, err := parseTenantSpec(*tenantSpec, *tenantInflight, *tenantQueue)
		if err != nil {
			fatal(err)
		}
		runServe(eng, holder, query.EngineConfig{
			MaxInFlight:     *maxInflight,
			QueueDepth:      *queueDepth,
			DefaultDeadline: *queryTimeout,
			Tenants:         tenants,
			DefaultTenant:   query.TenantConfig{MaxInFlight: *tenantInflight, QueueDepth: *tenantQueue},
			CacheBytes:      *cacheMB << 20,
		}, query.BFSConfig{
			Pipelined: *pipelined, Threshold: *threshold, Ownership: ownership,
			Prefetch: *prefetch, Workers: *workers, ActiveNodes: activeNodes,
		})
		return
	}
	var newVisited func(cluster.NodeID) (query.Visited, error)
	if *extVisited != "" {
		var seq atomic.Int64
		newVisited = func(n cluster.NodeID) (query.Visited, error) {
			q := seq.Add(1)
			return query.NewExtVisited(fmt.Sprintf("%s/q%d-n%d", *extVisited, q, n), 0)
		}
	}

	switch {
	case *khop > 0:
		if *source < 0 {
			fatal(fmt.Errorf("-khop needs -source"))
		}
		kh, err := eng.KHop(query.KHopConfig{
			Source: graph.VertexID(*source), K: *khop,
			Ownership: ownership, Prefetch: *prefetch,
			ActiveNodes: activeNodes,
		})
		if err != nil {
			fatalQuery(err)
		}
		fmt.Printf("within %d hops of %d: %d vertices (per level: %v, %d edges traversed)\n",
			*khop, *source, kh.Total, kh.PerLevel, kh.EdgesTraversed)
		if kh.Coverage < 1 {
			fmt.Printf("partial: coverage %.2f (%d fringe vertices dropped; the count is a lower bound)\n",
				kh.Coverage, kh.Dropped)
			os.Exit(exitPartial)
		}
		return
	case *component:
		if *source < 0 {
			fatal(fmt.Errorf("-component needs -source"))
		}
		res, err := eng.RunAnalysis("component", map[string]string{
			"source": fmt.Sprint(*source), "broadcast": fmt.Sprint(*broadcast),
		})
		if err != nil {
			fatal(err)
		}
		comp := res.(query.ComponentResult)
		fmt.Printf("component of %d: %d vertices, eccentricity %d (%d edges traversed)\n",
			*source, comp.Size, comp.Eccentricity, comp.EdgesTraversed)
		return
	}

	sawPartial := false
	runOne := func(s, d graph.VertexID) error {
		start := time.Now()
		res, err := eng.BFS(query.BFSConfig{
			Source: s, Dest: d,
			Pipelined: *pipelined, Threshold: *threshold, Ownership: ownership,
			Prefetch: *prefetch, NewVisited: newVisited, ReturnPath: *showPath,
			Workers: *workers, ActiveNodes: activeNodes,
		})
		if err != nil {
			return err
		}
		el := time.Since(start)
		if res.Found {
			fmt.Printf("%d -> %d: path length %d (%d levels, %d edges traversed, %s, %.0f edges/s)\n",
				s, d, res.PathLength, res.Levels, res.EdgesTraversed,
				el.Round(time.Microsecond), float64(res.EdgesTraversed)/el.Seconds())
			if res.Path != nil {
				fmt.Printf("  path: %v\n", res.Path)
			}
		} else {
			fmt.Printf("%d -> %d: not connected (%d levels, %d edges traversed, %s)\n",
				s, d, res.Levels, res.EdgesTraversed, el.Round(time.Microsecond))
		}
		if fo := res.Failover; fo != nil && (fo.Retries > 0 || fo.ReplicaReads > 0) {
			fmt.Printf("  failover: %d retries, %d replica reads, suspected %v\n",
				fo.Retries, fo.ReplicaReads, fo.Suspected)
		}
		if res.Coverage < 1 {
			fmt.Printf("  partial: coverage %.2f (%d fringe vertices dropped; treat the answer as a lower bound)\n",
				res.Coverage, res.FringeDropped)
			sawPartial = true
		}
		return nil
	}

	switch {
	case *random > 0:
		if *maxVertex <= 1 {
			fatal(fmt.Errorf("-random needs -maxvertex"))
		}
		rng := gen.NewRNG(*seed)
		for i := 0; i < *random; i++ {
			s := graph.VertexID(rng.Int63n(*maxVertex))
			d := graph.VertexID(rng.Int63n(*maxVertex))
			if s == d {
				continue
			}
			if err := runOne(s, d); err != nil {
				fatalQuery(err)
			}
		}
	case *source >= 0 && *dest >= 0:
		if err := runOne(graph.VertexID(*source), graph.VertexID(*dest)); err != nil {
			fatalQuery(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "mssg-query: need -source and -dest, or -random with -maxvertex")
		os.Exit(2)
	}
	if sawPartial {
		os.Exit(exitPartial)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssg-query:", err)
	os.Exit(1)
}

// fatalQuery distinguishes lost data from operational failure: a
// partial-coverage error (every replica of a shard unreachable) exits
// with status 3 and a one-line coverage summary, so drivers can tell
// "retry elsewhere / accept a lower bound" from "the query is broken".
func fatalQuery(err error) {
	if errors.Is(err, query.ErrPartialCoverage) {
		fmt.Fprintf(os.Stderr, "mssg-query: partial coverage: %s (rerun with -allow-partial for a best-effort answer)\n",
			strings.ReplaceAll(err.Error(), "\n", "; "))
		os.Exit(exitPartial)
	}
	fatal(err)
}

// runServe is the resident mode: queries stream in on stdin, run
// concurrently under the scheduler's admission control, and results
// print as they complete (tagged by query id, so interleaving is fine).
func runServe(eng *core.Engine, holder *ingest.PlacementHolder, ecfg query.EngineConfig, base query.BFSConfig) {
	qe, err := eng.NewQueryEngine(ecfg)
	if err != nil {
		fatal(err)
	}
	var out sync.Mutex
	// tag prefixes non-default tenants, so single-tenant output is
	// unchanged from earlier releases.
	tag := func(q *query.Query) string {
		if q.Tenant == query.DefaultTenantName {
			return q.Label
		}
		return "@" + q.Tenant + " " + q.Label
	}
	report := func(q *query.Query) {
		res, err := q.Wait()
		out.Lock()
		defer out.Unlock()
		latency := q.Finished.Sub(q.Submitted).Round(time.Microsecond)
		switch {
		case err != nil:
			fmt.Printf("[%d] %s: error: %v (%s)\n", q.ID, tag(q), err, latency)
		case q.CacheHit:
			fmt.Printf("[%d] %s: %s (cached)\n", q.ID, tag(q), formatResult(res))
		default:
			fmt.Printf("[%d] %s: %s (%s)\n", q.ID, tag(q), formatResult(res), latency)
		}
	}

	var wg sync.WaitGroup
	submit := func(line string) {
		q, err := parseAndSubmit(eng, qe, base, line)
		if err != nil {
			out.Lock()
			fmt.Printf("? %q: %v\n", line, err)
			out.Unlock()
			return
		}
		if !q.CacheHit {
			out.Lock()
			fmt.Printf("[%d] %s: submitted\n", q.ID, tag(q))
			out.Unlock()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			report(q)
		}()
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// A resident server outlives migrations committed by other
		// processes: re-read the manifest before admitting each query so a
		// stale roster never routes to drained nodes. A newer epoch swaps
		// in atomically; queries already in flight finish on the snapshot
		// they started with.
		if holder != nil {
			if changed, err := holder.Reload(); err != nil {
				out.Lock()
				fmt.Fprintf(os.Stderr, "mssg-query: placement reload: %v\n", err)
				out.Unlock()
			} else if changed {
				pl := holder.Placement()
				out.Lock()
				fmt.Fprintf(os.Stderr, "mssg-query: placement moved to epoch %d, members %v\n",
					pl.Epoch, pl.Members())
				out.Unlock()
			}
		}
		submit(line)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	wg.Wait()
	if err := qe.Close(); err != nil {
		fatal(err)
	}
	st := qe.Stats()
	fmt.Fprintf(os.Stderr, "mssg-query: served %d queries (%d completed, %d cancelled, %d failed, %d rejected, %d cache hits)\n",
		st.Admitted, st.Completed, st.Cancelled, st.Failed, st.Rejected, st.CacheHits)
	if len(st.Tenants) > 1 {
		names := make([]string, 0, len(st.Tenants))
		for name := range st.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ts := st.Tenants[name]
			fmt.Fprintf(os.Stderr, "mssg-query:   tenant %-12s %d admitted, %d completed, %d rejected, %d cache hits\n",
				name, ts.Admitted, ts.Completed, ts.Rejected, ts.CacheHits)
		}
	}
}

// parseTenantSpec parses -tenants ("alice:4,bob:1") into per-tenant
// configs, applying the -tenant-inflight/-tenant-queue template to each
// listed tenant.
func parseTenantSpec(spec string, inflight, queue int) (map[string]query.TenantConfig, error) {
	if spec == "" {
		return nil, nil
	}
	tenants := make(map[string]query.TenantConfig)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("-tenants: %q is not name:weight", part)
		}
		w, err := strconv.Atoi(ws)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenants: weight %q of tenant %q must be a positive integer", ws, name)
		}
		if _, dup := tenants[name]; dup {
			return nil, fmt.Errorf("-tenants: tenant %q listed twice", name)
		}
		tenants[name] = query.TenantConfig{Weight: w, MaxInFlight: inflight, QueueDepth: queue}
	}
	return tenants, nil
}

// parseAndSubmit turns one stdin line into a submitted query. An
// optional leading '@tenant' token selects the submitting tenant
// ("@alice bfs 0 42"); unprefixed lines run as the default tenant.
// Shortcut forms route BFS through the engine's ownership knowledge;
// everything else goes through the analysis registry as key=value
// params.
func parseAndSubmit(eng *core.Engine, qe *query.Engine, base query.BFSConfig, line string) (*query.Query, error) {
	fields := strings.Fields(line)
	tenant := query.DefaultTenantName
	if strings.HasPrefix(fields[0], "@") {
		tenant = fields[0][1:]
		fields = fields[1:]
		if tenant == "" || len(fields) == 0 {
			return nil, fmt.Errorf("usage: @tenant <query...>")
		}
	}
	name, args := fields[0], fields[1:]
	switch name {
	case "bfs":
		if len(args) != 2 {
			return nil, fmt.Errorf("usage: bfs <source> <dest>")
		}
		var s, d int64
		if _, err := fmt.Sscanf(args[0]+" "+args[1], "%d %d", &s, &d); err != nil {
			return nil, err
		}
		cfg := base
		cfg.Source, cfg.Dest = graph.VertexID(s), graph.VertexID(d)
		return eng.SubmitBFSAs(context.Background(), qe, tenant, cfg)
	case "khop":
		if len(args) != 2 {
			return nil, fmt.Errorf("usage: khop <source> <k>")
		}
		return qe.SubmitAs(context.Background(), tenant, "khop", map[string]string{
			"source": args[0], "k": args[1],
		})
	case "component":
		if len(args) != 1 {
			return nil, fmt.Errorf("usage: component <source>")
		}
		return qe.SubmitAs(context.Background(), tenant, "component", map[string]string{
			"source": args[0],
		})
	}
	params := make(map[string]string, len(args))
	for _, kv := range args {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad param %q (want key=value)", kv)
		}
		params[k] = v
	}
	return qe.SubmitAs(context.Background(), tenant, name, params)
}

func formatResult(res any) string {
	switch r := res.(type) {
	case query.BFSResult:
		if !r.Found {
			return fmt.Sprintf("not connected (%d levels, %d edges traversed)", r.Levels, r.EdgesTraversed)
		}
		s := fmt.Sprintf("path length %d (%d edges traversed)", r.PathLength, r.EdgesTraversed)
		if r.Path != nil {
			s += fmt.Sprintf(" path=%v", r.Path)
		}
		return s
	case query.KHopResult:
		return fmt.Sprintf("%d vertices within %d hops (per level: %v)", r.Total, len(r.PerLevel), r.PerLevel)
	case query.ComponentResult:
		return fmt.Sprintf("component of %d vertices, eccentricity %d", r.Size, r.Eccentricity)
	}
	return fmt.Sprintf("%+v", res)
}
