// Command mssg-ingest runs the Ingestion Service: it streams an edge
// list into a cluster of back-end GraphDB instances under a working
// directory, which mssg-query can then search.
//
// Example:
//
//	mssg-gen -preset pubmed-s -scale 0.004 -out g.txt
//	mssg-ingest -in g.txt -dir /tmp/db -backend grdb -backends 8 -frontends 2
//	mssg-query -dir /tmp/db -backend grdb -backends 8 -source 0 -dest 42
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/graphdb/grdb"
	"mssg/internal/ingest"
	"mssg/internal/obs"
)

func main() {
	in := flag.String("in", "", "input edge list (required)")
	format := flag.String("format", "ascii", "input format: ascii or binary")
	dir := flag.String("dir", "", "database working directory (required)")
	backend := flag.String("backend", "grdb", "GraphDB backend: array, hashmap, mysql, bdb, stream, grdb")
	backends := flag.Int("backends", 8, "number of back-end storage nodes")
	frontends := flag.Int("frontends", 1, "number of front-end ingestion filters")
	policy := flag.String("policy", "vertex-mod", "declustering policy: vertex-mod, edge-round-robin, or rendezvous")
	replication := flag.Int("replication", 1,
		"replicas per ingest window: each window is shipped to this many distinct back-ends via rendezvous placement (> 1 selects the rendezvous policy; mssg-query then fails over to replicas when a back-end dies)")
	placementSeed := flag.Uint64("placement-seed", 0, "rendezvous placement seed (recorded in the placement manifest)")
	join := flag.Int("join", -1,
		"elastic mode: live-migrate shards onto back-end N and commit a new placement epoch (requires an existing rendezvous placement manifest in -dir; queries keep running on the old epoch until the commit)")
	drain := flag.Int("drain", -1,
		"elastic mode: live-migrate back-end N's shards to the remaining members and commit a new placement epoch that excludes it")
	resumeMig := flag.Bool("resume-migration", false,
		"elastic mode: resume an interrupted migration from its durable checkpoint and commit it")
	abortMig := flag.Bool("abort-migration", false,
		"elastic mode: discard a pending (begun but uncommitted) migration; routing stays at the committed epoch")
	window := flag.Int("window", 4096, "ingestion window (edges per block)")
	reverse := flag.Bool("reverse", true, "store both edge orientations (undirected graph)")
	tcp := flag.Bool("tcp", false, "use the loopback-TCP fabric instead of in-process")
	faultSeed := flag.Int64("fault-seed", 0,
		"non-zero: inject deterministic faults (drops, duplicates, delays) seeded with this value")
	faultDrop := flag.Float64("fault-drop", 0.01, "fraction of messages dropped when -fault-seed is set")
	faultCrash := flag.Int64("fault-crash", 0,
		"non-zero: crash back-end node 1 after this many outgoing sends (requires -fault-seed)")
	reliable := flag.Bool("reliable", false,
		"layer acked, deduplicated, checksummed delivery over the fabric (implied by -fault-seed)")
	deadline := flag.Duration("deadline", 0,
		"ingestion deadline (0 = none); a dead back-end or overrun aborts the run instead of hanging")
	defrag := flag.Bool("defrag", false, "run grDB chain defragmentation after ingestion (grdb backend only)")
	fsck := flag.Bool("fsck", false, "verify grDB storage invariants after ingestion (grdb backend only)")
	copyUp := flag.Bool("copyup", false, "use grDB's copy-up-on-overflow strategy instead of linking")
	compress := flag.Bool("compress", false,
		"store grDB blocks delta-varint compressed (query later with the same -compress flag)")
	durability := flag.String("durability", "none",
		"crash safety: none (page-cache only) or full (WAL + checksums + atomic checkpoints; back-ends also checkpoint their ingest position for exactly-once resume)")
	verifyOnOpen := flag.Bool("verify-on-open", false,
		"run the backend's structural consistency check after recovery when opening each database")
	metricsAddr := flag.String("metrics-addr", "",
		"serve live /metrics, /trace and /debug/pprof on this address (e.g. :8080); also enables per-op backend latency histograms")
	flag.Parse()

	elasticOps := 0
	for _, on := range []bool{*join >= 0, *drain >= 0, *resumeMig, *abortMig} {
		if on {
			elasticOps++
		}
	}
	if elasticOps > 1 {
		fatal(fmt.Errorf("-join, -drain, -resume-migration and -abort-migration are mutually exclusive"))
	}
	elastic := elasticOps == 1
	if *dir == "" || (!elastic && *in == "") {
		fmt.Fprintln(os.Stderr, "mssg-ingest: -in and -dir are required (elastic modes need only -dir)")
		flag.Usage()
		os.Exit(2)
	}
	if elastic && *in != "" {
		fatal(fmt.Errorf("-in is not used by elastic operations: they move data already ingested under -dir"))
	}
	if _, err := ingest.PolicyByName(*policy); err != nil {
		fatal(err)
	}
	// Replication rides on rendezvous placement: it is the only policy
	// with a deterministic top-k replica directory every node can derive
	// locally, which is what query-time failover routes by. -replication
	// upgrades the default policy; an explicitly different one is a
	// contradiction, not something to silently override.
	rendezvous := *policy == "rendezvous" || *policy == "hrw"
	if *replication > 1 {
		if !rendezvous && *policy != "vertex-mod" {
			fatal(fmt.Errorf("-replication %d requires the rendezvous policy, not %q", *replication, *policy))
		}
		if *replication > *backends {
			fatal(fmt.Errorf("-replication %d exceeds -backends %d", *replication, *backends))
		}
		rendezvous = true
	}
	if *replication < 1 {
		fatal(fmt.Errorf("-replication must be >= 1, got %d", *replication))
	}
	durLevel, err := graphdb.ParseDurability(*durability)
	if err != nil {
		fatal(err)
	}

	// Elastic operations route by the durable placement manifest, not by
	// flags: the holder carries the committed epoch, and the fabric must
	// be wide enough to host every current member plus any join target.
	var holder *ingest.PlacementHolder
	if elastic {
		h, ok, err := ingest.OpenPlacementHolder(*dir)
		if err != nil {
			fatal(fmt.Errorf("loading placement manifest: %w", err))
		}
		if !ok {
			fatal(fmt.Errorf("no placement manifest in %s: elastic operations need a directory ingested with -policy rendezvous or -replication > 1", *dir))
		}
		holder = h
		need := holder.Placement().Backends
		if *join >= 0 && *join+1 > need {
			need = *join + 1
		}
		backendsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "backends" {
				backendsSet = true
			}
		})
		switch {
		case !backendsSet:
			*backends = need
		case *backends < need:
			fatal(fmt.Errorf("-backends %d is too small: the operation spans %d back-ends", *backends, need))
		}
		fmt.Fprintf(os.Stderr, "mssg-ingest: placement epoch %d, members %v over %d back-ends\n",
			holder.Epoch(), holder.Placement().Members(), holder.Placement().Backends)
	}

	fabric := core.InProc
	if *tcp {
		fabric = core.TCP
	}
	cfg := core.Config{
		Backends:  *backends,
		FrontEnds: *frontends,
		Backend:   *backend,
		Dir:       *dir,
		Fabric:    fabric,
		DBOptions: graphdb.Options{
			CopyUpOnOverflow: *copyUp,
			Compress:         *compress,
			Durability:       durLevel,
			VerifyOnOpen:     *verifyOnOpen,
		},
		Ingest: ingest.Config{
			WindowEdges:       *window,
			AddReverse:        *reverse,
			ReplicationFactor: *replication,
			Policy: func() ingest.Policy {
				if rendezvous {
					return ingest.NewRendezvous(*backends, *replication, *placementSeed)
				}
				p, _ := ingest.PolicyByName(*policy)
				return p
			},
		},
		Reliable:       *reliable,
		IngestDeadline: *deadline,
		Placement:      holder,
	}
	if *faultSeed != 0 {
		plan := &cluster.Plan{
			Seed:     *faultSeed,
			DropProb: *faultDrop, DupProb: *faultDrop / 5, DelayProb: *faultDrop,
			MaxDelay: 200 * time.Microsecond,
		}
		if *faultCrash > 0 && *backends > 1 {
			plan.Crashes = []cluster.Crash{{Node: 1, AfterSends: *faultCrash}}
		}
		cfg.Fault = plan
		cfg.Reliable = true
	}
	var obsServer *obs.Server
	if *metricsAddr != "" {
		cfg.Metrics = obs.Default()
		s, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			fatal(err)
		}
		obsServer = s
		fmt.Fprintf(os.Stderr, "mssg-ingest: metrics on http://%s/metrics\n", s.Addr())
	}
	defer obsServer.Close()
	eng, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := eng.Close(); err != nil {
			fatal(err)
		}
	}()

	// Graceful shutdown: report whatever the last completed run stored,
	// drain the metrics server, release the databases, then exit with the
	// conventional signal status.
	obs.OnSignal(func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "mssg-ingest: %v: shutting down\n", sig)
		if st := eng.LastIngestStats(); st != nil {
			fmt.Fprintf(os.Stderr, "mssg-ingest: last run: %d edges in, %d stored, %d blocks\n",
				st.EdgesIn.Load(), st.EdgesStored.Load(), st.Blocks.Load())
		}
		obsServer.Close()
		eng.Close()
		os.Exit(130)
	})

	if elastic {
		runElastic(eng, holder, *join, *drain, *resumeMig, *abortMig, ingest.MigrationConfig{
			WindowEdges: *window,
			Durable:     durLevel >= graphdb.DurabilityFull,
		})
		return
	}

	// Each front-end copy opens its own handle on the file and reads a
	// disjoint share of the stream (round-robin by edge index).
	start := time.Now()
	stats, err := eng.Ingest(func(copy int) (graph.EdgeReader, error) {
		f, err := os.Open(*in)
		if err != nil {
			return nil, err
		}
		var r graph.EdgeReader
		switch *format {
		case "ascii":
			r = graph.NewASCIIEdgeReader(f)
		case "binary":
			r = graph.NewBinaryEdgeReader(f)
		default:
			f.Close()
			return nil, fmt.Errorf("unknown format %q", *format)
		}
		return &strideReader{r: r, skip: *frontends, offset: copy}, nil
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	// Record how the directory was declustered so mssg-query reconstructs
	// the exact mapping (and the replica directory) without re-deriving
	// flags. Written after the data so a failed ingest leaves no manifest.
	if rendezvous {
		pl := ingest.Placement{
			Policy: "rendezvous", Backends: *backends,
			Replication: *replication, Seed: *placementSeed,
		}
		if err := ingest.WritePlacementFile(*dir, pl); err != nil {
			fatal(fmt.Errorf("writing placement manifest: %w", err))
		}
	}

	replNote := ""
	if *replication > 1 {
		replNote = fmt.Sprintf(", %d-way replicated", *replication)
	}
	fmt.Printf("ingested %d edges (%d stored records, %d blocks) into %d %s back-ends%s in %s (%.0f edges/s)\n",
		stats.EdgesIn.Load(), stats.EdgesStored.Load(), stats.Blocks.Load(),
		*backends, *backend, replNote, elapsed.Round(time.Millisecond),
		float64(stats.EdgesIn.Load())/elapsed.Seconds())
	if r, d := stats.Retries.Load(), stats.DupBlocks.Load(); r > 0 || d > 0 {
		fmt.Printf("fault recovery: %d window re-ships, %d duplicate windows discarded\n", r, d)
	}

	if *defrag {
		start := time.Now()
		var rewritten int64
		for i, db := range eng.Databases() {
			g, ok := db.(*grdb.DB)
			if !ok {
				fatal(fmt.Errorf("-defrag requires the grdb backend"))
			}
			n, err := g.Defragment()
			if err != nil {
				fatal(fmt.Errorf("defragmenting node %d: %w", i, err))
			}
			rewritten += n
		}
		fmt.Printf("defragmented %d chains in %s\n", rewritten, time.Since(start).Round(time.Millisecond))
	}
	if *fsck {
		var vertices, edgeCount int64
		maxChain := 0
		for i, db := range eng.Databases() {
			g, ok := db.(*grdb.DB)
			if !ok {
				fatal(fmt.Errorf("-fsck requires the grdb backend"))
			}
			rep, err := g.Check()
			if err != nil {
				fatal(fmt.Errorf("fsck node %d: %w", i, err))
			}
			vertices += rep.Vertices
			edgeCount += rep.Edges
			if rep.MaxChain > maxChain {
				maxChain = rep.MaxChain
			}
		}
		fmt.Printf("fsck OK: %d vertices, %d stored records, max chain %d\n", vertices, edgeCount, maxChain)
	}
}

// runElastic executes one topology change against an already-ingested
// directory: join or drain a back-end, or resume/abort an interrupted
// migration. On success the placement manifest carries a new committed
// epoch; on failure the pending state and checkpoint stay on disk so the
// operation can be resumed or aborted later.
func runElastic(eng *core.Engine, holder *ingest.PlacementHolder, join, drain int, resumeMig, abortMig bool, mcfg ingest.MigrationConfig) {
	start := time.Now()
	var (
		stats ingest.MigrationStats
		verb  string
		err   error
	)
	switch {
	case abortMig:
		pending := holder.Manifest().Pending
		if err := eng.AbortMigration(); err != nil {
			fatal(fmt.Errorf("abort: %w", err))
		}
		if pending == nil {
			fmt.Println("no pending migration to abort")
			return
		}
		fmt.Printf("aborted pending migration to epoch %d; routing stays at epoch %d, members %v\n",
			pending.Epoch, holder.Epoch(), holder.Placement().Members())
		return
	case resumeMig:
		var resumed bool
		stats, resumed, err = eng.ResumeMigration(mcfg)
		if err == nil && !resumed {
			fmt.Println("no pending migration to resume")
			return
		}
		verb = "resumed migration"
	case join >= 0:
		stats, err = eng.Join(cluster.NodeID(join), mcfg)
		verb = fmt.Sprintf("joined back-end %d", join)
	case drain >= 0:
		stats, err = eng.Drain(cluster.NodeID(drain), mcfg)
		verb = fmt.Sprintf("drained back-end %d", drain)
	}
	if err != nil {
		if holder.Manifest().Pending != nil {
			err = fmt.Errorf("%w (the pending migration is kept: retry with -resume-migration or discard with -abort-migration)", err)
		}
		fatal(fmt.Errorf("%s: %w", verb, err))
	}
	pl := holder.Placement()
	fmt.Printf("%s: committed epoch %d, members %v\n", verb, holder.Epoch(), pl.Members())
	fmt.Printf("moved %d vertex-replicas (%d edges + %d catch-up) in %d windows (%d duplicates) in %s\n",
		stats.MovedVertices, stats.MovedEdges, stats.CatchupEdges,
		stats.Windows, stats.DupWindows, time.Since(start).Round(time.Millisecond))
}

// strideReader deals every skip-th edge to this front-end, starting at
// offset — a simple deterministic partition of one shared input file.
type strideReader struct {
	r      graph.EdgeReader
	skip   int
	offset int
	pos    int
}

func (s *strideReader) ReadEdge() (graph.Edge, error) {
	for {
		e, err := s.r.ReadEdge()
		if err != nil {
			return graph.Edge{}, err
		}
		mine := s.pos%s.skip == s.offset
		s.pos++
		if mine {
			return e, nil
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssg-ingest:", err)
	os.Exit(1)
}
