// Package mssg is the public API of the MSSG framework — a reproduction
// of "MSSG: A Framework for Massive-Scale Semantic Graphs" (Hartley,
// The Ohio State University / IEEE CLUSTER 2006).
//
// MSSG stores, retrieves and analyzes large scale-free semantic graphs
// out-of-core on a (simulated) cluster. An Engine bundles the paper's
// three services: the Ingestion Service streams edges in and declusters
// them across back-end nodes; the GraphDB Service stores each node's
// partition in one of six pluggable backends (including grDB, the paper's
// novel multi-level graph database); and the Query Service runs parallel
// out-of-core analyses, with breadth-first search built in.
//
// Quick start:
//
//	eng, err := mssg.New(mssg.Config{
//		Backends: 4,          // back-end storage nodes
//		Backend:  "grdb",     // the paper's graph database
//		Dir:      "/tmp/db",  // working directory
//		Ingest:   mssg.IngestConfig{AddReverse: true},
//	})
//	if err != nil { ... }
//	defer eng.Close()
//
//	_, err = eng.IngestEdges([]mssg.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
//	res, err := eng.BFS(mssg.BFSConfig{Source: 0, Dest: 2})
//	fmt.Println(res.Found, res.PathLength) // true 2
//
// Synthetic scale-free workloads matching the paper's Table 5.1 graphs
// are available through PubMedS, PubMedL and Syn2B.
package mssg

import (
	"context"
	"io"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	_ "mssg/internal/graphdb/all" // register the six GraphDB backends
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// Core graph vocabulary.
type (
	// VertexID is a 61-bit global vertex identifier.
	VertexID = graph.VertexID
	// Edge is a directed adjacency record.
	Edge = graph.Edge
	// AdjList is a reusable neighbour list container.
	AdjList = graph.AdjList
	// Ontology is a semantic-graph blueprint (vertex/edge types and
	// their allowed connections).
	Ontology = graph.Ontology
	// TypeID identifies a vertex or edge type within an Ontology.
	TypeID = graph.TypeID
	// TypedEdge is an edge with semantic type annotations.
	TypedEdge = graph.TypedEdge
)

// Engine configuration and services.
type (
	// Config parameterizes an Engine; see core.Config field docs.
	Config = core.Config
	// Engine is a running MSSG instance.
	Engine = core.Engine
	// IngestConfig tunes the Ingestion Service.
	IngestConfig = ingest.Config
	// DBOptions tunes the selected GraphDB backend.
	DBOptions = graphdb.Options
	// LevelSpec describes one grDB storage level (for ablations).
	LevelSpec = graphdb.LevelSpec
	// BFSConfig parameterizes a parallel out-of-core BFS.
	BFSConfig = query.BFSConfig
	// BFSResult is the outcome of a BFS.
	BFSResult = query.BFSResult
	// MetaFilter restricts traversal by per-vertex metadata (semantic
	// typed BFS).
	MetaFilter = query.MetaFilter
	// KHopConfig parameterizes a k-hop neighbourhood count.
	KHopConfig = query.KHopConfig
	// KHopResult is the outcome of a k-hop analysis.
	KHopResult = query.KHopResult
	// QueryEngineConfig tunes the resident concurrent query scheduler.
	QueryEngineConfig = query.EngineConfig
	// QueryEngine is the resident scheduler: admission-controlled
	// concurrent queries over one engine's fabric and databases.
	QueryEngine = query.Engine
	// Query is one admitted query's ticket (status, result, latency).
	Query = query.Query
	// GraphStats summarizes a graph as in the paper's Table 5.1.
	GraphStats = gen.Stats
	// GenConfig parameterizes the synthetic scale-free generator.
	GenConfig = gen.Config
	// NodeID numbers cluster nodes.
	NodeID = cluster.NodeID
)

// Fabric kinds.
const (
	// InProc runs cluster nodes as goroutines with in-process mailboxes.
	InProc = core.InProc
	// TCP runs cluster nodes over loopback TCP sockets.
	TCP = core.TCP
)

// BFS fringe-routing modes (paper §4.2).
const (
	// KnownMapping routes fringe vertices to their owners (GID % p).
	KnownMapping = query.KnownMapping
	// BroadcastFringe broadcasts fringe vertices to all nodes.
	BroadcastFringe = query.BroadcastFringe
)

// Traversal metadata filters (Listing 3.1 operations; zero value = no
// filtering).
const (
	// FilterNone disables metadata filtering.
	FilterNone = query.FilterNone
	// FilterEqual keeps neighbours whose metadata equals the reference.
	FilterEqual = query.FilterEqual
	// FilterNotEqual keeps neighbours whose metadata differs.
	FilterNotEqual = query.FilterNotEqual
	// FilterGreater keeps neighbours whose metadata is greater.
	FilterGreater = query.FilterGreater
	// FilterLess keeps neighbours whose metadata is less.
	FilterLess = query.FilterLess
)

// KHop runs the k-hop neighbourhood analysis on an engine.
func KHop(e *Engine, cfg KHopConfig) (KHopResult, error) {
	return query.ParallelKHop(context.Background(), e.Fabric(), e.Databases(), cfg)
}

// ComponentResult describes a connected component (see Component).
type ComponentResult = query.ComponentResult

// Component measures the connected component containing seed.
func Component(e *Engine, seed VertexID) (ComponentResult, error) {
	return query.ParallelComponent(context.Background(), e.Fabric(), e.Databases(), seed, query.KnownMapping)
}

// NewQueryEngine builds a resident concurrent query scheduler over an
// engine's fabric and databases; see core.Engine.NewQueryEngine.
func NewQueryEngine(e *Engine, cfg QueryEngineConfig) (*QueryEngine, error) {
	return e.NewQueryEngine(cfg)
}

// IngestPolicy is a pluggable clustering/declustering policy.
type IngestPolicy = ingest.Policy

// GreedyCluster is the summary-based affinity clustering policy of paper
// §3.2; share one instance across all front-ends via IngestConfig.Policy.
type GreedyCluster = ingest.GreedyCluster

// NewGreedyCluster returns a greedy clustering policy with the given
// balance slack (edges a backend may exceed the lightest one by before
// affinity is overridden; 0 = default).
func NewGreedyCluster(slack int64) *GreedyCluster { return ingest.NewGreedyCluster(slack) }

// New creates an Engine: a cluster fabric plus one GraphDB instance per
// back-end node.
func New(cfg Config) (*Engine, error) { return core.New(cfg) }

// NewOntology returns an empty semantic ontology.
func NewOntology() *Ontology { return graph.NewOntology() }

// Backends lists the registered GraphDB backend names.
func Backends() []string { return graphdb.Backends() }

// Analyses lists the registered Query Service analyses.
func Analyses() []string { return query.Analyses() }

// Synthetic workloads matching the paper's Table 5.1 graphs, at a chosen
// scale (1.0 = the paper's vertex counts).

// PubMedS returns the PubMed-S analogue generator configuration.
func PubMedS(scale float64) GenConfig { return gen.PubMedS(scale) }

// PubMedL returns the PubMed-L analogue generator configuration.
func PubMedL(scale float64) GenConfig { return gen.PubMedL(scale) }

// Syn2B returns the Syn-2B analogue generator configuration.
func Syn2B(scale float64) GenConfig { return gen.Syn2B(scale) }

// Generate materializes a synthetic graph's edge list.
func Generate(cfg GenConfig) ([]Edge, error) { return gen.Generate(cfg) }

// ComputeStats computes Table 5.1-style statistics for an edge list.
func ComputeStats(name string, edges []Edge, numVertices int64) (GraphStats, error) {
	return gen.ComputeStats(name, &edgeSliceReader{edges: edges}, numVertices)
}

type edgeSliceReader struct {
	edges []Edge
	pos   int
}

func (r *edgeSliceReader) ReadEdge() (Edge, error) {
	if r.pos >= len(r.edges) {
		return Edge{}, errEOF
	}
	e := r.edges[r.pos]
	r.pos++
	return e, nil
}

var errEOF = io.EOF
