// Package graph defines the base vocabulary shared by every MSSG
// component: vertex identifiers, edges, adjacency containers, and the
// semantic-typing layer (ontologies) described in chapter 1 of the paper.
//
// The storage backends (package graphdb and its children), the ingestion
// and query services, and the cluster runtime all speak in these types.
package graph

import (
	"errors"
	"fmt"
)

// VertexID is a global vertex identifier (GID).
//
// IDs are 64-bit, but only the low 61 bits are usable: grDB reserves the
// three most significant bits as pointer tag bits (paper §4.1.6), and the
// rest of the framework honours that restriction so any graph can be stored
// in any backend. That still allows 2×10^18 vertices.
type VertexID int64

// MaxVertexID is the largest legal vertex identifier (2^61 - 1).
const MaxVertexID VertexID = (1 << 61) - 1

// Valid reports whether the ID lies in the legal 61-bit range.
func (v VertexID) Valid() bool { return v >= 0 && v <= MaxVertexID }

// Edge is a single directed adjacency record: Src knows Dst as a
// distance-1 neighbour. Undirected semantic edges are represented by
// storing both orientations, which is what the Ingestion Service does by
// default (paper Table 5.1 counts undirected edges).
type Edge struct {
	Src VertexID
	Dst VertexID
}

// Reverse returns the opposite orientation of e.
func (e Edge) Reverse() Edge { return Edge{Src: e.Dst, Dst: e.Src} }

func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.Src, e.Dst) }

// ErrInvalidVertex is returned when a vertex ID falls outside the legal
// 61-bit range.
var ErrInvalidVertex = errors.New("graph: vertex id outside 61-bit range")

// ValidateEdge checks both endpoints of e.
func ValidateEdge(e Edge) error {
	if !e.Src.Valid() || !e.Dst.Valid() {
		return fmt.Errorf("%w: %v", ErrInvalidVertex, e)
	}
	return nil
}

// AdjList is a growable list of neighbour vertex IDs. It plays the role of
// the paper's FastLongArrayStorage (Listing 3.1): a reusable container that
// query algorithms pass into the GraphDB layer so adjacency retrieval does
// not allocate per call.
type AdjList struct {
	ids []VertexID
}

// NewAdjList returns an AdjList with the given initial capacity.
func NewAdjList(capacity int) *AdjList {
	return &AdjList{ids: make([]VertexID, 0, capacity)}
}

// Reset empties the list, keeping the underlying storage for reuse.
func (a *AdjList) Reset() { a.ids = a.ids[:0] }

// Append adds one neighbour.
func (a *AdjList) Append(v VertexID) { a.ids = append(a.ids, v) }

// AppendAll adds a batch of neighbours.
func (a *AdjList) AppendAll(vs []VertexID) { a.ids = append(a.ids, vs...) }

// Len returns the number of neighbours currently held.
func (a *AdjList) Len() int { return len(a.ids) }

// At returns the i-th neighbour.
func (a *AdjList) At(i int) VertexID { return a.ids[i] }

// IDs exposes the backing slice; valid until the next mutation. Callers
// must not retain it across Reset/Append.
func (a *AdjList) IDs() []VertexID { return a.ids }

// Clone returns an independent copy.
func (a *AdjList) Clone() *AdjList {
	c := &AdjList{ids: make([]VertexID, len(a.ids))}
	copy(c.ids, a.ids)
	return c
}
