package graph

import (
	"bytes"
	"io"
	"testing"
)

// FuzzEdgeRoundTrip checks decode(encode(e)) == e through both edge
// codecs for arbitrary vertex ids (masked into the 61-bit legal range).
func FuzzEdgeRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(42), uint64(42))
	f.Add(uint64(MaxVertexID), uint64(0))
	f.Add(^uint64(0), uint64(1<<61))
	f.Fuzz(func(t *testing.T, rawSrc, rawDst uint64) {
		e := Edge{
			Src: VertexID(rawSrc) & MaxVertexID,
			Dst: VertexID(rawDst) & MaxVertexID,
		}

		var bin bytes.Buffer
		bw := NewBinaryEdgeWriter(&bin)
		if err := bw.WriteEdge(e); err != nil {
			t.Fatalf("binary write %v: %v", e, err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewBinaryEdgeReader(&bin).ReadEdge()
		if err != nil {
			t.Fatalf("binary read back %v: %v", e, err)
		}
		if got != e {
			t.Fatalf("binary round trip: wrote %v, read %v", e, got)
		}

		var asc bytes.Buffer
		aw := NewASCIIEdgeWriter(&asc)
		if err := aw.WriteEdge(e); err != nil {
			t.Fatalf("ascii write %v: %v", e, err)
		}
		if err := aw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err = NewASCIIEdgeReader(&asc).ReadEdge()
		if err != nil {
			t.Fatalf("ascii read back %v: %v", e, err)
		}
		if got != e {
			t.Fatalf("ascii round trip: wrote %v, read %v", e, got)
		}
	})
}

// FuzzEdgeDecodeNoPanic feeds arbitrary bytes to both edge decoders:
// they may reject the input with an error, but must never panic, and
// every edge an ASCII decode does accept must be valid.
func FuzzEdgeDecodeNoPanic(f *testing.F) {
	f.Add([]byte("0 1\n2 3\n"))
	f.Add([]byte("# comment\n\n 7\t9 \n"))
	f.Add([]byte("9999999999999999999999 0\n"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(make([]byte, 33))
	f.Fuzz(func(t *testing.T, data []byte) {
		ar := NewASCIIEdgeReader(bytes.NewReader(data))
		for {
			e, err := ar.ReadEdge()
			if err != nil {
				break
			}
			if verr := ValidateEdge(e); verr != nil {
				t.Fatalf("ascii decode accepted invalid edge %v: %v", e, verr)
			}
		}
		br := NewBinaryEdgeReader(bytes.NewReader(data))
		for {
			if _, err := br.ReadEdge(); err != nil {
				if err != io.EOF && len(data)%16 == 0 {
					t.Fatalf("binary decode of %d aligned bytes: %v", len(data), err)
				}
				break
			}
		}
	})
}
