package graph

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestVertexIDValid(t *testing.T) {
	cases := []struct {
		v    VertexID
		want bool
	}{
		{0, true},
		{1, true},
		{MaxVertexID, true},
		{MaxVertexID + 1, false},
		{-1, false},
	}
	for _, tc := range cases {
		if got := tc.v.Valid(); got != tc.want {
			t.Errorf("VertexID(%d).Valid() = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestValidateEdge(t *testing.T) {
	if err := ValidateEdge(Edge{Src: 1, Dst: 2}); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if err := ValidateEdge(Edge{Src: -1, Dst: 2}); err == nil {
		t.Error("negative src accepted")
	}
	if err := ValidateEdge(Edge{Src: 1, Dst: MaxVertexID + 1}); err == nil {
		t.Error("overflow dst accepted")
	}
}

func TestEdgeReverse(t *testing.T) {
	e := Edge{Src: 7, Dst: 9}
	if got := e.Reverse(); got != (Edge{Src: 9, Dst: 7}) {
		t.Errorf("Reverse = %v", got)
	}
	if got := e.Reverse().Reverse(); got != e {
		t.Errorf("double Reverse = %v, want %v", got, e)
	}
}

func TestAdjListReuse(t *testing.T) {
	a := NewAdjList(2)
	a.Append(1)
	a.AppendAll([]VertexID{2, 3})
	if a.Len() != 3 || a.At(2) != 3 {
		t.Fatalf("unexpected contents: %v", a.IDs())
	}
	c := a.Clone()
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("Reset did not empty list")
	}
	if c.Len() != 3 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestASCIIEdgeRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1}, {5, 7}, {MaxVertexID, 0}}
	var buf bytes.Buffer
	w := NewASCIIEdgeWriter(&buf)
	if err := WriteAllEdges(w, edges); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadAllEdges(NewASCIIEdgeReader(&buf))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, edges) {
		t.Fatalf("round trip = %v, want %v", got, edges)
	}
}

func TestASCIIEdgeReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 2\n  \n# mid\n3 4 extra-ignored\n"
	got, err := ReadAllEdges(NewASCIIEdgeReader(strings.NewReader(in)))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := []Edge{{1, 2}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestASCIIEdgeReaderErrors(t *testing.T) {
	cases := []string{
		"1\n",                      // missing dst
		"a b\n",                    // non-numeric
		"1 x\n",                    // bad dst
		"-1 2\n",                   // invalid vertex
		"1 99999999999999999999\n", // overflow
	}
	for _, in := range cases {
		_, err := ReadAllEdges(NewASCIIEdgeReader(strings.NewReader(in)))
		if err == nil {
			t.Errorf("input %q accepted, want error", in)
		}
	}
}

func TestBinaryEdgeRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1}, {1 << 60, 42}, {9, 9}}
	var buf bytes.Buffer
	w := NewBinaryEdgeWriter(&buf)
	if err := WriteAllEdges(w, edges); err != nil {
		t.Fatalf("write: %v", err)
	}
	if buf.Len() != 16*len(edges) {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), 16*len(edges))
	}
	got, err := ReadAllEdges(NewBinaryEdgeReader(&buf))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, edges) {
		t.Fatalf("round trip = %v, want %v", got, edges)
	}
}

func TestBinaryEdgeReaderTruncated(t *testing.T) {
	r := NewBinaryEdgeReader(strings.NewReader("short"))
	if _, err := r.ReadEdge(); err == nil || err == io.EOF {
		t.Fatalf("truncated record: err = %v, want explicit error", err)
	}
}

// Property: any slice of valid edges survives both encodings unchanged.
func TestQuickEdgeCodecs(t *testing.T) {
	check := func(raw []struct{ S, D uint32 }) bool {
		edges := make([]Edge, len(raw))
		for i, r := range raw {
			edges[i] = Edge{Src: VertexID(r.S), Dst: VertexID(r.D)}
		}
		var ab, bb bytes.Buffer
		if err := WriteAllEdges(NewASCIIEdgeWriter(&ab), edges); err != nil {
			return false
		}
		if err := WriteAllEdges(NewBinaryEdgeWriter(&bb), edges); err != nil {
			return false
		}
		ga, err := ReadAllEdges(NewASCIIEdgeReader(&ab))
		if err != nil {
			return false
		}
		gb, err := ReadAllEdges(NewBinaryEdgeReader(&bb))
		if err != nil {
			return false
		}
		if len(edges) == 0 {
			return len(ga) == 0 && len(gb) == 0
		}
		return reflect.DeepEqual(ga, edges) && reflect.DeepEqual(gb, edges)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOntologyFigure11(t *testing.T) {
	o := NewOntology()
	person := o.DefineVertexType("Person")
	meeting := o.DefineVertexType("Meeting")
	date := o.DefineVertexType("Date")
	attends := o.DefineEdgeType("attends")
	occurred := o.DefineEdgeType("occurred on")
	o.AllowSymmetric(person, attends, meeting)
	o.AllowSymmetric(meeting, occurred, date)

	ok := TypedEdge{Edge: Edge{1, 2}, SrcType: person, EdgeType: attends, DstType: meeting}
	if err := o.Validate(ok); err != nil {
		t.Errorf("legal edge rejected: %v", err)
	}
	rev := TypedEdge{Edge: Edge{2, 1}, SrcType: meeting, EdgeType: attends, DstType: person}
	if err := o.Validate(rev); err != nil {
		t.Errorf("symmetric orientation rejected: %v", err)
	}
	// The Figure 1.1 restriction: Person never connects directly to Date.
	bad := TypedEdge{Edge: Edge{1, 3}, SrcType: person, EdgeType: attends, DstType: date}
	if err := o.Validate(bad); err == nil {
		t.Error("Person->Date accepted; ontology must reject it")
	}
}

func TestOntologyTypeNamesAndIdempotentDefine(t *testing.T) {
	o := NewOntology()
	a := o.DefineVertexType("A")
	a2 := o.DefineVertexType("A")
	if a != a2 {
		t.Fatalf("re-defining type gave %d then %d", a, a2)
	}
	name, ok := o.VertexTypeName(a)
	if !ok || name != "A" {
		t.Fatalf("VertexTypeName = %q, %v", name, ok)
	}
	if _, ok := o.VertexTypeName(99); ok {
		t.Fatal("unknown TypeID resolved")
	}
	if o.NumVertexTypes() != 2 { // untyped + A
		t.Fatalf("NumVertexTypes = %d", o.NumVertexTypes())
	}
}

func TestOntologyUntypedAlwaysAllowed(t *testing.T) {
	o := NewOntology()
	e := TypedEdge{Edge: Edge{1, 2}} // all types zero
	if err := o.Validate(e); err != nil {
		t.Fatalf("untyped edge rejected: %v", err)
	}
}

func TestOntologyTriplesDeterministic(t *testing.T) {
	o := NewOntology()
	a := o.DefineVertexType("A")
	b := o.DefineVertexType("B")
	e := o.DefineEdgeType("rel")
	o.AllowSymmetric(a, e, b)
	t1 := o.Triples()
	t2 := o.Triples()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("Triples order is not deterministic")
	}
	if len(t1) != 3 { // untyped default + both orientations
		t.Fatalf("len(Triples) = %d, want 3", len(t1))
	}
}
