package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// TypeID identifies a vertex type or an edge type within an Ontology.
// Type 0 is reserved for "untyped".
type TypeID int32

// Untyped is the zero TypeID, used for plain (non-semantic) graphs.
const Untyped TypeID = 0

// Ontology is a semantic-graph blueprint (paper Fig 1.1): it names vertex
// and edge types and records which (source type, edge type, target type)
// triples an instance graph may contain. An ontology is itself just a small
// semantic graph; when used as a blueprint it restricts the topology of
// instance graphs.
//
// Ontology is safe for concurrent use after construction; mutating methods
// (DefineVertexType, DefineEdgeType, Allow) take an internal lock so an
// ontology can also be grown while ingestion is running.
type Ontology struct {
	mu          sync.RWMutex
	vertexTypes []string // index = TypeID
	edgeTypes   []string // index = TypeID
	vertexIdx   map[string]TypeID
	edgeIdx     map[string]TypeID
	allowed     map[ontTriple]bool
}

type ontTriple struct {
	src  TypeID
	edge TypeID
	dst  TypeID
}

// NewOntology returns an empty ontology. TypeID 0 is pre-defined as the
// untyped vertex/edge type, and untyped edges between untyped vertices are
// always allowed so plain graphs validate trivially.
func NewOntology() *Ontology {
	o := &Ontology{
		vertexTypes: []string{"<untyped>"},
		edgeTypes:   []string{"<untyped>"},
		vertexIdx:   map[string]TypeID{"<untyped>": Untyped},
		edgeIdx:     map[string]TypeID{"<untyped>": Untyped},
		allowed:     map[ontTriple]bool{{Untyped, Untyped, Untyped}: true},
	}
	return o
}

// DefineVertexType registers (or looks up) a vertex type by name.
func (o *Ontology) DefineVertexType(name string) TypeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok := o.vertexIdx[name]; ok {
		return id
	}
	id := TypeID(len(o.vertexTypes))
	o.vertexTypes = append(o.vertexTypes, name)
	o.vertexIdx[name] = id
	return id
}

// DefineEdgeType registers (or looks up) an edge type by name.
func (o *Ontology) DefineEdgeType(name string) TypeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok := o.edgeIdx[name]; ok {
		return id
	}
	id := TypeID(len(o.edgeTypes))
	o.edgeTypes = append(o.edgeTypes, name)
	o.edgeIdx[name] = id
	return id
}

// Allow records that edges of type et may connect a source vertex of type
// st to a destination vertex of type dt. Semantic edges are typically
// symmetric relationships, so AllowSymmetric is usually what ingestion
// pipelines want.
func (o *Ontology) Allow(st, et, dt TypeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.allowed[ontTriple{st, et, dt}] = true
}

// AllowSymmetric records both orientations of the triple.
func (o *Ontology) AllowSymmetric(st, et, dt TypeID) {
	o.Allow(st, et, dt)
	o.Allow(dt, et, st)
}

// Allows reports whether the triple is legal under the ontology.
func (o *Ontology) Allows(st, et, dt TypeID) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.allowed[ontTriple{st, et, dt}]
}

// VertexTypeName resolves a vertex TypeID to its name.
func (o *Ontology) VertexTypeName(id TypeID) (string, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if id < 0 || int(id) >= len(o.vertexTypes) {
		return "", false
	}
	return o.vertexTypes[id], true
}

// EdgeTypeName resolves an edge TypeID to its name.
func (o *Ontology) EdgeTypeName(id TypeID) (string, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if id < 0 || int(id) >= len(o.edgeTypes) {
		return "", false
	}
	return o.edgeTypes[id], true
}

// NumVertexTypes returns the number of registered vertex types, including
// the reserved untyped type.
func (o *Ontology) NumVertexTypes() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.vertexTypes)
}

// NumEdgeTypes returns the number of registered edge types, including the
// reserved untyped type.
func (o *Ontology) NumEdgeTypes() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.edgeTypes)
}

// Triples returns all allowed triples in deterministic order (useful for
// printing an ontology and in tests).
func (o *Ontology) Triples() [][3]TypeID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([][3]TypeID, 0, len(o.allowed))
	for t := range o.allowed {
		out = append(out, [3]TypeID{t.src, t.edge, t.dst})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		if out[i][1] != out[j][1] {
			return out[i][1] < out[j][1]
		}
		return out[i][2] < out[j][2]
	})
	return out
}

// TypedEdge is an edge carrying semantic type information for both
// endpoints and the relationship itself.
type TypedEdge struct {
	Edge
	SrcType  TypeID
	EdgeType TypeID
	DstType  TypeID
}

// ErrOntologyViolation is returned by Validate for edges whose type triple
// the ontology does not allow.
var ErrOntologyViolation = errors.New("graph: edge violates ontology")

// Validate checks a typed edge against the ontology.
func (o *Ontology) Validate(e TypedEdge) error {
	if err := ValidateEdge(e.Edge); err != nil {
		return err
	}
	if !o.Allows(e.SrcType, e.EdgeType, e.DstType) {
		sn, _ := o.VertexTypeName(e.SrcType)
		en, _ := o.EdgeTypeName(e.EdgeType)
		dn, _ := o.VertexTypeName(e.DstType)
		return fmt.Errorf("%w: (%s)-[%s]->(%s)", ErrOntologyViolation, sn, en, dn)
	}
	return nil
}
