package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge stream encodings. The paper's ingestion experiments stream ASCII
// edge lists into the front-end nodes, while StreamDB persists binary
// records (§5, Fig 5.5 discussion); both formats are provided here.

// EdgeReader reads a stream of edges.
type EdgeReader interface {
	// ReadEdge returns the next edge, or io.EOF when the stream ends.
	ReadEdge() (Edge, error)
}

// EdgeWriter writes a stream of edges. Writers buffer internally; call
// Flush before closing the underlying sink.
type EdgeWriter interface {
	WriteEdge(Edge) error
	Flush() error
}

// ASCIIEdgeReader parses whitespace-separated "src dst" pairs, one per
// line. Blank lines and lines starting with '#' are skipped.
type ASCIIEdgeReader struct {
	s    *bufio.Scanner
	line int
}

// NewASCIIEdgeReader wraps r in an ASCII edge-list parser.
func NewASCIIEdgeReader(r io.Reader) *ASCIIEdgeReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1024*1024)
	return &ASCIIEdgeReader{s: s}
}

// ReadEdge implements EdgeReader.
func (r *ASCIIEdgeReader) ReadEdge() (Edge, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return Edge{}, fmt.Errorf("graph: line %d: want 2 fields, got %d", r.line, len(fields))
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return Edge{}, fmt.Errorf("graph: line %d: bad src: %w", r.line, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Edge{}, fmt.Errorf("graph: line %d: bad dst: %w", r.line, err)
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		if err := ValidateEdge(e); err != nil {
			return Edge{}, fmt.Errorf("graph: line %d: %w", r.line, err)
		}
		return e, nil
	}
	if err := r.s.Err(); err != nil {
		return Edge{}, err
	}
	return Edge{}, io.EOF
}

// ASCIIEdgeWriter emits "src dst\n" lines.
type ASCIIEdgeWriter struct {
	w *bufio.Writer
}

// NewASCIIEdgeWriter wraps w in a buffered ASCII edge-list writer.
func NewASCIIEdgeWriter(w io.Writer) *ASCIIEdgeWriter {
	return &ASCIIEdgeWriter{w: bufio.NewWriterSize(w, 256*1024)}
}

// WriteEdge implements EdgeWriter.
func (w *ASCIIEdgeWriter) WriteEdge(e Edge) error {
	var buf [42]byte
	b := strconv.AppendInt(buf[:0], int64(e.Src), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(e.Dst), 10)
	b = append(b, '\n')
	_, err := w.w.Write(b)
	return err
}

// Flush implements EdgeWriter.
func (w *ASCIIEdgeWriter) Flush() error { return w.w.Flush() }

// BinaryEdgeReader reads fixed 16-byte little-endian (src,dst) records.
type BinaryEdgeReader struct {
	r   *bufio.Reader
	buf [16]byte
}

// NewBinaryEdgeReader wraps r in a binary edge reader.
func NewBinaryEdgeReader(r io.Reader) *BinaryEdgeReader {
	return &BinaryEdgeReader{r: bufio.NewReaderSize(r, 256*1024)}
}

// ReadEdge implements EdgeReader.
func (r *BinaryEdgeReader) ReadEdge() (Edge, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Edge{}, fmt.Errorf("graph: truncated binary edge record: %w", err)
		}
		return Edge{}, err
	}
	return Edge{
		Src: VertexID(binary.LittleEndian.Uint64(r.buf[0:8])),
		Dst: VertexID(binary.LittleEndian.Uint64(r.buf[8:16])),
	}, nil
}

// BinaryEdgeWriter writes fixed 16-byte little-endian (src,dst) records.
type BinaryEdgeWriter struct {
	w   *bufio.Writer
	buf [16]byte
}

// NewBinaryEdgeWriter wraps w in a binary edge writer.
func NewBinaryEdgeWriter(w io.Writer) *BinaryEdgeWriter {
	return &BinaryEdgeWriter{w: bufio.NewWriterSize(w, 256*1024)}
}

// WriteEdge implements EdgeWriter.
func (w *BinaryEdgeWriter) WriteEdge(e Edge) error {
	binary.LittleEndian.PutUint64(w.buf[0:8], uint64(e.Src))
	binary.LittleEndian.PutUint64(w.buf[8:16], uint64(e.Dst))
	_, err := w.w.Write(w.buf[:])
	return err
}

// Flush implements EdgeWriter.
func (w *BinaryEdgeWriter) Flush() error { return w.w.Flush() }

// ReadAllEdges drains an EdgeReader into a slice. Intended for tests and
// small inputs; ingestion streams edges instead.
func ReadAllEdges(r EdgeReader) ([]Edge, error) {
	var edges []Edge
	for {
		e, err := r.ReadEdge()
		if err == io.EOF {
			return edges, nil
		}
		if err != nil {
			return nil, err
		}
		edges = append(edges, e)
	}
}

// WriteAllEdges writes a slice of edges and flushes.
func WriteAllEdges(w EdgeWriter, edges []Edge) error {
	for _, e := range edges {
		if err := w.WriteEdge(e); err != nil {
			return err
		}
	}
	return w.Flush()
}
