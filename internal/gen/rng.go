// Package gen generates deterministic scale-free graphs and computes the
// degree statistics reported in Table 5.1 of the paper. The real PubMed-S
// and PubMed-L inputs were proprietary extracts of the PubMed document
// database; this package provides synthetic analogues with matching degree
// structure (power-law body plus a giant hub), as documented in DESIGN.md.
package gen

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is used instead of math/rand so generated graphs are
// bit-identical across Go releases, which keeps every experiment in the
// harness reproducible.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Two generators with the same seed produce the
// same sequence.
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("gen: Int63n with non-positive bound")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as int64s.
func (r *RNG) Perm(n int) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Int63n(int64(i + 1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
