package gen

import (
	"fmt"
	"io"
	"sort"

	"mssg/internal/graph"
)

// Stats summarizes a graph the way Table 5.1 of the paper does, plus a few
// extra fields used by the experiment reports.
type Stats struct {
	Name      string
	Vertices  int64 // vertices with degree >= 1
	UndEdges  int64 // undirected edge count (each input edge counted once)
	MinDegree int64
	MaxDegree int64
	AvgDegree float64
	// MaxDegreeVertex is the hub (useful for picking query endpoints).
	MaxDegreeVertex graph.VertexID
}

// String renders one Table 5.1-style row.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s %12d %14d %6d %10d %8.2f",
		s.Name, s.Vertices, s.UndEdges, s.MinDegree, s.MaxDegree, s.AvgDegree)
}

// StatsHeader is the column header matching Stats.String.
const StatsHeader = "Graph         Vertices      Und.Edges    Min       Max      Avg"

// ComputeStats drains an edge stream and computes degree statistics.
// numVertices bounds the ID space (degrees are tracked in a dense array).
// Each input edge contributes degree to both endpoints, i.e. edges are
// treated as undirected, matching the paper's accounting.
func ComputeStats(name string, r graph.EdgeReader, numVertices int64) (Stats, error) {
	deg := make([]int64, numVertices)
	var edges int64
	for {
		e, err := r.ReadEdge()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Stats{}, err
		}
		if int64(e.Src) >= numVertices || int64(e.Dst) >= numVertices {
			return Stats{}, fmt.Errorf("gen: edge %v outside vertex space %d", e, numVertices)
		}
		deg[e.Src]++
		deg[e.Dst]++
		edges++
	}
	s := Stats{Name: name, UndEdges: edges, MinDegree: -1}
	for v, d := range deg {
		if d == 0 {
			continue
		}
		s.Vertices++
		if s.MinDegree < 0 || d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
			s.MaxDegreeVertex = graph.VertexID(v)
		}
	}
	if s.MinDegree < 0 {
		s.MinDegree = 0
	}
	if s.Vertices > 0 {
		s.AvgDegree = 2 * float64(edges) / float64(s.Vertices)
	}
	return s, nil
}

// DegreeHistogram buckets vertex degrees into powers of two; used by tests
// to verify the generated distribution is heavy-tailed (power-law-like).
func DegreeHistogram(edges []graph.Edge, numVertices int64) map[int]int64 {
	deg := make([]int64, numVertices)
	for _, e := range edges {
		deg[e.Src]++
		deg[e.Dst]++
	}
	hist := make(map[int]int64)
	for _, d := range deg {
		if d == 0 {
			continue
		}
		bucket := 0
		for dd := d; dd > 1; dd >>= 1 {
			bucket++
		}
		hist[bucket]++
	}
	return hist
}

// RandomQueryPairs picks n (source, destination) vertex pairs with both
// endpoints guaranteed to have degree >= 1 in the given edge list, as the
// paper's "100 random BFS queries" do. The same seed yields the same
// pairs.
func RandomQueryPairs(edges []graph.Edge, numVertices int64, n int, seed int64) [][2]graph.VertexID {
	present := make(map[graph.VertexID]bool)
	for _, e := range edges {
		present[e.Src] = true
		present[e.Dst] = true
	}
	ids := make([]graph.VertexID, 0, len(present))
	for v := range present {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rng := NewRNG(seed)
	pairs := make([][2]graph.VertexID, 0, n)
	for len(pairs) < n {
		s := ids[rng.Int63n(int64(len(ids)))]
		d := ids[rng.Int63n(int64(len(ids)))]
		if s == d {
			continue
		}
		pairs = append(pairs, [2]graph.VertexID{s, d})
	}
	return pairs
}
