package gen

import (
	"fmt"
	"io"

	"mssg/internal/graph"
)

// Config parameterizes a synthetic scale-free graph.
//
// The generator is Barabási–Albert preferential attachment (each new vertex
// attaches to M existing vertices chosen proportionally to degree), which
// yields the power-law degree distribution the paper targets, optionally
// followed by "hub injection": vertex 0 gains an edge to each other vertex
// with probability HubFraction. Hub injection models the enormous maximum
// degrees of the PubMed extracts (Table 5.1: max degree 722,692 of
// 3,751,921 vertices in PubMed-S — a single entity adjacent to ~19% of the
// graph), which plain BA cannot reach.
type Config struct {
	// Name labels the graph in reports (e.g. "PubMed-S'").
	Name string
	// Vertices is the number of vertices; IDs are 0..Vertices-1.
	Vertices int64
	// M is the number of attachment edges per new vertex (≈ half the
	// average undirected degree).
	M int
	// HubFraction, if positive, connects vertex 0 to each other vertex
	// with this probability.
	HubFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Vertices < 2 {
		return fmt.Errorf("gen: need at least 2 vertices, got %d", c.Vertices)
	}
	if c.M < 1 {
		return fmt.Errorf("gen: attachment count M must be >= 1, got %d", c.M)
	}
	if int64(c.M) >= c.Vertices {
		return fmt.Errorf("gen: M (%d) must be < Vertices (%d)", c.M, c.Vertices)
	}
	if c.HubFraction < 0 || c.HubFraction > 1 {
		return fmt.Errorf("gen: HubFraction must be in [0,1], got %g", c.HubFraction)
	}
	return nil
}

// Generator produces the edges of one synthetic graph as a stream. It
// implements graph.EdgeReader so graphs can be piped straight into the
// Ingestion Service without materializing the edge list.
type Generator struct {
	cfg Config
	rng *RNG

	// targets holds one entry per edge endpoint emitted so far; sampling
	// uniformly from it realizes preferential attachment.
	targets []graph.VertexID

	next     int64 // next vertex to attach
	mi       int   // attachment edges already emitted for vertex `next`
	mTarget  int   // attachment edges vertex `next` will emit in total
	dedup    map[graph.VertexID]bool
	hubNext  int64 // next candidate for hub injection (phase 2)
	inHub    bool
	produced int64
}

// NewGenerator validates cfg and returns a streaming generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:   cfg,
		rng:   NewRNG(cfg.Seed),
		dedup: make(map[graph.VertexID]bool, cfg.M),
	}
	// Seed the process with a (M+1)-vertex star so every early vertex has
	// non-zero degree; attachment starts at vertex M+1... unless the graph
	// is tiny, in which case the star is the whole graph.
	seedN := int64(cfg.M) + 1
	if seedN > cfg.Vertices {
		seedN = cfg.Vertices
	}
	for v := int64(1); v < seedN; v++ {
		g.targets = append(g.targets, 0, graph.VertexID(v))
	}
	g.next = seedN
	g.hubNext = 1
	return g, nil
}

// seedEdges returns the number of edges in the seed star.
func (g *Generator) seedEdges() int64 {
	seedN := int64(g.cfg.M) + 1
	if seedN > g.cfg.Vertices {
		seedN = g.cfg.Vertices
	}
	return seedN - 1
}

// ReadEdge implements graph.EdgeReader. Edges are emitted in three phases:
// the seed star, preferential attachment, then hub injection.
func (g *Generator) ReadEdge() (graph.Edge, error) {
	// Phase 0: replay the seed star (targets was pre-filled pairwise).
	if g.produced < g.seedEdges() {
		e := graph.Edge{
			Src: g.targets[2*g.produced],
			Dst: g.targets[2*g.produced+1],
		}
		g.produced++
		return e, nil
	}
	// Phase 1: preferential attachment. Each vertex attaches with a
	// uniformly drawn count in [1, 2M-1] (mean M), so the generated
	// graphs include the degree-1 vertices of the paper's Table 5.1
	// while keeping the target average degree.
	for g.next < g.cfg.Vertices {
		if g.mi == 0 {
			clear(g.dedup)
			g.mTarget = 1
			if g.cfg.M > 1 {
				g.mTarget = 1 + int(g.rng.Int63n(int64(2*g.cfg.M-1)))
			}
		}
		for g.mi < g.mTarget {
			// Sample an existing endpoint proportional to degree; retry on
			// self-loops and duplicates. Bounded retries keep generation
			// O(1) amortized even for small graphs.
			var t graph.VertexID
			found := false
			for attempt := 0; attempt < 32; attempt++ {
				t = g.targets[g.rng.Int63n(int64(len(g.targets)))]
				if t != graph.VertexID(g.next) && !g.dedup[t] {
					found = true
					break
				}
			}
			if !found {
				// Degenerate corner (few distinct candidates): fall back to
				// a uniform pick among earlier vertices.
				t = graph.VertexID(g.rng.Int63n(g.next))
				if t == graph.VertexID(g.next) || g.dedup[t] {
					g.mi++
					continue
				}
			}
			g.dedup[t] = true
			e := graph.Edge{Src: graph.VertexID(g.next), Dst: t}
			g.targets = append(g.targets, e.Src, e.Dst)
			g.mi++
			g.produced++
			return e, nil
		}
		g.next++
		g.mi = 0
	}
	// Phase 2: hub injection.
	if g.cfg.HubFraction > 0 {
		for g.hubNext < g.cfg.Vertices {
			v := g.hubNext
			g.hubNext++
			if g.rng.Float64() < g.cfg.HubFraction {
				g.produced++
				return graph.Edge{Src: 0, Dst: graph.VertexID(v)}, nil
			}
		}
	}
	return graph.Edge{}, io.EOF
}

// Generate materializes the whole edge list. Convenient for tests and for
// the smaller experiment scales.
func Generate(cfg Config) ([]graph.Edge, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return graph.ReadAllEdges(g)
}
