package gen

import "fmt"

// Presets matching Table 5.1 of the paper. Scale 1.0 would reproduce the
// paper's vertex counts (3.75M / 26.7M / 100M vertices); the experiment
// harness defaults to much smaller scales so a full run completes on one
// machine, and prints the statistics table for whatever scale is chosen.
//
//	Graph     Vertices     Und.Edges    MinDeg MaxDeg    AvgDeg
//	PubMed-S  3,751,921    27,841,339   1      722,692   14.84
//	PubMed-L  26,676,177   259,815,339  1      6,114,328 19.48
//	Syn-2B    100,000,000  999,999,820  1      42,964    20.00
const (
	pubMedSVertices = 3_751_921
	pubMedLVertices = 26_676_177
	syn2BVertices   = 100_000_000
)

// PubMedS returns a configuration for a PubMed-S analogue at the given
// scale (fraction of the paper's vertex count). Average undirected degree
// ≈ 14.8 via M=7 attachment plus an ~19% hub, matching the paper's
// max-degree-to-vertices ratio (722,692 / 3,751,921 ≈ 0.193).
func PubMedS(scale float64) Config {
	return Config{
		Name:        "PubMed-S'",
		Vertices:    scaled(pubMedSVertices, scale),
		M:           7,
		HubFraction: 0.193,
		Seed:        20060501,
	}
}

// PubMedL returns a configuration for a PubMed-L analogue. Average degree
// ≈ 19.5 via M=9 attachment plus a ~23% hub (6,114,328 / 26,676,177 ≈
// 0.229).
func PubMedL(scale float64) Config {
	return Config{
		Name:        "PubMed-L'",
		Vertices:    scaled(pubMedLVertices, scale),
		M:           9,
		HubFraction: 0.229,
		Seed:        20060502,
	}
}

// Syn2B returns a configuration for a Syn-2B analogue: pure preferential
// attachment with average degree 20 (M=10) and no injected hub; the
// paper's synthetic graph likewise has a comparatively modest maximum
// degree (42,964 of 100M vertices).
func Syn2B(scale float64) Config {
	return Config{
		Name:     "Syn'",
		Vertices: scaled(syn2BVertices, scale),
		M:        10,
		Seed:     20060503,
	}
}

func scaled(n int64, scale float64) int64 {
	if scale <= 0 {
		scale = 1
	}
	v := int64(float64(n) * scale)
	if v < 32 {
		v = 32
	}
	return v
}

// Preset looks up a preset by the names used in the paper and the bench
// harness: "pubmed-s", "pubmed-l", "syn-2b".
func Preset(name string, scale float64) (Config, error) {
	switch name {
	case "pubmed-s", "pubmeds", "PubMed-S":
		return PubMedS(scale), nil
	case "pubmed-l", "pubmedl", "PubMed-L":
		return PubMedL(scale), nil
	case "syn-2b", "syn2b", "syn", "Syn-2B":
		return Syn2B(scale), nil
	}
	return Config{}, fmt.Errorf("gen: unknown preset %q (want pubmed-s, pubmed-l or syn-2b)", name)
}
