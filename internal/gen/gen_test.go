package gen

import (
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"mssg/internal/graph"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGInt63nBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int64{1, 2, 3, 10, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	NewRNG(1).Int63n(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(5).Perm(50)
	seen := make(map[int64]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{Name: "d", Vertices: 500, M: 3, HubFraction: 0.1, Seed: 123}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different graphs")
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []Config{
		{Vertices: 1, M: 1},
		{Vertices: 100, M: 0},
		{Vertices: 10, M: 10},
		{Vertices: 100, M: 2, HubFraction: 1.5},
		{Vertices: 100, M: 2, HubFraction: -0.1},
	}
	for _, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

func TestGeneratorNoSelfLoopsNoDuplicatePerVertexBatch(t *testing.T) {
	edges, err := Generate(Config{Name: "s", Vertices: 2000, M: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatalf("self loop: %v", e)
		}
	}
}

func TestGeneratorEdgesWithinVertexSpace(t *testing.T) {
	cfg := Config{Name: "r", Vertices: 300, M: 2, HubFraction: 0.3, Seed: 8}
	edges, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if int64(e.Src) >= cfg.Vertices || int64(e.Dst) >= cfg.Vertices || e.Src < 0 || e.Dst < 0 {
			t.Fatalf("edge %v outside [0,%d)", e, cfg.Vertices)
		}
	}
}

// TestPowerLawShape checks the heavy tail: the degree histogram must be
// monotonically decreasing over the low buckets (many low-degree
// vertices) while still containing high-degree vertices.
func TestPowerLawShape(t *testing.T) {
	cfg := Config{Name: "p", Vertices: 20000, M: 5, Seed: 99}
	edges, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := DegreeHistogram(edges, cfg.Vertices)
	// Above the attachment mean (2M = 10, bucket 3), counts must fall
	// monotonically — the power-law tail.
	for b := 3; b < 7; b++ {
		if hist[b] < hist[b+1] {
			t.Fatalf("histogram not heavy-tailed: bucket %d = %d < bucket %d = %d\n%v",
				b, hist[b], b+1, hist[b+1], hist)
		}
	}
	// Some vertex must exceed degree 128 (preferential attachment hubs).
	var tail int64
	for b, c := range hist {
		if b >= 7 {
			tail += c
		}
	}
	if tail == 0 {
		t.Fatalf("no hub vertices generated: %v", hist)
	}
}

func TestHubInjectionRaisesMaxDegree(t *testing.T) {
	base := Config{Name: "h0", Vertices: 5000, M: 3, Seed: 4}
	hub := base
	hub.Name = "h1"
	hub.HubFraction = 0.2
	e0, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Generate(hub)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := ComputeStats("h0", &sliceReader{edges: e0}, base.Vertices)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ComputeStats("h1", &sliceReader{edges: e1}, hub.Vertices)
	if err != nil {
		t.Fatal(err)
	}
	if s1.MaxDegree < 2*s0.MaxDegree {
		t.Fatalf("hub injection barely moved max degree: %d vs %d", s1.MaxDegree, s0.MaxDegree)
	}
	if s1.MaxDegreeVertex != 0 {
		t.Fatalf("hub is vertex %d, want 0", s1.MaxDegreeVertex)
	}
	// Hub fraction should land near the configured 20%.
	frac := float64(s1.MaxDegree) / float64(hub.Vertices)
	if frac < 0.15 || frac > 0.30 {
		t.Fatalf("hub degree fraction %.3f far from 0.2", frac)
	}
}

type sliceReader struct {
	edges []graph.Edge
	pos   int
}

func (r *sliceReader) ReadEdge() (graph.Edge, error) {
	if r.pos >= len(r.edges) {
		return graph.Edge{}, io.EOF
	}
	e := r.edges[r.pos]
	r.pos++
	return e, nil
}

func TestComputeStatsSmall(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}}
	s, err := ComputeStats("tiny", &sliceReader{edges: edges}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Vertices != 3 || s.UndEdges != 3 {
		t.Fatalf("V=%d E=%d, want 3/3", s.Vertices, s.UndEdges)
	}
	if s.MinDegree != 2 || s.MaxDegree != 2 || s.AvgDegree != 2 {
		t.Fatalf("degrees %d/%d/%.1f, want 2/2/2.0", s.MinDegree, s.MaxDegree, s.AvgDegree)
	}
}

func TestComputeStatsRejectsOutOfRange(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 5}}
	if _, err := ComputeStats("bad", &sliceReader{edges: edges}, 3); err == nil {
		t.Fatal("edge outside vertex space accepted")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"pubmed-s", "pubmed-l", "syn-2b"} {
		cfg, err := Preset(name, 0.001)
		if err != nil {
			t.Fatalf("Preset(%s): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Preset(%s) invalid: %v", name, err)
		}
	}
	if _, err := Preset("nope", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
	// Full-scale presets must match the paper's vertex counts.
	if v := PubMedS(1).Vertices; v != 3_751_921 {
		t.Fatalf("PubMedS(1).Vertices = %d", v)
	}
	if v := PubMedL(1).Vertices; v != 26_676_177 {
		t.Fatalf("PubMedL(1).Vertices = %d", v)
	}
	if v := Syn2B(1).Vertices; v != 100_000_000 {
		t.Fatalf("Syn2B(1).Vertices = %d", v)
	}
}

func TestRandomQueryPairsDeterministicAndValid(t *testing.T) {
	edges, err := Generate(Config{Name: "q", Vertices: 400, M: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p1 := RandomQueryPairs(edges, 400, 25, 5)
	p2 := RandomQueryPairs(edges, 400, 25, 5)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed gave different query pairs")
	}
	present := make(map[graph.VertexID]bool)
	for _, e := range edges {
		present[e.Src] = true
		present[e.Dst] = true
	}
	for _, p := range p1 {
		if p[0] == p[1] {
			t.Fatalf("degenerate pair %v", p)
		}
		if !present[p[0]] || !present[p[1]] {
			t.Fatalf("pair %v uses isolated vertex", p)
		}
	}
}

// Property: average degree tracks 2M within tolerance for any seed.
func TestQuickAvgDegreeTracksM(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	check := func(seed int64) bool {
		cfg := Config{Name: "q", Vertices: 3000, M: 4, Seed: seed}
		edges, err := Generate(cfg)
		if err != nil {
			return false
		}
		s, err := ComputeStats("q", &sliceReader{edges: edges}, cfg.Vertices)
		if err != nil {
			return false
		}
		return s.AvgDegree > 6.0 && s.AvgDegree < 9.0 // 2M = 8 ± slack
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
