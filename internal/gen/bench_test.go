package gen

import (
	"io"
	"testing"
)

func BenchmarkGenerateEdges(b *testing.B) {
	cfg := Config{Name: "bench", Vertices: 100000, M: 5, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var count int64
		for {
			_, err := g.ReadEdge()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			count++
		}
		b.ReportMetric(float64(count), "edges")
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
