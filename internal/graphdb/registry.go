package graphdb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mssg/internal/obs"
	"mssg/internal/storage/cache"
	"mssg/internal/storage/vfs"
)

// DurabilityLevel selects how much crash safety an out-of-core backend
// provides (DESIGN.md §11).
type DurabilityLevel int

const (
	// DurabilityNone is the historical behaviour: writes reach the OS
	// page cache and survive process exit but not a crash or power cut.
	DurabilityNone DurabilityLevel = iota
	// DurabilityFull enables the write-ahead log, per-block checksums,
	// atomic manifest commits, and recovery-on-open: every Flush is an
	// atomic, durable checkpoint, and a crash at any moment loses at
	// most the edges stored since the last completed Flush.
	DurabilityFull
)

func (d DurabilityLevel) String() string {
	switch d {
	case DurabilityNone:
		return "none"
	case DurabilityFull:
		return "full"
	}
	return fmt.Sprintf("DurabilityLevel(%d)", int(d))
}

// ParseDurability maps a command-line durability name to its level.
func ParseDurability(s string) (DurabilityLevel, error) {
	switch s {
	case "none", "":
		return DurabilityNone, nil
	case "full":
		return DurabilityFull, nil
	}
	return 0, fmt.Errorf("unknown durability %q (want none or full)", s)
}

// Options configures a GraphDB instance at open time. Fields irrelevant to
// a backend are ignored by it (the in-memory backends have no directory or
// cache, for example).
type Options struct {
	// Dir is the working directory for out-of-core backends. Each
	// instance owns its directory.
	Dir string

	// CacheBytes is the block/page cache budget for out-of-core backends:
	// 0 selects the backend default, a negative value disables caching
	// (the paper's Figure 5.2 "without cache" configuration).
	CacheBytes int64

	// MaxFileBytes is grDB's per-file cap M (paper: 256 MB). 0 selects
	// the default.
	MaxFileBytes int64

	// Levels overrides grDB's level ladder for ablation studies. Nil
	// selects the prototype ladder from §4.1.6 (d = 2,4,16,256,4K,16K;
	// B = 4 KB ×4, 32 KB, 256 KB).
	Levels []LevelSpec

	// CopyUpOnOverflow selects grDB's alternative overflow strategy
	// (§3.4.1): when a vertex outgrows a sub-block, move that sub-block's
	// contents into the newly allocated larger one instead of linking to
	// it — extra copying at insertion time buys shorter chains at read
	// time. False (the prototype's choice) links and leaves
	// defragmentation to idle time.
	CopyUpOnOverflow bool

	// SimReadLatency / SimWriteLatency add a simulated device delay to
	// every physical block operation of an out-of-core backend (StreamDB
	// charges them per 256 KB of sequential transfer). The experiment
	// harness uses these to model the paper's cluster disks on a single
	// machine; see blockio.Store.SimulateLatency.
	SimReadLatency  time.Duration
	SimWriteLatency time.Duration

	// SimTransferLatency adds a simulated per-byte delay on top of the
	// per-operation latencies, modeling device bandwidth. Compressed
	// stores move fewer bytes and therefore pay less of it; see
	// blockio.Store.SimulateTransfer.
	SimTransferLatency time.Duration

	// Compress enables delta-varint compression of grDB adjacency blocks
	// (DESIGN.md §13): blocks are encoded on write and CRC-checked +
	// decoded on read. The on-disk format changes; a database must be
	// reopened with the same setting it was created with.
	Compress bool

	// SharedCache, when non-nil, makes the instance register its storage
	// levels as spaces of this cache instead of creating a private one —
	// the cross-query shared cache mode (DESIGN.md §13). The cache should
	// use cache.PolicySLRU so one query's scan cannot evict another's
	// working set. Incompatible with DurabilityFull (the WAL's no-steal
	// contract cannot span instances).
	SharedCache *cache.BlockCache

	// PrefetchWorkers bounds the concurrent block reads of one async
	// prefetch job (grDB's pipelined prefetch; see
	// graphdb.AsyncPrefetcher). 0 selects the default.
	PrefetchWorkers int

	// Durability selects crash safety for out-of-core backends. The
	// in-memory backends ignore it (they have no durable state at all).
	Durability DurabilityLevel

	// VerifyOnOpen runs the backend's structural consistency check
	// (grDB: Check) after recovery, failing Open on any damage the
	// recovery pass could not repair.
	VerifyOnOpen bool

	// FS is the filesystem out-of-core backends perform durable I/O
	// through. Nil means the real filesystem; the crash suite injects
	// crashfs here.
	FS vfs.FS

	// Metrics, when non-nil, enables per-operation latency histograms
	// (graphdb.<backend>.adjacency_ns / store_ns) and cache counter
	// mirroring in the opened instance, recorded into this registry.
	// Nil keeps the per-op clock reads off the hot path entirely — the
	// default, since a time.Now() pair per adjacency retrieval is
	// measurable on the in-memory backends.
	Metrics *obs.Registry
}

// LevelSpec describes one grDB storage level.
type LevelSpec struct {
	// SubBlockCap is d_ℓ: the neighbour capacity of one sub-block.
	SubBlockCap int
	// BlockBytes is B_ℓ: the block size at this level.
	BlockBytes int
}

// OpenFunc opens one backend instance.
type OpenFunc func(opts Options) (Graph, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]OpenFunc)
)

// Register adds a backend under a name. Backend packages call this from
// init; import mssg/internal/graphdb/all to get every backend.
func Register(name string, open OpenFunc) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("graphdb: backend %q registered twice", name))
	}
	registry[name] = open
}

// Open opens a registered backend by name.
func Open(name string, opts Options) (Graph, error) {
	registryMu.RLock()
	open, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("graphdb: unknown backend %q (registered: %v)", name, Backends())
	}
	return open(opts)
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
