// Package all registers every built-in GraphDB backend with the graphdb
// registry, in the manner of image format packages. Import it for side
// effects:
//
//	import _ "mssg/internal/graphdb/all"
//
// Registered names: "array", "hashmap", "mysql", "bdb", "stream", "grdb" —
// the six instances of paper §4.1.
package all

import (
	_ "mssg/internal/graphdb/arraydb"
	_ "mssg/internal/graphdb/btreedb"
	_ "mssg/internal/graphdb/grdb"
	_ "mssg/internal/graphdb/hashdb"
	_ "mssg/internal/graphdb/reldb"
	_ "mssg/internal/graphdb/streamdb"
)
