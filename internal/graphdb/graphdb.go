// Package graphdb defines the GraphDB Service interface (paper §3.4,
// Listing 3.1): the smallest complete set of local graph-storage
// operations — store edges, get/set per-vertex metadata, and retrieve
// metadata-filtered adjacency lists — plus a registry of the six concrete
// implementations from §4.1 (Array, HashMap, MySQL-substitute,
// BerkeleyDB-substitute, StreamDB, grDB).
//
// None of these methods communicate: every implementation operates only on
// data local to its back-end node, exactly as the paper specifies. The
// Query Service (package query) handles all distribution concerns.
//
// # Concurrency contract
//
// Every Graph divides its API into two classes:
//
//   - Readers — Metadata, AdjacencyUsingMetadata, Stats, and the
//     read-only optional extensions (AdjacencyBatch, PrefetchAdjacency,
//     Degree, IOCounters, CacheStats). When ConcurrentReaders reports
//     true, any number of goroutines may run readers simultaneously on
//     the same instance. All six built-in backends report true.
//   - Mutators — StoreEdges, SetMetadata, Flush, Close, and any
//     maintenance extension (ResetMetadata, Defragment). Mutators
//     always require external serialization: no mutator may overlap
//     another mutator or any reader, even on a backend whose readers
//     are concurrency-safe.
//
// MSSG itself obeys this split naturally: ingestion (mutators) and the
// query service's parallel fringe expansion (readers, see
// query.BFSConfig.Workers) run in disjoint phases on each back-end
// node, separated by a Flush.
package graphdb

import (
	"context"
	"errors"
	"fmt"

	"mssg/internal/graph"
)

// MetaOp selects how AdjacencyUsingMetadata filters neighbours by their
// metadata, using the operation encoding from Listing 3.1.
type MetaOp int32

const (
	// MetaIgnore returns all neighbours regardless of metadata (-2).
	MetaIgnore MetaOp = -2
	// MetaNotEqual returns neighbours whose metadata != the input (-1).
	MetaNotEqual MetaOp = -1
	// MetaEqual returns neighbours whose metadata == the input (0).
	MetaEqual MetaOp = 0
	// MetaGreater returns neighbours whose metadata > the input (1).
	MetaGreater MetaOp = 1
	// MetaLess returns neighbours whose metadata < the input (2).
	MetaLess MetaOp = 2
)

func (op MetaOp) String() string {
	switch op {
	case MetaIgnore:
		return "ignore"
	case MetaNotEqual:
		return "!="
	case MetaEqual:
		return "=="
	case MetaGreater:
		return ">"
	case MetaLess:
		return "<"
	}
	return fmt.Sprintf("MetaOp(%d)", int32(op))
}

// Matches applies the operator: does a neighbour with metadata md pass a
// filter with reference value ref?
func (op MetaOp) Matches(md, ref int32) bool {
	switch op {
	case MetaIgnore:
		return true
	case MetaNotEqual:
		return md != ref
	case MetaEqual:
		return md == ref
	case MetaGreater:
		return md > ref
	case MetaLess:
		return md < ref
	}
	return false
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("graphdb: database closed")

// Stats reports logical work done by a Graph instance.
type Stats struct {
	// EdgesStored counts edges accepted by StoreEdges.
	EdgesStored int64
	// AdjacencyCalls counts adjacency-list retrievals.
	AdjacencyCalls int64
	// NeighborsReturned counts neighbours produced by retrievals.
	NeighborsReturned int64
}

// Graph is the GraphDB Service interface (Listing 3.1). MSSG gives each
// back-end node its own instance; mutating methods must be serialized
// by the caller, while read-only methods may run concurrently when
// ConcurrentReaders reports true (see the package comment for the full
// contract).
type Graph interface {
	// StoreEdges adds a batch of directed adjacency records.
	StoreEdges(edges []graph.Edge) error

	// Metadata returns vertex v's metadata word (0 if never set).
	Metadata(v graph.VertexID) (int32, error)

	// SetMetadata sets vertex v's metadata word.
	SetMetadata(v graph.VertexID, md int32) error

	// AdjacencyUsingMetadata appends v's distance-1 neighbours that pass
	// the (md, op) filter to out. Vertices this instance has never seen
	// yield no neighbours and no error (the paper's algorithms rely on
	// the empty set for non-local vertices, §4.2).
	AdjacencyUsingMetadata(v graph.VertexID, out *graph.AdjList, md int32, op MetaOp) error

	// Flush makes all stored edges durable/visible for retrieval.
	Flush() error

	// Close flushes and releases resources.
	Close() error

	// Stats reports logical operation counts.
	Stats() Stats

	// ConcurrentReaders reports whether this instance's read-only
	// operations (Metadata, AdjacencyUsingMetadata, Stats, and the
	// read-only optional extensions) are safe to call from multiple
	// goroutines at once. Mutating operations always require external
	// serialization and must not overlap readers even when this
	// reports true. The parallel BFS consults this before fanning a
	// level's fringe across worker goroutines.
	ConcurrentReaders() bool
}

// Adjacency retrieves the unfiltered adjacency list of v (MetaIgnore).
func Adjacency(g Graph, v graph.VertexID, out *graph.AdjList) error {
	return g.AdjacencyUsingMetadata(v, out, 0, MetaIgnore)
}

// DegreeReader is an optional extension for backends that can count a
// vertex's neighbours cheaper than materializing them (grDB walks its
// block chain without building the list).
type DegreeReader interface {
	Degree(v graph.VertexID) (int64, error)
}

// Degree returns v's stored out-degree, using the backend fast path when
// one is available and counting a full adjacency retrieval otherwise.
func Degree(g Graph, v graph.VertexID) (int64, error) {
	if dr, ok := g.(DegreeReader); ok {
		return dr.Degree(v)
	}
	out := graph.NewAdjList(16)
	if err := Adjacency(g, v, out); err != nil {
		return 0, err
	}
	return int64(out.Len()), nil
}

// BatchGraph is an optional extension for storage formats that answer a
// whole fringe in one pass. StreamDB implements it: its append-only log
// cannot serve per-vertex lookups without a full scan, so the search
// algorithm posts all fringe vertices at once (paper §4.1.5).
type BatchGraph interface {
	// AdjacencyBatch retrieves adjacency for every fringe vertex,
	// filtered exactly like AdjacencyUsingMetadata, appending all
	// surviving neighbours to out.
	AdjacencyBatch(fringe []graph.VertexID, out *graph.AdjList, md int32, op MetaOp) error
}

// AdjacencyBatch expands a whole fringe: it uses the BatchGraph fast path
// when g provides one and falls back to per-vertex retrieval otherwise.
func AdjacencyBatch(g Graph, fringe []graph.VertexID, out *graph.AdjList, md int32, op MetaOp) error {
	if bg, ok := g.(BatchGraph); ok {
		return bg.AdjacencyBatch(fringe, out, md, op)
	}
	for _, v := range fringe {
		if err := g.AdjacencyUsingMetadata(v, out, md, op); err != nil {
			return err
		}
	}
	return nil
}

// Prefetcher is an optional extension for backends that can warm their
// caches for a whole fringe with offset-sorted reads before expansion
// (the pre-fetching optimization of paper §4.2). It returns the number
// of blocks touched.
type Prefetcher interface {
	PrefetchAdjacency(fringe []graph.VertexID) (int, error)
}

// PrefetchJob is a handle to one in-flight asynchronous prefetch (see
// AsyncPrefetcher).
type PrefetchJob interface {
	// Wait blocks until the job has finished (completed, failed, or was
	// cancelled) and every goroutine it started has exited, then returns
	// the job's first error. A cancelled job returns the context error.
	// Wait is idempotent.
	Wait() error
	// Cancel asks the job to stop early. It does not wait; call Wait to
	// join. Safe to call more than once, and after completion.
	Cancel()
}

// AsyncPrefetcher is an optional extension for backends that can warm
// their caches in the background, overlapping the next BFS level's I/O
// with the current level's expansion (the pipelined refinement of the
// §4.2 prefetch). The returned job reads the fringe's chains with
// offset-sorted batched block reads on worker goroutines; the caller
// Waits before expanding that fringe, and must Wait (or Cancel then
// Wait) before discarding the job — Wait's return guarantees no
// goroutine is left running. Prefetching is an accelerator: a job error
// only means the cache was not fully warmed, never that data is wrong,
// so callers may ignore it and let expansion surface any real I/O
// failure.
type AsyncPrefetcher interface {
	PrefetchAsync(ctx context.Context, fringe []graph.VertexID) PrefetchJob
}

// Checkpointer is an optional extension for backends that persist an
// application checkpoint blob atomically with the graph itself: the blob
// staged by SetCheckpoint becomes durable in the same commit (Flush)
// that makes the edges stored before it durable, so the two can never
// diverge across a crash. The ingest pipeline stores its set of applied
// window ids here to achieve exactly-once edge delivery across restarts.
type Checkpointer interface {
	// SetCheckpoint stages blob; it is committed by the next Flush.
	SetCheckpoint(blob []byte) error
	// GetCheckpoint returns the blob from the last committed Flush (nil
	// when none was ever staged). The returned slice must not be
	// modified.
	GetCheckpoint() ([]byte, error)
}

// VertexScanner is an optional extension for backends that can
// enumerate the vertices they store adjacency for. Live shard migration
// depends on it: a source node walks its local vertex set to find the
// shards whose replica placement changes under a pending topology.
type VertexScanner interface {
	// ForEachVertex calls fn for every locally stored vertex with at
	// least one out-edge, in ascending ID order. fn returning an error
	// stops the scan and surfaces that error. The scan is a reader under
	// the package concurrency contract: safe alongside other readers, not
	// alongside mutators.
	ForEachVertex(fn func(v graph.VertexID) error) error
}

// ForEachVertex enumerates g's stored vertices via the VertexScanner
// fast path, or reports that the backend cannot enumerate.
func ForEachVertex(g Graph, fn func(v graph.VertexID) error) error {
	vs, ok := g.(VertexScanner)
	if !ok {
		return fmt.Errorf("graphdb: %T cannot enumerate vertices (no VertexScanner)", g)
	}
	return vs.ForEachVertex(fn)
}

// GenerationReader is an optional extension for backends that stamp
// committed graph state with a monotonically increasing generation
// (grDB bumps its manifest generation on every Flush). The serving tier
// pins a query's generation at admission and keys its result cache on
// it, so a result computed against one committed graph state is never
// replayed against another. Generation must be safe to read
// concurrently with readers; a bump becomes visible no later than the
// Flush that committed the change.
type GenerationReader interface {
	Generation() uint64
}

// GenerationOf returns g's committed-state generation stamp, using the
// GenerationReader fast path when available and falling back to the
// stored-edge count otherwise — EdgesStored is monotonic under ingest
// (dedup re-ships don't move it), so it distinguishes graph states
// within one process lifetime, which is all an in-process result cache
// needs. The fallback does not observe SetMetadata mutations; MSSG's
// query algorithms keep their visited state outside vertex metadata.
func GenerationOf(g Graph) uint64 {
	if gr, ok := g.(GenerationReader); ok {
		return gr.Generation()
	}
	return uint64(g.Stats().EdgesStored)
}

// GraphsGeneration folds every back-end's generation into one stamp for
// a partitioned deployment: a change on any node changes the sum. Sums
// (not hashes) keep the stamp monotonic, so "newer" still orders.
func GraphsGeneration(dbs []Graph) uint64 {
	var gen uint64
	for _, g := range dbs {
		gen += GenerationOf(g)
	}
	return gen
}

// IOCounters is an optional extension reporting physical I/O for
// out-of-core implementations.
type IOCounters interface {
	IOCounters() (blockReads, blockWrites int64)
}

// CacheStats is an optional extension exposing block-cache behaviour.
type CacheStats interface {
	CacheStats() (hits, misses int64)
}
