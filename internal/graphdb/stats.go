package graphdb

import (
	"sync/atomic"
	"time"

	"mssg/internal/obs"
)

// StatCounters is the concurrency-safe accumulator every backend embeds
// behind its Stats() method. Adjacency retrievals are readers under the
// package concurrency contract yet still need to count work, so the
// counters are atomics rather than fields guarded by the (nonexistent)
// reader lock.
type StatCounters struct {
	edgesStored       atomic.Int64
	adjacencyCalls    atomic.Int64
	neighborsReturned atomic.Int64

	// Latency histograms, nil until EnableLatency. atomic.Pointer so a
	// disabled instance pays one pointer load (and skips the clock reads
	// entirely via OpStart's zero return).
	adjacencyNs atomic.Pointer[obs.Histogram]
	storeNs     atomic.Pointer[obs.Histogram]
}

// AddEdgesStored credits n edges accepted by StoreEdges.
func (c *StatCounters) AddEdgesStored(n int64) { c.edgesStored.Add(n) }

// SetEdgesStored raises the stored-edge count to n if it is below it.
// Manifest reloads use this to restore the persisted count; the clamp
// keeps EdgesStored monotonic when edges were stored before the reload
// (a plain store would rewind the count, breaking Snapshot's documented
// monotonicity and any rate computed from it).
func (c *StatCounters) SetEdgesStored(n int64) {
	for {
		cur := c.edgesStored.Load()
		if n <= cur || c.edgesStored.CompareAndSwap(cur, n) {
			return
		}
	}
}

// EdgesStored returns the current stored-edge count.
func (c *StatCounters) EdgesStored() int64 { return c.edgesStored.Load() }

// AddAdjacencyCall counts one adjacency-list retrieval.
func (c *StatCounters) AddAdjacencyCall() { c.adjacencyCalls.Add(1) }

// AddAdjacencyCalls counts n retrievals answered in one batch pass.
func (c *StatCounters) AddAdjacencyCalls(n int64) { c.adjacencyCalls.Add(n) }

// AddNeighborsReturned credits n neighbours produced by retrievals.
func (c *StatCounters) AddNeighborsReturned(n int64) { c.neighborsReturned.Add(n) }

// EnableLatency turns on per-operation latency histograms, recorded as
// graphdb.<backend>.adjacency_ns and graphdb.<backend>.store_ns in reg.
// Backends call it from Open when Options.Metrics is set; it is a no-op
// with a nil registry.
func (c *StatCounters) EnableLatency(reg *obs.Registry, backend string) {
	if reg == nil {
		return
	}
	c.adjacencyNs.Store(reg.Histogram("graphdb." + backend + ".adjacency_ns"))
	c.storeNs.Store(reg.Histogram("graphdb." + backend + ".store_ns"))
}

// OpStart returns the operation start timestamp for ObserveAdjacency /
// ObserveStore, or 0 when latency metrics are disabled — so the disabled
// path never reads the clock.
func (c *StatCounters) OpStart() int64 {
	if c.adjacencyNs.Load() == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// ObserveAdjacency records one adjacency retrieval's latency. start is
// OpStart's return; 0 (metrics disabled) is ignored.
func (c *StatCounters) ObserveAdjacency(start int64) {
	if start != 0 {
		if h := c.adjacencyNs.Load(); h != nil {
			h.Observe(time.Now().UnixNano() - start)
		}
	}
}

// ObserveStore records one StoreEdges call's latency.
func (c *StatCounters) ObserveStore(start int64) {
	if start != 0 {
		if h := c.storeNs.Load(); h != nil {
			h.Observe(time.Now().UnixNano() - start)
		}
	}
}

// Snapshot returns the counters as a plain Stats value. Each field is
// read atomically; the triple is not a single consistent cut, which is
// fine for the monotonic operation counts Stats reports.
func (c *StatCounters) Snapshot() Stats {
	return Stats{
		EdgesStored:       c.edgesStored.Load(),
		AdjacencyCalls:    c.adjacencyCalls.Load(),
		NeighborsReturned: c.neighborsReturned.Load(),
	}
}
