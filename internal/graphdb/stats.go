package graphdb

import "sync/atomic"

// StatCounters is the concurrency-safe accumulator every backend embeds
// behind its Stats() method. Adjacency retrievals are readers under the
// package concurrency contract yet still need to count work, so the
// counters are atomics rather than fields guarded by the (nonexistent)
// reader lock.
type StatCounters struct {
	edgesStored       atomic.Int64
	adjacencyCalls    atomic.Int64
	neighborsReturned atomic.Int64
}

// AddEdgesStored credits n edges accepted by StoreEdges.
func (c *StatCounters) AddEdgesStored(n int64) { c.edgesStored.Add(n) }

// SetEdgesStored overwrites the stored-edge count (manifest reload).
func (c *StatCounters) SetEdgesStored(n int64) { c.edgesStored.Store(n) }

// EdgesStored returns the current stored-edge count.
func (c *StatCounters) EdgesStored() int64 { return c.edgesStored.Load() }

// AddAdjacencyCall counts one adjacency-list retrieval.
func (c *StatCounters) AddAdjacencyCall() { c.adjacencyCalls.Add(1) }

// AddAdjacencyCalls counts n retrievals answered in one batch pass.
func (c *StatCounters) AddAdjacencyCalls(n int64) { c.adjacencyCalls.Add(n) }

// AddNeighborsReturned credits n neighbours produced by retrievals.
func (c *StatCounters) AddNeighborsReturned(n int64) { c.neighborsReturned.Add(n) }

// Snapshot returns the counters as a plain Stats value. Each field is
// read atomically; the triple is not a single consistent cut, which is
// fine for the monotonic operation counts Stats reports.
func (c *StatCounters) Snapshot() Stats {
	return Stats{
		EdgesStored:       c.edgesStored.Load(),
		AdjacencyCalls:    c.adjacencyCalls.Load(),
		NeighborsReturned: c.neighborsReturned.Load(),
	}
}
