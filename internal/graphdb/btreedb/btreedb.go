// Package btreedb is the BerkeleyDB GraphDB instance of the paper
// (§4.1.4), rebuilt from scratch: a persistent B-tree key-value store
// (package storage/btree) with an internal page cache, storing each
// vertex's adjacency list as a sequence of fixed-capacity binary chunks —
// the same 8 KB blocking scheme the paper uses for both its MySQL and
// BerkeleyDB instances (Fig 4.3).
//
// Keys are (vertex id, chunk sequence); sequence 0 is a small head record
// tracking the tail chunk and its fill, so appends touch only the head,
// the tail chunk, and the B-tree path to them.
package btreedb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/storage/blockio"
	"mssg/internal/storage/btree"
	"mssg/internal/storage/cache"
	"mssg/internal/storage/fsutil"
	"mssg/internal/storage/vfs"
)

func init() {
	graphdb.Register("bdb", func(opts graphdb.Options) (graphdb.Graph, error) {
		return Open(opts)
	})
}

const (
	pageSize = 16 * 1024
	// chunkCap is the neighbour capacity of one adjacency chunk: 1000
	// 8-byte IDs = 8000 bytes, the paper's ~8 KB blocks.
	chunkCap = 1000
	// DefaultCacheBytes is the page-cache budget when Options.CacheBytes
	// is zero.
	DefaultCacheBytes = 16 << 20

	defaultMaxFileBytes = 256 << 20

	manifestName = "btreedb.manifest"
)

// DB is the BerkeleyDB-substitute graph store.
type DB struct {
	dir    string
	fsys   vfs.FS
	store  *blockio.Store
	cache  *cache.BlockCache
	tree   *btree.Tree
	meta   *graphdb.MetaMap
	closed bool
	stats  graphdb.StatCounters

	// scratch buffers reused across operations
	headBuf  [8]byte
	chunkBuf []byte
}

// Open creates or reopens a DB under opts.Dir.
func Open(opts graphdb.Options) (*DB, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("btreedb: need a directory")
	}
	cacheBytes := opts.CacheBytes
	switch {
	case cacheBytes == 0:
		cacheBytes = DefaultCacheBytes
	case cacheBytes < 0:
		cacheBytes = 0 // cache disabled
	}
	maxFile := opts.MaxFileBytes
	if maxFile <= 0 {
		maxFile = defaultMaxFileBytes
	}
	fsys := vfs.Or(opts.FS)
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("btreedb: %w", err)
	}
	store, err := blockio.OpenStore(blockio.Config{
		Dir: opts.Dir, Prefix: "bt", BlockSize: pageSize,
		MaxFileBytes: maxFile, FS: opts.FS,
	})
	if err != nil {
		return nil, err
	}
	store.SimulateLatency(opts.SimReadLatency, opts.SimWriteLatency)
	c := cache.New(cacheBytes)
	c.EnableMetrics(opts.Metrics, "bdb")
	meta, err := loadManifest(fsys, filepath.Join(opts.Dir, manifestName))
	if err != nil {
		store.Close()
		return nil, err
	}
	tree, err := btree.Open(btree.Config{Store: store, Cache: c, Space: 0}, meta)
	if err != nil {
		store.Close()
		return nil, err
	}
	d := &DB{
		dir:      opts.Dir,
		fsys:     fsys,
		store:    store,
		cache:    c,
		tree:     tree,
		meta:     graphdb.NewMetaMap(),
		chunkBuf: make([]byte, 0, chunkCap*8),
	}
	d.stats.EnableLatency(opts.Metrics, "bdb")
	return d, nil
}

func loadManifest(fsys vfs.FS, path string) (btree.Meta, error) {
	b, err := fsutil.ReadFile(fsys, path)
	if errors.Is(err, os.ErrNotExist) {
		return btree.Meta{}, nil
	}
	if err != nil {
		return btree.Meta{}, fmt.Errorf("btreedb: manifest: %w", err)
	}
	if len(b) != 24 {
		return btree.Meta{}, fmt.Errorf("btreedb: manifest is %d bytes, want 24", len(b))
	}
	return btree.Meta{
		Root:     int64(binary.LittleEndian.Uint64(b[0:8])),
		NumPages: int64(binary.LittleEndian.Uint64(b[8:16])),
		Count:    int64(binary.LittleEndian.Uint64(b[16:24])),
	}, nil
}

func (d *DB) saveManifest() error {
	m := d.tree.Meta()
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(m.Root))
	binary.LittleEndian.PutUint64(b[8:16], uint64(m.NumPages))
	binary.LittleEndian.PutUint64(b[16:24], uint64(m.Count))
	return fsutil.WriteFileAtomic(d.fsys, filepath.Join(d.dir, manifestName), b[:], 0o644)
}

// head record accessors: value = {tailSeq uint32, tailCount uint32}.

func (d *DB) readHead(v graph.VertexID) (tailSeq, tailCount uint32, err error) {
	val, err := d.tree.Get(btree.U64Key(uint64(v), 0))
	if err == btree.ErrNotFound {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	if len(val) != 8 {
		return 0, 0, fmt.Errorf("btreedb: head of %d is %d bytes", v, len(val))
	}
	return binary.LittleEndian.Uint32(val[0:4]), binary.LittleEndian.Uint32(val[4:8]), nil
}

func (d *DB) writeHead(v graph.VertexID, tailSeq, tailCount uint32) error {
	binary.LittleEndian.PutUint32(d.headBuf[0:4], tailSeq)
	binary.LittleEndian.PutUint32(d.headBuf[4:8], tailCount)
	return d.tree.Put(btree.U64Key(uint64(v), 0), d.headBuf[:])
}

// StoreEdges implements graphdb.Graph. The batch is grouped by source so
// each touched vertex pays for its head and tail chunk once per batch.
func (d *DB) StoreEdges(edges []graph.Edge) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if len(edges) == 0 {
		return nil
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveStore(start)
	grouped := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		if err := graph.ValidateEdge(e); err != nil {
			return err
		}
		grouped[e.Src] = append(grouped[e.Src], e.Dst)
	}
	// Deterministic order keeps on-disk layout reproducible.
	srcs := make([]graph.VertexID, 0, len(grouped))
	for v := range grouped {
		srcs = append(srcs, v)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })

	for _, src := range srcs {
		if err := d.appendNeighbors(src, grouped[src]); err != nil {
			return err
		}
		d.stats.AddEdgesStored(int64(len(grouped[src])))
	}
	return nil
}

func (d *DB) appendNeighbors(src graph.VertexID, add []graph.VertexID) error {
	tailSeq, tailCount, err := d.readHead(src)
	if err != nil {
		return err
	}
	d.chunkBuf = d.chunkBuf[:0]
	switch {
	case tailSeq == 0:
		// No chunks yet: the first write allocates sequence 1.
		tailSeq, tailCount = 1, 0
	case tailCount >= chunkCap:
		// Tail is full: start a fresh chunk after it.
		tailSeq, tailCount = tailSeq+1, 0
	default:
		// Tail has room: load it so the append extends it.
		val, err := d.tree.Get(btree.U64Key(uint64(src), uint64(tailSeq)))
		if err != nil {
			return fmt.Errorf("btreedb: tail chunk of %d: %w", src, err)
		}
		d.chunkBuf = append(d.chunkBuf, val...)
	}

	for len(add) > 0 {
		space := chunkCap - int(tailCount)
		take := len(add)
		if take > space {
			take = space
		}
		for _, u := range add[:take] {
			var idb [8]byte
			binary.LittleEndian.PutUint64(idb[:], uint64(u))
			d.chunkBuf = append(d.chunkBuf, idb[:]...)
		}
		tailCount += uint32(take)
		if err := d.tree.Put(btree.U64Key(uint64(src), uint64(tailSeq)), d.chunkBuf); err != nil {
			return err
		}
		add = add[take:]
		if len(add) > 0 {
			tailSeq++
			tailCount = 0
			d.chunkBuf = d.chunkBuf[:0]
		}
	}
	return d.writeHead(src, tailSeq, tailCount)
}

// Metadata implements graphdb.Graph.
func (d *DB) Metadata(v graph.VertexID) (int32, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	return d.meta.Get(v), nil
}

// SetMetadata implements graphdb.Graph.
func (d *DB) SetMetadata(v graph.VertexID, md int32) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	d.meta.Set(v, md)
	return nil
}

// AdjacencyUsingMetadata implements graphdb.Graph: a range scan over the
// vertex's chunks.
func (d *DB) AdjacencyUsingMetadata(v graph.VertexID, out *graph.AdjList, md int32, op graphdb.MetaOp) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveAdjacency(start)
	d.stats.AddAdjacencyCall()
	c := d.tree.Seek(btree.U64Key(uint64(v), 1))
	var scratch []graph.VertexID
	for c.Valid() && c.HasPrefix(uint64(v)) {
		val := c.Value()
		for i := 0; i+8 <= len(val); i += 8 {
			scratch = append(scratch, graph.VertexID(binary.LittleEndian.Uint64(val[i:i+8])))
		}
		c.Next()
	}
	if err := c.Err(); err != nil {
		return err
	}
	d.stats.AddNeighborsReturned(graphdb.FilterAppend(d.meta, scratch, out, md, op))
	return nil
}

// Flush implements graphdb.Graph: write back dirty pages and persist the
// tree header.
func (d *DB) Flush() error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if err := d.cache.Flush(); err != nil {
		return err
	}
	return d.saveManifest()
}

// Close implements graphdb.Graph.
func (d *DB) Close() error {
	if d.closed {
		return nil
	}
	if err := d.Flush(); err != nil {
		return err
	}
	d.closed = true
	return d.store.Close()
}

// Stats implements graphdb.Graph.
func (d *DB) Stats() graphdb.Stats { return d.stats.Snapshot() }

// ConcurrentReaders implements graphdb.Graph: the read path is a B+tree
// seek plus chunk Gets, all stateless over mutex-guarded cache pins;
// the head/chunk scratch buffers are only touched by StoreEdges.
func (d *DB) ConcurrentReaders() bool { return true }

// IOCounters implements graphdb.IOCounters.
func (d *DB) IOCounters() (blockReads, blockWrites int64) {
	c := d.store.Counters()
	return c.BlockReads, c.BlockWrites
}

// CacheStats implements graphdb.CacheStats.
func (d *DB) CacheStats() (hits, misses int64) {
	s := d.cache.Stats()
	return s.Hits, s.Misses
}

// ResetMetadata clears all metadata between queries.
func (d *DB) ResetMetadata() { d.meta.Reset() }
