package btreedb

import (
	"reflect"
	"sort"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	d, err := Open(graphdb.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func adjacency(t *testing.T, d *DB, v graph.VertexID) []graph.VertexID {
	t.Helper()
	out := graph.NewAdjList(16)
	if err := graphdb.Adjacency(d, v, out); err != nil {
		t.Fatalf("Adjacency(%d): %v", v, err)
	}
	ids := append([]graph.VertexID(nil), out.IDs()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestChunkBoundaries(t *testing.T) {
	// Degrees around the 1000-id chunk capacity.
	for _, n := range []int{1, 999, 1000, 1001, 2000, 2500} {
		d := openTest(t)
		edges := make([]graph.Edge, n)
		want := make([]graph.VertexID, n)
		for i := 0; i < n; i++ {
			want[i] = graph.VertexID(5000 + i)
			edges[i] = graph.Edge{Src: 3, Dst: want[i]}
		}
		if err := d.StoreEdges(edges); err != nil {
			t.Fatalf("n=%d StoreEdges: %v", n, err)
		}
		got := adjacency(t, d, 3)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: got %d ids, want %d", n, len(got), n)
		}
		// Head bookkeeping.
		tailSeq, tailCount, err := d.readHead(3)
		if err != nil {
			t.Fatal(err)
		}
		wantSeq := uint32((n + chunkCap - 1) / chunkCap)
		if tailSeq != wantSeq {
			t.Fatalf("n=%d tailSeq = %d, want %d", n, tailSeq, wantSeq)
		}
		wantCount := uint32(n % chunkCap)
		if wantCount == 0 {
			wantCount = chunkCap
		}
		if tailCount != wantCount {
			t.Fatalf("n=%d tailCount = %d, want %d", n, tailCount, wantCount)
		}
	}
}

func TestIncrementalAppendsAcrossChunkBoundary(t *testing.T) {
	d := openTest(t)
	var want []graph.VertexID
	// Push past one chunk in batches of 7.
	for base := 0; base < 1200; base += 7 {
		var batch []graph.Edge
		for i := base; i < base+7; i++ {
			u := graph.VertexID(100 + i)
			want = append(want, u)
			batch = append(batch, graph.Edge{Src: 9, Dst: u})
		}
		if err := d.StoreEdges(batch); err != nil {
			t.Fatal(err)
		}
	}
	got := adjacency(t, d, 9)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental append mismatch: %d vs %d ids", len(got), len(want))
	}
}

func TestManyVerticesInterleaved(t *testing.T) {
	d := openTest(t)
	want := make(map[graph.VertexID][]graph.VertexID)
	var batch []graph.Edge
	for i := 0; i < 3000; i++ {
		v := graph.VertexID(i % 17)
		u := graph.VertexID(1000 + i)
		want[v] = append(want[v], u)
		batch = append(batch, graph.Edge{Src: v, Dst: u})
		if len(batch) == 100 {
			if err := d.StoreEdges(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := d.StoreEdges(batch); err != nil {
		t.Fatal(err)
	}
	for v, w := range want {
		got := adjacency(t, d, v)
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("vertex %d: %d ids, want %d", v, len(got), len(w))
		}
	}
}

func TestCacheDisabledStillCorrect(t *testing.T) {
	d, err := Open(graphdb.Options{Dir: t.TempDir(), CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	edges := make([]graph.Edge, 500)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i % 5), Dst: graph.VertexID(100 + i)}
	}
	if err := d.StoreEdges(edges); err != nil {
		t.Fatal(err)
	}
	out := graph.NewAdjList(128)
	if err := graphdb.Adjacency(d, 2, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Fatalf("adjacency without cache = %d ids, want 100", out.Len())
	}
	hits, misses := d.CacheStats()
	if hits != 0 {
		t.Fatalf("cache disabled but %d hits recorded", hits)
	}
	if misses == 0 {
		t.Fatal("no cache misses recorded")
	}
}

func TestIOCountersAfterFlush(t *testing.T) {
	d := openTest(t)
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	_, writes := d.IOCounters()
	if writes == 0 {
		t.Fatal("Flush produced no physical writes")
	}
}
