package streamdb

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestAppendOnlyLogGrowsSequentially(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	edges := []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 1, Dst: 5}}
	if err := d.StoreEdges(edges); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "edges.log"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(16*len(edges)) {
		t.Fatalf("log size %d, want %d (16 bytes/record, no overhead)", st.Size(), 16*len(edges))
	}
}

func TestBatchIsSingleScan(t *testing.T) {
	d := openTest(t)
	var edges []graph.Edge
	for i := 0; i < 100; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i % 10), Dst: graph.VertexID(100 + i)})
	}
	if err := d.StoreEdges(edges); err != nil {
		t.Fatal(err)
	}
	out := graph.NewAdjList(100)
	if err := d.AdjacencyBatch([]graph.VertexID{0, 1, 2}, out, 0, graphdb.MetaIgnore); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 30 {
		t.Fatalf("batch returned %d neighbours, want 30", out.Len())
	}
	// The whole batch must have cost exactly one pass over the log.
	reads, _ := d.IOCounters()
	if reads != 100 {
		t.Fatalf("scan visited %d records, want exactly 100 (one pass)", reads)
	}
}

func TestPerVertexRetrievalScansEverything(t *testing.T) {
	d := openTest(t)
	var edges []graph.Edge
	for i := 0; i < 50; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	if err := d.StoreEdges(edges); err != nil {
		t.Fatal(err)
	}
	out := graph.NewAdjList(4)
	if err := d.AdjacencyUsingMetadata(7, out, 0, graphdb.MetaIgnore); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.At(0) != 8 {
		t.Fatalf("adjacency = %v", out.IDs())
	}
	reads, _ := d.IOCounters()
	if reads != 50 {
		t.Fatalf("per-vertex lookup scanned %d records, want 50 (full scan)", reads)
	}
}

func TestReopenAppendsToExistingLog(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Edges() != 1 {
		t.Fatalf("reopened log has %d records", d2.Edges())
	}
	if err := d2.StoreEdges([]graph.Edge{{Src: 1, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	out := graph.NewAdjList(4)
	if err := graphdb.Adjacency(d2, 1, out); err != nil {
		t.Fatal(err)
	}
	got := append([]graph.VertexID(nil), out.IDs()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []graph.VertexID{2, 3}) {
		t.Fatalf("adjacency after reopen = %v", got)
	}
}

func TestTornLogRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "edges.log"), []byte("torn!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("torn log accepted")
	}
}

func TestEmptyFringeBatch(t *testing.T) {
	d := openTest(t)
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	out := graph.NewAdjList(4)
	if err := d.AdjacencyBatch(nil, out, 0, graphdb.MetaIgnore); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty fringe returned %d neighbours", out.Len())
	}
	// Empty fringe must not even scan.
	reads, _ := d.IOCounters()
	if reads != 0 {
		t.Fatalf("empty fringe scanned %d records", reads)
	}
}
