// Package streamdb is the StreamDB GraphDB instance (paper §4.1.5): a
// basic streaming database that appends edges to disk in binary form as
// they arrive, with no sorting or clustering. Ingestion is therefore as
// fast as sequential writes go, but the format cannot serve a single
// vertex's adjacency list without scanning the entire edge set.
//
// Search algorithms must post the whole fringe at once (AdjacencyBatch) so
// the database scans its data only once per BFS level — the active-disk
// streaming idea the paper borrows from Acharya et al. The per-vertex
// AdjacencyUsingMetadata method is implemented for interface completeness
// but performs a full scan per call, exactly the cost the paper warns
// about.
package streamdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func init() {
	graphdb.Register("stream", func(opts graphdb.Options) (graphdb.Graph, error) {
		d, err := Open(opts.Dir)
		if err != nil {
			return nil, err
		}
		d.SimulateLatency(opts.SimReadLatency, opts.SimWriteLatency)
		d.stats.EnableLatency(opts.Metrics, "stream")
		return d, nil
	})
}

// seqChunkBytes is the sequential-transfer unit simulated latencies are
// charged per: StreamDB never seeks, so one "device access" covers a
// large contiguous run rather than one small block.
const seqChunkBytes = 256 << 10

const recordBytes = 16 // src int64 + dst int64, little-endian

// DB is an append-only on-disk edge log.
type DB struct {
	path   string
	f      *os.File
	wmu    sync.Mutex // serializes flushes of w between concurrent scans
	w      *bufio.Writer
	edges  int64 // records in the log (including unflushed)
	closed bool
	stats  graphdb.StatCounters
	meta   *graphdb.MetaMap

	scanReads atomic.Int64 // physical read ops performed by scans

	readLatency  time.Duration
	writeLatency time.Duration
	pendingWrite int64        // bytes appended since the last charged write unit
	pendingRead  atomic.Int64 // bytes scanned since the last charged read unit
}

// SimulateLatency adds a device delay per 256 KB of sequential transfer
// (reads during scans, writes during appends). See
// blockio.Store.SimulateLatency for why the harness simulates device
// latency at all.
func (d *DB) SimulateLatency(read, write time.Duration) {
	d.readLatency = read
	d.writeLatency = write
}

// Open creates (or reopens) a StreamDB instance rooted at dir.
func Open(dir string) (*DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("streamdb: need a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("streamdb: %w", err)
	}
	path := filepath.Join(dir, "edges.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("streamdb: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("streamdb: %w", err)
	}
	if st.Size()%recordBytes != 0 {
		f.Close()
		return nil, fmt.Errorf("streamdb: log %s has torn tail (%d bytes)", path, st.Size())
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("streamdb: %w", err)
	}
	return &DB{
		path:  path,
		f:     f,
		w:     bufio.NewWriterSize(f, 1<<20),
		edges: st.Size() / recordBytes,
		meta:  graphdb.NewMetaMap(),
	}, nil
}

// StoreEdges implements graphdb.Graph: a buffered sequential append.
func (d *DB) StoreEdges(edges []graph.Edge) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveStore(start)
	var rec [recordBytes]byte
	for _, e := range edges {
		if err := graph.ValidateEdge(e); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(rec[0:8], uint64(e.Src))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Dst))
		if _, err := d.w.Write(rec[:]); err != nil {
			return fmt.Errorf("streamdb: append: %w", err)
		}
		if d.writeLatency > 0 {
			d.pendingWrite += recordBytes
			if d.pendingWrite >= seqChunkBytes {
				d.pendingWrite -= seqChunkBytes
				time.Sleep(d.writeLatency)
			}
		}
		d.edges++
		d.stats.AddEdgesStored(1)
	}
	return nil
}

// Flush implements graphdb.Graph.
func (d *DB) Flush() error {
	if d.closed {
		return graphdb.ErrClosed
	}
	return d.w.Flush()
}

// Metadata implements graphdb.Graph.
func (d *DB) Metadata(v graph.VertexID) (int32, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	return d.meta.Get(v), nil
}

// SetMetadata implements graphdb.Graph.
func (d *DB) SetMetadata(v graph.VertexID, md int32) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	d.meta.Set(v, md)
	return nil
}

// scan streams the whole log, invoking visit for every edge record.
// Scans are readers under the graphdb concurrency contract: any number
// may run at once (each gets its own SectionReader over the immutable
// prefix), so the write-buffer flush is mutex-guarded and the latency
// accounting is atomic.
func (d *DB) scan(visit func(src, dst graph.VertexID)) error {
	d.wmu.Lock()
	err := d.w.Flush()
	d.wmu.Unlock()
	if err != nil {
		return err
	}
	r := io.NewSectionReader(d.f, 0, d.edges*recordBytes)
	br := bufio.NewReaderSize(r, 1<<20)
	var rec [recordBytes]byte
	for i := int64(0); i < d.edges; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("streamdb: scan: %w", err)
		}
		d.scanReads.Add(1)
		if d.readLatency > 0 {
			pending := d.pendingRead.Add(recordBytes)
			if pending >= seqChunkBytes && d.pendingRead.CompareAndSwap(pending, pending-seqChunkBytes) {
				time.Sleep(d.readLatency)
			}
		}
		visit(
			graph.VertexID(binary.LittleEndian.Uint64(rec[0:8])),
			graph.VertexID(binary.LittleEndian.Uint64(rec[8:16])),
		)
	}
	return nil
}

// AdjacencyUsingMetadata implements graphdb.Graph with a full scan per
// call. Use AdjacencyBatch for fringe expansion.
func (d *DB) AdjacencyUsingMetadata(v graph.VertexID, out *graph.AdjList, md int32, op graphdb.MetaOp) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveAdjacency(start)
	d.stats.AddAdjacencyCall()
	var scratch []graph.VertexID
	if err := d.scan(func(src, dst graph.VertexID) {
		if src == v {
			scratch = append(scratch, dst)
		}
	}); err != nil {
		return err
	}
	d.stats.AddNeighborsReturned(graphdb.FilterAppend(d.meta, scratch, out, md, op))
	return nil
}

// AdjacencyBatch implements graphdb.BatchGraph: one pass over the log
// answers the entire fringe.
func (d *DB) AdjacencyBatch(fringe []graph.VertexID, out *graph.AdjList, md int32, op graphdb.MetaOp) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	d.stats.AddAdjacencyCalls(int64(len(fringe)))
	if len(fringe) == 0 {
		return nil
	}
	want := make(map[graph.VertexID]struct{}, len(fringe))
	for _, v := range fringe {
		want[v] = struct{}{}
	}
	var scratch []graph.VertexID
	if err := d.scan(func(src, dst graph.VertexID) {
		if _, ok := want[src]; ok {
			scratch = append(scratch, dst)
		}
	}); err != nil {
		return err
	}
	d.stats.AddNeighborsReturned(graphdb.FilterAppend(d.meta, scratch, out, md, op))
	return nil
}

// Close implements graphdb.Graph.
func (d *DB) Close() error {
	if d.closed {
		return nil
	}
	if err := d.w.Flush(); err != nil {
		return err
	}
	d.closed = true
	return d.f.Close()
}

// Stats implements graphdb.Graph.
func (d *DB) Stats() graphdb.Stats { return d.stats.Snapshot() }

// IOCounters implements graphdb.IOCounters: scans count as reads; every
// stored edge is one buffered write.
func (d *DB) IOCounters() (blockReads, blockWrites int64) {
	return d.scanReads.Load(), d.stats.EdgesStored()
}

// ConcurrentReaders implements graphdb.Graph: concurrent scans each read
// through their own SectionReader over the flushed, immutable log prefix.
func (d *DB) ConcurrentReaders() bool { return true }

// ResetMetadata clears all metadata between queries.
func (d *DB) ResetMetadata() { d.meta.Reset() }

// Edges returns the number of records in the log.
func (d *DB) Edges() int64 { return d.edges }
