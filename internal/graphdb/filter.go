package graphdb

import "mssg/internal/graph"

// FilterAppend applies the Listing 3.1 metadata filter to a candidate
// neighbour set: each neighbour whose metadata passes (op, ref) is
// appended to out. It returns the number appended. Shared by every
// backend so filter semantics cannot drift between implementations.
func FilterAppend(mm *MetaMap, neighbors []graph.VertexID, out *graph.AdjList, ref int32, op MetaOp) int64 {
	if op == MetaIgnore {
		out.AppendAll(neighbors)
		return int64(len(neighbors))
	}
	var n int64
	for _, u := range neighbors {
		if op.Matches(mm.Get(u), ref) {
			out.Append(u)
			n++
		}
	}
	return n
}
