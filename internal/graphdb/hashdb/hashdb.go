// Package hashdb is the HashMap GraphDB instance (paper §4.1.2, Fig 4.2):
// each vertex's adjacency list is stored as its own growable array, and a
// hash table maps global vertex IDs to those arrays. Retrieval pays one
// hash lookup per vertex — the overhead the paper measures against Array —
// but the structure grows dynamically during ingestion and its memory use
// scales down as back-end nodes are added.
package hashdb

import (
	"sort"
	"sync"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func init() {
	graphdb.Register("hashmap", func(opts graphdb.Options) (graphdb.Graph, error) {
		d := New()
		d.stats.EnableLatency(opts.Metrics, "hashmap")
		return d, nil
	})
}

// DB is an in-memory hash-of-adjacency-lists graph store.
//
// Unlike the package-level contract (mutators externally serialized
// against readers), hashdb carries its own reader/writer lock: live
// shard migration stores windows into a destination while concurrent
// BFS queries read other shards from the same instance, and an
// in-memory map cannot tolerate that without internal locking. Mutators
// still must not run concurrently with each other.
type DB struct {
	mu     sync.RWMutex
	meta   *graphdb.MetaMap
	lists  map[graph.VertexID][]graph.VertexID
	closed bool
	stats  graphdb.StatCounters
}

// New returns an empty HashMap instance.
func New() *DB {
	return &DB{
		meta:  graphdb.NewMetaMap(),
		lists: make(map[graph.VertexID][]graph.VertexID),
	}
}

// StoreEdges implements graphdb.Graph.
func (d *DB) StoreEdges(edges []graph.Edge) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return graphdb.ErrClosed
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveStore(start)
	for _, e := range edges {
		if err := graph.ValidateEdge(e); err != nil {
			return err
		}
		d.lists[e.Src] = append(d.lists[e.Src], e.Dst)
		d.stats.AddEdgesStored(1)
	}
	return nil
}

// Metadata implements graphdb.Graph.
func (d *DB) Metadata(v graph.VertexID) (int32, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	return d.meta.Get(v), nil
}

// SetMetadata implements graphdb.Graph.
func (d *DB) SetMetadata(v graph.VertexID, md int32) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return graphdb.ErrClosed
	}
	d.meta.Set(v, md)
	return nil
}

// AdjacencyUsingMetadata implements graphdb.Graph.
func (d *DB) AdjacencyUsingMetadata(v graph.VertexID, out *graph.AdjList, md int32, op graphdb.MetaOp) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return graphdb.ErrClosed
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveAdjacency(start)
	d.stats.AddAdjacencyCall()
	neighbors, ok := d.lists[v]
	if !ok {
		return nil
	}
	d.stats.AddNeighborsReturned(graphdb.FilterAppend(d.meta, neighbors, out, md, op))
	return nil
}

// Flush implements graphdb.Graph (a no-op: the structure is always live).
func (d *DB) Flush() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return graphdb.ErrClosed
	}
	return nil
}

// Close implements graphdb.Graph.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// Stats implements graphdb.Graph.
func (d *DB) Stats() graphdb.Stats { return d.stats.Snapshot() }

// ConcurrentReaders implements graphdb.Graph: retrievals share a
// reader lock; mutators take it exclusively (see the DB comment for why
// this instance locks internally).
func (d *DB) ConcurrentReaders() bool { return true }

// ResetMetadata clears all metadata between queries.
func (d *DB) ResetMetadata() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.meta.Reset()
}

// ForEachVertex implements graphdb.VertexScanner: stored vertices in
// ascending ID order.
func (d *DB) ForEachVertex(fn func(v graph.VertexID) error) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return graphdb.ErrClosed
	}
	vs := make([]graph.VertexID, 0, len(d.lists))
	for v, adj := range d.lists {
		if len(adj) > 0 {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, v := range vs {
		if err := fn(v); err != nil {
			return err
		}
	}
	return nil
}
