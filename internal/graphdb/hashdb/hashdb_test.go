package hashdb

import (
	"reflect"
	"sort"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func TestDynamicGrowthNoFlushNeeded(t *testing.T) {
	// Unlike Array, HashMap serves adjacency immediately after stores —
	// the dynamic-growth property §4.1.2 highlights.
	d := New()
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	out := graph.NewAdjList(4)
	if err := graphdb.Adjacency(d, 1, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.At(0) != 2 {
		t.Fatalf("adjacency = %v", out.IDs())
	}
	// Growth continues interleaved with reads.
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 3}, {Src: 1, Dst: 4}}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := graphdb.Adjacency(d, 1, out); err != nil {
		t.Fatal(err)
	}
	got := append([]graph.VertexID(nil), out.IDs()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []graph.VertexID{2, 3, 4}) {
		t.Fatalf("adjacency after growth = %v", got)
	}
}

func TestSparseGlobalIDs(t *testing.T) {
	// HashMap stores only present vertices: huge sparse IDs must not
	// allocate proportional memory (the §4.1.2 scaling advantage).
	d := New()
	ids := []graph.VertexID{0, 1 << 40, graph.MaxVertexID - 1}
	for _, v := range ids {
		if err := d.StoreEdges([]graph.Edge{{Src: v, Dst: 7}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range ids {
		out := graph.NewAdjList(1)
		if err := graphdb.Adjacency(d, v, out); err != nil {
			t.Fatal(err)
		}
		if out.Len() != 1 || out.At(0) != 7 {
			t.Fatalf("adjacency(%d) = %v", v, out.IDs())
		}
	}
	if d.Stats().EdgesStored != 3 {
		t.Fatalf("EdgesStored = %d", d.Stats().EdgesStored)
	}
}

func TestFlushIsNoOp(t *testing.T) {
	d := New()
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := graph.NewAdjList(1)
	if err := graphdb.Adjacency(d, 1, out); err != nil || out.Len() != 1 {
		t.Fatalf("adjacency after flush: %v %v", out.IDs(), err)
	}
}
