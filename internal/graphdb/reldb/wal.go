package reldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
)

// wal is the write-ahead log: every row image is appended before the heap
// and index are touched, as a transactional engine must. Records are
// {lsn uint64, vertex uint64, chunk uint32, blobLen uint32, blob}.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	lsn uint64
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reldb: wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("reldb: wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 1<<20), lsn: uint64(st.Size())}, nil
}

func (l *wal) append(vertex int64, chunk uint32, blob []byte) error {
	l.lsn++
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:8], l.lsn)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(vertex))
	binary.LittleEndian.PutUint32(hdr[16:20], chunk)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(blob)))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("reldb: wal append: %w", err)
	}
	if _, err := l.w.Write(blob); err != nil {
		return fmt.Errorf("reldb: wal append: %w", err)
	}
	return nil
}

func (l *wal) flush() error { return l.w.Flush() }

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}
