package reldb

import (
	"encoding/binary"
	"fmt"

	"mssg/internal/graph"
	"mssg/internal/storage/blockio"
	"mssg/internal/storage/btree"
	"mssg/internal/storage/wal"
)

// reldb logs through the shared CRC-framed write-ahead log
// (storage/wal), replacing its original ad-hoc log — which had no
// checksums, no replay, and a "recovery" that set the LSN to the file
// size. Every payload starts with a kind byte:
//
//	'R'  logical row:   vertex uint64 | chunk uint32 | blob
//	'I'  block image:   space uint32 | block uint64 | data [blockSize]
//	'S'  flush state:   the 40 manifest bytes (tree meta + heap tail)
//
// Row records are appended per statement and group-committed by the
// next log Sync; they are replayable only against data files that hold
// exactly the last completed flush — which the no-steal cache
// guarantees between flushes. During a flush's write-back that guarantee
// lapses (pages land one at a time), so a durable Flush first appends an
// image of every dirty page plus one state record: recovery restores the
// images wholesale instead of re-running statements against a
// half-written tree (see the checkpoint protocol comment in reldb.go).
//
// A row's chunk 0 is not a row: it carries the vertex's head record
// ({tailChunk uint32, tailCount uint32} as the blob), logged after the
// row inserts it summarizes so replay restores heads in order.

// WAL record kinds (first payload byte).
const (
	recRow   = 'R'
	recImage = 'I'
	recState = 'S'
)

const walRowHeader = 1 + 8 + 4

func encodeWALRecord(vertex int64, chunk uint32, blob []byte) []byte {
	b := make([]byte, walRowHeader+len(blob))
	b[0] = recRow
	binary.LittleEndian.PutUint64(b[1:9], uint64(vertex))
	binary.LittleEndian.PutUint32(b[9:13], chunk)
	copy(b[walRowHeader:], blob)
	return b
}

// decodeWALRecord splits a row payload; blob aliases p. Must not panic
// on any input (fuzzed via FuzzWALRecordDecode).
func decodeWALRecord(p []byte) (vertex int64, chunk uint32, blob []byte, err error) {
	if len(p) < walRowHeader || p[0] != recRow {
		return 0, 0, nil, fmt.Errorf("reldb: malformed WAL row record (%d bytes)", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p[1:9])),
		binary.LittleEndian.Uint32(p[9:13]),
		p[walRowHeader:], nil
}

const walImageHeader = 1 + 4 + 8

func encodeImageRecord(space uint32, block int64, data []byte) []byte {
	b := make([]byte, walImageHeader+len(data))
	b[0] = recImage
	binary.LittleEndian.PutUint32(b[1:5], space)
	binary.LittleEndian.PutUint64(b[5:13], uint64(block))
	copy(b[walImageHeader:], data)
	return b
}

// decodeImageRecord splits an image payload; data aliases p. Must not
// panic on any input.
func decodeImageRecord(p []byte) (space uint32, block int64, data []byte, err error) {
	if len(p) < walImageHeader || p[0] != recImage {
		return 0, 0, nil, fmt.Errorf("reldb: malformed WAL image record (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint32(p[1:5]),
		int64(binary.LittleEndian.Uint64(p[5:13])),
		p[walImageHeader:], nil
}

func encodeStateRecord(m manifest) []byte {
	b := make([]byte, 1+manifestBytes)
	b[0] = recState
	m.encode(b[1:])
	return b
}

// decodeStateRecord parses a state payload. Must not panic on any input.
func decodeStateRecord(p []byte) (manifest, error) {
	if len(p) != 1+manifestBytes || p[0] != recState {
		return manifest{}, fmt.Errorf("reldb: malformed WAL state record (%d bytes)", len(p))
	}
	return decodeManifest(p[1:])
}

// recoverCheckpoint scans the log for the last committed flush (the
// last state record in the valid prefix) and, when one exists, applies
// every block image up to it and returns the manifest state it sealed.
// Images after the last state record — or with no state record at all —
// belong to a flush whose commit fsync never finished; the no-steal
// cache guarantees none of their blocks were written back, so they are
// ignored wholesale. Called before the heap and index are opened, so the
// restored blocks are what the tree reads.
func recoverCheckpoint(log *wal.Log, stores map[uint32]*blockio.Store, man manifest) (manifest, uint64, error) {
	var lastState uint64
	err := log.Replay(func(r wal.Record) error {
		if len(r.Payload) > 0 && r.Payload[0] == recState {
			lastState = r.Seq
		}
		return nil
	})
	if err != nil {
		return man, 0, err
	}
	if lastState == 0 {
		return man, 0, nil
	}
	err = log.Replay(func(r wal.Record) error {
		if r.Seq > lastState || len(r.Payload) == 0 {
			return nil
		}
		switch r.Payload[0] {
		case recImage:
			space, block, data, err := decodeImageRecord(r.Payload)
			if err != nil {
				return err
			}
			store, ok := stores[space]
			if !ok {
				return fmt.Errorf("reldb: WAL image for unknown space %d", space)
			}
			if len(data) != store.BlockSize() {
				return fmt.Errorf("reldb: WAL image for space %d is %d bytes, want %d",
					space, len(data), store.BlockSize())
			}
			if block < 0 {
				return fmt.Errorf("reldb: WAL image for negative block %d", block)
			}
			return store.WriteBlock(block, data)
		case recState:
			if r.Seq != lastState {
				return nil // superseded by a later flush in the same log
			}
			m, err := decodeStateRecord(r.Payload)
			if err != nil {
				return err
			}
			man = m
		}
		return nil
	})
	return man, lastState, err
}

// replayWAL re-executes every durable row record after afterSeq against
// the heap and index: row records re-insert (a fresh heap row version;
// the index repoint makes the replay idempotent — re-replaying can waste
// heap space but never duplicates an edge in query results), head
// records rewrite the head. Because a crash can lose the head update
// that followed an insert, replay also tracks each vertex's highest
// replayed chunk and self-heals heads that lag it. Image and state
// records in that range belong to an uncommitted flush and are skipped
// (recoverCheckpoint already consumed the committed ones). Returns the
// number of records applied.
func (d *DB) replayWAL(afterSeq uint64) (int, error) {
	type tailSeen struct {
		chunk uint32
		count uint32
	}
	fixes := make(map[int64]tailSeen)
	n := 0
	err := d.log.Replay(func(r wal.Record) error {
		if r.Seq <= afterSeq {
			return nil
		}
		if len(r.Payload) > 0 && (r.Payload[0] == recImage || r.Payload[0] == recState) {
			return nil
		}
		vertex, chunk, blob, err := decodeWALRecord(r.Payload)
		if err != nil {
			return err
		}
		n++
		if chunk == 0 {
			if len(blob) != 8 {
				return fmt.Errorf("reldb: WAL head record for %d is %d bytes, want 8", vertex, len(blob))
			}
			return d.index.Put(btree.U64Key(uint64(vertex), 0), blob)
		}
		ref, err := d.heap.insert(row{vertex: vertex, chunk: chunk, blob: blob})
		if err != nil {
			return err
		}
		if err := d.index.Put(btree.U64Key(uint64(vertex), uint64(chunk)), ref.encode()); err != nil {
			return err
		}
		if f := fixes[vertex]; chunk >= f.chunk {
			fixes[vertex] = tailSeen{chunk: chunk, count: uint32(len(blob) / 8)}
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	for vertex, f := range fixes {
		tailChunk, tailCount, err := d.readHead(graph.VertexID(vertex))
		if err != nil {
			return n, err
		}
		if tailChunk < f.chunk || (tailChunk == f.chunk && tailCount != f.count) {
			if err := d.writeHead(graph.VertexID(vertex), f.chunk, f.count); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
