package reldb

import (
	"encoding/binary"
	"fmt"

	"mssg/internal/graph"
	"mssg/internal/storage/btree"
	"mssg/internal/storage/wal"
)

// reldb logs through the shared CRC-framed write-ahead log
// (storage/wal), replacing its original ad-hoc log — which had no
// checksums, no replay, and a "recovery" that set the LSN to the file
// size. Record payloads are
//
//	vertex  uint64
//	chunk   uint32
//	blob    [rest]
//
// Chunk 0 is not a row: it carries the vertex's head record
// ({tailChunk uint32, tailCount uint32} as the blob), logged after the
// row inserts it summarizes so replay restores heads in order.

const walRecordHeader = 8 + 4

func encodeWALRecord(vertex int64, chunk uint32, blob []byte) []byte {
	b := make([]byte, walRecordHeader+len(blob))
	binary.LittleEndian.PutUint64(b[0:8], uint64(vertex))
	binary.LittleEndian.PutUint32(b[8:12], chunk)
	copy(b[walRecordHeader:], blob)
	return b
}

// decodeWALRecord splits a payload; blob aliases p. Must not panic on
// any input (fuzzed via FuzzWALRecordDecode).
func decodeWALRecord(p []byte) (vertex int64, chunk uint32, blob []byte, err error) {
	if len(p) < walRecordHeader {
		return 0, 0, nil, fmt.Errorf("reldb: WAL record of %d bytes is shorter than its header", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p[0:8])),
		binary.LittleEndian.Uint32(p[8:12]),
		p[walRecordHeader:], nil
}

// replayWAL re-executes every durable log record against the heap and
// index: row records re-insert (a fresh heap row version; the index
// repoint makes the replay idempotent — re-replaying can waste heap
// space but never duplicates an edge in query results), head records
// rewrite the head. Because a crash can lose the head update that
// followed an insert, replay also tracks each vertex's highest replayed
// chunk and self-heals heads that lag it. Returns the number of records
// applied.
func (d *DB) replayWAL() (int, error) {
	type tailSeen struct {
		chunk uint32
		count uint32
	}
	fixes := make(map[int64]tailSeen)
	n := 0
	err := d.log.Replay(func(r wal.Record) error {
		vertex, chunk, blob, err := decodeWALRecord(r.Payload)
		if err != nil {
			return err
		}
		n++
		if chunk == 0 {
			if len(blob) != 8 {
				return fmt.Errorf("reldb: WAL head record for %d is %d bytes, want 8", vertex, len(blob))
			}
			return d.index.Put(btree.U64Key(uint64(vertex), 0), blob)
		}
		ref, err := d.heap.insert(row{vertex: vertex, chunk: chunk, blob: blob})
		if err != nil {
			return err
		}
		if err := d.index.Put(btree.U64Key(uint64(vertex), uint64(chunk)), ref.encode()); err != nil {
			return err
		}
		if f := fixes[vertex]; chunk >= f.chunk {
			fixes[vertex] = tailSeen{chunk: chunk, count: uint32(len(blob) / 8)}
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	for vertex, f := range fixes {
		tailChunk, tailCount, err := d.readHead(graph.VertexID(vertex))
		if err != nil {
			return n, err
		}
		if tailChunk < f.chunk || (tailChunk == f.chunk && tailCount != f.count) {
			if err := d.writeHead(graph.VertexID(vertex), f.chunk, f.count); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
