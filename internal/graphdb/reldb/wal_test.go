package reldb

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/storage/btree"
)

func openAt(t *testing.T, dir string) *DB {
	t.Helper()
	d, err := Open(graphdb.Options{Dir: dir, Durability: graphdb.DurabilityFull})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func sortedNeighbors(t *testing.T, d *DB, v graph.VertexID) []graph.VertexID {
	t.Helper()
	out := graph.NewAdjList(16)
	if err := graphdb.Adjacency(d, v, out); err != nil {
		t.Fatalf("Adjacency(%d): %v", v, err)
	}
	got := append([]graph.VertexID(nil), out.IDs()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

func TestReplayRecoversSyncedStatements(t *testing.T) {
	dir := t.TempDir()
	d := openAt(t, dir)
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 10}, {Src: 1, Dst: 11}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second batch whose log records are synced but whose flush never
	// completed: data pages stay dirty in the cache, the manifest still
	// describes the first batch. Abandoning the handle is the crash.
	if err := d.StoreEdges([]graph.Edge{{Src: 2, Dst: 20}, {Src: 2, Dst: 21}}); err != nil {
		t.Fatal(err)
	}
	if err := d.log.Sync(); err != nil {
		t.Fatal(err)
	}
	// No Close — abandon.

	d2 := openAt(t, dir)
	defer d2.Close()
	if got := sortedNeighbors(t, d2, 1); len(got) != 2 {
		t.Fatalf("flushed vertex lost: %v", got)
	}
	if got := sortedNeighbors(t, d2, 2); len(got) != 2 || got[0] != 20 || got[1] != 21 {
		t.Fatalf("replay lost synced batch: %v", got)
	}
	// Recovery completed the flush, so the log must be retired.
	if !d2.log.Empty() {
		t.Fatal("WAL not retired after replay")
	}
}

func TestUnsyncedStatementsVanish(t *testing.T) {
	dir := t.TempDir()
	d := openAt(t, dir)
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 10}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Staged but never synced: the records exist only in memory.
	if err := d.StoreEdges([]graph.Edge{{Src: 2, Dst: 20}}); err != nil {
		t.Fatal(err)
	}
	// Abandon.

	d2 := openAt(t, dir)
	defer d2.Close()
	if got := sortedNeighbors(t, d2, 2); len(got) != 0 {
		t.Fatalf("unsynced batch survived: %v", got)
	}
	if got := sortedNeighbors(t, d2, 1); len(got) != 1 {
		t.Fatalf("flushed batch lost: %v", got)
	}
}

func TestReplayIsIdempotent(t *testing.T) {
	// Crash between the manifest write and the log reset: the data files
	// already hold everything the log holds. Replay re-inserts the rows
	// (new heap versions) but the index repoint is last-wins, so queries
	// must see each edge exactly once.
	dir := t.TempDir()
	d := openAt(t, dir)
	if err := d.StoreEdges([]graph.Edge{{Src: 3, Dst: 30}, {Src: 3, Dst: 31}, {Src: 4, Dst: 40}}); err != nil {
		t.Fatal(err)
	}
	// Flush minus the final log.Reset.
	if err := d.log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.heapStore.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.idxStore.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.saveManifest(); err != nil {
		t.Fatal(err)
	}
	// Abandon before log.Reset.

	d2 := openAt(t, dir)
	defer d2.Close()
	if got := sortedNeighbors(t, d2, 3); len(got) != 2 || got[0] != 30 || got[1] != 31 {
		t.Fatalf("duplicate or lost edges after double-apply: %v", got)
	}
	if got := sortedNeighbors(t, d2, 4); len(got) != 1 || got[0] != 40 {
		t.Fatalf("vertex 4 after double-apply: %v", got)
	}
	// Appending after recovery must continue the tail, not fork it.
	if err := d2.StoreEdges([]graph.Edge{{Src: 3, Dst: 32}}); err != nil {
		t.Fatal(err)
	}
	if got := sortedNeighbors(t, d2, 3); len(got) != 3 {
		t.Fatalf("append after recovery: %v", got)
	}
}

func TestReplaySelfHealsLostHead(t *testing.T) {
	// A crash can persist a row record but lose the head record that
	// followed it. Replay must rebuild the head from the rows themselves
	// so later appends extend the tail instead of restarting at chunk 1.
	dir := t.TempDir()
	d := openAt(t, dir)
	blob := make([]byte, 0, 3*8)
	for _, u := range []uint64{100, 101, 102} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], u)
		blob = append(blob, b[:]...)
	}
	if _, err := d.log.Append(encodeWALRecord(7, 1, blob)); err != nil {
		t.Fatal(err)
	}
	if err := d.log.Sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon: no head record was ever logged or written.

	d2 := openAt(t, dir)
	defer d2.Close()
	tailChunk, tailCount, err := d2.readHead(7)
	if err != nil {
		t.Fatal(err)
	}
	if tailChunk != 1 || tailCount != 3 {
		t.Fatalf("healed head = (%d, %d), want (1, 3)", tailChunk, tailCount)
	}
	if err := d2.StoreEdges([]graph.Edge{{Src: 7, Dst: 103}}); err != nil {
		t.Fatal(err)
	}
	if got := sortedNeighbors(t, d2, 7); len(got) != 4 || got[0] != 100 || got[3] != 103 {
		t.Fatalf("append after self-heal: %v", got)
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	rec := encodeWALRecord(42, 9, []byte{1, 2, 3})
	v, c, blob, err := decodeWALRecord(rec)
	if err != nil || v != 42 || c != 9 || !bytes.Equal(blob, []byte{1, 2, 3}) {
		t.Fatalf("round trip = %d %d %v %v", v, c, blob, err)
	}
	if _, _, _, err := decodeWALRecord([]byte{1, 2, 3}); err == nil {
		t.Fatal("short record accepted")
	}
}

func FuzzWALRecordDecode(f *testing.F) {
	f.Add(encodeWALRecord(1, 2, []byte("blob")))
	f.Add(encodeWALRecord(-5, 0, nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, c, blob, err := decodeWALRecord(b)
		if err != nil {
			return
		}
		// Valid decodes must survive a re-encode round trip.
		if !bytes.Equal(encodeWALRecord(v, c, blob), b) {
			t.Fatalf("round trip mismatch for %x", b)
		}
	})
}

func TestRecoverCommittedCheckpointMidWriteback(t *testing.T) {
	// A durable Flush whose commit fsync finished but whose write-back,
	// store syncs, manifest, and log reset did not: recovery must restore
	// the checkpoint from its WAL images and sealed state, not re-run
	// statements against whatever the interrupted write-back left behind.
	dir := t.TempDir()
	d := openAt(t, dir)
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 10}, {Src: 1, Dst: 11}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.StoreEdges([]graph.Edge{{Src: 2, Dst: 20}, {Src: 2, Dst: 21}}); err != nil {
		t.Fatal(err)
	}
	// The first half of Flush, stopping right after the commit point: the
	// manifest on disk still describes the first batch only.
	err := d.cache.Dirty(func(space uint32, block int64, data []byte) error {
		_, err := d.log.Append(encodeImageRecord(space, block, data))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.log.Append(encodeStateRecord(d.currentManifest())); err != nil {
		t.Fatal(err)
	}
	if err := d.log.Sync(); err != nil {
		t.Fatal(err)
	}
	// No write-back, no manifest — abandon at the worst moment.

	d2 := openAt(t, dir)
	defer d2.Close()
	if got := sortedNeighbors(t, d2, 1); len(got) != 2 {
		t.Fatalf("first batch lost: %v", got)
	}
	if got := sortedNeighbors(t, d2, 2); len(got) != 2 || got[0] != 20 || got[1] != 21 {
		t.Fatalf("committed checkpoint not recovered: %v", got)
	}
	if !d2.log.Empty() {
		t.Fatal("WAL not retired after checkpoint recovery")
	}
}

func TestUncommittedCheckpointImagesIgnored(t *testing.T) {
	// Images staged for a flush whose state record never landed must not
	// be applied: the rows replay logically instead (the data files still
	// hold the previous flush exactly, thanks to the no-steal cache).
	dir := t.TempDir()
	d := openAt(t, dir)
	if err := d.StoreEdges([]graph.Edge{{Src: 5, Dst: 50}}); err != nil {
		t.Fatal(err)
	}
	err := d.cache.Dirty(func(space uint32, block int64, data []byte) error {
		_, err := d.log.Append(encodeImageRecord(space, block, data))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sync rows + images but no state record, then abandon.
	if err := d.log.Sync(); err != nil {
		t.Fatal(err)
	}

	d2 := openAt(t, dir)
	defer d2.Close()
	if got := sortedNeighbors(t, d2, 5); len(got) != 1 || got[0] != 50 {
		t.Fatalf("synced rows lost: %v", got)
	}
}

func TestCheckpointRecordRoundTrip(t *testing.T) {
	img := encodeImageRecord(1, 42, []byte{9, 8, 7})
	space, block, data, err := decodeImageRecord(img)
	if err != nil || space != 1 || block != 42 || !bytes.Equal(data, []byte{9, 8, 7}) {
		t.Fatalf("image round trip = %d %d %v %v", space, block, data, err)
	}
	if _, _, _, err := decodeImageRecord([]byte{recImage}); err == nil {
		t.Fatal("short image record accepted")
	}
	m := manifest{tree: btree.Meta{Root: 3, NumPages: 7, Count: 11}, heapTail: 5, heapPages: 6}
	got, err := decodeStateRecord(encodeStateRecord(m))
	if err != nil || got != m {
		t.Fatalf("state round trip = %+v %v", got, err)
	}
	if _, err := decodeStateRecord([]byte{recState, 0}); err == nil {
		t.Fatal("short state record accepted")
	}
}

func FuzzCheckpointRecordDecode(f *testing.F) {
	f.Add(encodeImageRecord(0, 1, []byte("page")))
	f.Add(encodeStateRecord(manifest{heapTail: 1, heapPages: 2}))
	f.Add([]byte{recImage})
	f.Add([]byte{recState})
	f.Fuzz(func(t *testing.T, b []byte) {
		if space, block, data, err := decodeImageRecord(b); err == nil {
			if !bytes.Equal(encodeImageRecord(space, block, data), b) {
				t.Fatalf("image round trip mismatch for %x", b)
			}
		}
		if m, err := decodeStateRecord(b); err == nil {
			if !bytes.Equal(encodeStateRecord(m), b) {
				t.Fatalf("state round trip mismatch for %x", b)
			}
		}
	})
}

func FuzzManifestDecode(f *testing.F) {
	var seed [manifestBytes]byte
	manifest{tree: btree.Meta{Root: 1, NumPages: 2, Count: 3}, heapTail: 4, heapPages: 5}.encode(seed[:])
	f.Add(seed[:])
	f.Add([]byte{})
	f.Add(seed[:39])
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeManifest(b)
		if err != nil {
			return
		}
		var out [manifestBytes]byte
		m.encode(out[:])
		if !bytes.Equal(out[:], b) {
			t.Fatalf("manifest round trip mismatch for %x", b)
		}
	})
}
