package reldb

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// The statement layer: a deliberately faithful miniature of MySQL's
// classic text protocol. The "client" half renders statements as text
// (BLOBs hex-encoded); the "server" half tokenizes and parses them back
// before executing against storage, and renders result sets as text rows
// the client must decode. This round-trip is where the paper's MySQL
// baseline loses most of its time, so it is modeled rather than skipped.

// stmtKind discriminates parsed statements.
type stmtKind int

const (
	stmtInsert stmtKind = iota
	stmtSelect
)

// statement is a parsed request.
type statement struct {
	kind   stmtKind
	vertex int64
	chunk  uint32
	blob   []byte
}

// renderInsert builds the textual REPLACE for one adjacency chunk row.
func renderInsert(vertex int64, chunk uint32, blob []byte) string {
	var sb strings.Builder
	sb.Grow(64 + 2*len(blob))
	sb.WriteString("REPLACE INTO adjacency (src, chunk, neighbors) VALUES (")
	sb.WriteString(strconv.FormatInt(vertex, 10))
	sb.WriteString(", ")
	sb.WriteString(strconv.FormatUint(uint64(chunk), 10))
	sb.WriteString(", x'")
	sb.WriteString(hex.EncodeToString(blob))
	sb.WriteString("')")
	return sb.String()
}

// renderSelect builds the textual point query for a vertex's chunk rows.
func renderSelect(vertex int64) string {
	return "SELECT chunk, neighbors FROM adjacency WHERE src = " +
		strconv.FormatInt(vertex, 10) + " ORDER BY chunk"
}

// parseStatement is the server-side parser. It accepts exactly the
// statements the client renders; anything else is a syntax error.
func parseStatement(s string) (statement, error) {
	switch {
	case strings.HasPrefix(s, "REPLACE INTO adjacency"):
		open := strings.Index(s, "VALUES (")
		if open < 0 || !strings.HasSuffix(s, "')") {
			return statement{}, fmt.Errorf("reldb: syntax error in %.40q", s)
		}
		body := s[open+len("VALUES (") : len(s)-1]
		parts := strings.SplitN(body, ", ", 3)
		if len(parts) != 3 {
			return statement{}, fmt.Errorf("reldb: expected 3 values, got %d", len(parts))
		}
		v, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return statement{}, fmt.Errorf("reldb: bad src: %w", err)
		}
		c, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return statement{}, fmt.Errorf("reldb: bad chunk: %w", err)
		}
		hexBlob := strings.TrimSuffix(strings.TrimPrefix(parts[2], "x'"), "'")
		blob, err := hex.DecodeString(hexBlob)
		if err != nil {
			return statement{}, fmt.Errorf("reldb: bad blob literal: %w", err)
		}
		return statement{kind: stmtInsert, vertex: v, chunk: uint32(c), blob: blob}, nil

	case strings.HasPrefix(s, "SELECT chunk, neighbors FROM adjacency WHERE src = "):
		rest := strings.TrimPrefix(s, "SELECT chunk, neighbors FROM adjacency WHERE src = ")
		rest = strings.TrimSuffix(rest, " ORDER BY chunk")
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return statement{}, fmt.Errorf("reldb: bad src in select: %w", err)
		}
		return statement{kind: stmtSelect, vertex: v}, nil
	}
	return statement{}, fmt.Errorf("reldb: unrecognized statement %.40q", s)
}

// renderResultRow serializes one result row server→client.
func renderResultRow(chunk uint32, blob []byte) string {
	return strconv.FormatUint(uint64(chunk), 10) + "\t" + hex.EncodeToString(blob)
}

// parseResultRow decodes one result row client-side.
func parseResultRow(s string) (chunk uint32, blob []byte, err error) {
	tab := strings.IndexByte(s, '\t')
	if tab < 0 {
		return 0, nil, fmt.Errorf("reldb: malformed result row")
	}
	c, err := strconv.ParseUint(s[:tab], 10, 32)
	if err != nil {
		return 0, nil, fmt.Errorf("reldb: bad chunk in result: %w", err)
	}
	blob, err = hex.DecodeString(s[tab+1:])
	if err != nil {
		return 0, nil, fmt.Errorf("reldb: bad blob in result: %w", err)
	}
	return uint32(c), blob, nil
}
