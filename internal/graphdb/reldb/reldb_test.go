package reldb

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func TestStatementRoundTrip(t *testing.T) {
	blob := []byte{1, 2, 3, 0xFF, 0}
	text := renderInsert(42, 7, blob)
	st, err := parseStatement(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if st.kind != stmtInsert || st.vertex != 42 || st.chunk != 7 || !bytes.Equal(st.blob, blob) {
		t.Fatalf("parsed %+v", st)
	}

	sel, err := parseStatement(renderSelect(123))
	if err != nil {
		t.Fatalf("parse select: %v", err)
	}
	if sel.kind != stmtSelect || sel.vertex != 123 {
		t.Fatalf("parsed %+v", sel)
	}
}

func TestStatementSyntaxErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE adjacency",
		"REPLACE INTO adjacency VALUES",
		"REPLACE INTO adjacency (src, chunk, neighbors) VALUES (x, 1, x'00')",
		"REPLACE INTO adjacency (src, chunk, neighbors) VALUES (1, y, x'00')",
		"REPLACE INTO adjacency (src, chunk, neighbors) VALUES (1, 1, x'zz')",
		"SELECT chunk, neighbors FROM adjacency WHERE src = abc ORDER BY chunk",
	}
	for _, s := range bad {
		if _, err := parseStatement(s); err == nil {
			t.Errorf("statement %q accepted", s)
		}
	}
}

func TestResultRowRoundTrip(t *testing.T) {
	chunk, blob, err := parseResultRow(renderResultRow(9, []byte{0xAA, 0xBB}))
	if err != nil {
		t.Fatal(err)
	}
	if chunk != 9 || !bytes.Equal(blob, []byte{0xAA, 0xBB}) {
		t.Fatalf("round trip = %d %v", chunk, blob)
	}
	if _, _, err := parseResultRow("no-tab"); err == nil {
		t.Fatal("malformed result row accepted")
	}
}

func TestHeapInsertRead(t *testing.T) {
	d := openTest(t)
	ref, err := d.heap.insert(row{vertex: 5, chunk: 1, blob: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.heap.read(ref)
	if err != nil {
		t.Fatal(err)
	}
	if r.vertex != 5 || r.chunk != 1 || string(r.blob) != "abc" {
		t.Fatalf("read back %+v", r)
	}
	if _, err := d.heap.read(rowRef{page: 0, slot: 99}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestHeapPageOverflowAllocatesNewPage(t *testing.T) {
	d := openTest(t)
	big := make([]byte, 8000)
	var refs []rowRef
	for i := 0; i < 5; i++ {
		ref, err := d.heap.insert(row{vertex: int64(i), chunk: 1, blob: big})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	if d.heap.numPages < 3 {
		t.Fatalf("numPages = %d, want >= 3 for 5x8KB rows in 16KB pages", d.heap.numPages)
	}
	for i, ref := range refs {
		r, err := d.heap.read(ref)
		if err != nil || r.vertex != int64(i) {
			t.Fatalf("row %d: %+v %v", i, r, err)
		}
	}
}

func openTest(t *testing.T) *DB {
	t.Helper()
	d, err := Open(graphdb.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestChunkSplitAcrossRows(t *testing.T) {
	// Degree > chunkCap must span multiple BLOB rows (Fig 4.3's second
	// column bookkeeping).
	d := openTest(t)
	n := chunkCap + 500
	edges := make([]graph.Edge, n)
	want := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		want[i] = graph.VertexID(10 + i)
		edges[i] = graph.Edge{Src: 1, Dst: want[i]}
	}
	if err := d.StoreEdges(edges); err != nil {
		t.Fatal(err)
	}
	tailChunk, tailCount, err := d.readHead(1)
	if err != nil {
		t.Fatal(err)
	}
	if tailChunk != 2 || tailCount != 500 {
		t.Fatalf("head = chunk %d count %d, want 2/500", tailChunk, tailCount)
	}
	out := graph.NewAdjList(n)
	if err := graphdb.Adjacency(d, 1, out); err != nil {
		t.Fatal(err)
	}
	got := append([]graph.VertexID(nil), out.IDs()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adjacency mismatch: %d ids, want %d", len(got), len(want))
	}
	if d.Statements() == 0 {
		t.Fatal("no SQL statements recorded")
	}
}

func TestWALGrowsWithWrites(t *testing.T) {
	d := openTest(t)
	before := d.log.Seq()
	if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}); err != nil {
		t.Fatal(err)
	}
	if d.log.Seq() <= before {
		t.Fatal("WAL did not grow")
	}
}
