// Package reldb is the MySQL GraphDB instance of the paper (§4.1.3,
// Fig 4.3), rebuilt from scratch as a miniature relational storage engine
// so the baseline's characteristic overheads are reproduced rather than
// hand-waved:
//
//   - rows live in a slotted-page heap file,
//   - a B-tree primary index maps (source vertex, chunk id) → row location,
//   - every mutation is written to a write-ahead log first, and
//   - all requests pass through a textual statement layer: the client side
//     renders INSERT/SELECT statements (BLOBs hex-encoded, as in MySQL's
//     classic text protocol) and the server side parses them back before
//     touching storage.
//
// The schema is the paper's: a table keyed by source vertex with a
// bookkeeping chunk column and an ~8 KB BLOB holding a slice of the
// adjacency list, split over multiple rows for high-degree vertices.
package reldb

import (
	"encoding/binary"
	"fmt"

	"mssg/internal/storage/blockio"
	"mssg/internal/storage/cache"
)

const (
	heapPageSize = 16 * 1024
	// Row cell: vertex int64 | chunk uint32 | blobLen uint16 | blob.
	rowHeader      = 8 + 4 + 2
	heapHeaderSize = 4 // nrows uint16 | freeStart uint16
	heapSlotSize   = 2
)

// rowRef locates a row: heap page id and slot index.
type rowRef struct {
	page int64
	slot int
}

func (r rowRef) encode() []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b[0:4], uint32(r.page))
	binary.LittleEndian.PutUint32(b[4:8], uint32(r.slot))
	return b
}

func decodeRowRef(b []byte) (rowRef, error) {
	if len(b) != 8 {
		return rowRef{}, fmt.Errorf("reldb: row ref is %d bytes, want 8", len(b))
	}
	return rowRef{
		page: int64(binary.LittleEndian.Uint32(b[0:4])),
		slot: int(binary.LittleEndian.Uint32(b[4:8])),
	}, nil
}

// row is one record of the adjacency table.
type row struct {
	vertex int64
	chunk  uint32
	blob   []byte
}

// heap is the slotted-page row store.
type heap struct {
	store *blockio.Store
	cache *cache.BlockCache
	space uint32

	// tail is the page currently taking inserts; numPages the allocation
	// high-water mark. Persisted via the DB manifest.
	tail     int64
	numPages int64
}

func openHeap(store *blockio.Store, c *cache.BlockCache, space uint32, tail, numPages int64) (*heap, error) {
	if err := c.AttachSpace(space, store); err != nil {
		return nil, err
	}
	h := &heap{store: store, cache: c, space: space, tail: tail, numPages: numPages}
	if h.numPages == 0 {
		if err := h.addPage(); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (h *heap) addPage() error {
	id := h.numPages
	h.numPages++
	ph, err := h.cache.Get(h.space, id)
	if err != nil {
		return err
	}
	p := ph.Data()
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint16(p[2:4], heapHeaderSize)
	ph.MarkDirty()
	h.tail = id
	return ph.Release()
}

// insert appends a row, returning its location. Rows are immutable; a
// "grown" BLOB is written as a new row version and the index repointed
// (dead versions linger, as in a heap without vacuum).
func (h *heap) insert(r row) (rowRef, error) {
	need := rowHeader + len(r.blob) + heapSlotSize
	if heapHeaderSize+need > heapPageSize {
		return rowRef{}, fmt.Errorf("reldb: row of %d bytes exceeds page capacity", len(r.blob))
	}
	ph, err := h.cache.Get(h.space, h.tail)
	if err != nil {
		return rowRef{}, err
	}
	p := ph.Data()
	nrows := int(binary.LittleEndian.Uint16(p[0:2]))
	freeStart := int(binary.LittleEndian.Uint16(p[2:4]))
	free := heapPageSize - nrows*heapSlotSize - freeStart
	if free < need {
		if err := ph.Release(); err != nil {
			return rowRef{}, err
		}
		if err := h.addPage(); err != nil {
			return rowRef{}, err
		}
		ph, err = h.cache.Get(h.space, h.tail)
		if err != nil {
			return rowRef{}, err
		}
		p = ph.Data()
		nrows = 0
		freeStart = heapHeaderSize
	}
	// Write the cell.
	off := freeStart
	binary.LittleEndian.PutUint64(p[off:], uint64(r.vertex))
	binary.LittleEndian.PutUint32(p[off+8:], r.chunk)
	binary.LittleEndian.PutUint16(p[off+12:], uint16(len(r.blob)))
	copy(p[off+rowHeader:], r.blob)
	// Slot directory entry.
	binary.LittleEndian.PutUint16(p[heapPageSize-(nrows+1)*heapSlotSize:], uint16(off))
	binary.LittleEndian.PutUint16(p[0:2], uint16(nrows+1))
	binary.LittleEndian.PutUint16(p[2:4], uint16(off+rowHeader+len(r.blob)))
	ph.MarkDirty()
	ref := rowRef{page: h.tail, slot: nrows}
	return ref, ph.Release()
}

// read fetches the row at ref. The returned blob is a copy.
func (h *heap) read(ref rowRef) (row, error) {
	ph, err := h.cache.Get(h.space, ref.page)
	if err != nil {
		return row{}, err
	}
	defer ph.Release()
	p := ph.Data()
	nrows := int(binary.LittleEndian.Uint16(p[0:2]))
	if ref.slot < 0 || ref.slot >= nrows {
		return row{}, fmt.Errorf("reldb: slot %d out of range on page %d (nrows=%d)", ref.slot, ref.page, nrows)
	}
	off := int(binary.LittleEndian.Uint16(p[heapPageSize-(ref.slot+1)*heapSlotSize:]))
	r := row{
		vertex: int64(binary.LittleEndian.Uint64(p[off:])),
		chunk:  binary.LittleEndian.Uint32(p[off+8:]),
	}
	bl := int(binary.LittleEndian.Uint16(p[off+12:]))
	r.blob = make([]byte, bl)
	copy(r.blob, p[off+rowHeader:off+rowHeader+bl])
	return r, nil
}
