package reldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/storage/blockio"
	"mssg/internal/storage/btree"
	"mssg/internal/storage/cache"
	"mssg/internal/storage/fsutil"
	"mssg/internal/storage/vfs"
	"mssg/internal/storage/wal"
)

func init() {
	graphdb.Register("mysql", func(opts graphdb.Options) (graphdb.Graph, error) {
		return Open(opts)
	})
}

const (
	indexPageSize = 4 * 1024
	// chunkCap is the neighbour capacity of one BLOB chunk: 1000 8-byte
	// IDs = 8000 bytes, the paper's ~8 KB blocking (Fig 4.3).
	chunkCap = 1000
	// DefaultCacheBytes is the buffer-pool budget when Options.CacheBytes
	// is zero.
	DefaultCacheBytes = 16 << 20

	defaultMaxFileBytes = 256 << 20

	manifestName = "reldb.manifest"

	spaceHeap  = 0
	spaceIndex = 1
)

// DB is the MySQL-substitute graph store.
type DB struct {
	dir       string
	fsys      vfs.FS
	heapStore *blockio.Store
	idxStore  *blockio.Store
	cache     *cache.BlockCache
	heap      *heap
	index     *btree.Tree
	log       *wal.Log
	meta      *graphdb.MetaMap
	// durable adds data-file fsyncs to every Flush so a completed Flush
	// survives a crash, not just a process exit.
	durable bool
	closed  bool
	stats   graphdb.StatCounters
	// statements counts parsed statements (for reports); atomic because
	// SELECTs are readers and may run concurrently.
	statements atomic.Int64
}

// Open creates or reopens a DB under opts.Dir.
func Open(opts graphdb.Options) (*DB, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("reldb: need a directory")
	}
	cacheBytes := opts.CacheBytes
	switch {
	case cacheBytes == 0:
		cacheBytes = DefaultCacheBytes
	case cacheBytes < 0:
		cacheBytes = 0
	}
	maxFile := opts.MaxFileBytes
	if maxFile <= 0 {
		maxFile = defaultMaxFileBytes
	}
	fsys := vfs.Or(opts.FS)
	durable := opts.Durability >= graphdb.DurabilityFull
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: %w", err)
	}
	heapStore, err := blockio.OpenStore(blockio.Config{
		Dir: opts.Dir, Prefix: "heap", BlockSize: heapPageSize,
		MaxFileBytes: maxFile, Checksums: durable, FS: opts.FS,
	})
	if err != nil {
		return nil, err
	}
	idxStore, err := blockio.OpenStore(blockio.Config{
		Dir: opts.Dir, Prefix: "idx", BlockSize: indexPageSize,
		MaxFileBytes: maxFile, Checksums: durable, FS: opts.FS,
	})
	if err != nil {
		heapStore.Close()
		return nil, err
	}
	heapStore.SimulateLatency(opts.SimReadLatency, opts.SimWriteLatency)
	idxStore.SimulateLatency(opts.SimReadLatency, opts.SimWriteLatency)
	c := cache.New(cacheBytes)
	c.EnableMetrics(opts.Metrics, "mysql")
	if durable {
		// Dirty pages must not reach their data files before the WAL
		// holding their images is synced (DESIGN.md §11): without this, an
		// eviction under memory pressure writes half a B-tree split in
		// place over committed pages, and the redo-only log has no undo to
		// repair it after a power cut.
		c.SetNoSteal(true)
	}
	man, err := loadManifest(fsys, filepath.Join(opts.Dir, manifestName))
	if err != nil {
		heapStore.Close()
		idxStore.Close()
		return nil, err
	}
	log, err := wal.Open(fsys, filepath.Join(opts.Dir, "wal.log"))
	if err != nil {
		heapStore.Close()
		idxStore.Close()
		return nil, err
	}
	// A committed flush may have been interrupted mid-write-back: restore
	// its block images (and the manifest state it sealed) before the heap
	// and tree first read through those pages.
	man, lastState, err := recoverCheckpoint(log,
		map[uint32]*blockio.Store{spaceHeap: heapStore, spaceIndex: idxStore}, man)
	if err != nil {
		log.Close()
		heapStore.Close()
		idxStore.Close()
		return nil, fmt.Errorf("reldb: checkpoint recovery: %w", err)
	}
	hp, err := openHeap(heapStore, c, spaceHeap, man.heapTail, man.heapPages)
	if err != nil {
		log.Close()
		heapStore.Close()
		idxStore.Close()
		return nil, err
	}
	idx, err := btree.Open(btree.Config{Store: idxStore, Cache: c, Space: spaceIndex}, man.tree)
	if err != nil {
		log.Close()
		heapStore.Close()
		idxStore.Close()
		return nil, err
	}
	d := &DB{
		dir:       opts.Dir,
		fsys:      fsys,
		heapStore: heapStore,
		idxStore:  idxStore,
		cache:     c,
		heap:      hp,
		index:     idx,
		log:       log,
		meta:      graphdb.NewMetaMap(),
		durable:   durable,
	}
	d.stats.EnableLatency(opts.Metrics, "mysql")
	// Redo the row records the last crash left in the log (those not
	// already covered by the recovered checkpoint), then complete the
	// interrupted flush so the next crash starts from a clean slate.
	replayed, err := d.replayWAL(lastState)
	if err != nil {
		d.closeStores()
		return nil, fmt.Errorf("reldb: WAL replay: %w", err)
	}
	if replayed > 0 || lastState > 0 {
		if err := d.Flush(); err != nil {
			d.closeStores()
			return nil, fmt.Errorf("reldb: post-replay flush: %w", err)
		}
	}
	return d, nil
}

type manifest struct {
	tree      btree.Meta
	heapTail  int64
	heapPages int64
}

// manifestBytes is the fixed encoded size of a manifest (also the
// payload of a WAL state record, minus its kind byte).
const manifestBytes = 40

// encode serializes m into b, which must be manifestBytes long.
func (m manifest) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(m.tree.Root))
	binary.LittleEndian.PutUint64(b[8:16], uint64(m.tree.NumPages))
	binary.LittleEndian.PutUint64(b[16:24], uint64(m.tree.Count))
	binary.LittleEndian.PutUint64(b[24:32], uint64(m.heapTail))
	binary.LittleEndian.PutUint64(b[32:40], uint64(m.heapPages))
}

// decodeManifest parses manifestBytes of encoded manifest. Must not
// panic on any input (fuzzed via FuzzManifestDecode).
func decodeManifest(b []byte) (manifest, error) {
	if len(b) != manifestBytes {
		return manifest{}, fmt.Errorf("reldb: manifest is %d bytes, want %d", len(b), manifestBytes)
	}
	return manifest{
		tree: btree.Meta{
			Root:     int64(binary.LittleEndian.Uint64(b[0:8])),
			NumPages: int64(binary.LittleEndian.Uint64(b[8:16])),
			Count:    int64(binary.LittleEndian.Uint64(b[16:24])),
		},
		heapTail:  int64(binary.LittleEndian.Uint64(b[24:32])),
		heapPages: int64(binary.LittleEndian.Uint64(b[32:40])),
	}, nil
}

func loadManifest(fsys vfs.FS, path string) (manifest, error) {
	b, err := fsutil.ReadFile(fsys, path)
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, nil
	}
	if err != nil {
		return manifest{}, fmt.Errorf("reldb: manifest: %w", err)
	}
	return decodeManifest(b)
}

// currentManifest snapshots the live tree meta and heap allocation state.
func (d *DB) currentManifest() manifest {
	return manifest{tree: d.index.Meta(), heapTail: d.heap.tail, heapPages: d.heap.numPages}
}

func (d *DB) saveManifest() error {
	var b [manifestBytes]byte
	d.currentManifest().encode(b[:])
	return fsutil.WriteFileAtomic(d.fsys, filepath.Join(d.dir, manifestName), b[:], 0o644)
}

// head record: index key (v, 0) → {tailChunk uint32, tailCount uint32}.

func (d *DB) readHead(v graph.VertexID) (tailChunk, tailCount uint32, err error) {
	val, err := d.index.Get(btree.U64Key(uint64(v), 0))
	if err == btree.ErrNotFound {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	if len(val) != 8 {
		return 0, 0, fmt.Errorf("reldb: head of %d is %d bytes", v, len(val))
	}
	return binary.LittleEndian.Uint32(val[0:4]), binary.LittleEndian.Uint32(val[4:8]), nil
}

func (d *DB) writeHead(v graph.VertexID, tailChunk, tailCount uint32) error {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], tailChunk)
	binary.LittleEndian.PutUint32(b[4:8], tailCount)
	return d.index.Put(btree.U64Key(uint64(v), 0), b[:])
}

// execInsert runs one parsed REPLACE against storage: WAL first, then a
// new heap row version, then the index repoint. Records are staged in the
// log and group-committed by the next Flush — one fsync per flush window
// rather than the per-statement flush that makes transactional engines
// slow ingesters.
func (d *DB) execInsert(st statement) error {
	if _, err := d.log.Append(encodeWALRecord(st.vertex, st.chunk, st.blob)); err != nil {
		return err
	}
	ref, err := d.heap.insert(row{vertex: st.vertex, chunk: st.chunk, blob: st.blob})
	if err != nil {
		return err
	}
	return d.index.Put(btree.U64Key(uint64(st.vertex), uint64(st.chunk)), ref.encode())
}

// StoreEdges implements graphdb.Graph. Each touched vertex's tail chunk is
// rewritten through the full statement → WAL → heap → index path.
func (d *DB) StoreEdges(edges []graph.Edge) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if len(edges) == 0 {
		return nil
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveStore(start)
	grouped := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		if err := graph.ValidateEdge(e); err != nil {
			return err
		}
		grouped[e.Src] = append(grouped[e.Src], e.Dst)
	}
	srcs := make([]graph.VertexID, 0, len(grouped))
	for v := range grouped {
		srcs = append(srcs, v)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })

	for _, src := range srcs {
		if err := d.appendNeighbors(src, grouped[src]); err != nil {
			return err
		}
		d.stats.AddEdgesStored(int64(len(grouped[src])))
	}
	return nil
}

func (d *DB) appendNeighbors(src graph.VertexID, add []graph.VertexID) error {
	tailChunk, tailCount, err := d.readHead(src)
	if err != nil {
		return err
	}
	var blob []byte
	switch {
	case tailChunk == 0:
		tailChunk, tailCount = 1, 0
	case tailCount >= chunkCap:
		tailChunk, tailCount = tailChunk+1, 0
	default:
		// Read the current tail row back through the index.
		refBytes, err := d.index.Get(btree.U64Key(uint64(src), uint64(tailChunk)))
		if err != nil {
			return fmt.Errorf("reldb: tail of %d: %w", src, err)
		}
		ref, err := decodeRowRef(refBytes)
		if err != nil {
			return err
		}
		r, err := d.heap.read(ref)
		if err != nil {
			return err
		}
		blob = r.blob
	}

	for len(add) > 0 {
		space := chunkCap - int(tailCount)
		take := len(add)
		if take > space {
			take = space
		}
		for _, u := range add[:take] {
			var idb [8]byte
			binary.LittleEndian.PutUint64(idb[:], uint64(u))
			blob = append(blob, idb[:]...)
		}
		tailCount += uint32(take)

		// Client renders the statement; server parses and executes it.
		stmtText := renderInsert(int64(src), tailChunk, blob)
		st, err := parseStatement(stmtText)
		if err != nil {
			return err
		}
		d.statements.Add(1)
		if err := d.execInsert(st); err != nil {
			return err
		}

		add = add[take:]
		if len(add) > 0 {
			tailChunk++
			tailCount = 0
			blob = blob[:0]
		}
	}
	// Log the head update too (chunk 0 = head record), so replay restores
	// it; if this record is lost, replay's self-heal rebuilds the head
	// from the highest row chunk it sees.
	var hb [8]byte
	binary.LittleEndian.PutUint32(hb[0:4], tailChunk)
	binary.LittleEndian.PutUint32(hb[4:8], tailCount)
	if _, err := d.log.Append(encodeWALRecord(int64(src), 0, hb[:])); err != nil {
		return err
	}
	return d.writeHead(src, tailChunk, tailCount)
}

// Metadata implements graphdb.Graph.
func (d *DB) Metadata(v graph.VertexID) (int32, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	return d.meta.Get(v), nil
}

// SetMetadata implements graphdb.Graph.
func (d *DB) SetMetadata(v graph.VertexID, md int32) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	d.meta.Set(v, md)
	return nil
}

// AdjacencyUsingMetadata implements graphdb.Graph: a SELECT through the
// statement layer, an index range scan, heap fetches, and a text result
// set decoded client-side.
func (d *DB) AdjacencyUsingMetadata(v graph.VertexID, out *graph.AdjList, md int32, op graphdb.MetaOp) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveAdjacency(start)
	d.stats.AddAdjacencyCall()

	st, err := parseStatement(renderSelect(int64(v)))
	if err != nil {
		return err
	}
	d.statements.Add(1)

	// Server side: index range scan over (v, 1..), heap fetch per chunk,
	// text result rows out.
	var resultRows []string
	c := d.index.Seek(btree.U64Key(uint64(st.vertex), 1))
	for c.Valid() && c.HasPrefix(uint64(st.vertex)) {
		ref, err := decodeRowRef(c.Value())
		if err != nil {
			return err
		}
		r, err := d.heap.read(ref)
		if err != nil {
			return err
		}
		resultRows = append(resultRows, renderResultRow(r.chunk, r.blob))
		c.Next()
	}
	if err := c.Err(); err != nil {
		return err
	}

	// Client side: decode the result set.
	var scratch []graph.VertexID
	for _, rowText := range resultRows {
		_, blob, err := parseResultRow(rowText)
		if err != nil {
			return err
		}
		for i := 0; i+8 <= len(blob); i += 8 {
			scratch = append(scratch, graph.VertexID(binary.LittleEndian.Uint64(blob[i:i+8])))
		}
	}
	d.stats.AddNeighborsReturned(graphdb.FilterAppend(d.meta, scratch, out, md, op))
	return nil
}

// Flush implements graphdb.Graph. The log sync is the commit point: once
// it returns, the flushed statements survive a crash (replay redoes
// them); the write-back, data syncs, and manifest that follow retire the
// log so the next recovery starts empty.
//
// In durable mode Flush is a redo-only checkpoint in the style of grdb's
// (DESIGN.md §11): before the commit fsync it appends the image of every
// dirty page plus one state record sealing the new tree meta and heap
// tail. Row records alone are not enough once write-back starts — a
// power cut midway leaves some pages at the new state and some at the
// old, and logical re-execution against such a half-written tree can
// descend through a half-applied split into garbage. Recovery instead
// restores the committed images wholesale (recoverCheckpoint), which
// never reads the damaged tree at all.
func (d *DB) Flush() error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if d.durable {
		err := d.cache.Dirty(func(space uint32, block int64, data []byte) error {
			_, err := d.log.Append(encodeImageRecord(space, block, data))
			return err
		})
		if err != nil {
			return err
		}
		if _, err := d.log.Append(encodeStateRecord(d.currentManifest())); err != nil {
			return err
		}
	}
	if err := d.log.Sync(); err != nil { // commit point
		return err
	}
	if err := d.cache.Flush(); err != nil {
		return err
	}
	if d.durable {
		if err := d.heapStore.Sync(); err != nil {
			return err
		}
		if err := d.idxStore.Sync(); err != nil {
			return err
		}
	}
	if err := d.saveManifest(); err != nil {
		return err
	}
	return d.log.Reset()
}

// Close implements graphdb.Graph.
func (d *DB) Close() error {
	if d.closed {
		return nil
	}
	if err := d.Flush(); err != nil {
		return err
	}
	d.closed = true
	return d.closeStores()
}

// closeStores releases file handles without flushing; first error wins.
func (d *DB) closeStores() error {
	err := d.log.Close()
	if e := d.heapStore.Close(); err == nil {
		err = e
	}
	if e := d.idxStore.Close(); err == nil {
		err = e
	}
	return err
}

// Stats implements graphdb.Graph.
func (d *DB) Stats() graphdb.Stats { return d.stats.Snapshot() }

// ConcurrentReaders implements graphdb.Graph: SELECT execution is a
// B-tree probe plus heap reads through the block cache, with no shared
// mutable state beyond the atomic statement/stats counters.
func (d *DB) ConcurrentReaders() bool { return true }

// Statements returns the number of SQL statements parsed.
func (d *DB) Statements() int64 { return d.statements.Load() }

// IOCounters implements graphdb.IOCounters (heap + index traffic).
func (d *DB) IOCounters() (blockReads, blockWrites int64) {
	h := d.heapStore.Counters()
	i := d.idxStore.Counters()
	return h.BlockReads + i.BlockReads, h.BlockWrites + i.BlockWrites
}

// CacheStats implements graphdb.CacheStats.
func (d *DB) CacheStats() (hits, misses int64) {
	s := d.cache.Stats()
	return s.Hits, s.Misses
}

// ResetMetadata clears all metadata between queries.
func (d *DB) ResetMetadata() { d.meta.Reset() }
