package graphdb_test

// Parallel-read section of the conformance suite: every backend declares
// ConcurrentReaders and must survive 8 goroutines of mixed read traffic
// under -race, answering exactly what the serial baseline answered.

import (
	"reflect"
	"sync"
	"testing"

	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func TestConcurrentReadersDeclared(t *testing.T) {
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			if !g.ConcurrentReaders() {
				t.Fatalf("%s: ConcurrentReaders() = false; all built-in backends guarantee concurrent readers", name)
			}
		})
	}
}

// TestConcurrentReaderStress seeds a scale-free graph plus metadata,
// records a serial baseline of every read the workers will issue, then
// hammers the backend from 8 goroutines with mixed Adjacency /
// filtered-Adjacency / Degree / Metadata reads and checks each answer
// against the baseline. Run it with -race: the assertions catch torn
// results, the detector catches unsynchronized state on the read path.
func TestConcurrentReaderStress(t *testing.T) {
	const (
		readers = 8
		iters   = 40
	)
	cfg := gen.Config{Name: "concurrent", Vertices: 300, M: 3, HubFraction: 0.2, Seed: 1234}
	edges, err := gen.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "stream" {
				t.Skip("full log scan per read is slow in -short mode")
			}
			g := openBackend(t, name)
			if err := g.StoreEdges(edges); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			// Metadata on every third vertex, set before the parallel
			// phase (SetMetadata is a mutator).
			for v := graph.VertexID(0); v < graph.VertexID(cfg.Vertices); v += 3 {
				if err := g.SetMetadata(v, int32(v%7)); err != nil {
					t.Fatalf("SetMetadata(%d): %v", v, err)
				}
			}
			if err := g.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}

			// Serial baseline over every vertex.
			type baseline struct {
				adj      []graph.VertexID
				filtered []graph.VertexID
				degree   int64
				md       int32
			}
			base := make([]baseline, cfg.Vertices)
			for v := range base {
				out := graph.NewAdjList(8)
				if err := graphdb.Adjacency(g, graph.VertexID(v), out); err != nil {
					t.Fatalf("baseline Adjacency(%d): %v", v, err)
				}
				base[v].adj = sortedIDs(out)
				out.Reset()
				if err := g.AdjacencyUsingMetadata(graph.VertexID(v), out, 2, graphdb.MetaGreater); err != nil {
					t.Fatalf("baseline filtered Adjacency(%d): %v", v, err)
				}
				base[v].filtered = sortedIDs(out)
				deg, err := graphdb.Degree(g, graph.VertexID(v))
				if err != nil {
					t.Fatalf("baseline Degree(%d): %v", v, err)
				}
				base[v].degree = deg
				md, err := g.Metadata(graph.VertexID(v))
				if err != nil {
					t.Fatalf("baseline Metadata(%d): %v", v, err)
				}
				base[v].md = md
			}

			perReader := iters
			if name == "stream" {
				// Every read is a full log scan; keep wall time sane.
				perReader = 6
			}
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := gen.NewRNG(int64(1000 + r))
					out := graph.NewAdjList(8)
					for i := 0; i < perReader; i++ {
						v := graph.VertexID(rng.Int63n(int64(cfg.Vertices)))
						switch i % 4 {
						case 0:
							out.Reset()
							if err := graphdb.Adjacency(g, v, out); err != nil {
								t.Errorf("reader %d: Adjacency(%d): %v", r, v, err)
								return
							}
							if got := sortedIDs(out); !reflect.DeepEqual(got, base[v].adj) {
								t.Errorf("reader %d: Adjacency(%d) = %v, want %v", r, v, got, base[v].adj)
								return
							}
						case 1:
							out.Reset()
							if err := g.AdjacencyUsingMetadata(v, out, 2, graphdb.MetaGreater); err != nil {
								t.Errorf("reader %d: filtered Adjacency(%d): %v", r, v, err)
								return
							}
							if got := sortedIDs(out); !reflect.DeepEqual(got, base[v].filtered) {
								t.Errorf("reader %d: filtered Adjacency(%d) = %v, want %v", r, v, got, base[v].filtered)
								return
							}
						case 2:
							deg, err := graphdb.Degree(g, v)
							if err != nil {
								t.Errorf("reader %d: Degree(%d): %v", r, v, err)
								return
							}
							if deg != base[v].degree {
								t.Errorf("reader %d: Degree(%d) = %d, want %d", r, v, deg, base[v].degree)
								return
							}
						case 3:
							md, err := g.Metadata(v)
							if err != nil {
								t.Errorf("reader %d: Metadata(%d): %v", r, v, err)
								return
							}
							if md != base[v].md {
								t.Errorf("reader %d: Metadata(%d) = %d, want %d", r, v, md, base[v].md)
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()

			// Stats must have absorbed every reader's counts without loss:
			// at least the baseline's calls plus the workers' adjacency
			// reads (exact counts differ per backend batch strategy).
			if st := g.Stats(); st.AdjacencyCalls <= 0 {
				t.Fatalf("Stats().AdjacencyCalls = %d after concurrent reads", st.AdjacencyCalls)
			}
		})
	}
}

// TestConcurrentBatchReaders exercises the BatchGraph path (StreamDB's
// whole-fringe scan) from multiple goroutines at once.
func TestConcurrentBatchReaders(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 0},
	}
	fringe := []graph.VertexID{0, 1, 2, 3, 4}
	want := []graph.VertexID{0, 1, 2, 3, 3, 4}
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			if err := g.StoreEdges(edges); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			if err := g.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			var wg sync.WaitGroup
			for r := 0; r < 8; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						out := graph.NewAdjList(8)
						if err := graphdb.AdjacencyBatch(g, fringe, out, 0, graphdb.MetaIgnore); err != nil {
							t.Errorf("reader %d: AdjacencyBatch: %v", r, err)
							return
						}
						if got := sortedIDs(out); !reflect.DeepEqual(got, want) {
							t.Errorf("reader %d: AdjacencyBatch = %v, want %v", r, got, want)
							return
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}
