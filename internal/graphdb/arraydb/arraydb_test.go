package arraydb

import (
	"reflect"
	"sort"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func adjacency(t *testing.T, d *DB, v graph.VertexID) []graph.VertexID {
	t.Helper()
	out := graph.NewAdjList(8)
	if err := graphdb.Adjacency(d, v, out); err != nil {
		t.Fatalf("Adjacency(%d): %v", v, err)
	}
	ids := append([]graph.VertexID(nil), out.IDs()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestCSRLayoutAfterFlush(t *testing.T) {
	// The Fig 4.1 example graph: adjacency of 0 = {1,2,3}, of 1 = {0,2}.
	d := New()
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2},
		{Src: 3, Dst: 0},
	}
	if err := d.StoreEdges(edges); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := adjacency(t, d, 0); !reflect.DeepEqual(got, []graph.VertexID{1, 2, 3}) {
		t.Fatalf("adj(0) = %v", got)
	}
	if got := adjacency(t, d, 1); !reflect.DeepEqual(got, []graph.VertexID{0, 2}) {
		t.Fatalf("adj(1) = %v", got)
	}
	// Vertex 2 exists (as a destination) but has no out-edges.
	if got := adjacency(t, d, 2); len(got) != 0 {
		t.Fatalf("adj(2) = %v, want empty", got)
	}
}

func TestAdjacencyBeforeFlushRejected(t *testing.T) {
	// CSR is static: the paper's prototype stages through a hash table
	// and compacts at flush; reading with staged edges is a bug.
	d := New()
	if err := d.StoreEdges([]graph.Edge{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	out := graph.NewAdjList(2)
	if err := d.AdjacencyUsingMetadata(0, out, 0, graphdb.MetaIgnore); err == nil {
		t.Fatal("adjacency with staged edges succeeded")
	}
}

func TestIncrementalFlushesMerge(t *testing.T) {
	// Multiple store+flush rounds must accumulate, not replace.
	d := New()
	if err := d.StoreEdges([]graph.Edge{{Src: 5, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.StoreEdges([]graph.Edge{{Src: 5, Dst: 2}, {Src: 9, Dst: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := adjacency(t, d, 5); !reflect.DeepEqual(got, []graph.VertexID{1, 2}) {
		t.Fatalf("adj(5) after two flushes = %v", got)
	}
	if got := adjacency(t, d, 9); !reflect.DeepEqual(got, []graph.VertexID{5}) {
		t.Fatalf("adj(9) = %v", got)
	}
	// The second flush grew the ID space from 6 to 10 vertices.
	if got := adjacency(t, d, 8); len(got) != 0 {
		t.Fatalf("adj(8) = %v", got)
	}
}

func TestEmptyFlushIsNoOp(t *testing.T) {
	d := New()
	if err := d.Flush(); err != nil {
		t.Fatalf("empty flush: %v", err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("second empty flush: %v", err)
	}
	out := graph.NewAdjList(2)
	if err := graphdb.Adjacency(d, 0, out); err != nil {
		t.Fatalf("adjacency on empty DB: %v", err)
	}
}
