// Package arraydb is the Array GraphDB instance (paper §4.1.1, Fig 4.1):
// the standard compressed adjacency list (CSR) format. Two arrays store
// the graph — adj concatenates every adjacency list, xadj[v] points at the
// start of v's list — giving the fastest possible in-memory retrieval.
//
// As in the prototype, edges stream into a temporary per-vertex table
// during ingestion and are compacted into the CSR arrays at Flush (the
// paper stages ingestion through its HashMap implementation for the same
// reason: CSR cannot grow dynamically). Also as in the paper, each node
// stores the full xadj array over the global ID space, which is why the
// format's memory footprint does not scale with back-end count (§4.1.1).
package arraydb

import (
	"fmt"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func init() {
	graphdb.Register("array", func(opts graphdb.Options) (graphdb.Graph, error) {
		d := New()
		d.stats.EnableLatency(opts.Metrics, "array")
		return d, nil
	})
}

// DB is an in-memory CSR graph store.
type DB struct {
	meta *graphdb.MetaMap

	// staging holds edges until the next compaction.
	staging map[graph.VertexID][]graph.VertexID
	dirty   bool

	// CSR arrays, rebuilt by Flush. xadj has maxID+2 entries so the usual
	// adj[xadj[v]:xadj[v+1]] window works for every v.
	xadj  []int64
	adj   []graph.VertexID
	maxID graph.VertexID

	closed bool
	stats  graphdb.StatCounters
}

// New returns an empty Array instance.
func New() *DB {
	return &DB{
		meta:    graphdb.NewMetaMap(),
		staging: make(map[graph.VertexID][]graph.VertexID),
		maxID:   -1,
	}
}

// StoreEdges implements graphdb.Graph.
func (d *DB) StoreEdges(edges []graph.Edge) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveStore(start)
	for _, e := range edges {
		if err := graph.ValidateEdge(e); err != nil {
			return err
		}
		d.staging[e.Src] = append(d.staging[e.Src], e.Dst)
		if e.Src > d.maxID {
			d.maxID = e.Src
		}
		if e.Dst > d.maxID {
			d.maxID = e.Dst
		}
		d.stats.AddEdgesStored(1)
	}
	d.dirty = d.dirty || len(edges) > 0
	return nil
}

// Flush compacts staged edges into the CSR arrays. Staged lists are merged
// with any previously compacted adjacency (full rebuild: CSR is a static
// format).
func (d *DB) Flush() error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if !d.dirty {
		return nil
	}
	n := int64(d.maxID) + 1
	counts := make([]int64, n+1)
	// Degree from the old CSR...
	for v := int64(0); v < int64(len(d.xadj))-1; v++ {
		counts[v+1] += d.xadj[v+1] - d.xadj[v]
	}
	// ...plus staged additions.
	var staged int64
	for v, list := range d.staging {
		counts[int64(v)+1] += int64(len(list))
		staged += int64(len(list))
	}
	newXadj := make([]int64, n+1)
	for v := int64(1); v <= n; v++ {
		newXadj[v] = newXadj[v-1] + counts[v]
	}
	newAdj := make([]graph.VertexID, newXadj[n])
	cursor := make([]int64, n)
	copy(cursor, newXadj[:n])
	for v := int64(0); v < int64(len(d.xadj))-1; v++ {
		for _, u := range d.adj[d.xadj[v]:d.xadj[v+1]] {
			newAdj[cursor[v]] = u
			cursor[v]++
		}
	}
	for v, list := range d.staging {
		for _, u := range list {
			newAdj[cursor[v]] = u
			cursor[v]++
		}
	}
	d.xadj = newXadj
	d.adj = newAdj
	d.staging = make(map[graph.VertexID][]graph.VertexID)
	d.dirty = false
	return nil
}

// Metadata implements graphdb.Graph.
func (d *DB) Metadata(v graph.VertexID) (int32, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	return d.meta.Get(v), nil
}

// SetMetadata implements graphdb.Graph.
func (d *DB) SetMetadata(v graph.VertexID, md int32) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	d.meta.Set(v, md)
	return nil
}

// AdjacencyUsingMetadata implements graphdb.Graph.
func (d *DB) AdjacencyUsingMetadata(v graph.VertexID, out *graph.AdjList, md int32, op graphdb.MetaOp) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if d.dirty {
		return fmt.Errorf("arraydb: adjacency requested with staged edges; call Flush first")
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveAdjacency(start)
	d.stats.AddAdjacencyCall()
	if int64(v) < 0 || int64(v) >= int64(len(d.xadj))-1 {
		return nil
	}
	neighbors := d.adj[d.xadj[v]:d.xadj[v+1]]
	d.stats.AddNeighborsReturned(graphdb.FilterAppend(d.meta, neighbors, out, md, op))
	return nil
}

// Close implements graphdb.Graph.
func (d *DB) Close() error {
	if d.closed {
		return nil
	}
	if err := d.Flush(); err != nil {
		return err
	}
	d.closed = true
	return nil
}

// Stats implements graphdb.Graph.
func (d *DB) Stats() graphdb.Stats { return d.stats.Snapshot() }

// ConcurrentReaders implements graphdb.Graph: after Flush, retrievals
// only index the immutable CSR arrays and the read-only metadata map.
func (d *DB) ConcurrentReaders() bool { return true }

// ResetMetadata clears all metadata between queries.
func (d *DB) ResetMetadata() { d.meta.Reset() }
