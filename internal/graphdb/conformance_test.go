package graphdb_test

// Conformance suite: every registered backend must implement the
// Listing 3.1 contract identically. The same table of tests runs against
// all six implementations, with an in-memory reference model as oracle.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	_ "mssg/internal/graphdb/all"
)

// openBackend creates a fresh instance of the named backend in a temp dir.
func openBackend(t testing.TB, name string) graphdb.Graph {
	t.Helper()
	g, err := graphdb.Open(name, graphdb.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	t.Cleanup(func() {
		if err := g.Close(); err != nil {
			t.Errorf("close %s: %v", name, err)
		}
	})
	return g
}

func allBackends() []string { return graphdb.Backends() }

func sortedIDs(a *graph.AdjList) []graph.VertexID {
	ids := append([]graph.VertexID(nil), a.IDs()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestRegistryHasAllSixBackends(t *testing.T) {
	want := []string{"array", "bdb", "grdb", "hashmap", "mysql", "stream"}
	if got := graphdb.Backends(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
}

func TestStoreAndRetrieveSmall(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2},
		{Src: 2, Dst: 0}, {Src: 2, Dst: 1},
		{Src: 3, Dst: 0},
	}
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			if err := g.StoreEdges(edges); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			if err := g.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			out := graph.NewAdjList(8)
			if err := graphdb.Adjacency(g, 0, out); err != nil {
				t.Fatalf("Adjacency(0): %v", err)
			}
			if got, want := sortedIDs(out), []graph.VertexID{1, 2, 3}; !reflect.DeepEqual(got, want) {
				t.Fatalf("Adjacency(0) = %v, want %v", got, want)
			}
			out.Reset()
			if err := graphdb.Adjacency(g, 3, out); err != nil {
				t.Fatalf("Adjacency(3): %v", err)
			}
			if got, want := sortedIDs(out), []graph.VertexID{0}; !reflect.DeepEqual(got, want) {
				t.Fatalf("Adjacency(3) = %v, want %v", got, want)
			}
		})
	}
}

func TestUnknownVertexYieldsEmpty(t *testing.T) {
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			if err := g.StoreEdges([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			if err := g.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			out := graph.NewAdjList(4)
			// Vertex 999 was never stored; the paper's BFS relies on the
			// empty set here (§4.2, steps 5 and 10).
			if err := graphdb.Adjacency(g, 999, out); err != nil {
				t.Fatalf("Adjacency(999): %v", err)
			}
			if out.Len() != 0 {
				t.Fatalf("Adjacency(999) returned %d neighbours, want 0", out.Len())
			}
		})
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			if md, err := g.Metadata(7); err != nil || md != 0 {
				t.Fatalf("default Metadata = %d, %v; want 0, nil", md, err)
			}
			if err := g.SetMetadata(7, 42); err != nil {
				t.Fatalf("SetMetadata: %v", err)
			}
			if md, err := g.Metadata(7); err != nil || md != 42 {
				t.Fatalf("Metadata = %d, %v; want 42, nil", md, err)
			}
			if ok := graphdb.ResetMetadata(g); !ok {
				t.Fatalf("backend does not support metadata reset")
			}
			if md, _ := g.Metadata(7); md != 0 {
				t.Fatalf("Metadata after reset = %d, want 0", md)
			}
		})
	}
}

func TestMetadataFilterOps(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4},
	}
	// metadata: 1->10, 2->20, 3->20, 4 unset (0)
	cases := []struct {
		op   graphdb.MetaOp
		ref  int32
		want []graph.VertexID
	}{
		{graphdb.MetaIgnore, 20, []graph.VertexID{1, 2, 3, 4}},
		{graphdb.MetaEqual, 20, []graph.VertexID{2, 3}},
		{graphdb.MetaNotEqual, 20, []graph.VertexID{1, 4}},
		{graphdb.MetaGreater, 10, []graph.VertexID{2, 3}},
		{graphdb.MetaLess, 10, []graph.VertexID{4}},
	}
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			if err := g.StoreEdges(edges); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			if err := g.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			for v, md := range map[graph.VertexID]int32{1: 10, 2: 20, 3: 20} {
				if err := g.SetMetadata(v, md); err != nil {
					t.Fatalf("SetMetadata: %v", err)
				}
			}
			for _, tc := range cases {
				out := graph.NewAdjList(4)
				if err := g.AdjacencyUsingMetadata(0, out, tc.ref, tc.op); err != nil {
					t.Fatalf("op %v: %v", tc.op, err)
				}
				if got := sortedIDs(out); !reflect.DeepEqual(got, tc.want) {
					t.Fatalf("op %v ref %d = %v, want %v", tc.op, tc.ref, got, tc.want)
				}
			}
		})
	}
}

// TestAgainstReferenceModel ingests a scale-free graph in randomized
// batches and checks every vertex's adjacency against an in-memory map.
func TestAgainstReferenceModel(t *testing.T) {
	cfg := gen.Config{Name: "conformance", Vertices: 400, M: 3, HubFraction: 0.2, Seed: 99}
	edges, err := gen.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ref := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		ref[e.Src] = append(ref[e.Src], e.Dst)
	}
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			// Store in uneven batches to exercise chain growth.
			rng := gen.NewRNG(7)
			for i := 0; i < len(edges); {
				n := int(rng.Int63n(37)) + 1
				if i+n > len(edges) {
					n = len(edges) - i
				}
				if err := g.StoreEdges(edges[i : i+n]); err != nil {
					t.Fatalf("StoreEdges batch at %d: %v", i, err)
				}
				i += n
			}
			if err := g.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			out := graph.NewAdjList(64)
			for v := graph.VertexID(0); v < graph.VertexID(cfg.Vertices); v++ {
				out.Reset()
				if err := graphdb.Adjacency(g, v, out); err != nil {
					t.Fatalf("Adjacency(%d): %v", v, err)
				}
				got := sortedIDs(out)
				want := append([]graph.VertexID(nil), ref[v]...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(want) == 0 {
					want = nil
				}
				if len(got) == 0 {
					got = nil
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Adjacency(%d) = %d ids, want %d ids\n got: %v\nwant: %v",
						v, len(got), len(want), got, want)
				}
			}
		})
	}
}

// TestBatchMatchesPerVertex checks AdjacencyBatch against the union of
// per-vertex retrievals, for backends with and without the fast path.
func TestBatchMatchesPerVertex(t *testing.T) {
	cfg := gen.Config{Name: "batch", Vertices: 200, M: 3, Seed: 5}
	edges, err := gen.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	fringe := []graph.VertexID{0, 3, 17, 42, 100, 199}
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			if err := g.StoreEdges(edges); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			if err := g.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			batched := graph.NewAdjList(64)
			if err := graphdb.AdjacencyBatch(g, fringe, batched, 0, graphdb.MetaIgnore); err != nil {
				t.Fatalf("AdjacencyBatch: %v", err)
			}
			single := graph.NewAdjList(64)
			for _, v := range fringe {
				if err := graphdb.Adjacency(g, v, single); err != nil {
					t.Fatalf("Adjacency(%d): %v", v, err)
				}
			}
			if got, want := sortedIDs(batched), sortedIDs(single); !reflect.DeepEqual(got, want) {
				t.Fatalf("batch = %v, per-vertex = %v", got, want)
			}
		})
	}
}

// TestPersistenceAcrossReopen verifies the out-of-core backends survive a
// close/reopen cycle.
func TestPersistenceAcrossReopen(t *testing.T) {
	for _, name := range []string{"mysql", "bdb", "stream", "grdb"} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			g, err := graphdb.Open(name, graphdb.Options{Dir: dir})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			edges := []graph.Edge{{Src: 5, Dst: 6}, {Src: 5, Dst: 7}, {Src: 6, Dst: 5}}
			if err := g.StoreEdges(edges); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			if err := g.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			g2, err := graphdb.Open(name, graphdb.Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer g2.Close()
			out := graph.NewAdjList(4)
			if err := graphdb.Adjacency(g2, 5, out); err != nil {
				t.Fatalf("Adjacency after reopen: %v", err)
			}
			if got, want := sortedIDs(out), []graph.VertexID{6, 7}; !reflect.DeepEqual(got, want) {
				t.Fatalf("after reopen Adjacency(5) = %v, want %v", got, want)
			}
		})
	}
}

func TestOperationsAfterCloseFail(t *testing.T) {
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g, err := graphdb.Open(name, graphdb.Options{Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if err := g.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := g.StoreEdges([]graph.Edge{{Src: 1, Dst: 2}}); err == nil {
				t.Fatal("StoreEdges after Close succeeded, want error")
			}
			out := graph.NewAdjList(1)
			if err := graphdb.Adjacency(g, 1, out); err == nil {
				t.Fatal("Adjacency after Close succeeded, want error")
			}
			// Close is idempotent.
			if err := g.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}

func TestInvalidVertexRejected(t *testing.T) {
	bad := graph.Edge{Src: -1, Dst: 2}
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			if err := g.StoreEdges([]graph.Edge{bad}); err == nil {
				t.Fatal("StoreEdges of negative vertex succeeded, want error")
			}
		})
	}
}

func TestStatsCount(t *testing.T) {
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			g := openBackend(t, name)
			edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 0}}
			if err := g.StoreEdges(edges); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			if err := g.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			out := graph.NewAdjList(4)
			if err := graphdb.Adjacency(g, 0, out); err != nil {
				t.Fatalf("Adjacency: %v", err)
			}
			s := g.Stats()
			if s.EdgesStored != 3 {
				t.Errorf("EdgesStored = %d, want 3", s.EdgesStored)
			}
			if s.AdjacencyCalls < 1 {
				t.Errorf("AdjacencyCalls = %d, want >= 1", s.AdjacencyCalls)
			}
			if s.NeighborsReturned != 2 {
				t.Errorf("NeighborsReturned = %d, want 2", s.NeighborsReturned)
			}
		})
	}
}

// TestQuickAdjacencyInvariant is a property-based check: for arbitrary
// small edge multisets, stored-then-retrieved adjacency equals the
// reference multiset, on every backend.
func TestQuickAdjacencyInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	type compactEdge struct {
		Src uint8
		Dst uint8
	}
	for _, name := range allBackends() {
		t.Run(name, func(t *testing.T) {
			check := func(raw []compactEdge) bool {
				g, err := graphdb.Open(name, graphdb.Options{Dir: t.TempDir()})
				if err != nil {
					t.Logf("open: %v", err)
					return false
				}
				defer g.Close()
				ref := make(map[graph.VertexID][]graph.VertexID)
				edges := make([]graph.Edge, len(raw))
				for i, ce := range raw {
					e := graph.Edge{Src: graph.VertexID(ce.Src), Dst: graph.VertexID(ce.Dst)}
					edges[i] = e
					ref[e.Src] = append(ref[e.Src], e.Dst)
				}
				if err := g.StoreEdges(edges); err != nil {
					t.Logf("StoreEdges: %v", err)
					return false
				}
				if err := g.Flush(); err != nil {
					t.Logf("Flush: %v", err)
					return false
				}
				for v, want := range ref {
					out := graph.NewAdjList(len(want))
					if err := graphdb.Adjacency(g, v, out); err != nil {
						t.Logf("Adjacency(%d): %v", v, err)
						return false
					}
					got := sortedIDs(out)
					sorted := append([]graph.VertexID(nil), want...)
					sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
					if !reflect.DeepEqual(got, sorted) {
						t.Logf("Adjacency(%d) = %v, want %v", v, got, sorted)
						return false
					}
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 12}
			if err := quick.Check(check, cfg); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

// Ensure every backend opens with a distinct description string in the
// error message for unknown names (guards the registry error path).
func TestOpenUnknownBackend(t *testing.T) {
	_, err := graphdb.Open("no-such-db", graphdb.Options{})
	if err == nil {
		t.Fatal("Open of unknown backend succeeded")
	}
	if want := fmt.Sprintf("%v", graphdb.Backends()); !containsAll(err.Error(), want) {
		t.Fatalf("error %q does not list backends %q", err, want)
	}
}

func containsAll(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
