package grdb

import (
	"fmt"

	"mssg/internal/graph"
)

// CheckReport summarizes a storage integrity scan.
type CheckReport struct {
	// Vertices is the number of vertices with stored adjacency.
	Vertices int64
	// Edges is the total number of stored neighbour entries.
	Edges int64
	// Chains is the total number of chain sub-blocks in use (excluding
	// empty level-0 sub-blocks).
	Chains int64
	// MaxChain is the longest chain encountered.
	MaxChain int
	// LevelSubBlocks[ℓ] counts live sub-blocks per level.
	LevelSubBlocks []int64
}

// Check walks every vertex chain and validates the storage invariants
// the format relies on (a database fsck):
//
//   - every pointer targets a level inside the ladder and a sub-block
//     below that level's allocation high-water mark;
//   - no chain revisits a sub-block (no cycles);
//   - slots fill contiguously: no neighbour word follows an empty slot;
//   - every stored neighbour ID is a legal 61-bit vertex.
//
// It returns a report, or the first violation found.
func (d *DB) Check() (CheckReport, error) {
	if d.closed {
		return CheckReport{}, fmt.Errorf("grdb: check on closed database")
	}
	report := CheckReport{LevelSubBlocks: make([]int64, len(d.levels))}
	for v := graph.VertexID(0); v <= d.maxVertex; v++ {
		visited := make(map[tailPos]bool)
		ℓ, s := 0, int64(v)
		hops := 0
		for {
			pos := tailPos{level: ℓ, sub: s}
			if visited[pos] {
				return report, fmt.Errorf("grdb: vertex %d: chain cycle at level %d sub-block %d", v, ℓ, s)
			}
			visited[pos] = true

			h, sub, err := d.subBlock(ℓ, s)
			if err != nil {
				return report, err
			}
			capSlots := d.levels[ℓ].d
			fill := fillPoint(sub)

			// Contiguity: every word past the fill point must be empty.
			for i := fill; i < capSlots; i++ {
				if getWord(sub, i) != wordEmpty {
					h.Release()
					return report, fmt.Errorf("grdb: vertex %d: level %d sub-block %d has data after fill point %d",
						v, ℓ, s, fill)
				}
			}
			if fill == 0 {
				h.Release()
				break
			}
			if hops == 0 {
				report.Vertices++
			}
			hops++
			report.Chains++
			report.LevelSubBlocks[ℓ]++

			n := fill
			var next uint64
			if fill == capSlots {
				if last := getWord(sub, capSlots-1); isPointer(last) {
					n = capSlots - 1
					next = last
				}
			}
			for i := 0; i < n; i++ {
				w := getWord(sub, i)
				if isPointer(w) {
					h.Release()
					return report, fmt.Errorf("grdb: vertex %d: level %d sub-block %d slot %d holds a pointer before the last slot",
						v, ℓ, s, i)
				}
				u := decodeNeighbor(w)
				if !u.Valid() {
					h.Release()
					return report, fmt.Errorf("grdb: vertex %d: invalid stored neighbour %d", v, u)
				}
				report.Edges++
			}
			if err := h.Release(); err != nil {
				return report, err
			}
			if next == 0 {
				break
			}
			nl, ns := decodePointer(next)
			if nl < 0 || nl >= len(d.levels) {
				return report, fmt.Errorf("grdb: vertex %d: pointer to level %d outside ladder", v, nl)
			}
			if nl == 0 {
				return report, fmt.Errorf("grdb: vertex %d: pointer back into level 0", v)
			}
			if ns < 0 || ns >= d.nextFree[nl] {
				return report, fmt.Errorf("grdb: vertex %d: pointer to unallocated level-%d sub-block %d (high-water %d)",
					v, nl, ns, d.nextFree[nl])
			}
			ℓ, s = nl, ns
		}
		if hops > report.MaxChain {
			report.MaxChain = hops
		}
	}
	return report, nil
}
