package grdb

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/storage/blockio"
)

func durableOpts(dir string) graphdb.Options {
	return graphdb.Options{
		Dir:          dir,
		MaxFileBytes: 4096,
		Levels:       tinyLevels(),
		Durability:   graphdb.DurabilityFull,
	}
}

func openDurable(t *testing.T, dir string) *DB {
	t.Helper()
	d, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	want := storeN(t, d, 7, 20)
	if err := d.SetCheckpoint([]byte("ckpt-blob")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d = openDurable(t, dir)
	defer d.Close()
	if got := neighbors(t, d, 7); len(got) != len(want) {
		t.Fatalf("reopened adjacency has %d neighbours, want %d", len(got), len(want))
	}
	blob, err := d.GetCheckpoint()
	if err != nil || string(blob) != "ckpt-blob" {
		t.Fatalf("GetCheckpoint = %q, %v", blob, err)
	}
	if _, err := d.Check(); err != nil {
		t.Fatalf("Check after durable reopen: %v", err)
	}
}

func TestUncommittedBatchVanishes(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	storeN(t, d, 1, 5)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Stored but never flushed: under no-steal these blocks live only in
	// the cache, so abandoning the handle (a "crash" that loses all
	// unsynced state, and then some) must roll the database back to the
	// committed checkpoint.
	storeN(t, d, 2, 5)
	// No Close — abandon.

	d2 := openDurable(t, dir)
	defer d2.Close()
	if got := neighbors(t, d2, 1); len(got) != 5 {
		t.Fatalf("committed vertex lost: %d neighbours, want 5", len(got))
	}
	if got := neighbors(t, d2, 2); len(got) != 0 {
		t.Fatalf("uncommitted vertex visible after reopen: %d neighbours", len(got))
	}
	if st := d2.Stats(); st.EdgesStored != 5 {
		t.Fatalf("EdgesStored = %d, want 5", st.EdgesStored)
	}
}

func TestWALReplayCompletesCheckpoint(t *testing.T) {
	// Build a committed WAL whose post-commit steps never ran: store
	// edges, checkpoint, then restore the data files and manifest to
	// their pre-checkpoint state while keeping the WAL. Recovery must
	// reconstruct the checkpoint from the log alone.
	dir := t.TempDir()
	d := openDurable(t, dir)
	storeN(t, d, 3, 12)

	// Checkpoint steps 1-3 only: log images + state, sync — commit —
	// but skip write-back, store sync, manifest, and WAL reset.
	err := d.cache.Dirty(func(space uint32, block int64, data []byte) error {
		_, err := d.wal.Append(encodeImageRecord(space, block, data))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.wal.Append(encodeStateRecord(d.manifestState())); err != nil {
		t.Fatal(err)
	}
	if err := d.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon without completing: data files still hold the empty
	// database, the manifest is absent, only the WAL has the edges.

	d2 := openDurable(t, dir)
	defer d2.Close()
	if got := neighbors(t, d2, 3); len(got) != 12 {
		t.Fatalf("WAL replay recovered %d neighbours, want 12", len(got))
	}
	if st := d2.Stats(); st.EdgesStored != 12 {
		t.Fatalf("EdgesStored = %d, want 12", st.EdgesStored)
	}
	if _, err := d2.Check(); err != nil {
		t.Fatalf("Check after WAL recovery: %v", err)
	}
	// The completed recovery must have persisted the manifest and
	// retired the log: a third open sees the same state with no replay.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3 := openDurable(t, dir)
	defer d3.Close()
	if !d3.wal.Empty() {
		t.Fatal("WAL not retired after recovery")
	}
	if got := neighbors(t, d3, 3); len(got) != 12 {
		t.Fatalf("third open: %d neighbours, want 12", len(got))
	}
}

func TestWALWithoutStateRecordIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	storeN(t, d, 4, 8)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Log images of a new batch but no state record (crash before the
	// commit fsync covered it).
	storeN(t, d, 5, 8)
	err := d.cache.Dirty(func(space uint32, block int64, data []byte) error {
		_, err := d.wal.Append(encodeImageRecord(space, block, data))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon.

	d2 := openDurable(t, dir)
	defer d2.Close()
	if got := neighbors(t, d2, 4); len(got) != 8 {
		t.Fatalf("committed vertex: %d neighbours, want 8", len(got))
	}
	if got := neighbors(t, d2, 5); len(got) != 0 {
		t.Fatalf("uncommitted images applied: vertex 5 has %d neighbours", len(got))
	}
}

func TestManifestV1Compat(t *testing.T) {
	dir := t.TempDir()
	// Write a database the old way first to get real block files.
	d, err := Open(graphdb.Options{Dir: dir, MaxFileBytes: 4096, Levels: tinyLevels()})
	if err != nil {
		t.Fatal(err)
	}
	storeN(t, d, 2, 6)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Replace the manifest with the legacy v1 encoding of its state.
	st, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeManifest(st, len(tinyLevels()))
	if err != nil {
		t.Fatal(err)
	}
	v1 := make([]byte, 8*(len(tinyLevels())+2))
	le.PutUint64(v1[0:8], uint64(dec.edges))
	le.PutUint64(v1[8:16], uint64(dec.maxVertex))
	for i, nf := range dec.nextFree {
		le.PutUint64(v1[8*(i+2):], uint64(nf))
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), v1, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(graphdb.Options{Dir: dir, MaxFileBytes: 4096, Levels: tinyLevels()})
	if err != nil {
		t.Fatalf("open with v1 manifest: %v", err)
	}
	defer d2.Close()
	if got := neighbors(t, d2, 2); len(got) != 6 {
		t.Fatalf("v1 manifest: %d neighbours, want 6", len(got))
	}
	if st := d2.Stats(); st.EdgesStored != 6 {
		t.Fatalf("EdgesStored = %d, want 6", st.EdgesStored)
	}
}

func TestCheckpointBlobNonDurable(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(graphdb.Options{Dir: dir, MaxFileBytes: 4096, Levels: tinyLevels()})
	if err != nil {
		t.Fatal(err)
	}
	if blob, _ := d.GetCheckpoint(); blob != nil {
		t.Fatalf("fresh database has checkpoint %q", blob)
	}
	if err := d.SetCheckpoint([]byte("staged")); err != nil {
		t.Fatal(err)
	}
	// Staged but not flushed: GetCheckpoint still returns the committed
	// (absent) blob.
	if blob, _ := d.GetCheckpoint(); blob != nil {
		t.Fatalf("staged blob visible before Flush: %q", blob)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if blob, _ := d.GetCheckpoint(); string(blob) != "staged" {
		t.Fatalf("after Flush: %q", blob)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(graphdb.Options{Dir: dir, MaxFileBytes: 4096, Levels: tinyLevels()})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if blob, _ := d2.GetCheckpoint(); string(blob) != "staged" {
		t.Fatalf("after reopen: %q", blob)
	}
}

func TestScrubQuarantinesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	storeN(t, d, 0, 2) // fits level 0
	storeN(t, d, 1, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte of the level-0 data file.
	path := filepath.Join(dir, "level0.0000")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, dir)
	defer d2.Close()
	out := graph.NewAdjList(4)
	if err := graphdb.Adjacency(d2, 0, out); !errors.Is(err, blockio.ErrCorrupt) {
		t.Fatalf("read of corrupt block: %v, want ErrCorrupt", err)
	}
	rep, err := d2.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.CorruptBlocks != 1 || len(rep.Quarantined) != 1 {
		t.Fatalf("ScrubReport = %+v, want 1 corrupt + 1 quarantined", rep)
	}
	q, err := os.ReadFile(rep.Quarantined[0])
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if !bytes.Contains(q, []byte{b[3]}) && len(q) == 0 {
		t.Fatal("quarantine file empty")
	}
	// The repaired block reads as empty; structure is consistent.
	if got := neighbors(t, d2, 0); len(got) != 0 {
		t.Fatalf("repaired block still has %d neighbours", len(got))
	}
	if _, err := d2.Check(); err != nil {
		t.Fatalf("Check after scrub: %v", err)
	}
}

func TestVerifyOnOpen(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	storeN(t, d, 6, 10)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	opts := durableOpts(dir)
	opts.VerifyOnOpen = true
	d2, err := Open(opts)
	if err != nil {
		t.Fatalf("verify-on-open of a healthy database: %v", err)
	}
	d2.Close()
}

func FuzzManifestDecode(f *testing.F) {
	f.Add(encodeManifest(manifestState{
		gen: 3, edges: 42, maxVertex: 9,
		nextFree: []int64{0, 1, 2}, ckpt: []byte("blob"),
	}))
	v1 := make([]byte, 8*5)
	le.PutUint64(v1[0:8], 7)
	f.Add(v1)
	f.Add([]byte(manifestMagic))
	f.Fuzz(func(t *testing.T, b []byte) {
		// Must never panic, for any ladder length.
		for _, levels := range []int{1, 3, 6} {
			st, err := decodeManifest(b, levels)
			if err == nil && len(st.nextFree) != levels {
				t.Fatalf("decoded %d levels, want %d", len(st.nextFree), levels)
			}
		}
	})
}

func FuzzStateRecordDecode(f *testing.F) {
	f.Add(encodeStateRecord(manifestState{
		edges: 10, maxVertex: 5, nextFree: []int64{0, 4, 8}, ckpt: []byte("x"),
	}))
	f.Add([]byte{recState})
	f.Fuzz(func(t *testing.T, b []byte) {
		for _, levels := range []int{1, 3, 6} {
			decodeStateRecord(b, levels)
		}
	})
}
