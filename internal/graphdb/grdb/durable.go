package grdb

import (
	"fmt"
	"path/filepath"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/storage/wal"
)

// Durable checkpoint protocol (DESIGN.md §11).
//
// grDB mutates blocks only through the no-steal cache, so between two
// Flush calls the data files never change: they always hold exactly the
// state of the last completed checkpoint, and recovery needs no undo.
// A checkpoint is then a classic redo-only commit:
//
//	1. append the image of every dirty block to the WAL
//	2. append one state record (allocation state + checkpoint blob)
//	3. wal.Sync            ← THE commit point (one fsync)
//	4. write dirty blocks back through the cache
//	5. fsync every level's data and checksum files
//	6. atomically replace the manifest
//	7. wal.Reset (the checkpoint is fully in place; the log is redundant)
//
// A crash before step 3 leaves a WAL without a complete state record:
// recovery discards it and the database reopens at the previous
// checkpoint — the interrupted Flush never happened. A crash at or
// after step 3 leaves a WAL whose last state record seals a complete
// image set: recovery replays the images, applies the state, and
// finishes steps 4-7 itself. Either way the observable state is exactly
// "all Flushes that returned, nothing else".

const walName = "grdb.wal"

// WAL record kinds (first payload byte).
const (
	recImage = 'I' // block image: level u32, block u64, data [blockBytes]
	recState = 'S' // checkpoint state: see encodeStateRecord
)

const imageHeader = 1 + 4 + 8

func encodeImageRecord(level uint32, block int64, data []byte) []byte {
	b := make([]byte, imageHeader+len(data))
	b[0] = recImage
	le.PutUint32(b[1:5], level)
	le.PutUint64(b[5:13], uint64(block))
	copy(b[imageHeader:], data)
	return b
}

// encodeStateRecord serializes the same logical content as the manifest
// (minus framing): edges, maxVertex, nextFree, checkpoint blob.
func encodeStateRecord(st manifestState) []byte {
	b := make([]byte, 1+8+8+4+4+8*len(st.nextFree)+len(st.ckpt))
	b[0] = recState
	le.PutUint64(b[1:9], uint64(st.edges))
	le.PutUint64(b[9:17], uint64(st.maxVertex))
	le.PutUint32(b[17:21], uint32(len(st.nextFree)))
	le.PutUint32(b[21:25], uint32(len(st.ckpt)))
	off := 25
	for _, nf := range st.nextFree {
		le.PutUint64(b[off:], uint64(nf))
		off += 8
	}
	copy(b[off:], st.ckpt)
	return b
}

// decodeStateRecord parses a recState payload. Must not panic on any
// input (the WAL fuzz target drives it through replay).
func decodeStateRecord(b []byte, levels int) (manifestState, error) {
	var st manifestState
	if len(b) < 25 || b[0] != recState {
		return st, fmt.Errorf("grdb: malformed WAL state record (%d bytes)", len(b))
	}
	nLevels := int(le.Uint32(b[17:21]))
	ckptLen := int(le.Uint32(b[21:25]))
	if nLevels != levels {
		return st, fmt.Errorf("grdb: WAL state record has %d levels, ladder has %d", nLevels, levels)
	}
	if len(b) != 25+8*nLevels+ckptLen {
		return st, fmt.Errorf("grdb: WAL state record is %d bytes, want %d", len(b), 25+8*nLevels+ckptLen)
	}
	st.edges = int64(le.Uint64(b[1:9]))
	st.maxVertex = graph.VertexID(le.Uint64(b[9:17]))
	st.nextFree = make([]int64, nLevels)
	off := 25
	for i := range st.nextFree {
		st.nextFree[i] = int64(le.Uint64(b[off:]))
		off += 8
	}
	if ckptLen > 0 {
		st.ckpt = append([]byte(nil), b[off:off+ckptLen]...)
	}
	return st, nil
}

// checkpoint is the durable Flush; see the protocol comment above.
func (d *DB) checkpoint() error {
	err := d.cache.Dirty(func(space uint32, block int64, data []byte) error {
		_, err := d.wal.Append(encodeImageRecord(space, block, data))
		return err
	})
	if err != nil {
		return err
	}
	if _, err := d.wal.Append(encodeStateRecord(d.manifestState())); err != nil {
		return err
	}
	if err := d.wal.Sync(); err != nil { // commit point
		return err
	}
	d.ckptCommitted = d.ckptStaged
	if err := d.cache.Flush(); err != nil {
		return err
	}
	for i, l := range d.levels {
		if err := l.store.Sync(); err != nil {
			return fmt.Errorf("grdb: level %d: %w", i, err)
		}
	}
	if err := d.saveManifest(); err != nil {
		return err
	}
	return d.wal.Reset()
}

// recoverDurable opens the WAL and, when it holds a committed
// checkpoint the manifest does not yet reflect, replays it: block
// images up to (and the state of) the LAST complete state record are
// applied; any tail beyond it — a checkpoint whose commit fsync never
// finished — is discarded wholesale. It then completes the interrupted
// checkpoint's remaining steps (sync, manifest, log reset).
func (d *DB) recoverDurable() error {
	w, err := wal.Open(d.fsys, filepath.Join(d.dir, walName))
	if err != nil {
		return err
	}
	d.wal = w
	if w.Empty() {
		return nil
	}
	d.mRecoveryRuns.Inc()
	var lastState uint64
	err = w.Replay(func(r wal.Record) error {
		d.mRecoveryRecords.Inc()
		if len(r.Payload) > 0 && r.Payload[0] == recState {
			lastState = r.Seq
		}
		return nil
	})
	if err != nil {
		return err
	}
	if lastState == 0 {
		// Only images from an uncommitted checkpoint: the data files
		// still hold the previous checkpoint exactly; drop the log.
		return w.Reset()
	}
	err = w.Replay(func(r wal.Record) error {
		if r.Seq > lastState || len(r.Payload) == 0 {
			return nil
		}
		switch r.Payload[0] {
		case recImage:
			if len(r.Payload) < imageHeader {
				return fmt.Errorf("grdb: malformed WAL image record (%d bytes)", len(r.Payload))
			}
			level := int(le.Uint32(r.Payload[1:5]))
			block := int64(le.Uint64(r.Payload[5:13]))
			if level >= len(d.levels) || block < 0 {
				return fmt.Errorf("grdb: WAL image for level %d block %d beyond ladder", level, block)
			}
			data := r.Payload[imageHeader:]
			if len(data) != d.levels[level].store.BlockSize() {
				return fmt.Errorf("grdb: WAL image for level %d is %d bytes, want %d",
					level, len(data), d.levels[level].store.BlockSize())
			}
			d.mRecoveryBlocks.Inc()
			return d.levels[level].store.WriteBlock(block, data)
		case recState:
			if r.Seq != lastState {
				return nil // superseded by a later checkpoint in the same log
			}
			st, err := decodeStateRecord(r.Payload, len(d.levels))
			if err != nil {
				return err
			}
			gen := d.manifestGen // state records carry no generation
			d.applyManifestState(st)
			d.manifestGen = gen
			d.genMirror.Store(gen)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Finish the interrupted checkpoint: steps 5-7.
	for i, l := range d.levels {
		if err := l.store.Sync(); err != nil {
			return fmt.Errorf("grdb: level %d: %w", i, err)
		}
	}
	if err := d.saveManifest(); err != nil {
		return err
	}
	return w.Reset()
}

// SetCheckpoint implements graphdb.Checkpointer: blob is committed
// atomically with the next Flush.
func (d *DB) SetCheckpoint(blob []byte) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	d.ckptStaged = append([]byte(nil), blob...)
	return nil
}

// GetCheckpoint implements graphdb.Checkpointer.
func (d *DB) GetCheckpoint() ([]byte, error) {
	if d.closed {
		return nil, graphdb.ErrClosed
	}
	return d.ckptCommitted, nil
}
