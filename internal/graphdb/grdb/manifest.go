package grdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"mssg/internal/graph"
	"mssg/internal/storage/fsutil"
)

// The manifest is grDB's root pointer: the state a reopen starts from.
// Version 2 frames the payload with a magic, a generation stamp, and a
// CRC32-C, and carries the application checkpoint blob (see
// graphdb.Checkpointer) next to the allocation state so both commit in
// the same atomic rename. The legacy v1 format — raw 8*(levels+2) bytes
// of {edges, maxVertex, nextFree...} — is still accepted on read.
//
// Layout (little-endian):
//
//	magic     [8]byte  "GRDBMAN2"
//	gen       uint64   // incremented on every save
//	edges     uint64
//	maxVertex uint64   // two's complement; ^0 when empty
//	levels    uint32
//	ckptLen   uint32
//	nextFree  [levels]uint64
//	ckpt      [ckptLen]byte
//	crc       uint32   // CRC32-C over everything before it
const manifestMagic = "GRDBMAN2"

const manifestFixed = 8 + 8 + 8 + 8 + 4 + 4 // through ckptLen

var (
	le         = binary.LittleEndian
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// ErrCorruptManifest is wrapped by manifest decode failures.
var ErrCorruptManifest = errors.New("grdb: corrupt manifest")

// manifestState is the decoded manifest content.
type manifestState struct {
	gen       uint64
	edges     int64
	maxVertex graph.VertexID
	nextFree  []int64
	ckpt      []byte
}

func encodeManifest(st manifestState) []byte {
	b := make([]byte, manifestFixed+8*len(st.nextFree)+len(st.ckpt)+4)
	copy(b[0:8], manifestMagic)
	le.PutUint64(b[8:16], st.gen)
	le.PutUint64(b[16:24], uint64(st.edges))
	le.PutUint64(b[24:32], uint64(st.maxVertex))
	le.PutUint32(b[32:36], uint32(len(st.nextFree)))
	le.PutUint32(b[36:40], uint32(len(st.ckpt)))
	off := manifestFixed
	for _, nf := range st.nextFree {
		le.PutUint64(b[off:], uint64(nf))
		off += 8
	}
	copy(b[off:], st.ckpt)
	off += len(st.ckpt)
	le.PutUint32(b[off:], crc32.Checksum(b[:off], castagnoli))
	return b
}

// decodeManifest parses either manifest version. levels is the opener's
// ladder length; a mismatch is an error (the ladder is part of the
// on-disk format). The function must not panic on any input — it is
// fuzzed directly.
func decodeManifest(b []byte, levels int) (manifestState, error) {
	var st manifestState
	if len(b) >= 8 && string(b[0:8]) == manifestMagic {
		if len(b) < manifestFixed+4 {
			return st, fmt.Errorf("%w: %d bytes is shorter than the v2 header", ErrCorruptManifest, len(b))
		}
		body, crcb := b[:len(b)-4], b[len(b)-4:]
		if got := crc32.Checksum(body, castagnoli); got != le.Uint32(crcb) {
			return st, fmt.Errorf("%w: checksum 0x%08x, want 0x%08x", ErrCorruptManifest, got, le.Uint32(crcb))
		}
		nLevels := int(le.Uint32(b[32:36]))
		ckptLen := int(le.Uint32(b[36:40]))
		if nLevels != levels {
			return st, fmt.Errorf("grdb: manifest has %d levels, ladder has %d", nLevels, levels)
		}
		if len(body) != manifestFixed+8*nLevels+ckptLen {
			return st, fmt.Errorf("%w: %d bytes, want %d", ErrCorruptManifest, len(b), manifestFixed+8*nLevels+ckptLen+4)
		}
		st.gen = le.Uint64(b[8:16])
		st.edges = int64(le.Uint64(b[16:24]))
		st.maxVertex = graph.VertexID(le.Uint64(b[24:32]))
		st.nextFree = make([]int64, nLevels)
		off := manifestFixed
		for i := range st.nextFree {
			st.nextFree[i] = int64(le.Uint64(b[off:]))
			off += 8
		}
		if ckptLen > 0 {
			st.ckpt = append([]byte(nil), b[off:off+ckptLen]...)
		}
		return st, nil
	}
	// Legacy v1: raw {edges, maxVertex, nextFree[levels]}.
	if len(b) != 8*(levels+2) {
		return st, fmt.Errorf("%w: %d bytes matches neither v2 nor the %d-byte v1 format (level ladder mismatch?)",
			ErrCorruptManifest, len(b), 8*(levels+2))
	}
	st.edges = int64(le.Uint64(b[0:8]))
	st.maxVertex = graph.VertexID(le.Uint64(b[8:16]))
	st.nextFree = make([]int64, levels)
	for i := range st.nextFree {
		st.nextFree[i] = int64(le.Uint64(b[8*(i+2):]))
	}
	return st, nil
}

func (d *DB) manifestState() manifestState {
	return manifestState{
		gen:       d.manifestGen,
		edges:     d.stats.EdgesStored(),
		maxVertex: d.maxVertex,
		nextFree:  d.nextFree,
		ckpt:      d.ckptStaged,
	}
}

func (d *DB) applyManifestState(st manifestState) {
	d.manifestGen = st.gen
	d.genMirror.Store(st.gen)
	d.stats.SetEdgesStored(st.edges)
	d.maxVertex = st.maxVertex
	copy(d.nextFree, st.nextFree)
	d.ckptStaged = st.ckpt
	d.ckptCommitted = st.ckpt
}

func (d *DB) loadManifest() error {
	b, err := fsutil.ReadFile(d.fsys, filepath.Join(d.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("grdb: manifest: %w", err)
	}
	st, err := decodeManifest(b, len(d.levels))
	if err != nil {
		return err
	}
	d.applyManifestState(st)
	return nil
}

// saveManifest atomically replaces the manifest (temp file + fsync +
// rename + directory fsync): a crash anywhere leaves either the old or
// the new manifest, never a torn mix.
func (d *DB) saveManifest() error {
	d.manifestGen++
	d.genMirror.Store(d.manifestGen)
	b := encodeManifest(d.manifestState())
	return fsutil.WriteFileAtomic(d.fsys, filepath.Join(d.dir, manifestName), b, 0o644)
}
