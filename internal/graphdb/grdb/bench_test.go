package grdb

import (
	"testing"

	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func benchDB(b *testing.B) *DB {
	b.Helper()
	d, err := Open(graphdb.Options{Dir: b.TempDir(), CacheBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	return d
}

// BenchmarkStoreEdgesBatch measures windowed ingestion into the default
// 6-level ladder.
func BenchmarkStoreEdgesBatch(b *testing.B) {
	edges, err := gen.Generate(gen.Config{Name: "b", Vertices: 20000, M: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDB(b)
		b.StartTimer()
		for lo := 0; lo < len(edges); lo += 4096 {
			hi := lo + 4096
			if hi > len(edges) {
				hi = len(edges)
			}
			if err := d.StoreEdges(edges[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(len(edges)) * 16)
}

// BenchmarkAdjacencyWalk measures chain reads across the degree
// spectrum (low-degree level-0 hits and hub chains).
func BenchmarkAdjacencyWalk(b *testing.B) {
	edges, err := gen.Generate(gen.Config{Name: "b", Vertices: 20000, M: 5, HubFraction: 0.1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	d := benchDB(b)
	if err := d.StoreEdges(edges); err != nil {
		b.Fatal(err)
	}
	out := graph.NewAdjList(4096)
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		out.Reset()
		if err := graphdb.Adjacency(d, graph.VertexID(i%20000), out); err != nil {
			b.Fatal(err)
		}
		total += int64(out.Len())
	}
	b.ReportMetric(float64(total)/float64(b.N), "neighbors/op")
}

// BenchmarkFillPoint measures the binary-search fill probe on the
// largest sub-block size.
func BenchmarkFillPoint(b *testing.B) {
	sub := make([]byte, 16384*wordBytes)
	for i := 0; i < 10000; i++ {
		setWord(sub, i, encodeNeighbor(graph.VertexID(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fillPoint(sub) != 10000 {
			b.Fatal("wrong fill point")
		}
	}
}
