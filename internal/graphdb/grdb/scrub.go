package grdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mssg/internal/graphdb"
	"mssg/internal/storage/blockio"
)

// ScrubReport summarizes a Scrub pass.
type ScrubReport struct {
	// BlocksScanned counts allocated blocks whose checksums were read.
	BlocksScanned int64
	// CorruptBlocks counts blocks that failed verification.
	CorruptBlocks int64
	// Quarantined lists the files the corrupt blocks' raw bytes were
	// copied to before repair.
	Quarantined []string
}

// quarantineDirName is where Scrub preserves corrupt blocks, under the
// database directory.
const quarantineDirName = "quarantine"

// Scrub reads every allocated block and verifies its checksum. A block
// that fails is quarantined — its raw bytes are copied to
// quarantine/level<ℓ>.block<idx> for offline inspection — and then
// repaired by zeroing: a zero block is a valid empty sub-block run, so
// chains pointing into it simply end there (the edges it held are lost,
// which the report records; Check() afterwards confirms structural
// consistency). Requires checksums, i.e. a database opened with
// DurabilityFull.
//
// Scrub bypasses the block cache; run it immediately after Open, before
// queries or stores populate the cache.
func (d *DB) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	if d.closed {
		return rep, graphdb.ErrClosed
	}
	if !d.durable {
		return rep, fmt.Errorf("grdb: scrub needs checksums (open with DurabilityFull)")
	}
	for ℓ, l := range d.levels {
		subCount := d.nextFree[ℓ]
		if ℓ == 0 {
			subCount = int64(d.maxVertex) + 1
		}
		if subCount <= 0 {
			continue
		}
		blocks := (subCount + l.k - 1) / l.k
		buf := make([]byte, l.store.BlockSize())
		for b := int64(0); b < blocks; b++ {
			rep.BlocksScanned++
			err := l.store.ReadBlock(b, buf)
			if err == nil {
				continue
			}
			if !errors.Is(err, blockio.ErrCorrupt) {
				return rep, err
			}
			rep.CorruptBlocks++
			d.mScrubCorrupt.Inc()
			qPath, qErr := d.quarantine(ℓ, b, buf)
			if qErr != nil {
				return rep, qErr
			}
			rep.Quarantined = append(rep.Quarantined, qPath)
			for i := range buf {
				buf[i] = 0
			}
			if err := l.store.WriteBlock(b, buf); err != nil {
				return rep, err
			}
		}
		if err := l.store.Sync(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// quarantine copies block b of level ℓ (raw, unverified) into the
// quarantine directory and returns the file path.
func (d *DB) quarantine(ℓ int, b int64, buf []byte) (string, error) {
	if err := d.levels[ℓ].store.ReadBlockNoVerify(b, buf); err != nil {
		return "", err
	}
	qDir := filepath.Join(d.dir, quarantineDirName)
	if err := d.fsys.MkdirAll(qDir, 0o755); err != nil {
		return "", fmt.Errorf("grdb: quarantine: %w", err)
	}
	path := filepath.Join(qDir, fmt.Sprintf("level%d.block%d", ℓ, b))
	f, err := d.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("grdb: quarantine: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return "", fmt.Errorf("grdb: quarantine: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("grdb: quarantine: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("grdb: quarantine: %w", err)
	}
	return path, nil
}

// ScrubDir opens every grDB instance found directly under root (any
// subdirectory containing a grdb.manifest — the node layout the core
// engine produces), scrubs and checks it, and returns the per-instance
// reports. opts provides cache/level configuration; Dir and Durability
// are overridden per instance. The first structural-check failure after
// repair is returned as an error alongside the reports gathered so far.
func ScrubDir(root string, opts graphdb.Options) (map[string]ScrubReport, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	reports := make(map[string]ScrubReport)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
			continue
		}
		o := opts
		o.Dir = dir
		o.Durability = graphdb.DurabilityFull
		db, err := Open(o)
		if err != nil {
			return reports, fmt.Errorf("%s: %w", e.Name(), err)
		}
		rep, err := db.Scrub()
		reports[e.Name()] = rep
		if err != nil {
			db.Close()
			return reports, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if _, err := db.Check(); err != nil {
			db.Close()
			return reports, fmt.Errorf("%s: post-scrub check: %w", e.Name(), err)
		}
		if err := db.Close(); err != nil {
			return reports, fmt.Errorf("%s: %w", e.Name(), err)
		}
	}
	return reports, nil
}
