package grdb

import (
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// Defragmentation (§3.4.1): ingestion that adds neighbours in small groups
// leaves adjacency lists fragmented across many small sub-blocks linked
// level by level. The paper proposes compacting these chains "during idle
// time in the background". DefragmentVertex rewrites one vertex's chain as
// level 0 plus the shortest possible tail: the remainder goes directly
// into sub-blocks of the smallest level large enough to hold it.
//
// Superseded sub-blocks are not reclaimed (grDB has no free list — the
// paper's prototype likewise only ever allocates); the space cost is the
// price of the faster reads, and is reported by the ablation bench.

// DefragmentVertex compacts v's chain. It returns true if the chain was
// rewritten, false if it was already optimal.
func (d *DB) DefragmentVertex(v graph.VertexID) (bool, error) {
	if d.closed {
		return false, graphdb.ErrClosed
	}
	var adj []graph.VertexID
	if err := d.walkAdjacency(v, func(u graph.VertexID) { adj = append(adj, u) }); err != nil {
		return false, err
	}
	d0 := d.levels[0].d
	if len(adj) <= d0 {
		// Never overflowed; already a single level-0 sub-block.
		return false, nil
	}
	cur, err := d.ChainLength(v)
	if err != nil {
		return false, err
	}
	want := 1 + d.tailBlocksNeeded(len(adj)-(d0-1))
	if cur <= want {
		return false, nil
	}
	return true, d.rewriteChain(v, adj)
}

// tailBlocksNeeded computes how many sub-blocks the compacted tail uses
// for `remaining` neighbours.
func (d *DB) tailBlocksNeeded(remaining int) int {
	blocks := 0
	ℓ := d.pickLevel(remaining)
	for remaining > 0 {
		capSlots := d.levels[ℓ].d
		blocks++
		if remaining <= capSlots {
			return blocks
		}
		remaining -= capSlots - 1 // last slot becomes a pointer
		ℓ = d.nextLevel(ℓ)
	}
	return blocks
}

// pickLevel returns the smallest level (>= 1) whose sub-block holds
// `remaining` neighbours, or the top level if none does.
func (d *DB) pickLevel(remaining int) int {
	for ℓ := 1; ℓ < len(d.levels); ℓ++ {
		if d.levels[ℓ].d >= remaining {
			return ℓ
		}
	}
	return len(d.levels) - 1
}

// rewriteChain writes v's full adjacency as level 0 (d0-1 neighbours +
// pointer) followed by a compact tail.
func (d *DB) rewriteChain(v graph.VertexID, adj []graph.VertexID) error {
	// The old chain (and any tail hint into it) is abandoned.
	delete(d.tailHint, v)
	d0 := d.levels[0].d
	h, sub, err := d.subBlock(0, int64(v))
	if err != nil {
		return err
	}
	for i := 0; i < d0-1; i++ {
		setWord(sub, i, encodeNeighbor(adj[i]))
	}
	rest := adj[d0-1:]
	tailLevel := d.pickLevel(len(rest))
	tailSub := d.allocSub(tailLevel)
	setWord(sub, d0-1, encodePointer(tailLevel, tailSub))
	h.MarkDirty()
	if err := h.Release(); err != nil {
		return err
	}

	ℓ, s := tailLevel, tailSub
	for len(rest) > 0 {
		h, sub, err := d.subBlock(ℓ, s)
		if err != nil {
			return err
		}
		capSlots := d.levels[ℓ].d
		if len(rest) <= capSlots {
			for i, u := range rest {
				setWord(sub, i, encodeNeighbor(u))
			}
			// Clear any stale words (a reused zero block has none, but a
			// rewrite must not leave old data behind future fill points).
			for i := len(rest); i < capSlots; i++ {
				setWord(sub, i, wordEmpty)
			}
			h.MarkDirty()
			return h.Release()
		}
		for i := 0; i < capSlots-1; i++ {
			setWord(sub, i, encodeNeighbor(rest[i]))
		}
		rest = rest[capSlots-1:]
		nl := d.nextLevel(ℓ)
		nextSub := d.allocSub(nl)
		setWord(sub, capSlots-1, encodePointer(nl, nextSub))
		h.MarkDirty()
		if err := h.Release(); err != nil {
			return err
		}
		ℓ, s = nl, nextSub
	}
	return nil
}

// Defragment compacts every vertex in [0, maxVertex]. It returns the
// number of rewritten chains. Intended to run between ingestion and query
// phases, standing in for the paper's background idle-time compaction.
func (d *DB) Defragment() (int64, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	var rewritten int64
	for v := graph.VertexID(0); v <= d.maxVertex; v++ {
		ok, err := d.DefragmentVertex(v)
		if err != nil {
			return rewritten, err
		}
		if ok {
			rewritten++
		}
	}
	return rewritten, nil
}
