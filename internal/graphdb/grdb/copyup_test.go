package grdb

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func openTinyCopyUp(t *testing.T) *DB {
	t.Helper()
	d, err := Open(graphdb.Options{
		Dir:              t.TempDir(),
		CacheBytes:       1 << 20,
		MaxFileBytes:     4096,
		Levels:           tinyLevels(),
		CopyUpOnOverflow: true,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestCopyUpCorrectness runs the same degree boundaries as the link-mode
// test: both overflow strategies must store identical adjacency.
func TestCopyUpCorrectness(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 12, 13, 20, 40, 100} {
		d := openTinyCopyUp(t)
		want := storeN(t, d, 7, n)
		got := neighbors(t, d, 7)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("degree %d: got %d neighbours, want %d: %v", n, len(got), n, got)
		}
	}
}

// TestCopyUpIncrementalKeepsChainsShort is the strategy's point: even
// one-edge-at-a-time ingestion leaves at most level-0 + one tail until
// the ladder tops out.
func TestCopyUpIncrementalKeepsChainsShort(t *testing.T) {
	d := openTinyCopyUp(t)
	var want []graph.VertexID
	// d = 2,4,8: degrees up to 1 + 3 + 8 = fully inside the ladder reach
	// only need two chain blocks.
	for i := 0; i < 9; i++ {
		u := graph.VertexID(200 + i)
		want = append(want, u)
		if err := d.StoreEdges([]graph.Edge{{Src: 3, Dst: u}}); err != nil {
			t.Fatalf("StoreEdges #%d: %v", i, err)
		}
		got := neighbors(t, d, 3)
		sortedWant := append([]graph.VertexID(nil), want...)
		sort.Slice(sortedWant, func(a, b int) bool { return sortedWant[a] < sortedWant[b] })
		if !reflect.DeepEqual(got, sortedWant) {
			t.Fatalf("after %d stores: got %v, want %v", i+1, got, sortedWant)
		}
		hops, err := d.ChainLength(3)
		if err != nil {
			t.Fatal(err)
		}
		if hops > 2 {
			t.Fatalf("degree %d: chain length %d, copy-up must keep it <= 2", i+1, hops)
		}
	}

	// Compare with link mode at the same degree: the link chain is
	// strictly longer.
	dl := openTiny(t, 1<<20)
	for i := 0; i < 9; i++ {
		if err := dl.StoreEdges([]graph.Edge{{Src: 3, Dst: graph.VertexID(200 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	linkHops, err := dl.ChainLength(3)
	if err != nil {
		t.Fatal(err)
	}
	if linkHops <= 2 {
		t.Fatalf("link-mode chain is %d hops; expected > 2 for this workload", linkHops)
	}
}

// TestCopyUpCheckInvariants: the fsck must accept copy-up databases
// (abandoned sub-blocks are unreachable, not violations).
func TestCopyUpCheckInvariants(t *testing.T) {
	d := openTinyCopyUp(t)
	var edges []graph.Edge
	for v := graph.VertexID(0); v < 20; v++ {
		for i := 0; i <= int(v); i++ {
			edges = append(edges, graph.Edge{Src: v, Dst: graph.VertexID(500 + i)})
		}
	}
	// One edge per batch: maximum overflow churn.
	for _, e := range edges {
		if err := d.StoreEdges([]graph.Edge{e}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := d.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Edges != int64(len(edges)) {
		t.Fatalf("Check counted %d edges, want %d", rep.Edges, len(edges))
	}

	// Same workload in link mode: copy-up must produce strictly shorter
	// worst-case chains (once the ladder tops out both chain at the top
	// level, so copy-up is shorter, not constant).
	dl := openTiny(t, 1<<20)
	for _, e := range edges {
		if err := dl.StoreEdges([]graph.Edge{e}); err != nil {
			t.Fatal(err)
		}
	}
	linkRep, err := dl.Check()
	if err != nil {
		t.Fatalf("link Check: %v", err)
	}
	if rep.MaxChain >= linkRep.MaxChain {
		t.Fatalf("copy-up MaxChain = %d, link MaxChain = %d; copy-up must be shorter",
			rep.MaxChain, linkRep.MaxChain)
	}
}

// TestCopyUpPersistence: reopened copy-up databases keep working.
func TestCopyUpPersistence(t *testing.T) {
	dir := t.TempDir()
	opts := graphdb.Options{
		Dir: dir, MaxFileBytes: 4096, Levels: tinyLevels(), CopyUpOnOverflow: true,
	}
	d, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := storeN(t, d, 5, 9)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if got := neighbors(t, d2, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("after reopen: %v, want %v", got, want)
	}
	// Continue appending past another overflow.
	extra := storeN(t, d2, 5, 0)
	_ = extra
	for i := 0; i < 10; i++ {
		if err := d2.StoreEdges([]graph.Edge{{Src: 5, Dst: graph.VertexID(3000 + i)}}); err != nil {
			t.Fatal(err)
		}
		want = append(want, graph.VertexID(3000+i))
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if got := neighbors(t, d2, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("append after reopen: %v, want %v", got, want)
	}
}

// TestQuickCopyUpInvariant mirrors the link-mode property test under the
// copy-up strategy.
func TestQuickCopyUpInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	check := func(degreesRaw []uint8) bool {
		d, err := Open(graphdb.Options{
			Dir:              t.TempDir(),
			MaxFileBytes:     4096,
			Levels:           tinyLevels(),
			CopyUpOnOverflow: true,
		})
		if err != nil {
			return false
		}
		defer d.Close()
		want := make(map[graph.VertexID][]graph.VertexID)
		for vi, deg := range degreesRaw {
			v := graph.VertexID(vi)
			// Store one edge at a time: maximum overflow churn.
			for i := 0; i < int(deg); i++ {
				u := graph.VertexID(10000 + i)
				if err := d.StoreEdges([]graph.Edge{{Src: v, Dst: u}}); err != nil {
					return false
				}
				want[v] = append(want[v], u)
			}
		}
		for v, w := range want {
			out := graph.NewAdjList(len(w))
			if err := graphdb.Adjacency(d, v, out); err != nil {
				return false
			}
			got := append([]graph.VertexID(nil), out.IDs()...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
			if !reflect.DeepEqual(got, w) {
				return false
			}
		}
		_, err = d.Check()
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestDefragmentAfterCopyUp: the two maintenance paths compose.
func TestDefragmentAfterCopyUp(t *testing.T) {
	d := openTinyCopyUp(t)
	for i := 0; i < 60; i++ {
		if err := d.StoreEdges([]graph.Edge{{Src: 1, Dst: graph.VertexID(700 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	want := neighbors(t, d, 1)
	if _, err := d.Defragment(); err != nil {
		t.Fatalf("Defragment on copy-up DB: %v", err)
	}
	if got := neighbors(t, d, 1); !reflect.DeepEqual(got, want) {
		t.Fatalf("defragment corrupted copy-up adjacency")
	}
	if _, err := d.Check(); err != nil {
		t.Fatalf("Check after defragment: %v", err)
	}
}
