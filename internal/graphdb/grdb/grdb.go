// Package grdb implements grDB, the paper's novel out-of-core graph
// database for massive scale-free graphs (§3.4.1, §4.1.6).
//
// A grDB instance has two components: the storage component — multiple
// levels of block files, where a level-ℓ sub-block stores up to d_ℓ
// neighbour IDs — and the block cache component (package storage/cache).
// The level fan-outs grow roughly like the power-law degree distribution
// of the target graphs (the prototype ladder is d = 2, 4, 16, 256, 4K,
// 16K), so low-degree vertices — the vast majority — live entirely in one
// level-0 sub-block, while hub adjacency spills across a short chain of
// exponentially larger sub-blocks.
//
// Vertex v's adjacency list begins in the v-th sub-block of level 0. If v
// has more than d_0 neighbours, the last slot of the level-0 sub-block
// holds a tagged pointer to a sub-block at level 1, and so on up the
// levels; at the top level, chains continue within the level. Storage
// words are 64-bit with the 3 most significant bits reserved as the
// pointer tag (§4.1.6), leaving 61-bit vertex IDs:
//
//	0x0000000000000000              empty slot
//	tag 000, value w > 0            neighbour with ID w-1
//	tag 001, value s                continuation pointer to sub-block s
//
// Because slots fill strictly left to right and no legal word is zero,
// the fill point of a sub-block is found by binary search, and freshly
// allocated (all-zero) disk blocks need no initialization.
//
// Sub-block s of level ℓ lives at block s/k_ℓ, file (s/k_ℓ)/N_ℓ, byte
// offset B_ℓ·((s/k_ℓ) mod N_ℓ) + b·d_ℓ·(s mod k_ℓ) — the modulo
// arithmetic of §3.4.1, realized by blockio's file striping plus the
// in-block offset here.
package grdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
	"mssg/internal/storage/blockio"
	"mssg/internal/storage/cache"
	"mssg/internal/storage/compress"
	"mssg/internal/storage/fsutil"
	"mssg/internal/storage/vfs"
	"mssg/internal/storage/wal"
)

func init() {
	graphdb.Register("grdb", func(opts graphdb.Options) (graphdb.Graph, error) {
		return Open(opts)
	})
}

const (
	wordBytes = 8 // b: one vertex ID or pointer per word

	tagShift     = 61
	tagMask      = uint64(7) << tagShift
	valueMask    = ^tagMask
	tagNeighbor  = uint64(0) << tagShift
	tagPointer   = uint64(1) << tagShift
	wordEmpty    = uint64(0)
	maxStoreable = (uint64(1) << tagShift) - 2 // ids are stored as id+1

	// DefaultCacheBytes is the block-cache budget when Options.CacheBytes
	// is zero.
	DefaultCacheBytes = 16 << 20

	// DefaultMaxFileBytes is the paper's M = 256 MB per storage file.
	DefaultMaxFileBytes = 256 << 20

	manifestName = "grdb.manifest"

	// compressedMarkerName marks a database whose level stores hold
	// compressed blocks (Options.Compress). The block encoding is part of
	// the on-disk format, so Open refuses a marker/option mismatch rather
	// than misreading every block.
	compressedMarkerName = "grdb.compressed"
)

// DefaultLevels is the prototype's 6-level ladder (§4.1.6): d_ℓ of 2, 4,
// 16, 256, 4K, 16K with 4 KB blocks on the first four levels and 32 KB /
// 256 KB blocks on the last two.
func DefaultLevels() []graphdb.LevelSpec {
	return []graphdb.LevelSpec{
		{SubBlockCap: 2, BlockBytes: 4 << 10},
		{SubBlockCap: 4, BlockBytes: 4 << 10},
		{SubBlockCap: 16, BlockBytes: 4 << 10},
		{SubBlockCap: 256, BlockBytes: 4 << 10},
		{SubBlockCap: 4 << 10, BlockBytes: 32 << 10},
		{SubBlockCap: 16 << 10, BlockBytes: 256 << 10},
	}
}

// levelStore is the block store a level reads and writes logical blocks
// through: a plain *blockio.Store, or a *compress.Store wrapping one
// when Options.Compress is set. The WAL recovery path and Scrub go
// through the same interface, so both operate on logical block images
// regardless of the on-disk encoding.
type levelStore interface {
	BlockSize() int
	ReadBlock(idx int64, buf []byte) error
	ReadBlockNoVerify(idx int64, buf []byte) error
	WriteBlock(idx int64, buf []byte) error
	Sync() error
	Close() error
	Counters() blockio.Counters
}

// level is one storage level at runtime.
type level struct {
	d        int   // sub-block neighbour capacity
	subBytes int   // b * d
	k        int64 // sub-blocks per block
	store    levelStore
	// space is this level's id in the block cache: the level index with a
	// private cache, or an AddSpace-allocated id in a shared cache.
	space uint32
}

// DB is a grDB instance.
type DB struct {
	dir    string
	levels []level
	cache  *cache.BlockCache
	meta   *graphdb.MetaMap

	// nextFree[ℓ] is the next unallocated sub-block at level ℓ (ℓ >= 1;
	// level 0 is addressed by vertex id). Persisted in the manifest.
	nextFree []int64

	// maxVertex is the highest source vertex stored, bounding the
	// Defragment sweep. Persisted in the manifest; -1 when empty.
	maxVertex graph.VertexID

	// tailHint caches each vertex's chain tail so appends skip the walk
	// from level 0 — the "smart caching ... to reduce the number of disk
	// I/Os due to updates" of §3.2. Purely an accelerator: entries are
	// dropped on any doubt (reopen, defragmentation) and appends fall
	// back to the full chain walk.
	tailHint map[graph.VertexID]tailPos

	// copyUp selects the §3.4.1 copy-on-overflow strategy; see
	// graphdb.Options.CopyUpOnOverflow. Chains stay at most two hops
	// (level 0 plus one tail) until the top level, so tail hints are
	// unnecessary and disabled in this mode.
	copyUp bool

	// fsys is the filesystem all durable I/O goes through (the crash
	// suite injects crashfs here); see graphdb.Options.FS.
	fsys vfs.FS

	// durable enables the crash-safe checkpoint protocol of DESIGN.md
	// §11: block checksums, the write-ahead log, no-steal caching, and
	// recovery-on-open. Flush becomes an atomic checkpoint.
	durable bool

	// wal is the redo log (durable mode only); see checkpoint().
	wal *wal.Log

	// manifestGen counts manifest saves; persisted for diagnostics.
	manifestGen uint64

	// genMirror mirrors manifestGen atomically so Generation() can be
	// read by concurrent query admission while a Flush commits (mutators
	// update it last, under their external serialization).
	genMirror atomic.Uint64

	// ckptStaged is the blob from the most recent SetCheckpoint;
	// ckptCommitted is the blob from the last committed Flush (what
	// GetCheckpoint returns). See graphdb.Checkpointer.
	ckptStaged    []byte
	ckptCommitted []byte

	// sharedCache marks that cache belongs to the caller
	// (Options.SharedCache): Flush/Close touch only this instance's
	// spaces and never the co-tenants'.
	sharedCache bool

	// compressed marks that level stores encode blocks (Options.Compress).
	compressed bool

	// pf coordinates asynchronous prefetch jobs (see prefetch.go). Close
	// drains it before releasing the stores.
	pf prefetchEngine

	// Recovery/scrub observability (nil-safe no-ops without a registry).
	mRecoveryRuns, mRecoveryRecords, mRecoveryBlocks, mScrubCorrupt *obs.Counter

	closed bool
	stats  graphdb.StatCounters
}

// tailPos locates the sub-block an append should start from.
type tailPos struct {
	level int
	sub   int64
}

func encodeNeighbor(v graph.VertexID) uint64 { return tagNeighbor | (uint64(v) + 1) }

func decodeNeighbor(w uint64) graph.VertexID { return graph.VertexID(wordValue(w) - 1) }

// Pointer words carry their target level explicitly in the top 3 bits of
// the 61-bit value (the paper leaves the pointer encoding to the
// implementation; an explicit level keeps the format self-describing, so
// background defragmentation may relink a chain to any level). 58 bits
// remain for the sub-block index.
const (
	ptrLevelShift = 58
	ptrLevelMask  = uint64(7) << ptrLevelShift
	ptrSubMask    = (uint64(1) << ptrLevelShift) - 1
)

func encodePointer(level int, sub int64) uint64 {
	return tagPointer | (uint64(level) << ptrLevelShift) | (uint64(sub) & ptrSubMask)
}

func decodePointer(w uint64) (level int, sub int64) {
	return int((w & ptrLevelMask) >> ptrLevelShift), int64(w & ptrSubMask)
}

func wordTag(w uint64) uint64 { return w & tagMask }

func wordValue(w uint64) uint64 { return w & valueMask }

func isPointer(w uint64) bool { return wordTag(w) == tagPointer }

// validateLevels enforces the §3.4.1 constraints on a level ladder.
func validateLevels(levels []graphdb.LevelSpec, maxFileBytes int64) error {
	if len(levels) < 1 {
		return fmt.Errorf("grdb: need at least one level")
	}
	for i, l := range levels {
		if l.SubBlockCap < 2 {
			return fmt.Errorf("grdb: level %d: d must be >= 2, got %d", i, l.SubBlockCap)
		}
		if i > 0 && l.SubBlockCap < 2*levels[i-1].SubBlockCap {
			return fmt.Errorf("grdb: level %d: d_l (%d) must be >= 2*d_{l-1} (%d)",
				i, l.SubBlockCap, 2*levels[i-1].SubBlockCap)
		}
		sub := l.SubBlockCap * wordBytes
		if l.BlockBytes < sub {
			return fmt.Errorf("grdb: level %d: block %d B smaller than sub-block %d B", i, l.BlockBytes, sub)
		}
		if l.BlockBytes%sub != 0 {
			return fmt.Errorf("grdb: level %d: block %d B not a multiple of sub-block %d B", i, l.BlockBytes, sub)
		}
		if maxFileBytes%int64(l.BlockBytes) != 0 {
			return fmt.Errorf("grdb: level %d: file cap %d not a multiple of block %d", i, maxFileBytes, l.BlockBytes)
		}
	}
	return nil
}

// Open creates or reopens a grDB instance under opts.Dir.
func Open(opts graphdb.Options) (*DB, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("grdb: need a directory")
	}
	specs := opts.Levels
	if specs == nil {
		specs = DefaultLevels()
	}
	maxFile := opts.MaxFileBytes
	if maxFile <= 0 {
		maxFile = DefaultMaxFileBytes
	}
	if err := validateLevels(specs, maxFile); err != nil {
		return nil, err
	}
	cacheBytes := opts.CacheBytes
	switch {
	case cacheBytes == 0:
		cacheBytes = DefaultCacheBytes
	case cacheBytes < 0:
		cacheBytes = 0
	}
	fsys := vfs.Or(opts.FS)
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("grdb: %w", err)
	}

	d := &DB{
		dir:         opts.Dir,
		meta:        graphdb.NewMetaMap(),
		nextFree:    make([]int64, len(specs)),
		maxVertex:   -1,
		tailHint:    make(map[graph.VertexID]tailPos),
		copyUp:      opts.CopyUpOnOverflow,
		fsys:        fsys,
		durable:     opts.Durability >= graphdb.DurabilityFull,
		compressed:  opts.Compress,
		sharedCache: opts.SharedCache != nil,
	}
	if d.sharedCache {
		if d.durable {
			return nil, fmt.Errorf("grdb: a shared cache cannot be combined with DurabilityFull (the WAL's no-steal contract is per instance)")
		}
		d.cache = opts.SharedCache
	} else {
		d.cache = cache.New(cacheBytes)
		// A shared cache belongs to the caller, who labels its metrics;
		// private caches are mirrored here.
		d.cache.EnableMetrics(opts.Metrics, "grdb")
	}
	if err := d.checkCompressedMarker(); err != nil {
		return nil, err
	}
	d.pf.init(d, opts.PrefetchWorkers, opts.Metrics)
	d.stats.EnableLatency(opts.Metrics, "grdb")
	if reg := opts.Metrics; reg != nil {
		d.mRecoveryRuns = reg.Counter("grdb.recovery.runs")
		d.mRecoveryRecords = reg.Counter("grdb.recovery.wal_records")
		d.mRecoveryBlocks = reg.Counter("grdb.recovery.blocks_applied")
		d.mScrubCorrupt = reg.Counter("grdb.scrub.corrupt_blocks")
	}
	if d.durable {
		// Dirty blocks must not reach their data files before the WAL
		// holding their images is synced (DESIGN.md §11).
		d.cache.SetNoSteal(true)
	}
	for i, spec := range specs {
		// Compressed levels hold physical slots a fixed slack larger than
		// the logical block; the per-file block capacity stays the same.
		physBytes, storeMaxFile := spec.BlockBytes, maxFile
		if d.compressed {
			physBytes = compress.PhysicalBlockSize(spec.BlockBytes)
			storeMaxFile = maxFile / int64(spec.BlockBytes) * int64(physBytes)
		}
		inner, err := blockio.OpenStore(blockio.Config{
			Dir:          opts.Dir,
			Prefix:       fmt.Sprintf("level%d", i),
			BlockSize:    physBytes,
			MaxFileBytes: storeMaxFile,
			Checksums:    d.durable,
			FS:           opts.FS,
		})
		if err != nil {
			d.closeStores()
			return nil, err
		}
		inner.SimulateLatency(opts.SimReadLatency, opts.SimWriteLatency)
		inner.SimulateTransfer(opts.SimTransferLatency)
		var store levelStore = inner
		if d.compressed {
			cs, err := compress.Wrap(inner, spec.BlockBytes)
			if err != nil {
				inner.Close()
				d.closeStores()
				return nil, err
			}
			store = cs
		}
		space := uint32(i)
		if d.sharedCache {
			if space, err = d.cache.AddSpace(store); err != nil {
				store.Close()
				d.closeStores()
				return nil, err
			}
		} else if err := d.cache.AttachSpace(space, store); err != nil {
			store.Close()
			d.closeStores()
			return nil, err
		}
		d.levels = append(d.levels, level{
			d:        spec.SubBlockCap,
			subBytes: spec.SubBlockCap * wordBytes,
			k:        int64(spec.BlockBytes) / int64(spec.SubBlockCap*wordBytes),
			store:    store,
			space:    space,
		})
	}
	if err := d.loadManifest(); err != nil {
		d.closeStores()
		return nil, err
	}
	if d.durable {
		if err := d.recoverDurable(); err != nil {
			d.closeStores()
			return nil, err
		}
	}
	if opts.VerifyOnOpen {
		if _, err := d.Check(); err != nil {
			d.closeStores()
			return nil, fmt.Errorf("grdb: verify-on-open: %w", err)
		}
	}
	return d, nil
}

// checkCompressedMarker reconciles Options.Compress with the on-disk
// marker file: an existing database must be reopened with the encoding
// it was created with.
func (d *DB) checkCompressedMarker() error {
	marker := filepath.Join(d.dir, compressedMarkerName)
	_, err := fsutil.ReadFile(d.fsys, marker)
	hasMarker := err == nil
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("grdb: %w", err)
	}
	if hasMarker == d.compressed {
		return nil
	}
	_, merr := fsutil.ReadFile(d.fsys, filepath.Join(d.dir, manifestName))
	hasManifest := merr == nil
	if merr != nil && !errors.Is(merr, os.ErrNotExist) {
		return fmt.Errorf("grdb: %w", merr)
	}
	if hasMarker {
		return fmt.Errorf("grdb: %s was created with compressed blocks; reopen with Compress", d.dir)
	}
	if hasManifest {
		return fmt.Errorf("grdb: %s was created without compressed blocks; Compress cannot be enabled on reopen", d.dir)
	}
	// Fresh database opening compressed: record it.
	return fsutil.WriteFileAtomic(d.fsys, marker, []byte("1\n"), 0o644)
}

func (d *DB) closeStores() {
	for _, l := range d.levels {
		if l.store != nil {
			if d.sharedCache {
				// Best-effort: stop leaking this instance's spaces into the
				// caller's cache on a failed Open.
				d.cache.RemoveSpace(l.space)
			}
			l.store.Close()
		}
	}
	if d.wal != nil {
		d.wal.Close()
	}
}

// subBlock pins the block containing sub-block s of level ℓ and returns
// the handle plus the sub-block's byte window inside it.
func (d *DB) subBlock(ℓ int, s int64) (*cache.Handle, []byte, error) {
	l := d.levels[ℓ]
	blockIdx := s / l.k
	h, err := d.cache.Get(l.space, blockIdx)
	if err != nil {
		return nil, nil, err
	}
	off := int(s%l.k) * l.subBytes
	return h, h.Data()[off : off+l.subBytes], nil
}

// fillPoint returns the number of used slots in a sub-block window: the
// index of the first zero word, found by binary search (slots fill left
// to right and no legal word is zero).
func fillPoint(sub []byte) int {
	lo, hi := 0, len(sub)/wordBytes
	for lo < hi {
		mid := (lo + hi) / 2
		if binary.LittleEndian.Uint64(sub[mid*wordBytes:]) != wordEmpty {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func getWord(sub []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(sub[i*wordBytes:])
}

func setWord(sub []byte, i int, w uint64) {
	binary.LittleEndian.PutUint64(sub[i*wordBytes:], w)
}

// allocSub allocates a fresh (all-zero on disk) sub-block at level ℓ.
func (d *DB) allocSub(ℓ int) int64 {
	s := d.nextFree[ℓ]
	d.nextFree[ℓ]++
	return s
}

// nextLevel returns the level a full level-ℓ sub-block chains into: ℓ+1,
// or ℓ itself at the top of the ladder.
func (d *DB) nextLevel(ℓ int) int {
	if ℓ+1 < len(d.levels) {
		return ℓ + 1
	}
	return ℓ
}
