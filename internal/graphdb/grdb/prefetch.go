package grdb

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
)

// Prefetching (§4.2, future work): "The performance of these algorithms
// can be further optimized by introducing some pre-fetching of the
// adjacency lists of the vertices in the frontier. Further optimization
// ... might include sorting the pre-fetch disk accesses by file offsets
// to reduce the seek overhead." PrefetchAdjacency implements exactly
// that: it walks the fringe's chains breadth-first — one chain depth per
// wave — warming the block cache with each wave's blocks in file-offset
// order, so random fringe access becomes near-sequential I/O.

// blockRef identifies one block for the prefetch sweep.
type blockRef struct {
	level int
	block int64
}

// prefetchBudget bounds the bytes one prefetch sweep (sync or async) may
// pull into the cache: a quarter of the cache's byte budget — the SLRU
// probation segment's share — so a single fringe's sweep can never evict
// the blocks the current expansion is using. An unbudgeted prefetch of a
// fringe larger than the cache is strictly worse than no prefetch: every
// block is read once by the sweep, evicted, and read again by the
// expansion. With the cache disabled the budget is zero and prefetch is
// a no-op (there is nothing to warm).
func (d *DB) prefetchBudget() int64 { return d.cache.Capacity() / 4 }

// blockBytes is the logical block size of level ℓ.
func (d *DB) blockBytes(ℓ int) int64 {
	l := d.levels[ℓ]
	return l.k * int64(l.subBytes)
}

// PrefetchAdjacency warms the cache for the adjacency chains of the
// given vertices, reading blocks in file-offset order. It returns the
// number of distinct blocks touched.
func (d *DB) PrefetchAdjacency(fringe []graph.VertexID) (int, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	// Chain positions at the current depth; depth 0 is the level-0
	// sub-block of every fringe vertex.
	positions := make([]tailPos, 0, len(fringe))
	for _, v := range fringe {
		if uint64(v) <= maxStoreable {
			positions = append(positions, tailPos{level: 0, sub: int64(v)})
		}
	}
	seen := make(map[blockRef]bool)
	budget := d.prefetchBudget()
	var spent int64
	exhausted := false
	touched := 0
	for len(positions) > 0 {
		// Warm this depth's blocks in offset order, up to the budget.
		var wave []blockRef
		for _, pos := range positions {
			ref := blockRef{level: pos.level, block: pos.sub / d.levels[pos.level].k}
			if seen[ref] {
				continue
			}
			if bb := d.blockBytes(ref.level); spent+bb > budget {
				exhausted = true
				break
			} else {
				spent += bb
			}
			seen[ref] = true
			wave = append(wave, ref)
		}
		sort.Slice(wave, func(i, j int) bool {
			if wave[i].level != wave[j].level {
				return wave[i].level < wave[j].level
			}
			return wave[i].block < wave[j].block
		})
		for _, ref := range wave {
			h, err := d.cache.Get(d.levels[ref.level].space, ref.block)
			if err != nil {
				return touched, err
			}
			if err := h.Release(); err != nil {
				return touched, err
			}
			touched++
		}
		if exhausted {
			// Deeper waves would only push past the budget further.
			break
		}
		// Advance every chain one hop.
		var next []tailPos
		for _, pos := range positions {
			np, ok, err := d.continuation(pos.level, pos.sub)
			if err != nil {
				return touched, err
			}
			if ok {
				next = append(next, np)
			}
		}
		positions = next
	}
	return touched, nil
}

// defaultPrefetchWorkers bounds one async job's concurrent block reads
// when Options.PrefetchWorkers is zero.
const defaultPrefetchWorkers = 4

// prefetchEngine coordinates asynchronous prefetch jobs for one DB: a
// registry of live jobs (so Close can cancel and join them all) plus the
// shared goroutine accounting.
type prefetchEngine struct {
	d       *DB
	workers int

	mu   sync.Mutex
	jobs map[*prefetchJob]struct{}

	// wg tracks every goroutine of every job; drain() waits on it.
	wg sync.WaitGroup
	// active gauges live prefetch goroutines (exposed via obs and
	// PrefetchGoroutines for the leak assertions in the race suite).
	active atomic.Int64

	mJobs, mBlocks, mErrors *obs.Counter
}

func (p *prefetchEngine) init(d *DB, workers int, reg *obs.Registry) {
	p.d = d
	if workers <= 0 {
		workers = defaultPrefetchWorkers
	}
	p.workers = workers
	p.jobs = make(map[*prefetchJob]struct{})
	if reg != nil {
		p.mJobs = reg.Counter("grdb.prefetch.jobs")
		p.mBlocks = reg.Counter("grdb.prefetch.blocks")
		p.mErrors = reg.Counter("grdb.prefetch.errors")
		reg.RegisterFunc("grdb.prefetch.active_goroutines", p.active.Load)
	}
}

// drain cancels every live job and waits for all prefetch goroutines to
// exit. Called by Close before the stores are released.
func (p *prefetchEngine) drain() {
	p.mu.Lock()
	for j := range p.jobs {
		j.Cancel()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// prefetchJob is one in-flight asynchronous prefetch
// (graphdb.PrefetchJob).
type prefetchJob struct {
	e      *prefetchEngine
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	err    error // written once, before done is closed
	blocks atomic.Int64
}

// Wait implements graphdb.PrefetchJob: it blocks until the job's last
// goroutine has exited and returns the job's first error.
func (j *prefetchJob) Wait() error {
	<-j.done
	return j.err
}

// Cancel implements graphdb.PrefetchJob.
func (j *prefetchJob) Cancel() { j.cancel() }

// Blocks reports how many blocks the job has warmed so far.
func (j *prefetchJob) Blocks() int64 { return j.blocks.Load() }

// PrefetchAsync implements graphdb.AsyncPrefetcher: it starts warming
// the cache for the fringe's adjacency chains in the background —
// wave-by-wave as in PrefetchAdjacency, but with each wave's
// offset-sorted reads fanned across worker goroutines — and returns
// immediately. A read-only operation under the concurrency contract.
func (d *DB) PrefetchAsync(ctx context.Context, fringe []graph.VertexID) graphdb.PrefetchJob {
	p := &d.pf
	j := &prefetchJob{e: p, done: make(chan struct{})}
	j.ctx, j.cancel = context.WithCancel(ctx)
	if d.closed {
		j.err = graphdb.ErrClosed
		j.cancel()
		close(j.done)
		return j
	}
	p.mu.Lock()
	p.jobs[j] = struct{}{}
	p.mu.Unlock()
	p.mJobs.Inc()
	p.wg.Add(1)
	p.active.Add(1)
	go j.run(fringe)
	return j
}

// finish records err (first writer wins — run calls it exactly once),
// deregisters the job, and releases Wait.
func (j *prefetchJob) finish(err error) {
	if err != nil {
		j.err = err
		j.e.mErrors.Inc()
	}
	j.cancel()
	j.e.mu.Lock()
	delete(j.e.jobs, j)
	j.e.mu.Unlock()
	close(j.done)
	j.e.active.Add(-1)
	j.e.wg.Done()
}

// run is the job coordinator: it advances all chains one depth per
// wave, delegating each wave's block reads to readWave.
func (j *prefetchJob) run(fringe []graph.VertexID) {
	d := j.e.d
	positions := make([]tailPos, 0, len(fringe))
	for _, v := range fringe {
		if uint64(v) <= maxStoreable {
			positions = append(positions, tailPos{level: 0, sub: int64(v)})
		}
	}
	seen := make(map[blockRef]bool)
	budget := d.prefetchBudget()
	var spent int64
	exhausted := false
	for len(positions) > 0 {
		if err := j.ctx.Err(); err != nil {
			j.finish(err)
			return
		}
		var wave []blockRef
		for _, pos := range positions {
			ref := blockRef{level: pos.level, block: pos.sub / d.levels[pos.level].k}
			if seen[ref] {
				continue
			}
			if bb := d.blockBytes(ref.level); spent+bb > budget {
				exhausted = true
				break
			} else {
				spent += bb
			}
			seen[ref] = true
			wave = append(wave, ref)
		}
		sort.Slice(wave, func(i, k int) bool {
			if wave[i].level != wave[k].level {
				return wave[i].level < wave[k].level
			}
			return wave[i].block < wave[k].block
		})
		if err := j.readWave(wave); err != nil {
			j.finish(err)
			return
		}
		if exhausted {
			// The budget is spent; deeper waves would evict what the
			// expansion is about to use.
			j.finish(nil)
			return
		}
		// Advance every chain one hop; these reads hit the blocks the
		// wave just warmed.
		var next []tailPos
		for _, pos := range positions {
			if err := j.ctx.Err(); err != nil {
				j.finish(err)
				return
			}
			np, ok, err := d.continuation(pos.level, pos.sub)
			if err != nil {
				j.finish(err)
				return
			}
			if ok {
				next = append(next, np)
			}
		}
		positions = next
	}
	j.finish(nil)
}

// readWave pins and releases every block of one wave, fanning the
// offset-sorted list across the engine's worker budget. Workers claim
// the next sorted block atomically, so the issue order stays sorted
// globally.
func (j *prefetchJob) readWave(wave []blockRef) error {
	if len(wave) == 0 {
		return nil
	}
	d := j.e.d
	workers := j.e.workers
	if workers > len(wave) {
		workers = len(wave)
	}
	var (
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		j.cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		j.e.wg.Add(1)
		j.e.active.Add(1)
		go func() {
			defer func() {
				j.e.active.Add(-1)
				j.e.wg.Done()
				wg.Done()
			}()
			for {
				if j.ctx.Err() != nil {
					return
				}
				i := next.Add(1) - 1
				if i >= int64(len(wave)) {
					return
				}
				ref := wave[i]
				h, err := d.cache.Get(d.levels[ref.level].space, ref.block)
				if err != nil {
					fail(err)
					return
				}
				if err := h.Release(); err != nil {
					fail(err)
					return
				}
				j.blocks.Add(1)
				j.e.mBlocks.Inc()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return j.ctx.Err()
}

// PrefetchGoroutines reports the number of live prefetch goroutines —
// zero once every job's Wait has returned. Exposed for the leak
// assertions in the conformance suite (and as the obs gauge
// grdb.prefetch.active_goroutines).
func (d *DB) PrefetchGoroutines() int64 { return d.pf.active.Load() }

// continuation returns the continuation pointer of sub-block (ℓ, s), if
// any.
func (d *DB) continuation(ℓ int, s int64) (tailPos, bool, error) {
	h, sub, err := d.subBlock(ℓ, s)
	if err != nil {
		return tailPos{}, false, err
	}
	defer h.Release()
	capSlots := d.levels[ℓ].d
	if fillPoint(sub) != capSlots {
		return tailPos{}, false, nil
	}
	last := getWord(sub, capSlots-1)
	if !isPointer(last) {
		return tailPos{}, false, nil
	}
	nl, ns := decodePointer(last)
	return tailPos{level: nl, sub: ns}, true, nil
}
