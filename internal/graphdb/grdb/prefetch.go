package grdb

import (
	"sort"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// Prefetching (§4.2, future work): "The performance of these algorithms
// can be further optimized by introducing some pre-fetching of the
// adjacency lists of the vertices in the frontier. Further optimization
// ... might include sorting the pre-fetch disk accesses by file offsets
// to reduce the seek overhead." PrefetchAdjacency implements exactly
// that: it walks the fringe's chains breadth-first — one chain depth per
// wave — warming the block cache with each wave's blocks in file-offset
// order, so random fringe access becomes near-sequential I/O.

// blockRef identifies one block for the prefetch sweep.
type blockRef struct {
	level int
	block int64
}

// PrefetchAdjacency warms the cache for the adjacency chains of the
// given vertices, reading blocks in file-offset order. It returns the
// number of distinct blocks touched.
func (d *DB) PrefetchAdjacency(fringe []graph.VertexID) (int, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	// Chain positions at the current depth; depth 0 is the level-0
	// sub-block of every fringe vertex.
	positions := make([]tailPos, 0, len(fringe))
	for _, v := range fringe {
		if uint64(v) <= maxStoreable {
			positions = append(positions, tailPos{level: 0, sub: int64(v)})
		}
	}
	seen := make(map[blockRef]bool)
	touched := 0
	for len(positions) > 0 {
		// Warm this depth's blocks in offset order.
		var wave []blockRef
		for _, pos := range positions {
			ref := blockRef{level: pos.level, block: pos.sub / d.levels[pos.level].k}
			if !seen[ref] {
				seen[ref] = true
				wave = append(wave, ref)
			}
		}
		sort.Slice(wave, func(i, j int) bool {
			if wave[i].level != wave[j].level {
				return wave[i].level < wave[j].level
			}
			return wave[i].block < wave[j].block
		})
		for _, ref := range wave {
			h, err := d.cache.Get(uint32(ref.level), ref.block)
			if err != nil {
				return touched, err
			}
			if err := h.Release(); err != nil {
				return touched, err
			}
			touched++
		}
		// Advance every chain one hop.
		var next []tailPos
		for _, pos := range positions {
			np, ok, err := d.continuation(pos.level, pos.sub)
			if err != nil {
				return touched, err
			}
			if ok {
				next = append(next, np)
			}
		}
		positions = next
	}
	return touched, nil
}

// continuation returns the continuation pointer of sub-block (ℓ, s), if
// any.
func (d *DB) continuation(ℓ int, s int64) (tailPos, bool, error) {
	h, sub, err := d.subBlock(ℓ, s)
	if err != nil {
		return tailPos{}, false, err
	}
	defer h.Release()
	capSlots := d.levels[ℓ].d
	if fillPoint(sub) != capSlots {
		return tailPos{}, false, nil
	}
	last := getWord(sub, capSlots-1)
	if !isPointer(last) {
		return tailPos{}, false, nil
	}
	nl, ns := decodePointer(last)
	return tailPos{level: nl, sub: ns}, true, nil
}
