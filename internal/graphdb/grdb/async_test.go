package grdb

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/storage/cache"
)

// smallLevels keeps chains multi-level with few edges.
func smallLevels() []graphdb.LevelSpec {
	return []graphdb.LevelSpec{
		{SubBlockCap: 2, BlockBytes: 256},
		{SubBlockCap: 4, BlockBytes: 256},
		{SubBlockCap: 8, BlockBytes: 256},
	}
}

func seedEdges(n int) []graph.Edge {
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		deg := 1 + (v*7)%23
		for i := 0; i < deg; i++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v + i + 1) % n)})
		}
	}
	return edges
}

func adjacency(t *testing.T, g graphdb.Graph, v graph.VertexID) []graph.VertexID {
	t.Helper()
	out := graph.NewAdjList(8)
	if err := graphdb.Adjacency(g, v, out); err != nil {
		t.Fatalf("adjacency(%d): %v", v, err)
	}
	ids := append([]graph.VertexID(nil), out.IDs()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestCompressedMatchesPlain: a compressed DB must return exactly the
// adjacency a plain DB returns, across reopen, in both durability modes.
func TestCompressedMatchesPlain(t *testing.T) {
	for _, durability := range []graphdb.DurabilityLevel{graphdb.DurabilityNone, graphdb.DurabilityFull} {
		t.Run(durability.String(), func(t *testing.T) {
			edges := seedEdges(60)
			open := func(dir string, compress bool) *DB {
				d, err := Open(graphdb.Options{
					Dir: dir, Levels: smallLevels(), MaxFileBytes: 4096,
					Compress: compress, Durability: durability,
				})
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			plainDir, compDir := t.TempDir(), t.TempDir()
			plain, comp := open(plainDir, false), open(compDir, true)
			for _, d := range []*DB{plain, comp} {
				if err := d.StoreEdges(edges); err != nil {
					t.Fatal(err)
				}
				if err := d.Close(); err != nil {
					t.Fatal(err)
				}
			}
			plain, comp = open(plainDir, false), open(compDir, true)
			defer plain.Close()
			defer comp.Close()
			for v := graph.VertexID(0); v < 60; v++ {
				want := adjacency(t, plain, v)
				got := adjacency(t, comp, v)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("vertex %d: compressed %v, plain %v", v, got, want)
				}
			}
		})
	}
}

// TestCompressedMarkerMismatch: reopening with the wrong Compress
// setting must fail, not misread blocks.
func TestCompressedMarkerMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(graphdb.Options{Dir: dir, Levels: smallLevels(), MaxFileBytes: 4096, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreEdges(seedEdges(10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(graphdb.Options{Dir: dir, Levels: smallLevels(), MaxFileBytes: 4096}); err == nil {
		t.Fatal("compressed database opened without Compress")
	}
	// And the converse: plain database, compressed reopen.
	dir2 := t.TempDir()
	d2, err := Open(graphdb.Options{Dir: dir2, Levels: smallLevels(), MaxFileBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.StoreEdges(seedEdges(10)); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(graphdb.Options{Dir: dir2, Levels: smallLevels(), MaxFileBytes: 4096, Compress: true}); err == nil {
		t.Fatal("plain database opened with Compress")
	}
}

// TestSharedCacheTwoInstances: two DBs on one SLRU cache must stay
// fully isolated (disjoint spaces) while sharing the byte budget.
func TestSharedCacheTwoInstances(t *testing.T) {
	shared := cache.NewWithPolicy(1<<20, cache.PolicySLRU)
	edgesA, edgesB := seedEdges(40), seedEdges(25)
	open := func(dir string) *DB {
		d, err := Open(graphdb.Options{
			Dir: dir, Levels: smallLevels(), MaxFileBytes: 4096,
			SharedCache: shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := open(t.TempDir()), open(t.TempDir())
	if err := a.StoreEdges(edgesA); err != nil {
		t.Fatal(err)
	}
	if err := b.StoreEdges(edgesB); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// Same-id vertices have different adjacency in the two instances.
	if got := adjacency(t, a, 3); len(got) == 0 {
		t.Fatal("instance A lost vertex 3")
	}
	wantA, wantB := adjacency(t, a, 3), adjacency(t, b, 3)
	if reflect.DeepEqual(wantA, wantB) {
		t.Fatal("test graphs should differ at vertex 3")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// B must still work after A's spaces were removed.
	if got := adjacency(t, b, 3); !reflect.DeepEqual(got, wantB) {
		t.Fatalf("instance B after A closed: %v, want %v", got, wantB)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if shared.Size() != 0 {
		t.Fatalf("shared cache retains %d bytes after both instances closed", shared.Size())
	}
}

// TestSharedCacheRejectsDurable: the WAL's no-steal contract is per
// instance; combining a shared cache with DurabilityFull must fail.
func TestSharedCacheRejectsDurable(t *testing.T) {
	shared := cache.NewWithPolicy(1<<20, cache.PolicySLRU)
	_, err := Open(graphdb.Options{
		Dir: t.TempDir(), Levels: smallLevels(), MaxFileBytes: 4096,
		SharedCache: shared, Durability: graphdb.DurabilityFull,
	})
	if err == nil {
		t.Fatal("shared cache + DurabilityFull accepted")
	}
}

// TestPrefetchAsyncWarmsCache: after Wait, expanding the fringe must be
// all cache hits, and the job must warm the same blocks the synchronous
// sweep touches.
func TestPrefetchAsyncWarmsCache(t *testing.T) {
	d, err := Open(graphdb.Options{Dir: t.TempDir(), Levels: smallLevels(), MaxFileBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.StoreEdges(seedEdges(50)); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	fringe := []graph.VertexID{1, 5, 9, 13, 44}
	job := d.PrefetchAsync(context.Background(), fringe)
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	missesBefore := d.cache.Stats().Misses
	for _, v := range fringe {
		adjacency(t, d, v)
	}
	if misses := d.cache.Stats().Misses - missesBefore; misses != 0 {
		t.Fatalf("expansion after prefetch took %d misses, want 0", misses)
	}
	if g := d.PrefetchGoroutines(); g != 0 {
		t.Fatalf("%d prefetch goroutines alive after Wait", g)
	}
}

// TestPrefetchAsyncCancel: cancelling mid-flight must stop the job with
// the context error and leave no goroutine running.
func TestPrefetchAsyncCancel(t *testing.T) {
	d, err := Open(graphdb.Options{
		Dir: t.TempDir(), Levels: smallLevels(), MaxFileBytes: 4096,
		// Slow simulated device so cancellation lands mid-job.
		SimReadLatency: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.StoreEdges(seedEdges(300)); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	fringe := make([]graph.VertexID, 300)
	for i := range fringe {
		fringe[i] = graph.VertexID(i)
	}
	job := d.PrefetchAsync(context.Background(), fringe)
	job.Cancel()
	if err := job.Wait(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after Cancel = %v, want nil or context.Canceled", err)
	}
	if g := d.PrefetchGoroutines(); g != 0 {
		t.Fatalf("%d prefetch goroutines alive after cancelled Wait", g)
	}
	// Close with a fresh in-flight job must drain it.
	job2 := d.PrefetchAsync(context.Background(), fringe)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_ = job2.Wait()
	if g := d.PrefetchGoroutines(); g != 0 {
		t.Fatalf("%d prefetch goroutines alive after Close", g)
	}
}

// TestPrefetchAsyncMatchesSync: async and sync prefetch agree on the
// number of distinct blocks warmed for the same fringe.
func TestPrefetchAsyncMatchesSync(t *testing.T) {
	edges := seedEdges(80)
	fringe := make([]graph.VertexID, 80)
	for i := range fringe {
		fringe[i] = graph.VertexID(i)
	}
	count := func(async bool) int64 {
		d, err := Open(graphdb.Options{Dir: t.TempDir(), Levels: smallLevels(), MaxFileBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if err := d.StoreEdges(edges); err != nil {
			t.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		if async {
			job := d.PrefetchAsync(context.Background(), fringe).(*prefetchJob)
			if err := job.Wait(); err != nil {
				t.Fatal(err)
			}
			return job.Blocks()
		}
		n, err := d.PrefetchAdjacency(fringe)
		if err != nil {
			t.Fatal(err)
		}
		return int64(n)
	}
	if a, s := count(true), count(false); a != s {
		t.Fatalf("async warmed %d blocks, sync %d", a, s)
	}
}

// TestCompressedBytesShrink: the same ingest moves fewer bytes to the
// device compressed than plain.
func TestCompressedBytesShrink(t *testing.T) {
	edges := seedEdges(120)
	written := func(compress bool) int64 {
		d, err := Open(graphdb.Options{
			Dir: t.TempDir(), Levels: smallLevels(), MaxFileBytes: 4096, Compress: compress,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.StoreEdges(edges); err != nil {
			t.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		var bytes int64
		for _, l := range d.levels {
			bytes += l.store.Counters().BytesWritten
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return bytes
	}
	plain, comp := written(false), written(true)
	if comp >= plain {
		t.Fatalf("compressed ingest wrote %d bytes, plain %d — no shrink", comp, plain)
	}
	t.Log(fmt.Sprintf("bytes written: plain %d, compressed %d", plain, comp))
}
