package grdb

import (
	"fmt"
	"sort"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// StoreEdges implements graphdb.Graph. Edges are grouped by source so each
// vertex's chain is walked once per batch; within a chain, appends go to
// the first empty slot (found by binary search) and overflow allocates a
// sub-block at the next level, exactly as §3.4.1 describes (the prototype
// "links on overflow" rather than copying up; see Defragment for the
// copy-up compaction it defers to idle time).
func (d *DB) StoreEdges(edges []graph.Edge) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if len(edges) == 0 {
		return nil
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveStore(start)
	grouped := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		if err := graph.ValidateEdge(e); err != nil {
			return err
		}
		if uint64(e.Src) > maxStoreable || uint64(e.Dst) > maxStoreable {
			return fmt.Errorf("grdb: vertex id beyond 61-bit storeable range: %v", e)
		}
		grouped[e.Src] = append(grouped[e.Src], e.Dst)
	}
	srcs := make([]graph.VertexID, 0, len(grouped))
	for v := range grouped {
		srcs = append(srcs, v)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		if err := d.appendNeighbors(src, grouped[src]); err != nil {
			return err
		}
		d.stats.AddEdgesStored(int64(len(grouped[src])))
		if src > d.maxVertex {
			d.maxVertex = src
		}
	}
	return nil
}

// appendNeighbors walks v's chain to its tail and appends ids, overflowing
// into higher levels as sub-blocks fill. A tail hint (when present) lets
// the walk start at the last known tail instead of level 0. In link mode
// (the prototype's choice) an overflowing sub-block keeps its contents
// and points to the new one; in copy-up mode (§3.4.1's alternative) its
// contents move into the new sub-block and the parent pointer is
// redirected, keeping every chain at most level-0 → tail until the top
// level.
func (d *DB) appendNeighbors(v graph.VertexID, ids []graph.VertexID) error {
	ℓ, s := 0, int64(v)
	if !d.copyUp {
		if hint, ok := d.tailHint[v]; ok {
			ℓ, s = hint.level, hint.sub
		}
		defer func() {
			d.tailHint[v] = tailPos{level: ℓ, sub: s}
		}()
	}
	// parent tracks the sub-block whose last slot points at (ℓ, s); the
	// sentinel level -1 means (ℓ, s) is the level-0 anchor itself.
	parent := tailPos{level: -1}
	for len(ids) > 0 {
		h, sub, err := d.subBlock(ℓ, s)
		if err != nil {
			return err
		}
		capSlots := d.levels[ℓ].d
		fill := fillPoint(sub)

		// A full sub-block whose last word is a pointer: follow it.
		if fill == capSlots {
			if last := getWord(sub, capSlots-1); isPointer(last) {
				if err := h.Release(); err != nil {
					return err
				}
				parent = tailPos{level: ℓ, sub: s}
				ℓ, s = decodePointer(last)
				if ℓ >= len(d.levels) {
					return fmt.Errorf("grdb: pointer to level %d beyond ladder", ℓ)
				}
				continue
			}
		}

		// Append into free slots.
		for len(ids) > 0 && fill < capSlots {
			setWord(sub, fill, encodeNeighbor(ids[0]))
			ids = ids[1:]
			fill++
		}
		if len(ids) == 0 {
			h.MarkDirty()
			return h.Release()
		}

		nl := d.nextLevel(ℓ)
		if d.copyUp && ℓ > 0 && nl != ℓ {
			// Copy-up: move this sub-block's contents into a fresh,
			// larger sub-block (d_{ℓ+1} >= 2·d_ℓ guarantees room), then
			// redirect the parent pointer and abandon the old sub-block.
			newSub := d.allocSub(nl)
			moved := make([]graph.VertexID, capSlots)
			for i := 0; i < capSlots; i++ {
				moved[i] = decodeNeighbor(getWord(sub, i))
			}
			if err := h.Release(); err != nil {
				return err
			}
			nh, nsub, err := d.subBlock(nl, newSub)
			if err != nil {
				return err
			}
			for i, u := range moved {
				setWord(nsub, i, encodeNeighbor(u))
			}
			nh.MarkDirty()
			if err := nh.Release(); err != nil {
				return err
			}
			// Redirect the parent (level 0 anchor when parent is the
			// sentinel — then the anchor's own last slot is the pointer).
			pl, ps := parent.level, parent.sub
			if pl < 0 {
				pl, ps = 0, int64(v)
			}
			ph, psub, err := d.subBlock(pl, ps)
			if err != nil {
				return err
			}
			setWord(psub, d.levels[pl].d-1, encodePointer(nl, newSub))
			ph.MarkDirty()
			if err := ph.Release(); err != nil {
				return err
			}
			parent = tailPos{level: pl, sub: ps}
			ℓ, s = nl, newSub
			continue
		}

		// Link: evict the last neighbour into a freshly allocated
		// sub-block at the next level and replace it with the
		// continuation pointer.
		newSub := d.allocSub(nl)
		evicted := decodeNeighbor(getWord(sub, capSlots-1))
		setWord(sub, capSlots-1, encodePointer(nl, newSub))
		h.MarkDirty()
		if err := h.Release(); err != nil {
			return err
		}
		ids = append([]graph.VertexID{evicted}, ids...)
		parent = tailPos{level: ℓ, sub: s}
		ℓ, s = nl, newSub
	}
	return nil
}

// walkAdjacency streams v's neighbours in storage order.
func (d *DB) walkAdjacency(v graph.VertexID, visit func(u graph.VertexID)) error {
	ℓ, s := 0, int64(v)
	for {
		h, sub, err := d.subBlock(ℓ, s)
		if err != nil {
			return err
		}
		capSlots := d.levels[ℓ].d
		fill := fillPoint(sub)
		if fill == 0 {
			return h.Release()
		}
		n := fill
		var next uint64
		if fill == capSlots {
			if last := getWord(sub, capSlots-1); isPointer(last) {
				n = capSlots - 1
				next = last
			}
		}
		for i := 0; i < n; i++ {
			visit(decodeNeighbor(getWord(sub, i)))
		}
		if err := h.Release(); err != nil {
			return err
		}
		if next == 0 {
			return nil
		}
		ℓ, s = decodePointer(next)
		if ℓ >= len(d.levels) {
			return fmt.Errorf("grdb: pointer to level %d beyond ladder", ℓ)
		}
	}
}

// Metadata implements graphdb.Graph.
func (d *DB) Metadata(v graph.VertexID) (int32, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	return d.meta.Get(v), nil
}

// SetMetadata implements graphdb.Graph.
func (d *DB) SetMetadata(v graph.VertexID, md int32) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	d.meta.Set(v, md)
	return nil
}

// AdjacencyUsingMetadata implements graphdb.Graph.
func (d *DB) AdjacencyUsingMetadata(v graph.VertexID, out *graph.AdjList, md int32, op graphdb.MetaOp) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if uint64(v) > maxStoreable {
		return fmt.Errorf("grdb: vertex id %d beyond 61-bit storeable range", v)
	}
	start := d.stats.OpStart()
	defer d.stats.ObserveAdjacency(start)
	d.stats.AddAdjacencyCall()
	if op == graphdb.MetaIgnore {
		var n int64
		err := d.walkAdjacency(v, func(u graph.VertexID) {
			out.Append(u)
			n++
		})
		d.stats.AddNeighborsReturned(n)
		return err
	}
	var n int64
	err := d.walkAdjacency(v, func(u graph.VertexID) {
		if op.Matches(d.meta.Get(u), md) {
			out.Append(u)
			n++
		}
	})
	d.stats.AddNeighborsReturned(n)
	return err
}

// Degree returns v's stored out-degree (chain walk).
func (d *DB) Degree(v graph.VertexID) (int64, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	var n int64
	err := d.walkAdjacency(v, func(graph.VertexID) { n++ })
	return n, err
}

// ChainLength returns the number of sub-blocks in v's chain (1 when the
// adjacency fits at level 0; 0 for unknown vertices). Used by the
// defragmentation ablation.
func (d *DB) ChainLength(v graph.VertexID) (int, error) {
	if d.closed {
		return 0, graphdb.ErrClosed
	}
	ℓ, s := 0, int64(v)
	hops := 0
	for {
		h, sub, err := d.subBlock(ℓ, s)
		if err != nil {
			return 0, err
		}
		capSlots := d.levels[ℓ].d
		fill := fillPoint(sub)
		if fill == 0 {
			err := h.Release()
			return hops, err
		}
		hops++
		var next uint64
		if fill == capSlots {
			if last := getWord(sub, capSlots-1); isPointer(last) {
				next = last
			}
		}
		if err := h.Release(); err != nil {
			return 0, err
		}
		if next == 0 {
			return hops, nil
		}
		ℓ, s = decodePointer(next)
	}
}

// Flush implements graphdb.Graph. In durable mode it is an atomic
// checkpoint: when it returns nil, every edge stored and checkpoint
// blob staged before the call survives any crash (see durable.go).
func (d *DB) Flush() error {
	if d.closed {
		return graphdb.ErrClosed
	}
	if d.durable {
		return d.checkpoint()
	}
	if err := d.flushCache(); err != nil {
		return err
	}
	if err := d.saveManifest(); err != nil {
		return err
	}
	d.ckptCommitted = d.ckptStaged
	return nil
}

// flushCache writes back this instance's dirty blocks. On a shared
// cache only this instance's spaces are flushed — co-tenants commit
// their own writes.
func (d *DB) flushCache() error {
	if !d.sharedCache {
		return d.cache.Flush()
	}
	for _, l := range d.levels {
		if err := d.cache.FlushSpace(l.space); err != nil {
			return err
		}
	}
	return nil
}

// Close implements graphdb.Graph.
func (d *DB) Close() error {
	if d.closed {
		return nil
	}
	// Cancel and join every in-flight prefetch before touching the
	// stores: Wait()'s contract guarantees no prefetch goroutine
	// outlives the instance.
	d.pf.drain()
	if err := d.Flush(); err != nil {
		return err
	}
	d.closed = true
	var first error
	for _, l := range d.levels {
		if d.sharedCache {
			// Give the spaces back to the caller's cache (writes back any
			// dirty blocks the flush raced with; there are none after a
			// clean Flush, but the invariant costs nothing).
			if err := d.cache.RemoveSpace(l.space); err != nil && first == nil {
				first = err
			}
		}
		if err := l.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	if d.wal != nil {
		if err := d.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats implements graphdb.Graph.
func (d *DB) Stats() graphdb.Stats { return d.stats.Snapshot() }

// Generation implements graphdb.GenerationReader: the manifest
// generation, bumped by every Flush (and checkpoint commit), read
// through an atomic mirror so query admission can pin it while ingest
// proceeds on another goroutine.
func (d *DB) Generation() uint64 { return d.genMirror.Load() }

// ConcurrentReaders implements graphdb.Graph: walkAdjacency and the
// metadata path read index words and chain blocks through the
// mutex-guarded block cache without touching the write-side state
// (tail hints, free lists), so any number of goroutines may expand
// fringe vertices at once.
func (d *DB) ConcurrentReaders() bool { return true }

// IOCounters implements graphdb.IOCounters, summing all levels.
func (d *DB) IOCounters() (blockReads, blockWrites int64) {
	for _, l := range d.levels {
		c := l.store.Counters()
		blockReads += c.BlockReads
		blockWrites += c.BlockWrites
	}
	return blockReads, blockWrites
}

// IOBytes reports physical bytes moved to and from the backing stores,
// summing all levels. With compression enabled this is smaller than
// block-count × block-size accounting suggests — compressed payloads
// and hinted prefix reads move only the bytes that exist.
func (d *DB) IOBytes() (bytesRead, bytesWritten int64) {
	for _, l := range d.levels {
		c := l.store.Counters()
		bytesRead += c.BytesRead
		bytesWritten += c.BytesWritten
	}
	return bytesRead, bytesWritten
}

// CacheStats implements graphdb.CacheStats.
func (d *DB) CacheStats() (hits, misses int64) {
	s := d.cache.Stats()
	return s.Hits, s.Misses
}

// ResetMetadata clears all metadata between queries.
func (d *DB) ResetMetadata() { d.meta.Reset() }
