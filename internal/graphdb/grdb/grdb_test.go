package grdb

import (
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// tinyLevels is a 3-level ladder (d = 2, 4, 8, like the paper's Fig 3.4
// example) with small blocks, so chain growth is exercised by tiny
// graphs.
func tinyLevels() []graphdb.LevelSpec {
	return []graphdb.LevelSpec{
		{SubBlockCap: 2, BlockBytes: 256},
		{SubBlockCap: 4, BlockBytes: 256},
		{SubBlockCap: 8, BlockBytes: 256},
	}
}

func openTiny(t *testing.T, cacheBytes int64) *DB {
	t.Helper()
	d, err := Open(graphdb.Options{
		Dir:          t.TempDir(),
		CacheBytes:   cacheBytes,
		MaxFileBytes: 4096,
		Levels:       tinyLevels(),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func neighbors(t *testing.T, d *DB, v graph.VertexID) []graph.VertexID {
	t.Helper()
	out := graph.NewAdjList(16)
	if err := graphdb.Adjacency(d, v, out); err != nil {
		t.Fatalf("Adjacency(%d): %v", v, err)
	}
	ids := append([]graph.VertexID(nil), out.IDs()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func storeN(t *testing.T, d *DB, v graph.VertexID, n int) []graph.VertexID {
	t.Helper()
	want := make([]graph.VertexID, n)
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		want[i] = graph.VertexID(1000 + i)
		edges[i] = graph.Edge{Src: v, Dst: want[i]}
	}
	if err := d.StoreEdges(edges); err != nil {
		t.Fatalf("StoreEdges: %v", err)
	}
	return want
}

// TestChainGrowthBoundaries stores exactly the degrees around every
// overflow boundary of the tiny ladder (d0=2: boundaries at 2, 3;
// d0-1+d1 = 5, 6; then level 2, then top-level chaining).
func TestChainGrowthBoundaries(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 12, 13, 20, 40, 100} {
		d := openTiny(t, 1<<20)
		want := storeN(t, d, 7, n)
		got := neighbors(t, d, 7)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("degree %d: got %d neighbours %v, want %d", n, len(got), got, n)
		}
		deg, err := d.Degree(7)
		if err != nil || deg != int64(n) {
			t.Fatalf("Degree = %d, %v; want %d", deg, err, n)
		}
	}
}

// TestChainGrowthIncremental adds neighbours one edge at a time — the
// worst-case fragmentation pattern §3.4.1 describes.
func TestChainGrowthIncremental(t *testing.T) {
	d := openTiny(t, 1<<20)
	var want []graph.VertexID
	for i := 0; i < 60; i++ {
		u := graph.VertexID(500 + i)
		want = append(want, u)
		if err := d.StoreEdges([]graph.Edge{{Src: 3, Dst: u}}); err != nil {
			t.Fatalf("StoreEdges #%d: %v", i, err)
		}
		got := neighbors(t, d, 3)
		sortedWant := append([]graph.VertexID(nil), want...)
		sort.Slice(sortedWant, func(a, b int) bool { return sortedWant[a] < sortedWant[b] })
		if !reflect.DeepEqual(got, sortedWant) {
			t.Fatalf("after %d single-edge stores: got %v", i+1, got)
		}
	}
	// Incremental growth should have produced a multi-block chain.
	hops, err := d.ChainLength(3)
	if err != nil {
		t.Fatalf("ChainLength: %v", err)
	}
	if hops < 3 {
		t.Fatalf("ChainLength = %d, want >= 3 for degree 60 on d=2,4,8", hops)
	}
}

func TestVertexZeroNeighborZero(t *testing.T) {
	// Word encoding must distinguish vertex 0 from an empty slot.
	d := openTiny(t, 1<<20)
	if err := d.StoreEdges([]graph.Edge{{Src: 0, Dst: 0}}); err != nil {
		t.Fatalf("StoreEdges: %v", err)
	}
	got := neighbors(t, d, 0)
	if !reflect.DeepEqual(got, []graph.VertexID{0}) {
		t.Fatalf("Adjacency(0) = %v, want [0]", got)
	}
}

func TestPointerEncoding(t *testing.T) {
	for _, tc := range []struct {
		level int
		sub   int64
	}{{0, 0}, {1, 1}, {5, 123456}, {7, (1 << 58) - 1}} {
		w := encodePointer(tc.level, tc.sub)
		if !isPointer(w) {
			t.Fatalf("encodePointer(%d,%d) not tagged as pointer", tc.level, tc.sub)
		}
		l, s := decodePointer(w)
		if l != tc.level || s != tc.sub {
			t.Fatalf("decodePointer(encodePointer(%d,%d)) = (%d,%d)", tc.level, tc.sub, l, s)
		}
	}
}

func TestNeighborEncoding(t *testing.T) {
	for _, v := range []graph.VertexID{0, 1, 42, graph.MaxVertexID - 1} {
		w := encodeNeighbor(v)
		if w == wordEmpty {
			t.Fatalf("encodeNeighbor(%d) is the empty word", v)
		}
		if isPointer(w) {
			t.Fatalf("encodeNeighbor(%d) tagged as pointer", v)
		}
		if got := decodeNeighbor(w); got != v {
			t.Fatalf("decodeNeighbor(encodeNeighbor(%d)) = %d", v, got)
		}
	}
}

func TestFillPointBinarySearch(t *testing.T) {
	sub := make([]byte, 16*wordBytes)
	for fill := 0; fill <= 16; fill++ {
		for i := range sub {
			sub[i] = 0
		}
		for i := 0; i < fill; i++ {
			setWord(sub, i, encodeNeighbor(graph.VertexID(i)))
		}
		if got := fillPoint(sub); got != fill {
			t.Fatalf("fillPoint with %d slots used = %d", fill, got)
		}
	}
}

func TestLevelValidation(t *testing.T) {
	bad := [][]graphdb.LevelSpec{
		{},                                   // no levels
		{{SubBlockCap: 1, BlockBytes: 4096}}, // d < 2
		{{SubBlockCap: 2, BlockBytes: 8}},    // block < sub-block
		{{SubBlockCap: 3, BlockBytes: 4096}}, // block not multiple of sub-block (3*8=24)
		{{SubBlockCap: 2, BlockBytes: 4096}, {SubBlockCap: 3, BlockBytes: 4096}}, // d1 < 2*d0
	}
	for i, levels := range bad {
		_, err := Open(graphdb.Options{Dir: t.TempDir(), Levels: levels, MaxFileBytes: 4096})
		if err == nil {
			t.Errorf("case %d: invalid ladder accepted", i)
		}
	}
}

func TestDefaultLeversMatchPrototype(t *testing.T) {
	want := []int{2, 4, 16, 256, 4096, 16384}
	levels := DefaultLevels()
	if len(levels) != 6 {
		t.Fatalf("DefaultLevels has %d levels, want 6", len(levels))
	}
	for i, l := range levels {
		if l.SubBlockCap != want[i] {
			t.Errorf("level %d d = %d, want %d", i, l.SubBlockCap, want[i])
		}
	}
	// Block sizes per §4.1.6: 4 KB on levels 0-3, 32 KB, 256 KB.
	for i := 0; i < 4; i++ {
		if levels[i].BlockBytes != 4096 {
			t.Errorf("level %d block = %d, want 4096", i, levels[i].BlockBytes)
		}
	}
	if levels[4].BlockBytes != 32<<10 || levels[5].BlockBytes != 256<<10 {
		t.Errorf("top level blocks = %d/%d, want 32K/256K", levels[4].BlockBytes, levels[5].BlockBytes)
	}
}

func TestSubBlockAddressArithmetic(t *testing.T) {
	// §3.4.1: sub-block s lives in block s/k, file (s/k)/N, offset
	// B*((s/k)%N) + b*d*(s%k). With the tiny ladder, level 0 has
	// k = 256/(2*8) = 16 sub-blocks per block and N = 4096/256 = 16
	// blocks per file; verify against the blockio mapping indirectly by
	// storing far-apart vertices and reading them back.
	d := openTiny(t, 1<<20)
	vertices := []graph.VertexID{0, 15, 16, 255, 256, 1000}
	for _, v := range vertices {
		if err := d.StoreEdges([]graph.Edge{{Src: v, Dst: v + 1}}); err != nil {
			t.Fatalf("StoreEdges(%d): %v", v, err)
		}
	}
	for _, v := range vertices {
		got := neighbors(t, d, v)
		if !reflect.DeepEqual(got, []graph.VertexID{v + 1}) {
			t.Fatalf("Adjacency(%d) = %v", v, got)
		}
	}
	// Multiple level-0 files must exist (vertex 1000 is in file 3).
	if _, err := filepath.Glob(""); err != nil {
		t.Fatal(err)
	}
}

func TestDefragmentShortensChains(t *testing.T) {
	d := openTiny(t, 1<<20)
	// One edge at a time creates a long fragmented chain.
	for i := 0; i < 50; i++ {
		if err := d.StoreEdges([]graph.Edge{{Src: 9, Dst: graph.VertexID(100 + i)}}); err != nil {
			t.Fatalf("StoreEdges: %v", err)
		}
	}
	before, err := d.ChainLength(9)
	if err != nil {
		t.Fatalf("ChainLength: %v", err)
	}
	want := neighbors(t, d, 9)

	rewritten, err := d.Defragment()
	if err != nil {
		t.Fatalf("Defragment: %v", err)
	}
	if rewritten == 0 {
		t.Fatal("Defragment rewrote nothing")
	}
	after, err := d.ChainLength(9)
	if err != nil {
		t.Fatalf("ChainLength after: %v", err)
	}
	if after >= before {
		t.Fatalf("chain length %d -> %d; defragment did not shorten", before, after)
	}
	if got := neighbors(t, d, 9); !reflect.DeepEqual(got, want) {
		t.Fatalf("adjacency changed by defragment:\n got %v\nwant %v", got, want)
	}
	// Appends after defragmentation must still work.
	if err := d.StoreEdges([]graph.Edge{{Src: 9, Dst: 999}}); err != nil {
		t.Fatalf("StoreEdges after defragment: %v", err)
	}
	want = append(want, 999)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if got := neighbors(t, d, 9); !reflect.DeepEqual(got, want) {
		t.Fatalf("append after defragment broken:\n got %v\nwant %v", got, want)
	}
}

func TestDefragmentIdempotent(t *testing.T) {
	d := openTiny(t, 1<<20)
	for i := 0; i < 30; i++ {
		if err := d.StoreEdges([]graph.Edge{{Src: 2, Dst: graph.VertexID(50 + i)}}); err != nil {
			t.Fatalf("StoreEdges: %v", err)
		}
	}
	if _, err := d.Defragment(); err != nil {
		t.Fatalf("first Defragment: %v", err)
	}
	n, err := d.Defragment()
	if err != nil {
		t.Fatalf("second Defragment: %v", err)
	}
	if n != 0 {
		t.Fatalf("second Defragment rewrote %d chains, want 0", n)
	}
}

func TestPersistenceWithChains(t *testing.T) {
	dir := t.TempDir()
	opts := graphdb.Options{Dir: dir, MaxFileBytes: 4096, Levels: tinyLevels()}
	d, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := storeN(t, d, 5, 23)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	d2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if got := neighbors(t, d2, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("after reopen: got %v, want %v", got, want)
	}
	// Appends must continue from the persisted allocation counters, not
	// overwrite existing chains.
	if err := d2.StoreEdges([]graph.Edge{{Src: 6, Dst: 1}, {Src: 6, Dst: 2}, {Src: 6, Dst: 3}}); err != nil {
		t.Fatalf("StoreEdges after reopen: %v", err)
	}
	if got := neighbors(t, d2, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("vertex 5 corrupted by post-reopen allocation: %v", got)
	}
}

func TestManifestLadderMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(graphdb.Options{Dir: dir, MaxFileBytes: 4096, Levels: tinyLevels()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	storeN(t, d, 1, 5)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, err = Open(graphdb.Options{Dir: dir, MaxFileBytes: 4096, Levels: tinyLevels()[:2]})
	if err == nil {
		t.Fatal("reopen with different ladder accepted")
	}
}

func TestCacheCountersMove(t *testing.T) {
	d := openTiny(t, 1<<20)
	storeN(t, d, 3, 20)
	neighbors(t, d, 3)
	hits, misses := d.CacheStats()
	if hits+misses == 0 {
		t.Fatal("cache counters never moved")
	}
	reads, writes := d.IOCounters()
	if writes == 0 && reads == 0 {
		// With a large cache everything may still be resident; force it
		// out.
		if err := d.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		_, writes = d.IOCounters()
		if writes == 0 {
			t.Fatal("no physical writes even after Flush")
		}
	}
}

// TestQuickChainInvariant: for arbitrary degree sequences, storing then
// reading preserves exact multisets (chains through every level).
func TestQuickChainInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	check := func(degreesRaw []uint8) bool {
		d, err := Open(graphdb.Options{
			Dir:          t.TempDir(),
			MaxFileBytes: 4096,
			Levels:       tinyLevels(),
		})
		if err != nil {
			return false
		}
		defer d.Close()
		want := make(map[graph.VertexID][]graph.VertexID)
		for vi, deg := range degreesRaw {
			v := graph.VertexID(vi)
			var batch []graph.Edge
			for i := 0; i < int(deg); i++ {
				u := graph.VertexID(10000 + i)
				batch = append(batch, graph.Edge{Src: v, Dst: u})
				want[v] = append(want[v], u)
			}
			if err := d.StoreEdges(batch); err != nil {
				return false
			}
		}
		for v, w := range want {
			out := graph.NewAdjList(len(w))
			if err := graphdb.Adjacency(d, v, out); err != nil {
				return false
			}
			got := append([]graph.VertexID(nil), out.IDs()...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
			if !reflect.DeepEqual(got, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchAdjacency(t *testing.T) {
	d := openTiny(t, 1<<20)
	var fringe []graph.VertexID
	for v := graph.VertexID(0); v < 20; v++ {
		storeN(t, d, v, int(v)+1)
		fringe = append(fringe, v)
	}
	touched, err := d.PrefetchAdjacency(fringe)
	if err != nil {
		t.Fatalf("PrefetchAdjacency: %v", err)
	}
	if touched == 0 {
		t.Fatal("prefetch touched no blocks")
	}
	// After the prefetch, reading every fringe adjacency must be pure
	// cache hits (no new physical reads).
	readsBefore, _ := d.IOCounters()
	for _, v := range fringe {
		out := graph.NewAdjList(32)
		if err := graphdb.Adjacency(d, v, out); err != nil {
			t.Fatal(err)
		}
		if out.Len() != int(v)+1 {
			t.Fatalf("adjacency of %d has %d ids", v, out.Len())
		}
	}
	readsAfter, _ := d.IOCounters()
	if readsAfter != readsBefore {
		t.Fatalf("adjacency after prefetch caused %d physical reads", readsAfter-readsBefore)
	}
}

func TestPrefetchUnknownVerticesHarmless(t *testing.T) {
	d := openTiny(t, 1<<20)
	if _, err := d.PrefetchAdjacency([]graph.VertexID{5, 999, graph.MaxVertexID + 1}); err != nil {
		t.Fatalf("PrefetchAdjacency of unknown vertices: %v", err)
	}
}

func TestCheckCleanDatabase(t *testing.T) {
	d := openTiny(t, 1<<20)
	var totalEdges int64
	for v := graph.VertexID(0); v < 30; v++ {
		n := int(v%13) + 1
		storeN(t, d, v, n)
		totalEdges += int64(n)
	}
	rep, err := d.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Vertices != 30 {
		t.Errorf("Vertices = %d, want 30", rep.Vertices)
	}
	if rep.Edges != totalEdges {
		t.Errorf("Edges = %d, want %d", rep.Edges, totalEdges)
	}
	if rep.MaxChain < 2 {
		t.Errorf("MaxChain = %d, want >= 2 (degree 13 on d=2,4,8)", rep.MaxChain)
	}
	if rep.LevelSubBlocks[0] != 30 {
		t.Errorf("level-0 sub-blocks = %d, want 30", rep.LevelSubBlocks[0])
	}
}

func TestCheckAfterDefragment(t *testing.T) {
	d := openTiny(t, 1<<20)
	for i := 0; i < 40; i++ {
		if err := d.StoreEdges([]graph.Edge{{Src: 4, Dst: graph.VertexID(100 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Defragment(); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Check()
	if err != nil {
		t.Fatalf("Check after defragment: %v", err)
	}
	if rep.Edges != 40 {
		t.Fatalf("Edges after defragment = %d, want 40", rep.Edges)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	d := openTiny(t, 1<<20)
	storeN(t, d, 0, 10) // chain through levels
	// Corrupt: plant a pointer to an unallocated sub-block in level 0.
	h, sub, err := d.subBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	setWord(sub, d.levels[0].d-1, encodePointer(2, 9999))
	h.MarkDirty()
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Check(); err == nil {
		t.Fatal("Check accepted a dangling pointer")
	}
}
