package grdb

import (
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// ForEachVertex implements graphdb.VertexScanner: every vertex with at
// least one stored out-edge, ascending. grDB has no vertex directory —
// a vertex's chain starts at the level-0 sub-block its ID hashes to — so
// the scan sweeps the ID space up to the highest source vertex ever
// stored and probes each chain's fill point, which costs one level-0
// block read per candidate and no list materialization.
func (d *DB) ForEachVertex(fn func(v graph.VertexID) error) error {
	if d.closed {
		return graphdb.ErrClosed
	}
	for v := graph.VertexID(0); v <= d.maxVertex; v++ {
		n, err := d.Degree(v)
		if err != nil {
			return err
		}
		if n == 0 {
			continue
		}
		if err := fn(v); err != nil {
			return err
		}
	}
	return nil
}
