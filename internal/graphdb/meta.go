package graphdb

import "mssg/internal/graph"

// MetaMap is the in-memory per-vertex metadata table shared by the GraphDB
// implementations. The paper's search experiments deliberately fix the
// visited/metadata structure in memory "to characterize the operation of
// the actual graph storage" (chapter 5); implementations embed a MetaMap
// so the adjacency storage is the only variable. Unset vertices read as 0,
// matching the Java prototype's default int.
type MetaMap struct {
	m map[graph.VertexID]int32
}

// NewMetaMap returns an empty metadata table.
func NewMetaMap() *MetaMap {
	return &MetaMap{m: make(map[graph.VertexID]int32)}
}

// Get returns v's metadata (0 if unset).
func (mm *MetaMap) Get(v graph.VertexID) int32 { return mm.m[v] }

// Set stores v's metadata.
func (mm *MetaMap) Set(v graph.VertexID, md int32) { mm.m[v] = md }

// Reset clears all metadata (between queries).
func (mm *MetaMap) Reset() { clear(mm.m) }

// Len returns the number of vertices with explicitly set metadata.
func (mm *MetaMap) Len() int { return len(mm.m) }

// MetadataResetter is implemented by backends whose metadata table can be
// cleared wholesale between queries (all of the built-in ones).
type MetadataResetter interface {
	ResetMetadata()
}

// ResetMetadata clears g's metadata table if the backend supports it and
// reports whether it did.
func ResetMetadata(g Graph) bool {
	if r, ok := g.(MetadataResetter); ok {
		r.ResetMetadata()
		return true
	}
	return false
}
