package graphdb

import (
	"sync"
	"testing"

	"mssg/internal/obs"
)

// TestSetEdgesStoredMonotonic: a manifest reload that races (or follows)
// live stores must never rewind the stored-edge count — Snapshot
// documents the counts as monotonic.
func TestSetEdgesStoredMonotonic(t *testing.T) {
	var c StatCounters
	c.SetEdgesStored(100) // manifest reload on a fresh instance
	if got := c.EdgesStored(); got != 100 {
		t.Fatalf("after reload: %d, want 100", got)
	}
	c.AddEdgesStored(50)
	c.SetEdgesStored(100) // stale reload must not rewind past live stores
	if got := c.EdgesStored(); got != 150 {
		t.Fatalf("after stale reload: %d, want 150", got)
	}
	c.SetEdgesStored(300) // a larger persisted count still wins
	if got := c.EdgesStored(); got != 300 {
		t.Fatalf("after larger reload: %d, want 300", got)
	}
}

// TestSetEdgesStoredConcurrent hammers the CAS clamp against concurrent
// adds under -race: the final count must reflect every add on top of the
// largest baseline.
func TestSetEdgesStoredConcurrent(t *testing.T) {
	var c StatCounters
	c.SetEdgesStored(1 << 30)
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.AddEdgesStored(1)
				c.SetEdgesStored(1 << 30) // repeated stale reloads
			}
		}()
	}
	wg.Wait()
	if got := c.EdgesStored(); got != 1<<30+workers*iters {
		t.Fatalf("final count %d, want %d", got, 1<<30+workers*iters)
	}
}

func TestLatencyMetricsGated(t *testing.T) {
	var c StatCounters
	// Disabled: OpStart returns 0 and observations are dropped.
	if c.OpStart() != 0 {
		t.Fatal("OpStart should return 0 when metrics are disabled")
	}
	c.ObserveAdjacency(0)
	c.ObserveStore(0)

	reg := obs.NewRegistry()
	c.EnableLatency(reg, "testdb")
	start := c.OpStart()
	if start == 0 {
		t.Fatal("OpStart should return a timestamp once enabled")
	}
	c.ObserveAdjacency(start)
	c.ObserveStore(c.OpStart())
	s := reg.Snapshot()
	if s.Histograms["graphdb.testdb.adjacency_ns"].Count != 1 {
		t.Fatalf("adjacency_ns = %+v", s.Histograms["graphdb.testdb.adjacency_ns"])
	}
	if s.Histograms["graphdb.testdb.store_ns"].Count != 1 {
		t.Fatalf("store_ns = %+v", s.Histograms["graphdb.testdb.store_ns"])
	}
}
