// Package datacutter reimplements the component-based middleware MSSG is
// built on (paper §3.1): applications are *filters* that exchange data
// buffers over unidirectional logical *streams*. The runtime instantiates
// filter copies on cluster nodes, connects all logical endpoints, and
// drives each filter's interface functions (Init, Process, Finalize).
//
// Data- and task-parallelism come from "transparent copies": a filter may
// be placed on many nodes, and stream write policies (round-robin,
// broadcast, explicit direction) decide which copies receive each buffer.
// Filters on the same node exchange buffers through the fabric's local
// path (a queue operation); filters on different nodes go through the
// message-passing transport — mirroring DataCutter's memcpy-vs-MPI split.
package datacutter

import (
	"errors"
	"fmt"

	"mssg/internal/cluster"
)

// Buffer is the unit of data exchanged on a stream: an opaque byte
// payload plus an application tag (DataCutter's work-unit metadata).
type Buffer struct {
	Tag  int32
	Data []byte
}

// Instance describes one placed copy of a filter.
type Instance struct {
	// Filter is the filter's name in the graph.
	Filter string
	// Copy is this copy's index, 0..Copies-1.
	Copy int
	// Copies is the total number of transparent copies of this filter.
	Copies int
	// Node is the cluster node this copy runs on.
	Node cluster.NodeID
}

func (in Instance) String() string {
	return fmt.Sprintf("%s[%d/%d]@node%d", in.Filter, in.Copy, in.Copies, in.Node)
}

// Filter is the component interface (paper §3.1). A filter must read only
// from its input streams and write only to its output streams. Process is
// called once and should loop until its inputs are exhausted; the runtime
// closes the filter's outputs after Process returns.
type Filter interface {
	// Init runs before any Process in the graph consumes data.
	Init(ctx *Context) error
	// Process performs the filter's work until inputs are exhausted.
	Process(ctx *Context) error
	// Finalize runs after Process returned and outputs were closed.
	Finalize(ctx *Context) error
}

// Factory builds the filter object for one placed copy. Factories let each
// copy hold per-node state (open files, databases, caches).
type Factory func(in Instance) (Filter, error)

// Context gives a running filter copy access to its identity and streams.
type Context struct {
	inst    Instance
	ep      cluster.Endpoint
	inputs  map[string]*StreamReader
	outputs map[string]*StreamWriter
}

// Instance returns this copy's placement record.
func (c *Context) Instance() Instance { return c.inst }

// Endpoint exposes the raw cluster endpoint, for services (like the query
// service) that implement their own side protocols next to the streams.
func (c *Context) Endpoint() cluster.Endpoint { return c.ep }

// Input returns the reader for a named input port.
func (c *Context) Input(port string) (*StreamReader, error) {
	r, ok := c.inputs[port]
	if !ok {
		return nil, fmt.Errorf("datacutter: %s has no input port %q", c.inst, port)
	}
	return r, nil
}

// Output returns the writer for a named output port.
func (c *Context) Output(port string) (*StreamWriter, error) {
	w, ok := c.outputs[port]
	if !ok {
		return nil, fmt.Errorf("datacutter: %s has no output port %q", c.inst, port)
	}
	return w, nil
}

// ErrUnknownFilter reports a Connect against an undeclared filter.
var ErrUnknownFilter = errors.New("datacutter: unknown filter")
