package datacutter

import (
	"fmt"

	"mssg/internal/cluster"
)

// Placement decides which nodes the copies of a filter run on, given the
// fabric size. The i-th returned node hosts copy i.
type Placement func(fabricSize int) ([]cluster.NodeID, error)

// PlaceOn places one copy on each listed node, in order.
func PlaceOn(nodes ...cluster.NodeID) Placement {
	return func(size int) ([]cluster.NodeID, error) {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("datacutter: PlaceOn with no nodes")
		}
		for _, n := range nodes {
			if err := cluster.Validate(n, size); err != nil {
				return nil, err
			}
		}
		out := make([]cluster.NodeID, len(nodes))
		copy(out, nodes)
		return out, nil
	}
}

// PlaceOnePerNode places one copy on every node of the fabric.
func PlaceOnePerNode() Placement {
	return func(size int) ([]cluster.NodeID, error) {
		out := make([]cluster.NodeID, size)
		for i := range out {
			out[i] = cluster.NodeID(i)
		}
		return out, nil
	}
}

// PlaceRange places one copy on each of nodes [start, start+count).
func PlaceRange(start cluster.NodeID, count int) Placement {
	return func(size int) ([]cluster.NodeID, error) {
		if count < 1 {
			return nil, fmt.Errorf("datacutter: PlaceRange with count %d", count)
		}
		out := make([]cluster.NodeID, count)
		for i := 0; i < count; i++ {
			n := start + cluster.NodeID(i)
			if err := cluster.Validate(n, size); err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	}
}

// PlaceCopies places n copies round-robin across the whole fabric.
func PlaceCopies(n int) Placement {
	return func(size int) ([]cluster.NodeID, error) {
		if n < 1 {
			return nil, fmt.Errorf("datacutter: PlaceCopies with n=%d", n)
		}
		out := make([]cluster.NodeID, n)
		for i := 0; i < n; i++ {
			out[i] = cluster.NodeID(i % size)
		}
		return out, nil
	}
}

type filterSpec struct {
	name      string
	factory   Factory
	placement Placement
}

type streamSpec struct {
	idx     int
	src     string
	srcPort string
	dst     string
	dstPort string
	policy  WritePolicy
}

// Graph is a filter-graph specification: declared filters plus the logical
// streams connecting their ports. Build one, then hand it to a Runtime.
type Graph struct {
	filters []filterSpec
	byName  map[string]int
	streams []streamSpec
}

// NewGraph returns an empty filter graph.
func NewGraph() *Graph {
	return &Graph{byName: make(map[string]int)}
}

// AddFilter declares a filter with its factory and placement.
func (g *Graph) AddFilter(name string, factory Factory, placement Placement) error {
	if name == "" {
		return fmt.Errorf("datacutter: filter needs a name")
	}
	if _, dup := g.byName[name]; dup {
		return fmt.Errorf("datacutter: duplicate filter %q", name)
	}
	if factory == nil || placement == nil {
		return fmt.Errorf("datacutter: filter %q needs a factory and a placement", name)
	}
	g.byName[name] = len(g.filters)
	g.filters = append(g.filters, filterSpec{name: name, factory: factory, placement: placement})
	return nil
}

// Connect declares a logical stream from src's output port to dst's input
// port with the given write policy.
func (g *Graph) Connect(src, srcPort, dst, dstPort string, policy WritePolicy) error {
	if _, ok := g.byName[src]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownFilter, src)
	}
	if _, ok := g.byName[dst]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownFilter, dst)
	}
	for _, s := range g.streams {
		if s.src == src && s.srcPort == srcPort {
			return fmt.Errorf("datacutter: output port %s.%s already connected", src, srcPort)
		}
		if s.dst == dst && s.dstPort == dstPort {
			return fmt.Errorf("datacutter: input port %s.%s already connected", dst, dstPort)
		}
	}
	g.streams = append(g.streams, streamSpec{
		idx:     len(g.streams),
		src:     src,
		srcPort: srcPort,
		dst:     dst,
		dstPort: dstPort,
		policy:  policy,
	})
	return nil
}
