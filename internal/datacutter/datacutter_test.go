package datacutter

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"testing"

	"mssg/internal/cluster"
)

// testFilter is a configurable filter for runtime tests.
type testFilter struct {
	init     func(ctx *Context) error
	process  func(ctx *Context) error
	finalize func(ctx *Context) error
}

func (f *testFilter) Init(ctx *Context) error {
	if f.init == nil {
		return nil
	}
	return f.init(ctx)
}

func (f *testFilter) Process(ctx *Context) error {
	if f.process == nil {
		return nil
	}
	return f.process(ctx)
}

func (f *testFilter) Finalize(ctx *Context) error {
	if f.finalize == nil {
		return nil
	}
	return f.finalize(ctx)
}

func newFabric(t *testing.T, size int) cluster.Fabric {
	t.Helper()
	f := cluster.NewInProc(size, 64)
	t.Cleanup(func() { f.Close() })
	return f
}

// producer emits n tagged buffers then returns.
func producer(n int) Factory {
	return func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			out, err := ctx.Output("out")
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				if err := out.Write(Buffer{Tag: int32(i), Data: []byte{byte(i)}}); err != nil {
					return err
				}
			}
			return nil
		}}, nil
	}
}

// collector drains its input into a shared map keyed by copy index.
func collector(mu *sync.Mutex, got map[int][]int32) Factory {
	return func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			r, err := ctx.Input("in")
			if err != nil {
				return err
			}
			for {
				buf, err := r.Read()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				mu.Lock()
				got[in.Copy] = append(got[in.Copy], buf.Tag)
				mu.Unlock()
			}
		}}, nil
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	fab := newFabric(t, 3)
	g := NewGraph()
	var mu sync.Mutex
	got := map[int][]int32{}
	if err := g.AddFilter("src", producer(9), PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", collector(&mu, got), PlaceOnePerNode()); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(fab).Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for copy := 0; copy < 3; copy++ {
		if len(got[copy]) != 3 {
			t.Fatalf("copy %d got %d buffers, want 3: %v", copy, len(got[copy]), got)
		}
	}
}

func TestBroadcastDistribution(t *testing.T) {
	fab := newFabric(t, 2)
	g := NewGraph()
	var mu sync.Mutex
	got := map[int][]int32{}
	if err := g.AddFilter("src", producer(4), PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", collector(&mu, got), PlaceCopies(3)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", Broadcast); err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(fab).Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for copy := 0; copy < 3; copy++ {
		if len(got[copy]) != 4 {
			t.Fatalf("copy %d got %v, want all 4 buffers", copy, got[copy])
		}
	}
}

func TestDirectedRouting(t *testing.T) {
	fab := newFabric(t, 2)
	g := NewGraph()
	var mu sync.Mutex
	got := map[int][]int32{}
	directedSrc := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			out, err := ctx.Output("out")
			if err != nil {
				return err
			}
			// Plain Write must fail on a Directed stream.
			if err := out.Write(Buffer{}); err == nil {
				return fmt.Errorf("Write on directed stream succeeded")
			}
			for i := 0; i < 6; i++ {
				if err := out.WriteTo(i%2, Buffer{Tag: int32(i)}); err != nil {
					return err
				}
			}
			if err := out.WriteTo(99, Buffer{}); err == nil {
				return fmt.Errorf("WriteTo out-of-range succeeded")
			}
			return nil
		}}, nil
	}
	if err := g.AddFilter("src", directedSrc, PlaceOn(1)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", collector(&mu, got), PlaceCopies(2)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", Directed); err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(fab).Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for copy := 0; copy < 2; copy++ {
		tags := got[copy]
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
		for _, tag := range tags {
			if int(tag)%2 != copy {
				t.Fatalf("copy %d received tag %d", copy, tag)
			}
		}
		if len(tags) != 3 {
			t.Fatalf("copy %d received %d buffers, want 3", copy, len(tags))
		}
	}
}

func TestEOFAfterAllWritersClose(t *testing.T) {
	// Two producer copies, one consumer: consumer must see all buffers
	// from both, then EOF.
	fab := newFabric(t, 2)
	g := NewGraph()
	var mu sync.Mutex
	got := map[int][]int32{}
	if err := g.AddFilter("src", producer(5), PlaceCopies(2)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", collector(&mu, got), PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(fab).Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got[0]) != 10 {
		t.Fatalf("consumer got %d buffers, want 10", len(got[0]))
	}
}

func TestThreeStagePipeline(t *testing.T) {
	// src -> relay (2 copies) -> sink; relay transforms tags.
	fab := newFabric(t, 3)
	g := NewGraph()
	relay := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			r, err := ctx.Input("in")
			if err != nil {
				return err
			}
			out, err := ctx.Output("out")
			if err != nil {
				return err
			}
			for {
				buf, err := r.Read()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				buf.Tag *= 10
				if err := out.Write(buf); err != nil {
					return err
				}
			}
		}}, nil
	}
	var mu sync.Mutex
	got := map[int][]int32{}
	if err := g.AddFilter("src", producer(8), PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("relay", relay, PlaceCopies(2)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("sink", collector(&mu, got), PlaceOn(2)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "relay", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("relay", "out", "sink", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(fab).Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tags := got[0]
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	want := []int32{0, 10, 20, 30, 40, 50, 60, 70}
	if len(tags) != len(want) {
		t.Fatalf("sink got %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("sink got %v, want %v", tags, want)
		}
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	noop := func(in Instance) (Filter, error) { return &testFilter{}, nil }
	if err := g.AddFilter("", noop, PlaceOn(0)); err == nil {
		t.Error("empty name accepted")
	}
	if err := g.AddFilter("a", noop, PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("a", noop, PlaceOn(0)); err == nil {
		t.Error("duplicate filter accepted")
	}
	if err := g.Connect("a", "out", "missing", "in", RoundRobin); err == nil {
		t.Error("connect to unknown filter accepted")
	}
	if err := g.AddFilter("b", noop, PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("a", "out", "b", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("a", "out", "b", "in2", RoundRobin); err == nil {
		t.Error("double-connected output port accepted")
	}
}

func TestProcessErrorPropagates(t *testing.T) {
	fab := newFabric(t, 2)
	g := NewGraph()
	failing := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			return fmt.Errorf("deliberate failure")
		}}, nil
	}
	var mu sync.Mutex
	got := map[int][]int32{}
	if err := g.AddFilter("src", failing, PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", collector(&mu, got), PlaceOn(1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}
	err := NewRuntime(fab).Run(g)
	if err == nil {
		t.Fatal("Run swallowed the process error")
	}
	// Crucially, the consumer must have terminated (outputs were closed
	// even though the producer failed) — Run returning proves it.
}

func TestPanicInProcessIsCaptured(t *testing.T) {
	fab := newFabric(t, 1)
	g := NewGraph()
	panicky := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error { panic("boom") }}, nil
	}
	if err := g.AddFilter("p", panicky, PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	err := NewRuntime(fab).Run(g)
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestInitBarrier(t *testing.T) {
	// A filter whose Init fails must prevent every Process from running.
	fab := newFabric(t, 2)
	g := NewGraph()
	processRan := false
	var mu sync.Mutex
	badInit := func(in Instance) (Filter, error) {
		return &testFilter{init: func(ctx *Context) error {
			return fmt.Errorf("init failure")
		}}, nil
	}
	watcher := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			mu.Lock()
			processRan = true
			mu.Unlock()
			return nil
		}}, nil
	}
	if err := g.AddFilter("bad", badInit, PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("watch", watcher, PlaceOn(1)); err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(fab).Run(g); err == nil {
		t.Fatal("Run ignored init failure")
	}
	if processRan {
		t.Fatal("Process ran despite failed Init elsewhere in the graph")
	}
}

func TestPlacements(t *testing.T) {
	if _, err := PlaceOn(5)(3); err == nil {
		t.Error("PlaceOn out-of-range node accepted")
	}
	nodes, err := PlaceOnePerNode()(4)
	if err != nil || len(nodes) != 4 {
		t.Errorf("PlaceOnePerNode = %v, %v", nodes, err)
	}
	nodes, err = PlaceCopies(5)(2)
	if err != nil || len(nodes) != 5 || nodes[4] != 0 {
		t.Errorf("PlaceCopies = %v, %v", nodes, err)
	}
	nodes, err = PlaceRange(1, 2)(4)
	if err != nil || len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 2 {
		t.Errorf("PlaceRange = %v, %v", nodes, err)
	}
	if _, err := PlaceRange(3, 2)(4); err == nil {
		t.Error("PlaceRange past fabric end accepted")
	}
}
