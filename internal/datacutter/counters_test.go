package datacutter

import (
	"io"
	"testing"

	"mssg/internal/cluster"
)

// TestStreamCounters verifies Sent/Received/Fanout bookkeeping and the
// broadcast expansion accounting.
func TestStreamCounters(t *testing.T) {
	fab := cluster.NewInProc(2, 64)
	defer fab.Close()
	g := NewGraph()

	var sent, fanout int64
	src := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			out, err := ctx.Output("out")
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if err := out.Write(Buffer{Tag: int32(i)}); err != nil {
					return err
				}
			}
			sent = out.Sent()
			fanout = int64(out.Fanout())
			return nil
		}}, nil
	}
	var received int64
	dst := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			r, err := ctx.Input("in")
			if err != nil {
				return err
			}
			for {
				if _, err := r.Read(); err == io.EOF {
					received = r.Received()
					return nil
				} else if err != nil {
					return err
				}
			}
		}}, nil
	}
	if err := g.AddFilter("src", src, PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", dst, PlaceOn(1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", Broadcast); err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(fab).Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fanout != 1 {
		t.Errorf("Fanout = %d, want 1", fanout)
	}
	if sent != 3 {
		t.Errorf("Sent = %d, want 3", sent)
	}
	if received != 3 {
		t.Errorf("Received = %d, want 3", received)
	}
}

func TestInstanceString(t *testing.T) {
	in := Instance{Filter: "reader", Copy: 1, Copies: 4, Node: 2}
	want := "reader[1/4]@node2"
	if got := in.String(); got != want {
		t.Fatalf("Instance.String() = %q, want %q", got, want)
	}
}

func TestWritePolicyString(t *testing.T) {
	cases := map[WritePolicy]string{
		RoundRobin:     "round-robin",
		Broadcast:      "broadcast",
		Directed:       "directed",
		WritePolicy(9): "WritePolicy(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	fab := cluster.NewInProc(1, 8)
	defer fab.Close()
	g := NewGraph()
	src := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			out, err := ctx.Output("out")
			if err != nil {
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			if err := out.Write(Buffer{}); err == nil {
				t.Error("Write after Close succeeded")
			}
			// Double close is harmless.
			return out.Close()
		}}, nil
	}
	sink := func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			r, err := ctx.Input("in")
			if err != nil {
				return err
			}
			_, err = r.Read()
			if err != io.EOF {
				return err
			}
			return nil
		}}, nil
	}
	if err := g.AddFilter("src", src, PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("sink", sink, PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "sink", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(fab).Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
