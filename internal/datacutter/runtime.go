package datacutter

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/obs"
)

// ErrDeadline is reported by RunWith when the graph-wide deadline passes
// before every filter copy finishes.
var ErrDeadline = errors.New("datacutter: graph deadline exceeded")

// RunOptions configures supervised graph execution. The zero value runs
// unsupervised, exactly like Run.
type RunOptions struct {
	// Deadline bounds the whole graph run (placement through Finalize);
	// 0 means no deadline. When it passes, every blocked stream read is
	// aborted and the run returns ErrDeadline joined with whatever the
	// aborted copies reported.
	Deadline time.Duration
	// FailFast aborts the remaining copies as soon as any copy fails,
	// instead of letting siblings drain to natural EOF. Use it when an
	// upstream death would otherwise leave downstream readers blocked on
	// streams nobody will ever close.
	FailFast bool
}

// Runtime instantiates filter graphs on a cluster fabric and executes them
// to completion (the paper's "filtering service").
type Runtime struct {
	fabric cluster.Fabric
}

// NewRuntime binds a runtime to a fabric. Several graphs may be run in
// sequence on the same runtime; a single runtime must not run two graphs
// concurrently (their stream channels would collide).
func NewRuntime(f cluster.Fabric) *Runtime {
	return &Runtime{fabric: f}
}

// placedCopy is one fully wired filter instance, ready to execute.
type placedCopy struct {
	inst   Instance
	filter Filter
	ctx    *Context
}

// Run places every filter copy, wires every stream endpoint, then drives
// all copies through Init (graph-wide barrier) → Process → output close →
// Finalize. It returns the joined error of every failed copy.
func (r *Runtime) Run(g *Graph) error {
	return r.RunWith(g, RunOptions{})
}

// RunWith is Run under supervision: an optional graph-wide deadline and
// optional fail-fast abort propagation (see RunOptions).
func (r *Runtime) RunWith(g *Graph, opts RunOptions) error {
	if len(g.filters) == 0 {
		return fmt.Errorf("datacutter: empty graph")
	}
	supervised := opts.Deadline > 0 || opts.FailFast
	var abort atomic.Bool
	size := r.fabric.Nodes()

	// Resolve placements.
	placements := make([][]cluster.NodeID, len(g.filters))
	for i, f := range g.filters {
		nodes, err := f.placement(size)
		if err != nil {
			return fmt.Errorf("datacutter: placing %q: %w", f.name, err)
		}
		if len(nodes) > maxCopies {
			return fmt.Errorf("datacutter: filter %q has %d copies, max %d", f.name, len(nodes), maxCopies)
		}
		placements[i] = nodes
	}

	// Build contexts for every copy.
	copies := make(map[string][]*placedCopy, len(g.filters))
	var all []*placedCopy
	for i, f := range g.filters {
		nodes := placements[i]
		for c, node := range nodes {
			inst := Instance{Filter: f.name, Copy: c, Copies: len(nodes), Node: node}
			ctx := &Context{
				inst:    inst,
				ep:      r.fabric.Endpoint(node),
				inputs:  make(map[string]*StreamReader),
				outputs: make(map[string]*StreamWriter),
			}
			pc := &placedCopy{inst: inst, ctx: ctx}
			copies[f.name] = append(copies[f.name], pc)
			all = append(all, pc)
		}
	}

	// Wire stream endpoints. Metrics are resolved here — once per stream
	// per copy — so Write/Read never touch the registry. The queue-depth
	// gauge is shared across every copy of a destination filter: writers
	// raise it per delivered buffer, readers lower it, so its reading is
	// the filter's total in-flight backlog.
	reg := obs.Default()
	for _, s := range g.streams {
		srcCopies := copies[s.src]
		dstCopies := copies[s.dst]
		sName := fmt.Sprintf("datacutter.stream.%s_to_%s", s.src, s.dst)
		depth := reg.Gauge(fmt.Sprintf("datacutter.filter.%s.queue_depth", s.dst))
		dests := make([]dest, len(dstCopies))
		for c, dc := range dstCopies {
			ch := streamChannel(s.idx, c)
			dests[c] = dest{node: dc.inst.Node, ch: ch}
			rd := &StreamReader{
				name:     fmt.Sprintf("%s.%s->%s.%s", s.src, s.srcPort, s.dst, s.dstPort),
				ep:       dc.ctx.ep,
				ch:       ch,
				writers:  len(srcCopies),
				mBuffers: reg.Counter(sName + ".recv_buffers"),
				mBytes:   reg.Counter(sName + ".recv_bytes"),
				mBlocked: reg.Histogram(sName + ".blocked_recv_ns"),
				mDepth:   depth,
			}
			if supervised {
				rd.abort = &abort
			}
			dc.ctx.inputs[s.dstPort] = rd
		}
		for _, sc := range srcCopies {
			sc.ctx.outputs[s.srcPort] = &StreamWriter{
				name:     fmt.Sprintf("%s.%s->%s.%s", s.src, s.srcPort, s.dst, s.dstPort),
				ep:       sc.ctx.ep,
				policy:   s.policy,
				dests:    dests,
				srcCopy:  sc.inst.Copy,
				mBuffers: reg.Counter(sName + ".sent_buffers"),
				mBytes:   reg.Counter(sName + ".sent_bytes"),
				mBlocked: reg.Histogram(sName + ".blocked_send_ns"),
				mDepth:   depth,
			}
		}
	}

	// Construct filter objects.
	for _, pc := range all {
		idx := g.byName[pc.inst.Filter]
		f, err := g.filters[idx].factory(pc.inst)
		if err != nil {
			return fmt.Errorf("datacutter: constructing %s: %w", pc.inst, err)
		}
		pc.filter = f
	}

	// Phase 1: Init everywhere before any Process starts, so no filter
	// consumes data before its consumers exist.
	errsMu := sync.Mutex{}
	var errs []error
	report := func(pc *placedCopy, stage string, err error) {
		errsMu.Lock()
		errs = append(errs, fmt.Errorf("%s: %s: %w", pc.inst, stage, err))
		errsMu.Unlock()
		if opts.FailFast {
			abort.Store(true)
		}
	}

	var wg sync.WaitGroup
	for _, pc := range all {
		wg.Add(1)
		go func(pc *placedCopy) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					report(pc, "init", fmt.Errorf("panic: %v", rec))
				}
			}()
			if err := pc.filter.Init(pc.ctx); err != nil {
				report(pc, "init", err)
			}
		}(pc)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errors.Join(errs...)
	}

	// Phase 2: Process; each copy closes its outputs when done (success or
	// failure — downstream readers must unblock either way), then
	// finalizes.
	var deadlineHit atomic.Bool
	if opts.Deadline > 0 {
		timer := time.AfterFunc(opts.Deadline, func() {
			deadlineHit.Store(true)
			abort.Store(true)
		})
		defer timer.Stop()
	}
	for _, pc := range all {
		wg.Add(1)
		go func(pc *placedCopy) {
			defer wg.Done()
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						report(pc, "process", fmt.Errorf("panic: %v", rec))
					}
				}()
				if err := pc.filter.Process(pc.ctx); err != nil {
					report(pc, "process", err)
				}
			}()
			for _, w := range pc.ctx.outputs {
				if err := w.Close(); err != nil {
					report(pc, "close", err)
				}
			}
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						report(pc, "finalize", fmt.Errorf("panic: %v", rec))
					}
				}()
				if err := pc.filter.Finalize(pc.ctx); err != nil {
					report(pc, "finalize", err)
				}
			}()
		}(pc)
	}
	wg.Wait()
	if deadlineHit.Load() {
		errs = append(errs, fmt.Errorf("graph ran past %v: %w", opts.Deadline, ErrDeadline))
	}
	return errors.Join(errs...)
}
