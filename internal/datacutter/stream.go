package datacutter

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/obs"
)

// Stream wire format, carried over one fabric channel per (stream,
// destination copy): a 5-byte header {kind byte, tag int32 LE} followed by
// the payload. kindEOS marks an upstream copy's close (its tag carries
// the writer's copy index, so duplicated or re-sent EOS frames are
// idempotent); a reader sees EOF once every upstream writer has closed.
const (
	kindData byte = 0
	kindEOS  byte = 1
)

// ErrAborted is returned by StreamReader.Read when supervised execution
// cancels the graph (a sibling copy failed under FailFast, or the
// graph-wide deadline passed) before this stream reached EOF.
var ErrAborted = errors.New("datacutter: stream aborted")

// eosRetries is how many times Close re-sends an end-of-stream marker
// after a transient (ErrTimeout) send failure. EOS is idempotent on the
// receive side, so re-sending is always safe — and a lost EOS wedges the
// reader, so the budget is generous.
const eosRetries = 5

// dcChannelBase offsets DataCutter stream channels away from the channel
// ranges other services use on the same fabric.
const dcChannelBase cluster.ChannelID = 1 << 16

// maxCopies bounds transparent copies per filter (channel space layout).
const maxCopies = 1024

func streamChannel(streamIdx, destCopy int) cluster.ChannelID {
	return dcChannelBase + cluster.ChannelID(streamIdx*maxCopies+destCopy)
}

func encodeFrame(kind byte, tag int32, data []byte) []byte {
	buf := make([]byte, 5+len(data))
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:5], uint32(tag))
	copy(buf[5:], data)
	return buf
}

func decodeFrame(p []byte) (kind byte, tag int32, data []byte, err error) {
	if len(p) < 5 {
		return 0, 0, nil, fmt.Errorf("datacutter: short stream frame (%d bytes)", len(p))
	}
	return p[0], int32(binary.LittleEndian.Uint32(p[1:5])), p[5:], nil
}

// WritePolicy selects the destination copy (or copies) for each buffer
// written to a stream.
type WritePolicy int

const (
	// RoundRobin cycles buffers across the destination copies.
	RoundRobin WritePolicy = iota
	// Broadcast delivers every buffer to every destination copy.
	Broadcast
	// Directed requires the writer to address a copy explicitly with
	// WriteTo; plain Write is an error. This is how the Ingestion Service
	// scatters declustered blocks to specific back-end nodes.
	Directed
)

func (p WritePolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case Broadcast:
		return "broadcast"
	case Directed:
		return "directed"
	}
	return fmt.Sprintf("WritePolicy(%d)", int(p))
}

// dest is one receiving copy of the downstream filter.
type dest struct {
	node cluster.NodeID
	ch   cluster.ChannelID
}

// StreamWriter is a filter copy's handle on one output stream.
type StreamWriter struct {
	name    string
	ep      cluster.Endpoint
	policy  WritePolicy
	dests   []dest
	srcCopy int // this writer's copy index, carried in EOS frames
	next    int
	closed  bool
	sent    int64

	// Pre-resolved by the runtime at wiring time; nil (no-op) for
	// hand-built writers. mDepth is shared with the stream's readers to
	// approximate in-flight buffers on the destination filter.
	mBuffers *obs.Counter
	mBytes   *obs.Counter
	mBlocked *obs.Histogram // time spent blocked in fabric sends, ns
	mDepth   *obs.Gauge
}

// send is the instrumented fabric send every data write funnels through:
// it charges bytes and blocked time, and raises the destination filter's
// queue-depth gauge (its reader lowers it on delivery).
func (w *StreamWriter) send(d dest, b Buffer) error {
	start := time.Now()
	err := w.ep.Send(d.node, d.ch, encodeFrame(kindData, b.Tag, b.Data))
	w.mBlocked.ObserveSince(start)
	if err == nil {
		w.mBuffers.Inc()
		w.mBytes.Add(int64(len(b.Data)))
		w.mDepth.Add(1)
	}
	return err
}

// Write emits one buffer according to the stream's policy.
func (w *StreamWriter) Write(b Buffer) error {
	if w.closed {
		return fmt.Errorf("datacutter: write on closed stream %s", w.name)
	}
	switch w.policy {
	case RoundRobin:
		d := w.dests[w.next%len(w.dests)]
		w.next++
		w.sent++
		return w.send(d, b)
	case Broadcast:
		for _, d := range w.dests {
			if err := w.send(d, b); err != nil {
				return err
			}
			w.sent++
		}
		return nil
	case Directed:
		return fmt.Errorf("datacutter: stream %s is directed; use WriteTo", w.name)
	}
	return fmt.Errorf("datacutter: stream %s has unknown policy", w.name)
}

// WriteTo emits one buffer to a specific destination copy. Valid for any
// policy; required for Directed streams.
func (w *StreamWriter) WriteTo(copy int, b Buffer) error {
	if w.closed {
		return fmt.Errorf("datacutter: write on closed stream %s", w.name)
	}
	if copy < 0 || copy >= len(w.dests) {
		return fmt.Errorf("datacutter: stream %s: destination copy %d out of range [0,%d)", w.name, copy, len(w.dests))
	}
	d := w.dests[copy]
	w.sent++
	return w.send(d, b)
}

// Fanout returns the number of destination copies.
func (w *StreamWriter) Fanout() int { return len(w.dests) }

// Sent returns the number of buffers sent so far (after broadcast
// expansion).
func (w *StreamWriter) Sent() int64 { return w.sent }

// Close signals end-of-stream to every destination copy. The runtime
// closes any writer the filter did not close itself. Transient send
// failures are retried: EOS frames carry the writer's copy index, so a
// destination that already saw one ignores the duplicate.
func (w *StreamWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var firstErr error
	for _, d := range w.dests {
		var err error
		for attempt := 0; attempt <= eosRetries; attempt++ {
			err = w.ep.Send(d.node, d.ch, encodeFrame(kindEOS, int32(w.srcCopy), nil))
			if err == nil || !errors.Is(err, cluster.ErrTimeout) {
				break
			}
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// StreamReader is a filter copy's handle on one input stream.
type StreamReader struct {
	name    string
	ep      cluster.Endpoint
	ch      cluster.ChannelID
	writers int            // total upstream copies
	eos     map[int32]bool // upstream copies that have closed
	abort   *atomic.Bool   // set by supervised runtimes; nil otherwise
	recvd   int64

	// Pre-resolved by the runtime at wiring time; nil (no-op) for
	// hand-built readers. mDepth mirrors the writers' gauge.
	mBuffers *obs.Counter
	mBytes   *obs.Counter
	mBlocked *obs.Histogram // time spent blocked waiting for a frame, ns
	mDepth   *obs.Gauge
}

// Read blocks for the next buffer. It returns io.EOF once every upstream
// writer has closed the stream, and ErrAborted if the supervising
// runtime cancels the graph first.
func (r *StreamReader) Read() (Buffer, error) {
	for len(r.eos) < r.writers {
		msg, err := r.recv()
		if err != nil {
			return Buffer{}, err
		}
		kind, tag, data, err := decodeFrame(msg.Payload)
		if err != nil {
			return Buffer{}, err
		}
		if kind == kindEOS {
			if r.eos == nil {
				r.eos = make(map[int32]bool)
			}
			r.eos[tag] = true
			continue
		}
		r.recvd++
		r.mBuffers.Inc()
		r.mBytes.Add(int64(len(data)))
		r.mDepth.Add(-1)
		return Buffer{Tag: tag, Data: data}, nil
	}
	return Buffer{}, io.EOF
}

// recv blocks for the next frame. Under supervision it polls, so an
// abort (deadline or sibling failure) unsticks a reader whose upstream
// died without closing the stream — the failure-propagation path that
// keeps one lost filter copy from wedging the whole graph.
func (r *StreamReader) recv() (cluster.Message, error) {
	start := time.Now()
	defer r.mBlocked.ObserveSince(start)
	if r.abort == nil {
		return r.ep.Recv(r.ch)
	}
	wait := 50 * time.Microsecond
	for {
		msg, ok, err := r.ep.TryRecv(r.ch)
		if err != nil {
			return cluster.Message{}, err
		}
		if ok {
			return msg, nil
		}
		if r.abort.Load() {
			return cluster.Message{}, fmt.Errorf("stream %s: %w", r.name, ErrAborted)
		}
		time.Sleep(wait)
		if wait < 2*time.Millisecond {
			wait *= 2
		}
	}
}

// Received returns the number of data buffers read so far.
func (r *StreamReader) Received() int64 { return r.recvd }
