package datacutter

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"mssg/internal/cluster"
)

// crashingFabric wraps an in-process fabric so node 0 dies after its
// first two sends — the stream it feeds is left half-open (no EOS).
func crashingFabric(seed int64) cluster.Fabric {
	return cluster.NewFaulty(cluster.NewInProc(2, 0), cluster.Plan{
		Seed:    seed,
		Crashes: []cluster.Crash{{Node: 0, AfterSends: 2}},
	})
}

// drain reads its input to EOF.
func drain() Factory {
	return func(in Instance) (Filter, error) {
		return &testFilter{process: func(ctx *Context) error {
			r, err := ctx.Input("in")
			if err != nil {
				return err
			}
			for {
				if _, err := r.Read(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		}}, nil
	}
}

// TestRunWithDeadline pins the graph-wide deadline: a graph wedged on a
// half-open stream (its source's node crashed before sending EOS)
// returns ErrDeadline instead of blocking forever, and the blocked
// reader reports ErrAborted. FailFast is off, so the deadline is the
// only thing that can unstick it.
func TestRunWithDeadline(t *testing.T) {
	f := crashingFabric(5)
	defer f.Close()
	g := NewGraph()
	if err := g.AddFilter("src", producer(10), PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", drain(), PlaceOn(1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- NewRuntime(f).RunWith(g, RunOptions{Deadline: 100 * time.Millisecond})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("RunWith = %v, want ErrDeadline", err)
		}
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("RunWith = %v, want the blocked reader's ErrAborted joined in", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunWith did not return after its deadline — the graph wedged")
	}
}

// TestRunWithFailFast pins failure propagation without a deadline: the
// source's node crashes mid-run (so its EOS never arrives), and FailFast
// aborts the sink blocked on the half-open stream. Without supervision
// this exact graph blocks forever — the reader waits for an EOS from a
// dead node.
func TestRunWithFailFast(t *testing.T) {
	f := crashingFabric(3)
	defer f.Close()

	g := NewGraph()
	if err := g.AddFilter("src", producer(10), PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", drain(), PlaceOn(1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- NewRuntime(f).RunWith(g, RunOptions{FailFast: true})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, cluster.ErrNodeDown) {
			t.Fatalf("RunWith = %v, want the source's ErrNodeDown", err)
		}
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("RunWith = %v, want ErrAborted from the unstuck sink", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("FailFast did not unstick the sink blocked on the dead node's stream")
	}
}

// TestSupervisedCleanRunUnchanged pins that supervision is free when
// nothing fails: a healthy graph under deadline+failfast completes with
// the same results as an unsupervised run.
func TestSupervisedCleanRunUnchanged(t *testing.T) {
	f := newFabric(t, 3)
	g := NewGraph()
	var mu sync.Mutex
	got := map[int][]int32{}
	if err := g.AddFilter("src", producer(20), PlaceOn(0)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFilter("dst", collector(&mu, got), PlaceCopies(2)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "out", "dst", "in", RoundRobin); err != nil {
		t.Fatal(err)
	}
	err := NewRuntime(f).RunWith(g, RunOptions{Deadline: 30 * time.Second, FailFast: true})
	if err != nil {
		t.Fatalf("supervised clean run: %v", err)
	}
	total := 0
	for _, tags := range got {
		total += len(tags)
	}
	if total != 20 {
		t.Fatalf("supervised run delivered %d of 20 buffers", total)
	}
}

// TestDuplicateEOSIgnored pins the EOS idempotency that ship retries and
// fabric-level duplication rely on: a reader that sees the same writer's
// EOS twice still waits for the other writer's data.
func TestDuplicateEOSIgnored(t *testing.T) {
	f := newFabric(t, 1)
	ep := f.Endpoint(0)
	r := &StreamReader{name: "dup-eos", ep: ep, ch: 7, writers: 2}

	// Writer 0 closes twice (a duplicated EOS), then writer 1 sends one
	// buffer and closes.
	for i := 0; i < 2; i++ {
		if err := ep.Send(0, 7, encodeFrame(kindEOS, 0, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ep.Send(0, 7, encodeFrame(kindData, 99, []byte("late data"))); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(0, 7, encodeFrame(kindEOS, 1, nil)); err != nil {
		t.Fatal(err)
	}

	buf, err := r.Read()
	if err != nil {
		t.Fatalf("Read after duplicate EOS = %v, want the late buffer", err)
	}
	if buf.Tag != 99 {
		t.Fatalf("Read tag = %d, want 99", buf.Tag)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("Read = %v, want EOF after both writers closed", err)
	}
}
