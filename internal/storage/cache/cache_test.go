package cache

import (
	"sync"
	"testing"

	"mssg/internal/storage/blockio"
)

func newStore(t *testing.T, blockSize int) *blockio.Store {
	t.Helper()
	s, err := blockio.Open(t.TempDir(), "c", blockSize, int64(blockSize)*64)
	if err != nil {
		t.Fatalf("blockio.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestGetLoadsAndCaches(t *testing.T) {
	s := newStore(t, 128)
	c := New(1 << 20)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	h, err := c.Get(0, 3)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	copy(h.Data(), "hello")
	h.MarkDirty()
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	h2, err := c.Get(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(h2.Data()[:5]) != "hello" {
		t.Fatalf("cached data lost: %q", h2.Data()[:5])
	}
	h2.Release()
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 hit", st)
	}
	// Nothing written back yet (write-back policy).
	if cnt := s.Counters(); cnt.BlockWrites != 0 {
		t.Fatalf("premature write-back: %+v", cnt)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if cnt := s.Counters(); cnt.BlockWrites != 1 {
		t.Fatalf("Flush wrote %d blocks, want 1", cnt.BlockWrites)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	s := newStore(t, 128)
	c := New(256) // room for exactly 2 blocks
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		h, err := c.Get(0, i)
		if err != nil {
			t.Fatal(err)
		}
		h.Data()[0] = byte(i + 1)
		h.MarkDirty()
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions < 2 {
		t.Fatalf("evictions = %d, want >= 2", st.Evictions)
	}
	if st.WriteBacks < 2 {
		t.Fatalf("write-backs = %d, want >= 2", st.WriteBacks)
	}
	// Every block's data must be durable after a flush.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for i := int64(0); i < 4; i++ {
		if err := s.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("block %d lost its data: %d", i, buf[0])
		}
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	s := newStore(t, 128)
	c := New(128) // one block budget
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	pinned, err := c.Get(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pinned.Data()[0] = 42
	pinned.MarkDirty()
	// Touch other blocks while the first is pinned.
	for i := int64(1); i < 5; i++ {
		h, err := c.Get(0, i)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// The pinned block must still hold its data.
	if pinned.Data()[0] != 42 {
		t.Fatal("pinned block was evicted/overwritten")
	}
	if err := pinned.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBudgetDropsOnRelease(t *testing.T) {
	s := newStore(t, 128)
	c := New(0)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	h, err := c.Get(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	h.Data()[0] = 9
	h.MarkDirty()
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 0 {
		t.Fatalf("zero-budget cache retains %d bytes", c.Size())
	}
	// Data must have been written back on release.
	buf := make([]byte, 128)
	if err := s.ReadBlock(7, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatal("zero-budget release lost dirty data")
	}
	// Second access is a fresh miss.
	h2, err := c.Get(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits 2 misses", st)
	}
}

func TestMultipleSpacesDifferentBlockSizes(t *testing.T) {
	s1 := newStore(t, 128)
	s2 := newStore(t, 512)
	c := New(1 << 20)
	if err := c.AttachSpace(1, s1); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachSpace(2, s2); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachSpace(1, s1); err == nil {
		t.Fatal("duplicate space attach accepted")
	}
	h1, err := c.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Get(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(h1.Data()) != 128 || len(h2.Data()) != 512 {
		t.Fatalf("block sizes %d/%d, want 128/512", len(h1.Data()), len(h2.Data()))
	}
	h1.Release()
	h2.Release()
	if _, err := c.Get(9, 0); err == nil {
		t.Fatal("unattached space accepted")
	}
}

func TestDoubleReleaseRejected(t *testing.T) {
	s := newStore(t, 128)
	c := New(1 << 20)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	h, err := c.Get(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newStore(t, 128)
	c := New(512)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h, err := c.Get(0, int64(i%10))
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				_ = h.Data()[0]
				if err := h.Release(); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLRUOrder(t *testing.T) {
	s := newStore(t, 128)
	c := New(256) // 2 blocks
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	get := func(i int64) {
		h, err := c.Get(0, i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		h.Release()
	}
	get(0)
	get(1)
	get(0) // 0 is now most recent; 1 is LRU
	get(2) // must evict 1, not 0
	before := c.Stats().Misses
	get(0) // should still be resident
	if c.Stats().Misses != before {
		t.Fatal("LRU evicted the most-recently-used block")
	}
}
