package cache

import (
	"fmt"
	"testing"
)

// memStore records writes so tests can observe write-back behaviour.
type memStore struct {
	blockSize int
	blocks    map[int64][]byte
	writes    int
}

func newMemStore(bs int) *memStore { return &memStore{blockSize: bs, blocks: make(map[int64][]byte)} }

func (m *memStore) BlockSize() int { return m.blockSize }

func (m *memStore) ReadBlock(idx int64, buf []byte) error {
	if b, ok := m.blocks[idx]; ok {
		copy(buf, b)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

func (m *memStore) WriteBlock(idx int64, buf []byte) error {
	m.blocks[idx] = append([]byte(nil), buf...)
	m.writes++
	return nil
}

func dirtyBlock(t *testing.T, c *BlockCache, space uint32, idx int64, fill byte) {
	t.Helper()
	h, err := c.Get(space, idx)
	if err != nil {
		t.Fatal(err)
	}
	h.Data()[0] = fill
	h.MarkDirty()
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestNoStealHoldsDirtyBlocks(t *testing.T) {
	st := newMemStore(64)
	c := New(2 * 64) // room for two blocks
	c.SetNoSteal(true)
	if err := c.AttachSpace(0, st); err != nil {
		t.Fatal(err)
	}
	// Dirty four blocks: budget is exceeded, but none may be written back.
	for i := int64(0); i < 4; i++ {
		dirtyBlock(t, c, 0, i, byte(i+1))
	}
	if st.writes != 0 {
		t.Fatalf("no-steal cache wrote back %d dirty blocks before Flush", st.writes)
	}
	if c.Size() != 4*64 {
		t.Fatalf("resident %d bytes, want overshoot to 256", c.Size())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.writes != 4 {
		t.Fatalf("Flush wrote %d blocks, want 4", st.writes)
	}
	// After Flush the entries are clean and evictable again.
	dirtyBlock(t, c, 0, 9, 0xFF)
	if c.Size() > 3*64 {
		t.Fatalf("clean blocks not evicted after flush: resident %d", c.Size())
	}
}

func TestNoStealZeroBudget(t *testing.T) {
	st := newMemStore(64)
	c := New(0) // cache disabled
	c.SetNoSteal(true)
	if err := c.AttachSpace(0, st); err != nil {
		t.Fatal(err)
	}
	dirtyBlock(t, c, 0, 7, 0xAB)
	if st.writes != 0 {
		t.Fatal("zero-budget no-steal cache wrote back a dirty block on release")
	}
	// The dirty block must still be readable (resident), not silently lost.
	h, err := c.Get(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if h.Data()[0] != 0xAB {
		t.Fatalf("dirty block content lost: %x", h.Data()[0])
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.writes != 1 {
		t.Fatalf("Flush wrote %d blocks, want 1", st.writes)
	}
}

func TestDirtyIteratesInOrder(t *testing.T) {
	st0, st1 := newMemStore(64), newMemStore(64)
	c := New(1 << 20)
	c.SetNoSteal(true)
	c.AttachSpace(0, st0)
	c.AttachSpace(1, st1)
	dirtyBlock(t, c, 1, 5, 1)
	dirtyBlock(t, c, 0, 9, 2)
	dirtyBlock(t, c, 0, 2, 3)
	// A clean block must not appear.
	h, err := c.Get(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()

	var got []string
	err = c.Dirty(func(space uint32, block int64, data []byte) error {
		got = append(got, fmt.Sprintf("%d/%d", space, block))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0/2", "0/9", "1/5"}
	if len(got) != len(want) {
		t.Fatalf("Dirty visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dirty visited %v, want %v", got, want)
		}
	}
}
