package cache

import (
	"math/rand"
	"testing"
)

// get performs a pin/release access and fails the test on error.
func get(t *testing.T, c *BlockCache, space uint32, block int64) {
	t.Helper()
	h, err := c.Get(space, block)
	if err != nil {
		t.Fatalf("Get(%d,%d): %v", space, block, err)
	}
	if err := h.Release(); err != nil {
		t.Fatalf("Release(%d,%d): %v", space, block, err)
	}
}

func TestSLRUPromotionOnSecondTouch(t *testing.T) {
	s := newStore(t, 128)
	c := NewWithPolicy(8*128, PolicySLRU)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	get(t, c, 0, 1) // miss → probation
	st := c.Stats()
	if st.ProbationBytes != 128 || st.ProtectedBytes != 0 {
		t.Fatalf("after first touch: %+v", st)
	}
	get(t, c, 0, 1) // hit → promoted
	st = c.Stats()
	if st.Promotions != 1 || st.ProtectedBytes != 128 || st.ProbationBytes != 0 {
		t.Fatalf("after second touch: %+v", st)
	}
}

func TestSLRUProtectedCapDemotes(t *testing.T) {
	s := newStore(t, 128)
	// 4-block budget → protected cap is 3 blocks.
	c := NewWithPolicy(4*128, PolicySLRU)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		get(t, c, 0, i)
		get(t, c, 0, i) // promote each
	}
	st := c.Stats()
	if st.ProtectedBytes != 3*128 {
		t.Fatalf("protected bytes = %d, want %d (cap)", st.ProtectedBytes, 3*128)
	}
	if st.Demotions == 0 {
		t.Fatalf("expected demotions, got %+v", st)
	}
}

func TestSLRUGhostReadmission(t *testing.T) {
	s := newStore(t, 128)
	c := NewWithPolicy(2*128, PolicySLRU)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	get(t, c, 0, 1) // probation
	get(t, c, 0, 2)
	get(t, c, 0, 3) // evicts 1 → ghost (admission reject)
	st := c.Stats()
	if st.AdmissionRejects != 1 {
		t.Fatalf("admission rejects = %d, want 1", st.AdmissionRejects)
	}
	get(t, c, 0, 1) // ghost hit → straight to protected
	st = c.Stats()
	if st.GhostHits != 1 {
		t.Fatalf("ghost hits = %d, want 1", st.GhostHits)
	}
	if st.ProtectedBytes != 128 {
		t.Fatalf("readmitted block not protected: %+v", st)
	}
}

// TestSLRUScanResistance is the satellite property: a sequential scan of
// 10× cache capacity, interleaved with re-references to a hot working
// set, must not displace the hot set under PolicySLRU — while the same
// trace under plain LRU thrashes it. "Bounded fraction" here is ≤ 1/4 of
// the hot set (in practice zero; the bound leaves slack for policy
// tuning).
func TestSLRUScanResistance(t *testing.T) {
	const (
		blockSize = 128
		capBlocks = 16
		hotBlocks = 8 // fits the 12-block protected segment
		scanLen   = 10 * capBlocks
	)
	run := func(policy Policy) (hotMisses int) {
		s := newStore(t, blockSize)
		c := NewWithPolicy(capBlocks*blockSize, policy)
		if err := c.AttachSpace(0, s); err != nil {
			t.Fatal(err)
		}
		// Warm the hot set: two touches each so SLRU promotes them.
		for i := int64(0); i < hotBlocks; i++ {
			get(t, c, 0, i)
			get(t, c, 0, i)
		}
		// Scan 10× capacity of cold blocks, re-referencing one hot block
		// per four scan reads (round-robin).
		scan := int64(1000)
		for i := 0; i < scanLen; i++ {
			get(t, c, 0, scan)
			scan++
			if i%4 == 3 {
				get(t, c, 0, int64((i/4)%hotBlocks))
			}
		}
		// Count how many hot blocks the scan displaced.
		before := c.Stats().Misses
		for i := int64(0); i < hotBlocks; i++ {
			get(t, c, 0, i)
		}
		return int(c.Stats().Misses - before)
	}
	if m := run(PolicySLRU); m > hotBlocks/4 {
		t.Fatalf("SLRU: scan displaced %d/%d hot blocks, want <= %d", m, hotBlocks, hotBlocks/4)
	}
	// Sanity: the trace is genuinely adversarial — plain LRU loses most
	// of the hot set on it.
	if m := run(PolicyLRU); m < hotBlocks/2 {
		t.Fatalf("LRU control: scan displaced only %d/%d hot blocks — trace not adversarial", m, hotBlocks)
	}
}

func TestSharedSpaceLifecycle(t *testing.T) {
	s1 := newStore(t, 128)
	s2 := newStore(t, 128)
	c := NewWithPolicy(1<<20, PolicySLRU)
	sp1, err := c.AddSpace(s1)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := c.AddSpace(s2)
	if err != nil {
		t.Fatal(err)
	}
	if sp1 == sp2 {
		t.Fatalf("AddSpace returned duplicate id %d", sp1)
	}
	dirty := func(sp uint32, b int64, v byte) {
		h, err := c.Get(sp, b)
		if err != nil {
			t.Fatal(err)
		}
		h.Data()[0] = v
		h.MarkDirty()
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
	dirty(sp1, 0, 11)
	dirty(sp2, 0, 22)
	// FlushSpace must only touch its own space.
	if err := c.FlushSpace(sp1); err != nil {
		t.Fatal(err)
	}
	if cnt := s1.Counters(); cnt.BlockWrites != 1 {
		t.Fatalf("s1 writes = %d, want 1", cnt.BlockWrites)
	}
	if cnt := s2.Counters(); cnt.BlockWrites != 0 {
		t.Fatalf("FlushSpace(%d) wrote co-tenant blocks: %+v", sp1, s2.Counters())
	}
	// RemoveSpace writes back the co-tenant's dirty block and detaches.
	if err := c.RemoveSpace(sp2); err != nil {
		t.Fatal(err)
	}
	if cnt := s2.Counters(); cnt.BlockWrites != 1 {
		t.Fatalf("RemoveSpace lost dirty data: %+v", cnt)
	}
	if _, err := c.Get(sp2, 0); err == nil {
		t.Fatal("Get on removed space accepted")
	}
	// A pinned entry blocks removal.
	h, err := c.Get(sp1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveSpace(sp1); err == nil {
		t.Fatal("RemoveSpace succeeded with pinned entry")
	}
	h.Release()
	if err := c.RemoveSpace(sp1); err != nil {
		t.Fatal(err)
	}
	// AttachSpace ids and AddSpace ids must not collide.
	if err := c.AttachSpace(7, s1); err != nil {
		t.Fatal(err)
	}
	sp3, err := c.AddSpace(s2)
	if err != nil {
		t.Fatal(err)
	}
	if sp3 <= 7 {
		t.Fatalf("AddSpace reused id %d below attached id 7", sp3)
	}
}

// slruModel is an independent reimplementation of the SLRU policy used
// as the reference for the randomized-trace oracle. Lists are MRU-first
// slices of block ids; all blocks are the same size, budgets are in
// blocks.
type slruModel struct {
	capBlocks, protCapBytes, blockSize int
	prob, prot                         []int64 // index 0 = MRU
	promoted                           map[int64]bool
	ghost                              []int64 // FIFO, index 0 = oldest
	hits, misses, evictions            int64
	promotions, ghostHits, rejects     int64
}

func (m *slruModel) resident(b int64) (seg int, ok bool) {
	for _, x := range m.prob {
		if x == b {
			return 0, true
		}
	}
	for _, x := range m.prot {
		if x == b {
			return 1, true
		}
	}
	return 0, false
}

func remove(l []int64, b int64) []int64 {
	for i, x := range l {
		if x == b {
			return append(append([]int64{}, l[:i]...), l[i+1:]...)
		}
	}
	return l
}

func (m *slruModel) inGhost(b int64) bool {
	for _, x := range m.ghost {
		if x == b {
			return true
		}
	}
	return false
}

func (m *slruModel) rebalance() {
	for len(m.prot)*m.blockSize > m.protCapBytes {
		tail := m.prot[len(m.prot)-1]
		m.prot = m.prot[:len(m.prot)-1]
		m.prob = append([]int64{tail}, m.prob...)
	}
}

func (m *slruModel) ghostRemember(b int64) {
	if m.inGhost(b) {
		return
	}
	m.ghost = append(m.ghost, b)
	limit := len(m.prob) + len(m.prot)
	if limit < ghostMin {
		limit = ghostMin
	}
	for len(m.ghost) > limit {
		m.ghost = m.ghost[1:]
	}
}

func (m *slruModel) get(b int64) {
	if seg, ok := m.resident(b); ok {
		m.hits++
		if seg == 0 {
			m.prob = remove(m.prob, b)
			m.prot = append([]int64{b}, m.prot...)
			m.promoted[b] = true
			m.promotions++
			m.rebalance()
		} else {
			m.prot = remove(m.prot, b)
			m.prot = append([]int64{b}, m.prot...)
		}
		return
	}
	m.misses++
	if m.inGhost(b) {
		m.ghost = remove(m.ghost, b)
		m.prot = append([]int64{b}, m.prot...)
		m.promoted[b] = true
		m.ghostHits++
		m.rebalance()
	} else {
		m.prob = append([]int64{b}, m.prob...)
		m.promoted[b] = false
	}
	// Evict; the just-inserted block is pinned in the real cache and is
	// never chosen (it is at an MRU position, so tail-first scanning
	// only reaches it when it is the sole entry — guard anyway).
	for len(m.prob)+len(m.prot) > m.capBlocks {
		var victim int64
		if n := len(m.prob); n > 0 && !(n == 1 && m.prob[0] == b && len(m.prot) == 0) {
			victim = m.prob[n-1]
			if victim == b {
				victim = m.prob[n-2]
			}
			m.prob = remove(m.prob, victim)
		} else if n := len(m.prot); n > 0 {
			victim = m.prot[n-1]
			if victim == b {
				if n == 1 {
					return
				}
				victim = m.prot[n-2]
			}
			m.prot = remove(m.prot, victim)
		} else {
			return
		}
		m.evictions++
		if !m.promoted[victim] {
			m.rejects++
			m.ghostRemember(victim)
		}
		delete(m.promoted, victim)
	}
}

// listOrder reads a cache list MRU→LRU.
func listOrder(l *list) []int64 {
	var out []int64
	for e := l.head.next; e != l.tail; e = e.next {
		out = append(out, e.key.block)
	}
	return out
}

func equalOrder(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSLRUOracleRandomTraces drives 1000 independent random traces
// through the SLRU cache and a reference model in lockstep, comparing
// the exact list orders, ghost membership, and policy counters after
// every access.
func TestSLRUOracleRandomTraces(t *testing.T) {
	const (
		blockSize = 64
		capBlocks = 6
		traces    = 1000
		opsPer    = 200
	)
	for trace := 0; trace < traces; trace++ {
		rng := rand.New(rand.NewSource(int64(trace) + 1))
		s := newStore(t, blockSize)
		c := NewWithPolicy(capBlocks*blockSize, PolicySLRU)
		if err := c.AttachSpace(0, s); err != nil {
			t.Fatal(err)
		}
		m := &slruModel{
			capBlocks:    capBlocks,
			protCapBytes: int(c.protectedCap()),
			blockSize:    blockSize,
			promoted:     make(map[int64]bool),
		}
		// Key space ~4× capacity with a skew toward a small hot set, so
		// traces exercise promotion, ghost re-admission, and rejection.
		for op := 0; op < opsPer; op++ {
			var b int64
			if rng.Intn(2) == 0 {
				b = int64(rng.Intn(4)) // hot
			} else {
				b = int64(rng.Intn(4 * capBlocks))
			}
			get(t, c, 0, b)
			m.get(b)
			if !equalOrder(listOrder(c.prob), m.prob) {
				t.Fatalf("trace %d op %d (block %d): probation %v, model %v",
					trace, op, b, listOrder(c.prob), m.prob)
			}
			if !equalOrder(listOrder(c.prot), m.prot) {
				t.Fatalf("trace %d op %d (block %d): protected %v, model %v",
					trace, op, b, listOrder(c.prot), m.prot)
			}
			if len(c.ghost) != len(m.ghost) {
				t.Fatalf("trace %d op %d: ghost size %d, model %d",
					trace, op, len(c.ghost), len(m.ghost))
			}
			for _, g := range m.ghost {
				if _, ok := c.ghost[key{space: 0, block: g}]; !ok {
					t.Fatalf("trace %d op %d: model ghost %d missing from cache", trace, op, g)
				}
			}
		}
		st := c.Stats()
		if st.Hits != m.hits || st.Misses != m.misses || st.Evictions != m.evictions ||
			st.Promotions != m.promotions || st.GhostHits != m.ghostHits ||
			st.AdmissionRejects != m.rejects {
			t.Fatalf("trace %d counters: cache %+v; model hits=%d misses=%d ev=%d promo=%d ghost=%d rej=%d",
				trace, st, m.hits, m.misses, m.evictions, m.promotions, m.ghostHits, m.rejects)
		}
		s.Close()
	}
}
