package cache

import (
	"sync"
	"testing"
)

// TestConcurrentGetStats hammers Get/MarkDirty/Release from many
// goroutines while another goroutine snapshots Stats, under -race. It
// then checks the invariants the under-one-lock snapshot guarantees:
// every observed snapshot has Pinned bounded by the worker count and
// Resident bounded by capacity-plus-pinned-overshoot, and after all
// handles are released the final snapshot reports Pinned == 0 with
// hits+misses equal to the number of Gets issued.
func TestConcurrentGetStats(t *testing.T) {
	const (
		blockSize = 128
		workers   = 8
		iters     = 400
		blocks    = 32
	)
	s := newStore(t, blockSize)
	// Small budget (4 blocks) so eviction and reload churn constantly.
	c := New(4 * blockSize)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := c.Stats()
			if st.Pinned < 0 || st.Pinned > workers {
				t.Errorf("snapshot Pinned = %d with %d workers", st.Pinned, workers)
				return
			}
			if st.Resident < 0 {
				t.Errorf("snapshot Resident = %d", st.Resident)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				block := int64((w*31 + i) % blocks)
				h, err := c.Get(0, block)
				if err != nil {
					t.Errorf("Get(%d): %v", block, err)
					return
				}
				if i%3 == 0 {
					h.Data()[0] = byte(w)
					h.MarkDirty()
				}
				if err := h.Release(); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-statsDone

	st := c.Stats()
	if st.Pinned != 0 {
		t.Fatalf("all handles released but Pinned = %d", st.Pinned)
	}
	if got, want := st.Hits+st.Misses, int64(workers*iters); got != want {
		t.Fatalf("hits+misses = %d, want %d", got, want)
	}
	if st.Resident != c.Size() {
		t.Fatalf("Stats.Resident = %d, Size() = %d", st.Resident, c.Size())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}
