package cache

import (
	"sync"
	"testing"

	"mssg/internal/obs"
)

// TestConcurrentGetStats hammers Get/MarkDirty/Release from many
// goroutines while another goroutine snapshots Stats, under -race. It
// then checks the invariants the under-one-lock snapshot guarantees:
// every observed snapshot has Pinned bounded by the worker count and
// Resident bounded by capacity-plus-pinned-overshoot, and after all
// handles are released the final snapshot reports Pinned == 0 with
// hits+misses equal to the number of Gets issued.
func TestConcurrentGetStats(t *testing.T) {
	const (
		blockSize = 128
		workers   = 8
		iters     = 400
		blocks    = 32
	)
	s := newStore(t, blockSize)
	// Small budget (4 blocks) so eviction and reload churn constantly.
	c := New(4 * blockSize)
	if err := c.AttachSpace(0, s); err != nil {
		t.Fatal(err)
	}
	// Private registry so this test's mirror assertions are isolated.
	reg := obs.NewRegistry()
	c.EnableMetrics(reg, "racetest")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := c.Stats()
			if st.Pinned < 0 || st.Pinned > workers {
				t.Errorf("snapshot Pinned = %d with %d workers", st.Pinned, workers)
				return
			}
			if st.Resident < 0 {
				t.Errorf("snapshot Resident = %d", st.Resident)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				block := int64((w*31 + i) % blocks)
				h, err := c.Get(0, block)
				if err != nil {
					t.Errorf("Get(%d): %v", block, err)
					return
				}
				if i%3 == 0 {
					// Two workers may legitimately pin the same block at
					// once, so each writes its own word-aligned offset:
					// concurrent mutation of one byte through two handles
					// would be a caller-side data race, not a cache bug.
					h.Data()[w*8] = byte(i)
					h.MarkDirty()
				}
				if err := h.Release(); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-statsDone

	st := c.Stats()
	if st.Pinned != 0 {
		t.Fatalf("all handles released but Pinned = %d", st.Pinned)
	}
	if got, want := st.Hits+st.Misses, int64(workers*iters); got != want {
		t.Fatalf("hits+misses = %d, want %d", got, want)
	}
	if st.Resident != c.Size() {
		t.Fatalf("Stats.Resident = %d, Size() = %d", st.Resident, c.Size())
	}
	// 32 working-set blocks against a 4-block budget must have churned.
	if st.Evictions == 0 {
		t.Fatal("expected evictions under a 4-block budget")
	}
	// The obs mirror must agree exactly with the under-lock counters.
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"cache.racetest.hits":       st.Hits,
		"cache.racetest.misses":     st.Misses,
		"cache.racetest.evictions":  st.Evictions,
		"cache.racetest.writebacks": st.WriteBacks,
	} {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}
