// Package cache implements grDB's block cache component (paper §3.4.1): a
// byte-budgeted, write-back block cache over one or more block stores
// ("spaces" — grDB registers one space per storage level, since levels
// have different block sizes).
//
// Two replacement policies are available:
//
//   - PolicyLRU (the default, New): one recency list, exactly the paper's
//     per-instance cache.
//   - PolicySLRU (NewWithPolicy): a scan-resistant segmented LRU in the
//     2Q family. New blocks are admitted to a probationary segment; only
//     a re-reference promotes a block into the protected segment (capped
//     at protectedFraction of the budget), and a ghost list of recently
//     rejected keys lets a block whose reuse distance slightly exceeds
//     probation re-enter directly into the protected segment. A
//     StreamDB-style sequential scan touches every block exactly once,
//     so its blocks live and die in probation and can never displace a
//     concurrently re-referenced working set — the property the shared
//     cross-query cache mode depends on (DESIGN.md §13).
//
// Entries are pinned while a caller holds a Handle; pinned entries are
// never evicted. With a zero byte budget every access misses and unpinned
// entries are written back and dropped immediately, which is exactly the
// "cache disabled" configuration of the paper's Figure 5.2 experiment.
package cache

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mssg/internal/obs"
)

// Store is the backing storage for one space. *blockio.Store satisfies it.
type Store interface {
	BlockSize() int
	ReadBlock(idx int64, buf []byte) error
	WriteBlock(idx int64, buf []byte) error
}

// Policy selects the replacement policy of a BlockCache.
type Policy int

const (
	// PolicyLRU is a single recency list (the historical behaviour).
	PolicyLRU Policy = iota
	// PolicySLRU is the scan-resistant segmented LRU described in the
	// package comment.
	PolicySLRU
)

func (p Policy) String() string {
	if p == PolicySLRU {
		return "slru"
	}
	return "lru"
}

// protectedFraction is the share of the byte budget the protected
// segment may occupy under PolicySLRU (the classic SLRU split).
const (
	protectedNum = 3
	protectedDen = 4
)

// ghostMin is the minimum ghost-list length (entries, not bytes); the
// ghost list otherwise tracks the resident entry count.
const ghostMin = 32

// Stats counts cache activity since creation, plus an instantaneous
// view of the pin/residency state. The whole struct is snapshotted
// under the same mutex that guards pin updates, so the fields form one
// consistent cut: Pinned can never exceed the number of resident
// entries, and a caller that has released every handle always observes
// Pinned == 0.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64
	// Promotions counts probation→protected moves (PolicySLRU only): a
	// resident block re-referenced while on probation.
	Promotions int64
	// Demotions counts protected→probation moves made to keep the
	// protected segment under its cap (PolicySLRU only).
	Demotions int64
	// GhostHits counts misses whose key was on the ghost list and were
	// therefore admitted directly to the protected segment (PolicySLRU
	// only).
	GhostHits int64
	// AdmissionRejects counts blocks evicted from probation without ever
	// being promoted (PolicySLRU only) — the policy declined to admit
	// them to the protected set. A sequential scan shows up here, not in
	// Evictions of the working set.
	AdmissionRejects int64
	// Pinned is the number of entries with at least one outstanding
	// Handle at snapshot time.
	Pinned int64
	// Resident is the resident byte count at snapshot time (same value
	// as Size).
	Resident int64
	// ProtectedBytes / ProbationBytes split Resident by segment at
	// snapshot time (PolicyLRU keeps everything in probation).
	ProtectedBytes int64
	ProbationBytes int64
}

type key struct {
	space uint32
	block int64
}

// segment identifies which recency list an entry lives on.
type segment int8

const (
	segProbation segment = iota
	segProtected
)

type entry struct {
	key   key
	buf   []byte
	dirty bool
	pins  int
	seg   segment
	// promoted records whether the entry ever reached the protected
	// segment; an unpromoted probation eviction is an admission reject.
	promoted bool
	// LRU list links (nil sentinels at list ends).
	prev, next *entry
}

// list is one doubly linked recency list with sentinel head (most
// recent) and tail.
type list struct {
	head, tail *entry
	bytes      int64
}

func newList() *list {
	l := &list{head: &entry{}, tail: &entry{}}
	l.head.next = l.tail
	l.tail.prev = l.head
	return l
}

func (l *list) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	l.bytes -= int64(len(e.buf))
}

func (l *list) pushFront(e *entry) {
	e.next = l.head.next
	e.prev = l.head
	l.head.next.prev = e
	l.head.next = e
	l.bytes += int64(len(e.buf))
}

// BlockCache is a write-back block cache (see the package comment for
// the policies).
type BlockCache struct {
	mu       sync.Mutex
	policy   Policy
	capacity int64
	size     int64
	spaces   map[uint32]Store
	// nextSpace is the lowest id AddSpace has not handed out yet.
	nextSpace uint32
	entries   map[key]*entry
	// prob holds probationary entries; under PolicyLRU it is the only
	// list. prot holds protected entries (PolicySLRU).
	prob, prot *list
	// ghost remembers keys recently rejected from probation (PolicySLRU):
	// a FIFO of at most max(ghostMin, len(entries)) keys.
	ghost     map[key]struct{}
	ghostFIFO []key
	// pinned counts entries with pins > 0; maintained by the same
	// critical sections that change entry.pins so Stats() can report it
	// without scanning.
	pinned int64
	stats  Stats

	// noSteal, when set, forbids writing dirty blocks back to the
	// backing store outside an explicit Flush: eviction skips dirty
	// victims (overshooting the budget if necessary) and zero-budget
	// release keeps dirty entries resident. Durable backends rely on
	// this — a dirty block must not reach its data file before the
	// write-ahead log holding its image is synced (DESIGN.md §11).
	noSteal bool

	// Mirror counters, nil until EnableMetrics (obs counters are nil-safe
	// no-ops). Shared by label, so every cache instance opened under the
	// same label — one per backend node — accumulates into one global
	// hit/miss view.
	mHits, mMisses, mEvictions, mWriteBacks    *obs.Counter
	mPromotions, mGhostHits, mAdmissionRejects *obs.Counter
}

// EnableMetrics mirrors the cache's counters into reg under
// cache.<label>.{hits,misses,evictions,writebacks,promotions,ghost_hits,
// admission_rejects}, plus pull-mode per-segment byte gauges
// (protected_bytes / probation_bytes). Counters are shared across
// instances with the same label; the segment gauges report the LAST
// instance registered under the label (a shared cross-query cache is one
// instance per process, which is the intended use).
func (c *BlockCache) EnableMetrics(reg *obs.Registry, label string) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := "cache." + label
	c.mHits = reg.Counter(p + ".hits")
	c.mMisses = reg.Counter(p + ".misses")
	c.mEvictions = reg.Counter(p + ".evictions")
	c.mWriteBacks = reg.Counter(p + ".writebacks")
	c.mPromotions = reg.Counter(p + ".promotions")
	c.mGhostHits = reg.Counter(p + ".ghost_hits")
	c.mAdmissionRejects = reg.Counter(p + ".admission_rejects")
	reg.RegisterFunc(p+".protected_bytes", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.prot.bytes
	})
	reg.RegisterFunc(p+".probation_bytes", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.prob.bytes
	})
}

// New creates a PolicyLRU cache with the given byte budget. A budget of
// 0 disables caching (every access goes to the backing store).
func New(capacityBytes int64) *BlockCache {
	return NewWithPolicy(capacityBytes, PolicyLRU)
}

// NewWithPolicy creates a cache with an explicit replacement policy.
// The shared cross-query cache uses PolicySLRU so one scan cannot evict
// a concurrent query's working set.
func NewWithPolicy(capacityBytes int64, policy Policy) *BlockCache {
	return &BlockCache{
		policy:   policy,
		capacity: capacityBytes,
		spaces:   make(map[uint32]Store),
		entries:  make(map[key]*entry),
		prob:     newList(),
		prot:     newList(),
		ghost:    make(map[key]struct{}),
	}
}

// Policy reports the cache's replacement policy.
func (c *BlockCache) Policy() Policy { return c.policy }

// Capacity returns the byte budget the cache was created with.
func (c *BlockCache) Capacity() int64 { return c.capacity }

// AttachSpace registers a backing store under a space id. Each space must
// be attached exactly once before use.
func (c *BlockCache) AttachSpace(space uint32, s Store) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.spaces[space]; dup {
		return fmt.Errorf("cache: space %d already attached", space)
	}
	c.spaces[space] = s
	if space >= c.nextSpace {
		c.nextSpace = space + 1
	}
	return nil
}

// AddSpace registers a backing store under the next unused space id and
// returns the id. A cache shared by several database instances hands
// each caller disjoint ids this way, so their blocks can never collide.
func (c *BlockCache) AddSpace(s Store) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	space := c.nextSpace
	c.nextSpace++
	c.spaces[space] = s
	return space, nil
}

// RemoveSpace flushes and drops every entry of the space, then detaches
// its store — the inverse of AddSpace, used when a database instance
// sharing this cache closes. It fails if any of the space's entries is
// still pinned.
func (c *BlockCache) RemoveSpace(space uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	store, ok := c.spaces[space]
	if !ok {
		return fmt.Errorf("cache: space %d not attached", space)
	}
	for k, e := range c.entries {
		if k.space != space {
			continue
		}
		if e.pins > 0 {
			return fmt.Errorf("cache: space %d block %d still pinned", space, k.block)
		}
		if e.dirty {
			if err := store.WriteBlock(k.block, e.buf); err != nil {
				return err
			}
			c.stats.WriteBacks++
			c.mWriteBacks.Inc()
		}
		c.listOf(e).unlink(e)
		delete(c.entries, k)
		c.size -= int64(len(e.buf))
	}
	delete(c.spaces, space)
	return nil
}

func (c *BlockCache) listOf(e *entry) *list {
	if e.seg == segProtected {
		return c.prot
	}
	return c.prob
}

// SetNoSteal switches the cache's write-back policy; see the noSteal
// field. Call before use; not synchronized with concurrent access.
func (c *BlockCache) SetNoSteal(on bool) { c.noSteal = on }

// protectedCap is the protected segment's byte budget.
func (c *BlockCache) protectedCap() int64 {
	return c.capacity * protectedNum / protectedDen
}

// touchLocked records a hit on a resident entry: PolicyLRU moves it to
// the front; PolicySLRU additionally promotes probation entries into the
// protected segment.
func (c *BlockCache) touchLocked(e *entry) {
	if c.policy == PolicySLRU && e.seg == segProbation {
		c.prob.unlink(e)
		e.seg = segProtected
		e.promoted = true
		c.prot.pushFront(e)
		c.stats.Promotions++
		c.mPromotions.Inc()
		c.rebalanceLocked()
		return
	}
	l := c.listOf(e)
	l.unlink(e)
	l.pushFront(e)
}

// admitLocked inserts a freshly loaded entry according to the policy.
func (c *BlockCache) admitLocked(e *entry) {
	if c.policy == PolicySLRU {
		if _, ok := c.ghost[e.key]; ok {
			c.ghostForget(e.key)
			e.seg = segProtected
			e.promoted = true
			c.prot.pushFront(e)
			c.stats.GhostHits++
			c.mGhostHits.Inc()
			c.rebalanceLocked()
			return
		}
	}
	e.seg = segProbation
	c.prob.pushFront(e)
}

// rebalanceLocked demotes protected LRU entries to probation until the
// protected segment fits its cap. Demotion never writes or drops data,
// so pinned entries may be demoted safely.
func (c *BlockCache) rebalanceLocked() {
	for c.prot.bytes > c.protectedCap() {
		victim := c.prot.tail.prev
		if victim == c.prot.head {
			return
		}
		c.prot.unlink(victim)
		victim.seg = segProbation
		c.prob.pushFront(victim)
		c.stats.Demotions++
	}
}

// ghostRemember records a rejected key, bounding the list to
// max(ghostMin, resident entries).
func (c *BlockCache) ghostRemember(k key) {
	if _, dup := c.ghost[k]; dup {
		return
	}
	c.ghost[k] = struct{}{}
	c.ghostFIFO = append(c.ghostFIFO, k)
	limit := len(c.entries)
	if limit < ghostMin {
		limit = ghostMin
	}
	for len(c.ghostFIFO) > limit {
		old := c.ghostFIFO[0]
		c.ghostFIFO = c.ghostFIFO[1:]
		delete(c.ghost, old)
	}
}

// ghostForget drops k from the ghost list (it was re-admitted).
func (c *BlockCache) ghostForget(k key) {
	delete(c.ghost, k)
	for i, g := range c.ghostFIFO {
		if g == k {
			c.ghostFIFO = append(c.ghostFIFO[:i], c.ghostFIFO[i+1:]...)
			break
		}
	}
}

// victimLocked picks the next evictable entry: probation LRU tail first,
// then (PolicySLRU) protected LRU tail. Returns nil when everything is
// pinned (or dirty under no-steal).
func (c *BlockCache) victimLocked() *entry {
	for _, l := range []*list{c.prob, c.prot} {
		v := l.tail.prev
		for v != l.head {
			if v.pins == 0 && !(c.noSteal && v.dirty) {
				return v
			}
			v = v.prev
		}
	}
	return nil
}

// evictLocked writes back and drops unpinned entries until the cache
// fits its budget. Called with c.mu held.
func (c *BlockCache) evictLocked() error {
	for c.size > c.capacity {
		victim := c.victimLocked()
		if victim == nil {
			// Everything is pinned; allow the overshoot. grDB pins at most
			// a handful of blocks at a time, so this stays bounded.
			return nil
		}
		if err := c.dropLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// dropLocked writes back (if dirty) and removes one entry, maintaining
// the reject/ghost accounting.
func (c *BlockCache) dropLocked(victim *entry) error {
	if victim.dirty {
		store := c.spaces[victim.key.space]
		if err := store.WriteBlock(victim.key.block, victim.buf); err != nil {
			return err
		}
		c.stats.WriteBacks++
		c.mWriteBacks.Inc()
	}
	c.listOf(victim).unlink(victim)
	delete(c.entries, victim.key)
	c.size -= int64(len(victim.buf))
	c.stats.Evictions++
	c.mEvictions.Inc()
	if c.policy == PolicySLRU && !victim.promoted {
		c.stats.AdmissionRejects++
		c.mAdmissionRejects.Inc()
		c.ghostRemember(victim.key)
	}
	return nil
}

// Handle is a pinned reference to a cached block. The block's bytes may be
// read and mutated through Data until Release; mutators must call
// MarkDirty so the block is written back.
type Handle struct {
	c *BlockCache
	e *entry
}

// Data returns the block's bytes. Valid until Release.
func (h *Handle) Data() []byte { return h.e.buf }

// MarkDirty flags the block for write-back.
func (h *Handle) MarkDirty() {
	h.c.mu.Lock()
	h.e.dirty = true
	h.c.mu.Unlock()
}

// Release unpins the block. The handle must not be used afterwards.
func (h *Handle) Release() error {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	if h.e.pins <= 0 {
		return errors.New("cache: release of unpinned handle")
	}
	h.e.pins--
	if h.e.pins == 0 {
		h.c.pinned--
	}
	if h.e.pins == 0 && c0(h.c) {
		// Zero-budget mode: write back and drop immediately — except
		// under no-steal, where dirty entries must stay resident until
		// the next Flush.
		if h.e.dirty && h.c.noSteal {
			return nil
		}
		if h.e.dirty {
			store := h.c.spaces[h.e.key.space]
			if err := store.WriteBlock(h.e.key.block, h.e.buf); err != nil {
				return err
			}
			h.c.stats.WriteBacks++
			h.c.mWriteBacks.Inc()
			h.e.dirty = false
		}
		h.c.listOf(h.e).unlink(h.e)
		delete(h.c.entries, h.e.key)
		h.c.size -= int64(len(h.e.buf))
		h.c.stats.Evictions++
		h.c.mEvictions.Inc()
	}
	return nil
}

func c0(c *BlockCache) bool { return c.capacity <= 0 }

// Get pins block `block` of space `space`, loading it from the backing
// store on a miss.
func (c *BlockCache) Get(space uint32, block int64) (*Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	store, ok := c.spaces[space]
	if !ok {
		return nil, fmt.Errorf("cache: space %d not attached", space)
	}
	k := key{space: space, block: block}
	if e, hit := c.entries[k]; hit {
		c.stats.Hits++
		c.mHits.Inc()
		if e.pins == 0 {
			c.pinned++
		}
		e.pins++
		c.touchLocked(e)
		return &Handle{c: c, e: e}, nil
	}
	c.stats.Misses++
	c.mMisses.Inc()
	buf := make([]byte, store.BlockSize())
	// Drop the lock during the disk read so other blocks stay accessible.
	c.mu.Unlock()
	err := store.ReadBlock(block, buf)
	c.mu.Lock()
	if err != nil {
		return nil, err
	}
	// Re-check: another goroutine may have loaded it meanwhile.
	if e, hit := c.entries[k]; hit {
		if e.pins == 0 {
			c.pinned++
		}
		e.pins++
		c.touchLocked(e)
		return &Handle{c: c, e: e}, nil
	}
	e := &entry{key: k, buf: buf, pins: 1}
	c.pinned++
	c.entries[k] = e
	c.admitLocked(e)
	c.size += int64(len(buf))
	if err := c.evictLocked(); err != nil {
		return nil, err
	}
	return &Handle{c: c, e: e}, nil
}

// Dirty calls fn for every dirty resident block, in (space, block)
// order, under the cache lock. fn must not re-enter the cache. Durable
// backends use this to log block images to their WAL before Flush
// writes the blocks back.
func (c *BlockCache) Dirty(fn func(space uint32, block int64, data []byte) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]key, 0, len(c.entries))
	for k, e := range c.entries {
		if e.dirty {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].space != keys[j].space {
			return keys[i].space < keys[j].space
		}
		return keys[i].block < keys[j].block
	})
	for _, k := range keys {
		if err := fn(k.space, k.block, c.entries[k].buf); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes back every dirty block without evicting anything.
func (c *BlockCache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked(func(uint32) bool { return true })
}

// FlushSpace writes back the dirty blocks of one space only — what a
// database instance sharing this cache calls from its own Flush, so it
// never commits a co-tenant's in-flight writes.
func (c *BlockCache) FlushSpace(space uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked(func(s uint32) bool { return s == space })
}

func (c *BlockCache) flushLocked(want func(space uint32) bool) error {
	for _, e := range c.entries {
		if !e.dirty || !want(e.key.space) {
			continue
		}
		store := c.spaces[e.key.space]
		if err := store.WriteBlock(e.key.block, e.buf); err != nil {
			return err
		}
		e.dirty = false
		c.stats.WriteBacks++
		c.mWriteBacks.Inc()
	}
	return nil
}

// Stats returns a snapshot of the cache counters, taken under the same
// lock that guards pinned-handle updates.
func (c *BlockCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Pinned = c.pinned
	st.Resident = c.size
	st.ProtectedBytes = c.prot.bytes
	st.ProbationBytes = c.prob.bytes
	return st
}

// Size returns the current resident byte count.
func (c *BlockCache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
