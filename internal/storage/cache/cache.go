// Package cache implements grDB's block cache component (paper §3.4.1): a
// byte-budgeted, write-back LRU cache over one or more block stores
// ("spaces" — grDB registers one space per storage level, since levels
// have different block sizes).
//
// Entries are pinned while a caller holds a Handle; pinned entries are
// never evicted. With a zero byte budget every access misses and unpinned
// entries are written back and dropped immediately, which is exactly the
// "cache disabled" configuration of the paper's Figure 5.2 experiment.
package cache

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mssg/internal/obs"
)

// Store is the backing storage for one space. *blockio.Store satisfies it.
type Store interface {
	BlockSize() int
	ReadBlock(idx int64, buf []byte) error
	WriteBlock(idx int64, buf []byte) error
}

// Stats counts cache activity since creation, plus an instantaneous
// view of the pin/residency state. The whole struct is snapshotted
// under the same mutex that guards pin updates, so the fields form one
// consistent cut: Pinned can never exceed the number of resident
// entries, and a caller that has released every handle always observes
// Pinned == 0.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64
	// Pinned is the number of entries with at least one outstanding
	// Handle at snapshot time.
	Pinned int64
	// Resident is the resident byte count at snapshot time (same value
	// as Size).
	Resident int64
}

type key struct {
	space uint32
	block int64
}

type entry struct {
	key   key
	buf   []byte
	dirty bool
	pins  int
	// LRU list links (nil sentinels at list ends).
	prev, next *entry
}

// BlockCache is a write-back LRU block cache.
type BlockCache struct {
	mu       sync.Mutex
	capacity int64
	size     int64
	spaces   map[uint32]Store
	entries  map[key]*entry
	// Doubly linked LRU list with sentinel head (most recent) and tail.
	head, tail *entry
	// pinned counts entries with pins > 0; maintained by the same
	// critical sections that change entry.pins so Stats() can report it
	// without scanning.
	pinned int64
	stats  Stats

	// noSteal, when set, forbids writing dirty blocks back to the
	// backing store outside an explicit Flush: eviction skips dirty
	// victims (overshooting the budget if necessary) and zero-budget
	// release keeps dirty entries resident. Durable backends rely on
	// this — a dirty block must not reach its data file before the
	// write-ahead log holding its image is synced (DESIGN.md §11).
	noSteal bool

	// Mirror counters, nil until EnableMetrics (obs counters are nil-safe
	// no-ops). Shared by label, so every cache instance opened under the
	// same label — one per backend node — accumulates into one global
	// hit/miss view.
	mHits, mMisses, mEvictions, mWriteBacks *obs.Counter
}

// EnableMetrics mirrors the cache's counters into reg under
// cache.<label>.{hits,misses,evictions,writebacks}. Counters are shared
// across instances with the same label; residency and pins stay
// per-instance in Stats() (a global gauge over N caches is meaningless).
func (c *BlockCache) EnableMetrics(reg *obs.Registry, label string) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := "cache." + label
	c.mHits = reg.Counter(p + ".hits")
	c.mMisses = reg.Counter(p + ".misses")
	c.mEvictions = reg.Counter(p + ".evictions")
	c.mWriteBacks = reg.Counter(p + ".writebacks")
}

// New creates a cache with the given byte budget. A budget of 0 disables
// caching (every access goes to the backing store).
func New(capacityBytes int64) *BlockCache {
	c := &BlockCache{
		capacity: capacityBytes,
		spaces:   make(map[uint32]Store),
		entries:  make(map[key]*entry),
		head:     &entry{},
		tail:     &entry{},
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c
}

// AttachSpace registers a backing store under a space id. Each space must
// be attached exactly once before use.
func (c *BlockCache) AttachSpace(space uint32, s Store) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.spaces[space]; dup {
		return fmt.Errorf("cache: space %d already attached", space)
	}
	c.spaces[space] = s
	return nil
}

func (c *BlockCache) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (c *BlockCache) pushFront(e *entry) {
	e.next = c.head.next
	e.prev = c.head
	c.head.next.prev = e
	c.head.next = e
}

// SetNoSteal switches the cache's write-back policy; see the noSteal
// field. Call before use; not synchronized with concurrent access.
func (c *BlockCache) SetNoSteal(on bool) { c.noSteal = on }

// evictLocked writes back and drops unpinned LRU entries until the cache
// fits its budget. Called with c.mu held.
func (c *BlockCache) evictLocked() error {
	for c.size > c.capacity {
		// Scan from the LRU end for an unpinned (and, under no-steal,
		// clean) victim.
		victim := c.tail.prev
		for victim != c.head && (victim.pins > 0 || (c.noSteal && victim.dirty)) {
			victim = victim.prev
		}
		if victim == c.head {
			// Everything is pinned; allow the overshoot. grDB pins at most
			// a handful of blocks at a time, so this stays bounded.
			return nil
		}
		if victim.dirty {
			store := c.spaces[victim.key.space]
			if err := store.WriteBlock(victim.key.block, victim.buf); err != nil {
				return err
			}
			c.stats.WriteBacks++
			c.mWriteBacks.Inc()
		}
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.size -= int64(len(victim.buf))
		c.stats.Evictions++
		c.mEvictions.Inc()
	}
	return nil
}

// Handle is a pinned reference to a cached block. The block's bytes may be
// read and mutated through Data until Release; mutators must call
// MarkDirty so the block is written back.
type Handle struct {
	c *BlockCache
	e *entry
}

// Data returns the block's bytes. Valid until Release.
func (h *Handle) Data() []byte { return h.e.buf }

// MarkDirty flags the block for write-back.
func (h *Handle) MarkDirty() {
	h.c.mu.Lock()
	h.e.dirty = true
	h.c.mu.Unlock()
}

// Release unpins the block. The handle must not be used afterwards.
func (h *Handle) Release() error {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	if h.e.pins <= 0 {
		return errors.New("cache: release of unpinned handle")
	}
	h.e.pins--
	if h.e.pins == 0 {
		h.c.pinned--
	}
	if h.e.pins == 0 && c0(h.c) {
		// Zero-budget mode: write back and drop immediately — except
		// under no-steal, where dirty entries must stay resident until
		// the next Flush.
		if h.e.dirty && h.c.noSteal {
			return nil
		}
		if h.e.dirty {
			store := h.c.spaces[h.e.key.space]
			if err := store.WriteBlock(h.e.key.block, h.e.buf); err != nil {
				return err
			}
			h.c.stats.WriteBacks++
			h.c.mWriteBacks.Inc()
			h.e.dirty = false
		}
		h.c.unlink(h.e)
		delete(h.c.entries, h.e.key)
		h.c.size -= int64(len(h.e.buf))
		h.c.stats.Evictions++
		h.c.mEvictions.Inc()
	}
	return nil
}

func c0(c *BlockCache) bool { return c.capacity <= 0 }

// Get pins block `block` of space `space`, loading it from the backing
// store on a miss.
func (c *BlockCache) Get(space uint32, block int64) (*Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	store, ok := c.spaces[space]
	if !ok {
		return nil, fmt.Errorf("cache: space %d not attached", space)
	}
	k := key{space: space, block: block}
	if e, hit := c.entries[k]; hit {
		c.stats.Hits++
		c.mHits.Inc()
		if e.pins == 0 {
			c.pinned++
		}
		e.pins++
		c.unlink(e)
		c.pushFront(e)
		return &Handle{c: c, e: e}, nil
	}
	c.stats.Misses++
	c.mMisses.Inc()
	buf := make([]byte, store.BlockSize())
	// Drop the lock during the disk read so other blocks stay accessible.
	c.mu.Unlock()
	err := store.ReadBlock(block, buf)
	c.mu.Lock()
	if err != nil {
		return nil, err
	}
	// Re-check: another goroutine may have loaded it meanwhile.
	if e, hit := c.entries[k]; hit {
		if e.pins == 0 {
			c.pinned++
		}
		e.pins++
		c.unlink(e)
		c.pushFront(e)
		return &Handle{c: c, e: e}, nil
	}
	e := &entry{key: k, buf: buf, pins: 1}
	c.pinned++
	c.entries[k] = e
	c.pushFront(e)
	c.size += int64(len(buf))
	if err := c.evictLocked(); err != nil {
		return nil, err
	}
	return &Handle{c: c, e: e}, nil
}

// Dirty calls fn for every dirty resident block, in (space, block)
// order, under the cache lock. fn must not re-enter the cache. Durable
// backends use this to log block images to their WAL before Flush
// writes the blocks back.
func (c *BlockCache) Dirty(fn func(space uint32, block int64, data []byte) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]key, 0, len(c.entries))
	for k, e := range c.entries {
		if e.dirty {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].space != keys[j].space {
			return keys[i].space < keys[j].space
		}
		return keys[i].block < keys[j].block
	})
	for _, k := range keys {
		if err := fn(k.space, k.block, c.entries[k].buf); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes back every dirty block without evicting anything.
func (c *BlockCache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if !e.dirty {
			continue
		}
		store := c.spaces[e.key.space]
		if err := store.WriteBlock(e.key.block, e.buf); err != nil {
			return err
		}
		e.dirty = false
		c.stats.WriteBacks++
		c.mWriteBacks.Inc()
	}
	return nil
}

// Stats returns a snapshot of the cache counters, taken under the same
// lock that guards pinned-handle updates.
func (c *BlockCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Pinned = c.pinned
	st.Resident = c.size
	return st
}

// Size returns the current resident byte count.
func (c *BlockCache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
