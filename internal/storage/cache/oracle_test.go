package cache

import (
	"testing"
	"testing/quick"

	"mssg/internal/storage/blockio"
)

// TestQuickCacheTransparency: under any random sequence of block
// mutations through the cache (with a tiny budget forcing constant
// eviction), a final flush must leave the backing store holding exactly
// what a direct-write oracle holds.
func TestQuickCacheTransparency(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	type op struct {
		Block uint8 // 256 possible blocks
		Byte  uint8 // offset within block
		Val   byte
	}
	const blockSize = 64
	check := func(ops []op) bool {
		store, err := blockio.Open(t.TempDir(), "c", blockSize, blockSize*64)
		if err != nil {
			t.Log(err)
			return false
		}
		defer store.Close()
		c := New(3 * blockSize) // room for 3 blocks only
		if err := c.AttachSpace(0, store); err != nil {
			t.Log(err)
			return false
		}
		oracle := make(map[uint8][blockSize]byte)
		for _, o := range ops {
			h, err := c.Get(0, int64(o.Block))
			if err != nil {
				t.Logf("Get: %v", err)
				return false
			}
			h.Data()[int(o.Byte)%blockSize] = o.Val
			h.MarkDirty()
			if err := h.Release(); err != nil {
				t.Logf("Release: %v", err)
				return false
			}
			blk := oracle[o.Block]
			blk[int(o.Byte)%blockSize] = o.Val
			oracle[o.Block] = blk
		}
		if err := c.Flush(); err != nil {
			t.Logf("Flush: %v", err)
			return false
		}
		buf := make([]byte, blockSize)
		for b, want := range oracle {
			if err := store.ReadBlock(int64(b), buf); err != nil {
				t.Logf("ReadBlock: %v", err)
				return false
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Logf("block %d byte %d = %d, want %d", b, i, buf[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
