// Package vfs defines the narrow filesystem interface the storage layer
// performs its durable I/O through. Production code uses OS (the real
// filesystem); the crash-injection filesystem (package crashfs) wraps it
// to simulate a process killed at any write, sync, or rename — so every
// syncpoint in the storage stack is reachable by the crash suite without
// actually killing the test process.
//
// Only operations that matter to durability are in the interface: opening
// files, positional reads/writes, fsync, truncate, rename, remove, and
// directory fsync. Anything else (stat-walks, globbing) stays on package
// os in the callers.
package vfs

import (
	"errors"
	"io/fs"
	"os"
	"syscall"
)

// File is an open file handle. Positional I/O only: the storage layer
// never relies on a shared file offset.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
	Size() (int64, error)
}

// FS is the filesystem the storage layer runs on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory path.
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making renames and creations in it
	// durable.
	SyncDir(path string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

// Or returns fsys if non-nil and the real filesystem otherwise, so
// callers can plumb an optional FS without nil checks at every use.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

type osFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	// Filesystems that cannot fsync a directory report EINVAL or ENOTSUP;
	// those mean "the rename is as durable as this platform gets" and are
	// ignored (as in sqlite and etcd). Anything else — notably EIO — is a
	// real failure of the atomic-commit guarantee and must surface.
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		d.Close()
		return err
	}
	return d.Close()
}
