// Package blockio provides the multi-file block storage grDB sits on
// (paper §3.4.1): a logically unbounded array of fixed-size blocks,
// striped across files capped at M bytes each. Blocks are the smallest
// unit of I/O; sub-block packing and addressing live in the grDB layer.
//
// Blocks are implicitly zero until first written: reading a block past the
// current end of its file (or from a file that does not exist yet) yields
// zeroes without error, matching the "fresh storage" semantics grDB's
// word encoding relies on.
package blockio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Store is one level's block file set.
type Store struct {
	dir           string
	prefix        string
	blockSize     int
	blocksPerFile int64

	mu    sync.Mutex
	files map[int64]*os.File

	reads  atomic.Int64
	writes atomic.Int64

	// Simulated per-block latencies (see SimulateLatency). Debt is
	// accumulated and paid in quanta: one timer event per microsecond of
	// simulated latency would swamp a small machine's scheduler and stop
	// node goroutines from overlapping their waits.
	readLatency  time.Duration
	writeLatency time.Duration
	latencyOwed  atomic.Int64 // nanoseconds not yet slept
}

// latencyQuantum is the smallest simulated-latency debt actually slept.
const latencyQuantum = time.Millisecond

// charge adds simulated latency debt and sleeps once a full quantum is
// owed.
func (s *Store) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	owed := s.latencyOwed.Add(int64(d))
	if owed >= int64(latencyQuantum) && s.latencyOwed.CompareAndSwap(owed, 0) {
		time.Sleep(time.Duration(owed))
	}
}

// Counters reports physical block I/O performed so far.
type Counters struct {
	BlockReads  int64
	BlockWrites int64
}

// Open creates (or reopens) a block store in dir. Files are named
// "<prefix>.<n>". maxFileBytes is the paper's M (256 MB in the prototype);
// it must be a positive multiple of blockSize.
func Open(dir, prefix string, blockSize int, maxFileBytes int64) (*Store, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("blockio: block size must be positive, got %d", blockSize)
	}
	if maxFileBytes < int64(blockSize) || maxFileBytes%int64(blockSize) != 0 {
		return nil, fmt.Errorf("blockio: max file size %d must be a positive multiple of block size %d", maxFileBytes, blockSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockio: %w", err)
	}
	return &Store{
		dir:           dir,
		prefix:        prefix,
		blockSize:     blockSize,
		blocksPerFile: maxFileBytes / int64(blockSize),
		files:         make(map[int64]*os.File),
	}, nil
}

// SimulateLatency adds a fixed delay to every physical block read/write.
//
// The experiment harness uses this to model the paper's cluster disks:
// on a single development machine the block files sit in the OS page
// cache, so without a simulated device latency the out-of-core
// experiments measure memcpy, every node's I/O completes instantly, and
// the paper's back-end scaling disappears. With a per-block delay, node
// goroutines overlap their (simulated) I/O waits exactly as the cluster
// overlapped real disk accesses. Call before use; not synchronized with
// concurrent I/O.
func (s *Store) SimulateLatency(read, write time.Duration) {
	s.readLatency = read
	s.writeLatency = write
}

// BlockSize returns the fixed block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// BlocksPerFile returns N = M / B, the per-file block capacity.
func (s *Store) BlocksPerFile() int64 { return s.blocksPerFile }

// file returns the open handle for file index fi, creating it on demand.
func (s *Store) file(fi int64) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[fi]; ok {
		return f, nil
	}
	path := filepath.Join(s.dir, fmt.Sprintf("%s.%04d", s.prefix, fi))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockio: %w", err)
	}
	s.files[fi] = f
	return f, nil
}

// locate maps a block index to (file index, in-file byte offset).
func (s *Store) locate(idx int64) (int64, int64, error) {
	if idx < 0 {
		return 0, 0, fmt.Errorf("blockio: negative block index %d", idx)
	}
	return idx / s.blocksPerFile, (idx % s.blocksPerFile) * int64(s.blockSize), nil
}

// ReadBlock fills buf (which must be exactly one block long) with block
// idx. Unwritten blocks read as zeroes.
func (s *Store) ReadBlock(idx int64, buf []byte) error {
	if len(buf) != s.blockSize {
		return fmt.Errorf("blockio: read buffer is %d bytes, want %d", len(buf), s.blockSize)
	}
	fi, off, err := s.locate(idx)
	if err != nil {
		return err
	}
	f, err := s.file(fi)
	if err != nil {
		return err
	}
	s.reads.Add(1)
	s.charge(s.readLatency)
	n, err := f.ReadAt(buf, off)
	if err == io.EOF || err == io.ErrUnexpectedEOF || n < len(buf) {
		// Short or past-EOF read: the tail is implicitly zero.
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		return nil
	}
	return err
}

// WriteBlock stores buf (exactly one block) as block idx.
func (s *Store) WriteBlock(idx int64, buf []byte) error {
	if len(buf) != s.blockSize {
		return fmt.Errorf("blockio: write buffer is %d bytes, want %d", len(buf), s.blockSize)
	}
	fi, off, err := s.locate(idx)
	if err != nil {
		return err
	}
	f, err := s.file(fi)
	if err != nil {
		return err
	}
	s.writes.Add(1)
	s.charge(s.writeLatency)
	_, err = f.WriteAt(buf, off)
	return err
}

// Counters returns cumulative physical I/O counts.
func (s *Store) Counters() Counters {
	return Counters{BlockReads: s.reads.Load(), BlockWrites: s.writes.Load()}
}

// Sync flushes every open file to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.files {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("blockio: %w", err)
		}
	}
	return nil
}

// Close releases all file handles. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("blockio: %w", err)
		}
	}
	s.files = make(map[int64]*os.File)
	return first
}
