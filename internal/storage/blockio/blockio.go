// Package blockio provides the multi-file block storage grDB sits on
// (paper §3.4.1): a logically unbounded array of fixed-size blocks,
// striped across files capped at M bytes each. Blocks are the smallest
// unit of I/O; sub-block packing and addressing live in the grDB layer.
//
// Blocks are implicitly zero until first written: reading a block past the
// current end of its file (or from a file that does not exist yet) yields
// zeroes without error, matching the "fresh storage" semantics grDB's
// word encoding relies on.
//
// # Durability
//
// With Config.Checksums enabled, every block carries a CRC32-C checksum
// and a generation stamp in a sidecar file ("<prefix>.<n>.sum", 16 bytes
// per block). WriteBlock records the checksum after the data write;
// ReadBlock verifies it and returns an error wrapping ErrCorrupt on any
// mismatch — a torn or bit-flipped block can never be read as valid. A
// block whose data is non-zero but whose checksum entry was never
// written is exactly the signature of a crash between the two writes and
// is reported the same way. All file I/O goes through a vfs.FS so the
// crash suite can cut, tear, or corrupt any write.
package blockio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/storage/vfs"
)

var le = binary.LittleEndian

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("blockio: store closed")

// ErrCorrupt is wrapped by read errors when a block's content does not
// match its recorded checksum (torn write, bit rot, or a data write whose
// checksum update never landed).
var ErrCorrupt = errors.New("blockio: corrupt block")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Config parameterizes OpenStore.
type Config struct {
	// Dir is the directory holding the block files.
	Dir string
	// Prefix names this store's files: "<prefix>.<n>" (+ ".sum").
	Prefix string
	// BlockSize is the fixed block size in bytes.
	BlockSize int
	// MaxFileBytes is the per-file cap M (paper: 256 MB); must be a
	// positive multiple of BlockSize.
	MaxFileBytes int64
	// Checksums enables the per-block CRC32-C + generation sidecar.
	Checksums bool
	// FS is the filesystem to use; nil means the real one.
	FS vfs.FS
}

// sumEntryBytes is the sidecar record per block:
// {crc uint32, written uint32, generation uint64}.
const sumEntryBytes = 16

type sumEntry struct {
	crc     uint32
	written bool
	gen     uint64
}

func (e sumEntry) encode(b []byte) {
	le.PutUint32(b[0:4], e.crc)
	var w uint32
	if e.written {
		w = 1
	}
	le.PutUint32(b[4:8], w)
	le.PutUint64(b[8:16], e.gen)
}

func decodeSumEntry(b []byte) sumEntry {
	return sumEntry{
		crc:     le.Uint32(b[0:4]),
		written: le.Uint32(b[4:8]) != 0,
		gen:     le.Uint64(b[8:16]),
	}
}

// perFile is one data file plus its (optional) checksum sidecar.
type perFile struct {
	data vfs.File
	sum  vfs.File
	// entries mirrors the sidecar in memory; len grows on demand.
	entries []sumEntry
}

// Store is one level's block file set.
type Store struct {
	fsys          vfs.FS
	dir           string
	prefix        string
	blockSize     int
	blocksPerFile int64
	checksums     bool

	mu     sync.Mutex
	files  map[int64]*perFile
	closed bool

	reads        atomic.Int64
	writes       atomic.Int64
	readBytes    atomic.Int64
	writeBytes   atomic.Int64
	checksumErrs atomic.Int64

	// Simulated per-block latencies (see SimulateLatency). Debt is
	// accumulated and paid in quanta: one timer event per microsecond of
	// simulated latency would swamp a small machine's scheduler and stop
	// node goroutines from overlapping their waits.
	readLatency  time.Duration
	writeLatency time.Duration
	// transferLatency is charged per byte actually moved, on top of the
	// per-operation latency — so a prefix read of a compressed payload
	// pays for the bytes it transfers, not for the whole block slot.
	transferLatency time.Duration
	latencyOwed     atomic.Int64 // nanoseconds not yet slept
}

// latencyQuantum is the smallest simulated-latency debt actually slept.
const latencyQuantum = time.Millisecond

// charge adds simulated latency debt and sleeps once a full quantum is
// owed.
func (s *Store) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	owed := s.latencyOwed.Add(int64(d))
	if owed >= int64(latencyQuantum) && s.latencyOwed.CompareAndSwap(owed, 0) {
		time.Sleep(time.Duration(owed))
	}
}

// Counters reports physical block I/O performed so far. BytesRead /
// BytesWritten count bytes actually transferred: a prefix read or write
// accounts only its own length, so a compressed store's byte counters
// reflect the compression win while its op counters stay comparable to
// an uncompressed store's.
type Counters struct {
	BlockReads       int64
	BlockWrites      int64
	BytesRead        int64
	BytesWritten     int64
	ChecksumFailures int64
}

// Add returns the field-wise sum of two counter snapshots.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		BlockReads:       c.BlockReads + o.BlockReads,
		BlockWrites:      c.BlockWrites + o.BlockWrites,
		BytesRead:        c.BytesRead + o.BytesRead,
		BytesWritten:     c.BytesWritten + o.BytesWritten,
		ChecksumFailures: c.ChecksumFailures + o.ChecksumFailures,
	}
}

// Open creates (or reopens) a plain block store in dir — no checksums,
// real filesystem. Files are named "<prefix>.<n>". maxFileBytes is the
// paper's M (256 MB in the prototype); it must be a positive multiple of
// blockSize.
func Open(dir, prefix string, blockSize int, maxFileBytes int64) (*Store, error) {
	return OpenStore(Config{Dir: dir, Prefix: prefix, BlockSize: blockSize, MaxFileBytes: maxFileBytes})
}

// OpenStore creates (or reopens) a block store.
func OpenStore(cfg Config) (*Store, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("blockio: block size must be positive, got %d", cfg.BlockSize)
	}
	if cfg.MaxFileBytes < int64(cfg.BlockSize) || cfg.MaxFileBytes%int64(cfg.BlockSize) != 0 {
		return nil, fmt.Errorf("blockio: max file size %d must be a positive multiple of block size %d", cfg.MaxFileBytes, cfg.BlockSize)
	}
	fsys := vfs.Or(cfg.FS)
	if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockio: %w", err)
	}
	return &Store{
		fsys:          fsys,
		dir:           cfg.Dir,
		prefix:        cfg.Prefix,
		blockSize:     cfg.BlockSize,
		blocksPerFile: cfg.MaxFileBytes / int64(cfg.BlockSize),
		checksums:     cfg.Checksums,
		files:         make(map[int64]*perFile),
	}, nil
}

// SimulateLatency adds a fixed delay to every physical block read/write.
//
// The experiment harness uses this to model the paper's cluster disks:
// on a single development machine the block files sit in the OS page
// cache, so without a simulated device latency the out-of-core
// experiments measure memcpy, every node's I/O completes instantly, and
// the paper's back-end scaling disappears. With a per-block delay, node
// goroutines overlap their (simulated) I/O waits exactly as the cluster
// overlapped real disk accesses. Call before use; not synchronized with
// concurrent I/O.
func (s *Store) SimulateLatency(read, write time.Duration) {
	s.readLatency = read
	s.writeLatency = write
}

// SimulateTransfer adds a per-byte delay on top of the per-operation
// latency, modeling device bandwidth the way SimulateLatency models
// seek/dispatch cost. Bytes not transferred (prefix reads of compressed
// payloads) are not charged. Call before use; not synchronized with
// concurrent I/O.
func (s *Store) SimulateTransfer(perByte time.Duration) {
	s.transferLatency = perByte
}

// BlockSize returns the fixed block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// BlocksPerFile returns N = M / B, the per-file block capacity.
func (s *Store) BlocksPerFile() int64 { return s.blocksPerFile }

// Checksums reports whether this store verifies per-block checksums.
func (s *Store) Checksums() bool { return s.checksums }

// file returns the handles for file index fi, creating them on demand.
func (s *Store) file(fi int64) (*perFile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if f, ok := s.files[fi]; ok {
		return f, nil
	}
	path := filepath.Join(s.dir, fmt.Sprintf("%s.%04d", s.prefix, fi))
	data, err := s.fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockio: %w", err)
	}
	pf := &perFile{data: data}
	if s.checksums {
		sum, err := s.fsys.OpenFile(path+".sum", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			data.Close()
			return nil, fmt.Errorf("blockio: %w", err)
		}
		pf.sum = sum
		if err := pf.loadSums(); err != nil {
			data.Close()
			sum.Close()
			return nil, err
		}
	}
	s.files[fi] = pf
	return pf, nil
}

// loadSums reads the whole sidecar into memory. A trailing partial entry
// (torn sidecar write) decodes from its zero-padded remainder; the CRC
// check on the corresponding block read surfaces the damage.
func (pf *perFile) loadSums() error {
	size, err := pf.sum.Size()
	if err != nil {
		return fmt.Errorf("blockio: %w", err)
	}
	if size == 0 {
		return nil
	}
	raw := make([]byte, ((size+sumEntryBytes-1)/sumEntryBytes)*sumEntryBytes)
	if _, err := pf.sum.ReadAt(raw[:size], 0); err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return fmt.Errorf("blockio: %w", err)
	}
	pf.entries = make([]sumEntry, len(raw)/sumEntryBytes)
	for i := range pf.entries {
		pf.entries[i] = decodeSumEntry(raw[i*sumEntryBytes:])
	}
	return nil
}

// entry returns the checksum entry for in-file block bi (zero value when
// never written). Caller holds s.mu.
func (pf *perFile) entry(bi int64) sumEntry {
	if bi < int64(len(pf.entries)) {
		return pf.entries[bi]
	}
	return sumEntry{}
}

// locate maps a block index to (file index, in-file byte offset).
func (s *Store) locate(idx int64) (int64, int64, error) {
	if idx < 0 {
		return 0, 0, fmt.Errorf("blockio: negative block index %d", idx)
	}
	return idx / s.blocksPerFile, (idx % s.blocksPerFile) * int64(s.blockSize), nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// ReadBlock fills buf (which must be exactly one block long) with block
// idx. Unwritten blocks read as zeroes. With checksums enabled, content
// that does not match its recorded checksum returns an error wrapping
// ErrCorrupt.
func (s *Store) ReadBlock(idx int64, buf []byte) error {
	if len(buf) != s.blockSize {
		return fmt.Errorf("blockio: read buffer is %d bytes, want %d", len(buf), s.blockSize)
	}
	return s.read(idx, buf, s.checksums)
}

// ReadBlockNoVerify reads block idx without checksum verification. The
// scrub path uses it to capture a corrupt block's raw bytes for
// quarantine before repairing it.
func (s *Store) ReadBlockNoVerify(idx int64, buf []byte) error {
	if len(buf) != s.blockSize {
		return fmt.Errorf("blockio: read buffer is %d bytes, want %d", len(buf), s.blockSize)
	}
	return s.read(idx, buf, false)
}

// ReadBlockPrefix reads the first len(buf) bytes of block idx (len(buf)
// may be any value up to the block size; the tail past EOF is implicitly
// zero, as in ReadBlock). No checksum verification is performed — the
// sidecar CRC covers whole blocks — so callers own payload integrity;
// the compressed store layers its own per-payload CRC for exactly this
// reason. Only the bytes actually requested are accounted and charged.
func (s *Store) ReadBlockPrefix(idx int64, buf []byte) error {
	if len(buf) > s.blockSize {
		return fmt.Errorf("blockio: prefix read of %d bytes exceeds block size %d", len(buf), s.blockSize)
	}
	return s.read(idx, buf, false)
}

func (s *Store) read(idx int64, buf []byte, verify bool) error {
	fi, off, err := s.locate(idx)
	if err != nil {
		return err
	}
	f, err := s.file(fi)
	if err != nil {
		return err
	}
	s.reads.Add(1)
	s.readBytes.Add(int64(len(buf)))
	s.charge(s.readLatency + time.Duration(len(buf))*s.transferLatency)
	n, err := f.data.ReadAt(buf, off)
	if err == io.EOF || err == io.ErrUnexpectedEOF || (err == nil && n < len(buf)) {
		// Short or past-EOF read: the tail is implicitly zero. Only
		// EOF-class conditions qualify — a device error that happens to
		// return a short count must surface, not read as a zero block.
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		err = nil
	}
	if err != nil {
		return err
	}
	if verify {
		return s.verify(f, idx, idx%s.blocksPerFile, buf)
	}
	return nil
}

// verify checks buf against block idx's recorded checksum.
func (s *Store) verify(f *perFile, idx, bi int64, buf []byte) error {
	s.mu.Lock()
	e := f.entry(bi)
	s.mu.Unlock()
	if !e.written {
		if allZero(buf) {
			return nil // genuinely never written
		}
		s.checksumErrs.Add(1)
		return fmt.Errorf("%w: %s block %d has data but no checksum (torn write)", ErrCorrupt, s.prefix, idx)
	}
	if got := crc32.Checksum(buf, castagnoli); got != e.crc {
		s.checksumErrs.Add(1)
		return fmt.Errorf("%w: %s block %d checksum 0x%08x, want 0x%08x (gen %d)",
			ErrCorrupt, s.prefix, idx, got, e.crc, e.gen)
	}
	return nil
}

// WriteBlock stores buf (exactly one block) as block idx. With checksums
// enabled the block's CRC and an incremented generation stamp are
// recorded in the sidecar after the data write.
func (s *Store) WriteBlock(idx int64, buf []byte) error {
	if len(buf) != s.blockSize {
		return fmt.Errorf("blockio: write buffer is %d bytes, want %d", len(buf), s.blockSize)
	}
	return s.write(idx, buf)
}

// WriteBlockPrefix writes the first len(buf) bytes of block idx, leaving
// the rest of the slot untouched (whatever stale bytes it held remain —
// the caller's on-disk format must make them unreachable, as the
// compressed store's length-prefixed header does). Refused on
// checksummed stores: the sidecar CRC covers the whole block and a
// partial write would invalidate it.
func (s *Store) WriteBlockPrefix(idx int64, buf []byte) error {
	if s.checksums {
		return errors.New("blockio: prefix write on checksummed store")
	}
	if len(buf) > s.blockSize {
		return fmt.Errorf("blockio: prefix write of %d bytes exceeds block size %d", len(buf), s.blockSize)
	}
	return s.write(idx, buf)
}

func (s *Store) write(idx int64, buf []byte) error {
	fi, off, err := s.locate(idx)
	if err != nil {
		return err
	}
	f, err := s.file(fi)
	if err != nil {
		return err
	}
	s.writes.Add(1)
	s.writeBytes.Add(int64(len(buf)))
	s.charge(s.writeLatency + time.Duration(len(buf))*s.transferLatency)
	if _, err := f.data.WriteAt(buf, off); err != nil {
		return err
	}
	if !s.checksums {
		return nil
	}
	bi := idx % s.blocksPerFile
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for int64(len(f.entries)) <= bi {
		f.entries = append(f.entries, sumEntry{})
	}
	e := sumEntry{crc: crc32.Checksum(buf, castagnoli), written: true, gen: f.entries[bi].gen + 1}
	f.entries[bi] = e
	// The sidecar write stays under s.mu so two concurrent WriteBlocks to
	// the same block cannot persist the loser's entry while memory holds
	// the winner's (the write is a page-cache store, not a disk wait).
	var eb [sumEntryBytes]byte
	e.encode(eb[:])
	if _, err := f.sum.WriteAt(eb[:], bi*sumEntryBytes); err != nil {
		return fmt.Errorf("blockio: %w", err)
	}
	return nil
}

// BlockInfo returns block idx's recorded checksum state: whether it was
// ever written and its generation stamp. Only meaningful with checksums
// enabled.
func (s *Store) BlockInfo(idx int64) (written bool, gen uint64, err error) {
	fi, _, err := s.locate(idx)
	if err != nil {
		return false, 0, err
	}
	f, err := s.file(fi)
	if err != nil {
		return false, 0, err
	}
	s.mu.Lock()
	e := f.entry(idx % s.blocksPerFile)
	s.mu.Unlock()
	return e.written, e.gen, nil
}

// Counters returns cumulative physical I/O counts.
func (s *Store) Counters() Counters {
	return Counters{
		BlockReads:       s.reads.Load(),
		BlockWrites:      s.writes.Load(),
		BytesRead:        s.readBytes.Load(),
		BytesWritten:     s.writeBytes.Load(),
		ChecksumFailures: s.checksumErrs.Load(),
	}
}

// Sync flushes every open file (data and checksum sidecars) to stable
// storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed {
		return ErrClosed
	}
	for _, f := range s.files {
		if err := f.data.Sync(); err != nil {
			return fmt.Errorf("blockio: %w", err)
		}
		if f.sum != nil {
			if err := f.sum.Sync(); err != nil {
				return fmt.Errorf("blockio: %w", err)
			}
		}
	}
	return nil
}

// Close syncs and releases all file handles; the first Sync or Close
// error is returned rather than silently dropping dirty OS pages. The
// store must not be used afterwards: every operation returns ErrClosed.
// Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	first := s.syncLocked()
	for _, f := range s.files {
		if err := f.data.Close(); err != nil && first == nil {
			first = fmt.Errorf("blockio: %w", err)
		}
		if f.sum != nil {
			if err := f.sum.Close(); err != nil && first == nil {
				first = fmt.Errorf("blockio: %w", err)
			}
		}
	}
	s.files = make(map[int64]*perFile)
	s.closed = true
	return first
}
