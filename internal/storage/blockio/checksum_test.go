package blockio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openChecked(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenStore(Config{Dir: dir, Prefix: "ck", BlockSize: 512, MaxFileBytes: 4096, Checksums: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChecksumRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openChecked(t, dir)
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = byte(i)
	}
	// Spread across two files (8 blocks per file).
	for _, idx := range []int64{0, 3, 7, 8, 12} {
		buf[0] = byte(idx)
		if err := s.WriteBlock(idx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = openChecked(t, dir)
	defer s.Close()
	got := make([]byte, 512)
	for _, idx := range []int64{0, 3, 7, 8, 12} {
		if err := s.ReadBlock(idx, got); err != nil {
			t.Fatalf("block %d: %v", idx, err)
		}
		if got[0] != byte(idx) || got[1] != 1 {
			t.Fatalf("block %d content %v", idx, got[:2])
		}
	}
	// Unwritten blocks still read as zeroes without error.
	if err := s.ReadBlock(5, got); err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		if c != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	s := openChecked(t, dir)
	buf := make([]byte, 512)
	buf[100] = 0xAA
	if err := s.WriteBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the data file.
	path := filepath.Join(dir, "ck.0000")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[2*512+100] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s = openChecked(t, dir)
	defer s.Close()
	err = s.ReadBlock(2, buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if c := s.Counters(); c.ChecksumFailures != 1 {
		t.Fatalf("ChecksumFailures = %d, want 1", c.ChecksumFailures)
	}
}

func TestChecksumDetectsTornWrite(t *testing.T) {
	dir := t.TempDir()
	s := openChecked(t, dir)
	buf := make([]byte, 512)
	buf[0] = 1
	if err := s.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash after the data write of block 1 but before its
	// checksum update: non-zero data with no sidecar entry.
	path := filepath.Join(dir, "ck.0000")
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 512)
	torn[7] = 0xFF
	if _, err := f.WriteAt(torn, 512); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = openChecked(t, dir)
	defer s.Close()
	err = s.ReadBlock(1, buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for torn write, got %v", err)
	}
}

func TestGenerationStamps(t *testing.T) {
	dir := t.TempDir()
	s := openChecked(t, dir)
	defer s.Close()
	buf := make([]byte, 512)
	if written, gen, _ := s.BlockInfo(4); written || gen != 0 {
		t.Fatalf("fresh block: written=%v gen=%d", written, gen)
	}
	for i := 1; i <= 3; i++ {
		buf[0] = byte(i)
		if err := s.WriteBlock(4, buf); err != nil {
			t.Fatal(err)
		}
		written, gen, err := s.BlockInfo(4)
		if err != nil || !written || gen != uint64(i) {
			t.Fatalf("after write %d: written=%v gen=%d err=%v", i, written, gen, err)
		}
	}
}

func TestClosedStore(t *testing.T) {
	s := openChecked(t, t.TempDir())
	buf := make([]byte, 512)
	if err := s.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.ReadBlock(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadBlock after Close: %v", err)
	}
	if err := s.WriteBlock(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteBlock after Close: %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v", err)
	}
	if _, _, err := s.BlockInfo(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("BlockInfo after Close: %v", err)
	}
}
