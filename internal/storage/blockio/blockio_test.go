package blockio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOpenValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, "x", 0, 4096); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := Open(dir, "x", 512, 100); err == nil {
		t.Error("file cap below block size accepted")
	}
	if _, err := Open(dir, "x", 512, 1000); err == nil {
		t.Error("file cap not multiple of block size accepted")
	}
}

func TestReadUnwrittenBlockIsZero(t *testing.T) {
	s, err := Open(t.TempDir(), "z", 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, 256)
	buf[0] = 0xFF // must be overwritten with zeroes
	if err := s.ReadBlock(12345, buf); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), "rt", 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := bytes.Repeat([]byte{0xAB}, 256)
	if err := s.WriteBlock(7, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := s.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestFileStriping(t *testing.T) {
	dir := t.TempDir()
	// 4 blocks per file.
	s, err := Open(dir, "str", 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.BlocksPerFile() != 4 {
		t.Fatalf("BlocksPerFile = %d, want 4", s.BlocksPerFile())
	}
	blk := make([]byte, 256)
	for i := int64(0); i < 10; i++ {
		blk[0] = byte(i)
		if err := s.WriteBlock(i, blk); err != nil {
			t.Fatal(err)
		}
	}
	// Blocks 0-3 in file 0, 4-7 in file 1, 8-9 in file 2.
	for fi := 0; fi < 3; fi++ {
		path := filepath.Join(dir, "str.000"+string(rune('0'+fi)))
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("file %d missing: %v", fi, err)
		}
		if st.Size() > 1024 {
			t.Fatalf("file %d exceeds cap: %d bytes", fi, st.Size())
		}
	}
	// Verify a block from the middle file.
	got := make([]byte, 256)
	if err := s.ReadBlock(5, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatalf("block 5 data = %d", got[0])
	}
}

func TestWrongBufferSizeRejected(t *testing.T) {
	s, err := Open(t.TempDir(), "sz", 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ReadBlock(0, make([]byte, 100)); err == nil {
		t.Error("short read buffer accepted")
	}
	if err := s.WriteBlock(0, make([]byte, 512)); err == nil {
		t.Error("long write buffer accepted")
	}
	if err := s.ReadBlock(-1, make([]byte, 256)); err == nil {
		t.Error("negative block index accepted")
	}
}

func TestCounters(t *testing.T) {
	s, err := Open(t.TempDir(), "cnt", 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, 256)
	for i := int64(0); i < 3; i++ {
		if err := s.WriteBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.BlockWrites != 3 || c.BlockReads != 1 {
		t.Fatalf("counters = %+v, want 3 writes 1 read", c)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "p", 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{7}, 256)
	if err := s.WriteBlock(9, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, "p", 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]byte, 256)
	if err := s2.ReadBlock(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across reopen")
	}
}

func TestSimulatedLatency(t *testing.T) {
	s, err := Open(t.TempDir(), "lat", 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SimulateLatency(2*time.Millisecond, 0)
	buf := make([]byte, 256)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := s.ReadBlock(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("5 reads with 2ms simulated latency took %s", el)
	}
}
