// Package wal implements the reusable write-ahead log under the durable
// storage backends (DESIGN.md §11). It generalizes what reldb's original
// ad-hoc log only gestured at: CRC-framed records that can be replayed
// after a crash, torn-tail truncation, and group commit — any number of
// Append calls become durable together with a single Sync (one fsync),
// which is the commit point of every checkpoint built on top of it.
//
// On-disk format: a sequence of records, each
//
//	crc   uint32  // CRC32-C over the rest of the record (len, seq, payload)
//	len   uint32  // payload length
//	seq   uint64  // record sequence number, 1, 2, 3, ... from log start
//	payload [len]bytes
//
// A record is valid only if its CRC matches, its length is sane, and its
// sequence number is exactly the predecessor's plus one. Open scans the
// log and truncates it at the first invalid record: everything before is
// the durable prefix, everything after is a torn tail from a crash
// mid-write and is discarded.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"mssg/internal/storage/vfs"
)

const (
	headerBytes = 4 + 4 + 8

	// MaxRecordBytes bounds a single payload; longer appends are refused
	// and a longer on-disk length is treated as corruption. 1 GB is far
	// beyond any block image or checkpoint state record.
	MaxRecordBytes = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Record is one replayed log entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Log is an append-only write-ahead log.
type Log struct {
	fsys vfs.FS
	path string
	f    vfs.File

	// size is the durable end of the log (start offset for the next
	// append batch); pending holds appended-but-unsynced record bytes.
	size    int64
	seq     uint64
	pending []byte

	closed bool
}

// Open opens (creating if absent) the log at path, validates the existing
// records, and truncates any torn tail so appends extend a clean prefix.
// Replay what Open kept with Replay before appending new records.
func Open(fsys vfs.FS, path string) (*Log, error) {
	fsys = vfs.Or(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{fsys: fsys, path: path, f: f}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recover scans the file, setting size/seq to the end of the valid
// prefix and truncating anything after it.
func (l *Log) recover() error {
	fileSize, err := l.f.Size()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	valid, lastSeq, err := scan(l.f, fileSize, nil)
	if err != nil {
		return err
	}
	if valid < fileSize {
		if err := l.f.Truncate(valid); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.size = valid
	l.seq = lastSeq
	return nil
}

// scan walks records in [0, fileSize), calling visit (when non-nil) for
// each valid record, and returns the byte length of the valid prefix and
// the last valid sequence number. I/O errors are returned; framing
// violations just end the scan.
func scan(f vfs.File, fileSize int64, visit func(Record) error) (int64, uint64, error) {
	var (
		off     int64
		seq     uint64
		hdr     [headerBytes]byte
		payload []byte
	)
	for off+headerBytes <= fileSize {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, 0, fmt.Errorf("wal: %w", err)
		}
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		n := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		recSeq := binary.LittleEndian.Uint64(hdr[8:16])
		if n > MaxRecordBytes || off+headerBytes+n > fileSize || recSeq != seq+1 {
			break
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if n > 0 {
			if _, err := f.ReadAt(payload, off+headerBytes); err != nil {
				return 0, 0, fmt.Errorf("wal: %w", err)
			}
		}
		h := crc32.New(castagnoli)
		h.Write(hdr[4:])
		h.Write(payload)
		if h.Sum32() != crc {
			break
		}
		if visit != nil {
			if err := visit(Record{Seq: recSeq, Payload: payload}); err != nil {
				return 0, 0, err
			}
		}
		seq = recSeq
		off += headerBytes + n
	}
	return off, seq, nil
}

// Replay calls visit for every durable record in order. The payload slice
// is reused between calls; copy it to retain. Must not run concurrently
// with Append/Sync.
func (l *Log) Replay(visit func(Record) error) error {
	if l.closed {
		return ErrClosed
	}
	_, _, err := scan(l.f, l.size, visit)
	return err
}

// Append stages one record. It becomes durable — together with every
// record staged since the last Sync — only when Sync returns nil (group
// commit). Returns the record's sequence number.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds max %d", len(payload), MaxRecordBytes)
	}
	l.seq++
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], l.seq)
	h := crc32.New(castagnoli)
	h.Write(hdr[4:])
	h.Write(payload)
	binary.LittleEndian.PutUint32(hdr[0:4], h.Sum32())
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, payload...)
	return l.seq, nil
}

// Sync writes all staged records and fsyncs the log: the group-commit
// point. When Sync returns nil every record appended so far is durable;
// when it fails the log's durable state is unchanged (the staged bytes
// may be partially on disk, but recovery's seq/CRC validation discards
// any such tail).
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if len(l.pending) > 0 {
		if _, err := l.f.WriteAt(l.pending, l.size); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size += int64(len(l.pending))
	l.pending = l.pending[:0]
	return nil
}

// Reset discards every record (after a successful checkpoint has made
// them redundant) and restarts the sequence numbering.
func (l *Log) Reset() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = 0
	l.seq = 0
	l.pending = l.pending[:0]
	return nil
}

// Seq returns the sequence number of the most recently appended record
// (0 when the log is empty).
func (l *Log) Seq() uint64 { return l.seq }

// Size returns the durable log length in bytes (staged records excluded).
func (l *Log) Size() int64 { return l.size }

// Empty reports whether the log holds no durable or staged records.
func (l *Log) Empty() bool { return l.size == 0 && len(l.pending) == 0 }

// Close releases the file handle without syncing staged records: callers
// decide commit points explicitly via Sync.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// ScanBytes validates b as a record stream and returns the records of its
// valid prefix. It is the pure-decode core used by fuzzing: no input may
// make it panic.
func ScanBytes(b []byte) []Record {
	var out []Record
	f := memFile(b)
	_, _, err := scan(f, int64(len(b)), func(r Record) error {
		p := make([]byte, len(r.Payload))
		copy(p, r.Payload)
		out = append(out, Record{Seq: r.Seq, Payload: p})
		return nil
	})
	if err != nil {
		return out
	}
	return out
}

// memFile adapts a byte slice to the reading side of vfs.File for
// ScanBytes.
type memFile []byte

func (m memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m)) {
		return 0, errors.New("wal: read past end")
	}
	n := copy(p, m[off:])
	if n < len(p) {
		return n, errors.New("wal: short read")
	}
	return n, nil
}

func (m memFile) WriteAt([]byte, int64) (int, error) { return 0, errors.New("wal: read-only") }
func (m memFile) Sync() error                        { return nil }
func (m memFile) Truncate(int64) error               { return errors.New("wal: read-only") }
func (m memFile) Close() error                       { return nil }
func (m memFile) Size() (int64, error)               { return int64(len(m)), nil }
