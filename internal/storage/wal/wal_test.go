package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	err := l.Replay(func(r Record) error {
		p := append([]byte(nil), r.Payload...)
		out = append(out, Record{Seq: r.Seq, Payload: p})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendSyncReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record-%02d", i))
		want = append(want, p)
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Group commit: nothing is durable before Sync.
	if l.Size() != 0 {
		t.Fatalf("durable size %d before Sync", l.Size())
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d: seq %d payload %q", i, r.Seq, r.Payload)
		}
	}
	// Appends continue the sequence.
	if seq, _ := l.Append([]byte("more")); seq != 11 {
		t.Fatalf("next seq %d, want 11", seq)
	}
}

func TestUnsyncedRecordsAreDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("durable"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("staged-only"))
	if err := l.Close(); err != nil { // Close does not commit
		t.Fatal(err)
	}
	l, err = Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != 1 || string(got[0].Payload) != "durable" {
		t.Fatalf("replayed %v", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	size := l.Size()
	l.Append([]byte("three"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the last record: cut the file mid-payload.
	if err := os.Truncate(path, size+headerBytes+2); err != nil {
		t.Fatal(err)
	}
	l, err = Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
	if l.Size() != size {
		t.Fatalf("size %d after truncation, want %d", l.Size(), size)
	}
}

func TestCorruptRecordEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("good"))
	l.Append([]byte("bad"))
	l.Append([]byte("unreachable"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a bit in the second record's payload.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[headerBytes+len("good")+headerBytes] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err = Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != 1 || string(got[0].Payload) != "good" {
		t.Fatalf("replayed %v, want only the first record", got)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("gone"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if !l.Empty() || l.Seq() != 0 {
		t.Fatalf("log not empty after Reset: size %d seq %d", l.Size(), l.Seq())
	}
	if seq, _ := l.Append([]byte("fresh")); seq != 1 {
		t.Fatalf("seq after reset %d, want 1", seq)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, err = Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != 1 || string(got[0].Payload) != "fresh" {
		t.Fatalf("replayed %v", got)
	}
}

func TestClosedLog(t *testing.T) {
	l, err := Open(nil, filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close: %v", err)
	}
	if err := l.Replay(nil); err != ErrClosed {
		t.Fatalf("Replay after Close: %v", err)
	}
	if err := l.Reset(); err != ErrClosed {
		t.Fatalf("Reset after Close: %v", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(nil)
	l.Append([]byte{})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, err = Open(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := replayAll(t, l); len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
}
