package wal

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame builds one valid record for seeding.
func frame(seq uint64, payload []byte) []byte {
	b := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(b[8:16], seq)
	copy(b[headerBytes:], payload)
	h := crc32.New(castagnoli)
	h.Write(b[4:])
	binary.LittleEndian.PutUint32(b[0:4], h.Sum32())
	return b
}

// FuzzRecordScan feeds arbitrary bytes to the record scanner: corrupt or
// truncated input must yield a (possibly empty) valid prefix, never a
// panic, and never a record that fails re-validation.
func FuzzRecordScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(1, []byte("hello")))
	f.Add(append(frame(1, []byte("a")), frame(2, []byte("bb"))...))
	f.Add(append(frame(1, []byte("a")), 0xde, 0xad)) // torn tail
	two := append(frame(1, nil), frame(2, []byte("x"))...)
	two[len(two)-1] ^= 0x01 // corrupt last payload byte
	f.Add(two)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs := ScanBytes(data)
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("record %d has seq %d", i, r.Seq)
			}
			if len(r.Payload) > MaxRecordBytes {
				t.Fatalf("record %d payload %d bytes", i, len(r.Payload))
			}
		}
	})
}
