package fsutil

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest")
	if err := WriteFileAtomic(nil, path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "v1" {
		t.Fatalf("read %q, want v1", b)
	}
	// Replacement leaves no temp file behind.
	if err := WriteFileAtomic(nil, path, []byte("version-two"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ = ReadFile(nil, path); string(b) != "version-two" {
		t.Fatalf("read %q, want version-two", b)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(nil, filepath.Join(t.TempDir(), "absent"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}
