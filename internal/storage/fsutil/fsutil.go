// Package fsutil provides the small durable-filesystem idioms every
// storage component needs and none should hand-roll: atomic file
// replacement (temp file + fsync + rename + directory fsync) and whole
// file reads through a vfs.FS. The grDB, relational, and B-tree backends
// all commit their manifests through WriteFileAtomic, so a crash can
// leave either the old manifest or the new one — never a torn mix.
package fsutil

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"mssg/internal/storage/vfs"
)

// WriteFileAtomic durably replaces path with data: the bytes are written
// to a temporary sibling, fsynced, renamed over path, and the parent
// directory is fsynced so the rename itself survives a crash. On any
// error the temporary file is removed and path is untouched.
func WriteFileAtomic(fsys vfs.FS, path string, data []byte, perm fs.FileMode) error {
	fsys = vfs.Or(fsys)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	return nil
}

// ReadFile reads the whole file at path through fsys. A missing file
// yields (nil, err) with err wrapping fs.ErrNotExist, like os.ReadFile.
func ReadFile(fsys vfs.FS, path string) ([]byte, error) {
	fsys = vfs.Or(fsys)
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size == 0 {
		return data, nil
	}
	if _, err := f.ReadAt(data, 0); err != nil {
		return nil, err
	}
	return data, nil
}
