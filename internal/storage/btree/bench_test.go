package btree

import (
	"testing"

	"mssg/internal/storage/blockio"
	"mssg/internal/storage/cache"
)

func benchTree(b *testing.B, pageSize int) *Tree {
	b.Helper()
	store, err := blockio.Open(b.TempDir(), "bt", pageSize, 256<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	c := cache.New(64 << 20)
	tr, err := Open(Config{Store: store, Cache: c, Space: 0}, Meta{})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkPutSequential(b *testing.B) {
	tr := benchTree(b, 16<<10)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(U64Key(uint64(i), 0), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutRandom(b *testing.B) {
	tr := benchTree(b, 16<<10)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) * 0x9E3779B97F4A7C15 // golden-ratio scatter
		if err := tr.Put(U64Key(k, 0), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetHot(b *testing.B) {
	tr := benchTree(b, 16<<10)
	val := make([]byte, 64)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Put(U64Key(uint64(i), 0), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(U64Key(uint64(i%n), 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCursorScan(b *testing.B) {
	tr := benchTree(b, 16<<10)
	val := make([]byte, 64)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Put(U64Key(uint64(i), 0), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tr.Seek(U64Key(0, 0))
		count := 0
		for c.Valid() {
			count++
			c.Next()
		}
		if count != n {
			b.Fatalf("scanned %d keys", count)
		}
	}
}
