// Package btree implements an insert/update-only on-disk B+tree with
// fixed 16-byte keys and variable-length values, backed by a block file
// (package blockio) through the block cache (package storage/cache).
//
// It is the storage engine for two of the paper's baseline GraphDBs: the
// BerkeleyDB substitute uses it directly as a key-value store, and the
// MySQL substitute uses it as the primary index over its heap file. The
// tree supports Put (insert or replace), Get, and ordered cursors; deletes
// are not needed by any MSSG workload (graphs only grow) and are omitted.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"mssg/internal/storage/blockio"
	"mssg/internal/storage/cache"
)

// KeySize is the fixed key width. Keys compare as big-endian byte strings.
const KeySize = 16

// Key is a fixed-width tree key.
type Key [KeySize]byte

// U64Key builds a key from two 64-bit components, ordered first by hi then
// by lo (e.g. vertex id, chunk sequence).
func U64Key(hi, lo uint64) Key {
	var k Key
	binary.BigEndian.PutUint64(k[0:8], hi)
	binary.BigEndian.PutUint64(k[8:16], lo)
	return k
}

// Split returns the two 64-bit components of a U64Key.
func (k Key) Split() (hi, lo uint64) {
	return binary.BigEndian.Uint64(k[0:8]), binary.BigEndian.Uint64(k[8:16])
}

// Page layout. Cells grow up from the header; the slot directory (2 bytes
// per cell offset, sorted by key) grows down from the page end.
//
//	off 0      type: 1 = leaf, 2 = internal
//	off 1..2   nkeys (uint16 LE)
//	off 3..4   freeStart: offset of next cell write (uint16 LE)
//	off 5..8   leaf: next-leaf page id; internal: leftmost child page id
//	off 9..    cells
//
// Leaf cell:     key[16] | valLen uint16 | val[valLen]
// Internal cell: key[16] | child uint32     (child covers keys >= key)
const (
	pageTypeLeaf     = 1
	pageTypeInternal = 2
	pageHeaderSize   = 9
	slotSize         = 2
	leafCellOverhead = KeySize + 2
	internalCellSize = KeySize + 4
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("btree: key not found")

// Tree is an on-disk B+tree. Not safe for concurrent use.
type Tree struct {
	store    *blockio.Store
	cache    *cache.BlockCache
	space    uint32
	pageSize int

	// Volatile header; persisted via SaveMeta/LoadMeta.
	root     int64
	numPages int64
	count    int64 // key count

	maxVal int
}

// Config parameterizes Open.
type Config struct {
	// Store is the backing block file set; its BlockSize is the page size.
	Store *blockio.Store
	// Cache is the page cache; the tree attaches Store under Space.
	Cache *cache.BlockCache
	// Space is the cache space id to register under.
	Space uint32
}

// Open initializes a tree over an empty store, or re-opens one given meta
// saved by Meta(). For a fresh tree pass zero meta.
func Open(cfg Config, meta Meta) (*Tree, error) {
	ps := cfg.Store.BlockSize()
	if ps < 512 {
		return nil, fmt.Errorf("btree: page size %d too small", ps)
	}
	if err := cfg.Cache.AttachSpace(cfg.Space, cfg.Store); err != nil {
		return nil, err
	}
	t := &Tree{
		store:    cfg.Store,
		cache:    cfg.Cache,
		space:    cfg.Space,
		pageSize: ps,
		root:     meta.Root,
		numPages: meta.NumPages,
		count:    meta.Count,
		// A value must fit in a freshly split leaf alongside its key.
		maxVal: (ps-pageHeaderSize)/2 - leafCellOverhead - slotSize,
	}
	if t.numPages == 0 {
		// Allocate the root leaf.
		rootID, err := t.allocPage(pageTypeLeaf)
		if err != nil {
			return nil, err
		}
		t.root = rootID
	}
	return t, nil
}

// Meta is the durable tree header, persisted by the caller (the GraphDB
// wrappers keep it in their own manifest files).
type Meta struct {
	Root     int64
	NumPages int64
	Count    int64
}

// Meta returns the current durable header.
func (t *Tree) Meta() Meta { return Meta{Root: t.root, NumPages: t.numPages, Count: t.count} }

// MaxValue returns the largest value length Put accepts.
func (t *Tree) MaxValue() int { return t.maxVal }

// Count returns the number of keys in the tree.
func (t *Tree) Count() int64 { return t.count }

func (t *Tree) allocPage(pageType byte) (int64, error) {
	id := t.numPages
	t.numPages++
	h, err := t.cache.Get(t.space, id)
	if err != nil {
		return 0, err
	}
	p := h.Data()
	for i := range p {
		p[i] = 0
	}
	p[0] = pageType
	putU16(p, 3, pageHeaderSize)
	h.MarkDirty()
	if err := h.Release(); err != nil {
		return 0, err
	}
	return id, nil
}

func putU16(p []byte, off int, v int) { binary.LittleEndian.PutUint16(p[off:], uint16(v)) }
func getU16(p []byte, off int) int    { return int(binary.LittleEndian.Uint16(p[off:])) }
func putU32(p []byte, off int, v int64) {
	binary.LittleEndian.PutUint32(p[off:], uint32(v))
}
func getU32(p []byte, off int) int64 { return int64(binary.LittleEndian.Uint32(p[off:])) }

// page accessors

func nkeys(p []byte) int       { return getU16(p, 1) }
func setNkeys(p []byte, n int) { putU16(p, 1, n) }
func freeStart(p []byte) int   { return getU16(p, 3) }
func setFreeStart(p []byte, v int) {
	putU16(p, 3, v)
}
func link(p []byte) int64       { return getU32(p, 5) }
func setLink(p []byte, v int64) { putU32(p, 5, v) }

func slotOff(pageSize, i int) int { return pageSize - (i+1)*slotSize }

func cellOff(p []byte, pageSize, i int) int { return getU16(p, slotOff(pageSize, i)) }

func setCellOff(p []byte, pageSize, i, off int) { putU16(p, slotOff(pageSize, i), off) }

func cellKey(p []byte, off int) []byte { return p[off : off+KeySize] }

// freeBytes returns the insertable space remaining in the page.
func freeBytes(p []byte, pageSize int) int {
	return pageSize - nkeys(p)*slotSize - freeStart(p)
}

// search finds the slot index for key k: the first slot with cell key >=
// k. found reports an exact match.
func search(p []byte, pageSize int, k Key) (idx int, found bool) {
	lo, hi := 0, nkeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		c := bytes.Compare(cellKey(p, cellOff(p, pageSize, mid)), k[:])
		switch {
		case c == 0:
			return mid, true
		case c < 0:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// leafVal returns the value bytes of leaf slot i.
func leafVal(p []byte, pageSize, i int) []byte {
	off := cellOff(p, pageSize, i)
	vl := getU16(p, off+KeySize)
	return p[off+leafCellOverhead : off+leafCellOverhead+vl]
}

// internalChild returns the child pointer of internal slot i.
func internalChild(p []byte, pageSize, i int) int64 {
	off := cellOff(p, pageSize, i)
	return getU32(p, off+KeySize)
}

// childFor returns the child page covering key k in an internal page:
// the leftmost link for k < key[0], else the child of the greatest slot
// key <= k.
func childFor(p []byte, pageSize int, k Key) int64 {
	idx, found := search(p, pageSize, k)
	if found {
		return internalChild(p, pageSize, idx)
	}
	if idx == 0 {
		return link(p)
	}
	return internalChild(p, pageSize, idx-1)
}

// Get copies the value for k into a fresh slice.
func (t *Tree) Get(k Key) ([]byte, error) {
	pid := t.root
	for {
		h, err := t.cache.Get(t.space, pid)
		if err != nil {
			return nil, err
		}
		p := h.Data()
		switch p[0] {
		case pageTypeInternal:
			pid = childFor(p, t.pageSize, k)
			if err := h.Release(); err != nil {
				return nil, err
			}
		case pageTypeLeaf:
			idx, found := search(p, t.pageSize, k)
			if !found {
				h.Release()
				return nil, ErrNotFound
			}
			v := leafVal(p, t.pageSize, idx)
			out := make([]byte, len(v))
			copy(out, v)
			return out, h.Release()
		default:
			h.Release()
			return nil, fmt.Errorf("btree: page %d has bad type %d", pid, p[0])
		}
	}
}

// Has reports whether k is present.
func (t *Tree) Has(k Key) (bool, error) {
	_, err := t.Get(k)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}
