package btree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"mssg/internal/storage/blockio"
	"mssg/internal/storage/cache"
)

// TestQuickOracleRandomOps drives random Put/Get sequences against a
// map-based oracle: after any operation sequence, every key in the
// oracle must Get the oracle's value and a full cursor scan must
// enumerate exactly the oracle's keys in order.
func TestQuickOracleRandomOps(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	type op struct {
		Key    uint16 // narrow key space forces overwrites
		ValLen uint8
		Fill   byte
	}
	check := func(ops []op) bool {
		store, err := blockio.Open(t.TempDir(), "bt", 512, 512*256)
		if err != nil {
			t.Log(err)
			return false
		}
		defer store.Close()
		c := cache.New(8 << 10) // tiny cache: eviction in the loop
		tr, err := Open(Config{Store: store, Cache: c, Space: 0}, Meta{})
		if err != nil {
			t.Log(err)
			return false
		}
		oracle := make(map[uint16][]byte)
		for _, o := range ops {
			val := bytes.Repeat([]byte{o.Fill}, int(o.ValLen)%64)
			if err := tr.Put(U64Key(uint64(o.Key), 0), val); err != nil {
				t.Logf("Put: %v", err)
				return false
			}
			oracle[o.Key] = val
		}
		// Point lookups.
		for k, want := range oracle {
			got, err := tr.Get(U64Key(uint64(k), 0))
			if err != nil {
				t.Logf("Get(%d): %v", k, err)
				return false
			}
			if !bytes.Equal(got, want) {
				t.Logf("Get(%d) = %v, want %v", k, got, want)
				return false
			}
		}
		if tr.Count() != int64(len(oracle)) {
			t.Logf("Count = %d, oracle has %d", tr.Count(), len(oracle))
			return false
		}
		// Ordered scan.
		keys := make([]uint16, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		cur := tr.Seek(U64Key(0, 0))
		for _, k := range keys {
			if !cur.Valid() {
				t.Logf("cursor exhausted before key %d", k)
				return false
			}
			hi, _ := cur.Key().Split()
			if hi != uint64(k) {
				t.Logf("cursor at %d, want %d", hi, k)
				return false
			}
			cur.Next()
		}
		if cur.Valid() {
			t.Log("cursor has extra keys")
			return false
		}
		return cur.Err() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestOracleDensePrefixWorkload mimics the GraphDB access pattern
// explicitly: per-vertex chunk chains with in-place head updates.
func TestOracleDensePrefixWorkload(t *testing.T) {
	store, err := blockio.Open(t.TempDir(), "bt", 4096, 4096*1024)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c := cache.New(64 << 10)
	tr, err := Open(Config{Store: store, Cache: c, Space: 0}, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[Key][]byte)
	for round := 0; round < 30; round++ {
		for v := uint64(0); v < 40; v++ {
			// Head update (8 bytes, same size → in-place path).
			head := []byte(fmt.Sprintf("%08d", round))
			hk := U64Key(v, 0)
			if err := tr.Put(hk, head); err != nil {
				t.Fatal(err)
			}
			oracle[hk] = head
			// Growing chunk (different size → repoint/rebuild paths).
			chunk := bytes.Repeat([]byte{byte(round)}, (round+1)*8)
			ck := U64Key(v, uint64(round/10)+1)
			if err := tr.Put(ck, chunk); err != nil {
				t.Fatal(err)
			}
			oracle[ck] = chunk
		}
	}
	for k, want := range oracle {
		got, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !bytes.Equal(got, want) {
			hi, lo := k.Split()
			t.Fatalf("key (%d,%d): got %d bytes, want %d", hi, lo, len(got), len(want))
		}
	}
}
