package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"mssg/internal/storage/blockio"
	"mssg/internal/storage/cache"
)

func newTestTree(t *testing.T, pageSize int, cacheBytes int64) *Tree {
	t.Helper()
	dir := t.TempDir()
	store, err := blockio.Open(dir, "bt", pageSize, int64(pageSize)*1024)
	if err != nil {
		t.Fatalf("blockio.Open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	c := cache.New(cacheBytes)
	tr, err := Open(Config{Store: store, Cache: c, Space: 1}, Meta{})
	if err != nil {
		t.Fatalf("btree.Open: %v", err)
	}
	t.Cleanup(func() {
		if err := c.Flush(); err != nil {
			t.Errorf("cache flush: %v", err)
		}
	})
	return tr
}

func TestPutGetSingle(t *testing.T) {
	tr := newTestTree(t, 4096, 1<<20)
	k := U64Key(42, 7)
	if err := tr.Put(k, []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := tr.Get(k)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(v) != "hello" {
		t.Fatalf("Get = %q, want %q", v, "hello")
	}
	if _, err := tr.Get(U64Key(42, 8)); err != ErrNotFound {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestReplaceValue(t *testing.T) {
	tr := newTestTree(t, 4096, 1<<20)
	k := U64Key(1, 1)
	for _, v := range []string{"a", "bbbb", "cc", "ddddddddddddddd"} {
		if err := tr.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put(%q): %v", v, err)
		}
		got, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get after Put(%q): %v", v, err)
		}
		if string(got) != v {
			t.Fatalf("Get = %q, want %q", got, v)
		}
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (replaces must not add)", tr.Count())
	}
}

func TestManyKeysSplits(t *testing.T) {
	// Small pages force deep splits.
	tr := newTestTree(t, 512, 1<<20)
	const n = 5000
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, i := range perm {
		k := U64Key(uint64(i), 0)
		v := []byte(fmt.Sprintf("value-%d", i))
		if err := tr.Put(k, v); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d, want %d", tr.Count(), n)
	}
	for i := 0; i < n; i++ {
		v, err := tr.Get(U64Key(uint64(i), 0))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		want := fmt.Sprintf("value-%d", i)
		if string(v) != want {
			t.Fatalf("Get(%d) = %q, want %q", i, v, want)
		}
	}
}

func TestCursorOrder(t *testing.T) {
	tr := newTestTree(t, 512, 1<<20)
	const n = 2000
	rng := rand.New(rand.NewSource(2))
	for _, i := range rng.Perm(n) {
		if err := tr.Put(U64Key(uint64(i), uint64(i%3)), []byte{byte(i)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	c := tr.Seek(U64Key(0, 0))
	var prev Key
	count := 0
	for c.Valid() {
		cur := c.Key()
		if count > 0 && bytes.Compare(prev[:], cur[:]) >= 0 {
			t.Fatalf("cursor out of order at %d: %v >= %v", count, prev, cur)
		}
		prev = cur
		count++
		c.Next()
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if count != n {
		t.Fatalf("cursor visited %d keys, want %d", count, n)
	}
}

func TestCursorSeekMidRange(t *testing.T) {
	tr := newTestTree(t, 512, 1<<20)
	for i := 0; i < 100; i++ {
		if err := tr.Put(U64Key(uint64(i*2), 0), []byte("x")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Seek to an absent odd key: cursor must land on the next even one.
	c := tr.Seek(U64Key(51, 0))
	if !c.Valid() {
		t.Fatalf("cursor invalid after seek, err=%v", c.Err())
	}
	hi, _ := c.Key().Split()
	if hi != 52 {
		t.Fatalf("seek landed on %d, want 52", hi)
	}
}

func TestPrefixScan(t *testing.T) {
	tr := newTestTree(t, 512, 1<<20)
	for v := uint64(0); v < 50; v++ {
		for seq := uint64(0); seq < 5; seq++ {
			if err := tr.Put(U64Key(v, seq), []byte{byte(v), byte(seq)}); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}
	c := tr.Seek(U64Key(17, 0))
	var seqs []uint64
	for c.Valid() && c.HasPrefix(17) {
		_, lo := c.Key().Split()
		seqs = append(seqs, lo)
		c.Next()
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if len(seqs) != 5 {
		t.Fatalf("prefix scan found %d chunks, want 5: %v", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("chunk order wrong: %v", seqs)
		}
	}
}

func TestZeroCacheBudget(t *testing.T) {
	// Capacity 0 disables caching; everything must still work.
	tr := newTestTree(t, 512, 0)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Put(U64Key(uint64(i), 0), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := tr.Get(U64Key(uint64(i), 0))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q", i, v)
		}
	}
}

func TestLargeValuesRejected(t *testing.T) {
	tr := newTestTree(t, 512, 1<<20)
	big := make([]byte, tr.MaxValue()+1)
	if err := tr.Put(U64Key(1, 0), big); err == nil {
		t.Fatal("Put of oversized value succeeded, want error")
	}
	ok := make([]byte, tr.MaxValue())
	if err := tr.Put(U64Key(1, 0), ok); err != nil {
		t.Fatalf("Put of max-size value failed: %v", err)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := blockio.Open(dir, "bt", 512, 512*1024)
	if err != nil {
		t.Fatalf("blockio.Open: %v", err)
	}
	c := cache.New(1 << 20)
	tr, err := Open(Config{Store: store, Cache: c, Space: 1}, Meta{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if err := tr.Put(U64Key(uint64(i), 0), []byte{1, 2, 3}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	meta := tr.Meta()
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen from meta.
	store2, err := blockio.Open(dir, "bt", 512, 512*1024)
	if err != nil {
		t.Fatalf("reopen blockio: %v", err)
	}
	defer store2.Close()
	c2 := cache.New(1 << 20)
	tr2, err := Open(Config{Store: store2, Cache: c2, Space: 1}, meta)
	if err != nil {
		t.Fatalf("reopen tree: %v", err)
	}
	if tr2.Count() != 1000 {
		t.Fatalf("reopened Count = %d, want 1000", tr2.Count())
	}
	for i := 0; i < 1000; i++ {
		if _, err := tr2.Get(U64Key(uint64(i), 0)); err != nil {
			t.Fatalf("reopened Get(%d): %v", i, err)
		}
	}
}
