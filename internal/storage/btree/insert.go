package btree

import (
	"bytes"
	"fmt"
)

// In-memory cell forms used while rebuilding a page. Rebuild-per-insert
// keeps the split logic simple; a page is at most a few hundred cells.

type leafCell struct {
	key Key
	val []byte
}

type internalCell struct {
	key   Key
	child int64
}

func decodeLeaf(p []byte, pageSize int) []leafCell {
	n := nkeys(p)
	cells := make([]leafCell, n)
	for i := 0; i < n; i++ {
		off := cellOff(p, pageSize, i)
		var c leafCell
		copy(c.key[:], p[off:off+KeySize])
		vl := getU16(p, off+KeySize)
		c.val = make([]byte, vl)
		copy(c.val, p[off+leafCellOverhead:off+leafCellOverhead+vl])
		cells[i] = c
	}
	return cells
}

func leafBytes(cells []leafCell) int {
	total := 0
	for _, c := range cells {
		total += leafCellOverhead + len(c.val) + slotSize
	}
	return total
}

func encodeLeaf(p []byte, pageSize int, cells []leafCell, next int64) error {
	if pageHeaderSize+leafBytes(cells) > pageSize {
		return fmt.Errorf("btree: leaf overflow (%d cells, %d bytes)", len(cells), leafBytes(cells))
	}
	for i := range p {
		p[i] = 0
	}
	p[0] = pageTypeLeaf
	setNkeys(p, len(cells))
	setLink(p, next)
	off := pageHeaderSize
	for i, c := range cells {
		copy(p[off:], c.key[:])
		putU16(p, off+KeySize, len(c.val))
		copy(p[off+leafCellOverhead:], c.val)
		setCellOff(p, pageSize, i, off)
		off += leafCellOverhead + len(c.val)
	}
	setFreeStart(p, off)
	return nil
}

func decodeInternal(p []byte, pageSize int) (left int64, cells []internalCell) {
	n := nkeys(p)
	cells = make([]internalCell, n)
	for i := 0; i < n; i++ {
		off := cellOff(p, pageSize, i)
		var c internalCell
		copy(c.key[:], p[off:off+KeySize])
		c.child = getU32(p, off+KeySize)
		cells[i] = c
	}
	return link(p), cells
}

func encodeInternal(p []byte, pageSize int, left int64, cells []internalCell) error {
	need := pageHeaderSize + len(cells)*(internalCellSize+slotSize)
	if need > pageSize {
		return fmt.Errorf("btree: internal overflow (%d cells)", len(cells))
	}
	for i := range p {
		p[i] = 0
	}
	p[0] = pageTypeInternal
	setNkeys(p, len(cells))
	setLink(p, left)
	off := pageHeaderSize
	for i, c := range cells {
		copy(p[off:], c.key[:])
		putU32(p, off+KeySize, c.child)
		setCellOff(p, pageSize, i, off)
		off += internalCellSize
	}
	setFreeStart(p, off)
	return nil
}

// Put inserts or replaces the value for k.
func (t *Tree) Put(k Key, v []byte) error {
	if len(v) > t.maxVal {
		return fmt.Errorf("btree: value of %d bytes exceeds max %d", len(v), t.maxVal)
	}
	sep, newPage, added, err := t.insert(t.root, k, v)
	if err != nil {
		return err
	}
	if newPage != 0 {
		// Root split: make a new internal root.
		newRoot, err := t.allocPage(pageTypeInternal)
		if err != nil {
			return err
		}
		h, err := t.cache.Get(t.space, newRoot)
		if err != nil {
			return err
		}
		err = encodeInternal(h.Data(), t.pageSize, t.root, []internalCell{{key: sep, child: newPage}})
		h.MarkDirty()
		if rerr := h.Release(); err == nil {
			err = rerr
		}
		if err != nil {
			return err
		}
		t.root = newRoot
	}
	if added {
		t.count++
	}
	return nil
}

// insert descends into pid. On split it returns the separator key and the
// new right-sibling page id; otherwise newPage is 0.
func (t *Tree) insert(pid int64, k Key, v []byte) (sep Key, newPage int64, added bool, err error) {
	h, err := t.cache.Get(t.space, pid)
	if err != nil {
		return Key{}, 0, false, err
	}
	p := h.Data()

	switch p[0] {
	case pageTypeLeaf:
		defer h.Release()
		idx, found := search(p, t.pageSize, k)

		// Fast path: in-place replacement when the new value fits the old
		// cell, or slot repoint into free space otherwise. Dead cells are
		// reclaimed by the compacting rebuild when the page fills.
		if found {
			off := cellOff(p, t.pageSize, idx)
			if getU16(p, off+KeySize) >= len(v) {
				putU16(p, off+KeySize, len(v))
				copy(p[off+leafCellOverhead:], v)
				h.MarkDirty()
				return Key{}, 0, false, nil
			}
			if freeBytes(p, t.pageSize) >= leafCellOverhead+len(v) {
				noff := freeStart(p)
				copy(p[noff:], k[:])
				putU16(p, noff+KeySize, len(v))
				copy(p[noff+leafCellOverhead:], v)
				setCellOff(p, t.pageSize, idx, noff)
				setFreeStart(p, noff+leafCellOverhead+len(v))
				h.MarkDirty()
				return Key{}, 0, false, nil
			}
		}
		// Fast path: append into free space without a rebuild.
		if !found && freeBytes(p, t.pageSize) >= leafCellOverhead+len(v)+slotSize {
			n := nkeys(p)
			off := freeStart(p)
			copy(p[off:], k[:])
			putU16(p, off+KeySize, len(v))
			copy(p[off+leafCellOverhead:], v)
			// Shift slots idx..n-1 down by one to keep order.
			for i := n; i > idx; i-- {
				setCellOff(p, t.pageSize, i, cellOff(p, t.pageSize, i-1))
			}
			setCellOff(p, t.pageSize, idx, off)
			setNkeys(p, n+1)
			setFreeStart(p, off+leafCellOverhead+len(v))
			h.MarkDirty()
			return Key{}, 0, true, nil
		}

		// Slow path: rebuild, possibly splitting.
		cells := decodeLeaf(p, t.pageSize)
		if found {
			cells[idx].val = append([]byte(nil), v...)
		} else {
			cells = append(cells, leafCell{})
			copy(cells[idx+1:], cells[idx:])
			cells[idx] = leafCell{key: k, val: append([]byte(nil), v...)}
			added = true
		}
		next := link(p)
		if pageHeaderSize+leafBytes(cells) <= t.pageSize {
			if err := encodeLeaf(p, t.pageSize, cells, next); err != nil {
				return Key{}, 0, false, err
			}
			h.MarkDirty()
			return Key{}, 0, added, nil
		}
		// Split by bytes.
		half := leafBytes(cells) / 2
		mid, acc := 0, 0
		for mid = 0; mid < len(cells)-1; mid++ {
			acc += leafCellOverhead + len(cells[mid].val) + slotSize
			if acc >= half {
				mid++
				break
			}
		}
		rightID, err := t.allocPage(pageTypeLeaf)
		if err != nil {
			return Key{}, 0, false, err
		}
		rh, err := t.cache.Get(t.space, rightID)
		if err != nil {
			return Key{}, 0, false, err
		}
		rerr := encodeLeaf(rh.Data(), t.pageSize, cells[mid:], next)
		rh.MarkDirty()
		if relErr := rh.Release(); rerr == nil {
			rerr = relErr
		}
		if rerr != nil {
			return Key{}, 0, false, rerr
		}
		if err := encodeLeaf(p, t.pageSize, cells[:mid], rightID); err != nil {
			return Key{}, 0, false, err
		}
		h.MarkDirty()
		return cells[mid].key, rightID, added, nil

	case pageTypeInternal:
		child := childFor(p, t.pageSize, k)
		if err := h.Release(); err != nil {
			return Key{}, 0, false, err
		}
		csep, cnew, cadded, err := t.insert(child, k, v)
		if err != nil || cnew == 0 {
			return Key{}, 0, cadded, err
		}
		// Child split: insert (csep -> cnew) here.
		h, err := t.cache.Get(t.space, pid)
		if err != nil {
			return Key{}, 0, false, err
		}
		defer h.Release()
		p := h.Data()
		left, cells := decodeInternal(p, t.pageSize)
		idx, _ := search(p, t.pageSize, csep)
		cells = append(cells, internalCell{})
		copy(cells[idx+1:], cells[idx:])
		cells[idx] = internalCell{key: csep, child: cnew}
		need := pageHeaderSize + len(cells)*(internalCellSize+slotSize)
		if need <= t.pageSize {
			if err := encodeInternal(p, t.pageSize, left, cells); err != nil {
				return Key{}, 0, false, err
			}
			h.MarkDirty()
			return Key{}, 0, cadded, nil
		}
		// Internal split: promote the middle key.
		mid := len(cells) / 2
		promoted := cells[mid].key
		rightLeft := cells[mid].child
		rightID, err := t.allocPage(pageTypeInternal)
		if err != nil {
			return Key{}, 0, false, err
		}
		rh, err := t.cache.Get(t.space, rightID)
		if err != nil {
			return Key{}, 0, false, err
		}
		rerr := encodeInternal(rh.Data(), t.pageSize, rightLeft, append([]internalCell(nil), cells[mid+1:]...))
		rh.MarkDirty()
		if relErr := rh.Release(); rerr == nil {
			rerr = relErr
		}
		if rerr != nil {
			return Key{}, 0, false, rerr
		}
		if err := encodeInternal(p, t.pageSize, left, cells[:mid]); err != nil {
			return Key{}, 0, false, err
		}
		h.MarkDirty()
		return promoted, rightID, cadded, nil

	default:
		h.Release()
		return Key{}, 0, false, fmt.Errorf("btree: page %d has bad type %d", pid, p[0])
	}
}

// compareKeys is exposed for tests.
func compareKeys(a, b Key) int { return bytes.Compare(a[:], b[:]) }
