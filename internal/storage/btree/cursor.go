package btree

import "bytes"

// Cursor iterates keys in ascending order starting from a seek position.
// A cursor holds no page pins between Next calls, so it remains valid
// across cache evictions; it must not be used concurrently with Put
// (an insert can split the leaf under it).
type Cursor struct {
	t     *Tree
	leaf  int64
	slot  int
	valid bool
	key   Key
	val   []byte
	err   error
}

// Seek positions a cursor at the first key >= k.
func (t *Tree) Seek(k Key) *Cursor {
	c := &Cursor{t: t}
	pid := t.root
	for {
		h, err := t.cache.Get(t.space, pid)
		if err != nil {
			c.err = err
			return c
		}
		p := h.Data()
		if p[0] == pageTypeInternal {
			pid = childFor(p, t.pageSize, k)
			if err := h.Release(); err != nil {
				c.err = err
				return c
			}
			continue
		}
		idx, _ := search(p, t.pageSize, k)
		c.leaf = pid
		c.slot = idx
		c.load(h.Data())
		if err := h.Release(); err != nil {
			c.err = err
		}
		return c
	}
}

// load captures the current slot (or advances to the next leaf when the
// slot index is past this leaf's cells).
func (c *Cursor) load(p []byte) {
	for c.slot >= nkeys(p) {
		next := link(p)
		if next == 0 {
			c.valid = false
			return
		}
		h, err := c.t.cache.Get(c.t.space, next)
		if err != nil {
			c.err = err
			c.valid = false
			return
		}
		c.leaf = next
		c.slot = 0
		p = h.Data()
		// Copy out before releasing: recurse with the sibling's bytes.
		defer h.Release()
	}
	off := cellOff(p, c.t.pageSize, c.slot)
	copy(c.key[:], p[off:off+KeySize])
	vl := getU16(p, off+KeySize)
	c.val = append(c.val[:0], p[off+leafCellOverhead:off+leafCellOverhead+vl]...)
	c.valid = true
}

// Valid reports whether the cursor is positioned on a key.
func (c *Cursor) Valid() bool { return c.valid && c.err == nil }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Key returns the current key. Only meaningful while Valid.
func (c *Cursor) Key() Key { return c.key }

// Value returns the current value bytes; the slice is reused by Next.
func (c *Cursor) Value() []byte { return c.val }

// Next advances to the following key.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	h, err := c.t.cache.Get(c.t.space, c.leaf)
	if err != nil {
		c.err = err
		c.valid = false
		return
	}
	c.slot++
	c.load(h.Data())
	if err := h.Release(); err != nil {
		c.err = err
	}
}

// HasPrefix reports whether the cursor's current key starts with the
// 8-byte big-endian prefix hi (the vertex-id half of a U64Key).
func (c *Cursor) HasPrefix(hi uint64) bool {
	if !c.Valid() {
		return false
	}
	var want [8]byte
	k := U64Key(hi, 0)
	copy(want[:], k[0:8])
	return bytes.Equal(c.key[0:8], want[:])
}
