package compress

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"mssg/internal/storage/blockio"
)

func encWords(words ...uint64) []byte {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		le.PutUint64(buf[i*8:], w)
	}
	return buf
}

func TestCodecRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		encWords(0),
		encWords(1, 2, 3, 4, 5),
		encWords(100, 101, 103, 200, 7, 0, 0, 0),
		encWords(^uint64(0), 0, ^uint64(0)>>1, 1<<63),
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		words := make([]uint64, rng.Intn(64))
		for j := range words {
			words[j] = rng.Uint64() >> uint(rng.Intn(64))
		}
		cases = append(cases, encWords(words...))
	}
	for _, src := range cases {
		payload := AppendEncoded(nil, src)
		dst := make([]byte, len(src))
		if err := Decode(dst, payload); err != nil {
			t.Fatalf("Decode(%d words): %v", len(src)/8, err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("round trip mismatch for %x", src)
		}
	}
}

func TestCodecCompressesSortedRuns(t *testing.T) {
	// Ascending ids with small gaps — the adjacency common case — must
	// shrink substantially.
	words := make([]uint64, 512)
	for i := range words {
		words[i] = uint64(1000 + 3*i)
	}
	src := encWords(words...)
	payload := AppendEncoded(nil, src)
	if len(payload) > len(src)/3 {
		t.Fatalf("sorted run compressed to %d/%d bytes — want at least 3x", len(payload), len(src))
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	dst := make([]byte, 16)
	for _, payload := range [][]byte{
		{},                 // truncated: zero varints for two words
		{0x80},             // truncated varint
		{0x01},             // one word, second missing
		{0x01, 0x01, 0x01}, // trailing byte
		append(bytes.Repeat([]byte{0xff}, 10), 0x01, 0x01), // over-long varint
	} {
		if err := Decode(dst, payload); !errors.Is(err, ErrMalformed) {
			t.Fatalf("Decode(% x) = %v, want ErrMalformed", payload, err)
		}
	}
	if err := Decode(make([]byte, 7), nil); !errors.Is(err, ErrMalformed) {
		t.Fatal("non-word destination accepted")
	}
}

func openPair(t *testing.T, logical int, checksums bool) (*Store, *blockio.Store) {
	t.Helper()
	inner, err := blockio.OpenStore(blockio.Config{
		Dir: t.TempDir(), Prefix: "z",
		BlockSize:    PhysicalBlockSize(logical),
		MaxFileBytes: int64(PhysicalBlockSize(logical)) * 64,
		Checksums:    checksums,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })
	s, err := Wrap(inner, logical)
	if err != nil {
		t.Fatal(err)
	}
	return s, inner
}

func TestStoreRoundTripAndZeroInvariant(t *testing.T) {
	for _, checksums := range []bool{false, true} {
		const logical = 256
		s, _ := openPair(t, logical, checksums)
		// Never-written block reads as zeroes.
		buf := make([]byte, logical)
		if err := s.ReadBlock(5, buf); err != nil {
			t.Fatalf("checksums=%v fresh read: %v", checksums, err)
		}
		if !allZero(buf) {
			t.Fatalf("checksums=%v fresh block not zero", checksums)
		}
		// Compressible, raw-ish, and zero writes all round-trip.
		rng := rand.New(rand.NewSource(3))
		blocks := map[int64][]byte{}
		for idx := int64(0); idx < 8; idx++ {
			b := make([]byte, logical)
			switch idx % 3 {
			case 0: // sorted adjacency-like words
				for i := 0; i+8 <= logical; i += 8 {
					le.PutUint64(b[i:], uint64(10+idx)+uint64(i))
				}
			case 1: // random (likely raw fallback)
				rng.Read(b)
			case 2: // zero
			}
			if err := s.WriteBlock(idx, b); err != nil {
				t.Fatalf("checksums=%v write %d: %v", checksums, idx, err)
			}
			blocks[idx] = b
		}
		for idx, want := range blocks {
			if err := s.ReadBlock(idx, buf); err != nil {
				t.Fatalf("checksums=%v read %d: %v", checksums, idx, err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("checksums=%v block %d round trip mismatch", checksums, idx)
			}
		}
		// Overwrites (shrinking and growing payloads) stay correct even
		// with stale tails in the slot.
		big := make([]byte, logical)
		rng.Read(big)
		small := make([]byte, logical)
		le.PutUint64(small, 42)
		for _, w := range [][]byte{big, small, big} {
			if err := s.WriteBlock(0, w); err != nil {
				t.Fatal(err)
			}
			if err := s.ReadBlock(0, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, w) {
				t.Fatalf("checksums=%v overwrite mismatch", checksums)
			}
		}
	}
}

func TestStoreReopenWithoutHints(t *testing.T) {
	// A fresh wrapper (no payload-size hints, as after reopen) must read
	// blocks written by another instance.
	const logical = 128
	dir := t.TempDir()
	open := func() *Store {
		inner, err := blockio.Open(dir, "z", PhysicalBlockSize(logical), int64(PhysicalBlockSize(logical))*64)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { inner.Close() })
		s, err := Wrap(inner, logical)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	want := make([]byte, logical)
	for i := 0; i+8 <= logical; i += 8 {
		le.PutUint64(want[i:], uint64(7+i))
	}
	w := open()
	if err := w.WriteBlock(3, want); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r := open()
	got := make([]byte, logical)
	if err := r.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("reopen read mismatch")
	}
	// Second read uses the now-populated hint; must agree and move fewer
	// bytes than a whole slot.
	before := r.Counters()
	if err := r.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	after := r.Counters()
	if !bytes.Equal(got, want) {
		t.Fatal("hinted read mismatch")
	}
	if moved := after.BytesRead - before.BytesRead; moved >= int64(PhysicalBlockSize(logical)) {
		t.Fatalf("hinted read moved %d bytes, want < %d", moved, PhysicalBlockSize(logical))
	}
}

func TestStoreBitFlipDetected(t *testing.T) {
	const logical = 256
	s, inner := openPair(t, logical, false)
	b := make([]byte, logical)
	for i := 0; i+8 <= logical; i += 8 {
		le.PutUint64(b[i:], uint64(100+i))
	}
	if err := s.WriteBlock(0, b); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the compressed payload via the inner store.
	phys := make([]byte, PhysicalBlockSize(logical))
	if err := inner.ReadBlock(0, phys); err != nil {
		t.Fatal(err)
	}
	phys[HeaderBytes+3] ^= 0x10
	if err := inner.WriteBlock(0, phys); err != nil {
		t.Fatal(err)
	}
	// Bypass the payload-size hint path's cached copy by reading fresh.
	err := s.ReadBlock(0, make([]byte, logical))
	if !errors.Is(err, blockio.ErrCorrupt) {
		t.Fatalf("bit flip read = %v, want ErrCorrupt", err)
	}
	// NoVerify must not error — quarantine uses it.
	if err := s.ReadBlockNoVerify(0, make([]byte, logical)); err != nil {
		t.Fatalf("ReadBlockNoVerify: %v", err)
	}
}
