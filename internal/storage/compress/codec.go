// Package compress implements delta-varint compression of grDB
// adjacency blocks (DESIGN.md §13): the codec (this file) and a
// block-store wrapper (store.go) that encodes on write and decodes on
// read, with a per-payload CRC verified before decoding.
//
// The codec treats a block as a sequence of little-endian uint64 words —
// grDB's tagged adjacency words, whose payloads are neighbor ids in
// mostly ascending order — and encodes each word as the zigzag-varint of
// its wrapping difference from the previous word. Runs of close ids
// shrink to 1–2 bytes per word; the all-zero tail of a partially filled
// block becomes one byte per word. Wrapping arithmetic makes the
// round-trip exact for any input, including non-monotonic sequences.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var le = binary.LittleEndian

// ErrMalformed is wrapped by Decode errors: the payload is truncated,
// has trailing garbage, holds an over-long varint, or the destination
// length is not a whole number of words.
var ErrMalformed = errors.New("compress: malformed payload")

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendEncoded appends the delta-zigzag-varint encoding of src to dst
// and returns the extended slice. len(src) must be a multiple of 8;
// the bytes are interpreted as little-endian uint64 words.
func AppendEncoded(dst, src []byte) []byte {
	var prev uint64
	var tmp [binary.MaxVarintLen64]byte
	for off := 0; off+8 <= len(src); off += 8 {
		w := le.Uint64(src[off:])
		n := binary.PutUvarint(tmp[:], zigzag(int64(w-prev)))
		dst = append(dst, tmp[:n]...)
		prev = w
	}
	return dst
}

// Decode fills dst (whose length must be a multiple of 8) from payload.
// It is strict: the payload must hold exactly len(dst)/8 varints with no
// bytes left over, and never reads past len(payload) — safe on
// arbitrary, attacker-controlled bytes.
func Decode(dst, payload []byte) error {
	if len(dst)%8 != 0 {
		return fmt.Errorf("%w: destination %d bytes is not a whole number of words", ErrMalformed, len(dst))
	}
	var prev uint64
	off := 0
	for i := 0; i+8 <= len(dst); i += 8 {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return fmt.Errorf("%w: word %d truncated or over-long at offset %d", ErrMalformed, i/8, off)
		}
		off += n
		prev += uint64(unzigzag(v))
		le.PutUint64(dst[i:], prev)
	}
	if off != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(payload)-off)
	}
	return nil
}
