package compress

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip: encode→decode must reproduce any word-aligned
// input exactly.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(encWords(1, 2, 3))
	f.Add(encWords(^uint64(0), 0, 1<<63, 7))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := data[:len(data)/8*8] // word-align
		payload := AppendEncoded(nil, src)
		dst := make([]byte, len(src))
		if err := Decode(dst, payload); err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("round trip mismatch: src % x dst % x", src, dst)
		}
	})
}

// FuzzDecodeArbitrary: the decoder must never panic or over-read on
// arbitrary payload bytes, for any destination size.
func FuzzDecodeArbitrary(f *testing.F) {
	f.Add([]byte{}, uint16(8))
	f.Add([]byte{0x80, 0xff, 0x01}, uint16(16))
	f.Add(AppendEncoded(nil, encWords(5, 6, 7)), uint16(24))
	f.Fuzz(func(t *testing.T, payload []byte, dstLen uint16) {
		dst := make([]byte, int(dstLen)%4096)
		_ = Decode(dst, payload) // must not panic
	})
}

// FuzzStoreDecode: feeding arbitrary bytes into a physical slot must
// either decode cleanly or fail with ErrCorrupt — never panic — and
// ReadBlockNoVerify must always succeed.
func FuzzStoreDecode(f *testing.F) {
	const logical = 64
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, PhysicalBlockSize(logical)))
	good := AppendEncoded(make([]byte, HeaderBytes, HeaderBytes+logical), encWords(1, 2, 3, 4, 5, 6, 7, 8))
	putHeader(good[:HeaderBytes], 0, good[HeaderBytes:])
	f.Add([]byte(good))
	f.Fuzz(func(t *testing.T, slot []byte) {
		s := &Store{logical: logical, physical: PhysicalBlockSize(logical), sizes: map[int64]int{}}
		phys := make([]byte, s.physical)
		copy(phys, slot)
		buf := make([]byte, logical)
		_ = s.decode(0, phys, buf) // must not panic
	})
}
