package compress

import (
	"fmt"
	"hash/crc32"
	"sync"

	"mssg/internal/storage/blockio"
)

// On-disk layout of one physical block:
//
//	[0:2)   magic "mZ"
//	[2:3)   format version (1)
//	[3:4)   flags (bit 0: payload is stored raw, not delta-varint)
//	[4:8)   payload length, uint32 LE
//	[8:12)  payload CRC32-C
//	[12:16) header CRC32-C (over bytes [0:12))
//	[16:16+len) payload
//
// A never-written block is all zeroes; the all-zero header decodes as
// the all-zero logical block, preserving grDB's "fresh storage reads as
// empty" invariant without initializing anything.
const (
	// HeaderBytes is the fixed per-block header size.
	HeaderBytes = 16
	// SlackBytes is how much larger a physical block slot is than its
	// logical block: the header plus margin so even a raw (incompressible)
	// payload fits.
	SlackBytes = 32

	magic0, magic1 = 'm', 'Z'
	version        = 1
	flagRaw        = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PhysicalBlockSize returns the backing-store block size for a given
// logical block size.
func PhysicalBlockSize(logical int) int { return logical + SlackBytes }

// Store wraps a blockio.Store holding physical (compressed) blocks and
// presents logical (uncompressed) blocks: WriteBlock encodes, ReadBlock
// verifies the payload CRC and decodes. It satisfies the same method set
// grDB uses on a plain *blockio.Store, so the cache, the WAL recovery
// path, and Scrub all operate on logical blocks without knowing the slot
// holds a compressed image.
//
// On a non-checksummed inner store, reads fetch only header+payload
// (blockio.ReadBlockPrefix) and writes store only header+payload, so
// the byte counters and simulated transfer time reflect the compression
// win. On a checksummed inner store (durable databases) all I/O is
// whole-block, because the sidecar CRC covers the full physical slot.
type Store struct {
	inner    *blockio.Store
	logical  int
	physical int
	verified bool // inner store checksums → whole-block I/O only

	mu sync.Mutex
	// sizes caches each block's current payload length so the next read
	// can fetch an exact prefix. Missing entries (first read after open)
	// fall back to a whole-slot read and populate the cache.
	sizes map[int64]int
}

// Wrap layers compression over inner, which must have been opened with
// block size PhysicalBlockSize(logical). logical must be a multiple of 8
// (the codec is word-based; grDB blocks always are).
func Wrap(inner *blockio.Store, logical int) (*Store, error) {
	if logical <= 0 || logical%8 != 0 {
		return nil, fmt.Errorf("compress: logical block size %d is not a positive multiple of 8", logical)
	}
	if inner.BlockSize() != PhysicalBlockSize(logical) {
		return nil, fmt.Errorf("compress: inner block size %d, want %d for logical %d",
			inner.BlockSize(), PhysicalBlockSize(logical), logical)
	}
	return &Store{
		inner:    inner,
		logical:  logical,
		physical: PhysicalBlockSize(logical),
		verified: inner.Checksums(),
		sizes:    make(map[int64]int),
	}, nil
}

// BlockSize returns the logical block size.
func (s *Store) BlockSize() int { return s.logical }

// Counters reports the inner store's physical I/O. Byte counts reflect
// bytes actually transferred (compressed sizes on the prefix-I/O path).
func (s *Store) Counters() blockio.Counters { return s.inner.Counters() }

// Sync flushes the inner store.
func (s *Store) Sync() error { return s.inner.Sync() }

// Close closes the inner store.
func (s *Store) Close() error { return s.inner.Close() }

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

func putHeader(hdr []byte, flags byte, payload []byte) {
	hdr[0], hdr[1], hdr[2], hdr[3] = magic0, magic1, version, flags
	le.PutUint32(hdr[4:8], uint32(len(payload)))
	le.PutUint32(hdr[8:12], crc32.Checksum(payload, castagnoli))
	le.PutUint32(hdr[12:16], crc32.Checksum(hdr[0:12], castagnoli))
}

// WriteBlock encodes buf (one logical block) into block idx's physical
// slot.
func (s *Store) WriteBlock(idx int64, buf []byte) error {
	if len(buf) != s.logical {
		return fmt.Errorf("compress: write buffer is %d bytes, want %d", len(buf), s.logical)
	}
	if allZero(buf) {
		// Zero logical ↔ zero physical: an all-zero header marks an empty
		// block, and repair-by-zeroing in Scrub round-trips.
		return s.writePhysical(idx, make([]byte, HeaderBytes), 0)
	}
	phys := AppendEncoded(make([]byte, HeaderBytes, HeaderBytes+s.logical), buf)
	flags := byte(0)
	if len(phys)-HeaderBytes >= s.logical {
		// Incompressible: store the logical bytes verbatim.
		phys = append(phys[:HeaderBytes], buf...)
		flags = flagRaw
	}
	putHeader(phys[:HeaderBytes], flags, phys[HeaderBytes:])
	return s.writePhysical(idx, phys, len(phys)-HeaderBytes)
}

func (s *Store) writePhysical(idx int64, phys []byte, payloadLen int) error {
	if s.verified {
		full := make([]byte, s.physical)
		copy(full, phys)
		if err := s.inner.WriteBlock(idx, full); err != nil {
			return err
		}
	} else if err := s.inner.WriteBlockPrefix(idx, phys); err != nil {
		return err
	}
	s.mu.Lock()
	s.sizes[idx] = payloadLen
	s.mu.Unlock()
	return nil
}

// ReadBlock decodes block idx into buf (one logical block). Corruption —
// sidecar CRC mismatch, bad header, payload CRC mismatch, or a payload
// that does not decode to exactly one block — returns an error wrapping
// blockio.ErrCorrupt, so Scrub's quarantine-and-repair path treats
// compressed damage like any other torn block.
func (s *Store) ReadBlock(idx int64, buf []byte) error {
	if len(buf) != s.logical {
		return fmt.Errorf("compress: read buffer is %d bytes, want %d", len(buf), s.logical)
	}
	phys, err := s.readPhysical(idx)
	if err != nil {
		return err
	}
	return s.decode(idx, phys, buf)
}

// readPhysical fetches block idx's slot: whole-block (verified) on
// checksummed stores, exact header+payload prefix otherwise.
func (s *Store) readPhysical(idx int64) ([]byte, error) {
	if s.verified {
		phys := make([]byte, s.physical)
		if err := s.inner.ReadBlock(idx, phys); err != nil {
			return nil, err
		}
		return phys, nil
	}
	s.mu.Lock()
	hint, ok := s.sizes[idx]
	s.mu.Unlock()
	n := s.physical
	if ok {
		n = HeaderBytes + hint
	}
	phys := make([]byte, n)
	if err := s.inner.ReadBlockPrefix(idx, phys); err != nil {
		return nil, err
	}
	if !ok {
		// First read since open: remember the actual payload length for
		// exact prefix reads from now on.
		if plen, hdrOK := payloadLen(phys); hdrOK {
			s.mu.Lock()
			s.sizes[idx] = plen
			s.mu.Unlock()
		}
	}
	return phys, nil
}

// payloadLen extracts the payload length from a plausible header.
func payloadLen(phys []byte) (int, bool) {
	if len(phys) < HeaderBytes || allZero(phys[:HeaderBytes]) {
		return 0, len(phys) >= HeaderBytes
	}
	if phys[0] != magic0 || phys[1] != magic1 {
		return 0, false
	}
	return int(le.Uint32(phys[4:8])), true
}

func (s *Store) corrupt(idx int64, format string, a ...any) error {
	return fmt.Errorf("%w: compressed block %d: %s", blockio.ErrCorrupt, idx, fmt.Sprintf(format, a...))
}

// decode parses a physical image into the logical block buf.
func (s *Store) decode(idx int64, phys, buf []byte) error {
	hdr := phys[:HeaderBytes]
	if allZero(hdr) {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	if hdr[0] != magic0 || hdr[1] != magic1 || hdr[2] != version {
		return s.corrupt(idx, "bad magic/version % x", hdr[:3])
	}
	if got, want := crc32.Checksum(hdr[0:12], castagnoli), le.Uint32(hdr[12:16]); got != want {
		return s.corrupt(idx, "header checksum 0x%08x, want 0x%08x", got, want)
	}
	plen := int(le.Uint32(hdr[4:8]))
	if plen > s.logical || HeaderBytes+plen > len(phys) {
		return s.corrupt(idx, "payload length %d out of range", plen)
	}
	payload := phys[HeaderBytes : HeaderBytes+plen]
	if got, want := crc32.Checksum(payload, castagnoli), le.Uint32(hdr[8:12]); got != want {
		return s.corrupt(idx, "payload checksum 0x%08x, want 0x%08x", got, want)
	}
	if hdr[3]&flagRaw != 0 {
		if plen != s.logical {
			return s.corrupt(idx, "raw payload is %d bytes, want %d", plen, s.logical)
		}
		copy(buf, payload)
		return nil
	}
	if err := Decode(buf, payload); err != nil {
		return s.corrupt(idx, "%v", err)
	}
	return nil
}

// ReadBlockNoVerify fills buf best-effort for quarantine: the decoded
// logical block if the slot decodes, otherwise the raw physical prefix —
// never an error for corrupt content.
func (s *Store) ReadBlockNoVerify(idx int64, buf []byte) error {
	if len(buf) != s.logical {
		return fmt.Errorf("compress: read buffer is %d bytes, want %d", len(buf), s.logical)
	}
	phys := make([]byte, s.physical)
	if err := s.inner.ReadBlockNoVerify(idx, phys); err != nil {
		return err
	}
	if err := s.decode(idx, phys, buf); err != nil {
		copy(buf, phys[:s.logical])
	}
	return nil
}
