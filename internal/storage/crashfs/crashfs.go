// Package crashfs is a fault-injecting vfs.FS that simulates a process
// killed (and a disk caught mid-flush) at any chosen durability
// operation. The crash suite (internal/crash) uses it to verify that the
// storage stack recovers correctly no matter which write, fsync, rename,
// truncate, or directory sync the "power cut" lands on.
//
// # Model
//
// Every durability-relevant operation — WriteAt, Sync, Truncate, Rename,
// SyncDir — increments an operation counter. When the counter reaches
// the configured crash point, the filesystem "crashes":
//
//   - all writes since each file's last successful Sync are rolled back
//     (simulating dirty OS pages lost by the kill), restoring the file's
//     last-synced content — unless SetRetainUnsynced is armed, in which
//     case each file keeps a pseudo-random prefix of its unsynced writes
//     (real kernels write dirty pages back opportunistically, so an
//     unsynced write surviving while a later one is lost is a legal and
//     common outcome; protocols that depend on unsynced writes *not*
//     persisting — steal without undo — fail only under this mode);
//   - renames not yet made durable by a SyncDir of their directory are
//     undone, and files created but never synced are removed;
//   - the crashing operation itself is applied per the configured Policy:
//     not at all, cut short at a byte boundary, torn at 512-byte sector
//     granularity, or applied in full with one bit flipped;
//   - every subsequent operation fails with ErrCrashed.
//
// The combination is deliberately adversarial: an unsynced write from
// before the crash point can vanish while the crashing write partially
// survives — exactly the reordering freedom real disks have — so any
// recovery protocol that relies on unsynced ordering will fail the suite.
package crashfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"mssg/internal/storage/vfs"
)

// ErrCrashed is returned by every operation after the simulated crash.
var ErrCrashed = errors.New("crashfs: crashed")

// Policy selects what the crashing operation leaves on disk.
type Policy int

const (
	// CutClean drops the crashing operation entirely.
	CutClean Policy = iota
	// CutShort applies only the first half of the crashing write.
	CutShort
	// TearSectors applies alternating 512-byte sectors of the crashing
	// write (even sectors land, odd sectors are lost).
	TearSectors
	// FlipBit applies the crashing write in full but flips one bit in
	// its middle byte.
	FlipBit
)

func (p Policy) String() string {
	switch p {
	case CutClean:
		return "cut-clean"
	case CutShort:
		return "cut-short"
	case TearSectors:
		return "tear-sectors"
	case FlipBit:
		return "flip-bit"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

const sectorBytes = 512

// undoRec captures the state a region had before one write or truncate,
// so the unsynced change can be rolled back at crash time.
type undoRec struct {
	off     int64
	preData []byte // previous bytes of [off, off+len), clamped to preSize
	preSize int64  // file size before the operation
}

// renameRec is an unsynced rename (or create) awaiting a SyncDir.
type renameRec struct {
	dir     string
	oldname string // "" for a create
	newname string
}

// FS is the crash-injecting filesystem.
type FS struct {
	inner vfs.FS

	mu      sync.Mutex
	ops     int64
	crashAt int64
	policy  Policy
	crashed bool
	// retainSeed, when non-zero, enables the opportunistic-writeback
	// model: at crash time each file keeps a pseudo-random prefix of its
	// unsynced write journal instead of losing all of it.
	retainSeed uint64

	handles []*file     // every handle ever opened (inner kept for rollback)
	pending []renameRec // unsynced renames/creates
}

// file wraps one inner handle with its unsynced-write journal.
type file struct {
	fs     *FS
	inner  vfs.File
	name   string
	undo   []undoRec
	closed bool
}

// New wraps inner (nil means the real filesystem) without a crash point:
// operations are counted but never fail. Use SetCrashPoint to arm it.
func New(inner vfs.FS) *FS {
	return &FS{inner: vfs.Or(inner)}
}

// SetCrashPoint arms the filesystem: the op-th durability operation
// (1-based) crashes with the given policy. op <= 0 disarms.
func (f *FS) SetCrashPoint(op int64, policy Policy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = op
	f.policy = policy
}

// SetRetainUnsynced arms the opportunistic-writeback crash model: at
// crash time each open file retains a pseudo-random prefix (derived
// deterministically from seed and the file's identity) of the writes
// performed since its last Sync, as if the kernel had flushed that much
// of the file's dirty data on its own before the kill. A zero seed
// restores the default model in which every unsynced write is lost.
// Prefixes are independent per file, so cross-file write ordering is
// still not preserved — one file can survive in full while another loses
// everything.
func (f *FS) SetRetainUnsynced(seed uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.retainSeed = seed
}

// Ops returns the number of durability operations observed so far.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the simulated crash has happened.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Shutdown closes every retained inner handle. Call when a run ends
// without crashing (after a crash the handles are already closed).
func (f *FS) Shutdown() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closeAllLocked()
}

func (f *FS) closeAllLocked() {
	for _, h := range f.handles {
		h.inner.Close()
	}
	f.handles = nil
}

// step accounts one durability operation. It returns (true, nil) when
// this operation is the crashing one (caller applies its policy and then
// calls crashLocked), (false, ErrCrashed) when the crash already
// happened, and (false, nil) in normal operation. Caller holds f.mu.
func (f *FS) stepLocked() (crashNow bool, err error) {
	if f.crashed {
		return false, ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops == f.crashAt {
		return true, nil
	}
	return false, nil
}

// rollbackLocked undoes all unsynced state: per-file write journals
// (newest first), then unsynced renames and creates. Under the
// retain-unsynced model each file first keeps a pseudo-random prefix of
// its journal — a prefix, not an arbitrary subset, because overlapping
// writes share dirty pages and the kernel writes a file's dirty data
// back in order, so "writes up to some instant landed" is the legal
// per-file outcome. Inner handles stay open so the caller can apply the
// crashing op's surviving fragment post-rollback before
// finishCrashLocked closes everything. Caller holds f.mu.
func (f *FS) rollbackLocked() {
	// Undo unsynced writes, newest first, per file.
	for hi, h := range f.handles {
		keep := 0
		if f.retainSeed != 0 && len(h.undo) > 0 {
			keep = int(mix(f.retainSeed, h.name, hi) % uint64(len(h.undo)+1))
		}
		for i := len(h.undo) - 1; i >= keep; i-- {
			u := h.undo[i]
			h.inner.Truncate(u.preSize)
			if len(u.preData) > 0 {
				h.inner.WriteAt(u.preData, u.off)
			}
		}
		h.undo = nil
	}
	// Undo unsynced renames and creates, newest first.
	for i := len(f.pending) - 1; i >= 0; i-- {
		r := f.pending[i]
		if r.oldname == "" {
			f.inner.Remove(r.newname)
		} else {
			f.inner.Rename(r.newname, r.oldname)
		}
	}
	f.pending = nil
}

// mix derives a deterministic per-file value from the retain seed, the
// file name, and the handle index (two handles to one name journal
// independently), via FNV-1a into a splitmix64 finalizer.
func mix(seed uint64, name string, handle int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := seed ^ h ^ (uint64(handle) << 32)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (f *FS) finishCrashLocked() {
	f.crashed = true
	f.closeAllLocked()
}

// journal records the pre-image of [off, off+n) of h before a write or
// truncate touches it. Caller holds f.mu.
func (h *file) journal(off int64, n int64) error {
	preSize, err := h.inner.Size()
	if err != nil {
		return err
	}
	rec := undoRec{off: off, preSize: preSize}
	if off < preSize {
		m := n
		if off+m > preSize {
			m = preSize - off
		}
		rec.preData = make([]byte, m)
		if _, err := h.inner.ReadAt(rec.preData, off); err != nil {
			return err
		}
	}
	h.undo = append(h.undo, rec)
	return nil
}

// --- vfs.FS ---

// OpenFile opens name through the inner filesystem, recording creations
// so they can be undone if never synced.
func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	created := false
	if flag&os.O_CREATE != 0 {
		if probe, err := f.inner.OpenFile(name, flag&^(os.O_CREATE|os.O_TRUNC|os.O_EXCL), perm); err == nil {
			probe.Close()
		} else {
			created = true
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	h := &file{fs: f, inner: inner, name: name}
	f.handles = append(f.handles, h)
	if created {
		f.pending = append(f.pending, renameRec{dir: parentDir(name), newname: name})
	}
	return h, nil
}

// Rename renames through the inner filesystem; the rename is undone at
// crash time unless a SyncDir of its directory (or a Sync of the renamed
// file) has made it durable.
func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	crashNow, err := f.stepLocked()
	if err != nil {
		return err
	}
	if crashNow {
		// A crashing rename either happened or it did not; model the
		// adversarial case: it did not, and neither did anything unsynced.
		f.rollbackLocked()
		f.finishCrashLocked()
		return ErrCrashed
	}
	if err := f.inner.Rename(oldname, newname); err != nil {
		return err
	}
	f.pending = append(f.pending, renameRec{dir: parentDir(oldname), oldname: oldname, newname: newname})
	return nil
}

// Remove deletes through the inner filesystem. Removals are not undone:
// the only removals in the stack are temp-file cleanups, and a temp file
// resurrected by a crash is harmless.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return f.inner.Remove(name)
}

// MkdirAll passes through (directory creation happens once at setup).
func (f *FS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path, perm)
}

// SyncDir makes the directory's renames and creations durable.
func (f *FS) SyncDir(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	crashNow, err := f.stepLocked()
	if err != nil {
		return err
	}
	if crashNow {
		f.rollbackLocked()
		f.finishCrashLocked()
		return ErrCrashed
	}
	if err := f.inner.SyncDir(path); err != nil {
		return err
	}
	kept := f.pending[:0]
	for _, r := range f.pending {
		if r.dir != path {
			kept = append(kept, r)
		}
	}
	f.pending = kept
	return nil
}

// --- vfs.File ---

func (h *file) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, fs.ErrClosed
	}
	return h.inner.ReadAt(p, off)
}

func (h *file) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	crashNow, err := h.fs.stepLocked()
	if err != nil {
		return 0, err
	}
	if crashNow {
		frags := survivingFragments(p, off, h.fs.policy)
		h.fs.rollbackLocked()
		for _, fr := range frags {
			h.inner.WriteAt(fr.data, fr.off)
		}
		h.fs.finishCrashLocked()
		return 0, ErrCrashed
	}
	if err := h.journal(off, int64(len(p))); err != nil {
		return 0, err
	}
	return h.inner.WriteAt(p, off)
}

// fragment is one surviving piece of the crashing write.
type fragment struct {
	off  int64
	data []byte
}

// survivingFragments applies the crash policy to the crashing write.
// Regions between fragments keep their pre-crash (rolled-back) bytes.
func survivingFragments(p []byte, off int64, policy Policy) []fragment {
	switch policy {
	case CutShort:
		if len(p) == 0 {
			return nil
		}
		return []fragment{{off: off, data: p[:len(p)/2]}}
	case TearSectors:
		if len(p) <= sectorBytes {
			return []fragment{{off: off, data: p[:len(p)/2]}}
		}
		// Even sectors land, odd sectors are lost — the classic torn
		// multi-sector write.
		var out []fragment
		for lo := 0; lo < len(p); lo += 2 * sectorBytes {
			hi := lo + sectorBytes
			if hi > len(p) {
				hi = len(p)
			}
			out = append(out, fragment{off: off + int64(lo), data: p[lo:hi]})
		}
		return out
	case FlipBit:
		if len(p) == 0 {
			return nil
		}
		d := append([]byte(nil), p...)
		d[len(d)/2] ^= 0x10
		return []fragment{{off: off, data: d}}
	default: // CutClean
		return nil
	}
}

func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	crashNow, err := h.fs.stepLocked()
	if err != nil {
		return err
	}
	if crashNow {
		// Crash mid-fsync: the first half of this file's unsynced writes
		// reach the disk, the rest (and everything else unsynced) do not.
		h.undo = h.undo[len(h.undo)/2:]
		h.fs.rollbackLocked()
		h.fs.finishCrashLocked()
		return ErrCrashed
	}
	if err := h.inner.Sync(); err != nil {
		return err
	}
	h.undo = nil
	// Per ext4 semantics, fsync of a freshly created file also persists
	// its directory entry.
	kept := h.fs.pending[:0]
	for _, r := range h.fs.pending {
		if r.oldname == "" && r.newname == h.name {
			continue
		}
		kept = append(kept, r)
	}
	h.fs.pending = kept
	return nil
}

func (h *file) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	crashNow, err := h.fs.stepLocked()
	if err != nil {
		return err
	}
	if crashNow {
		h.fs.rollbackLocked()
		h.fs.finishCrashLocked()
		return ErrCrashed
	}
	preSize, err := h.inner.Size()
	if err != nil {
		return err
	}
	if size < preSize {
		if err := h.journal(size, preSize-size); err != nil {
			return err
		}
	}
	return h.inner.Truncate(size)
}

func (h *file) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, fs.ErrClosed
	}
	return h.inner.Size()
}

// Close marks the handle closed but retains the inner handle: unsynced
// writes can still be lost (the OS page cache outlives a file
// descriptor), so the journal must stay replayable until crash time.
func (h *file) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

func parentDir(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return "."
}
