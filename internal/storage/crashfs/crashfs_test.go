package crashfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mssg/internal/storage/vfs"
)

func openRW(t *testing.T, fsys vfs.FS, path string) vfs.File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustWrite(t *testing.T, f vfs.File, p []byte, off int64) {
	t.Helper()
	if _, err := f.WriteAt(p, off); err != nil {
		t.Fatal(err)
	}
}

func readDisk(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOpCountingAndDisarmed(t *testing.T) {
	dir := t.TempDir()
	cf := New(nil)
	defer cf.Shutdown()
	p := filepath.Join(dir, "a")
	f := openRW(t, cf, p) // open is not a durability op
	if cf.Ops() != 0 {
		t.Fatalf("ops after open = %d", cf.Ops())
	}
	mustWrite(t, f, []byte("xy"), 0) // 1
	if err := f.Sync(); err != nil { // 2
		t.Fatal(err)
	}
	if err := f.Truncate(1); err != nil { // 3
		t.Fatal(err)
	}
	if err := cf.SyncDir(dir); err != nil { // 4
		t.Fatal(err)
	}
	if err := cf.Rename(p, p+"2"); err != nil { // 5
		t.Fatal(err)
	}
	if got := cf.Ops(); got != 5 {
		t.Fatalf("ops = %d, want 5", got)
	}
	if cf.Crashed() {
		t.Fatal("disarmed fs crashed")
	}
}

func TestUnsyncedWritesRollBack(t *testing.T) {
	dir := t.TempDir()
	cf := New(nil)
	p := filepath.Join(dir, "a")
	f := openRW(t, cf, p)
	mustWrite(t, f, []byte("SYNCED--"), 0) // op 1
	if err := f.Sync(); err != nil {       // op 2
		t.Fatal(err)
	}
	mustWrite(t, f, []byte("dirty"), 8)      // op 3: unsynced, must vanish
	cf.SetCrashPoint(4, CutClean)            //
	_, err := f.WriteAt([]byte("boom"), 100) // op 4: crash, CutClean drops it
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write err = %v", err)
	}
	if !cf.Crashed() {
		t.Fatal("not crashed")
	}
	got := readDisk(t, p)
	if string(got) != "SYNCED--" {
		t.Fatalf("disk after crash = %q, want synced prefix only", got)
	}
}

func TestUnsyncedCreateVanishes(t *testing.T) {
	dir := t.TempDir()
	cf := New(nil)
	p := filepath.Join(dir, "a")
	f := openRW(t, cf, p) // created, never synced
	cf.SetCrashPoint(1, CutShort)
	if _, err := f.WriteAt([]byte("abcdefgh"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err == nil {
		t.Fatal("unsynced created file survived crash")
	}
}

func TestCutShortOnExistingFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	if err := os.WriteFile(p, []byte("________"), 0o644); err != nil {
		t.Fatal(err)
	}
	cf := New(nil)
	f := openRW(t, cf, p)
	cf.SetCrashPoint(1, CutShort)
	_, err := f.WriteAt([]byte("abcdefgh"), 0)
	if !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if got := string(readDisk(t, p)); got != "abcd____" {
		t.Fatalf("disk = %q, want half-applied write", got)
	}
}

func TestTearSectors(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	pre := make([]byte, 4*sectorBytes)
	for i := range pre {
		pre[i] = '_'
	}
	if err := os.WriteFile(p, pre, 0o644); err != nil {
		t.Fatal(err)
	}
	cf := New(nil)
	f := openRW(t, cf, p)
	cf.SetCrashPoint(1, TearSectors)
	w := make([]byte, 3*sectorBytes+10)
	for i := range w {
		w[i] = 'N'
	}
	if _, err := f.WriteAt(w, 0); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	got := readDisk(t, p)
	check := func(off int, want byte) {
		t.Helper()
		if got[off] != want {
			t.Fatalf("byte %d = %c, want %c", off, got[off], want)
		}
	}
	// survivingFragments keeps one sector from every 2*sector stride of
	// the write: [0,512) and [1024,1536) land; [512,1024) and the tail
	// [1536,1546) are lost (pre-crash bytes remain).
	check(0, 'N')
	check(511, 'N')
	check(512, '_')
	check(1023, '_')
	check(1024, 'N')
	check(1535, 'N')
	check(1536, '_')
	check(2000, '_')
}

func TestFlipBit(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	if err := os.WriteFile(p, make([]byte, 8), 0o644); err != nil {
		t.Fatal(err)
	}
	cf := New(nil)
	f := openRW(t, cf, p)
	cf.SetCrashPoint(1, FlipBit)
	if _, err := f.WriteAt(make([]byte, 8), 0); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	got := readDisk(t, p)
	if got[4] != 0x10 {
		t.Fatalf("middle byte = %#x, want flipped bit 0x10", got[4])
	}
	for i, b := range got {
		if i != 4 && b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestRenameUndoneWithoutSyncDir(t *testing.T) {
	dir := t.TempDir()
	oldp := filepath.Join(dir, "old")
	newp := filepath.Join(dir, "new")
	if err := os.WriteFile(oldp, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	cf := New(nil)
	if err := cf.Rename(oldp, newp); err != nil { // op 1
		t.Fatal(err)
	}
	cf.SetCrashPoint(2, CutClean)
	f := openRW(t, cf, newp)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) { // op 2
		t.Fatal(err)
	}
	if _, err := os.Stat(newp); err == nil {
		t.Fatal("unsynced rename survived crash")
	}
	if got := string(readDisk(t, oldp)); got != "v1" {
		t.Fatalf("old file = %q", got)
	}
}

func TestRenameDurableAfterSyncDir(t *testing.T) {
	dir := t.TempDir()
	oldp := filepath.Join(dir, "old")
	newp := filepath.Join(dir, "new")
	if err := os.WriteFile(oldp, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	cf := New(nil)
	if err := cf.Rename(oldp, newp); err != nil { // op 1
		t.Fatal(err)
	}
	if err := cf.SyncDir(dir); err != nil { // op 2
		t.Fatal(err)
	}
	cf.SetCrashPoint(3, CutClean)
	f := openRW(t, cf, newp)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) { // op 3
		t.Fatal(err)
	}
	if got := string(readDisk(t, newp)); got != "v1" {
		t.Fatalf("renamed file lost after SyncDir: %q", got)
	}
	if _, err := os.Stat(oldp); err == nil {
		t.Fatal("old name resurrected after durable rename")
	}
}

func TestCreateDurableAfterFileSync(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	cf := New(nil)
	f := openRW(t, cf, p)
	mustWrite(t, f, []byte("keep"), 0) // op 1
	if err := f.Sync(); err != nil {   // op 2 — persists data AND dir entry
		t.Fatal(err)
	}
	g := openRW(t, cf, filepath.Join(dir, "b"))
	cf.SetCrashPoint(3, CutClean)
	if _, err := g.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) { // op 3
		t.Fatal(err)
	}
	if got := string(readDisk(t, p)); got != "keep" {
		t.Fatalf("synced created file lost: %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); err == nil {
		t.Fatal("unsynced created file survived")
	}
}

func TestCrashDuringSyncKeepsHalfJournal(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	if err := os.WriteFile(p, []byte("________"), 0o644); err != nil {
		t.Fatal(err)
	}
	cf := New(nil)
	f := openRW(t, cf, p)
	mustWrite(t, f, []byte("AA"), 0) // op 1 (journal[0])
	mustWrite(t, f, []byte("BB"), 2) // op 2 (journal[1])
	cf.SetCrashPoint(3, CutClean)
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // op 3: crash mid-fsync
		t.Fatal(err)
	}
	// First half of the journal (write "AA") reached disk; "BB" did not.
	if got := string(readDisk(t, p)); got != "AA______" {
		t.Fatalf("disk = %q, want first journal half applied", got)
	}
}

func TestTruncateRollsBack(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	if err := os.WriteFile(p, []byte("longcontent"), 0o644); err != nil {
		t.Fatal(err)
	}
	cf := New(nil)
	f := openRW(t, cf, p)
	if err := f.Truncate(4); err != nil { // op 1: unsynced shrink
		t.Fatal(err)
	}
	cf.SetCrashPoint(2, CutClean)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) { // op 2
		t.Fatal(err)
	}
	if got := string(readDisk(t, p)); got != "longcontent" {
		t.Fatalf("disk = %q, want truncate rolled back", got)
	}
}

func TestEverythingFailsAfterCrash(t *testing.T) {
	dir := t.TempDir()
	cf := New(nil)
	p := filepath.Join(dir, "a")
	f := openRW(t, cf, p)
	cf.SetCrashPoint(1, CutClean)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadAt: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync: %v", err)
	}
	if _, err := f.Size(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Size: %v", err)
	}
	if _, err := cf.OpenFile(p, os.O_RDWR, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := cf.Rename(p, p+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Rename: %v", err)
	}
	if err := cf.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := cf.Remove(p); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Remove: %v", err)
	}
}

func TestSyncedDataAlwaysSurvives(t *testing.T) {
	// Property sweep: write+sync a known prefix, then do more unsynced
	// work and crash at every op; the synced prefix must always be intact.
	for crashAt := int64(3); crashAt <= 6; crashAt++ {
		for _, pol := range []Policy{CutClean, CutShort, TearSectors, FlipBit} {
			dir := t.TempDir()
			p := filepath.Join(dir, "a")
			cf := New(nil)
			f := openRW(t, cf, p)
			mustWrite(t, f, []byte("STABLE"), 0) // op 1
			if err := f.Sync(); err != nil {     // op 2
				t.Fatal(err)
			}
			cf.SetCrashPoint(crashAt, pol)
			// ops 3..6: unsynced writes beyond the stable prefix
			for off := int64(6); ; off += 2 {
				if _, err := f.WriteAt([]byte("zz"), off); err != nil {
					if !errors.Is(err, ErrCrashed) {
						t.Fatal(err)
					}
					break
				}
			}
			got := readDisk(t, p)
			if len(got) < 6 || string(got[:6]) != "STABLE" {
				t.Fatalf("crashAt=%d policy=%v: synced prefix lost: %q", crashAt, pol, got)
			}
		}
	}
}

func TestRetainUnsyncedKeepsPerFilePrefix(t *testing.T) {
	// Under the opportunistic-writeback model, each file keeps some
	// pseudo-random prefix of its unsynced writes. The invariants: the
	// synced prefix always survives, and whatever unsynced data survives
	// is a prefix — a later unsynced write never persists after an
	// earlier one was lost within the same file.
	sawRetained := false
	for seed := uint64(1); seed <= 32; seed++ {
		dir := t.TempDir()
		p := filepath.Join(dir, "a")
		cf := New(nil)
		cf.SetRetainUnsynced(seed)
		f := openRW(t, cf, p)
		mustWrite(t, f, []byte("STABLE"), 0) // op 1
		if err := f.Sync(); err != nil {     // op 2
			t.Fatal(err)
		}
		// Unsynced writes 'A', 'B', 'C' at offsets 6, 7, 8, then a
		// crashing op that itself leaves nothing (CutClean rename).
		mustWrite(t, f, []byte("A"), 6) // op 3
		mustWrite(t, f, []byte("B"), 7) // op 4
		mustWrite(t, f, []byte("C"), 8) // op 5
		cf.SetCrashPoint(6, CutClean)
		if err := cf.Rename(p, p+"2"); !errors.Is(err, ErrCrashed) { // op 6
			t.Fatal(err)
		}
		got := readDisk(t, p)
		if len(got) < 6 || string(got[:6]) != "STABLE" {
			t.Fatalf("seed=%d: synced prefix lost: %q", seed, got)
		}
		switch tail := string(got[6:]); tail {
		case "", "A", "AB", "ABC":
			if tail != "" {
				sawRetained = true
			}
		default:
			t.Fatalf("seed=%d: surviving unsynced data %q is not a prefix", seed, tail)
		}
	}
	if !sawRetained {
		t.Fatal("no seed retained any unsynced write; retain mode is inert")
	}
}

func TestRetainUnsyncedIndependentPerFile(t *testing.T) {
	// Two files with identical unsynced histories must get independent
	// cuts for at least one seed: cross-file ordering is not preserved.
	for seed := uint64(1); seed <= 64; seed++ {
		dir := t.TempDir()
		cf := New(nil)
		cf.SetRetainUnsynced(seed)
		fa := openRW(t, cf, filepath.Join(dir, "a"))
		fb := openRW(t, cf, filepath.Join(dir, "b"))
		if err := fa.Sync(); err != nil { // persist the creates: only the
			t.Fatal(err) //                 data writes below are unsynced
		}
		if err := fb.Sync(); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 4; i++ {
			mustWrite(t, fa, []byte("x"), i)
			mustWrite(t, fb, []byte("x"), i)
		}
		cf.SetCrashPoint(11, CutClean)
		if err := cf.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "c")); !errors.Is(err, ErrCrashed) {
			t.Fatal(err)
		}
		if len(readDisk(t, filepath.Join(dir, "a"))) != len(readDisk(t, filepath.Join(dir, "b"))) {
			return // found a seed with differing per-file cuts
		}
	}
	t.Fatal("per-file retention cuts never differed across 64 seeds")
}
