package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func tinyParams(t *testing.T) *Params {
	t.Helper()
	return &Params{Scale: 0.0005, Queries: 4, Dir: t.TempDir()}
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := []string{"table5.1", "fig5.1", "fig5.2", "fig5.3", "fig5.4",
		"fig5.5", "fig5.6", "fig5.7", "fig5.8", "fig5.9", "qps", "tenants",
		"io", "migration"}
	all := All()
	if len(all) != len(ids) {
		t.Fatalf("All() has %d experiments, want %d", len(all), len(ids))
	}
	for i, id := range ids {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) failed", id)
		}
	}
	if _, ok := ByID("fig9.9"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestTable51Smoke(t *testing.T) {
	p := tinyParams(t)
	tab, err := Table51(p)
	if err != nil {
		t.Fatalf("Table51: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table51 has %d rows, want 3", len(tab.Rows))
	}
	s := tab.String()
	for _, want := range []string{"PubMed-S'", "PubMed-L'", "Syn'", "table5.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig51Smoke(t *testing.T) {
	p := tinyParams(t)
	tab, err := Fig51(p)
	if err != nil {
		t.Fatalf("Fig51: %v", err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("Fig51 produced no rows")
	}
	if len(tab.Header) != 3 {
		t.Fatalf("Fig51 header = %v", tab.Header)
	}
}

func TestFig53Smoke(t *testing.T) {
	p := tinyParams(t)
	tab, err := Fig53(p)
	if err != nil {
		t.Fatalf("Fig53: %v", err)
	}
	if len(tab.Rows) != len(fiveDBsSmall) {
		t.Fatalf("Fig53 rows = %d, want %d", len(tab.Rows), len(fiveDBsSmall))
	}
	// Every cell must parse as a positive duration in seconds.
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, ".") {
				t.Fatalf("cell %q does not look like seconds", cell)
			}
		}
	}
}

func TestIOEngineSmoke(t *testing.T) {
	// Global lever flags must not leak into the ablation's own sweep:
	// the baseline row of an -compress -prefetch -shared-cache run has
	// to stay a baseline.
	p := tinyParams(t)
	p.Prefetch, p.Compress, p.SharedCache = true, true, true
	tab, err := IOEngine(p)
	if err != nil {
		t.Fatalf("IOEngine: %v", err)
	}
	if len(tab.Rows) != len(ioConfigs()) {
		t.Fatalf("io rows = %d, want %d", len(tab.Rows), len(ioConfigs()))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v does not match header %v", row, tab.Header)
		}
	}
	// Compression must show up in the byte counter: the compress row
	// reads fewer MB than baseline at identical workload.
	var mb = func(row []string) float64 {
		var f float64
		fmt.Sscanf(row[5], "%f", &f)
		return f
	}
	if mb(tab.Rows[2]) >= mb(tab.Rows[0]) {
		t.Errorf("compress read %v MB, baseline %v MB — expected fewer", mb(tab.Rows[2]), mb(tab.Rows[0]))
	}
}

func TestMigrationSmoke(t *testing.T) {
	p := tinyParams(t)
	tab, err := Migration(p)
	if err != nil {
		t.Fatalf("Migration: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("migration rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v does not match header %v", row, tab.Header)
		}
	}
	// The topology change must actually commit: epoch advances between
	// the before and after rows, and stays put during the migration.
	if tab.Rows[0][1] != tab.Rows[1][1] {
		t.Errorf("during-migration row routed at epoch %s, want the pre-commit epoch %s", tab.Rows[1][1], tab.Rows[0][1])
	}
	if tab.Rows[0][1] == tab.Rows[2][1] {
		t.Errorf("epoch did not advance: before %s, after %s", tab.Rows[0][1], tab.Rows[2][1])
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "test",
		Header: []string{"A", "LongColumn"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[4], "# ") {
		t.Fatalf("note not rendered: %q", lines[4])
	}
}

func TestParamsDefaults(t *testing.T) {
	p := &Params{}
	if p.scale() != DefaultScale {
		t.Errorf("default scale = %v", p.scale())
	}
	if p.queries() != 30 {
		t.Errorf("default queries = %d", p.queries())
	}
	if p.synScale() >= p.scale() {
		t.Errorf("syn scale %v not smaller than base %v", p.synScale(), p.scale())
	}
	// logf must not panic without a sink.
	p.logf("ignored %d", 1)
}

func TestOOCOptions(t *testing.T) {
	o := oocOptions()
	if o.CacheBytes != SimCacheBytes || o.SimReadLatency != SimLatency {
		t.Fatalf("oocOptions = %+v", o)
	}
	if SimLatency < 10*time.Microsecond || SimLatency > time.Millisecond {
		t.Fatalf("SimLatency %v outside sane range", SimLatency)
	}
}
