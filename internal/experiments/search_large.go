package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/query"
)

// The PubMed-L experiments use 8 front-end ingestion nodes and vary the
// number of back-end storage nodes (paper Figs 5.5–5.7).
var pubmedLBackends = []int{4, 8, 16}

const pubmedLFrontEnds = 8

// prepareLarge generates PubMed-L' and its query pairs.
func prepareLarge(p *Params) ([]graph.Edge, [][2]graph.VertexID, error) {
	cfg := gen.PubMedL(p.scale())
	p.logf("generating %s (%d vertices)", cfg.Name, cfg.Vertices)
	edges, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	pairs := gen.RandomQueryPairs(edges, cfg.Vertices, p.queries(), 777)
	return edges, pairs, nil
}

// largeRun is one (backend, back-end count) cell of the PubMed-L
// experiments: a timed ingestion followed by the query workload. All of
// Figs 5.5, 5.6 and 5.7 come from the same runs, as in the paper.
type largeRun struct {
	ingest time.Duration
	qs     *queryStats
}

func largeRuns(p *Params) (map[string]map[int]*largeRun, error) {
	edges, pairs, err := prepareLarge(p)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[int]*largeRun)
	for _, backend := range fiveDBsLarge {
		out[backend] = make(map[int]*largeRun)
		for _, nb := range pubmedLBackends {
			label := fmt.Sprintf("fig5.5-%s-b%d", backend, nb)
			e, err := buildEngine(p, label, backend, nb, pubmedLFrontEnds, oocOptions())
			if err != nil {
				return nil, err
			}
			d, err := ingestDuration(e, edges)
			if err != nil {
				e.Close()
				return nil, fmt.Errorf("fig5.5 ingest %s b=%d: %w", backend, nb, err)
			}
			p.logf("fig5.5 %s b=%d: ingest %s", backend, nb, d)
			qs, err := runQueries(e, pairs, query.BFSConfig{Workers: p.Workers, Prefetch: p.Prefetch})
			e.Close()
			if err != nil {
				return nil, fmt.Errorf("fig5.6 query %s b=%d: %w", backend, nb, err)
			}
			p.logf("fig5.6 %s b=%d: search %s, %d edges", backend, nb, qs.totalTime, qs.totalEdges)
			out[backend][nb] = &largeRun{ingest: d, qs: qs}
		}
	}
	return out, nil
}

// largeCache memoizes the shared Fig 5.5/5.6/5.7 runs within one process.
var largeCache map[string]map[int]*largeRun

func largeRunsCached(p *Params) (map[string]map[int]*largeRun, error) {
	if largeCache != nil {
		return largeCache, nil
	}
	runs, err := largeRuns(p)
	if err != nil {
		return nil, err
	}
	largeCache = runs
	return runs, nil
}

// Fig55 reproduces Figure 5.5: ingestion of PubMed-L with 8 front-ends,
// varying back-end storage nodes, across five GraphDBs.
func Fig55(p *Params) (*Table, error) {
	runs, err := largeRunsCached(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5.5",
		Title:  fmt.Sprintf("ingestion time (s) of PubMed-L', %d front-ends", pubmedLFrontEnds),
		Header: []string{"GraphDB", "4 back-ends (s)", "8 back-ends (s)", "16 back-ends (s)"},
		Notes: []string{
			"paper shape: StreamDB unrivaled (sequential binary appends);",
			"grDB gains a significant advantage over BerkeleyDB at this size (BDB took >1600s)",
		},
	}
	for _, backend := range fiveDBsLarge {
		row := []string{backend}
		for _, nb := range pubmedLBackends {
			row = append(row, seconds(runs[backend][nb].ingest))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig56 reproduces Figure 5.6: execution-time search performance on
// PubMed-L, varying back-end nodes.
func Fig56(p *Params) (*Table, error) {
	runs, err := largeRunsCached(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5.6",
		Title:  fmt.Sprintf("avg query time (ms), PubMed-L', %d random queries", p.queries()),
		Header: []string{"GraphDB", "4 back-ends", "8 back-ends", "16 back-ends"},
		Notes: []string{
			"paper shape: Array fastest, HashMap close; grDB strong on 8/16 nodes",
			"but drops below StreamDB on 4 nodes (random access vs one sequential scan)",
		},
	}
	for _, backend := range fiveDBsLarge {
		row := []string{backend}
		for _, nb := range pubmedLBackends {
			qs := runs[backend][nb].qs
			row = append(row, ms(qs.totalTime/time.Duration(p.queries())))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig57 reproduces Figure 5.7: aggregate edges/s during the same search
// workload.
func Fig57(p *Params) (*Table, error) {
	runs, err := largeRunsCached(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5.7",
		Title:  "aggregate search throughput (edges/s), PubMed-L'",
		Header: []string{"GraphDB", "4 back-ends", "8 back-ends", "16 back-ends"},
		Notes: []string{
			"paper shape: Array near 30M edges/s, grDB reaches 20M on 16 nodes and",
			"drops sharply on 4; grDB scans more edges/s than StreamDB yet can lose on time",
		},
	}
	for _, backend := range fiveDBsLarge {
		row := []string{backend}
		for _, nb := range pubmedLBackends {
			qs := runs[backend][nb].qs
			row = append(row, edgesPerSec(qs.totalEdges, qs.totalTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// synRuns executes the Fig 5.8/5.9 workload: Syn' on grDB only, varying
// back-ends, with in-memory and external-memory visited structures.
func synRuns(p *Params) (map[string]map[int]*queryStats, error) {
	cfg := gen.Syn2B(p.synScale())
	p.logf("generating %s (%d vertices)", cfg.Name, cfg.Vertices)
	edges, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	pairs := gen.RandomQueryPairs(edges, cfg.Vertices, p.queries(), 31337)

	out := map[string]map[int]*queryStats{"mem": {}, "ext": {}}
	for _, nb := range pubmedLBackends {
		label := fmt.Sprintf("fig5.8-b%d", nb)
		e, err := buildEngine(p, label, "grdb", nb, pubmedLFrontEnds, oocOptions())
		if err != nil {
			return nil, err
		}
		if _, err := e.IngestEdges(edges); err != nil {
			e.Close()
			return nil, fmt.Errorf("fig5.8 ingest b=%d: %w", nb, err)
		}
		memQS, err := runQueries(e, pairs, query.BFSConfig{Workers: p.Workers, Prefetch: p.Prefetch})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("fig5.8 mem-visited b=%d: %w", nb, err)
		}
		// Every BFS run needs a fresh external-visited structure: a stale
		// one would mark everything visited and cut searches short.
		visitedRoot := fmt.Sprintf("%s/%s-visited", p.Dir, label)
		var visitedSeq atomic.Int64
		extQS, err := runQueries(e, pairs, query.BFSConfig{
			Workers:  p.Workers,
			Prefetch: p.Prefetch,
			NewVisited: func(n cluster.NodeID) (query.Visited, error) {
				q := visitedSeq.Add(1)
				return query.NewExtVisited(fmt.Sprintf("%s/q%d-n%d", visitedRoot, q, n), 0)
			},
		})
		e.Close()
		if err != nil {
			return nil, fmt.Errorf("fig5.8 ext-visited b=%d: %w", nb, err)
		}
		p.logf("fig5.8 b=%d: mem %s, ext %s", nb, memQS.totalTime, extQS.totalTime)
		out["mem"][nb] = memQS
		out["ext"][nb] = extQS
	}
	return out, nil
}

var synCache map[string]map[int]*queryStats

func synRunsCached(p *Params) (map[string]map[int]*queryStats, error) {
	if synCache != nil {
		return synCache, nil
	}
	runs, err := synRuns(p)
	if err != nil {
		return nil, err
	}
	synCache = runs
	return runs, nil
}

// Fig58 reproduces Figure 5.8: execution-time search performance for the
// Syn graph on grDB, with in-memory vs external-memory visited.
func Fig58(p *Params) (*Table, error) {
	runs, err := synRunsCached(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5.8",
		Title:  fmt.Sprintf("avg query time (ms), Syn', grDB, %d random queries", p.queries()),
		Header: []string{"Visited", "4 back-ends", "8 back-ends", "16 back-ends"},
		Notes: []string{
			"paper shape: external-memory visited costs extra but stays practical;",
			"time shrinks as back-ends grow",
		},
	}
	for _, variant := range []string{"mem", "ext"} {
		row := []string{variant}
		for _, nb := range pubmedLBackends {
			qs := runs[variant][nb]
			row = append(row, ms(qs.totalTime/time.Duration(p.queries())))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig59 reproduces Figure 5.9: edges/s for the Syn graph on grDB.
func Fig59(p *Params) (*Table, error) {
	runs, err := synRunsCached(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5.9",
		Title:  "aggregate search throughput (edges/s), Syn', grDB",
		Header: []string{"Visited", "4 back-ends", "8 back-ends", "16 back-ends"},
		Notes: []string{
			"paper shape: over 10M edges/s when touching a large portion of the graph",
			"(absolute numbers scale with machine; shape across node counts is the check)",
		},
	}
	for _, variant := range []string{"mem", "ext"} {
		row := []string{variant}
		for _, nb := range pubmedLBackends {
			qs := runs[variant][nb]
			row = append(row, edgesPerSec(qs.totalEdges, qs.totalTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
