package experiments

import (
	"fmt"

	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/query"
)

// pubmedSNodes is the paper's back-end count for the PubMed-S experiments
// (chapter 5 runs them "on 16 nodes").
const pubmedSNodes = 16

// prepareSmall generates PubMed-S' and its random query pairs.
func prepareSmall(p *Params) ([]graph.Edge, [][2]graph.VertexID, error) {
	cfg := gen.PubMedS(p.scale())
	p.logf("generating %s (%d vertices)", cfg.Name, cfg.Vertices)
	edges, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	pairs := gen.RandomQueryPairs(edges, cfg.Vertices, p.queries(), 4242)
	return edges, pairs, nil
}

// searchOneBackend ingests PubMed-S' into a fresh engine and runs the
// query workload.
func searchOneBackend(p *Params, label, backend string, edges []graph.Edge,
	pairs [][2]graph.VertexID, opts graphdb.Options) (*queryStats, error) {
	e, err := buildEngine(p, label, backend, pubmedSNodes, 1, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if _, err := e.IngestEdges(edges); err != nil {
		return nil, err
	}
	p.logf("%s: ingested, querying", label)
	return runQueries(e, pairs, query.BFSConfig{Workers: p.Workers, Prefetch: p.Prefetch})
}

// Fig51 reproduces Figure 5.1: search performance of the in-memory
// GraphDB implementations on PubMed-S, by path length.
func Fig51(p *Params) (*Table, error) {
	edges, pairs, err := prepareSmall(p)
	if err != nil {
		return nil, err
	}
	runs := make(map[string]*queryStats)
	for _, backend := range []string{"array", "hashmap"} {
		qs, err := searchOneBackend(p, "fig5.1-"+backend, backend, edges, pairs, graphdb.Options{})
		if err != nil {
			return nil, fmt.Errorf("fig5.1 %s: %w", backend, err)
		}
		runs[backend] = qs
	}
	t := &Table{
		ID:     "fig5.1",
		Title:  fmt.Sprintf("avg query time (ms) by path length, %d nodes, %d random queries", pubmedSNodes, p.queries()),
		Header: []string{"PathLen", "Array(ms)", "HashMap(ms)"},
		Notes: []string{
			"paper shape: Array beats HashMap at every length; gap grows with path length",
			"(hash lookup per adjacency access, fringe grows exponentially)",
		},
	}
	for _, l := range pathLengths(runs["array"], runs["hashmap"]) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", l),
			ms(avg(runs["array"].byLength[l])),
			ms(avg(runs["hashmap"].byLength[l])),
		})
	}
	return t, nil
}

// Fig52 reproduces Figure 5.2: BerkeleyDB and grDB with and without
// their block caches, on PubMed-S.
func Fig52(p *Params) (*Table, error) {
	edges, pairs, err := prepareSmall(p)
	if err != nil {
		return nil, err
	}
	type variant struct {
		label   string
		backend string
		opts    graphdb.Options
	}
	nocache := oocOptions()
	nocache.CacheBytes = -1
	variants := []variant{
		{"bdb+cache", "bdb", oocOptions()},
		{"bdb-nocache", "bdb", nocache},
		{"grdb+cache", "grdb", oocOptions()},
		{"grdb-nocache", "grdb", nocache},
	}
	runs := make(map[string]*queryStats)
	all := make([]*queryStats, 0, len(variants))
	for _, v := range variants {
		qs, err := searchOneBackend(p, "fig5.2-"+v.label, v.backend, edges, pairs, v.opts)
		if err != nil {
			return nil, fmt.Errorf("fig5.2 %s: %w", v.label, err)
		}
		runs[v.label] = qs
		all = append(all, qs)
	}
	t := &Table{
		ID:     "fig5.2",
		Title:  fmt.Sprintf("avg query time (ms) by path length, cache on/off, %d nodes", pubmedSNodes),
		Header: []string{"PathLen", "BDB+cache", "BDB-nocache", "grDB+cache", "grDB-nocache"},
		Notes: []string{
			"paper shape: caching cuts execution time up to ~50% on both DBs, most on long paths",
		},
	}
	for _, l := range pathLengths(all...) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", l),
			ms(avg(runs["bdb+cache"].byLength[l])),
			ms(avg(runs["bdb-nocache"].byLength[l])),
			ms(avg(runs["grdb+cache"].byLength[l])),
			ms(avg(runs["grdb-nocache"].byLength[l])),
		})
	}
	return t, nil
}

// Fig53 reproduces Figure 5.3: ingestion of PubMed-S into 16 back-ends,
// with 1 vs 4 front-end ingestion nodes, across five GraphDBs.
func Fig53(p *Params) (*Table, error) {
	edges, _, err := prepareSmall(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5.3",
		Title:  fmt.Sprintf("ingestion time (s) of PubMed-S' into %d back-ends", pubmedSNodes),
		Header: []string{"GraphDB", "1 front-end (s)", "4 front-ends (s)"},
		Notes: []string{
			"paper shape: MySQL slowest by far; others comparable;",
			"extra front-ends help the slower-to-feed implementations",
		},
	}
	for _, backend := range fiveDBsSmall {
		row := []string{backend}
		for _, fe := range []int{1, 4} {
			label := fmt.Sprintf("fig5.3-%s-fe%d", backend, fe)
			e, err := buildEngine(p, label, backend, pubmedSNodes, fe, oocOptions())
			if err != nil {
				return nil, err
			}
			d, err := ingestDuration(e, edges)
			e.Close()
			if err != nil {
				return nil, fmt.Errorf("fig5.3 %s fe=%d: %w", backend, fe, err)
			}
			p.logf("fig5.3 %s fe=%d: %s", backend, fe, d)
			row = append(row, seconds(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig54 reproduces Figure 5.4: search performance of five GraphDBs on
// PubMed-S, by path length.
func Fig54(p *Params) (*Table, error) {
	edges, pairs, err := prepareSmall(p)
	if err != nil {
		return nil, err
	}
	runs := make(map[string]*queryStats)
	var all []*queryStats
	for _, backend := range fiveDBsSmall {
		qs, err := searchOneBackend(p, "fig5.4-"+backend, backend, edges, pairs, oocOptions())
		if err != nil {
			return nil, fmt.Errorf("fig5.4 %s: %w", backend, err)
		}
		runs[backend] = qs
		all = append(all, qs)
	}
	t := &Table{
		ID:     "fig5.4",
		Title:  fmt.Sprintf("avg query time (ms) by path length, %d nodes, %d random queries", pubmedSNodes, p.queries()),
		Header: append([]string{"PathLen"}, fiveDBsSmall...),
		Notes: []string{
			"paper shape: Array < HashMap < grDB < BerkeleyDB << MySQL;",
			"grDB ~33% faster than BerkeleyDB, ~1.7x slower than HashMap, ~2.9x slower than Array",
		},
	}
	for _, l := range pathLengths(all...) {
		row := []string{fmt.Sprintf("%d", l)}
		for _, backend := range fiveDBsSmall {
			row = append(row, ms(avg(runs[backend].byLength[l])))
		}
		t.Rows = append(t.Rows, row)
	}
	// Aggregate comparison row (the paper quotes whole-workload ratios).
	total := []string{"total(s)"}
	for _, backend := range fiveDBsSmall {
		total = append(total, seconds(runs[backend].totalTime))
	}
	t.Rows = append(t.Rows, total)
	return t, nil
}
