package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// Migration measures what a live topology change costs the queries that
// run through it — the elasticity counterpart of the QPS experiment. A
// 2-way replicated cluster answers the same BFS workload in three
// phases: quiescent at the initial epoch, concurrently with a live
// join migration (shards streaming onto the new back-end while routing
// still obeys the old epoch), and quiescent again at the committed
// epoch. The during-migration row prices the interference: migration
// reads compete with query reads on the source back-ends, and every
// window write races the search on the destination. Hashmap back-ends
// keep the comparison about the protocol, not disk I/O.
func Migration(p *Params) (*Table, error) {
	cfg := gen.PubMedS(p.scale())
	p.logf("generating %s (%d vertices)", cfg.Name, cfg.Vertices)
	edges, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	pairs := gen.RandomQueryPairs(edges, cfg.Vertices, p.queries(), 4242)

	// Three members over a four-node fabric: node 3 is the idle spare
	// the migration brings in.
	const fabricNodes = 4
	const spare = cluster.NodeID(3)
	holder, err := ingest.NewPlacementHolder("", ingest.Manifest{Committed: ingest.Placement{
		Policy: "rendezvous", Backends: fabricNodes, Replication: 2, Seed: 5,
		Nodes: []cluster.NodeID{0, 1, 2},
	}})
	if err != nil {
		return nil, err
	}
	e, err := core.New(core.Config{
		Backends:  fabricNodes,
		FrontEnds: 1,
		Backend:   "hashmap",
		Dir:       fmt.Sprintf("%s/migration", p.Dir),
		Ingest:    ingest.Config{AddReverse: true},
		Placement: holder,
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if _, err := e.IngestEdges(edges); err != nil {
		return nil, err
	}

	runPhase := func(stop *atomic.Bool) (time.Duration, []time.Duration, error) {
		var lats []time.Duration
		start := time.Now()
		// One full replay minimum; with a stop flag, keep cycling so the
		// sample spans the whole migration, however long it runs.
		for i := 0; ; i++ {
			pr := pairs[i%len(pairs)]
			qs := time.Now()
			if _, err := e.BFSCtx(context.Background(), query.BFSConfig{
				Source: pr[0], Dest: pr[1], Workers: 1,
			}); err != nil {
				return 0, nil, err
			}
			lats = append(lats, time.Since(qs))
			if stop == nil && i+1 == len(pairs) {
				break
			}
			if stop != nil && stop.Load() && i+1 >= len(pairs) {
				break
			}
		}
		return time.Since(start), lats, nil
	}

	epochBefore := holder.Epoch()
	p.logf("migration: quiescent baseline at epoch %d", epochBefore)
	wallBefore, before, err := runPhase(nil)
	if err != nil {
		return nil, fmt.Errorf("quiescent baseline: %w", err)
	}

	// Small windows stretch the copy pass so the concurrent workload
	// genuinely overlaps it instead of sampling a near-instant blip.
	var (
		done     atomic.Bool
		stats    ingest.MigrationStats
		migErr   error
		migWall  time.Duration
		migStart = time.Now()
	)
	migDone := make(chan struct{})
	go func() {
		defer close(migDone)
		defer done.Store(true)
		stats, migErr = e.Join(spare, ingest.MigrationConfig{WindowEdges: 64})
		migWall = time.Since(migStart)
	}()
	wallDuring, during, err := runPhase(&done)
	<-migDone
	if err != nil {
		return nil, fmt.Errorf("during migration: %w", err)
	}
	if migErr != nil {
		return nil, fmt.Errorf("join migration: %w", migErr)
	}

	epochAfter := holder.Epoch()
	p.logf("migration: committed epoch %d, re-running quiescent", epochAfter)
	wallAfter, after, err := runPhase(nil)
	if err != nil {
		return nil, fmt.Errorf("quiescent after commit: %w", err)
	}

	t := &Table{
		ID: "migration",
		Title: fmt.Sprintf("BFS latency under live shard migration (join node %d), hashmap, %d nodes",
			spare, fabricNodes),
		Header: []string{"Phase", "Epoch", "Queries", "p50(ms)", "p95(ms)", "p99(ms)", "QPS"},
		Notes: []string{
			fmt.Sprintf("migration moved %d vertex-replicas / %d edges in %d windows over %s; routing flipped %d -> %d at commit",
				stats.MovedVertices, stats.MovedEdges, stats.Windows,
				migWall.Round(time.Millisecond), epochBefore, epochAfter),
			"during-migration queries route by the old epoch while windows stream to the new member;",
			"the gap vs the quiescent rows is the cost of sharing back-ends with the copy pass",
		},
	}
	row := func(phase string, epoch uint64, wall time.Duration, lats []time.Duration) {
		t.Rows = append(t.Rows, []string{
			phase,
			fmt.Sprintf("%d", epoch),
			fmt.Sprintf("%d", len(lats)),
			ms(percentile(lats, 50)),
			ms(percentile(lats, 95)),
			ms(percentile(lats, 99)),
			fmt.Sprintf("%.1f", float64(len(lats))/wall.Seconds()),
		})
	}
	row("quiescent (before)", epochBefore, wallBefore, before)
	row("during migration", epochBefore, wallDuring, during)
	row("quiescent (after)", epochAfter, wallAfter, after)
	return t, nil
}
