// Package experiments regenerates every table and figure of the paper's
// evaluation (chapter 5) on the simulated cluster. Each experiment
// returns a Table of rows; cmd/mssg-bench prints them and the root
// bench_test.go wraps them as testing.B benchmarks.
//
// Scale: the paper's graphs had up to 10^9 edges on a 64-node cluster.
// Experiments here take a scale factor (fraction of the paper's vertex
// counts); the shipped defaults complete on one machine in minutes while
// preserving the comparisons' shape — who wins, by roughly what factor,
// and where the crossovers fall. EXPERIMENTS.md records paper-vs-measured
// for every experiment.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/ingest"
	"mssg/internal/obs"
	"mssg/internal/query"
	"mssg/internal/storage/cache"
)

// Table is one experiment's result in printable form.
type Table struct {
	// ID is the paper artifact this reproduces ("table5.1", "fig5.4"...).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data, already formatted.
	Rows [][]string
	// Notes records interpretation guidance (expected shape).
	Notes []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

// Params tunes all experiments.
type Params struct {
	// Scale is the fraction of the paper's vertex counts (default
	// DefaultScale).
	Scale float64
	// Queries is the number of random BFS queries per search experiment
	// (paper: 100; default 30).
	Queries int
	// Dir is the scratch directory for out-of-core databases; required.
	Dir string
	// Workers is passed through to query.BFSConfig.Workers for every
	// search experiment (0 = GOMAXPROCS, 1 = the paper's serial
	// expansion).
	Workers int
	// Concurrency is the top in-flight query count for the concurrent
	// mixed-workload (qps) experiment; the sweep doubles 1 → Concurrency.
	// <= 0 means 8.
	Concurrency int
	// FaultSeed, when non-zero, runs every experiment over a
	// fault-injecting fabric (1% drops, 0.2% duplicates, 1% delays)
	// masked by the reliable delivery layer — a robustness soak with the
	// same measured comparisons.
	FaultSeed int64
	// Deadline bounds each ingestion run (0 = none); deadline overruns
	// and dead back-ends then abort the experiment instead of hanging it.
	Deadline time.Duration
	// Metrics enables per-operation latency histograms and cache counter
	// mirrors in every engine built by the experiments, recorded in
	// obs.Default(). Off by default: the per-op clock reads distort the
	// finest-grained comparisons.
	Metrics bool
	// Prefetch turns on fringe prefetch in every search experiment's BFS
	// (pipelined with expansion when the backend implements
	// graphdb.AsyncPrefetcher, a synchronous warm-up sweep otherwise).
	Prefetch bool
	// Compress opens every out-of-core grDB with delta-varint block
	// compression (DESIGN.md §13). Other backends ignore it.
	Compress bool
	// SharedCache replaces each grDB engine's per-node private caches
	// with one scan-resistant SLRU cache shared by all its nodes, sized
	// at the sum of the per-node budgets. Other backends ignore it.
	SharedCache bool
	// Verbose, if set, receives progress lines.
	Verbose func(format string, args ...any)
}

// DefaultScale keeps a full experiment sweep around minutes on one
// machine: PubMed-S' ≈ 15 K vertices / 120 K edges, PubMed-L' ≈ 53 K
// vertices / 530 K edges, Syn' ≈ 100 K vertices / 1 M edges.
const DefaultScale = 0.004

func (p *Params) scale() float64 {
	if p.Scale <= 0 {
		return DefaultScale
	}
	return p.Scale
}

func (p *Params) queries() int {
	if p.Queries <= 0 {
		return 30
	}
	return p.Queries
}

func (p *Params) concurrency() int {
	if p.Concurrency <= 0 {
		return 8
	}
	return p.Concurrency
}

func (p *Params) logf(format string, args ...any) {
	if p.Verbose != nil {
		p.Verbose(format, args...)
	}
}

// synScale converts the shared scale to the Syn' graph: Syn-2B is ~27×
// PubMed-S in vertices; scaling it identically would dwarf the rest of
// the sweep, so Syn' uses a quarter of the common scale.
func (p *Params) synScale() float64 { return p.scale() / 4 }

// Simulated disk model shared by every out-of-core run: the block files
// of a scaled-down experiment sit in the OS page cache, so a per-block
// device latency and a cache budget sized against the scaled working set
// stand in for the paper's SATA disks and cache:data ratio (DESIGN.md
// §2). In-memory backends ("array", "hashmap") ignore these options.
const (
	// SimLatency is charged per random block access (and per 256 KB of
	// sequential transfer in StreamDB) — a compressed stand-in for a
	// 2006-era disk access. (Compressed: the real ~8 ms seek scaled by
	// roughly the same factor as the graphs, so that I/O remains the
	// dominant cost without dominating wall-clock.)
	SimLatency = 25 * time.Microsecond
	// SimCacheBytes is the per-node block-cache budget, chosen so the
	// per-node working set fits at high back-end counts but spills at
	// low ones — the same cache:data tension the paper's cluster had.
	SimCacheBytes = 2 << 20
)

// oocOptions returns the standard out-of-core tuning for experiments.
func oocOptions() graphdb.Options {
	return graphdb.Options{
		CacheBytes:      SimCacheBytes,
		SimReadLatency:  SimLatency,
		SimWriteLatency: SimLatency,
	}
}

// fiveDBsSmall are the Figure 5.3/5.4 competitors (PubMed-S).
var fiveDBsSmall = []string{"array", "hashmap", "mysql", "bdb", "grdb"}

// fiveDBsLarge are the Figure 5.5–5.7 competitors (PubMed-L; the paper
// drops MySQL and adds StreamDB at this scale).
var fiveDBsLarge = []string{"array", "hashmap", "bdb", "grdb", "stream"}

// buildEngine creates an engine over a fresh subdirectory.
func buildEngine(p *Params, label, backend string, backends, frontends int, opts graphdb.Options) (*core.Engine, error) {
	cfg := core.Config{
		Backends:  backends,
		FrontEnds: frontends,
		Backend:   backend,
		Dir:       fmt.Sprintf("%s/%s", p.Dir, label),
		DBOptions: opts,
		Ingest:    ingest.Config{AddReverse: true},
	}
	if p.Compress {
		cfg.DBOptions.Compress = true
	}
	if p.SharedCache {
		budget := cfg.DBOptions.CacheBytes
		if budget <= 0 {
			budget = SimCacheBytes
		}
		// Engine copies DBOptions per node, so one cache set here is the
		// cache every node's grDB attaches a space to.
		cfg.DBOptions.SharedCache = cache.NewWithPolicy(budget*int64(backends), cache.PolicySLRU)
	}
	if p.FaultSeed != 0 {
		cfg.Fault = &cluster.Plan{
			Seed:     p.FaultSeed,
			DropProb: 0.01, DupProb: 0.002, DelayProb: 0.01,
			MaxDelay: 200 * time.Microsecond,
		}
		cfg.Reliable = true
	}
	if p.Deadline > 0 {
		cfg.IngestDeadline = p.Deadline
		cfg.IngestFailFast = true
	}
	if p.Metrics {
		cfg.Metrics = obs.Default()
	}
	return core.New(cfg)
}

// ingestDuration runs one ingestion and returns the wall time.
func ingestDuration(e *core.Engine, edges []graph.Edge) (time.Duration, error) {
	start := time.Now()
	if _, err := e.IngestEdges(edges); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// queryStats is one search run's measurements, bucketed by path length.
type queryStats struct {
	totalTime  time.Duration
	totalEdges int64
	byLength   map[int32][]time.Duration
}

// runQueries executes the random query workload against an engine.
func runQueries(e *core.Engine, pairs [][2]graph.VertexID, cfg query.BFSConfig) (*queryStats, error) {
	qs := &queryStats{byLength: make(map[int32][]time.Duration)}
	for _, pr := range pairs {
		cfg.Source, cfg.Dest = pr[0], pr[1]
		start := time.Now()
		res, err := e.BFS(cfg)
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		qs.totalTime += el
		qs.totalEdges += res.EdgesTraversed
		if res.Found {
			qs.byLength[res.PathLength] = append(qs.byLength[res.PathLength], el)
		}
	}
	return qs, nil
}

// avg returns the mean duration.
func avg(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// pathLengths returns the sorted union of bucket keys across runs.
func pathLengths(runs ...*queryStats) []int32 {
	seen := make(map[int32]bool)
	for _, r := range runs {
		for l := range r.byLength {
			seen[l] = true
		}
	}
	out := make([]int32, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// edgesPerSec formats aggregate search throughput.
func edgesPerSec(edges int64, d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	return fmt.Sprintf("%.0f", float64(edges)/d.Seconds())
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID   string
	Desc string
	Run  func(p *Params) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table5.1", "graph statistics", Table51},
		{"fig5.1", "in-memory search, PubMed-S'", Fig51},
		{"fig5.2", "cache effect on BerkeleyDB/grDB, PubMed-S'", Fig52},
		{"fig5.3", "ingestion, PubMed-S', 1 vs 4 front-ends", Fig53},
		{"fig5.4", "search, PubMed-S', five DBs", Fig54},
		{"fig5.5", "ingestion, PubMed-L', varying back-ends", Fig55},
		{"fig5.6", "search time, PubMed-L', varying back-ends", Fig56},
		{"fig5.7", "search edges/s, PubMed-L', varying back-ends", Fig57},
		{"fig5.8", "search time, Syn', grDB, visited in-mem vs external", Fig58},
		{"fig5.9", "search edges/s, Syn', grDB", Fig59},
		{"qps", "concurrent mixed workload QPS + latency percentiles, grDB", QPS},
		{"tenants", "two-tenant fair-share serving: solo vs contended vs cached, grDB", Tenants},
		{"io", "semi-external I/O engine ablation: prefetch × compression × shared SLRU, grDB", IOEngine},
		{"migration", "BFS latency during live shard migration vs quiescent, hashmap", Migration},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
