package experiments

import (
	"fmt"

	"mssg/internal/gen"
)

// Table51 regenerates Table 5.1: statistics for the three experiment
// graphs at the chosen scale.
func Table51(p *Params) (*Table, error) {
	configs := []gen.Config{
		gen.PubMedS(p.scale()),
		gen.PubMedL(p.scale()),
		gen.Syn2B(p.synScale()),
	}
	t := &Table{
		ID:     "table5.1",
		Title:  fmt.Sprintf("graph statistics (scale %.4g of the paper's vertex counts)", p.scale()),
		Header: []string{"Graph", "Vertices", "Und.Edges", "MinDeg", "MaxDeg", "AvgDeg"},
		Notes: []string{
			"paper: PubMed-S 3.75M V / 27.8M E / max 722,692 / avg 14.84;",
			"       PubMed-L 26.7M V / 259.8M E / max 6,114,328 / avg 19.48;",
			"       Syn-2B 100M V / 1B E / max 42,964 / avg 20.00",
			"shape to check: avg degree ~15/~19.5/~20; PubMed hubs adjacent to ~19%/~23% of vertices; Syn max degree far smaller",
		},
	}
	for _, cfg := range configs {
		p.logf("table5.1: generating %s (%d vertices)", cfg.Name, cfg.Vertices)
		g, err := gen.NewGenerator(cfg)
		if err != nil {
			return nil, err
		}
		s, err := gen.ComputeStats(cfg.Name, g, cfg.Vertices)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Vertices),
			fmt.Sprintf("%d", s.UndEdges),
			fmt.Sprintf("%d", s.MinDegree),
			fmt.Sprintf("%d", s.MaxDegree),
			fmt.Sprintf("%.2f", s.AvgDegree),
		})
	}
	return t, nil
}
