package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/query"
)

// QPS is the concurrent mixed-workload experiment — the serving-system
// measurement the paper's one-query-at-a-time evaluation never made. One
// engine over PubMed-S' (grDB out-of-core) hosts a resident query
// scheduler; a mixed BFS + k-hop workload is replayed at increasing
// concurrency levels and each level reports throughput (QPS) and
// end-to-end latency percentiles. The namespace layer is what's under
// test: every query leases its own channel block on the ONE shared
// fabric, so higher levels should raise QPS until the back-ends saturate
// while keeping every result exact.
func QPS(p *Params) (*Table, error) {
	cfg := gen.PubMedS(p.scale())
	p.logf("generating %s (%d vertices)", cfg.Name, cfg.Vertices)
	edges, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	pairs := gen.RandomQueryPairs(edges, cfg.Vertices, p.queries(), 4242)

	e, err := buildEngine(p, "qps", "grdb", pubmedSNodes, 1, oocOptions())
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if _, err := e.IngestEdges(edges); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "qps",
		Title:  fmt.Sprintf("concurrent mixed workload (BFS + k-hop), grDB, %d nodes, %d queries per level", pubmedSNodes, len(pairs)),
		Header: []string{"Concurrency", "Wall(s)", "QPS", "p50(ms)", "p95(ms)", "p99(ms)", "Speedup"},
		Notes: []string{
			"each query leases its own channel namespace on one shared fabric",
			"expected shape: QPS rises with concurrency until back-end I/O saturates;",
			"p99 grows with queueing once in-flight queries contend for the block caches",
		},
	}

	var base float64
	for _, conc := range concurrencyLevels(p.concurrency()) {
		wall, lats, err := runConcurrent(p, e, pairs, conc)
		if err != nil {
			return nil, fmt.Errorf("qps at concurrency %d: %w", conc, err)
		}
		qps := float64(len(lats)) / wall.Seconds()
		if base == 0 {
			base = qps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", conc),
			seconds(wall),
			fmt.Sprintf("%.1f", qps),
			ms(percentile(lats, 50)),
			ms(percentile(lats, 95)),
			ms(percentile(lats, 99)),
			fmt.Sprintf("%.2fx", qps/base),
		})
		p.logf("qps: concurrency %d: %.1f qps", conc, qps)
	}
	return t, nil
}

// concurrencyLevels sweeps 1 → max by doubling, always ending at max.
func concurrencyLevels(max int) []int {
	var out []int
	for c := 1; c < max; c *= 2 {
		out = append(out, c)
	}
	return append(out, max)
}

// runConcurrent replays the workload through a resident scheduler at one
// concurrency level and returns the wall time plus every query's
// end-to-end latency. Every third query is a k-hop instead of a BFS, so
// concurrent queries of different shapes interleave on the fabric.
func runConcurrent(p *Params, e *core.Engine, pairs [][2]graph.VertexID, conc int) (time.Duration, []time.Duration, error) {
	qe, err := e.NewQueryEngine(query.EngineConfig{
		MaxInFlight: conc,
		QueueDepth:  len(pairs) + conc, // admission never rejects the replay
	})
	if err != nil {
		return 0, nil, err
	}
	defer qe.Close()

	// Cross-query concurrency is the parallelism axis under test, so the
	// per-query expansion defaults to serial (Workers=1) — a resident
	// server divides cores across queries, not within one. An explicit
	// -workers flag still wins.
	workers := p.Workers
	if workers == 0 {
		workers = 1
	}

	var (
		mu   sync.Mutex
		lats []time.Duration
		wg   sync.WaitGroup
		errc = make(chan error, len(pairs))
	)
	start := time.Now()
	for i, pr := range pairs {
		var q *query.Query
		var err error
		if i%3 == 2 {
			q, err = qe.KHop(context.Background(), query.KHopConfig{Source: pr[0], K: 2, Prefetch: p.Prefetch})
		} else {
			q, err = e.SubmitBFS(context.Background(), qe, query.BFSConfig{
				Source: pr[0], Dest: pr[1], Workers: workers, Prefetch: p.Prefetch,
			})
		}
		if err != nil {
			return 0, nil, err
		}
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			if _, err := q.Wait(); err != nil {
				errc <- err
				return
			}
			mu.Lock()
			lats = append(lats, q.Finished.Sub(q.Submitted))
			mu.Unlock()
		}(q)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errc)
	for err := range errc {
		return 0, nil, err
	}
	return wall, lats, nil
}

// percentile returns the pth latency percentile (nearest-rank).
func percentile(lats []time.Duration, p int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}
