package experiments

import (
	"fmt"
	"time"

	"mssg/internal/gen"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/grdb"
	"mssg/internal/query"
	"mssg/internal/storage/cache"
)

// IOEngine ablates the semi-external I/O engine (DESIGN.md §13) on the
// out-of-core grDB: asynchronous fringe prefetch, delta-varint block
// compression, and the shared scan-resistant SLRU cache, alone and
// combined, against the plain configuration every other experiment uses.
//
// The disk model is deliberately harsher than oocOptions(): a smaller
// cache budget so the working set spills, and a per-byte transfer
// latency on top of the per-access seek so compression's byte savings
// show up in wall-clock, not just in the byte counters — the regime the
// engine is for.
const (
	ioBackends = 4
	// ioFrontEnds matters only for ingest fan-in; queries use one.
	ioFrontEnds = 2
	// ioCacheBytes is ~1/8 of oocOptions' budget: small enough that a
	// PubMed-S' partition does not fit, so steady-state queries do real
	// reads and admission policy matters.
	ioCacheBytes = 256 << 10
	// ioTransferLatency charges per byte actually moved (DESIGN.md §2),
	// ≈ 25 µs per 256-byte block when uncompressed.
	ioTransferLatency = 100 * time.Nanosecond
)

// ioConfig is one ablation point.
type ioConfig struct {
	name     string
	prefetch bool
	compress bool
	shared   bool
}

func ioConfigs() []ioConfig {
	return []ioConfig{
		{name: "baseline"},
		{name: "prefetch", prefetch: true},
		{name: "compress", compress: true},
		{name: "shared-slru", shared: true},
		{name: "all", prefetch: true, compress: true, shared: true},
	}
}

// ioSnapshot sums physical I/O counters across an engine's databases.
type ioSnapshot struct {
	blockReads, blockWrites int64
	bytesRead, bytesWritten int64
}

func snapshotIO(dbs []graphdb.Graph) ioSnapshot {
	var s ioSnapshot
	for _, db := range dbs {
		if c, ok := db.(graphdb.IOCounters); ok {
			r, w := c.IOCounters()
			s.blockReads += r
			s.blockWrites += w
		}
		if g, ok := db.(*grdb.DB); ok {
			br, bw := g.IOBytes()
			s.bytesRead += br
			s.bytesWritten += bw
		}
	}
	return s
}

func (s ioSnapshot) sub(prev ioSnapshot) ioSnapshot {
	return ioSnapshot{
		blockReads:   s.blockReads - prev.blockReads,
		blockWrites:  s.blockWrites - prev.blockWrites,
		bytesRead:    s.bytesRead - prev.bytesRead,
		bytesWritten: s.bytesWritten - prev.bytesWritten,
	}
}

// IOEngine runs the ablation table.
func IOEngine(p *Params) (*Table, error) {
	cfg := gen.PubMedS(p.scale())
	edges, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	pairs := gen.RandomQueryPairs(edges, cfg.Vertices, p.queries(), 99)

	// The ablation axes are the experiment's own sweep; a copy with the
	// global -prefetch/-compress/-shared-cache flags cleared keeps
	// buildEngine from contaminating the baseline rows.
	pIO := *p
	pIO.Prefetch, pIO.Compress, pIO.SharedCache = false, false, false

	t := &Table{
		ID:     "io",
		Title:  fmt.Sprintf("semi-external I/O engine ablation, PubMed-S' scale=%g, grDB b=%d", p.scale(), ioBackends),
		Header: []string{"config", "ingest(s)", "avg query(ms)", "edges/s", "qry blk reads", "qry MB read"},
		Notes: []string{
			"all (prefetch+compress+shared-slru) should beat baseline on edges/s AND on query block reads",
			"compress rows should read fewer bytes than their uncompressed counterparts",
			fmt.Sprintf("disk model: %v/block access + %v/byte, cache %d KB/node (working set spills)",
				SimLatency, ioTransferLatency, ioCacheBytes>>10),
		},
	}

	for _, c := range ioConfigs() {
		opts := oocOptions()
		opts.CacheBytes = ioCacheBytes
		opts.SimTransferLatency = ioTransferLatency
		opts.Compress = c.compress
		if c.shared {
			opts.SharedCache = cache.NewWithPolicy(int64(ioBackends)*ioCacheBytes, cache.PolicySLRU)
		}
		e, err := buildEngine(&pIO, "io-"+c.name, "grdb", ioBackends, ioFrontEnds, opts)
		if err != nil {
			return nil, fmt.Errorf("io %s: %w", c.name, err)
		}
		ingest, err := ingestDuration(e, edges)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("io %s ingest: %w", c.name, err)
		}
		p.logf("io %s: ingest %s", c.name, ingest)

		before := snapshotIO(e.Databases())
		qs, err := runQueries(e, pairs, query.BFSConfig{Workers: 1, Prefetch: c.prefetch})
		after := snapshotIO(e.Databases())
		e.Close()
		if err != nil {
			return nil, fmt.Errorf("io %s query: %w", c.name, err)
		}
		d := after.sub(before)

		var all []time.Duration
		for _, b := range qs.byLength {
			all = append(all, b...)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			seconds(ingest),
			ms(avg(all)),
			edgesPerSec(qs.totalEdges, qs.totalTime),
			fmt.Sprintf("%d", d.blockReads),
			fmt.Sprintf("%.2f", float64(d.bytesRead)/(1<<20)),
		})
	}
	return t, nil
}
