package experiments

import (
	"context"
	"fmt"
	"time"

	"mssg/internal/gen"
	"mssg/internal/query"
)

// Tenants is the multi-tenant serving measurement (DESIGN.md §16): one
// grDB engine hosts a fair-share scheduler with two tenants — a heavy
// tenant flooding BFS queries open-loop and a light tenant running a
// small closed-loop workload. Three phases are compared:
//
//	solo       the light tenant alone (uncontended baseline)
//	contended  light vs the heavy flood, per-tenant weighted queues
//	cached     the contended phase repeated with the epoch-keyed result
//	           cache enabled, so the light tenant's repeated queries hit
//
// The acceptance bound for `make tenants` is the fairness ratio: the
// light tenant's contended p95 must stay within 3x its solo p95 (plus
// scheduler slack) — a single shared FIFO parks the light tenant behind
// the whole heavy backlog and fails by an order of magnitude.
func Tenants(p *Params) (*Table, error) {
	cfg := gen.PubMedS(p.scale())
	p.logf("generating %s (%d vertices)", cfg.Name, cfg.Vertices)
	edges, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	nq := p.queries()
	if nq > 20 {
		nq = 20 // closed-loop: each light query costs a full BFS
	}
	pairs := gen.RandomQueryPairs(edges, cfg.Vertices, nq, 777)
	heavyPairs := gen.RandomQueryPairs(edges, cfg.Vertices, 3*nq, 778)

	e, err := buildEngine(p, "tenants", "grdb", pubmedSNodes, 1, oocOptions())
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if _, err := e.IngestEdges(edges); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "tenants",
		Title:  fmt.Sprintf("two-tenant fair-share serving, grDB, %d nodes, %d light / %d heavy queries", pubmedSNodes, len(pairs), len(heavyPairs)),
		Header: []string{"Phase", "Tenant", "Queries", "CacheHits", "p50(ms)", "p95(ms)", "p99(ms)"},
		Notes: []string{
			"light runs closed-loop (weight 4); heavy floods open-loop (weight 1,",
			"in-flight capped at a quarter of the slots so the flood cannot",
			"saturate the execution slots and block caches light's queries need)",
			"acceptance: light contended p95 within 3x solo p95 (+50ms slack)",
			"cached phase repeats identical light queries with the result cache on",
		},
	}

	run := func(label string, cacheBytes int64) (solo, light, heavy []time.Duration, hits int64, err error) {
		// The heavy tenant's in-flight quota leaves headroom: DRR alone
		// bounds how long light queues, but a flood saturating every
		// execution slot (and the shared block caches behind them) would
		// still inflate light's execution time — the quota is the
		// resource-isolation half of the tenancy contract.
		heavyCap := p.concurrency() / 4
		if heavyCap < 1 {
			heavyCap = 1
		}
		qe, qerr := e.NewQueryEngine(query.EngineConfig{
			MaxInFlight: p.concurrency(),
			QueueDepth:  len(heavyPairs) + len(pairs) + 4,
			CacheBytes:  cacheBytes,
			Tenants: map[string]query.TenantConfig{
				"heavy": {Weight: 1, MaxInFlight: heavyCap},
				"light": {Weight: 4},
			},
		})
		if qerr != nil {
			return nil, nil, nil, 0, qerr
		}
		defer qe.Close()

		lightLoop := func() ([]time.Duration, error) {
			lats := make([]time.Duration, 0, len(pairs))
			for _, pr := range pairs {
				start := time.Now()
				q, err := e.SubmitBFSAs(context.Background(), qe, "light", query.BFSConfig{
					Source: pr[0], Dest: pr[1], Workers: 1, Prefetch: p.Prefetch,
				})
				if err != nil {
					return nil, err
				}
				if _, err := q.Wait(); err != nil {
					return nil, err
				}
				lats = append(lats, time.Since(start))
			}
			return lats, nil
		}

		solo, err = lightLoop()
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("%s solo: %w", label, err)
		}

		var heavyQ []*query.Query
		for _, pr := range heavyPairs {
			q, err := e.SubmitBFSAs(context.Background(), qe, "heavy", query.BFSConfig{
				Source: pr[0], Dest: pr[1], Workers: 1, Prefetch: p.Prefetch,
			})
			if err != nil {
				return nil, nil, nil, 0, fmt.Errorf("%s heavy: %w", label, err)
			}
			heavyQ = append(heavyQ, q)
		}
		light, err = lightLoop()
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("%s contended: %w", label, err)
		}
		for _, q := range heavyQ {
			if _, err := q.Wait(); err != nil {
				return nil, nil, nil, 0, fmt.Errorf("%s heavy: %w", label, err)
			}
			heavy = append(heavy, q.Finished.Sub(q.Submitted))
		}
		return solo, light, heavy, qe.Stats().Tenants["light"].CacheHits, nil
	}

	row := func(phase, tenant string, lats []time.Duration, hits int64) {
		t.Rows = append(t.Rows, []string{
			phase, tenant, fmt.Sprint(len(lats)), fmt.Sprint(hits),
			ms(percentile(lats, 50)), ms(percentile(lats, 95)), ms(percentile(lats, 99)),
		})
	}

	solo, light, heavy, _, err := run("uncached", 0)
	if err != nil {
		return nil, err
	}
	row("solo", "light", solo, 0)
	row("contended", "light", light, 0)
	row("contended", "heavy", heavy, 0)
	ratio := float64(percentile(light, 95)) / float64(percentile(solo, 95)+1)
	t.Notes = append(t.Notes, fmt.Sprintf("fairness ratio (light p95 contended/solo): %.2fx", ratio))
	p.logf("tenants: fairness ratio %.2fx (light p95 %v contended vs %v solo)",
		ratio, percentile(light, 95), percentile(solo, 95))

	_, lightC, heavyC, hits, err := run("cached", 32<<20)
	if err != nil {
		return nil, err
	}
	row("cached", "light", lightC, hits)
	row("cached", "heavy", heavyC, 0)
	p.logf("tenants: cached phase light p95 %v (%d cache hits)", percentile(lightC, 95), hits)
	return t, nil
}
