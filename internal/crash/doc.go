// Package crash holds the kill-at-every-syncpoint conformance suite: it
// runs durable grDB workloads and durable ingest over a crash-injection
// filesystem (storage/crashfs), simulates a crash at every filesystem
// operation under several torn-write policies, reopens the database on
// the real filesystem, and verifies the recovered state against an
// in-memory oracle — no committed batch lost, no uncommitted batch
// partially visible, no duplicate edges, no torn block read as valid.
//
// The sweep visits every operation by default; set MSSG_CRASH_STRIDE=N
// to subsample (every Nth crash point), which `go test -short` also
// does. `make crash` runs the full sweep under the race detector.
package crash
