package crash

import (
	"os"
	"sort"
	"strconv"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/grdb"
	"mssg/internal/graphdb/reldb"
	"mssg/internal/storage/compress"
	"mssg/internal/storage/crashfs"
	"mssg/internal/storage/vfs"
)

// stride picks how densely the sweep visits crash points: 1 (every
// filesystem operation) unless MSSG_CRASH_STRIDE or -short thins it out.
func stride(t *testing.T) int64 {
	if s := os.Getenv("MSSG_CRASH_STRIDE"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("MSSG_CRASH_STRIDE=%q: want a positive integer", s)
		}
		return int64(n)
	}
	if testing.Short() {
		return 8
	}
	return 1
}

// policies rotate across crash points so the sweep exercises clean cuts,
// half-writes, sector tearing, and bit corruption of the in-flight write.
var policies = []crashfs.Policy{
	crashfs.CutClean, crashfs.CutShort, crashfs.TearSectors, crashfs.FlipBit,
}

// backend is one durable graphdb implementation under sweep. Both
// backends run the same workload and the same oracle verification; scrub
// is optional (reldb has no block scrubber — its checksummed reads fail
// loudly instead, which the adjacency pass exercises).
type backend struct {
	name  string
	open  func(dir string, fsys vfs.FS, verify bool) (graphdb.Graph, error)
	scrub func(g graphdb.Graph) (corrupt int64, err error)
}

func grdbOpts(dir string, fsys vfs.FS) graphdb.Options {
	return graphdb.Options{
		Dir:          dir,
		MaxFileBytes: 4096,
		CacheBytes:   1 << 16,
		Levels: []graphdb.LevelSpec{
			{SubBlockCap: 2, BlockBytes: 256},
			{SubBlockCap: 4, BlockBytes: 256},
			{SubBlockCap: 8, BlockBytes: 256},
		},
		Durability: graphdb.DurabilityFull,
		FS:         fsys,
	}
}

var backends = []backend{
	{
		name: "grdb",
		open: func(dir string, fsys vfs.FS, verify bool) (graphdb.Graph, error) {
			opts := grdbOpts(dir, fsys)
			opts.VerifyOnOpen = verify
			return grdb.Open(opts)
		},
		scrub: func(g graphdb.Graph) (int64, error) {
			rep, err := g.(*grdb.DB).Scrub()
			if err != nil {
				return 0, err
			}
			return int64(rep.CorruptBlocks), nil
		},
	},
	{
		name: "reldb",
		open: func(dir string, fsys vfs.FS, verify bool) (graphdb.Graph, error) {
			return reldb.Open(graphdb.Options{
				Dir:          dir,
				MaxFileBytes: 64 << 10,
				// Zero cache budget: every release wants to write back, so
				// the sweep maximally exercises the no-steal policy that
				// keeps dirty pages off disk until their WAL images commit.
				CacheBytes: -1,
				Durability: graphdb.DurabilityFull,
				FS:         fsys,
			})
		},
	},
	{
		// grdb with delta-varint block compression (DESIGN.md §13): the
		// same sweep over the compressed on-disk format — WAL recovery
		// writes logical images through the compressing level store, so
		// every crash point also exercises encode-under-recovery.
		name: "grdb-compressed",
		open: func(dir string, fsys vfs.FS, verify bool) (graphdb.Graph, error) {
			opts := grdbOpts(dir, fsys)
			opts.Compress = true
			opts.VerifyOnOpen = verify
			return grdb.Open(opts)
		},
		scrub: func(g graphdb.Graph) (int64, error) {
			rep, err := g.(*grdb.DB).Scrub()
			if err != nil {
				return 0, err
			}
			return int64(rep.CorruptBlocks), nil
		},
	},
}

// batchEdges is the oracle: batch i stores a deterministic adjacency for
// vertex i alone, so recovered state maps cleanly onto "how many batches
// survived".
func batchEdges(i int) []graph.Edge {
	v := graph.VertexID(i)
	n := 3 + i%5
	edges := make([]graph.Edge, n)
	for j := range edges {
		edges[j] = graph.Edge{Src: v, Dst: graph.VertexID(1000 + 10*i + j)}
	}
	return edges
}

const workloadBatches = 6

// runWorkload stores batches each followed by a Flush and returns how
// many Flushes succeeded. Errors after the crash point are expected; the
// caller learns about them through the committed count.
func runWorkload(d graphdb.Graph) (committed int) {
	for i := 0; i < workloadBatches; i++ {
		if err := d.StoreEdges(batchEdges(i)); err != nil {
			return committed
		}
		if err := d.Flush(); err != nil {
			return committed
		}
		committed = i + 1
	}
	return committed
}

// verifyRecovered reopens dir on the real filesystem and checks the
// recovered database against the oracle: some prefix of batches is fully
// present (at least every acked one, at most one more — the batch whose
// commit was in flight), every present batch is byte-exact with no
// duplicates, and no torn block reads as valid anywhere.
func verifyRecovered(t *testing.T, b backend, dir string, committed int, ctx string) {
	t.Helper()
	d, err := b.open(dir, nil, true)
	if err != nil {
		t.Fatalf("%s: recovery open: %v", ctx, err)
	}
	defer d.Close()
	if b.scrub != nil {
		corrupt, err := b.scrub(d)
		if err != nil {
			t.Fatalf("%s: scrub: %v", ctx, err)
		}
		if corrupt != 0 {
			t.Fatalf("%s: %d torn blocks survived recovery", ctx, corrupt)
		}
	}
	recovered := -1
	for i := 0; i < workloadBatches; i++ {
		want := batchEdges(i)
		out := graph.NewAdjList(16)
		if err := graphdb.Adjacency(d, graph.VertexID(i), out); err != nil {
			t.Fatalf("%s: adjacency(%d): %v", ctx, i, err)
		}
		got := append([]graph.VertexID(nil), out.IDs()...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		switch {
		case len(got) == 0:
			if recovered == -1 {
				recovered = i
			}
		case recovered != -1:
			t.Fatalf("%s: batch %d present after missing batch %d: not a prefix", ctx, i, recovered)
		default:
			if len(got) != len(want) {
				t.Fatalf("%s: batch %d has %d edges, want %d (torn batch visible)", ctx, i, len(got), len(want))
			}
			for j, e := range want {
				if got[j] != e.Dst {
					t.Fatalf("%s: batch %d neighbour %d = %d, want %d", ctx, i, j, got[j], e.Dst)
				}
			}
			for j := 1; j < len(got); j++ {
				if got[j] == got[j-1] {
					t.Fatalf("%s: batch %d has duplicate neighbour %d", ctx, i, got[j])
				}
			}
		}
	}
	if recovered == -1 {
		recovered = workloadBatches
	}
	if recovered < committed {
		t.Fatalf("%s: lost acked batches: recovered %d, %d were committed", ctx, recovered, committed)
	}
	if recovered > committed+1 {
		t.Fatalf("%s: recovered %d batches but only %d committed + 1 in flight", ctx, recovered, committed)
	}
}

// TestKillAtEverySyncpoint is the tentpole sweep: count the filesystem
// operations a clean workload performs, then re-run it once per
// operation with a crash injected there, and verify recovery after each.
// Odd crash points additionally arm the opportunistic-writeback model
// (crashfs.SetRetainUnsynced), in which a pseudo-random per-file prefix
// of unsynced writes survives the crash instead of all being lost — the
// model that catches steal/no-undo protocol bugs the clean-rollback
// model cannot (a dirty page written back before its WAL images were
// synced passes clean rollback, because rollback politely erases the
// evidence).
func TestKillAtEverySyncpoint(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.name, func(t *testing.T) {
			// Dry run: measure the op budget.
			dryDir := t.TempDir()
			cfs := crashfs.New(vfs.OS)
			d, err := b.open(dryDir, cfs, false)
			if err != nil {
				t.Fatal(err)
			}
			if got := runWorkload(d); got != workloadBatches {
				t.Fatalf("dry run committed %d/%d batches", got, workloadBatches)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			total := cfs.Ops()
			if total < 50 {
				t.Fatalf("suspiciously few filesystem ops in dry run: %d", total)
			}
			t.Logf("sweeping %d crash points, stride %d", total, stride(t))

			for k := int64(1); k <= total; k += stride(t) {
				policy := policies[int(k)%len(policies)]
				dir := t.TempDir()
				cfs := crashfs.New(vfs.OS)
				cfs.SetCrashPoint(k, policy)
				retained := k%2 == 1
				if retained {
					cfs.SetRetainUnsynced(uint64(k))
				}
				committed := 0
				d, err := b.open(dir, cfs, false)
				if err == nil {
					committed = runWorkload(d)
				}
				cfs.Shutdown()
				if !cfs.Crashed() {
					// The workload finished before reaching op k (Close performs
					// fewer ops than the dry run's accounting reserved); nothing
					// left to sweep.
					continue
				}
				ctx := "crash@" + strconv.FormatInt(k, 10) + "/" + policy.String()
				if retained {
					ctx += "/retain"
				}
				verifyRecovered(t, b, dir, committed, ctx)
			}
		})
	}
}

// TestCrashDuringRecovery crashes a second time while the first crash is
// being recovered, then verifies the third process sees a consistent
// prefix. Recovery must itself be crash-safe (it replays, flushes, and
// resets the log through the same syncpoints).
func TestCrashDuringRecovery(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.name, func(t *testing.T) {
			// Build a database whose WAL holds a committed but unfinished
			// checkpoint: crash right after the workload's last commit fsync.
			// Rather than guess the op index, crash partway through a workload,
			// then sweep crash points over the recovery itself.
			seedDir := t.TempDir()
			seed := crashfs.New(vfs.OS)
			d, err := b.open(seedDir, seed, false)
			if err != nil {
				t.Fatal(err)
			}
			if got := runWorkload(d); got != workloadBatches {
				t.Fatalf("seed run committed %d", got)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			mid := seed.Ops() / 2

			for off := int64(0); off < 20; off += 4 {
				dir := t.TempDir()
				cfs := crashfs.New(vfs.OS)
				cfs.SetCrashPoint(mid, crashfs.CutShort)
				cfs.SetRetainUnsynced(uint64(off + 1))
				committed := 0
				if d, err := b.open(dir, cfs, false); err == nil {
					committed = runWorkload(d)
				}
				cfs.Shutdown()
				if !cfs.Crashed() {
					t.Fatalf("seed crash at %d never fired", mid)
				}

				// Crash again, off ops into recovery.
				rfs := crashfs.New(vfs.OS)
				rfs.SetCrashPoint(off+1, crashfs.TearSectors)
				if d, err := b.open(dir, rfs, false); err == nil {
					d.Close()
				}
				rfs.Shutdown()

				verifyRecovered(t, b, dir, committed, "double-crash@"+strconv.FormatInt(off+1, 10))
			}
		})
	}
}

// TestTornBlockNeverReadsValid corrupts a synced data file directly (a
// latent media fault rather than a crash) and confirms reads fail loudly
// and Scrub quarantines-and-repairs.
func TestTornBlockNeverReadsValid(t *testing.T) {
	dir := t.TempDir()
	d, err := grdb.Open(grdbOpts(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := runWorkload(d); got != workloadBatches {
		t.Fatalf("committed %d", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := dir + "/level0.0000"
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[7] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := grdb.Open(grdbOpts(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	out := graph.NewAdjList(16)
	if err := graphdb.Adjacency(d2, 0, out); err == nil {
		t.Fatal("flipped bit read back as valid adjacency")
	}
	rep, err := d2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptBlocks != 1 {
		t.Fatalf("Scrub found %d corrupt blocks, want 1", rep.CorruptBlocks)
	}
	if _, err := d2.Check(); err != nil {
		t.Fatalf("post-scrub check: %v", err)
	}
}

// TestTornCompressedBlockNeverReadsValid flips a bit inside the
// compressed payload of a synced block (past the 16-byte sub-block
// header, so the damage is to the delta-varint stream itself) and
// confirms the read path rejects it — the payload CRC is checked before
// any decode — and Scrub quarantines-and-repairs it.
func TestTornCompressedBlockNeverReadsValid(t *testing.T) {
	opts := func(dir string) graphdb.Options {
		o := grdbOpts(dir, nil)
		o.Compress = true
		return o
	}
	dir := t.TempDir()
	d, err := grdb.Open(opts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := runWorkload(d); got != workloadBatches {
		t.Fatalf("committed %d", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Vertex 0 lives in physical block 0 of level 0; byte HeaderBytes+3
	// is inside its compressed payload.
	path := dir + "/level0.0000"
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[compress.HeaderBytes+3] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := grdb.Open(opts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	out := graph.NewAdjList(16)
	if err := graphdb.Adjacency(d2, 0, out); err == nil {
		t.Fatal("flipped bit inside compressed payload read back as valid adjacency")
	}
	rep, err := d2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptBlocks != 1 {
		t.Fatalf("Scrub found %d corrupt blocks, want 1", rep.CorruptBlocks)
	}
	if _, err := d2.Check(); err != nil {
		t.Fatalf("post-scrub check: %v", err)
	}
}

// TestTornReldbBlockNeverReadsValid is the reldb analogue: a flipped bit
// in a synced heap file must fail the checksummed read rather than decode
// as a valid row.
func TestTornReldbBlockNeverReadsValid(t *testing.T) {
	rel := backends[1]
	dir := t.TempDir()
	d, err := rel.open(dir, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := runWorkload(d); got != workloadBatches {
		t.Fatalf("committed %d", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := dir + "/heap.0000"
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[100] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := rel.open(dir, nil, false)
	if err != nil {
		return // corruption already rejected at open — also acceptable
	}
	defer d2.Close()
	failed := false
	for i := 0; i < workloadBatches; i++ {
		out := graph.NewAdjList(16)
		if err := graphdb.Adjacency(d2, graph.VertexID(i), out); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("flipped bit read back as valid adjacency")
	}
}
