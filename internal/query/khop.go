package query

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// K-hop neighbourhood analysis: how many vertices lie within k hops of a
// source? This is the other relationship-analysis primitive the paper's
// introduction motivates ("queries which analyze long paths often must
// access a significant portion of the graph data") — it measures exactly
// that portion. It reuses the level-synchronous machinery of Algorithm 1
// with no destination cut-off.

// KHopConfig parameterizes a k-hop neighbourhood count.
type KHopConfig struct {
	Source graph.VertexID
	// K is the number of BFS levels to expand.
	K int
	// Ownership selects fringe routing, as in BFSConfig.
	Ownership Ownership
	// Prefetch warms the storage cache for each level's fringe before
	// expansion, as in BFSConfig — pipelined when the backend implements
	// graphdb.AsyncPrefetcher, a synchronous offset-sorted sweep when it
	// only implements graphdb.Prefetcher.
	Prefetch bool
	// OwnerOf overrides the GID % p mapping under KnownMapping ownership,
	// exactly as in BFSConfig. Nil selects the modulo mapping.
	OwnerOf func(v graph.VertexID) cluster.NodeID
	// ActiveNodes, ReplicasOf, and AllowPartial are the failover knobs,
	// with BFSConfig semantics: run on a node subset, read a dead
	// primary's shard from its replicas, and degrade to best-effort
	// coverage instead of failing when no replica survives.
	ActiveNodes  []cluster.NodeID
	ReplicasOf   func(v graph.VertexID) []cluster.NodeID
	AllowPartial bool
}

// ownerOf resolves the vertex→node mapping in effect.
func (c *KHopConfig) ownerOf(v graph.VertexID, p int) cluster.NodeID {
	if c.OwnerOf != nil {
		return c.OwnerOf(v)
	}
	return cluster.Owner(int64(v), p)
}

// KHopResult reports the neighbourhood profile.
type KHopResult struct {
	// PerLevel[i] is the number of vertices first reached at level i+1.
	PerLevel []int64
	// Total is the number of distinct vertices within K hops (excluding
	// the source).
	Total int64
	// EdgesTraversed counts adjacency entries scanned.
	EdgesTraversed int64
	// ReplicaReads counts fringe vertices served by a non-primary
	// replica; Dropped counts vertices with no live replica (only
	// possible on a partial roster under AllowPartial).
	ReplicaReads int64
	Dropped      int64
	// Coverage is Total/(Total+Dropped); 1 for a complete count.
	Coverage float64
}

// ParallelKHop runs the analysis across the fabric under its own leased
// channel namespace; ctx cancellation aborts all nodes.
func ParallelKHop(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, cfg KHopConfig) (KHopResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(dbs) != f.Nodes() {
		return KHopResult{}, fmt.Errorf("query: %d databases for %d nodes", len(dbs), f.Nodes())
	}
	if cfg.K < 1 {
		return KHopResult{}, fmt.Errorf("query: k-hop needs K >= 1, got %d", cfg.K)
	}
	rst, err := newRoster(f.Nodes(), cfg.ActiveNodes)
	if err != nil {
		return KHopResult{}, err
	}
	qc, err := leaseChannels()
	if err != nil {
		return KHopResult{}, err
	}
	defer qc.ns.DrainAndRelease(f)
	results := make([]KHopResult, f.Nodes())
	err = cluster.RunOn(f, rst.runNodes(), func(ep cluster.Endpoint) error {
		r, err := khopNode(ctx, ep, rst, qc, dbs[ep.ID()], cfg)
		if err != nil {
			// As in bfsNode: a dead or unresponsive peer means the count
			// covered only part of the graph.
			if errors.Is(err, cluster.ErrNodeDown) || errors.Is(err, cluster.ErrTimeout) {
				qm().partial.Inc()
				err = fmt.Errorf("%w: %w", ErrPartialCoverage, err)
			}
			return err
		}
		results[ep.ID()] = r
		return nil
	})
	if err != nil {
		return KHopResult{}, err
	}
	combined := KHopResult{PerLevel: make([]int64, 0, cfg.K)}
	for lvl := 0; ; lvl++ {
		var sum int64
		any := false
		for _, r := range results {
			if lvl < len(r.PerLevel) {
				sum += r.PerLevel[lvl]
				any = true
			}
		}
		if !any {
			break
		}
		combined.PerLevel = append(combined.PerLevel, sum)
		combined.Total += sum
	}
	for _, r := range results {
		combined.EdgesTraversed += r.EdgesTraversed
		combined.ReplicaReads += r.ReplicaReads
		combined.Dropped += r.Dropped
	}
	combined.Coverage = 1
	if combined.Dropped > 0 {
		combined.Coverage = float64(combined.Total) / float64(combined.Total+combined.Dropped)
		qm().foDropped.Add(combined.Dropped)
		if cfg.AllowPartial {
			qm().foPartialAllowed.Inc()
		}
	}
	if combined.ReplicaReads > 0 {
		qm().foReplicaReads.Add(combined.ReplicaReads)
	}
	return combined, nil
}

// khopNode is one node's share: Algorithm 1 without a destination,
// bounded at K levels. Per-level counts are each node's newly marked
// vertices; under known-mapping ownership each vertex is counted exactly
// once (by its owner receiving it, or locally).
func khopNode(ctx context.Context, ep cluster.Endpoint, rst *roster, qc queryChannels, db graphdb.Graph, cfg KHopConfig) (KHopResult, error) {
	ep = wrapActive(ep, rst)
	coll := cluster.NewCollective(ep, qc.collUp, qc.collDn).WithContext(ctx)
	if rst.partial() {
		coll = coll.WithParticipants(rst.nodes)
	}
	p := ep.Nodes()
	self := ep.ID()
	rt := &vertexRouter{
		rst:      rst,
		owner:    func(v graph.VertexID) cluster.NodeID { return cfg.ownerOf(v, p) },
		replicas: cfg.ReplicasOf,
	}
	res := KHopResult{}

	visited := getMemVisited()
	defer releaseVisited(visited)

	var fringe []graph.VertexID
	var seedDropped int64
	if cfg.Ownership == BroadcastFringe {
		if _, err := visited.MarkIfNew(cfg.Source, 0); err != nil {
			return res, err
		}
		fringe = append(fringe, cfg.Source)
	} else if dest, replica, ok := rt.route(cfg.Source); !ok {
		if self == rst.first() {
			seedDropped = 1
		}
	} else if dest == self {
		if _, err := visited.MarkIfNew(cfg.Source, 0); err != nil {
			return res, err
		}
		fringe = append(fringe, cfg.Source)
		if replica {
			res.ReplicaReads++
		}
	}

	prefetcher, _ := db.(graphdb.Prefetcher)
	asyncPf, _ := db.(graphdb.AsyncPrefetcher)
	// Pipelined prefetch, as in bfsLevelSync: jobs issued for the next
	// fringe while this level's exchange and barrier run, joined before
	// the fringe is expanded, cancelled on every exit path.
	var pending []graphdb.PrefetchJob
	waitPending := func() {
		for _, j := range pending {
			_ = j.Wait() // advisory — expansion surfaces real failures
		}
		pending = pending[:0]
	}
	defer func() {
		for _, j := range pending {
			j.Cancel()
		}
		waitPending()
	}()

	adj := getAdjList()
	defer putAdjList(adj)
	for levcnt := int32(1); levcnt <= int32(cfg.K); levcnt++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if cfg.Prefetch {
			switch {
			case len(pending) > 0:
				waitPending()
			case asyncPf != nil:
				pending = append(pending, asyncPf.PrefetchAsync(ctx, fringe))
				waitPending()
			case prefetcher != nil:
				if _, err := prefetcher.PrefetchAdjacency(fringe); err != nil {
					return res, err
				}
			}
		}
		adj.Reset()
		if err := graphdb.AdjacencyBatch(db, fringe, adj, 0, graphdb.MetaIgnore); err != nil {
			return res, err
		}
		res.EdgesTraversed += int64(adj.Len())

		outbound := make([][]graph.VertexID, p)
		var localNext []graph.VertexID
		var newHere int64
		levelDropped := seedDropped
		seedDropped = 0
		for _, u := range adj.IDs() {
			isNew, err := visited.MarkIfNew(u, levcnt)
			if err != nil {
				return res, err
			}
			if !isNew {
				continue
			}
			if cfg.Ownership == KnownMapping {
				dest, replica, ok := rt.route(u)
				if !ok {
					levelDropped++
					continue
				}
				if replica {
					res.ReplicaReads++
				}
				if dest == self {
					newHere++
					localNext = append(localNext, u)
				} else {
					outbound[dest] = append(outbound[dest], u)
				}
			} else {
				newHere++
				localNext = append(localNext, u)
				for _, q := range rst.nodes {
					if q != self {
						outbound[q] = append(outbound[q], u)
					}
				}
			}
		}
		// The locally discovered share of the next fringe is final:
		// start warming it while the exchange runs.
		if cfg.Prefetch && asyncPf != nil && len(localNext) > 0 {
			pending = append(pending, asyncPf.PrefetchAsync(ctx, localNext))
		}
		for _, q := range rst.nodes {
			if q == self {
				continue
			}
			if len(outbound[q]) > 0 {
				if err := ep.Send(q, qc.fringe, encodeChunk(outbound[q])); err != nil {
					return res, err
				}
			}
			if err := ep.Send(q, qc.fringe, []byte{fkDone}); err != nil {
				return res, err
			}
		}
		next := localNext
		for done := 0; done < rst.size()-1; {
			msg, err := ep.RecvCtx(ctx, qc.fringe)
			if err != nil {
				return res, err
			}
			switch msg.Payload[0] {
			case fkDone:
				done++
			case fkChunk:
				ids, err := decodeChunk(msg.Payload)
				if err != nil {
					return res, err
				}
				for _, u := range ids {
					isNew, err := visited.MarkIfNew(u, levcnt)
					if err != nil {
						return res, err
					}
					if isNew {
						// Under known mapping, the receiving owner is
						// the counting authority for u.
						if cfg.Ownership == KnownMapping {
							newHere++
						}
						next = append(next, u)
					}
				}
			default:
				return res, fmt.Errorf("query: unknown fringe frame kind %d", msg.Payload[0])
			}
		}

		// Vertices absorbed from peers warm during the level barrier.
		if cfg.Prefetch && asyncPf != nil && len(next) > len(localNext) {
			pending = append(pending, asyncPf.PrefetchAsync(ctx, next[len(localNext):]))
		}

		// Under broadcast ownership every node marks every vertex; only
		// the counting authority's tally enters the per-level total to
		// avoid p-fold counting (on a full roster the authority is the
		// GID % p owner).
		if cfg.Ownership == BroadcastFringe {
			newHere = 0
			for _, u := range next {
				if rst.authority(u) == self {
					newHere++
				}
			}
		}
		res.PerLevel = append(res.PerLevel, newHere)
		res.Dropped += levelDropped

		total, err := coll.AllReduceSum(int64(len(next)))
		if err != nil {
			return res, err
		}
		// Coordinated drop check, as in bfsLevelSync.
		if rst.partial() {
			dropTotal, err := coll.AllReduceSum(levelDropped)
			if err != nil {
				return res, err
			}
			if dropTotal > 0 && !cfg.AllowPartial {
				return res, fmt.Errorf("query: level %d dropped %d fringe vertices: %w",
					levcnt, dropTotal, ErrNoLiveReplica)
			}
		}
		if total == 0 {
			break
		}
		fringe = next
	}
	return res, nil
}

// khopAnalysis adapts ParallelKHop to the Query Service registry.
type khopAnalysis struct{}

func (khopAnalysis) Name() string { return "khop" }

func (khopAnalysis) Describe() string {
	return "count vertices within k hops of a source (params: source, k, broadcast)"
}

func (khopAnalysis) Run(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, params map[string]string) (any, error) {
	src, err := requiredVertex(params, "source")
	if err != nil {
		return nil, err
	}
	ks, ok := params["k"]
	if !ok {
		return nil, fmt.Errorf("query: missing required param %q", "k")
	}
	k, err := strconv.Atoi(ks)
	if err != nil {
		return nil, fmt.Errorf("query: bad k %q: %w", ks, err)
	}
	cfg := KHopConfig{Source: src, K: k}
	if params["broadcast"] == "true" {
		cfg.Ownership = BroadcastFringe
	}
	if params["prefetch"] == "true" {
		cfg.Prefetch = true
	}
	return ParallelKHop(ctx, f, dbs, cfg)
}

// statsAnalysis reports aggregate GraphDB work counters per node — the
// framework-level observability hook.
type statsAnalysis struct{}

func (statsAnalysis) Name() string { return "dbstats" }

func (statsAnalysis) Describe() string {
	return "aggregate GraphDB statistics across back-end nodes (no params)"
}

// DBStats is the dbstats analysis result.
type DBStats struct {
	PerNode []graphdb.Stats
	Total   graphdb.Stats
}

func (statsAnalysis) Run(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, params map[string]string) (any, error) {
	out := DBStats{PerNode: make([]graphdb.Stats, len(dbs))}
	for i, db := range dbs {
		s := db.Stats()
		out.PerNode[i] = s
		out.Total.EdgesStored += s.EdgesStored
		out.Total.AdjacencyCalls += s.AdjacencyCalls
		out.Total.NeighborsReturned += s.NeighborsReturned
	}
	return out, nil
}

func init() {
	RegisterAnalysis(khopAnalysis{})
	RegisterAnalysis(statsAnalysis{})
}
