// Package qcache is the serving tier's epoch-keyed result cache: a
// bounded-memory LRU mapping (placement epoch, graph generation,
// analysis name, canonicalized params) to a finished query result.
//
// The key design makes invalidation structural instead of imperative:
// an ingest commit bumps every back-end's generation stamp and a
// migration commit bumps the placement epoch, so a stale entry simply
// stops matching — it can never be returned again. PurgeStale exists
// only to reclaim the memory those unreachable entries occupy (wired to
// the ingest-commit and placement swap hooks by core.Engine); skipping
// it costs bytes, never correctness.
//
// Cached values are shared across callers and must be treated as
// read-only; the query result types (BFSResult, KHopResult, ...) are
// plain data the engine never mutates after completion.
package qcache

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mssg/internal/obs"
)

// Key identifies one cacheable query against one committed graph state.
type Key struct {
	// Epoch is the committed placement epoch (0 on a static cluster).
	Epoch uint64
	// Generation is the combined back-end generation stamp
	// (graphdb.GraphsGeneration) at admission.
	Generation uint64
	// Analysis is the registered analysis name ("bfs", "khop", ...).
	Analysis string
	// Params is the canonicalized parameter string (CanonicalParams or a
	// caller-built canonical form); two queries are "identical" exactly
	// when their Params strings are byte-equal.
	Params string
}

// CanonicalParams encodes a params map into a canonical string: sorted
// by key, each pair length-prefixed so no choice of key/value bytes can
// collide with another map ("a"→"b=1" never equals "a=b"→"1"). Map
// iteration order never influences the result, which is what the fuzz
// target pins.
func CanonicalParams(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		v := params[k]
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(len(v)))
		sb.WriteByte(':')
		sb.WriteString(v)
		sb.WriteByte(';')
	}
	return sb.String()
}

// entry is one cached result with its accounting cost.
type entry struct {
	key  Key
	val  any
	cost int64
}

// Cache is a bounded-memory LRU over Keys. All methods are safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int64
	cur   int64
	ll    *list.List // front = most recently used
	items map[Key]*list.Element

	hits, misses, evictions, invalidations *obs.Counter
	entries, bytes                         *obs.Gauge
}

// DefaultMaxBytes sizes a cache when the caller passes no budget.
const DefaultMaxBytes = 16 << 20

// New builds a cache bounded at maxBytes of accounted result cost
// (<= 0 selects DefaultMaxBytes). Counters land in reg (nil =
// obs.Default()) under qcache.*.
func New(maxBytes int64, reg *obs.Registry) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if reg == nil {
		reg = obs.Default()
	}
	return &Cache{
		max:           maxBytes,
		ll:            list.New(),
		items:         make(map[Key]*list.Element),
		hits:          reg.Counter("qcache.hits"),
		misses:        reg.Counter("qcache.misses"),
		evictions:     reg.Counter("qcache.evictions"),
		invalidations: reg.Counter("qcache.invalidations"),
		entries:       reg.Gauge("qcache.entries"),
		bytes:         reg.Gauge("qcache.bytes"),
	}
}

// Get returns the cached result for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*entry).val, true
}

// Put stores v under k with the given accounting cost (<= 0 is clamped
// to a fixed floor so unaccounted entries still bound the cache). An
// entry larger than the whole budget is not stored.
func (c *Cache) Put(k Key, v any, cost int64) {
	const costFloor = 128
	if cost < costFloor {
		cost = costFloor
	}
	if cost > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.cur += cost - e.cost
		e.val, e.cost = v, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, val: v, cost: cost})
		c.cur += cost
	}
	for c.cur > c.max {
		c.evictOldestLocked()
	}
	c.entries.Set(int64(len(c.items)))
	c.bytes.Set(c.cur)
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.cur -= e.cost
	c.evictions.Inc()
}

// PurgeStale drops every entry whose epoch or generation differs from
// the current (epoch, gen) — the memory-reclamation half of
// invalidation after an ingest commit or an epoch swap (matching is
// already impossible: the key changed). Returns the number dropped.
func (c *Cache) PurgeStale(epoch, gen uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dropped int
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Epoch != epoch || e.key.Generation != gen {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.cur -= e.cost
			dropped++
		}
		el = next
	}
	if dropped > 0 {
		c.invalidations.Add(int64(dropped))
		c.entries.Set(int64(len(c.items)))
		c.bytes.Set(c.cur)
	}
	return dropped
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the accounted cost of live entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// Stats is a point-in-time hit/miss summary.
type Stats struct {
	Hits, Misses, Evictions, Invalidations int64
}

// Stats reads the cache's counters. On a shared registry the counters
// aggregate every cache built against it; per-cache tests should use a
// private registry.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Evictions:     c.evictions.Value(),
		Invalidations: c.invalidations.Value(),
	}
}
