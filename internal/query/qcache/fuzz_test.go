package qcache

import (
	"strings"
	"testing"
)

// FuzzCanonicalParams pins the two properties the cache key depends on:
//
//  1. Order-insensitivity — building the same map from pairs presented
//     in a different order must canonicalize identically (map iteration
//     order can never leak into the key).
//  2. Injectivity — two different maps must never canonicalize to the
//     same string (a collision would serve one tenant's query another
//     query's cached result).
//
// The input is an arbitrary byte string cut into key/value pairs, so
// the fuzzer explores delimiters (':', '=', ';'), empty keys/values,
// and non-UTF-8 bytes.
func FuzzCanonicalParams(f *testing.F) {
	f.Add("source\x003\x00dest\x0042", "k\x002")
	f.Add("a\x00b=1", "a=b\x001")
	f.Add("", "x\x00")
	f.Add("1:a\x00b;", ";\x00=")
	f.Fuzz(func(t *testing.T, raw1, raw2 string) {
		m1 := pairsToMap(raw1)
		m2 := pairsToMap(raw2)

		// Property 1: rebuild m1 inserting pairs in reverse order.
		rev := make(map[string]string, len(m1))
		keys := make([]string, 0, len(m1))
		for k := range m1 {
			keys = append(keys, k)
		}
		for i := len(keys) - 1; i >= 0; i-- {
			rev[keys[i]] = m1[keys[i]]
		}
		c1 := CanonicalParams(m1)
		if c2 := CanonicalParams(rev); c1 != c2 {
			t.Fatalf("insertion order changed the key: %q vs %q", c1, c2)
		}

		// Property 2: equal canonical strings imply equal maps.
		if c1 == CanonicalParams(m2) && !mapsEqual(m1, m2) {
			t.Fatalf("distinct maps %v and %v share key %q", m1, m2, c1)
		}
	})
}

// pairsToMap splits raw on NUL into alternating keys and values; a
// trailing key gets the empty value. Later duplicates win, like map
// assignment.
func pairsToMap(raw string) map[string]string {
	m := make(map[string]string)
	if raw == "" {
		return m
	}
	parts := strings.Split(raw, "\x00")
	for i := 0; i < len(parts); i += 2 {
		v := ""
		if i+1 < len(parts) {
			v = parts[i+1]
		}
		m[parts[i]] = v
	}
	return m
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
