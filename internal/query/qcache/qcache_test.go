package qcache

import (
	"fmt"
	"sync"
	"testing"

	"mssg/internal/obs"
)

func TestQCacheGetPut(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	k := Key{Epoch: 1, Generation: 7, Analysis: "bfs", Params: "x"}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "result", 256)
	v, ok := c.Get(k)
	if !ok || v.(string) != "result" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	// A different generation is a different key.
	k2 := k
	k2.Generation = 8
	if _, ok := c.Get(k2); ok {
		t.Fatal("hit across generations")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQCacheBoundedMemory(t *testing.T) {
	c := New(1024, obs.NewRegistry())
	for i := 0; i < 100; i++ {
		c.Put(Key{Analysis: "bfs", Params: fmt.Sprint(i)}, i, 256)
	}
	if got := c.Bytes(); got > 1024 {
		t.Fatalf("cache holds %d bytes, budget 1024", got)
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("len = %d, want 4 (1024/256)", got)
	}
	if ev := c.Stats().Evictions; ev != 96 {
		t.Fatalf("evictions = %d, want 96", ev)
	}
	// The survivors are the most recently inserted.
	if _, ok := c.Get(Key{Analysis: "bfs", Params: "99"}); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Get(Key{Analysis: "bfs", Params: "0"}); ok {
		t.Fatal("oldest entry survived over budget")
	}
}

func TestQCacheLRUOrder(t *testing.T) {
	c := New(512, obs.NewRegistry()) // room for 2 entries of 256
	a := Key{Params: "a"}
	b := Key{Params: "b"}
	c.Put(a, 1, 256)
	c.Put(b, 2, 256)
	c.Get(a) // a becomes MRU
	c.Put(Key{Params: "c"}, 3, 256)
	if _, ok := c.Get(a); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(b); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestQCacheOversizedEntryRejected(t *testing.T) {
	c := New(1024, obs.NewRegistry())
	c.Put(Key{Params: "big"}, "x", 4096)
	if c.Len() != 0 {
		t.Fatal("entry larger than the budget was stored")
	}
}

func TestQCachePurgeStale(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	c.Put(Key{Epoch: 1, Generation: 5, Params: "a"}, 1, 256)
	c.Put(Key{Epoch: 1, Generation: 6, Params: "a"}, 2, 256)
	c.Put(Key{Epoch: 2, Generation: 6, Params: "a"}, 3, 256)
	if n := c.PurgeStale(2, 6); n != 2 {
		t.Fatalf("purged %d, want 2", n)
	}
	if _, ok := c.Get(Key{Epoch: 2, Generation: 6, Params: "a"}); !ok {
		t.Fatal("current-epoch entry purged")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after purge", c.Len())
	}
	if inv := c.Stats().Invalidations; inv != 2 {
		t.Fatalf("invalidations = %d", inv)
	}
}

func TestQCacheConcurrent(t *testing.T) {
	c := New(64<<10, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Generation: uint64(i % 7), Params: fmt.Sprint(i % 37)}
				if i%3 == 0 {
					c.Put(k, i, 256)
				} else {
					c.Get(k)
				}
				if i%101 == 0 {
					c.PurgeStale(0, uint64(i%7))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 64<<10 {
		t.Fatalf("over budget after concurrent churn: %d", c.Bytes())
	}
}

func TestCanonicalParamsOrderInsensitive(t *testing.T) {
	a := CanonicalParams(map[string]string{"source": "3", "dest": "42", "k": "2"})
	b := CanonicalParams(map[string]string{"k": "2", "dest": "42", "source": "3"})
	if a != b {
		t.Fatalf("order-sensitive canonicalization: %q vs %q", a, b)
	}
	if CanonicalParams(nil) != "" || CanonicalParams(map[string]string{}) != "" {
		t.Fatal("empty map must canonicalize to the empty string")
	}
}

func TestCanonicalParamsInjective(t *testing.T) {
	// The classic splitting attack: {"a":"b=1"} vs {"a=b":"1"} vs
	// {"a":"b","1":""} must all differ.
	cases := []map[string]string{
		{"a": "b=1"},
		{"a=b": "1"},
		{"a": "b", "1": ""},
		{"a": "b;1:c"},
		{"a": "b", "c": ""},
		{"a": "b;", "c": ""},
	}
	seen := make(map[string]int)
	for i, m := range cases {
		s := CanonicalParams(m)
		if j, dup := seen[s]; dup {
			t.Fatalf("maps %d and %d collide on %q", i, j, s)
		}
		seen[s] = i
	}
}
