package query

import (
	"context"
	"testing"

	"mssg/internal/cluster"
)

// TestBFSLevelStats: on a 9-edge chain, every level's fringe is exactly
// one vertex and the per-level breakdown must mirror Levels, for both
// algorithms.
func TestBFSLevelStats(t *testing.T) {
	edges := chainEdges(9)
	for _, pipelined := range []bool{false, true} {
		name := "levelsync"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			f := cluster.NewInProc(2, 0)
			defer f.Close()
			dbs := partition(t, edges, 2)
			res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 0, Dest: 9, Pipelined: pipelined})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found || res.Levels != 9 {
				t.Fatalf("found=%v levels=%d, want found at level 9", res.Found, res.Levels)
			}
			if len(res.LevelStats) != int(res.Levels) {
				t.Fatalf("got %d level stats for %d levels", len(res.LevelStats), res.Levels)
			}
			for i, ls := range res.LevelStats {
				if ls.Level != int32(i+1) {
					t.Fatalf("LevelStats[%d].Level = %d, want %d", i, ls.Level, i+1)
				}
				// A chain's fringe is one vertex per level, summed across
				// both nodes (the non-owner holds an empty fringe).
				if ls.Fringe != 1 {
					t.Fatalf("level %d fringe = %d, want 1", ls.Level, ls.Fringe)
				}
				if ls.ExpandNs < 0 || ls.TotalNs < ls.ExpandNs {
					t.Fatalf("level %d timings inconsistent: %+v", ls.Level, ls)
				}
			}
		})
	}
}
