package query

import (
	"sync"

	"mssg/internal/graph"
)

// Per-query scratch pooling. A resident engine runs queries back to
// back; re-allocating the visited maps and adjacency buffers for every
// one of them turns the allocator into the serving bottleneck. The pools
// below recycle the default (in-memory) structures across queries.
// Caller-provided NewVisited structures are not pooled — the engine
// cannot know how to reset them.

var adjPool = sync.Pool{
	New: func() any { return graph.NewAdjList(1024) },
}

// getAdjList returns a reset adjacency buffer from the pool.
func getAdjList() *graph.AdjList {
	a := adjPool.Get().(*graph.AdjList)
	a.Reset()
	return a
}

func putAdjList(a *graph.AdjList) { adjPool.Put(a) }

var memVisitedPool = sync.Pool{
	New: func() any { return NewMemVisited() },
}

var shardedVisitedPool = sync.Pool{
	New: func() any { return NewShardedVisited() },
}

// getMemVisited returns an empty pooled MemVisited; hand it back with
// releaseVisited.
func getMemVisited() *MemVisited {
	return memVisitedPool.Get().(*MemVisited)
}

// getShardedVisited returns an empty pooled ShardedVisited; hand it back
// with releaseVisited.
func getShardedVisited() *ShardedVisited {
	return shardedVisitedPool.Get().(*ShardedVisited)
}

// releaseVisited resets v and returns it to its pool. Only the two
// built-in in-memory structures are recycled.
func releaseVisited(v Visited) {
	switch t := v.(type) {
	case *MemVisited:
		t.Reset()
		memVisitedPool.Put(t)
	case *ShardedVisited:
		t.Reset()
		shardedVisitedPool.Put(t)
	}
}
