package query

import (
	"context"
	"fmt"
	"sort"

	"mssg/internal/cluster"
	"mssg/internal/graph"
)

// roster is the set of back-end nodes one query run spans. The normal
// case is the full fabric; the failover path runs on the survivors only,
// and every routing, exchange, and collective decision consults the
// roster instead of assuming [0, p).
type roster struct {
	nodes []cluster.NodeID // ascending, duplicate-free
	in    []bool           // indexed by NodeID over the whole fabric
	p     int              // fabric size
}

// newRoster validates active against a p-node fabric. nil active means
// all nodes. The list must be ascending, duplicate-free, non-empty, and
// in range — a malformed roster would desynchronize the collectives, so
// it is rejected up front.
func newRoster(p int, active []cluster.NodeID) (*roster, error) {
	r := &roster{p: p, in: make([]bool, p)}
	if active == nil {
		r.nodes = make([]cluster.NodeID, p)
		for i := range r.nodes {
			r.nodes[i] = cluster.NodeID(i)
			r.in[i] = true
		}
		return r, nil
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("query: empty active node set")
	}
	if !sort.SliceIsSorted(active, func(i, j int) bool { return active[i] < active[j] }) {
		return nil, fmt.Errorf("query: active nodes %v not ascending", active)
	}
	r.nodes = append([]cluster.NodeID(nil), active...)
	for i, n := range r.nodes {
		if err := cluster.Validate(n, p); err != nil {
			return nil, err
		}
		if i > 0 && r.nodes[i-1] == n {
			return nil, fmt.Errorf("query: duplicate active node %d", n)
		}
		r.in[n] = true
	}
	return r, nil
}

// partial reports whether any fabric node is excluded.
func (r *roster) partial() bool { return len(r.nodes) < r.p }

func (r *roster) size() int { return len(r.nodes) }

func (r *roster) contains(n cluster.NodeID) bool {
	return int(n) >= 0 && int(n) < len(r.in) && r.in[n]
}

// first is the lowest-numbered member: the coordinator/driver role that
// node 0 plays on a full fabric.
func (r *roster) first() cluster.NodeID { return r.nodes[0] }

// runNodes is the argument for cluster.RunOn: nil (all) when full, the
// member list when partial.
func (r *roster) runNodes() []cluster.NodeID {
	if !r.partial() {
		return nil
	}
	return r.nodes
}

// authority deals vertex v to one roster member deterministically — the
// counting authority the broadcast-ownership k-hop uses so each vertex
// is tallied exactly once. On a full roster it coincides with
// cluster.Owner's GID % p mapping.
func (r *roster) authority(v graph.VertexID) cluster.NodeID {
	x := int64(v)
	if x < 0 {
		x = -x
	}
	return r.nodes[x%int64(len(r.nodes))]
}

// vertexRouter resolves which roster member serves a vertex's adjacency.
// With a replica directory it walks the vertex's ordered replica list
// and picks the first live member (a non-primary pick is a replica
// read); without one, the single owner either is in the roster or the
// vertex is unreachable. Safe for concurrent use as long as the owner
// and replicas functions are.
type vertexRouter struct {
	rst      *roster
	owner    func(v graph.VertexID) cluster.NodeID
	replicas func(v graph.VertexID) []cluster.NodeID
}

// route returns the serving node for v, whether that node is a
// non-primary replica, and whether any live node serves v at all.
func (rt *vertexRouter) route(v graph.VertexID) (dest cluster.NodeID, replica, ok bool) {
	if rt.replicas == nil || !rt.rst.partial() {
		// Fast path: on a full roster the primary is always live, and the
		// primary replica is by contract the owner — no list allocation.
		o := rt.owner(v)
		return o, false, rt.rst.contains(o)
	}
	for i, n := range rt.replicas(v) {
		if rt.rst.contains(n) {
			return n, i > 0, true
		}
	}
	return 0, false, false
}

// activeEndpoint filters a fabric endpoint's failure reporting down to
// the roster: a receive that fails only because an *excluded* peer is
// declared down is retried (the reliable layer's Recv fails fast on any
// down peer, but a failover run has already routed around that peer), a
// failure naming any roster member still surfaces, and broadcasts
// address roster members only. The inner receive blocks for one poll
// interval per attempt, so the retry loop does not spin.
type activeEndpoint struct {
	cluster.Endpoint
	rst *roster
}

// wrapActive returns ep filtered to rst, or ep itself for a full roster
// (no behavior change on the normal path).
func wrapActive(ep cluster.Endpoint, rst *roster) cluster.Endpoint {
	if !rst.partial() {
		return ep
	}
	return &activeEndpoint{Endpoint: ep, rst: rst}
}

// foreignOnly reports whether err is a down-declaration naming only
// nodes outside the roster.
func (a *activeEndpoint) foreignOnly(err error) bool {
	downs := cluster.DownNodes(err)
	if len(downs) == 0 {
		return false
	}
	for _, n := range downs {
		if a.rst.contains(n) {
			return false
		}
	}
	return true
}

func (a *activeEndpoint) Recv(ch cluster.ChannelID) (cluster.Message, error) {
	for {
		msg, err := a.Endpoint.Recv(ch)
		if err != nil && a.foreignOnly(err) {
			continue
		}
		return msg, err
	}
}

func (a *activeEndpoint) RecvCtx(ctx context.Context, ch cluster.ChannelID) (cluster.Message, error) {
	for {
		msg, err := a.Endpoint.RecvCtx(ctx, ch)
		if err != nil && a.foreignOnly(err) {
			// Keep honoring cancellation between filtered attempts; the
			// inner receive also checks it once per poll interval.
			if cerr := ctx.Err(); cerr != nil {
				return cluster.Message{}, cerr
			}
			continue
		}
		return msg, err
	}
}

func (a *activeEndpoint) TryRecv(ch cluster.ChannelID) (cluster.Message, bool, error) {
	msg, ok, err := a.Endpoint.TryRecv(ch)
	if err != nil && a.foreignOnly(err) {
		// Nothing queued and only excluded peers are down: simply not
		// ready, exactly as on a healthy fabric.
		return cluster.Message{}, false, nil
	}
	return msg, ok, err
}

// Broadcast addresses roster members only; dead excluded peers would
// fail the send (and the whole query) for data they will never read.
func (a *activeEndpoint) Broadcast(ch cluster.ChannelID, payload []byte) error {
	self := a.Endpoint.ID()
	for _, n := range a.rst.nodes {
		if n == self {
			continue
		}
		c := make([]byte, len(payload))
		copy(c, payload)
		if err := a.Endpoint.Send(n, ch, c); err != nil {
			return err
		}
	}
	return nil
}
