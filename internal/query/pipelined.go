package query

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
)

// bfsPipelined is Algorithm 2: identical level structure to Algorithm 1,
// but within a level the next fringe is shipped in chunks as soon as a
// destination bucket passes the threshold, and incoming chunks are drained
// between expansions, overlapping communication with the out-of-core
// adjacency reads. Because sends are asynchronous (the fabric buffers
// them), the expansion loop keeps processing local fringe vertices while
// the communication subsystem moves the chunks, as §4.2 describes.
func bfsPipelined(ctx context.Context, ep cluster.Endpoint, rst *roster, qc queryChannels, db graphdb.Graph, visited Visited, cfg BFSConfig) (BFSResult, error) {
	coll := cluster.NewCollective(ep, qc.collUp, qc.collDn).WithContext(ctx)
	if rst.partial() {
		coll = coll.WithParticipants(rst.nodes)
	}
	p := ep.Nodes()
	self := ep.ID()
	threshold := cfg.threshold()
	rt := &vertexRouter{
		rst:      rst,
		owner:    func(v graph.VertexID) cluster.NodeID { return cfg.ownerOf(v, p) },
		replicas: cfg.ReplicasOf,
	}

	res := BFSResult{PathLength: -1}
	if cfg.Source == cfg.Dest {
		res.Found = true
		res.PathLength = 0
		return res, nil
	}

	var fringe []graph.VertexID
	var seedDropped int64
	if cfg.Ownership == BroadcastFringe {
		if _, err := visited.MarkIfNew(cfg.Source, 0); err != nil {
			return res, err
		}
		fringe = append(fringe, cfg.Source)
	} else if dest, replica, ok := rt.route(cfg.Source); !ok {
		if self == rst.first() {
			seedDropped = 1
		}
	} else if dest == self {
		if _, err := visited.MarkIfNew(cfg.Source, 0); err != nil {
			return res, err
		}
		fringe = append(fringe, cfg.Source)
		if replica {
			res.ReplicaReads++
		}
	}

	prefetcher, _ := db.(graphdb.Prefetcher)
	filterOp, filterRef := cfg.Filter.metaOp()
	nw := cfg.expandWorkers(db)
	adj := getAdjList()
	defer putAdjList(adj)
	met := qm()
	met.runs.Inc()
	runSpan := obs.DefaultTracer().StartSpan("bfs.pipelined", map[string]string{
		"node": strconv.Itoa(int(self)),
	})
	defer runSpan.End()
	var levcnt int32
	for levcnt < cfg.maxLevels() {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		levcnt++
		levelStart := time.Now()
		met.fringe.Observe(int64(len(fringe)))
		lvlSpan := runSpan.Child("bfs.level", map[string]string{
			"level":  strconv.Itoa(int(levcnt)),
			"fringe": strconv.Itoa(len(fringe)),
		})
		if cfg.Prefetch && prefetcher != nil {
			if _, err := prefetcher.PrefetchAdjacency(fringe); err != nil {
				return res, err
			}
		}
		foundLocal := int64(0)
		buckets := make([][]graph.VertexID, p)
		var next []graph.VertexID
		doneSeen := 0
		levelDropped := seedDropped
		seedDropped = 0
		var levelReplicaReads int64

		// mergeChunk adds received fringe vertices (receive-side dedup,
		// Algorithm 2 lines 24-27).
		mergeChunk := func(payload []byte) error {
			ids, err := decodeChunk(payload)
			if err != nil {
				return err
			}
			for _, u := range ids {
				isNew, err := visited.MarkIfNew(u, levcnt)
				if err != nil {
					return err
				}
				if isNew {
					res.VerticesVisited++
					next = append(next, u)
				}
			}
			return nil
		}

		// poll drains whatever has already arrived, without blocking.
		poll := func() error {
			for {
				msg, ok, err := ep.TryRecv(qc.fringe)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				switch msg.Payload[0] {
				case fkDone:
					doneSeen++
				case fkChunk:
					if err := mergeChunk(msg.Payload); err != nil {
						return err
					}
				default:
					return fmt.Errorf("query: unknown fringe frame kind %d", msg.Payload[0])
				}
			}
		}

		sendBucket := func(q int) error {
			if len(buckets[q]) == 0 {
				return nil
			}
			if err := ep.Send(cluster.NodeID(q), qc.fringe, encodeChunk(buckets[q])); err != nil {
				return err
			}
			buckets[q] = buckets[q][:0]
			return nil
		}

		// expandSerial is the paper's per-vertex expansion loop
		// (Algorithm 2 lines 9-22), pipelining chunk sends and draining
		// arrivals between vertices.
		expandSerial := func() error {
			for i, v := range fringe {
				if i%64 == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				adj.Reset()
				if err := db.AdjacencyUsingMetadata(v, adj, filterRef, filterOp); err != nil {
					return err
				}
				res.EdgesTraversed += int64(adj.Len())
				for _, u := range adj.IDs() {
					if u == cfg.Dest {
						foundLocal = 1
					}
					isNew, err := visited.MarkIfNew(u, levcnt)
					if err != nil {
						return err
					}
					if !isNew {
						continue
					}
					if cfg.Ownership == KnownMapping {
						dest, replica, ok := rt.route(u)
						if !ok {
							levelDropped++
							continue
						}
						res.VerticesVisited++
						if replica {
							levelReplicaReads++
						}
						if dest == self {
							next = append(next, u)
							continue
						}
						buckets[dest] = append(buckets[dest], u)
						res.FringeSent++
						if len(buckets[dest]) >= threshold {
							if err := sendBucket(int(dest)); err != nil {
								return err
							}
						}
					} else {
						res.VerticesVisited++
						next = append(next, u)
						for _, q := range rst.nodes {
							if q == self {
								continue
							}
							buckets[q] = append(buckets[q], u)
							res.FringeSent++
							if len(buckets[q]) >= threshold {
								if err := sendBucket(int(q)); err != nil {
									return err
								}
							}
						}
					}
				}
				// Overlap: absorb whatever peers have sent so far.
				if err := poll(); err != nil {
					return err
				}
			}
			return nil
		}

		if nw > 1 {
			// Parallel expansion: workers ship threshold-full chunks to
			// peers themselves (endpoints allow concurrent senders),
			// while this goroutine keeps draining arrivals — required
			// under bounded mailboxes, where a full peer mailbox would
			// otherwise deadlock two nodes sending at each other.
			type expandOutcome struct {
				acc levelAcc
				err error
			}
			ch := make(chan expandOutcome, 1)
			go func(levcnt int32) {
				acc, err := expandParallel(ctx, ep, rt, qc.fringe, db, visited, &cfg, fringe, levcnt, nw, threshold)
				ch <- expandOutcome{acc, err}
			}(levcnt)
			var acc levelAcc
		expand:
			for {
				select {
				case out := <-ch:
					if out.err != nil {
						return res, out.err
					}
					acc = out.acc
					break expand
				default:
					if err := ctx.Err(); err != nil {
						// Let the workers notice the cancellation (they
						// check per chunk) and drain their outcome so no
						// goroutine leaks past this return.
						<-ch
						return res, err
					}
					if err := poll(); err != nil {
						return res, err
					}
					time.Sleep(20 * time.Microsecond)
				}
			}
			if acc.found {
				foundLocal = 1
			}
			res.EdgesTraversed += acc.edgesTraversed
			res.VerticesVisited += acc.verticesVisited
			res.FringeSent += acc.fringeSent
			levelDropped += acc.dropped
			levelReplicaReads += acc.replicaReads
			next = append(next, acc.localNext...)
			// Sub-threshold leftovers ride the normal end-of-level flush.
			buckets = acc.outbound
		} else {
			if err := expandSerial(); err != nil {
				return res, err
			}
		}

		// Expansion overlapped its sends, so expand_ns here covers the
		// whole compute+ship phase; exchange_ns covers only the end-of-
		// level flush and drain below.
		expandNs := time.Since(levelStart).Nanoseconds()
		met.expand.Observe(expandNs)
		met.levelHist(levcnt).Observe(expandNs)
		exchangeStart := time.Now()

		// Flush remaining buckets, signal level completion, then drain
		// until every roster peer has signalled (FIFO per sender
		// guarantees all their chunks precede their marker).
		for _, q := range rst.nodes {
			if q == self {
				continue
			}
			if err := sendBucket(int(q)); err != nil {
				return res, err
			}
			if err := ep.Send(q, qc.fringe, []byte{fkDone}); err != nil {
				return res, err
			}
		}
		for doneSeen < rst.size()-1 {
			msg, err := ep.RecvCtx(ctx, qc.fringe)
			if err != nil {
				return res, err
			}
			switch msg.Payload[0] {
			case fkDone:
				doneSeen++
			case fkChunk:
				if err := mergeChunk(msg.Payload); err != nil {
					return res, err
				}
			default:
				return res, fmt.Errorf("query: unknown fringe frame kind %d", msg.Payload[0])
			}
		}

		met.exchange.ObserveSince(exchangeStart)
		lvlSpan.End()
		res.ReplicaReads += levelReplicaReads
		res.FringeDropped += levelDropped
		res.LevelStats = append(res.LevelStats, LevelStat{
			Level:        levcnt,
			Fringe:       int64(len(fringe)),
			ExpandNs:     expandNs,
			TotalNs:      time.Since(levelStart).Nanoseconds(),
			ReplicaReads: levelReplicaReads,
			Dropped:      levelDropped,
		})

		foundGlobal, err := coll.AllReduceMax(foundLocal)
		if err != nil {
			return res, err
		}
		res.Levels = levcnt
		if foundGlobal > 0 {
			res.Found = true
			res.PathLength = levcnt
			return res, nil
		}
		total, err := coll.AllReduceSum(int64(len(next)))
		if err != nil {
			return res, err
		}
		// Coordinated drop check, as in bfsLevelSync: all nodes learn of
		// replica-less shards at the same collective step and fail (or
		// degrade) together.
		if rst.partial() {
			dropTotal, err := coll.AllReduceSum(levelDropped)
			if err != nil {
				return res, err
			}
			if dropTotal > 0 && !cfg.AllowPartial {
				return res, fmt.Errorf("query: level %d dropped %d fringe vertices: %w",
					levcnt, dropTotal, ErrNoLiveReplica)
			}
		}
		if total == 0 {
			return res, nil
		}
		fringe = next
	}
	return res, fmt.Errorf("query: BFS exceeded %d levels", cfg.maxLevels())
}
