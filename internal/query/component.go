package query

import (
	"context"
	"fmt"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// Connected-component analysis: the size and radius (from the seed) of
// the component containing a vertex — one of the classic out-of-core
// graph analyses the paper cites as motivation (chapter 2 lists
// connected components among the external-memory graph algorithms MSSG
// is meant to host). It expands the k-hop machinery until the frontier
// dries up.

// ComponentResult describes the component of a seed vertex.
type ComponentResult struct {
	// Size is the number of vertices in the component (including the
	// seed).
	Size int64
	// Eccentricity is the number of BFS levels needed to exhaust the
	// component from the seed (the seed's graph eccentricity).
	Eccentricity int32
	// EdgesTraversed counts adjacency entries scanned.
	EdgesTraversed int64
}

// componentMaxLevels bounds the sweep; small-world components exhaust in
// a handful of levels, and 1024 levels covers even path-shaped graphs of
// experiment scale.
const componentMaxLevels = 1024

// ParallelComponent measures the connected component containing seed.
func ParallelComponent(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, seed graph.VertexID, ownership Ownership) (ComponentResult, error) {
	kh, err := ParallelKHop(ctx, f, dbs, KHopConfig{Source: seed, K: componentMaxLevels, Ownership: ownership})
	if err != nil {
		return ComponentResult{}, err
	}
	res := ComponentResult{
		Size:           kh.Total + 1, // + the seed itself
		EdgesTraversed: kh.EdgesTraversed,
	}
	for lvl, n := range kh.PerLevel {
		if n > 0 {
			res.Eccentricity = int32(lvl) + 1
		}
	}
	return res, nil
}

// componentAnalysis adapts ParallelComponent to the registry.
type componentAnalysis struct{}

func (componentAnalysis) Name() string { return "component" }

func (componentAnalysis) Describe() string {
	return "size and eccentricity of the connected component containing a vertex (params: source, broadcast)"
}

func (componentAnalysis) Run(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, params map[string]string) (any, error) {
	src, err := requiredVertex(params, "source")
	if err != nil {
		return nil, err
	}
	ownership := KnownMapping
	if params["broadcast"] == "true" {
		ownership = BroadcastFringe
	}
	res, err := ParallelComponent(ctx, f, dbs, src, ownership)
	if err != nil {
		return nil, fmt.Errorf("query: component analysis: %w", err)
	}
	return res, nil
}

func init() {
	RegisterAnalysis(componentAnalysis{})
}
