package query

import (
	"context"
	"reflect"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/hashdb"
)

// partition loads an undirected view of edges into p hashdb instances
// with the GID % p mapping.
func partition(t *testing.T, edges []graph.Edge, p int) []graphdb.Graph {
	t.Helper()
	dbs := make([]graphdb.Graph, p)
	for i := range dbs {
		dbs[i] = hashdb.New()
	}
	for _, e := range edges {
		for _, d := range []graph.Edge{e, e.Reverse()} {
			owner := cluster.Owner(int64(d.Src), p)
			if err := dbs[owner].StoreEdges([]graph.Edge{d}); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
		}
	}
	return dbs
}

// replicate loads the full undirected edge set into every instance
// (edge-granularity-like storage needing broadcast).
func scatter(t *testing.T, edges []graph.Edge, p int) []graphdb.Graph {
	t.Helper()
	dbs := make([]graphdb.Graph, p)
	for i := range dbs {
		dbs[i] = hashdb.New()
	}
	// Round-robin each directed record — adjacency lists split over all
	// nodes.
	i := 0
	for _, e := range edges {
		for _, d := range []graph.Edge{e, e.Reverse()} {
			if err := dbs[i%p].StoreEdges([]graph.Edge{d}); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
			i++
		}
	}
	return dbs
}

func refDist(edges []graph.Edge, src graph.VertexID) map[graph.VertexID]int32 {
	adj := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	dist := map[graph.VertexID]int32{src: 0}
	frontier := []graph.VertexID{src}
	for lvl := int32(1); len(frontier) > 0; lvl++ {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, u := range adj[v] {
				if _, ok := dist[u]; !ok {
					dist[u] = lvl
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

func chainEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	return edges
}

func TestBFSChainExactDistances(t *testing.T) {
	edges := chainEdges(20)
	for _, pipelined := range []bool{false, true} {
		f := cluster.NewInProc(4, 0)
		dbs := partition(t, edges, 4)
		for d := 1; d <= 20; d++ {
			res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
				Source: 0, Dest: graph.VertexID(d), Pipelined: pipelined, Threshold: 2,
			})
			if err != nil {
				t.Fatalf("BFS 0->%d: %v", d, err)
			}
			if !res.Found || res.PathLength != int32(d) {
				t.Fatalf("pipelined=%v BFS 0->%d = (%v,%d)", pipelined, d, res.Found, res.PathLength)
			}
		}
		f.Close()
	}
}

func TestBFSSourceEqualsDest(t *testing.T) {
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(3), 2)
	res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 1, Dest: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.PathLength != 0 {
		t.Fatalf("self query = %+v", res)
	}
}

func TestBFSUnreachable(t *testing.T) {
	// Two disconnected components.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 10, Dst: 11}}
	f := cluster.NewInProc(3, 0)
	defer f.Close()
	dbs := partition(t, edges, 3)
	res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 0, Dest: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.PathLength != -1 {
		t.Fatalf("unreachable query = %+v", res)
	}
}

func TestBFSUnknownSource(t *testing.T) {
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(3), 2)
	res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 77, Dest: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("query from unknown vertex found a path: %+v", res)
	}
}

func TestBroadcastModeOnScatteredStorage(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "b", Vertices: 300, M: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	dist := refDist(edges, 5)
	for _, pipelined := range []bool{false, true} {
		f := cluster.NewInProc(4, 0)
		dbs := scatter(t, edges, 4)
		for _, dest := range []graph.VertexID{10, 100, 299} {
			res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
				Source: 5, Dest: dest,
				Ownership: BroadcastFringe, Pipelined: pipelined, Threshold: 4,
			})
			if err != nil {
				t.Fatalf("broadcast BFS: %v", err)
			}
			if !res.Found || res.PathLength != dist[dest] {
				t.Fatalf("pipelined=%v 5->%d = (%v,%d), want (true,%d)",
					pipelined, dest, res.Found, res.PathLength, dist[dest])
			}
		}
		f.Close()
	}
}

func TestBFSRandomGraphAllDistancesBothAlgorithms(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "r", Vertices: 500, M: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	dist := refDist(edges, 0)
	f := cluster.NewInProc(5, 0)
	defer f.Close()
	dbs := partition(t, edges, 5)
	for dest := graph.VertexID(1); dest < 500; dest += 37 {
		want, ok := dist[dest]
		for _, pipelined := range []bool{false, true} {
			res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 0, Dest: dest, Pipelined: pipelined})
			if err != nil {
				t.Fatal(err)
			}
			if res.Found != ok {
				t.Fatalf("0->%d found=%v want %v", dest, res.Found, ok)
			}
			if ok && res.PathLength != want {
				t.Fatalf("0->%d len=%d want %d (pipelined=%v)", dest, res.PathLength, want, pipelined)
			}
		}
	}
}

func TestBFSWorkCountersPlausible(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "w", Vertices: 400, M: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := cluster.NewInProc(4, 0)
	defer f.Close()
	dbs := partition(t, edges, 4)
	res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 0, Dest: 399})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesTraversed <= 0 {
		t.Fatalf("EdgesTraversed = %d", res.EdgesTraversed)
	}
	if res.EdgesTraversed > 2*int64(len(edges))*2 {
		t.Fatalf("EdgesTraversed = %d exceeds twice the directed edge count %d",
			res.EdgesTraversed, 4*len(edges))
	}
	if res.VerticesVisited <= 0 || res.Levels <= 0 {
		t.Fatalf("counters: %+v", res)
	}
}

func TestBFSMaxLevels(t *testing.T) {
	edges := chainEdges(30)
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, edges, 2)
	_, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 0, Dest: 30, MaxLevels: 5})
	if err == nil {
		t.Fatal("BFS beyond MaxLevels did not error")
	}
}

func TestBFSDBCountMismatch(t *testing.T) {
	f := cluster.NewInProc(3, 0)
	defer f.Close()
	if _, err := ParallelBFS(context.Background(), f, make([]graphdb.Graph, 2), BFSConfig{}); err == nil {
		t.Fatal("db/node count mismatch accepted")
	}
}

func TestMemVisited(t *testing.T) {
	v := NewMemVisited()
	testVisited(t, v)
}

func TestExtVisited(t *testing.T) {
	v, err := NewExtVisited(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	testVisited(t, v)
}

func testVisited(t *testing.T, v Visited) {
	t.Helper()
	if l, err := v.Level(42); err != nil || l != -1 {
		t.Fatalf("Level of unvisited = %d, %v", l, err)
	}
	isNew, err := v.MarkIfNew(42, 3)
	if err != nil || !isNew {
		t.Fatalf("first MarkIfNew = %v, %v", isNew, err)
	}
	isNew, err = v.MarkIfNew(42, 5)
	if err != nil || isNew {
		t.Fatalf("second MarkIfNew = %v, %v", isNew, err)
	}
	if l, err := v.Level(42); err != nil || l != 3 {
		t.Fatalf("Level = %d, %v; want 3 (first mark wins)", l, err)
	}
	if v.Count() != 1 {
		t.Fatalf("Count = %d", v.Count())
	}
	// Level 0 must be representable (source vertex).
	if _, err := v.MarkIfNew(0, 0); err != nil {
		t.Fatalf("MarkIfNew level 0: %v", err)
	}
	if l, err := v.Level(0); err != nil || l != 0 {
		t.Fatalf("Level(0) = %d, %v", l, err)
	}
}

func TestExtVisitedSparseIDs(t *testing.T) {
	v, err := NewExtVisited(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	ids := []graph.VertexID{0, 1, 4095, 4096, 1 << 20}
	for i, id := range ids {
		if _, err := v.MarkIfNew(id, int32(i)); err != nil {
			t.Fatalf("MarkIfNew(%d): %v", id, err)
		}
	}
	for i, id := range ids {
		l, err := v.Level(id)
		if err != nil || l != int32(i) {
			t.Fatalf("Level(%d) = %d, %v; want %d", id, l, err, i)
		}
	}
	if v.Count() != int64(len(ids)) {
		t.Fatalf("Count = %d", v.Count())
	}
}

func TestExtVisitedLevelCap(t *testing.T) {
	v, err := NewExtVisited(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if _, err := v.MarkIfNew(1, 300); err == nil {
		t.Fatal("level beyond byte range accepted")
	}
}

func TestAnalysisRegistry(t *testing.T) {
	names := Analyses()
	found := false
	for _, n := range names {
		if n == "bfs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bfs not registered: %v", names)
	}
	a, ok := LookupAnalysis("bfs")
	if !ok {
		t.Fatal("LookupAnalysis(bfs) failed")
	}
	if a.Describe() == "" {
		t.Fatal("empty analysis description")
	}

	// Parameter validation.
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(4), 2)
	if _, err := a.Run(context.Background(), f, dbs, map[string]string{"source": "0"}); err == nil {
		t.Fatal("missing dest accepted")
	}
	if _, err := a.Run(context.Background(), f, dbs, map[string]string{"source": "x", "dest": "1"}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := a.Run(context.Background(), f, dbs, map[string]string{"source": "0", "dest": "1", "threshold": "zz"}); err == nil {
		t.Fatal("bad threshold accepted")
	}
	out, err := a.Run(context.Background(), f, dbs, map[string]string{
		"source": "0", "dest": "3", "pipelined": "true", "threshold": "2",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := out.(BFSResult)
	if !res.Found || res.PathLength != 3 {
		t.Fatalf("analysis result = %+v", res)
	}
}

func TestChunkCodec(t *testing.T) {
	ids := []graph.VertexID{0, 1, graph.MaxVertexID}
	got, err := decodeChunk(encodeChunk(ids))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("round trip = %v", got)
	}
	if _, err := decodeChunk([]byte{}); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := decodeChunk([]byte{0, 1, 2}); err == nil {
		t.Fatal("misaligned frame accepted")
	}
}

func TestKHopChain(t *testing.T) {
	edges := chainEdges(10) // path 0-1-2-...-10
	for _, ownership := range []Ownership{KnownMapping, BroadcastFringe} {
		f := cluster.NewInProc(3, 0)
		var dbs []graphdb.Graph
		if ownership == KnownMapping {
			dbs = partition(t, edges, 3)
		} else {
			dbs = scatter(t, edges, 3)
		}
		res, err := ParallelKHop(context.Background(), f, dbs, KHopConfig{Source: 0, K: 4, Ownership: ownership})
		if err != nil {
			t.Fatalf("KHop: %v", err)
		}
		// On a chain, each level reaches exactly one new vertex.
		want := []int64{1, 1, 1, 1}
		if !reflect.DeepEqual(res.PerLevel, want) {
			t.Fatalf("ownership=%v PerLevel = %v, want %v", ownership, res.PerLevel, want)
		}
		if res.Total != 4 {
			t.Fatalf("Total = %d, want 4", res.Total)
		}
		f.Close()
	}
}

func TestKHopCountsMatchReferenceBFS(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "k", Vertices: 400, M: 3, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	dist := refDist(edges, 7)
	wantPerLevel := map[int32]int64{}
	var wantTotal int64
	const k = 3
	for _, d := range dist {
		if d >= 1 && d <= k {
			wantPerLevel[d]++
			wantTotal++
		}
	}
	f := cluster.NewInProc(4, 0)
	defer f.Close()
	dbs := partition(t, edges, 4)
	res, err := ParallelKHop(context.Background(), f, dbs, KHopConfig{Source: 7, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != wantTotal {
		t.Fatalf("Total = %d, want %d", res.Total, wantTotal)
	}
	for lvl := int32(1); lvl <= k; lvl++ {
		if res.PerLevel[lvl-1] != wantPerLevel[lvl] {
			t.Fatalf("level %d = %d, want %d (all: %v)", lvl, res.PerLevel[lvl-1], wantPerLevel[lvl], res.PerLevel)
		}
	}
}

func TestKHopValidation(t *testing.T) {
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(3), 2)
	if _, err := ParallelKHop(context.Background(), f, dbs, KHopConfig{Source: 0, K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestKHopAnalysisRegistry(t *testing.T) {
	a, ok := LookupAnalysis("khop")
	if !ok {
		t.Fatal("khop not registered")
	}
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(5), 2)
	out, err := a.Run(context.Background(), f, dbs, map[string]string{"source": "0", "k": "2"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := out.(KHopResult)
	if res.Total != 2 {
		t.Fatalf("khop total = %d, want 2", res.Total)
	}
	if _, err := a.Run(context.Background(), f, dbs, map[string]string{"source": "0"}); err == nil {
		t.Fatal("missing k accepted")
	}
	if _, err := a.Run(context.Background(), f, dbs, map[string]string{"source": "0", "k": "x"}); err == nil {
		t.Fatal("bad k accepted")
	}
}

func TestDBStatsAnalysis(t *testing.T) {
	a, ok := LookupAnalysis("dbstats")
	if !ok {
		t.Fatal("dbstats not registered")
	}
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(5), 2)
	out, err := a.Run(context.Background(), f, dbs, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := out.(DBStats)
	if st.Total.EdgesStored != 10 { // 5 edges, both orientations
		t.Fatalf("Total.EdgesStored = %d, want 10", st.Total.EdgesStored)
	}
	if len(st.PerNode) != 2 {
		t.Fatalf("PerNode has %d entries", len(st.PerNode))
	}
}

// TestFilteredBFS stores vertex "types" as metadata and checks that a
// typed traversal only walks matching vertices (semantic BFS).
func TestFilteredBFS(t *testing.T) {
	// Chain 0-1-2-3-4 plus a shortcut 0-9-4 where 9 has type B. A
	// traversal restricted to type A must take the long way.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
		{Src: 0, Dst: 9}, {Src: 9, Dst: 4},
	}
	const typeA, typeB = 1, 2
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, edges, 2)
	for _, db := range dbs {
		for _, v := range []graph.VertexID{0, 1, 2, 3, 4} {
			if err := db.SetMetadata(v, typeA); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.SetMetadata(9, typeB); err != nil {
			t.Fatal(err)
		}
	}
	// Unfiltered: shortcut through 9 gives distance 2.
	res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 0, Dest: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PathLength != 2 {
		t.Fatalf("unfiltered path = %d, want 2", res.PathLength)
	}
	// Restricted to type A: must take the chain, distance 4.
	for _, pipelined := range []bool{false, true} {
		res, err = ParallelBFS(context.Background(), f, dbs, BFSConfig{
			Source: 0, Dest: 4, Pipelined: pipelined,
			Filter: MetaFilter{Op: FilterEqual, Ref: typeA},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.PathLength != 4 {
			t.Fatalf("pipelined=%v filtered path = (%v,%d), want (true,4)", pipelined, res.Found, res.PathLength)
		}
	}
	// Restricted to type B only: 4 is unreachable (4 itself is type A).
	res, err = ParallelBFS(context.Background(), f, dbs, BFSConfig{
		Source: 0, Dest: 4,
		Filter: MetaFilter{Op: FilterEqual, Ref: typeB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("type-B-only traversal found a path: %+v", res)
	}
}

func TestMetaFilterZeroValueMeansNoFilter(t *testing.T) {
	var f MetaFilter
	op, ref := f.metaOp()
	if op != graphdb.MetaIgnore || ref != 0 {
		t.Fatalf("zero MetaFilter = (%v, %d), want (ignore, 0)", op, ref)
	}
}
