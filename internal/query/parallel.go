package query

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// expandChunk is how many fringe vertices a worker claims from the
// shared cursor at a time: large enough to amortize the atomic, small
// enough that skewed adjacency sizes still balance across workers.
const expandChunk = 16

// workers resolves the effective worker-count knob: 0 means GOMAXPROCS.
func (c *BFSConfig) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// expandWorkers decides how many goroutines may expand one level's
// fringe against db. Parallel expansion is skipped (serial fallback)
// when the backend does not guarantee concurrent readers, when it
// answers whole fringes in one batch pass (StreamDB: a per-vertex split
// would scan the log once per vertex), and for ReturnPath queries
// (which need per-vertex parent attribution through the serial loop).
func (c *BFSConfig) expandWorkers(db graphdb.Graph) int {
	n := c.workers()
	if n <= 1 || c.ReturnPath || !db.ConcurrentReaders() {
		return 1
	}
	if _, batch := db.(graphdb.BatchGraph); batch {
		return 1
	}
	return n
}

// levelAcc is the merged outcome of one level's parallel expansion.
type levelAcc struct {
	found           bool
	edgesTraversed  int64
	verticesVisited int64
	fringeSent      int64
	// localNext holds discoveries this node will expand next level. The
	// order is scheduling-dependent, but a BFS level is a set: the next
	// level's fringe contents (and hence every BFSResult field) are
	// independent of intra-level expansion order.
	localNext []graph.VertexID
	// outbound holds per-peer discoveries not yet shipped: everything
	// for the level-synchronous variant, sub-threshold leftovers for the
	// pipelined one.
	outbound [][]graph.VertexID
	// dropped counts discoveries with no live replica; replicaReads
	// counts those served by a non-primary replica (failover runs only).
	dropped      int64
	replicaReads int64
}

// expandParallel fans one level's fringe across nworkers goroutines
// pulling expandChunk-sized runs from a shared cursor. Each worker
// calls AdjacencyUsingMetadata concurrently (allowed: the caller
// checked db.ConcurrentReaders), marks discoveries in the shared
// concurrency-safe visited set, and classifies them into its private
// accumulator; the accumulators are merged after the join.
//
// sendThreshold > 0 selects pipelined behaviour: a worker ships a
// peer bucket through ep the moment it reaches the threshold
// (cluster endpoints are safe for concurrent senders), leaving only
// sub-threshold leftovers in the returned accumulator. With
// sendThreshold == 0 nothing is sent and the caller flushes all
// buckets itself.
func expandParallel(ctx context.Context, ep cluster.Endpoint, rt *vertexRouter, chFringe cluster.ChannelID,
	db graphdb.Graph, visited Visited,
	cfg *BFSConfig, fringe []graph.VertexID, levcnt int32,
	nworkers, sendThreshold int) (levelAcc, error) {

	p := ep.Nodes()
	self := ep.ID()
	rst := rt.rst
	filterOp, filterRef := cfg.Filter.metaOp()

	accs := make([]levelAcc, nworkers)
	var cursor atomic.Int64
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
	}

	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(acc *levelAcc) {
			defer wg.Done()
			acc.outbound = make([][]graph.VertexID, p)
			adj := getAdjList()
			defer putAdjList(adj)
			for firstErr.Load() == nil {
				// One ctx check per claimed chunk: at most expandChunk
				// adjacency reads of cancellation latency, and far off
				// the per-vertex hot path.
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				start := cursor.Add(expandChunk) - expandChunk
				if start >= int64(len(fringe)) {
					return
				}
				end := start + expandChunk
				if end > int64(len(fringe)) {
					end = int64(len(fringe))
				}
				for _, v := range fringe[start:end] {
					adj.Reset()
					if err := db.AdjacencyUsingMetadata(v, adj, filterRef, filterOp); err != nil {
						fail(err)
						return
					}
					acc.edgesTraversed += int64(adj.Len())
					for _, u := range adj.IDs() {
						if u == cfg.Dest {
							acc.found = true
						}
						isNew, err := visited.MarkIfNew(u, levcnt)
						if err != nil {
							fail(err)
							return
						}
						if !isNew {
							continue
						}
						if cfg.Ownership == KnownMapping {
							dest, replica, ok := rt.route(u)
							if !ok {
								acc.dropped++
								continue
							}
							acc.verticesVisited++
							if replica {
								acc.replicaReads++
							}
							if dest == self {
								acc.localNext = append(acc.localNext, u)
								continue
							}
							acc.outbound[dest] = append(acc.outbound[dest], u)
							acc.fringeSent++
							if sendThreshold > 0 && len(acc.outbound[dest]) >= sendThreshold {
								if err := ep.Send(dest, chFringe, encodeChunk(acc.outbound[dest])); err != nil {
									fail(err)
									return
								}
								acc.outbound[dest] = acc.outbound[dest][:0]
							}
						} else {
							acc.verticesVisited++
							acc.localNext = append(acc.localNext, u)
							for _, q := range rst.nodes {
								if q == self {
									continue
								}
								acc.outbound[q] = append(acc.outbound[q], u)
								acc.fringeSent++
								if sendThreshold > 0 && len(acc.outbound[q]) >= sendThreshold {
									if err := ep.Send(q, chFringe, encodeChunk(acc.outbound[q])); err != nil {
										fail(err)
										return
									}
									acc.outbound[q] = acc.outbound[q][:0]
								}
							}
						}
					}
				}
			}
		}(&accs[w])
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return levelAcc{}, *errp
	}

	merged := levelAcc{outbound: make([][]graph.VertexID, p)}
	for i := range accs {
		a := &accs[i]
		merged.found = merged.found || a.found
		merged.edgesTraversed += a.edgesTraversed
		merged.verticesVisited += a.verticesVisited
		merged.fringeSent += a.fringeSent
		merged.dropped += a.dropped
		merged.replicaReads += a.replicaReads
		merged.localNext = append(merged.localNext, a.localNext...)
		for q := 0; q < p; q++ {
			merged.outbound[q] = append(merged.outbound[q], a.outbound[q]...)
		}
	}
	return merged, nil
}
