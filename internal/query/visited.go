// Package query implements MSSG's Query Service (paper §3.3, §4.2): the
// registry of data-analysis techniques and the two parallel out-of-core
// breadth-first search algorithms — level-synchronous (Algorithm 1) and
// pipelined (Algorithm 2) — running over any GraphDB backend on any
// cluster fabric.
package query

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mssg/internal/graph"
	"mssg/internal/storage/blockio"
	"mssg/internal/storage/cache"
)

// Visited tracks BFS levels per vertex (the paper's level[] array). The
// search experiments of chapter 5 fix this structure in memory to isolate
// graph-storage behaviour, except the Syn-2B runs which also exercise an
// external-memory variant (Figs 5.8, 5.9); both are provided.
type Visited interface {
	// MarkIfNew records v at `level` if v was unvisited; it reports
	// whether v was newly marked.
	MarkIfNew(v graph.VertexID, level int32) (bool, error)
	// Level returns v's recorded level, or -1 if unvisited.
	Level(v graph.VertexID) (int32, error)
	// Count returns the number of marked vertices.
	Count() int64
	// Close releases resources.
	Close() error
}

// MemVisited is the in-memory visited structure.
type MemVisited struct {
	levels map[graph.VertexID]int32
}

// NewMemVisited returns an empty in-memory visited set.
func NewMemVisited() *MemVisited {
	return &MemVisited{levels: make(map[graph.VertexID]int32)}
}

// MarkIfNew implements Visited.
func (m *MemVisited) MarkIfNew(v graph.VertexID, level int32) (bool, error) {
	if _, seen := m.levels[v]; seen {
		return false, nil
	}
	m.levels[v] = level
	return true, nil
}

// Level implements Visited.
func (m *MemVisited) Level(v graph.VertexID) (int32, error) {
	if l, seen := m.levels[v]; seen {
		return l, nil
	}
	return -1, nil
}

// Count implements Visited.
func (m *MemVisited) Count() int64 { return int64(len(m.levels)) }

// Close implements Visited.
func (m *MemVisited) Close() error { return nil }

// Reset empties the set for reuse by a later query (keeps the map's
// allocated buckets).
func (m *MemVisited) Reset() { clear(m.levels) }

// ExtVisited is the external-memory visited structure: one byte per
// vertex (level+1; 0 = unvisited) in a block file behind a small cache.
// Level values are capped at 253, far beyond any small-world BFS depth.
type ExtVisited struct {
	store *blockio.Store
	cache *cache.BlockCache
	count int64
}

const (
	extVisitedBlock = 4096
	extVisitedSpace = 0
	maxExtLevel     = 253
)

// NewExtVisited creates an external visited structure under dir with the
// given cache budget (0 = 1 MB default).
func NewExtVisited(dir string, cacheBytes int64) (*ExtVisited, error) {
	if cacheBytes <= 0 {
		cacheBytes = 1 << 20
	}
	store, err := blockio.Open(dir, "visited", extVisitedBlock, 256<<20)
	if err != nil {
		return nil, err
	}
	c := cache.New(cacheBytes)
	if err := c.AttachSpace(extVisitedSpace, store); err != nil {
		store.Close()
		return nil, err
	}
	return &ExtVisited{store: store, cache: c}, nil
}

func (e *ExtVisited) locate(v graph.VertexID) (block int64, off int) {
	return int64(v) / extVisitedBlock, int(int64(v) % extVisitedBlock)
}

// MarkIfNew implements Visited.
func (e *ExtVisited) MarkIfNew(v graph.VertexID, level int32) (bool, error) {
	if level < 0 || level > maxExtLevel {
		return false, fmt.Errorf("query: level %d outside external-visited range", level)
	}
	block, off := e.locate(v)
	h, err := e.cache.Get(extVisitedSpace, block)
	if err != nil {
		return false, err
	}
	defer h.Release()
	if h.Data()[off] != 0 {
		return false, nil
	}
	h.Data()[off] = byte(level + 1)
	h.MarkDirty()
	e.count++
	return true, nil
}

// Level implements Visited.
func (e *ExtVisited) Level(v graph.VertexID) (int32, error) {
	block, off := e.locate(v)
	h, err := e.cache.Get(extVisitedSpace, block)
	if err != nil {
		return -1, err
	}
	defer h.Release()
	b := h.Data()[off]
	if b == 0 {
		return -1, nil
	}
	return int32(b) - 1, nil
}

// Count implements Visited.
func (e *ExtVisited) Count() int64 { return e.count }

// Close implements Visited.
func (e *ExtVisited) Close() error {
	if err := e.cache.Flush(); err != nil {
		return err
	}
	return e.store.Close()
}

// ConcurrentVisited marks Visited implementations whose MarkIfNew and
// Level are safe for concurrent use. The parallel fringe expansion
// (BFSConfig.Workers > 1) requires one; structures that don't implement
// the marker are transparently wrapped in a single mutex.
type ConcurrentVisited interface {
	Visited
	// ConcurrentMarkers returns true when MarkIfNew/Level/Count may be
	// called from multiple goroutines simultaneously.
	ConcurrentMarkers() bool
}

// visitedShards is the stripe count of ShardedVisited. 64 stripes keep
// contention negligible for any realistic worker count while staying
// small enough that per-query allocation stays cheap.
const visitedShards = 64

// ShardedVisited is the striped-lock in-memory visited structure used
// by parallel fringe expansion: vertex v lives in stripe v % 64, so
// workers marking different regions of the ID space rarely contend.
type ShardedVisited struct {
	shards [visitedShards]struct {
		mu     sync.Mutex
		levels map[graph.VertexID]int32
	}
	count atomic.Int64
}

// NewShardedVisited returns an empty concurrency-safe visited set.
func NewShardedVisited() *ShardedVisited {
	s := &ShardedVisited{}
	for i := range s.shards {
		s.shards[i].levels = make(map[graph.VertexID]int32)
	}
	return s
}

// MarkIfNew implements Visited; safe for concurrent use. A failed
// TryLock counts one contended stripe acquisition — the cheap signal
// behind query.visited.contention (a TryLock is a single CAS; the
// blocking Lock that follows is what the workers would have paid anyway).
func (s *ShardedVisited) MarkIfNew(v graph.VertexID, level int32) (bool, error) {
	sh := &s.shards[uint64(v)%visitedShards]
	if !sh.mu.TryLock() {
		qm().contention.Inc()
		sh.mu.Lock()
	}
	if _, seen := sh.levels[v]; seen {
		sh.mu.Unlock()
		return false, nil
	}
	sh.levels[v] = level
	sh.mu.Unlock()
	s.count.Add(1)
	return true, nil
}

// Level implements Visited; safe for concurrent use.
func (s *ShardedVisited) Level(v graph.VertexID) (int32, error) {
	sh := &s.shards[uint64(v)%visitedShards]
	sh.mu.Lock()
	l, seen := sh.levels[v]
	sh.mu.Unlock()
	if !seen {
		return -1, nil
	}
	return l, nil
}

// Count implements Visited.
func (s *ShardedVisited) Count() int64 { return s.count.Load() }

// Close implements Visited.
func (s *ShardedVisited) Close() error { return nil }

// Reset empties the set for reuse by a later query. Not safe to call
// concurrently with markers — the owning query must have finished.
func (s *ShardedVisited) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		clear(sh.levels)
		sh.mu.Unlock()
	}
	s.count.Store(0)
}

// ConcurrentMarkers implements ConcurrentVisited.
func (s *ShardedVisited) ConcurrentMarkers() bool { return true }

// lockedVisited adapts a non-concurrent Visited (MemVisited, ExtVisited,
// or a caller-provided structure) for parallel expansion with one mutex.
// Coarse, but correct: ExtVisited's cache read-modify-write must not
// interleave.
type lockedVisited struct {
	mu    sync.Mutex
	inner Visited
}

func (l *lockedVisited) MarkIfNew(v graph.VertexID, level int32) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.MarkIfNew(v, level)
}

func (l *lockedVisited) Level(v graph.VertexID) (int32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Level(v)
}

func (l *lockedVisited) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Count()
}

func (l *lockedVisited) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Close()
}

func (l *lockedVisited) ConcurrentMarkers() bool { return true }

// ensureConcurrentVisited returns v itself when it already supports
// concurrent marking, or a mutex-wrapped view of it otherwise.
func ensureConcurrentVisited(v Visited) Visited {
	if cv, ok := v.(ConcurrentVisited); ok && cv.ConcurrentMarkers() {
		return v
	}
	return &lockedVisited{inner: v}
}
