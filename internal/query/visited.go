// Package query implements MSSG's Query Service (paper §3.3, §4.2): the
// registry of data-analysis techniques and the two parallel out-of-core
// breadth-first search algorithms — level-synchronous (Algorithm 1) and
// pipelined (Algorithm 2) — running over any GraphDB backend on any
// cluster fabric.
package query

import (
	"fmt"

	"mssg/internal/graph"
	"mssg/internal/storage/blockio"
	"mssg/internal/storage/cache"
)

// Visited tracks BFS levels per vertex (the paper's level[] array). The
// search experiments of chapter 5 fix this structure in memory to isolate
// graph-storage behaviour, except the Syn-2B runs which also exercise an
// external-memory variant (Figs 5.8, 5.9); both are provided.
type Visited interface {
	// MarkIfNew records v at `level` if v was unvisited; it reports
	// whether v was newly marked.
	MarkIfNew(v graph.VertexID, level int32) (bool, error)
	// Level returns v's recorded level, or -1 if unvisited.
	Level(v graph.VertexID) (int32, error)
	// Count returns the number of marked vertices.
	Count() int64
	// Close releases resources.
	Close() error
}

// MemVisited is the in-memory visited structure.
type MemVisited struct {
	levels map[graph.VertexID]int32
}

// NewMemVisited returns an empty in-memory visited set.
func NewMemVisited() *MemVisited {
	return &MemVisited{levels: make(map[graph.VertexID]int32)}
}

// MarkIfNew implements Visited.
func (m *MemVisited) MarkIfNew(v graph.VertexID, level int32) (bool, error) {
	if _, seen := m.levels[v]; seen {
		return false, nil
	}
	m.levels[v] = level
	return true, nil
}

// Level implements Visited.
func (m *MemVisited) Level(v graph.VertexID) (int32, error) {
	if l, seen := m.levels[v]; seen {
		return l, nil
	}
	return -1, nil
}

// Count implements Visited.
func (m *MemVisited) Count() int64 { return int64(len(m.levels)) }

// Close implements Visited.
func (m *MemVisited) Close() error { return nil }

// ExtVisited is the external-memory visited structure: one byte per
// vertex (level+1; 0 = unvisited) in a block file behind a small cache.
// Level values are capped at 253, far beyond any small-world BFS depth.
type ExtVisited struct {
	store *blockio.Store
	cache *cache.BlockCache
	count int64
}

const (
	extVisitedBlock = 4096
	extVisitedSpace = 0
	maxExtLevel     = 253
)

// NewExtVisited creates an external visited structure under dir with the
// given cache budget (0 = 1 MB default).
func NewExtVisited(dir string, cacheBytes int64) (*ExtVisited, error) {
	if cacheBytes <= 0 {
		cacheBytes = 1 << 20
	}
	store, err := blockio.Open(dir, "visited", extVisitedBlock, 256<<20)
	if err != nil {
		return nil, err
	}
	c := cache.New(cacheBytes)
	if err := c.AttachSpace(extVisitedSpace, store); err != nil {
		store.Close()
		return nil, err
	}
	return &ExtVisited{store: store, cache: c}, nil
}

func (e *ExtVisited) locate(v graph.VertexID) (block int64, off int) {
	return int64(v) / extVisitedBlock, int(int64(v) % extVisitedBlock)
}

// MarkIfNew implements Visited.
func (e *ExtVisited) MarkIfNew(v graph.VertexID, level int32) (bool, error) {
	if level < 0 || level > maxExtLevel {
		return false, fmt.Errorf("query: level %d outside external-visited range", level)
	}
	block, off := e.locate(v)
	h, err := e.cache.Get(extVisitedSpace, block)
	if err != nil {
		return false, err
	}
	defer h.Release()
	if h.Data()[off] != 0 {
		return false, nil
	}
	h.Data()[off] = byte(level + 1)
	h.MarkDirty()
	e.count++
	return true, nil
}

// Level implements Visited.
func (e *ExtVisited) Level(v graph.VertexID) (int32, error) {
	block, off := e.locate(v)
	h, err := e.cache.Get(extVisitedSpace, block)
	if err != nil {
		return -1, err
	}
	defer h.Release()
	b := h.Data()[off]
	if b == 0 {
		return -1, nil
	}
	return int32(b) - 1, nil
}

// Count implements Visited.
func (e *ExtVisited) Count() int64 { return e.count }

// Close implements Visited.
func (e *ExtVisited) Close() error {
	if err := e.cache.Flush(); err != nil {
		return err
	}
	return e.store.Close()
}
