package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"mssg/internal/cluster"
)

// tenancy_test.go is the multi-tenant serving conformance suite
// (`make tenants`): deficit-round-robin fairness under flood, per-tenant
// queue isolation, per-tenant in-flight caps, the
// deadline-starts-at-execution property under a saturated queue, and the
// engine-level result cache. All tests use synthetic query functions so
// timing is controlled by the test, not by graph size; they are meant to
// run under -race.

// sleepFn is a query that takes a fixed wall time, honouring ctx.
func sleepFn(d time.Duration) func(ctx context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		select {
		case <-time.After(d):
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func percentileDur(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

// closedLoop runs n queries one at a time under tenant and returns each
// query's end-to-end latency.
func closedLoop(t *testing.T, e *Engine, tenant string, n int, d time.Duration) []time.Duration {
	t.Helper()
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		q, err := e.SubmitFuncAs(context.Background(), tenant, "light", sleepFn(d))
		if err != nil {
			t.Fatalf("light submit %d: %v", i, err)
		}
		if _, err := q.Wait(); err != nil {
			t.Fatalf("light query %d: %v", i, err)
		}
		lat = append(lat, time.Since(start))
	}
	return lat
}

// TestTenantFairnessUnderFlood is the headline fairness conformance
// test: a heavy tenant floods the engine open-loop while a light tenant
// runs a closed-loop workload. With per-tenant queues and DRR dispatch
// the light tenant's p95 must stay within a small factor of its solo
// (uncontended) p95; with a single shared FIFO it would sit behind the
// whole heavy backlog and blow up by orders of magnitude.
func TestTenantFairnessUnderFlood(t *testing.T) {
	const qd = 2 * time.Millisecond
	e, _, _, _ := engineGraph(t, 2, EngineConfig{
		MaxInFlight: 2,
		QueueDepth:  512,
		Tenants: map[string]TenantConfig{
			"heavy": {Weight: 1},
			"light": {Weight: 1},
		},
	})

	// Solo baseline: the light tenant alone on the engine.
	solo := percentileDur(closedLoop(t, e, "light", 20, qd), 0.95)

	// Flood: the heavy tenant dumps a deep backlog, then the light
	// tenant runs the same closed-loop workload against it.
	var heavy []*Query
	for i := 0; i < 300; i++ {
		q, err := e.SubmitFuncAs(context.Background(), "heavy", "heavy", sleepFn(qd))
		if err != nil {
			t.Fatalf("heavy submit %d: %v", i, err)
		}
		heavy = append(heavy, q)
	}
	contended := percentileDur(closedLoop(t, e, "light", 20, qd), 0.95)
	for _, q := range heavy {
		q.Wait()
	}

	// The 3x factor is the acceptance bound from the fairness bench; the
	// absolute slack absorbs scheduler jitter on loaded CI machines.
	// The heavy backlog alone is worth ~300ms of FIFO wait, so a shared
	// queue fails this by a wide margin.
	limit := 3*solo + 50*time.Millisecond
	if contended > limit {
		t.Fatalf("light tenant p95 %v under flood, limit %v (solo %v)", contended, limit, solo)
	}

	st := e.Stats()
	if st.Tenants["heavy"].Completed != 300 {
		t.Fatalf("heavy completed = %d, want 300", st.Tenants["heavy"].Completed)
	}
	if st.Tenants["light"].Completed != 40 {
		t.Fatalf("light completed = %d, want 40", st.Tenants["light"].Completed)
	}
}

// TestTenantWeightedShare pins the DRR arithmetic: with a 3:1 weight
// ratio and both tenants backlogged, dispatch order interleaves three
// weight-3 queries per weight-1 query.
func TestTenantWeightedShare(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{
		MaxInFlight: 1,
		QueueDepth:  64,
		Tenants: map[string]TenantConfig{
			"gold":   {Weight: 3},
			"bronze": {Weight: 1},
		},
	})

	// Hold the only slot so both backlogs build before dispatch starts.
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := e.SubmitFunc(context.Background(), "blocker", func(ctx context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-started

	var mu sync.Mutex
	var order []string
	mark := func(tenant string) func(ctx context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			return nil, nil
		}
	}
	var qs []*Query
	for i := 0; i < 24; i++ {
		g, err := e.SubmitFuncAs(context.Background(), "gold", "g", mark("gold"))
		if err != nil {
			t.Fatalf("gold %d: %v", i, err)
		}
		b, err := e.SubmitFuncAs(context.Background(), "bronze", "b", mark("bronze"))
		if err != nil {
			t.Fatalf("bronze %d: %v", i, err)
		}
		qs = append(qs, g, b)
	}
	close(release)
	blocker.Wait()
	for _, q := range qs {
		q.Wait()
	}

	// While both tenants are backlogged (first 16 dispatches: 4 full
	// rotor turns), gold must get 3 of every 4 slots. MaxInFlight=1
	// serializes execution, so `order` is the dispatch order.
	gold := 0
	for _, tn := range order[:16] {
		if tn == "gold" {
			gold++
		}
	}
	if gold < 11 || gold > 13 {
		t.Fatalf("gold got %d of first 16 dispatch slots, want ~12 (3:1 weights); order %v", gold, order[:16])
	}
}

// TestTenantQueueIsolation pins per-tenant rejection: one tenant filling
// its own queue is rejected without consuming any other tenant's
// capacity.
func TestTenantQueueIsolation(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{
		MaxInFlight: 1,
		QueueDepth:  8,
		Tenants: map[string]TenantConfig{
			"greedy": {QueueDepth: 1},
			"modest": {QueueDepth: 4},
		},
	})

	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := e.SubmitFuncAs(context.Background(), "greedy", "blocker", func(ctx context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-started // greedy occupies the only execution slot

	q1, err := e.SubmitFuncAs(context.Background(), "greedy", "q1", sleepFn(0))
	if err != nil {
		t.Fatalf("greedy q1 should queue: %v", err)
	}
	// greedy's queue (depth 1) is now full: next greedy submit bounces.
	if _, err := e.SubmitFuncAs(context.Background(), "greedy", "q2", sleepFn(0)); !errors.Is(err, ErrRejected) {
		t.Fatalf("greedy q2: got %v, want ErrRejected", err)
	}
	// ...but modest still has its own queue.
	var modest []*Query
	for i := 0; i < 4; i++ {
		q, err := e.SubmitFuncAs(context.Background(), "modest", fmt.Sprint("m", i), sleepFn(0))
		if err != nil {
			t.Fatalf("modest %d rejected by greedy's backlog: %v", i, err)
		}
		modest = append(modest, q)
	}
	if _, err := e.SubmitFuncAs(context.Background(), "modest", "m4", sleepFn(0)); !errors.Is(err, ErrRejected) {
		t.Fatalf("modest over its own depth: got %v, want ErrRejected", err)
	}

	close(release)
	blocker.Wait()
	q1.Wait()
	for _, q := range modest {
		q.Wait()
	}

	st := e.Stats()
	if st.Tenants["greedy"].Rejected != 1 || st.Tenants["modest"].Rejected != 1 {
		t.Fatalf("per-tenant rejected = %+v", st.Tenants)
	}
}

// TestTenantInFlightCap pins the per-tenant concurrency cap: a capped
// tenant's second query waits even with free engine slots, while other
// tenants use those slots.
func TestTenantInFlightCap(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{
		MaxInFlight: 4,
		QueueDepth:  8,
		Tenants: map[string]TenantConfig{
			"capped": {MaxInFlight: 1},
		},
	})

	release := make(chan struct{})
	aStarted := make(chan struct{})
	a1, err := e.SubmitFuncAs(context.Background(), "capped", "a1", func(ctx context.Context) (any, error) {
		close(aStarted)
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatalf("a1: %v", err)
	}
	<-aStarted

	a2Started := make(chan struct{})
	a2, err := e.SubmitFuncAs(context.Background(), "capped", "a2", func(ctx context.Context) (any, error) {
		close(a2Started)
		return nil, nil
	})
	if err != nil {
		t.Fatalf("a2: %v", err)
	}

	// Another tenant must run while capped's a2 waits behind its cap.
	b, err := e.SubmitFuncAs(context.Background(), "other", "b", sleepFn(0))
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatalf("b failed: %v", err)
	}
	select {
	case <-a2Started:
		t.Fatal("a2 ran while a1 held capped's only in-flight slot")
	default:
	}

	close(release)
	if _, err := a1.Wait(); err != nil {
		t.Fatalf("a1: %v", err)
	}
	if _, err := a2.Wait(); err != nil {
		t.Fatalf("a2 never ran after a1 released the cap: %v", err)
	}
}

// TestDeadlineStartsAtExecution is the saturated-queue regression test:
// a query that waits in the queue LONGER than the default deadline must
// still complete, because the deadline budget starts at execution, not
// at admission. An engine that armed the timer at enqueue fails this
// with context.DeadlineExceeded.
func TestDeadlineStartsAtExecution(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{
		MaxInFlight:     1,
		QueueDepth:      4,
		DefaultDeadline: 100 * time.Millisecond,
	})

	started := make(chan struct{})
	blocker, err := e.SubmitFunc(context.Background(), "blocker", func(ctx context.Context) (any, error) {
		close(started)
		// Hold the only slot for 3x the default deadline, deliberately
		// ignoring ctx: the blocker itself may be cancelled, the point
		// is that the slot stays occupied.
		time.Sleep(300 * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-started

	q, err := e.SubmitFunc(context.Background(), "victim", sleepFn(time.Millisecond))
	if err != nil {
		t.Fatalf("victim submit: %v", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatalf("queued query failed after long queue wait: %v (deadline must start at execution)", err)
	}
	if q.QueueWait < 250*time.Millisecond {
		t.Fatalf("QueueWait = %v, want >= 250ms (victim should have waited out the blocker)", q.QueueWait)
	}
	if exec := q.Finished.Sub(q.Started); exec > 100*time.Millisecond {
		t.Fatalf("execution took %v, deadline budget was 100ms", exec)
	}
	blocker.Wait()
}

// TestEngineResultCache pins the engine-level cache path: a repeated
// identical BFS is answered from the cache (same result value, no
// second execution) and a generation bump structurally invalidates it.
func TestEngineResultCache(t *testing.T) {
	var gen uint64 = 7
	var mu sync.Mutex
	genFn := func() uint64 { mu.Lock(); defer mu.Unlock(); return gen }

	e, _, _, _ := engineGraph(t, 2, EngineConfig{
		MaxInFlight: 2,
		QueueDepth:  16,
		CacheBytes:  1 << 20,
		Generation:  genFn,
		Epoch:       func() uint64 { return 3 },
	})

	cfg := BFSConfig{Source: 3, Dest: 17}
	q1, err := e.BFSAs(context.Background(), "alice", cfg)
	if err != nil {
		t.Fatalf("first BFS: %v", err)
	}
	r1, err := q1.Wait()
	if err != nil {
		t.Fatalf("first BFS: %v", err)
	}
	if q1.CacheHit {
		t.Fatal("first query hit an empty cache")
	}
	if r1.(BFSResult).Generation != 7 {
		t.Fatalf("result generation = %d, want 7", r1.(BFSResult).Generation)
	}

	// Identical query, any tenant: served from cache.
	q2, err := e.BFSAs(context.Background(), "bob", cfg)
	if err != nil {
		t.Fatalf("second BFS: %v", err)
	}
	r2, err := q2.Wait()
	if err != nil {
		t.Fatalf("second BFS: %v", err)
	}
	if !q2.CacheHit {
		t.Fatal("repeated identical query missed the cache")
	}
	if r1.(BFSResult).PathLength != r2.(BFSResult).PathLength ||
		r1.(BFSResult).Found != r2.(BFSResult).Found {
		t.Fatalf("cached result differs: %+v vs %+v", r1, r2)
	}
	if e.Stats().CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", e.Stats().CacheHits)
	}

	// A generation bump (ingest commit) makes the key stop matching.
	mu.Lock()
	gen = 8
	mu.Unlock()
	if n := e.InvalidateCache(); n != 1 {
		t.Fatalf("InvalidateCache purged %d entries, want 1", n)
	}
	q3, err := e.BFSAs(context.Background(), "alice", cfg)
	if err != nil {
		t.Fatalf("third BFS: %v", err)
	}
	if _, err := q3.Wait(); err != nil {
		t.Fatalf("third BFS: %v", err)
	}
	if q3.CacheHit {
		t.Fatal("cache hit across a generation bump")
	}
	if q3.Generation != 8 {
		t.Fatalf("post-bump pinned generation = %d, want 8", q3.Generation)
	}
}

// TestEngineCacheSkipsInjectedState pins non-cacheability: a BFS with a
// caller-injected visited constructor or node roster must never be
// served from (or stored in) the cache.
func TestEngineCacheSkipsInjectedState(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{
		CacheBytes: 1 << 20,
	})
	cfg := BFSConfig{Source: 3, Dest: 17, ActiveNodes: nil}
	cfg.NewVisited = func(node cluster.NodeID) (Visited, error) { return NewMemVisited(), nil }
	for i := 0; i < 2; i++ {
		q, err := e.BFS(context.Background(), cfg)
		if err != nil {
			t.Fatalf("BFS %d: %v", i, err)
		}
		if _, err := q.Wait(); err != nil {
			t.Fatalf("BFS %d: %v", i, err)
		}
		if q.CacheHit {
			t.Fatal("query with injected visited state served from cache")
		}
	}
	if e.Cache().Len() != 0 {
		t.Fatalf("uncacheable query stored %d entries", e.Cache().Len())
	}
}

// TestTenantNameValidation rejects names that cannot serve as metric
// segments or wire tokens.
func TestTenantNameValidation(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{})
	for _, bad := range []string{"with space", "semi;colon", "a/b", "x\n", string(make([]byte, 65))} {
		if _, err := e.SubmitFuncAs(context.Background(), bad, "q", sleepFn(0)); err == nil {
			t.Fatalf("tenant %q accepted", bad)
		}
	}
	if _, err := NewEngine(e.f, e.dbs, EngineConfig{Tenants: map[string]TenantConfig{"bad name": {}}}); err == nil {
		t.Fatal("NewEngine accepted an invalid configured tenant name")
	}
}
