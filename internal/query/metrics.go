package query

import (
	"fmt"
	"sync"

	"mssg/internal/obs"
)

// bfsLevelHistCap bounds the per-level histogram family
// (query.bfs.level_NN.expand_ns). Small-world graphs finish in a handful
// of levels; anything deeper folds into the last histogram so metric
// cardinality stays fixed.
const bfsLevelHistCap = 16

// queryMetrics is the pre-resolved metric set of the query service,
// built once per process (see internal/obs package doc: hot paths never
// touch the registry).
type queryMetrics struct {
	runs       *obs.Counter   // query.bfs.runs
	partial    *obs.Counter   // query.bfs.partial_coverage
	fringe     *obs.Histogram // query.bfs.fringe_size (per node per level)
	expand     *obs.Histogram // query.bfs.level_expand_ns
	exchange   *obs.Histogram // query.bfs.level_exchange_ns
	contention *obs.Counter   // query.visited.contention (striped-lock waits)
	levels     [bfsLevelHistCap]*obs.Histogram

	// Failover accounting (replicated deployments).
	foRetries        *obs.Counter // query.failover.retries
	foReplicaReads   *obs.Counter // query.failover.replica_reads
	foDropped        *obs.Counter // query.failover.dropped
	foPartialAllowed *obs.Counter // query.failover.partial_allowed
}

var (
	qmOnce sync.Once
	qmVal  *queryMetrics
)

func qm() *queryMetrics {
	qmOnce.Do(func() {
		r := obs.Default()
		m := &queryMetrics{
			runs:       r.Counter("query.bfs.runs"),
			partial:    r.Counter("query.bfs.partial_coverage"),
			fringe:     r.Histogram("query.bfs.fringe_size"),
			expand:     r.Histogram("query.bfs.level_expand_ns"),
			exchange:   r.Histogram("query.bfs.level_exchange_ns"),
			contention: r.Counter("query.visited.contention"),

			foRetries:        r.Counter("query.failover.retries"),
			foReplicaReads:   r.Counter("query.failover.replica_reads"),
			foDropped:        r.Counter("query.failover.dropped"),
			foPartialAllowed: r.Counter("query.failover.partial_allowed"),
		}
		for i := range m.levels {
			m.levels[i] = r.Histogram(fmt.Sprintf("query.bfs.level_%02d.expand_ns", i+1))
		}
		qmVal = m
	})
	return qmVal
}

// engineMetrics is the pre-resolved metric set of the resident query
// engine: admission counters, live occupancy gauges, and end-to-end vs
// execution-only latency.
type engineMetrics struct {
	admitted  *obs.Counter   // query.engine.admitted
	rejected  *obs.Counter   // query.engine.rejected
	cancelled *obs.Counter   // query.engine.cancelled
	completed *obs.Counter   // query.engine.completed
	failed    *obs.Counter   // query.engine.failed
	inFlight  *obs.Gauge     // query.engine.in_flight
	queued    *obs.Gauge     // query.engine.queued
	queryNs   *obs.Histogram // query.engine.query_ns (submit → finish)
	execNs    *obs.Histogram // query.engine.exec_ns (start → finish)
}

var (
	emOnce sync.Once
	emVal  *engineMetrics
)

func em() *engineMetrics {
	emOnce.Do(func() {
		r := obs.Default()
		emVal = &engineMetrics{
			admitted:  r.Counter("query.engine.admitted"),
			rejected:  r.Counter("query.engine.rejected"),
			cancelled: r.Counter("query.engine.cancelled"),
			completed: r.Counter("query.engine.completed"),
			failed:    r.Counter("query.engine.failed"),
			inFlight:  r.Gauge("query.engine.in_flight"),
			queued:    r.Gauge("query.engine.queued"),
			queryNs:   r.Histogram("query.engine.query_ns"),
			execNs:    r.Histogram("query.engine.exec_ns"),
		}
	})
	return emVal
}

// levelHist returns the expansion-latency histogram for BFS level lev
// (1-based), folding deep levels into the last slot.
func (m *queryMetrics) levelHist(lev int32) *obs.Histogram {
	i := int(lev) - 1
	if i < 0 {
		i = 0
	}
	if i >= bfsLevelHistCap {
		i = bfsLevelHistCap - 1
	}
	return m.levels[i]
}
