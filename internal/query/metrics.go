package query

import (
	"fmt"
	"sync"

	"mssg/internal/obs"
)

// bfsLevelHistCap bounds the per-level histogram family
// (query.bfs.level_NN.expand_ns). Small-world graphs finish in a handful
// of levels; anything deeper folds into the last histogram so metric
// cardinality stays fixed.
const bfsLevelHistCap = 16

// queryMetrics is the pre-resolved metric set of the query service,
// built once per process (see internal/obs package doc: hot paths never
// touch the registry).
type queryMetrics struct {
	runs       *obs.Counter   // query.bfs.runs
	partial    *obs.Counter   // query.bfs.partial_coverage
	fringe     *obs.Histogram // query.bfs.fringe_size (per node per level)
	expand     *obs.Histogram // query.bfs.level_expand_ns
	exchange   *obs.Histogram // query.bfs.level_exchange_ns
	contention *obs.Counter   // query.visited.contention (striped-lock waits)
	levels     [bfsLevelHistCap]*obs.Histogram

	// Failover accounting (replicated deployments).
	foRetries        *obs.Counter // query.failover.retries
	foReplicaReads   *obs.Counter // query.failover.replica_reads
	foDropped        *obs.Counter // query.failover.dropped
	foPartialAllowed *obs.Counter // query.failover.partial_allowed
}

var (
	qmOnce sync.Once
	qmVal  *queryMetrics
)

func qm() *queryMetrics {
	qmOnce.Do(func() {
		r := obs.Default()
		m := &queryMetrics{
			runs:       r.Counter("query.bfs.runs"),
			partial:    r.Counter("query.bfs.partial_coverage"),
			fringe:     r.Histogram("query.bfs.fringe_size"),
			expand:     r.Histogram("query.bfs.level_expand_ns"),
			exchange:   r.Histogram("query.bfs.level_exchange_ns"),
			contention: r.Counter("query.visited.contention"),

			foRetries:        r.Counter("query.failover.retries"),
			foReplicaReads:   r.Counter("query.failover.replica_reads"),
			foDropped:        r.Counter("query.failover.dropped"),
			foPartialAllowed: r.Counter("query.failover.partial_allowed"),
		}
		for i := range m.levels {
			m.levels[i] = r.Histogram(fmt.Sprintf("query.bfs.level_%02d.expand_ns", i+1))
		}
		qmVal = m
	})
	return qmVal
}

// engineMetrics is the pre-resolved metric set of the resident query
// engine: admission counters, live occupancy gauges, and end-to-end vs
// execution-only latency.
type engineMetrics struct {
	admitted  *obs.Counter   // query.engine.admitted
	rejected  *obs.Counter   // query.engine.rejected
	cancelled *obs.Counter   // query.engine.cancelled
	completed *obs.Counter   // query.engine.completed
	failed    *obs.Counter   // query.engine.failed
	cacheHits *obs.Counter   // query.engine.cache_hits
	inFlight  *obs.Gauge     // query.engine.in_flight
	queued    *obs.Gauge     // query.engine.queued
	queryNs   *obs.Histogram // query.engine.query_ns (submit → finish)
	execNs    *obs.Histogram // query.engine.exec_ns (start → finish)
	// queueWaitNs is the admission-to-execution delay. It is recorded
	// separately from execNs because the deadline budget explicitly
	// excludes it: under saturation queueWaitNs grows while execNs stays
	// flat, which is the signature that distinguishes "scheduler is
	// backed up" from "queries got slow".
	queueWaitNs *obs.Histogram // query.engine.queue_wait_ns
}

var (
	emOnce sync.Once
	emVal  *engineMetrics
)

func em() *engineMetrics {
	emOnce.Do(func() {
		r := obs.Default()
		emVal = &engineMetrics{
			admitted:  r.Counter("query.engine.admitted"),
			rejected:  r.Counter("query.engine.rejected"),
			cancelled: r.Counter("query.engine.cancelled"),
			completed: r.Counter("query.engine.completed"),
			failed:    r.Counter("query.engine.failed"),
			cacheHits: r.Counter("query.engine.cache_hits"),
			inFlight:  r.Gauge("query.engine.in_flight"),
			queued:    r.Gauge("query.engine.queued"),
			queryNs:   r.Histogram("query.engine.query_ns"),
			execNs:    r.Histogram("query.engine.exec_ns"),

			queueWaitNs: r.Histogram("query.engine.queue_wait_ns"),
		}
	})
	return emVal
}

// tenantMetrics is one tenant's labelled metric family,
// query.tenant.<name>.*: the per-tenant view of the engine-wide
// counters plus the latency histograms the fairness bench and /metrics
// report per tenant (p50/p95/p99 come from the Histogram snapshot).
type tenantMetrics struct {
	admitted  *obs.Counter   // query.tenant.<t>.admitted
	rejected  *obs.Counter   // query.tenant.<t>.rejected
	cancelled *obs.Counter   // query.tenant.<t>.cancelled
	completed *obs.Counter   // query.tenant.<t>.completed
	failed    *obs.Counter   // query.tenant.<t>.failed
	cacheHits *obs.Counter   // query.tenant.<t>.cache_hits
	inFlight  *obs.Gauge     // query.tenant.<t>.in_flight
	queued    *obs.Gauge     // query.tenant.<t>.queued
	queryNs   *obs.Histogram // query.tenant.<t>.query_ns
	execNs    *obs.Histogram // query.tenant.<t>.exec_ns

	queueWaitNs *obs.Histogram // query.tenant.<t>.queue_wait_ns
}

var (
	tmMu  sync.Mutex
	tmVal = make(map[string]*tenantMetrics)
)

// tm resolves tenant's metric family, caching per name. Tenant names are
// validated at admission (validTenant), so the family's cardinality is
// bounded by the set of configured tenants, not by request content.
func tm(tenant string) *tenantMetrics {
	tmMu.Lock()
	defer tmMu.Unlock()
	if m, ok := tmVal[tenant]; ok {
		return m
	}
	r := obs.Default()
	p := "query.tenant." + tenant + "."
	m := &tenantMetrics{
		admitted:  r.Counter(p + "admitted"),
		rejected:  r.Counter(p + "rejected"),
		cancelled: r.Counter(p + "cancelled"),
		completed: r.Counter(p + "completed"),
		failed:    r.Counter(p + "failed"),
		cacheHits: r.Counter(p + "cache_hits"),
		inFlight:  r.Gauge(p + "in_flight"),
		queued:    r.Gauge(p + "queued"),
		queryNs:   r.Histogram(p + "query_ns"),
		execNs:    r.Histogram(p + "exec_ns"),

		queueWaitNs: r.Histogram(p + "queue_wait_ns"),
	}
	tmVal[tenant] = m
	return m
}

// levelHist returns the expansion-latency histogram for BFS level lev
// (1-based), folding deep levels into the last slot.
func (m *queryMetrics) levelHist(lev int32) *obs.Histogram {
	i := int(lev) - 1
	if i < 0 {
		i = 0
	}
	if i >= bfsLevelHistCap {
		i = bfsLevelHistCap - 1
	}
	return m.levels[i]
}
