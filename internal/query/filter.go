package query

import "mssg/internal/graphdb"

// MetaFilter is a metadata predicate applied during traversal, wrapping
// the Listing 3.1 operations so that a zero value means "no filtering"
// (graphdb.MetaIgnore itself is -2 and unusable as a zero default).
type MetaFilter struct {
	Op  MetaFilterOp
	Ref int32
}

// MetaFilterOp enumerates traversal filters; the zero value disables
// filtering.
type MetaFilterOp int32

const (
	// FilterNone disables metadata filtering (the default).
	FilterNone MetaFilterOp = iota
	// FilterEqual keeps neighbours whose metadata == Ref.
	FilterEqual
	// FilterNotEqual keeps neighbours whose metadata != Ref.
	FilterNotEqual
	// FilterGreater keeps neighbours whose metadata > Ref.
	FilterGreater
	// FilterLess keeps neighbours whose metadata < Ref.
	FilterLess
)

// metaOp translates to the GraphDB operation encoding.
func (f MetaFilter) metaOp() (graphdb.MetaOp, int32) {
	switch f.Op {
	case FilterEqual:
		return graphdb.MetaEqual, f.Ref
	case FilterNotEqual:
		return graphdb.MetaNotEqual, f.Ref
	case FilterGreater:
		return graphdb.MetaGreater, f.Ref
	case FilterLess:
		return graphdb.MetaLess, f.Ref
	}
	return graphdb.MetaIgnore, 0
}
