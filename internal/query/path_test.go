package query

import (
	"context"
	"reflect"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/gen"
	"mssg/internal/graph"
)

func TestReturnPathChain(t *testing.T) {
	// On a chain the shortest path is unique: 0,1,2,...,d.
	edges := chainEdges(12)
	f := cluster.NewInProc(4, 0)
	defer f.Close()
	dbs := partition(t, edges, 4)
	for d := 1; d <= 12; d++ {
		res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
			Source: 0, Dest: graph.VertexID(d), ReturnPath: true,
		})
		if err != nil {
			t.Fatalf("BFS 0->%d: %v", d, err)
		}
		want := make([]graph.VertexID, d+1)
		for i := range want {
			want[i] = graph.VertexID(i)
		}
		if !reflect.DeepEqual(res.Path, want) {
			t.Fatalf("path 0->%d = %v, want %v", d, res.Path, want)
		}
	}
}

// validatePath checks a returned path is a real path in the graph with
// the claimed length.
func validatePath(t *testing.T, edges []graph.Edge, path []graph.VertexID,
	src, dst graph.VertexID, wantLen int32) {
	t.Helper()
	if int32(len(path))-1 != wantLen {
		t.Fatalf("path %v has %d hops, PathLength says %d", path, len(path)-1, wantLen)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("path %v does not run %d..%d", path, src, dst)
	}
	adj := make(map[graph.Edge]bool)
	for _, e := range edges {
		adj[e] = true
		adj[e.Reverse()] = true
	}
	for i := 0; i+1 < len(path); i++ {
		if !adj[graph.Edge{Src: path[i], Dst: path[i+1]}] {
			t.Fatalf("path %v uses non-edge %d->%d", path, path[i], path[i+1])
		}
	}
}

func TestReturnPathRandomGraph(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "p", Vertices: 600, M: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	dist := refDist(edges, 2)
	f := cluster.NewInProc(5, 0)
	defer f.Close()
	dbs := partition(t, edges, 5)
	for dest := graph.VertexID(3); dest < 600; dest += 53 {
		want, reachable := dist[dest]
		res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 2, Dest: dest, ReturnPath: true})
		if err != nil {
			t.Fatalf("BFS 2->%d: %v", dest, err)
		}
		if res.Found != reachable {
			t.Fatalf("2->%d found=%v want %v", dest, res.Found, reachable)
		}
		if !reachable {
			if res.Path != nil {
				t.Fatalf("unreachable query returned path %v", res.Path)
			}
			continue
		}
		if res.PathLength != want {
			t.Fatalf("2->%d length %d, want %d", dest, res.PathLength, want)
		}
		validatePath(t, edges, res.Path, 2, dest, want)
	}
}

func TestReturnPathBroadcastMode(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "pb", Vertices: 200, M: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dist := refDist(edges, 0)
	f := cluster.NewInProc(3, 0)
	defer f.Close()
	dbs := scatter(t, edges, 3)
	for _, dest := range []graph.VertexID{50, 120, 199} {
		res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
			Source: 0, Dest: dest, ReturnPath: true, Ownership: BroadcastFringe,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.PathLength != dist[dest] {
			t.Fatalf("0->%d = (%v,%d), want (true,%d)", dest, res.Found, res.PathLength, dist[dest])
		}
		validatePath(t, edges, res.Path, 0, dest, res.PathLength)
	}
}

func TestReturnPathSelf(t *testing.T) {
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(3), 2)
	res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 1, Dest: 1, ReturnPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Path, []graph.VertexID{1}) {
		t.Fatalf("self path = %v", res.Path)
	}
}

func TestReturnPathRejectedForPipelined(t *testing.T) {
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(3), 2)
	if _, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
		Source: 0, Dest: 3, ReturnPath: true, Pipelined: true,
	}); err == nil {
		t.Fatal("ReturnPath with Pipelined accepted")
	}
}

func TestPathMsgCodec(t *testing.T) {
	for _, kind := range []byte{pkLookup, pkReply, pkMissing, pkDone} {
		k, v, err := decodePathMsg(encodePathMsg(kind, 42))
		if err != nil || k != kind || v != 42 {
			t.Fatalf("round trip kind %d: %d %d %v", kind, k, v, err)
		}
	}
	if _, _, err := decodePathMsg([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestChunkPairsCodec(t *testing.T) {
	pairs := []graph.Edge{{Src: 1, Dst: 2}, {Src: 99, Dst: 0}}
	got, err := decodeChunkPairs(encodeChunkPairs(pairs))
	if err != nil || !reflect.DeepEqual(got, pairs) {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := decodeChunkPairs([]byte{fkChunkP, 1}); err == nil {
		t.Fatal("misaligned pairs accepted")
	}
}
