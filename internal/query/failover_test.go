package query

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/hashdb"
	"mssg/internal/ingest"
)

// replicate loads an undirected view of edges into p hashdb instances,
// storing each source vertex's records on all k of its rendezvous
// replicas — the layout a ReplicationFactor=k ingest produces.
func replicate(t *testing.T, edges []graph.Edge, rv *ingest.Rendezvous, p int) []graphdb.Graph {
	t.Helper()
	dbs := make([]graphdb.Graph, p)
	for i := range dbs {
		dbs[i] = hashdb.New()
	}
	for _, e := range edges {
		for _, d := range []graph.Edge{e, e.Reverse()} {
			for _, n := range rv.Replicas(d.Src) {
				if err := dbs[n].StoreEdges([]graph.Edge{d}); err != nil {
					t.Fatalf("StoreEdges: %v", err)
				}
			}
		}
	}
	return dbs
}

// without returns the ascending node list [0,p) minus dead.
func without(p int, dead ...cluster.NodeID) []cluster.NodeID {
	var out []cluster.NodeID
	for i := 0; i < p; i++ {
		skip := false
		for _, d := range dead {
			if cluster.NodeID(i) == d {
				skip = true
			}
		}
		if !skip {
			out = append(out, cluster.NodeID(i))
		}
	}
	return out
}

// TestFailoverBFSReplicaReroute: with 2-way replication, excluding any
// single back-end must not change any BFS answer — dead primaries'
// shards are read from their surviving replicas, and the run reports
// the replica reads it performed.
func TestFailoverBFSReplicaReroute(t *testing.T) {
	const p, k = 4, 2
	edges, err := gen.Generate(gen.Config{Name: "fo", Vertices: 300, M: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	rv := ingest.NewRendezvous(p, k, 0)
	dist := refDist(edges, 0)
	dests := []graph.VertexID{7, 42, 123, 250, 299}
	for _, pipelined := range []bool{false, true} {
		for dead := cluster.NodeID(0); dead < p; dead++ {
			f := cluster.NewInProc(p, 0)
			dbs := replicate(t, edges, rv, p)
			var replicaReads int64
			for _, dest := range dests {
				cfg := BFSConfig{
					Source: 0, Dest: dest, Pipelined: pipelined, Threshold: 4,
					OwnerOf:     rv.OwnerOf,
					ReplicasOf:  rv.Replicas,
					ActiveNodes: without(p, dead),
				}
				res, err := ParallelBFS(context.Background(), f, dbs, cfg)
				if err != nil {
					t.Fatalf("pipelined=%v dead=%d dest=%d: %v", pipelined, dead, dest, err)
				}
				want, reachable := dist[dest]
				if res.Found != reachable || (reachable && res.PathLength != want) {
					t.Fatalf("pipelined=%v dead=%d dest=%d: got (%v,%d), want (%v,%d)",
						pipelined, dead, dest, res.Found, res.PathLength, reachable, want)
				}
				if res.FringeDropped != 0 {
					t.Fatalf("dead=%d dest=%d: dropped %d vertices with a full replica set",
						dead, dest, res.FringeDropped)
				}
				if res.Coverage != 1 {
					t.Fatalf("dead=%d dest=%d: coverage %v, want 1", dead, dest, res.Coverage)
				}
				replicaReads += res.ReplicaReads
			}
			if replicaReads == 0 {
				t.Fatalf("pipelined=%v dead=%d: no replica reads recorded", pipelined, dead)
			}
			f.Close()
		}
	}
}

// TestFailoverBFSLevelStatsCarryReplicaReads: the per-level breakdown
// exposes where the failover work happened.
func TestFailoverBFSLevelStatsCarryReplicaReads(t *testing.T) {
	const p, k = 4, 2
	edges, err := gen.Generate(gen.Config{Name: "fl", Vertices: 200, M: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rv := ingest.NewRendezvous(p, k, 0)
	f := cluster.NewInProc(p, 0)
	defer f.Close()
	dbs := replicate(t, edges, rv, p)
	res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
		Source: 0, Dest: 199,
		OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
		ActiveNodes: without(p, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, ls := range res.LevelStats {
		sum += ls.ReplicaReads
	}
	if res.ReplicaReads == 0 || sum > res.ReplicaReads {
		t.Fatalf("replica reads: total %d, per-level sum %d", res.ReplicaReads, sum)
	}
}

// deadPairFor finds two nodes that form the complete replica set of some
// interior chain vertex (the first such vertex), while the source stays
// routable. BFS past that vertex is then impossible without its shard.
func deadPairFor(t *testing.T, rv *ingest.Rendezvous, n, p int) (a, b cluster.NodeID, cut graph.VertexID) {
	t.Helper()
	srcReps := rv.Replicas(0)
	for v := graph.VertexID(1); v < graph.VertexID(n); v++ {
		reps := rv.Replicas(v)
		x, y := reps[0], reps[1]
		if x > y {
			x, y = y, x
		}
		// The source must keep a live replica.
		if (srcReps[0] == x || srcReps[0] == y) && (srcReps[1] == x || srcReps[1] == y) {
			continue
		}
		return x, y, v
	}
	t.Fatal("no chain vertex with a usable replica pair")
	return 0, 0, 0
}

// TestFailoverBFSAllReplicasDead: when both replicas of a needed shard
// are excluded, the default run fails with ErrNoLiveReplica (an
// ErrPartialCoverage) on a chain that must pass through it; AllowPartial
// degrades to a best-effort result with explicit Coverage < 1.
func TestFailoverBFSAllReplicasDead(t *testing.T) {
	const p, k, n = 5, 2, 24
	rv := ingest.NewRendezvous(p, k, 0)
	edges := chainEdges(n)
	a, b, cut := deadPairFor(t, rv, n, p)
	t.Logf("killing nodes %d,%d; first unroutable chain vertex %d", a, b, cut)
	for _, pipelined := range []bool{false, true} {
		f := cluster.NewInProc(p, 0)
		dbs := replicate(t, edges, rv, p)
		cfg := BFSConfig{
			Source: 0, Dest: graph.VertexID(n), Pipelined: pipelined,
			OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
			ActiveNodes: without(p, a, b),
		}
		_, err := ParallelBFS(context.Background(), f, dbs, cfg)
		if !errors.Is(err, ErrNoLiveReplica) || !errors.Is(err, ErrPartialCoverage) {
			t.Fatalf("pipelined=%v: err = %v, want ErrNoLiveReplica", pipelined, err)
		}

		cfg.AllowPartial = true
		res, err := ParallelBFS(context.Background(), f, dbs, cfg)
		if err != nil {
			t.Fatalf("pipelined=%v AllowPartial: %v", pipelined, err)
		}
		if res.Found {
			t.Fatalf("pipelined=%v: found dest across a severed chain", pipelined)
		}
		if res.FringeDropped == 0 || res.Coverage >= 1 {
			t.Fatalf("pipelined=%v: dropped=%d coverage=%v, want drops and coverage < 1",
				pipelined, res.FringeDropped, res.Coverage)
		}
		f.Close()
	}
}

// TestFailoverBFSUnroutableSource: a source with no live replica is a
// deterministic failure (or an empty, zero-coverage result under
// AllowPartial), not a hang.
func TestFailoverBFSUnroutableSource(t *testing.T) {
	const p, k = 4, 2
	rv := ingest.NewRendezvous(p, k, 0)
	src := graph.VertexID(3)
	reps := rv.Replicas(src)
	f := cluster.NewInProc(p, 0)
	defer f.Close()
	dbs := replicate(t, chainEdges(6), rv, p)
	cfg := BFSConfig{
		Source: src, Dest: 6,
		OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
		ActiveNodes: without(p, reps[0], reps[1]),
	}
	if _, err := ParallelBFS(context.Background(), f, dbs, cfg); !errors.Is(err, ErrNoLiveReplica) {
		t.Fatalf("err = %v, want ErrNoLiveReplica", err)
	}
	cfg.AllowPartial = true
	res, err := ParallelBFS(context.Background(), f, dbs, cfg)
	if err != nil || res.Found || res.Coverage != 0 {
		t.Fatalf("AllowPartial: res=%+v err=%v, want unfound zero-coverage result", res, err)
	}
}

// TestFailoverBFSReturnPath: path reconstruction follows the same
// replica routing as the search, so it works with a back-end excluded.
func TestFailoverBFSReturnPath(t *testing.T) {
	const p, k, n = 4, 2, 16
	rv := ingest.NewRendezvous(p, k, 0)
	edges := chainEdges(n)
	for dead := cluster.NodeID(0); dead < p; dead++ {
		f := cluster.NewInProc(p, 0)
		dbs := replicate(t, edges, rv, p)
		res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
			Source: 0, Dest: graph.VertexID(n), ReturnPath: true,
			OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
			ActiveNodes: without(p, dead),
		})
		if err != nil {
			t.Fatalf("dead=%d: %v", dead, err)
		}
		want := make([]graph.VertexID, n+1)
		for i := range want {
			want[i] = graph.VertexID(i)
		}
		if !res.Found || !reflect.DeepEqual(res.Path, want) {
			t.Fatalf("dead=%d: path %v, want %v", dead, res.Path, want)
		}
		f.Close()
	}
}

// TestFailoverKHopReplicaReroute: the k-hop count is identical with any
// single back-end excluded.
func TestFailoverKHopReplicaReroute(t *testing.T) {
	const p, k = 4, 2
	edges, err := gen.Generate(gen.Config{Name: "fk", Vertices: 250, M: 3, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	rv := ingest.NewRendezvous(p, k, 0)
	f := cluster.NewInProc(p, 0)
	defer f.Close()
	dbs := replicate(t, edges, rv, p)
	full, err := ParallelKHop(context.Background(), f, dbs, KHopConfig{
		Source: 0, K: 4, OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	for dead := cluster.NodeID(0); dead < p; dead++ {
		res, err := ParallelKHop(context.Background(), f, dbs, KHopConfig{
			Source: 0, K: 4, OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
			ActiveNodes: without(p, dead),
		})
		if err != nil {
			t.Fatalf("dead=%d: %v", dead, err)
		}
		if !reflect.DeepEqual(res.PerLevel, full.PerLevel) || res.Total != full.Total {
			t.Fatalf("dead=%d: PerLevel %v Total %d, want %v / %d",
				dead, res.PerLevel, res.Total, full.PerLevel, full.Total)
		}
		if res.ReplicaReads == 0 {
			t.Fatalf("dead=%d: no replica reads recorded", dead)
		}
		if res.Coverage != 1 {
			t.Fatalf("dead=%d: coverage %v", dead, res.Coverage)
		}
	}
}

// TestFailoverKHopAllReplicasDead mirrors the BFS severed-shard cases.
func TestFailoverKHopAllReplicasDead(t *testing.T) {
	const p, k, n = 5, 2, 24
	rv := ingest.NewRendezvous(p, k, 0)
	edges := chainEdges(n)
	a, b, _ := deadPairFor(t, rv, n, p)
	f := cluster.NewInProc(p, 0)
	defer f.Close()
	dbs := replicate(t, edges, rv, p)
	cfg := KHopConfig{
		Source: 0, K: n, OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
		ActiveNodes: without(p, a, b),
	}
	if _, err := ParallelKHop(context.Background(), f, dbs, cfg); !errors.Is(err, ErrNoLiveReplica) {
		t.Fatalf("err = %v, want ErrNoLiveReplica", err)
	}
	cfg.AllowPartial = true
	res, err := ParallelKHop(context.Background(), f, dbs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 || res.Coverage >= 1 {
		t.Fatalf("dropped=%d coverage=%v, want drops and coverage < 1", res.Dropped, res.Coverage)
	}
}

// TestFailoverRosterValidation: malformed active sets are rejected up
// front instead of desynchronizing the collectives.
func TestFailoverRosterValidation(t *testing.T) {
	f := cluster.NewInProc(3, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(4), 3)
	for _, bad := range [][]cluster.NodeID{
		{},           // empty
		{1, 0},       // unsorted
		{0, 0, 1},    // duplicate
		{0, 1, 2, 3}, // out of range
	} {
		if _, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
			Source: 0, Dest: 4, ActiveNodes: bad,
		}); err == nil {
			t.Fatalf("active set %v accepted", bad)
		}
	}
}

// stubHealth marks a fixed set of nodes dead.
type stubHealth map[cluster.NodeID]bool

func (s stubHealth) Alive(n cluster.NodeID) bool { return !s[n] }

// TestFailoverBFSHealthViewExclusion: FailoverBFS consults the health
// view up front — a node already known dead is excluded with no failed
// attempt at all.
func TestFailoverBFSHealthViewExclusion(t *testing.T) {
	const p, k = 4, 2
	rv := ingest.NewRendezvous(p, k, 0)
	edges := chainEdges(12)
	f := cluster.NewInProc(p, 0)
	defer f.Close()
	dbs := replicate(t, edges, rv, p)
	res, err := FailoverBFS(context.Background(), f, dbs, BFSConfig{
		Source: 0, Dest: 12, OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
	}, FailoverOptions{Health: stubHealth{2: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.PathLength != 12 {
		t.Fatalf("got (%v,%d), want (true,12)", res.Found, res.PathLength)
	}
	if res.Failover == nil || res.Failover.Retries != 0 {
		t.Fatalf("failover stats %+v, want zero retries", res.Failover)
	}
	if res.ReplicaReads == 0 {
		t.Fatal("expected replica reads with a dead primary")
	}
}

// TestFailoverLoopRetriesAndSuspects drives the shared retry engine
// directly: the first attempt fails naming a down node, the second runs
// without it and succeeds, and the stats account for both.
func TestFailoverLoopRetriesAndSuspects(t *testing.T) {
	f := cluster.NewInProc(4, 0)
	defer f.Close()
	var attempts [][]cluster.NodeID
	stats, err := failoverLoop(context.Background(), f, nil,
		FailoverOptions{BackoffInitial: time.Millisecond},
		func(ctx context.Context, active []cluster.NodeID) (int32, error) {
			attempts = append(attempts, append([]cluster.NodeID(nil), active...))
			if len(attempts) == 1 {
				return 2, fmt.Errorf("%w: %w", ErrPartialCoverage,
					&cluster.NodeDownError{Node: 1, Reason: "test kill"})
			}
			return 5, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 2 {
		t.Fatalf("%d attempts, want 2", len(attempts))
	}
	if !reflect.DeepEqual(attempts[0], []cluster.NodeID{0, 1, 2, 3}) ||
		!reflect.DeepEqual(attempts[1], []cluster.NodeID{0, 2, 3}) {
		t.Fatalf("attempt rosters %v", attempts)
	}
	if stats.Retries != 1 || stats.DegradedLevels != 2 ||
		!reflect.DeepEqual(stats.Suspected, []cluster.NodeID{1}) {
		t.Fatalf("stats %+v", stats)
	}
}

// TestFailoverLoopNoLiveReplicaIsTerminal: ErrNoLiveReplica must not be
// retried — no surviving roster can serve the missing shard.
func TestFailoverLoopNoLiveReplicaIsTerminal(t *testing.T) {
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	calls := 0
	_, err := failoverLoop(context.Background(), f, nil,
		FailoverOptions{BackoffInitial: time.Millisecond},
		func(ctx context.Context, active []cluster.NodeID) (int32, error) {
			calls++
			return 0, fmt.Errorf("level 3: %w", ErrNoLiveReplica)
		})
	if !errors.Is(err, ErrNoLiveReplica) || calls != 1 {
		t.Fatalf("calls=%d err=%v, want one terminal attempt", calls, err)
	}
}

// TestFailoverLoopExhaustsRetries: a persistently failing cluster stops
// after MaxRetries and returns the last error.
func TestFailoverLoopExhaustsRetries(t *testing.T) {
	f := cluster.NewInProc(4, 0)
	defer f.Close()
	calls := 0
	_, err := failoverLoop(context.Background(), f, nil,
		FailoverOptions{MaxRetries: 2, BackoffInitial: time.Millisecond},
		func(ctx context.Context, active []cluster.NodeID) (int32, error) {
			calls++
			return 1, fmt.Errorf("%w: still flaky", cluster.ErrTimeout)
		})
	if calls != 3 || !errors.Is(err, cluster.ErrTimeout) {
		t.Fatalf("calls=%d err=%v, want 3 attempts then the timeout", calls, err)
	}
}

// TestBackoffJitterSpread is the lockstep-retry regression test: the
// failover sleeps must spread over [d·(1−j), d·(1+j)) and actually vary,
// so queries failed together by one crash do not hammer the recovering
// cluster in unison.
func TestBackoffJitterSpread(t *testing.T) {
	const d = time.Second
	lo, hi := d, d
	distinct := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		got := jitterBackoff(d, 0.5)
		if got < d/2 || got >= d+d/2 {
			t.Fatalf("jittered delay %v outside [%v, %v)", got, d/2, d+d/2)
		}
		distinct[got] = true
		if got < lo {
			lo = got
		}
		if got > hi {
			hi = got
		}
	}
	if len(distinct) < 50 {
		t.Fatalf("only %d distinct delays in 200 draws — not jittering", len(distinct))
	}
	if hi-lo < d/4 {
		t.Fatalf("200 draws span only %v of the %v window", hi-lo, d)
	}
	if got := jitterBackoff(d, 0); got != d {
		t.Fatalf("disabled jitter changed the delay to %v", got)
	}
	// Option resolution: zero means the 0.5 default, negative disables,
	// and values above 1 clamp (a delay can shrink at most to zero).
	if j := (FailoverOptions{}).withDefaults().BackoffJitter; j != 0.5 {
		t.Fatalf("default jitter = %v, want 0.5", j)
	}
	if j := (FailoverOptions{BackoffJitter: -1}).withDefaults().BackoffJitter; j != 0 {
		t.Fatalf("negative jitter resolved to %v, want 0 (disabled)", j)
	}
	if j := (FailoverOptions{BackoffJitter: 3}).withDefaults().BackoffJitter; j != 1 {
		t.Fatalf("jitter 3 resolved to %v, want 1", j)
	}
}

// flappingHealth declares every node dead for the first few Alive polls,
// then heals — the shape of a conviction flap right after a crash.
type flappingHealth struct{ deadPolls int }

func (h *flappingHealth) Alive(cluster.NodeID) bool {
	if h.deadPolls > 0 {
		h.deadPolls--
		return false
	}
	return true
}

// TestFailoverLoopEmptyViewHeals: an empty liveness view right after a
// crash is a retryable flap, not an instant ErrNoLiveReplica — the
// attempt waits out the backoff and runs once the view heals.
func TestFailoverLoopEmptyViewHeals(t *testing.T) {
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	h := &flappingHealth{deadPolls: 4} // two 2-node activeSet evaluations
	calls := 0
	stats, err := failoverLoop(context.Background(), f, nil,
		FailoverOptions{Health: h, BackoffInitial: time.Millisecond},
		func(ctx context.Context, active []cluster.NodeID) (int32, error) {
			calls++
			if !reflect.DeepEqual(active, []cluster.NodeID{0, 1}) {
				return 0, fmt.Errorf("attempt on %v, want the healed full view", active)
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || stats.Retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 1 attempt after 2 empty-view retries", calls, stats.Retries)
	}

	// A view that never heals still exhausts the retry budget and is
	// terminal — no attempt ever ran.
	h2 := &flappingHealth{deadPolls: 1 << 30}
	calls = 0
	_, err = failoverLoop(context.Background(), f, nil,
		FailoverOptions{Health: h2, MaxRetries: 2, BackoffInitial: time.Millisecond},
		func(ctx context.Context, active []cluster.NodeID) (int32, error) {
			calls++
			return 0, nil
		})
	if !errors.Is(err, ErrNoLiveReplica) || calls != 0 {
		t.Fatalf("calls=%d err=%v, want zero attempts and ErrNoLiveReplica", calls, err)
	}
}
