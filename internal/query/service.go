package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// Analysis is one registered data-analysis technique. The paper's Query
// Service keeps a registry of implemented analyses that clients can list
// and invoke by name (§3.3); BFS relationship analysis is the built-in
// one, and applications may register their own.
type Analysis interface {
	// Name is the registry key.
	Name() string
	// Describe is a one-line human description.
	Describe() string
	// Run executes the analysis across the fabric; params are
	// analysis-specific strings (a query-language stand-in). Cancelling
	// ctx aborts the analysis with ctx.Err().
	Run(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, params map[string]string) (any, error)
}

var (
	analysesMu sync.RWMutex
	analyses   = make(map[string]Analysis)
)

// RegisterAnalysis adds an analysis to the Query Service registry.
func RegisterAnalysis(a Analysis) {
	analysesMu.Lock()
	defer analysesMu.Unlock()
	if _, dup := analyses[a.Name()]; dup {
		panic(fmt.Sprintf("query: analysis %q registered twice", a.Name()))
	}
	analyses[a.Name()] = a
}

// LookupAnalysis finds a registered analysis.
func LookupAnalysis(name string) (Analysis, bool) {
	analysesMu.RLock()
	defer analysesMu.RUnlock()
	a, ok := analyses[name]
	return a, ok
}

// Analyses lists registered analysis names, sorted.
func Analyses() []string {
	analysesMu.RLock()
	defer analysesMu.RUnlock()
	names := make([]string, 0, len(analyses))
	for n := range analyses {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// bfsAnalysis adapts ParallelBFS to the Analysis registry.
type bfsAnalysis struct{}

func (bfsAnalysis) Name() string { return "bfs" }

func (bfsAnalysis) Describe() string {
	return "parallel out-of-core breadth-first search between two vertices (params: source, dest, pipelined, broadcast, threshold, workers)"
}

func (bfsAnalysis) Run(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, params map[string]string) (any, error) {
	cfg := BFSConfig{}
	src, err := requiredVertex(params, "source")
	if err != nil {
		return nil, err
	}
	dst, err := requiredVertex(params, "dest")
	if err != nil {
		return nil, err
	}
	cfg.Source, cfg.Dest = src, dst
	if params["pipelined"] == "true" {
		cfg.Pipelined = true
	}
	if params["broadcast"] == "true" {
		cfg.Ownership = BroadcastFringe
	}
	if t := params["threshold"]; t != "" {
		n, err := strconv.Atoi(t)
		if err != nil {
			return nil, fmt.Errorf("query: bad threshold %q: %w", t, err)
		}
		cfg.Threshold = n
	}
	if w := params["workers"]; w != "" {
		n, err := strconv.Atoi(w)
		if err != nil {
			return nil, fmt.Errorf("query: bad workers %q: %w", w, err)
		}
		cfg.Workers = n
	}
	return ParallelBFS(ctx, f, dbs, cfg)
}

func requiredVertex(params map[string]string, key string) (graph.VertexID, error) {
	s, ok := params[key]
	if !ok {
		return 0, fmt.Errorf("query: missing required param %q", key)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad %s %q: %w", key, s, err)
	}
	v := graph.VertexID(n)
	if !v.Valid() {
		return 0, fmt.Errorf("query: %s %d outside vertex range", key, n)
	}
	return v, nil
}

func init() {
	RegisterAnalysis(bfsAnalysis{})
}
