package query

import (
	"context"
	"io/fs"
	"reflect"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/grdb"
	"mssg/internal/storage/cache"
	"mssg/internal/storage/vfs"
)

// Conformance suite for the pipelined async prefetch (DESIGN.md §13):
// BFS and k-hop with the prefetch pipeline must return exactly what the
// serial no-prefetch reference returns, cancellation must leave no
// prefetch goroutine behind, and injected prefetch I/O errors must
// never produce wrong results. The whole file is run under -race by the
// ci target.

// grdbLevels keeps chains multi-level on small test graphs.
func grdbLevels() []graphdb.LevelSpec {
	return []graphdb.LevelSpec{
		{SubBlockCap: 2, BlockBytes: 256},
		{SubBlockCap: 4, BlockBytes: 256},
		{SubBlockCap: 8, BlockBytes: 256},
	}
}

// grdbPartition loads an undirected view of edges into p grdb instances
// with the GID % p mapping. mod edits the per-node Options before Open.
func grdbPartition(t *testing.T, edges []graph.Edge, p int, mod func(i int, o *graphdb.Options)) []graphdb.Graph {
	t.Helper()
	dbs := make([]graphdb.Graph, p)
	for i := range dbs {
		opts := graphdb.Options{Dir: t.TempDir(), Levels: grdbLevels(), MaxFileBytes: 4096}
		if mod != nil {
			mod(i, &opts)
		}
		d, err := grdb.Open(opts)
		if err != nil {
			t.Fatalf("grdb.Open node %d: %v", i, err)
		}
		dbs[i] = d
		t.Cleanup(func() { d.Close() })
	}
	for _, e := range edges {
		for _, d := range []graph.Edge{e, e.Reverse()} {
			owner := cluster.Owner(int64(d.Src), p)
			if err := dbs[owner].StoreEdges([]graph.Edge{d}); err != nil {
				t.Fatalf("StoreEdges: %v", err)
			}
		}
	}
	for _, d := range dbs {
		if err := d.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	return dbs
}

// blankTimings zeroes the wall-clock fields so results from different
// runs compare with DeepEqual.
func blankTimings(r *BFSResult) {
	for i := range r.LevelStats {
		r.LevelStats[i].ExpandNs = 0
		r.LevelStats[i].TotalNs = 0
	}
}

// TestAsyncPrefetchMatchesSerialBFS: for every interesting backend
// configuration, a BFS with the prefetch pipeline returns exactly what
// the serial no-prefetch reference returns — every field, not just
// Found/PathLength.
func TestAsyncPrefetchMatchesSerialBFS(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "apf", Vertices: 600, M: 2, HubFraction: 0.15, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	shared := cache.NewWithPolicy(1<<20, cache.PolicySLRU)
	configs := []struct {
		name string
		mod  func(i int, o *graphdb.Options)
	}{
		{"plain", nil},
		{"compressed", func(i int, o *graphdb.Options) { o.Compress = true }},
		{"shared-cache", func(i int, o *graphdb.Options) { o.SharedCache = shared }},
		{"durable", func(i int, o *graphdb.Options) { o.Durability = graphdb.DurabilityFull }},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			f := cluster.NewInProc(p, 0)
			defer f.Close()
			dbs := grdbPartition(t, edges, p, tc.mod)
			for _, dest := range []graph.VertexID{1, 137, 599, 4242 /* absent */} {
				base := BFSConfig{Source: 0, Dest: dest}
				ref, err := ParallelBFS(context.Background(), f, dbs, base)
				if err != nil {
					t.Fatalf("reference BFS 0->%d: %v", dest, err)
				}
				pf := base
				pf.Prefetch = true
				got, err := ParallelBFS(context.Background(), f, dbs, pf)
				if err != nil {
					t.Fatalf("prefetch BFS 0->%d: %v", dest, err)
				}
				blankTimings(&ref)
				blankTimings(&got)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("0->%d prefetch result diverged:\ngot  %+v\nwant %+v", dest, got, ref)
				}
				// Prefetch with parallel expansion on top.
				pw := pf
				pw.Workers = 4
				got2, err := ParallelBFS(context.Background(), f, dbs, pw)
				if err != nil {
					t.Fatalf("prefetch+workers BFS 0->%d: %v", dest, err)
				}
				blankTimings(&got2)
				if !reflect.DeepEqual(got2, ref) {
					t.Fatalf("0->%d prefetch+workers diverged:\ngot  %+v\nwant %+v", dest, got2, ref)
				}
			}
			// No prefetch goroutine survives the queries.
			for i, db := range dbs {
				if g := db.(*grdb.DB).PrefetchGoroutines(); g != 0 {
					t.Fatalf("node %d: %d prefetch goroutines alive after queries", i, g)
				}
			}
		})
	}
}

// TestAsyncPrefetchMatchesSerialKHop: same conformance for the k-hop
// analysis.
func TestAsyncPrefetchMatchesSerialKHop(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "apk", Vertices: 500, M: 3, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	f := cluster.NewInProc(p, 0)
	defer f.Close()
	dbs := grdbPartition(t, edges, p, nil)
	for _, k := range []int{1, 2, 4} {
		ref, err := ParallelKHop(context.Background(), f, dbs, KHopConfig{Source: 7, K: k})
		if err != nil {
			t.Fatalf("reference khop k=%d: %v", k, err)
		}
		got, err := ParallelKHop(context.Background(), f, dbs, KHopConfig{Source: 7, K: k, Prefetch: true})
		if err != nil {
			t.Fatalf("prefetch khop k=%d: %v", k, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("k=%d prefetch khop diverged:\ngot  %+v\nwant %+v", k, got, ref)
		}
	}
	for i, db := range dbs {
		if g := db.(*grdb.DB).PrefetchGoroutines(); g != 0 {
			t.Fatalf("node %d: %d prefetch goroutines alive", i, g)
		}
	}
}

// TestAsyncPrefetchCancellationNoLeak: cancelling a prefetching query on
// a slow simulated device must abort it and leave zero prefetch
// goroutines on every node.
func TestAsyncPrefetchCancellationNoLeak(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "apc", Vertices: 800, M: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const p = 2
	f := cluster.NewInProc(p, 0)
	defer f.Close()
	dbs := grdbPartition(t, edges, p, func(i int, o *graphdb.Options) {
		o.SimReadLatency = time.Millisecond
		o.CacheBytes = 64 << 10 // small cache: prefetch really reads
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := ParallelBFS(ctx, f, dbs, BFSConfig{Source: 0, Dest: 4242, Prefetch: true})
		if err == nil {
			// The graph has no vertex 4242, so an uncancelled run returns
			// found=false with a nil error; either outcome is fine — the
			// invariant under test is goroutine cleanup.
			return
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled query did not return")
	}
	for i, db := range dbs {
		if g := db.(*grdb.DB).PrefetchGoroutines(); g != 0 {
			t.Fatalf("node %d: %d prefetch goroutines alive after cancellation", i, g)
		}
	}
}

// flakyFS wraps the real filesystem and, once armed, makes every nth
// ReadAt on block files fail with EIO. Writes are untouched, and the
// injector stays disarmed during ingest, so only the query's read path
// (prefetch and expansion alike) sees faults.
type flakyFS struct {
	vfs.FS
	n     int64
	armed atomic.Bool
	reads atomic.Int64
}

type flakyFile struct {
	vfs.File
	fs *flakyFS
}

func (f *flakyFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

func (f *flakyFile) ReadAt(p []byte, off int64) (int, error) {
	if f.fs.armed.Load() && f.fs.reads.Add(1)%f.fs.n == 0 {
		return 0, syscall.EIO
	}
	return f.File.ReadAt(p, off)
}

// TestAsyncPrefetchErrorInjection: with transient EIO faults injected
// under both the prefetch and expansion read paths, a query either
// fails cleanly or returns exactly the fault-free reference result —
// never silently wrong data — and never leaks a goroutine.
func TestAsyncPrefetchErrorInjection(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "ape", Vertices: 400, M: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Fault-free reference per fabric size (FringeSent depends on it).
	refs := map[int]BFSResult{}
	for _, p := range []int{1, 2} {
		fr := cluster.NewInProc(p, 0)
		refDbs := grdbPartition(t, edges, p, nil)
		ref, err := ParallelBFS(context.Background(), fr, refDbs, BFSConfig{Source: 0, Dest: 399})
		fr.Close()
		if err != nil {
			t.Fatalf("reference BFS p=%d: %v", p, err)
		}
		blankTimings(&ref)
		refs[p] = ref
	}

	sawError, sawSuccess := false, false
	cases := []struct {
		n          int64
		p          int
		cacheBytes int64
	}{
		// Cache disabled: every sub-block access is a physical read, so
		// dense fault rates are guaranteed to hit the query. Single node:
		// an in-proc peer of a locally failed node would otherwise block
		// in its receive with no fabric timeout to free it.
		{2, 1, -1},
		{3, 1, -1},
		{7, 1, -1},
		// Small cache, two nodes: most faults land in the advisory
		// prefetch path or are absorbed by hits, so the query can still
		// succeed — and then must match the reference exactly.
		{31, 2, 32 << 10},
		{101, 2, 32 << 10},
	}
	for _, tc := range cases {
		n := tc.n
		fsys := &flakyFS{FS: vfs.OS, n: n}
		f := cluster.NewInProc(tc.p, 0)
		dbs := grdbPartition(t, edges, tc.p, func(i int, o *graphdb.Options) {
			o.FS = fsys
			o.CacheBytes = tc.cacheBytes
		})
		fsys.armed.Store(true) // ingest done — start faulting reads
		got, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{
			Source: 0, Dest: 399, Prefetch: true, Workers: 2,
		})
		if err != nil {
			sawError = true
		} else {
			sawSuccess = true
			blankTimings(&got)
			if !reflect.DeepEqual(got, refs[tc.p]) {
				t.Fatalf("n=%d: faulty run returned nil error with wrong result:\ngot  %+v\nwant %+v", n, got, refs[tc.p])
			}
		}
		for i, db := range dbs {
			if g := db.(*grdb.DB).PrefetchGoroutines(); g != 0 {
				t.Fatalf("n=%d node %d: %d prefetch goroutines alive after faulty query", n, i, g)
			}
		}
		f.Close()
	}
	// The dense rates must actually trip the error path and the sparse
	// rates must exercise the success path — otherwise the sweep proves
	// nothing.
	if !sawError || !sawSuccess {
		t.Fatalf("fault sweep degenerate: sawError=%v sawSuccess=%v", sawError, sawSuccess)
	}
}
