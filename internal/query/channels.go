package query

import "mssg/internal/cluster"

// queryChannels is one query's leased channel set. Earlier revisions
// used package-level constants (chFringe = 0x0100, ...), which made two
// concurrent queries on one fabric corrupt each other's traffic; every
// algorithm now runs against a per-query namespace instead.
//
// Logical channel offsets within the namespace:
//
//	0  fringe exchange (chunks + level-done markers)
//	1  collective up (gather to coordinator)
//	2  collective down (broadcast from coordinator)
//	3  path-walk parent-chain lookups
type queryChannels struct {
	ns       *cluster.Namespace
	fringe   cluster.ChannelID
	collUp   cluster.ChannelID
	collDn   cluster.ChannelID
	pathWalk cluster.ChannelID
}

// leaseChannels acquires a fresh namespace for one query run.
func leaseChannels() (queryChannels, error) {
	ns, err := cluster.Namespaces().Lease()
	if err != nil {
		return queryChannels{}, err
	}
	return queryChannels{
		ns:       ns,
		fringe:   ns.Channel(0),
		collUp:   ns.Channel(1),
		collDn:   ns.Channel(2),
		pathWalk: ns.Channel(3),
	}, nil
}
