package query

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
)

// Engine is the resident query scheduler: the piece that turns the
// one-shot query functions into a serving system. It owns one fabric and
// its per-node databases, admits queries up to a bounded queue, runs at
// most MaxInFlight of them concurrently (all queries are pure readers
// under the graphdb ConcurrentReaders contract, so they need no mutual
// exclusion against each other), applies per-query deadlines through
// context cancellation, and drains in-flight work on Close.
//
// Concurrency safety of a shared fabric comes from the per-query channel
// namespaces: every ParallelBFS/ParallelKHop call leases its own block
// of ChannelIDs, so interleaved queries never see each other's traffic.

// EngineConfig tunes admission control. The zero value selects the
// defaults noted per field.
type EngineConfig struct {
	// MaxInFlight bounds concurrently executing queries; <= 0 means 4.
	MaxInFlight int
	// QueueDepth bounds queries admitted but not yet running; once the
	// queue is full Submit fails fast with ErrRejected. <= 0 means 16.
	QueueDepth int
	// DefaultDeadline bounds each query's execution unless its submit
	// ctx carries an earlier deadline; 0 means none.
	DefaultDeadline time.Duration
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	return c
}

// ErrRejected is returned by Submit when the admission queue is full.
var ErrRejected = errors.New("query: engine queue full, query rejected")

// ErrEngineClosed is returned by Submit after Close has begun.
var ErrEngineClosed = errors.New("query: engine closed")

// QueryStatus is a submitted query's lifecycle state.
type QueryStatus int32

const (
	StatusQueued QueryStatus = iota
	StatusRunning
	StatusDone
)

func (s QueryStatus) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	}
	return fmt.Sprintf("QueryStatus(%d)", int32(s))
}

// Query is one admitted query's ticket. Result and Err are valid only
// after Done() is closed (or Wait returns).
type Query struct {
	// ID is the engine-local admission sequence number.
	ID uint64
	// Label names the query for status reporting (analysis name or a
	// caller-chosen string).
	Label string

	fn     func(ctx context.Context) (any, error)
	ctx    context.Context
	status atomic.Int32
	done   chan struct{}

	Result any
	Err    error

	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Status reports the query's current lifecycle state.
func (q *Query) Status() QueryStatus { return QueryStatus(q.status.Load()) }

// Done is closed when the query finishes (successfully or not).
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks until the query finishes and returns its outcome.
func (q *Query) Wait() (any, error) {
	<-q.done
	return q.Result, q.Err
}

// Engine is a long-lived concurrent query scheduler over one fabric.
type Engine struct {
	f   cluster.Fabric
	dbs []graphdb.Graph
	cfg EngineConfig

	queue chan *Query
	sem   chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	nextID  uint64
	stats   EngineStats
	dispTkn chan struct{} // closed when the dispatcher exits
}

// EngineStats is a point-in-time admission summary.
type EngineStats struct {
	Admitted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	Cancelled int64
}

// NewEngine builds a resident engine over f and its per-node databases.
// The engine does not own them: Close drains queries but leaves fabric
// and databases open for the caller.
func NewEngine(f cluster.Fabric, dbs []graphdb.Graph, cfg EngineConfig) (*Engine, error) {
	if len(dbs) != f.Nodes() {
		return nil, fmt.Errorf("query: %d databases for %d nodes", len(dbs), f.Nodes())
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		f: f, dbs: dbs, cfg: cfg,
		queue:   make(chan *Query, cfg.QueueDepth),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		dispTkn: make(chan struct{}),
	}
	go e.dispatch()
	return e, nil
}

// dispatch hands each admitted query a semaphore slot. The slot is
// acquired BEFORE the query is pulled off the queue: a dequeued query is
// always immediately runnable, so the queue's occupancy is exactly the
// admitted-but-not-running set and capacity is precisely
// MaxInFlight + QueueDepth (no query hidden "in the dispatcher's hand").
func (e *Engine) dispatch() {
	defer close(e.dispTkn)
	for {
		e.sem <- struct{}{}
		q, ok := <-e.queue
		if !ok {
			<-e.sem
			return
		}
		em().queued.Add(-1)
		e.wg.Add(1)
		go e.run(q)
	}
}

func (e *Engine) run(q *Query) {
	defer e.wg.Done()
	defer func() { <-e.sem }()
	met := em()
	met.inFlight.Add(1)
	defer met.inFlight.Add(-1)

	ctx := q.ctx
	if e.cfg.DefaultDeadline > 0 {
		// A deadline already on the submit ctx stays if earlier;
		// WithTimeout never extends one.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.DefaultDeadline)
		defer cancel()
	}

	q.Started = time.Now()
	q.status.Store(int32(StatusRunning))
	span := obs.DefaultTracer().StartSpan("engine.query", map[string]string{
		"label": q.Label,
	})
	res, err := q.fn(ctx)
	span.End()

	q.Finished = time.Now()
	q.Result, q.Err = res, err
	met.execNs.Observe(q.Finished.Sub(q.Started).Nanoseconds())
	met.queryNs.Observe(q.Finished.Sub(q.Submitted).Nanoseconds())
	e.mu.Lock()
	switch {
	case err == nil:
		e.stats.Completed++
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.stats.Cancelled++
	default:
		e.stats.Failed++
	}
	e.mu.Unlock()
	switch {
	case err == nil:
		met.completed.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		met.cancelled.Inc()
	default:
		met.failed.Inc()
	}
	q.status.Store(int32(StatusDone))
	close(q.done)
}

// SubmitFunc admits an arbitrary query function under the engine's
// admission control. The function receives a context that is cancelled
// by the engine's deadline policy or the caller's ctx; it must return
// promptly once that context is done.
func (e *Engine) SubmitFunc(ctx context.Context, label string, fn func(ctx context.Context) (any, error)) (*Query, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q := &Query{
		Label:     label,
		fn:        fn,
		ctx:       ctx,
		done:      make(chan struct{}),
		Submitted: time.Now(),
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	// Reserve the queue slot under the lock so Close cannot close the
	// queue channel between the check above and the send below.
	select {
	case e.queue <- q:
		e.nextID++
		q.ID = e.nextID
		e.stats.Admitted++
		e.mu.Unlock()
		em().admitted.Inc()
		em().queued.Add(1)
		return q, nil
	default:
		e.stats.Rejected++
		e.mu.Unlock()
		em().rejected.Inc()
		return nil, ErrRejected
	}
}

// Submit admits one registered analysis by name. The params map is
// analysis-specific (see Analysis.Run).
func (e *Engine) Submit(ctx context.Context, analysis string, params map[string]string) (*Query, error) {
	a, ok := LookupAnalysis(analysis)
	if !ok {
		return nil, fmt.Errorf("query: unknown analysis %q (have %v)", analysis, Analyses())
	}
	return e.SubmitFunc(ctx, analysis, func(ctx context.Context) (any, error) {
		return a.Run(ctx, e.f, e.dbs, params)
	})
}

// BFS admits one ParallelBFS run under admission control.
func (e *Engine) BFS(ctx context.Context, cfg BFSConfig) (*Query, error) {
	return e.SubmitFunc(ctx, "bfs", func(ctx context.Context) (any, error) {
		return ParallelBFS(ctx, e.f, e.dbs, cfg)
	})
}

// KHop admits one ParallelKHop run under admission control.
func (e *Engine) KHop(ctx context.Context, cfg KHopConfig) (*Query, error) {
	return e.SubmitFunc(ctx, "khop", func(ctx context.Context) (any, error) {
		return ParallelKHop(ctx, e.f, e.dbs, cfg)
	})
}

// Stats returns a snapshot of the admission counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close stops admission and drains: queued queries still run, in-flight
// queries finish (or hit their deadlines), and Close returns once the
// last one is done. The fabric and databases stay open. Idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.dispTkn
		e.wg.Wait()
		return nil
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()
	<-e.dispTkn
	e.wg.Wait()
	return nil
}
