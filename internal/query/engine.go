package query

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
	"mssg/internal/query/qcache"
)

// Engine is the resident query scheduler: the piece that turns the
// one-shot query functions into a serving system. It owns one fabric and
// its per-node databases, admits queries into per-tenant bounded queues,
// dispatches them with deficit-round-robin weighted fair sharing, runs
// at most MaxInFlight of them concurrently (all queries are pure readers
// under the graphdb ConcurrentReaders contract, so they need no mutual
// exclusion against each other), applies per-query deadlines through
// context cancellation — starting the clock when the query begins
// executing, never while it waits in a queue — and drains in-flight work
// on Close.
//
// Multi-tenancy (DESIGN.md §16): every query is admitted under a tenant
// name. Each tenant has its own FIFO queue with its own depth (so one
// aggressive client fills only its own queue and is rejected
// per-tenant), a weight (its deficit-round-robin share of dispatch
// slots), and an optional per-tenant in-flight cap. A tenant that never
// configures anything gets the DefaultTenant template, and the
// parameterless Submit entry points use the "default" tenant, so
// single-tenant callers see the PR 5 behaviour unchanged.
//
// Results are cached (when a cache is configured) under the key
// (placement epoch, graph generation, analysis, canonical params): a
// repeated identical query against an unchanged graph returns the
// cached result without consuming any tenant quota, and an ingest
// commit or placement epoch swap structurally invalidates every prior
// entry because the key stops matching.
//
// Concurrency safety of a shared fabric comes from the per-query channel
// namespaces: every ParallelBFS/ParallelKHop call leases its own block
// of ChannelIDs, so interleaved queries never see each other's traffic.

// DefaultTenantName is the tenant every tenant-less submit runs under.
const DefaultTenantName = "default"

// TenantConfig is one tenant's scheduling contract. The zero value
// selects the defaults noted per field.
type TenantConfig struct {
	// Weight is the tenant's deficit-round-robin quantum: per scheduler
	// rotation a tenant may dispatch Weight queries before the rotor
	// moves on, so a weight-4 tenant gets 4× the dispatch share of a
	// weight-1 tenant under contention. <= 0 means 1.
	Weight int
	// MaxInFlight caps this tenant's concurrently executing queries,
	// inside the engine-wide MaxInFlight. <= 0 means no per-tenant cap
	// (the engine-wide cap still applies).
	MaxInFlight int
	// QueueDepth bounds this tenant's admitted-but-not-running queries;
	// a full tenant queue rejects that tenant's submissions with
	// ErrRejected without affecting anyone else. <= 0 inherits the
	// engine-wide QueueDepth.
	QueueDepth int
}

// EngineConfig tunes admission control. The zero value selects the
// defaults noted per field.
type EngineConfig struct {
	// MaxInFlight bounds concurrently executing queries across all
	// tenants; <= 0 means 4.
	MaxInFlight int
	// QueueDepth bounds queries admitted but not yet running, per
	// tenant; once a tenant's queue is full its Submit fails fast with
	// ErrRejected. <= 0 means 16.
	QueueDepth int
	// DefaultDeadline bounds each query's execution unless its submit
	// ctx carries an earlier deadline; 0 means none. The deadline starts
	// when the query begins executing: queue wait is accounted
	// separately (query.engine.queue_wait_ns) and never consumes the
	// execution budget.
	DefaultDeadline time.Duration
	// Tenants declares per-tenant scheduling contracts, keyed by tenant
	// name. Tenants not listed are created on first use from
	// DefaultTenant.
	Tenants map[string]TenantConfig
	// DefaultTenant is the template for tenants absent from Tenants
	// (including the built-in "default" tenant).
	DefaultTenant TenantConfig
	// CacheBytes, when > 0, enables the epoch-keyed result cache with
	// this memory budget. Ignored when Cache is set.
	CacheBytes int64
	// Cache injects a result cache built elsewhere (so several engines
	// can share one, or tests can use a private registry). Nil with
	// CacheBytes <= 0 disables caching.
	Cache *qcache.Cache
	// Epoch supplies the committed placement epoch for cache keys and
	// snapshot pinning (wire ingest.PlacementHolder.Epoch on elastic
	// clusters). Nil means epoch 0 (static cluster).
	Epoch func() uint64
	// Generation overrides the graph-generation source for cache keys
	// and snapshot pinning. Nil derives it from the engine's databases
	// via graphdb.GraphsGeneration.
	Generation func() uint64
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	return c
}

// ErrRejected is returned by Submit when the submitting tenant's queue
// is full.
var ErrRejected = errors.New("query: tenant queue full, query rejected")

// ErrEngineClosed is returned by Submit after Close has begun.
var ErrEngineClosed = errors.New("query: engine closed")

// QueryStatus is a submitted query's lifecycle state.
type QueryStatus int32

const (
	StatusQueued QueryStatus = iota
	StatusRunning
	StatusDone
)

func (s QueryStatus) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	}
	return fmt.Sprintf("QueryStatus(%d)", int32(s))
}

// Query is one admitted query's ticket. Result and Err are valid only
// after Done() is closed (or Wait returns).
type Query struct {
	// ID is the engine-local admission sequence number.
	ID uint64
	// Label names the query for status reporting (analysis name or a
	// caller-chosen string).
	Label string
	// Tenant is the tenant the query was admitted under.
	Tenant string
	// Generation is the combined graph generation pinned at admission:
	// the committed graph state the query ran against (see
	// BFSResult.Generation). For a cache hit it is the generation the
	// cached result was computed at, which by key construction equals
	// the current one.
	Generation uint64
	// CacheHit reports that the result was served from the result cache
	// without executing (Started/Finished collapse to Submitted).
	CacheHit bool
	// QueueWait is the admission-to-execution delay, measured when the
	// query starts executing. It is excluded from the deadline budget.
	QueueWait time.Duration

	fn       func(ctx context.Context) (any, error)
	ctx      context.Context
	status   atomic.Int32
	done     chan struct{}
	cacheKey string // canonical params; "" = uncacheable
	epoch    uint64 // placement epoch pinned at admission

	Result any
	Err    error

	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Status reports the query's current lifecycle state.
func (q *Query) Status() QueryStatus { return QueryStatus(q.status.Load()) }

// Done is closed when the query finishes (successfully or not).
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks until the query finishes and returns its outcome.
func (q *Query) Wait() (any, error) {
	<-q.done
	return q.Result, q.Err
}

// tenantState is one tenant's queue and accounting. Guarded by
// Engine.mu.
type tenantState struct {
	name        string
	weight      int
	maxInFlight int // 0 = no per-tenant cap
	queueDepth  int
	queue       []*Query
	inFlight    int
	stats       TenantStats
	met         *tenantMetrics
}

// dispatchable reports whether the tenant has a queued query that may
// start now.
func (t *tenantState) dispatchable() bool {
	return len(t.queue) > 0 && (t.maxInFlight <= 0 || t.inFlight < t.maxInFlight)
}

// Engine is a long-lived concurrent query scheduler over one fabric.
type Engine struct {
	f     cluster.Fabric
	dbs   []graphdb.Graph
	cfg   EngineConfig
	cache *qcache.Cache
	genFn func() uint64

	sem     chan struct{} // engine-wide MaxInFlight slots
	wg      sync.WaitGroup
	dispTkn chan struct{} // closed when the dispatcher exits

	mu          sync.Mutex
	cond        *sync.Cond // signalled on submit, completion, close
	closed      bool
	nextID      uint64
	stats       EngineStats
	tenants     map[string]*tenantState
	order       []string // rotor order (registration order)
	rrPos       int      // rotor position into order
	credit      int      // remaining DRR credit of order[rrPos]
	queuedTotal int
}

// EngineStats is a point-in-time admission summary.
type EngineStats struct {
	Admitted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	Cancelled int64
	// CacheHits counts queries answered from the result cache without
	// executing (not included in Admitted).
	CacheHits int64
	// Tenants breaks the admission counters down per tenant.
	Tenants map[string]TenantStats
}

// TenantStats is one tenant's admission summary.
type TenantStats struct {
	Admitted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	Cancelled int64
	CacheHits int64
}

// NewEngine builds a resident engine over f and its per-node databases.
// The engine does not own them: Close drains queries but leaves fabric
// and databases open for the caller.
func NewEngine(f cluster.Fabric, dbs []graphdb.Graph, cfg EngineConfig) (*Engine, error) {
	if len(dbs) != f.Nodes() {
		return nil, fmt.Errorf("query: %d databases for %d nodes", len(dbs), f.Nodes())
	}
	cfg = cfg.withDefaults()
	for name := range cfg.Tenants {
		if err := validTenant(name); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		f: f, dbs: dbs, cfg: cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		dispTkn: make(chan struct{}),
		tenants: make(map[string]*tenantState),
	}
	e.cond = sync.NewCond(&e.mu)
	e.cache = cfg.Cache
	if e.cache == nil && cfg.CacheBytes > 0 {
		e.cache = qcache.New(cfg.CacheBytes, nil)
	}
	e.genFn = cfg.Generation
	if e.genFn == nil {
		e.genFn = func() uint64 { return graphdb.GraphsGeneration(e.dbs) }
	}
	go e.dispatch()
	return e, nil
}

// validTenant bounds tenant names so they are safe as metric-name
// segments and wire tokens.
func validTenant(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("query: tenant name %q must be 1-64 characters", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("query: tenant name %q may only contain letters, digits, '-', '_', '.'", name)
		}
	}
	return nil
}

// tenantLocked finds or lazily registers a tenant. Caller holds e.mu.
func (e *Engine) tenantLocked(name string) *tenantState {
	if t, ok := e.tenants[name]; ok {
		return t
	}
	cfg, ok := e.cfg.Tenants[name]
	if !ok {
		cfg = e.cfg.DefaultTenant
	}
	t := &tenantState{
		name:        name,
		weight:      cfg.Weight,
		maxInFlight: cfg.MaxInFlight,
		queueDepth:  cfg.QueueDepth,
		met:         tm(name),
	}
	if t.weight <= 0 {
		t.weight = 1
	}
	if t.queueDepth <= 0 {
		t.queueDepth = e.cfg.QueueDepth
	}
	e.tenants[name] = t
	e.order = append(e.order, name)
	if len(e.order) == 1 {
		e.credit = t.weight
	}
	return t
}

// pickLocked runs one deficit-round-robin step: serve the rotor's
// tenant while it has credit and dispatchable work, otherwise advance
// the rotor (refilling the next tenant's credit with its weight). With
// unit-cost queries DRR reduces to weighted round robin: a tenant gets
// up to `weight` dispatches per rotor visit. Returns nil when no tenant
// can dispatch (all queues empty, or every backlogged tenant is at its
// in-flight cap). Caller holds e.mu.
func (e *Engine) pickLocked() *Query {
	n := len(e.order)
	if n == 0 || e.queuedTotal == 0 {
		return nil
	}
	for hops := 0; hops <= n; hops++ {
		t := e.tenants[e.order[e.rrPos]]
		if e.credit > 0 && t.dispatchable() {
			e.credit--
			q := t.queue[0]
			t.queue[0] = nil
			t.queue = t.queue[1:]
			if len(t.queue) == 0 {
				t.queue = nil // release the drained backing array
			}
			t.inFlight++
			t.met.queued.Add(-1)
			t.met.inFlight.Add(1)
			e.queuedTotal--
			return q
		}
		e.rrPos = (e.rrPos + 1) % n
		e.credit = e.tenants[e.order[e.rrPos]].weight
	}
	return nil
}

// next blocks until a query is dispatchable or the engine has drained
// after Close. A nil return means "dispatcher should exit".
func (e *Engine) next() *Query {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if q := e.pickLocked(); q != nil {
			return q
		}
		if e.closed && e.queuedTotal == 0 {
			return nil
		}
		e.cond.Wait()
	}
}

// dispatch hands each dispatchable query a semaphore slot. The slot is
// acquired BEFORE a query is picked: a picked query is always
// immediately runnable, so each tenant queue's occupancy is exactly its
// admitted-but-not-running set.
func (e *Engine) dispatch() {
	defer close(e.dispTkn)
	for {
		e.sem <- struct{}{}
		q := e.next()
		if q == nil {
			<-e.sem
			return
		}
		em().queued.Add(-1)
		e.wg.Add(1)
		go e.run(q)
	}
}

func (e *Engine) run(q *Query) {
	defer e.wg.Done()
	met := em()
	met.inFlight.Add(1)

	q.Started = time.Now()
	q.QueueWait = q.Started.Sub(q.Submitted)
	met.queueWaitNs.Observe(q.QueueWait.Nanoseconds())

	// The deadline budget starts HERE — at execution, after the queue
	// wait — so scheduling delay under load can never silently consume
	// a query's execution time.
	ctx := q.ctx
	if e.cfg.DefaultDeadline > 0 {
		// A deadline already on the submit ctx stays if earlier;
		// WithTimeout never extends one.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.DefaultDeadline)
		defer cancel()
	}

	q.status.Store(int32(StatusRunning))
	span := obs.DefaultTracer().StartSpan("engine.query", map[string]string{
		"label": q.Label, "tenant": q.Tenant,
	})
	res, err := q.fn(ctx)
	span.End()

	// Stamp the pinned snapshot generation into results that carry one.
	if r, ok := res.(BFSResult); ok && err == nil {
		r.Generation = q.Generation
		res = r
	}

	q.Finished = time.Now()
	q.Result, q.Err = res, err

	// Store in the result cache only when the pinned snapshot is still
	// the committed state: if ingest committed or the placement epoch
	// moved while the query ran, the result may mix generations and is
	// discarded rather than cached.
	if err == nil && e.cache != nil && q.cacheKey != "" &&
		e.genFn() == q.Generation && e.epoch() == q.epoch {
		e.cache.Put(qcache.Key{
			Epoch: q.epoch, Generation: q.Generation,
			Analysis: q.Label, Params: q.cacheKey,
		}, res, resultCost(res))
	}

	met.execNs.Observe(q.Finished.Sub(q.Started).Nanoseconds())
	met.queryNs.Observe(q.Finished.Sub(q.Submitted).Nanoseconds())

	e.mu.Lock()
	t := e.tenantLocked(q.Tenant)
	t.inFlight--
	switch {
	case err == nil:
		e.stats.Completed++
		t.stats.Completed++
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.stats.Cancelled++
		t.stats.Cancelled++
	default:
		e.stats.Failed++
		t.stats.Failed++
	}
	e.mu.Unlock()

	t.met.inFlight.Add(-1)
	t.met.queueWaitNs.Observe(q.QueueWait.Nanoseconds())
	t.met.execNs.Observe(q.Finished.Sub(q.Started).Nanoseconds())
	t.met.queryNs.Observe(q.Finished.Sub(q.Submitted).Nanoseconds())
	switch {
	case err == nil:
		met.completed.Inc()
		t.met.completed.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		met.cancelled.Inc()
		t.met.cancelled.Inc()
	default:
		met.failed.Inc()
		t.met.failed.Inc()
	}
	met.inFlight.Add(-1)
	q.status.Store(int32(StatusDone))
	close(q.done)

	// Release the engine-wide slot, then wake the dispatcher: a tenant
	// blocked on its in-flight cap may be dispatchable now.
	<-e.sem
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// epoch reads the placement epoch source (0 without one).
func (e *Engine) epoch() uint64 {
	if e.cfg.Epoch == nil {
		return 0
	}
	return e.cfg.Epoch()
}

// resultCost estimates a cached result's memory footprint for the
// cache's byte budget.
func resultCost(res any) int64 {
	const base = 256
	switch r := res.(type) {
	case BFSResult:
		return base + 8*int64(len(r.Path)) + 48*int64(len(r.LevelStats))
	case KHopResult:
		return base + 8*int64(len(r.PerLevel))
	case ComponentResult:
		return base
	}
	return base
}

// submit is the single admission path: cache probe first (a hit costs
// no quota), then per-tenant queue reservation under the lock.
func (e *Engine) submit(ctx context.Context, tenant, label, cacheKey string, fn func(ctx context.Context) (any, error)) (*Query, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if tenant == "" {
		tenant = DefaultTenantName
	}
	if err := validTenant(tenant); err != nil {
		return nil, err
	}
	now := time.Now()
	epoch := e.epoch()
	gen := e.genFn()

	if e.cache != nil && cacheKey != "" {
		if res, ok := e.cache.Get(qcache.Key{
			Epoch: epoch, Generation: gen, Analysis: label, Params: cacheKey,
		}); ok {
			q := &Query{
				Label: label, Tenant: tenant, Generation: gen, CacheHit: true,
				done: make(chan struct{}), Result: res,
				Submitted: now, Started: now, Finished: now,
			}
			q.status.Store(int32(StatusDone))
			close(q.done)
			e.mu.Lock()
			e.nextID++
			q.ID = e.nextID
			e.stats.CacheHits++
			t := e.tenantLocked(tenant)
			t.stats.CacheHits++
			e.mu.Unlock()
			em().cacheHits.Inc()
			t.met.cacheHits.Inc()
			return q, nil
		}
	}

	q := &Query{
		Label: label, Tenant: tenant, Generation: gen,
		fn: fn, ctx: ctx, done: make(chan struct{}),
		cacheKey: cacheKey, epoch: epoch,
		Submitted: now,
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	t := e.tenantLocked(tenant)
	if len(t.queue) >= t.queueDepth {
		e.stats.Rejected++
		t.stats.Rejected++
		e.mu.Unlock()
		em().rejected.Inc()
		t.met.rejected.Inc()
		return nil, fmt.Errorf("%w (tenant %q, depth %d)", ErrRejected, tenant, t.queueDepth)
	}
	e.nextID++
	q.ID = e.nextID
	t.queue = append(t.queue, q)
	e.queuedTotal++
	e.stats.Admitted++
	t.stats.Admitted++
	e.cond.Broadcast()
	e.mu.Unlock()
	em().admitted.Inc()
	em().queued.Add(1)
	t.met.admitted.Inc()
	t.met.queued.Add(1)
	return q, nil
}

// SubmitFunc admits an arbitrary query function under the default
// tenant. The function receives a context that is cancelled by the
// engine's deadline policy or the caller's ctx; it must return promptly
// once that context is done. Arbitrary functions are never cached.
func (e *Engine) SubmitFunc(ctx context.Context, label string, fn func(ctx context.Context) (any, error)) (*Query, error) {
	return e.SubmitFuncAs(ctx, DefaultTenantName, label, fn)
}

// SubmitFuncAs is SubmitFunc under an explicit tenant.
func (e *Engine) SubmitFuncAs(ctx context.Context, tenant, label string, fn func(ctx context.Context) (any, error)) (*Query, error) {
	return e.submit(ctx, tenant, label, "", fn)
}

// Submit admits one registered analysis by name under the default
// tenant. The params map is analysis-specific (see Analysis.Run).
func (e *Engine) Submit(ctx context.Context, analysis string, params map[string]string) (*Query, error) {
	return e.SubmitAs(ctx, DefaultTenantName, analysis, params)
}

// SubmitAs is Submit under an explicit tenant. Results are cached under
// (epoch, generation, analysis, canonicalized params) when a cache is
// configured.
func (e *Engine) SubmitAs(ctx context.Context, tenant, analysis string, params map[string]string) (*Query, error) {
	a, ok := LookupAnalysis(analysis)
	if !ok {
		return nil, fmt.Errorf("query: unknown analysis %q (have %v)", analysis, Analyses())
	}
	return e.submit(ctx, tenant, analysis, qcache.CanonicalParams(params), func(ctx context.Context) (any, error) {
		return a.Run(ctx, e.f, e.dbs, params)
	})
}

// BFS admits one ParallelBFS run under the default tenant.
func (e *Engine) BFS(ctx context.Context, cfg BFSConfig) (*Query, error) {
	return e.BFSAs(ctx, DefaultTenantName, cfg)
}

// BFSAs admits one ParallelBFS run under an explicit tenant.
func (e *Engine) BFSAs(ctx context.Context, tenant string, cfg BFSConfig) (*Query, error) {
	key, _ := bfsCacheKey(cfg)
	return e.submit(ctx, tenant, "bfs", key, func(ctx context.Context) (any, error) {
		return ParallelBFS(ctx, e.f, e.dbs, cfg)
	})
}

// KHop admits one ParallelKHop run under the default tenant.
func (e *Engine) KHop(ctx context.Context, cfg KHopConfig) (*Query, error) {
	return e.KHopAs(ctx, DefaultTenantName, cfg)
}

// KHopAs admits one ParallelKHop run under an explicit tenant.
func (e *Engine) KHopAs(ctx context.Context, tenant string, cfg KHopConfig) (*Query, error) {
	key, _ := khopCacheKey(cfg)
	return e.submit(ctx, tenant, "khop", key, func(ctx context.Context) (any, error) {
		return ParallelKHop(ctx, e.f, e.dbs, cfg)
	})
}

// bfsCacheKey canonicalizes a BFS configuration into a cache key. A
// config with a caller-injected visited constructor is not cacheable:
// its result may depend on external state the key cannot name. The
// node roster is encoded (a failover retry against a reduced roster is
// a different query); the routing funcs (OwnerOf/ReplicasOf) are
// derived deterministically from the placement at a given epoch, which
// the key already carries, so they do not need to appear — callers
// injecting a custom directory that varies within one epoch should
// disable caching. Performance-only knobs (Workers, Prefetch,
// Threshold) are deliberately excluded: they cannot change the result,
// so excluding them lets differently-tuned submissions share entries.
func bfsCacheKey(cfg BFSConfig) (string, bool) {
	if cfg.NewVisited != nil {
		return "", false
	}
	return qcache.CanonicalParams(map[string]string{
		"source":    fmt.Sprint(cfg.Source),
		"dest":      fmt.Sprint(cfg.Dest),
		"pipelined": fmt.Sprint(cfg.Pipelined),
		"maxlevels": fmt.Sprint(cfg.MaxLevels),
		"ownership": fmt.Sprint(int(cfg.Ownership)),
		"filter":    fmt.Sprintf("%d/%d", cfg.Filter.Op, cfg.Filter.Ref),
		"path":      fmt.Sprint(cfg.ReturnPath),
		"partial":   fmt.Sprint(cfg.AllowPartial),
		"roster":    rosterKey(cfg.ActiveNodes),
	}), true
}

// khopCacheKey canonicalizes a k-hop configuration under the same
// rules.
func khopCacheKey(cfg KHopConfig) (string, bool) {
	return qcache.CanonicalParams(map[string]string{
		"source":    fmt.Sprint(cfg.Source),
		"k":         fmt.Sprint(cfg.K),
		"ownership": fmt.Sprint(int(cfg.Ownership)),
		"partial":   fmt.Sprint(cfg.AllowPartial),
		"roster":    rosterKey(cfg.ActiveNodes),
	}), true
}

// rosterKey encodes an ActiveNodes roster ("" = full membership).
func rosterKey(nodes []cluster.NodeID) string {
	if nodes == nil {
		return ""
	}
	var sb strings.Builder
	for i, n := range nodes {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", n)
	}
	return sb.String()
}

// Stats returns a snapshot of the admission counters, including the
// per-tenant breakdown.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Tenants = make(map[string]TenantStats, len(e.tenants))
	for name, t := range e.tenants {
		st.Tenants[name] = t.stats
	}
	return st
}

// Cache exposes the engine's result cache (nil when caching is
// disabled) — core.Engine registers it for invalidation hooks.
func (e *Engine) Cache() *qcache.Cache { return e.cache }

// InvalidateCache reclaims cache entries whose (epoch, generation) no
// longer match the committed state — call after an ingest commit or a
// placement epoch swap. Matching stale entries is already impossible
// (the key changed); this frees their memory. Returns entries dropped.
func (e *Engine) InvalidateCache() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.PurgeStale(e.epoch(), e.genFn())
}

// Close stops admission and drains: queued queries still run, in-flight
// queries finish (or hit their deadlines), and Close returns once the
// last one is done. The fabric and databases stay open. Idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.dispTkn
		e.wg.Wait()
		return nil
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	<-e.dispTkn
	e.wg.Wait()
	return nil
}
