package query

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
)

// ErrNoLiveReplica is the non-retryable flavour of ErrPartialCoverage:
// every replica of some required shard is unreachable, so no amount of
// failing over will complete the query. errors.Is(err,
// ErrPartialCoverage) still matches; FailoverBFS stops retrying when it
// sees this and either surfaces the error or (AllowPartial) the query
// already degraded instead of failing.
var ErrNoLiveReplica = fmt.Errorf("%w: every replica of a required shard is unreachable", ErrPartialCoverage)

// FailoverStats records what it took to answer a query on a degraded
// cluster.
type FailoverStats struct {
	// Retries is the number of failed attempts before the one that
	// produced the result.
	Retries int
	// ReplicaReads is the winning attempt's count of fringe vertices
	// served by non-primary replicas.
	ReplicaReads int64
	// DegradedLevels sums the BFS levels completed by failed attempts —
	// work thrown away because a back-end died mid-search.
	DegradedLevels int32
	// Suspected lists the nodes excluded by error-driven suspicion,
	// ascending (nodes the health view already excluded are not listed).
	Suspected []cluster.NodeID
}

// FailoverOptions tunes FailoverBFS / FailoverKHop. The zero value
// selects usable defaults.
type FailoverOptions struct {
	// Health is the liveness oracle consulted before every attempt. Nil
	// derives one from the fabric when it implements
	// cluster.HealthReporter (the reliable fabric does); a fabric without
	// failure detection starts from all-alive and relies on error-driven
	// suspicion alone.
	Health cluster.HealthView
	// MaxRetries bounds the retry loop: a query runs at most
	// 1+MaxRetries attempts. 0 means 3; negative means no retries.
	MaxRetries int
	// BackoffInitial is the sleep before the first retry, doubling per
	// retry up to BackoffMax — long enough for the failure detector to
	// declare the dead peer, short enough to stay interactive. Defaults:
	// 50ms and 1s.
	BackoffInitial time.Duration
	BackoffMax     time.Duration
	// BackoffJitter spreads each retry sleep uniformly over
	// [d·(1−j), d·(1+j)), so the queries that a node's crash failed
	// together do not retry in lockstep against the recovering cluster.
	// 0 means the default 0.5; negative disables jitter; values above 1
	// are clamped to 1.
	BackoffJitter float64
	// AttemptTimeout bounds each attempt (0: only ctx bounds them).
	AttemptTimeout time.Duration
}

func (o FailoverOptions) withDefaults() FailoverOptions {
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffInitial <= 0 {
		o.BackoffInitial = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	switch {
	case o.BackoffJitter == 0:
		o.BackoffJitter = 0.5
	case o.BackoffJitter < 0:
		o.BackoffJitter = 0
	case o.BackoffJitter > 1:
		o.BackoffJitter = 1
	}
	return o
}

// jitterBackoff returns d perturbed uniformly into [d·(1−j), d·(1+j)).
// j <= 0 returns d unchanged.
func jitterBackoff(d time.Duration, j float64) time.Duration {
	if j <= 0 || d <= 0 {
		return d
	}
	f := 1 + j*(2*rand.Float64()-1)
	return time.Duration(float64(d) * f)
}

func (o FailoverOptions) healthFor(f cluster.Fabric) cluster.HealthView {
	if o.Health != nil {
		return o.Health
	}
	if hr, ok := f.(cluster.HealthReporter); ok {
		return hr.Health()
	}
	return nil
}

// activeSet is the nodes an attempt will run on: health-view survivors,
// minus error-driven suspects, intersected with an optional caller
// restriction. Returns nil (meaning "none") when nothing survives.
func activeSet(f cluster.Fabric, h cluster.HealthView, base []cluster.NodeID, suspects map[cluster.NodeID]bool) []cluster.NodeID {
	inBase := func(n cluster.NodeID) bool {
		if base == nil {
			return true
		}
		for _, b := range base {
			if b == n {
				return true
			}
		}
		return false
	}
	var out []cluster.NodeID
	for _, n := range cluster.LiveNodes(h, f.Nodes()) {
		if !suspects[n] && inBase(n) {
			out = append(out, n)
		}
	}
	return out
}

// retryable reports whether err can plausibly be cured by excluding the
// peers it names and rerunning on the survivors. ErrNoLiveReplica is
// terminal (the data is gone, not just a node), as is cancellation.
func retryable(err error) bool {
	if errors.Is(err, ErrNoLiveReplica) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, ErrPartialCoverage) ||
		errors.Is(err, cluster.ErrNodeDown) ||
		errors.Is(err, cluster.ErrTimeout) ||
		len(cluster.DownNodes(err)) > 0
}

// failoverLoop is the shared retry engine: attempt runs one try on the
// given active set and returns (levelsCompleted, err).
func failoverLoop(ctx context.Context, f cluster.Fabric, base []cluster.NodeID, opt FailoverOptions,
	attempt func(ctx context.Context, active []cluster.NodeID) (int32, error)) (*FailoverStats, error) {

	opt = opt.withDefaults()
	health := opt.healthFor(f)
	stats := &FailoverStats{}
	suspects := make(map[cluster.NodeID]bool)
	backoff := opt.BackoffInitial
	// sleep waits one (jittered) backoff step before the next attempt and
	// doubles the step up to the cap; it returns early on cancellation.
	sleep := func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(jitterBackoff(backoff, opt.BackoffJitter)):
		}
		if backoff *= 2; backoff > opt.BackoffMax {
			backoff = opt.BackoffMax
		}
		return nil
	}
	for try := 0; ; try++ {
		active := activeSet(f, health, base, suspects)
		if len(active) == 0 {
			// An empty view right after a crash is often a conviction
			// flap: the dead node's stale suspicions (or observers busy
			// absorbing the failure) briefly convict healthy peers, and
			// the majority vote heals within a heartbeat budget. Only a
			// view that stays empty through the retry budget is terminal.
			if ctx.Err() != nil || try >= opt.MaxRetries {
				return stats, fmt.Errorf("query: no live back-ends remain: %w", ErrNoLiveReplica)
			}
			stats.Retries++
			qm().foRetries.Inc()
			obs.DefaultTracer().Emit("query.failover.retry", map[string]string{
				"attempt": strconv.Itoa(try + 1),
				"error":   "no live back-ends in view",
			})
			if err := sleep(); err != nil {
				return stats, err
			}
			continue
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if opt.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, opt.AttemptTimeout)
		}
		levels, err := attempt(actx, active)
		cancel()
		if err == nil {
			return stats, nil
		}
		if ctx.Err() != nil || !retryable(err) || try >= opt.MaxRetries {
			return stats, err
		}
		for _, n := range cluster.DownNodes(err) {
			if !suspects[n] {
				suspects[n] = true
				stats.Suspected = append(stats.Suspected, n)
			}
		}
		stats.Retries++
		stats.DegradedLevels += levels
		qm().foRetries.Inc()
		obs.DefaultTracer().Emit("query.failover.retry", map[string]string{
			"attempt": strconv.Itoa(try + 1),
			"error":   err.Error(),
		})
		// The sleep gives the heartbeat detector time to convict a peer
		// the error did not name explicitly.
		if err := sleep(); err != nil {
			return stats, err
		}
	}
}

// FailoverBFS answers a BFS on a cluster that may lose back-ends
// mid-query: each attempt runs on the currently live nodes (health view
// plus error-driven suspicion), fringe routing reads dead primaries'
// shards from their replicas (cfg.ReplicasOf), and a failed attempt is
// retried with capped exponential backoff against the shrunken roster.
// The result carries FailoverStats. With all replicas of a needed shard
// dead the query fails with ErrNoLiveReplica (or degrades, when
// cfg.AllowPartial is set, to a Coverage < 1 result).
func FailoverBFS(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, cfg BFSConfig, opt FailoverOptions) (BFSResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var res BFSResult
	stats, err := failoverLoop(ctx, f, cfg.ActiveNodes, opt, func(actx context.Context, active []cluster.NodeID) (int32, error) {
		acfg := cfg
		acfg.ActiveNodes = active
		var aerr error
		res, aerr = ParallelBFS(actx, f, dbs, acfg)
		return res.Levels, aerr
	})
	stats.ReplicaReads = res.ReplicaReads
	res.Failover = stats
	return res, err
}

// FailoverKHop is FailoverBFS for the k-hop neighbourhood count.
func FailoverKHop(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, cfg KHopConfig, opt FailoverOptions) (KHopResult, FailoverStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var res KHopResult
	stats, err := failoverLoop(ctx, f, cfg.ActiveNodes, opt, func(actx context.Context, active []cluster.NodeID) (int32, error) {
		acfg := cfg
		acfg.ActiveNodes = active
		var aerr error
		res, aerr = ParallelKHop(actx, f, dbs, acfg)
		return int32(len(res.PerLevel)), aerr
	})
	stats.ReplicaReads = res.ReplicaReads
	return res, *stats, err
}
