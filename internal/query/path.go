package query

import (
	"context"
	"encoding/binary"
	"fmt"

	"mssg/internal/cluster"
	"mssg/internal/graph"
)

// Path reconstruction. The paper's BFS reports the path *length* (its
// figures bucket queries by it); a relationship-analysis user usually
// wants the path itself — which entities connect A to B. When
// BFSConfig.ReturnPath is set, the level-synchronous BFS records each
// vertex's BFS parent (fringe chunks carry (vertex, parent) pairs so the
// owner learns who discovered its vertices) and, once the destination is
// found, node 0 walks the distributed parent chain backwards with
// point-to-point lookups.

// Path-walk wire format: kind byte + one or two vertex ids.
const (
	pkLookup  byte = 0 // node 0 asks the owner for parent[v]
	pkReply   byte = 1 // owner answers with parent[v]
	pkMissing byte = 2 // owner has no parent record for v (corruption)
	pkDone    byte = 3 // node 0 ends the walk; everyone exits
)

func encodePathMsg(kind byte, v graph.VertexID) []byte {
	b := make([]byte, 9)
	b[0] = kind
	binary.LittleEndian.PutUint64(b[1:], uint64(v))
	return b
}

func decodePathMsg(p []byte) (byte, graph.VertexID, error) {
	if len(p) != 9 {
		return 0, 0, fmt.Errorf("query: bad path-walk frame of %d bytes", len(p))
	}
	return p[0], graph.VertexID(binary.LittleEndian.Uint64(p[1:])), nil
}

// fkChunkP frames carry (vertex, parent) pairs instead of bare vertices.
const fkChunkP byte = 2

func encodeChunkPairs(pairs []graph.Edge) []byte {
	// Reuse Edge as a (vertex=Src, parent=Dst) pair carrier.
	b := make([]byte, 1+16*len(pairs))
	b[0] = fkChunkP
	for i, pr := range pairs {
		binary.LittleEndian.PutUint64(b[1+16*i:], uint64(pr.Src))
		binary.LittleEndian.PutUint64(b[9+16*i:], uint64(pr.Dst))
	}
	return b
}

func decodeChunkPairs(p []byte) ([]graph.Edge, error) {
	if len(p) < 1 || (len(p)-1)%16 != 0 {
		return nil, fmt.Errorf("query: bad paired fringe frame of %d bytes", len(p))
	}
	pairs := make([]graph.Edge, (len(p)-1)/16)
	for i := range pairs {
		pairs[i] = graph.Edge{
			Src: graph.VertexID(binary.LittleEndian.Uint64(p[1+16*i:])),
			Dst: graph.VertexID(binary.LittleEndian.Uint64(p[9+16*i:])),
		}
	}
	return pairs, nil
}

// walkParents reconstructs source←dest from the distributed parent maps.
// The roster's first node drives (node 0 on a full fabric); every other
// roster node services lookups until pkDone. Lookups are routed with the
// same vertexRouter the search used, so each parent record is requested
// from the node that actually absorbed the vertex — including replicas
// standing in for a dead primary. Returns the path source..dest on the
// driver, nil elsewhere.
func walkParents(ctx context.Context, ep cluster.Endpoint, rst *roster, rt *vertexRouter, qc queryChannels, cfg *BFSConfig,
	parents map[graph.VertexID]graph.VertexID, pathLen int32) ([]graph.VertexID, error) {
	drv := rst.first()
	self := ep.ID()
	chPathWalk := qc.pathWalk

	if self != drv {
		// Serve lookups until the driver finishes.
		for {
			msg, err := ep.RecvCtx(ctx, chPathWalk)
			if err != nil {
				return nil, err
			}
			kind, v, err := decodePathMsg(msg.Payload)
			if err != nil {
				return nil, err
			}
			switch kind {
			case pkDone:
				return nil, nil
			case pkLookup:
				parent, ok := parents[v]
				reply := encodePathMsg(pkReply, parent)
				if !ok {
					reply = encodePathMsg(pkMissing, 0)
				}
				if err := ep.Send(msg.From, chPathWalk, reply); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("query: unexpected path-walk frame %d on servant", kind)
			}
		}
	}

	// The driver runs the backward walk.
	finish := func(path []graph.VertexID, err error) ([]graph.VertexID, error) {
		for _, q := range rst.nodes {
			if q == drv {
				continue
			}
			if sendErr := ep.Send(q, chPathWalk, encodePathMsg(pkDone, 0)); sendErr != nil && err == nil {
				err = sendErr
			}
		}
		return path, err
	}

	path := []graph.VertexID{cfg.Dest}
	v := cfg.Dest
	for v != cfg.Source {
		if int32(len(path)) > pathLen+1 {
			return finish(nil, fmt.Errorf("query: parent chain longer than path length %d", pathLen))
		}
		owner, _, ok := rt.route(v)
		if cfg.Ownership == BroadcastFringe {
			// Every roster node absorbed every discovery; deal lookups out
			// deterministically instead of insisting on the owner.
			owner, ok = rst.authority(v), true
		}
		if !ok {
			return finish(nil, fmt.Errorf("query: no live replica holds the parent of vertex %d: %w", v, ErrNoLiveReplica))
		}
		var parent graph.VertexID
		if owner == drv {
			pv, ok := parents[v]
			if !ok {
				return finish(nil, fmt.Errorf("query: no parent recorded for vertex %d", v))
			}
			parent = pv
		} else {
			if err := ep.Send(owner, chPathWalk, encodePathMsg(pkLookup, v)); err != nil {
				return finish(nil, err)
			}
			msg, err := ep.RecvCtx(ctx, chPathWalk)
			if err != nil {
				return finish(nil, err)
			}
			kind, pv, err := decodePathMsg(msg.Payload)
			if err != nil {
				return finish(nil, err)
			}
			if kind == pkMissing {
				return finish(nil, fmt.Errorf("query: node %d has no parent for vertex %d", owner, v))
			}
			if kind != pkReply {
				return finish(nil, fmt.Errorf("query: unexpected path-walk frame %d on driver", kind))
			}
			parent = pv
		}
		path = append(path, parent)
		v = parent
	}
	// Reverse into source..dest order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return finish(path, nil)
}
