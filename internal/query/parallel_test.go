package query

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/gen"
	"mssg/internal/graph"
)

// TestParallelMatchesSerialBFS is the deterministic cross-check: on
// scale-free graphs, BFS with Workers=4 must report exactly what
// Workers=1 reports — for both ownership modes and both algorithm
// variants. Level-synchronous fringes are sets, so every BFSResult
// field (including the work counters) is independent of the
// scheduling-dependent order workers discover vertices in.
func TestParallelMatchesSerialBFS(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "par", Vertices: 600, M: 2, HubFraction: 0.15, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	cases := []struct {
		name      string
		ownership Ownership
		pipelined bool
	}{
		{"known-mapping/levelsync", KnownMapping, false},
		{"known-mapping/pipelined", KnownMapping, true},
		{"broadcast/levelsync", BroadcastFringe, false},
		{"broadcast/pipelined", BroadcastFringe, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := cluster.NewInProc(p, 0)
			defer f.Close()
			var dbs = partition(t, edges, p)
			if tc.ownership == BroadcastFringe {
				dbs = scatter(t, edges, p)
			}
			for dest := graph.VertexID(1); dest < 600; dest += 61 {
				base := BFSConfig{
					Source: 0, Dest: dest,
					Ownership: tc.ownership, Pipelined: tc.pipelined,
					// Small threshold so the pipelined run actually
					// exercises mid-level chunk sends from workers.
					Threshold: 8,
				}
				serial := base
				serial.Workers = 1
				want, err := ParallelBFS(context.Background(), f, dbs, serial)
				if err != nil {
					t.Fatalf("serial BFS 0->%d: %v", dest, err)
				}
				par := base
				par.Workers = 4
				got, err := ParallelBFS(context.Background(), f, dbs, par)
				if err != nil {
					t.Fatalf("parallel BFS 0->%d: %v", dest, err)
				}
				if tc.pipelined && tc.ownership == BroadcastFringe {
					// FringeSent is timing-dependent here regardless of
					// Workers: a broadcast vertex that arrives mid-level
					// is marked before local expansion re-discovers it,
					// suppressing the re-broadcast. Every other field is
					// a function of the (deterministic) level sets.
					got.FringeSent, want.FringeSent = 0, 0
				}
				// Per-level latencies are wall-clock measurements, not
				// functions of the level sets; blank them before the
				// deterministic-equality check.
				for i := range got.LevelStats {
					got.LevelStats[i].ExpandNs, got.LevelStats[i].TotalNs = 0, 0
				}
				for i := range want.LevelStats {
					want.LevelStats[i].ExpandNs, want.LevelStats[i].TotalNs = 0, 0
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("0->%d: workers=4 returned %+v, workers=1 returned %+v", dest, got, want)
				}
			}
		})
	}
}

// TestParallelReturnPathFallsBackToSerial: ReturnPath queries need
// per-vertex parent attribution, so Workers>1 must silently fall back
// to the serial loop and still reconstruct a correct path.
func TestParallelReturnPathFallsBackToSerial(t *testing.T) {
	edges := chainEdges(12)
	f := cluster.NewInProc(3, 0)
	defer f.Close()
	dbs := partition(t, edges, 3)
	res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 0, Dest: 12, ReturnPath: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Path) != 13 {
		t.Fatalf("found=%v path=%v, want the 13-vertex chain", res.Found, res.Path)
	}
	for i, v := range res.Path {
		if v != graph.VertexID(i) {
			t.Fatalf("path[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestShardedVisited runs the shared Visited contract checks, then
// hammers MarkIfNew from 8 goroutines: each vertex must be won exactly
// once, and Count must equal the number of distinct vertices.
func TestShardedVisited(t *testing.T) {
	testVisited(t, NewShardedVisited())

	s := NewShardedVisited()
	const (
		goroutines = 8
		vertices   = 5000
	)
	wins := make([]int64, vertices) // slot per vertex, counted after join
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, vertices)
			for v := 0; v < vertices; v++ {
				isNew, err := s.MarkIfNew(graph.VertexID(v), 3)
				if err != nil {
					t.Errorf("MarkIfNew: %v", err)
					return
				}
				if isNew {
					local[v]++
				}
			}
			mu.Lock()
			for v, n := range local {
				wins[v] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for v, n := range wins {
		if n != 1 {
			t.Fatalf("vertex %d marked new %d times, want exactly 1", v, n)
		}
	}
	if s.Count() != vertices {
		t.Fatalf("Count() = %d, want %d", s.Count(), vertices)
	}
	if l, _ := s.Level(graph.VertexID(7)); l != 3 {
		t.Fatalf("Level(7) = %d, want 3", l)
	}
}

// TestEnsureConcurrentVisited: already-safe structures pass through
// unwrapped; plain ones get the mutex wrapper.
func TestEnsureConcurrentVisited(t *testing.T) {
	s := NewShardedVisited()
	if got := ensureConcurrentVisited(s); got != Visited(s) {
		t.Fatalf("ShardedVisited was wrapped; want pass-through")
	}
	m := NewMemVisited()
	w := ensureConcurrentVisited(m)
	if w == Visited(m) {
		t.Fatalf("MemVisited passed through unwrapped")
	}
	// The wrapper must serialize: concurrent marks on a plain map would
	// trip the race detector without it.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := 0; v < 500; v++ {
				if _, err := w.MarkIfNew(graph.VertexID(v), 1); err != nil {
					t.Errorf("MarkIfNew: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if w.Count() != 500 {
		t.Fatalf("Count() = %d, want 500", w.Count())
	}
}
