package query

import (
	"context"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/graph"
)

func TestComponentChain(t *testing.T) {
	// A 10-edge chain: component size 11, eccentricity from vertex 0 is 10.
	f := cluster.NewInProc(3, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(10), 3)
	res, err := ParallelComponent(context.Background(), f, dbs, 0, KnownMapping)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 11 {
		t.Fatalf("Size = %d, want 11", res.Size)
	}
	if res.Eccentricity != 10 {
		t.Fatalf("Eccentricity = %d, want 10", res.Eccentricity)
	}
	// From the middle, eccentricity halves.
	res, err = ParallelComponent(context.Background(), f, dbs, 5, KnownMapping)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 11 || res.Eccentricity != 5 {
		t.Fatalf("from middle: size %d ecc %d, want 11/5", res.Size, res.Eccentricity)
	}
}

func TestComponentDisconnected(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 50, Dst: 51}}
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, edges, 2)
	a, err := ParallelComponent(context.Background(), f, dbs, 0, KnownMapping)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != 3 {
		t.Fatalf("component of 0 has size %d, want 3", a.Size)
	}
	b, err := ParallelComponent(context.Background(), f, dbs, 50, KnownMapping)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size != 2 || b.Eccentricity != 1 {
		t.Fatalf("component of 50: size %d ecc %d, want 2/1", b.Size, b.Eccentricity)
	}
}

func TestComponentIsolatedVertex(t *testing.T) {
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(3), 2)
	res, err := ParallelComponent(context.Background(), f, dbs, 77, KnownMapping)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 1 || res.Eccentricity != 0 {
		t.Fatalf("isolated vertex: size %d ecc %d, want 1/0", res.Size, res.Eccentricity)
	}
}

func TestComponentAnalysisRegistry(t *testing.T) {
	a, ok := LookupAnalysis("component")
	if !ok {
		t.Fatal("component not registered")
	}
	f := cluster.NewInProc(2, 0)
	defer f.Close()
	dbs := partition(t, chainEdges(4), 2)
	out, err := a.Run(context.Background(), f, dbs, map[string]string{"source": "2"})
	if err != nil {
		t.Fatal(err)
	}
	res := out.(ComponentResult)
	if res.Size != 5 {
		t.Fatalf("component size = %d, want 5", res.Size)
	}
	if _, err := a.Run(context.Background(), f, dbs, nil); err == nil {
		t.Fatal("missing source accepted")
	}
}
