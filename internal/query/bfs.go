package query

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
)

// ErrPartialCoverage marks a BFS that failed because a back-end node died
// (or timed out) mid-search: whatever was explored covers only part of
// the declustered graph, so a "not found" cannot be trusted. Callers
// detect it with errors.Is and either retry on the surviving fabric or
// surface the partial result to the user.
var ErrPartialCoverage = errors.New("query: partial graph coverage")

// Ownership selects how the BFS routes next-level fringe vertices
// (paper §4.2).
type Ownership int

const (
	// KnownMapping uses the globally known GID % p vertex→node mapping:
	// each discovered vertex is sent only to its owner.
	KnownMapping Ownership = iota
	// BroadcastFringe broadcasts discovered vertices to all nodes, as
	// required for edge-granularity storage or unknown mappings.
	BroadcastFringe
)

func (o Ownership) String() string {
	if o == KnownMapping {
		return "known-mapping"
	}
	return "broadcast"
}

// BFSConfig parameterizes one parallel out-of-core BFS.
type BFSConfig struct {
	Source graph.VertexID
	Dest   graph.VertexID
	// Ownership selects fringe routing (paper Algorithm 1, lines 16-21).
	Ownership Ownership
	// Pipelined selects Algorithm 2 (threshold-chunked, overlapped
	// communication) instead of Algorithm 1.
	Pipelined bool
	// Threshold is Algorithm 2's chunk size; <= 0 means 1024.
	Threshold int
	// MaxLevels aborts runaway searches; <= 0 means 64 (far beyond any
	// small-world diameter).
	MaxLevels int
	// Prefetch warms the storage cache for each level's fringe with
	// offset-sorted reads before expansion, when the backend supports it
	// (the paper's §4.2 pre-fetching optimization; grDB implements it).
	Prefetch bool
	// Filter restricts expansion to neighbours whose per-vertex metadata
	// passes a Listing 3.1 filter — semantic traversal when vertex types
	// are stored as metadata (e.g. FilterEqual with ref = a type id walks
	// only vertices of that type). The zero value means no filtering.
	Filter MetaFilter
	// ReturnPath asks the level-synchronous BFS to also reconstruct the
	// shortest path (BFSResult.Path). Costs (vertex, parent) pairs on the
	// wire and per-vertex (not batched) expansion; unsupported by the
	// pipelined variant.
	ReturnPath bool
	// Workers is the number of goroutines each back-end node uses to
	// expand a level's fringe concurrently: workers pull vertices from a
	// shared queue, retrieve adjacency in parallel, and mark discoveries
	// in a sharded visited set. 0 means GOMAXPROCS; 1 restores the
	// paper's serial per-node expansion. Values above 1 take effect only
	// when the backend reports ConcurrentReaders and are ignored for
	// ReturnPath queries and batch-scan backends (StreamDB), which fall
	// back to serial expansion.
	Workers int
	// OwnerOf overrides the GID %% p vertex→node mapping under
	// KnownMapping ownership — used with directory-based clustering
	// policies (paper §3.2: "the Ingestion service needs to keep track
	// of the owner of that vertex's edges"). Must be safe for concurrent
	// use and agree with how the graph was actually declustered. Nil
	// selects the modulo mapping.
	OwnerOf func(v graph.VertexID) cluster.NodeID
	// NewVisited constructs the per-node visited structure; nil means
	// in-memory. It is called once per node.
	NewVisited func(node cluster.NodeID) (Visited, error)
	// ActiveNodes restricts the run to a subset of the fabric's nodes —
	// the failover path's surviving back-ends. Must be ascending,
	// duplicate-free, and identical for the whole run; nil means every
	// node. Excluded nodes are never sent to, received from, or counted
	// in collectives, so a query completes with dead peers on the fabric.
	ActiveNodes []cluster.NodeID
	// ReplicasOf returns a vertex's ordered replica list (primary first,
	// matching ingest.ReplicaPolicy.Replicas); fringe routing walks it
	// and reads from the first live replica. ReplicasOf[0] must agree
	// with OwnerOf. Nil means unreplicated: a vertex whose owner is
	// excluded is unreachable.
	ReplicasOf func(v graph.VertexID) []cluster.NodeID
	// AllowPartial degrades a shard with no live replica to best-effort:
	// instead of failing with ErrNoLiveReplica, unreachable fringe
	// vertices are dropped, counted in FringeDropped, and the result
	// reports Coverage < 1. Found/PathLength remain exact when Found is
	// true; a "not found" is only trusted for the covered fraction.
	AllowPartial bool
}

func (c *BFSConfig) threshold() int {
	if c.Threshold <= 0 {
		return 1024
	}
	return c.Threshold
}

func (c *BFSConfig) maxLevels() int32 {
	if c.MaxLevels <= 0 {
		return 64
	}
	return int32(c.MaxLevels)
}

// ownerOf resolves the vertex→node mapping in effect.
func (c *BFSConfig) ownerOf(v graph.VertexID, p int) cluster.NodeID {
	if c.OwnerOf != nil {
		return c.OwnerOf(v)
	}
	return cluster.Owner(int64(v), p)
}

// BFSResult is the combined outcome of a parallel BFS.
type BFSResult struct {
	// Found reports whether Dest was reached.
	Found bool
	// PathLength is the BFS level at which Dest was found (the paper's
	// levcnt); -1 if not found.
	PathLength int32
	// EdgesTraversed is the total number of adjacency entries scanned
	// across all nodes (the numerator of Figs 5.7 and 5.9).
	EdgesTraversed int64
	// VerticesVisited counts marked vertices across all nodes.
	VerticesVisited int64
	// FringeSent counts fringe vertices shipped to other nodes — the
	// communication volume a good clustering policy minimizes (§3.2).
	FringeSent int64
	// Path is the reconstructed shortest path source..dest when
	// BFSConfig.ReturnPath was set and the destination was found.
	Path []graph.VertexID
	// Levels is the number of BFS levels executed.
	Levels int32
	// LevelStats is the per-level breakdown: fringe size (summed across
	// nodes) and expansion/total latency (max across nodes, since the
	// level barrier makes the slowest node the level's wall-clock).
	LevelStats []LevelStat
	// ReplicaReads counts fringe vertices served by a non-primary
	// replica because the primary was excluded from the run.
	ReplicaReads int64
	// FringeDropped counts fringe vertices with no live replica, dropped
	// under AllowPartial (or just before the run failed without it).
	FringeDropped int64
	// Coverage is the explored fraction of the reachable set:
	// visited/(visited+dropped). 1 for a complete search.
	Coverage float64
	// Failover is filled by FailoverBFS with its retry accounting; plain
	// ParallelBFS leaves it nil.
	Failover *FailoverStats
	// Generation is the combined graph generation the query was pinned to
	// at admission (graphdb.GraphsGeneration) — the committed graph state
	// this result reflects. Stamped by the resident Engine; zero for
	// direct ParallelBFS calls.
	Generation uint64 `json:"generation,omitempty"`
}

// LevelStat describes one BFS level. Fields marshal directly into
// mssg-bench's BENCH_*.json per-level breakdown.
type LevelStat struct {
	Level    int32 `json:"level"`
	Fringe   int64 `json:"fringe"`
	ExpandNs int64 `json:"expand_ns"`
	TotalNs  int64 `json:"total_ns"`
	// ReplicaReads and Dropped carry the per-level failover accounting;
	// both stay zero on a healthy full-roster run.
	ReplicaReads int64 `json:"replica_reads,omitempty"`
	Dropped      int64 `json:"dropped,omitempty"`
}

// fringe wire format: kind byte, then count little-endian uint64 ids.
const (
	fkChunk byte = 0 // fringe vertex ids
	fkDone  byte = 1 // sender finished this level
)

func encodeChunk(ids []graph.VertexID) []byte {
	b := make([]byte, 1+8*len(ids))
	b[0] = fkChunk
	for i, v := range ids {
		binary.LittleEndian.PutUint64(b[1+8*i:], uint64(v))
	}
	return b
}

func decodeChunk(p []byte) ([]graph.VertexID, error) {
	if len(p) < 1 || (len(p)-1)%8 != 0 {
		return nil, fmt.Errorf("query: bad fringe frame of %d bytes", len(p))
	}
	ids := make([]graph.VertexID, (len(p)-1)/8)
	for i := range ids {
		ids[i] = graph.VertexID(binary.LittleEndian.Uint64(p[1+8*i:]))
	}
	return ids, nil
}

// ParallelBFS runs one BFS over the fabric: node i serves partition i
// through dbs[i]. It blocks until every node finishes and returns the
// combined result. The dbs slice length must equal the fabric size.
//
// The run leases its own channel namespace, so any number of ParallelBFS
// (or other query) calls may share one fabric concurrently. Cancelling
// ctx unblocks every node's pending receive and aborts the search with
// ctx.Err().
func ParallelBFS(ctx context.Context, f cluster.Fabric, dbs []graphdb.Graph, cfg BFSConfig) (BFSResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(dbs) != f.Nodes() {
		return BFSResult{}, fmt.Errorf("query: %d databases for %d nodes", len(dbs), f.Nodes())
	}
	rst, err := newRoster(f.Nodes(), cfg.ActiveNodes)
	if err != nil {
		return BFSResult{}, err
	}
	qc, err := leaseChannels()
	if err != nil {
		return BFSResult{}, err
	}
	// An aborted query can leave undelivered chunks queued; drain them
	// before the namespace goes back in the pool so they cannot leak
	// into a future query that re-leases this block.
	defer qc.ns.DrainAndRelease(f)
	results := make([]BFSResult, f.Nodes())
	err = cluster.RunOn(f, rst.runNodes(), func(ep cluster.Endpoint) error {
		// Store even a failed node's partial result: FailoverBFS reads
		// Levels off it to count how far a degraded attempt got.
		r, err := bfsNode(ctx, ep, rst, qc, dbs[ep.ID()], cfg)
		results[ep.ID()] = r
		return err
	})
	if err != nil {
		partial := BFSResult{PathLength: -1}
		for _, n := range rst.nodes {
			if results[n].Levels > partial.Levels {
				partial.Levels = results[n].Levels
			}
		}
		return partial, err
	}
	// Node results agree on Found/PathLength/Levels (collectively
	// decided); work counters are per-node sums.
	combined := results[rst.first()]
	combined.EdgesTraversed = 0
	combined.VerticesVisited = 0
	combined.FringeSent = 0
	combined.ReplicaReads = 0
	combined.FringeDropped = 0
	combined.Path = nil
	combined.LevelStats = nil
	for _, n := range rst.nodes {
		r := results[n]
		combined.EdgesTraversed += r.EdgesTraversed
		combined.VerticesVisited += r.VerticesVisited
		combined.FringeSent += r.FringeSent
		combined.ReplicaReads += r.ReplicaReads
		combined.FringeDropped += r.FringeDropped
		if r.Path != nil {
			combined.Path = r.Path
		}
		for i, ls := range r.LevelStats {
			if i >= len(combined.LevelStats) {
				combined.LevelStats = append(combined.LevelStats, LevelStat{Level: ls.Level})
			}
			c := &combined.LevelStats[i]
			c.Fringe += ls.Fringe
			c.ReplicaReads += ls.ReplicaReads
			c.Dropped += ls.Dropped
			if ls.ExpandNs > c.ExpandNs {
				c.ExpandNs = ls.ExpandNs
			}
			if ls.TotalNs > c.TotalNs {
				c.TotalNs = ls.TotalNs
			}
		}
	}
	combined.Coverage = 1
	if combined.FringeDropped > 0 {
		combined.Coverage = float64(combined.VerticesVisited) /
			float64(combined.VerticesVisited+combined.FringeDropped)
		qm().foDropped.Add(combined.FringeDropped)
		if cfg.AllowPartial {
			qm().foPartialAllowed.Inc()
			obs.DefaultTracer().Emit("bfs.partial_allowed", map[string]string{
				"dropped": strconv.FormatInt(combined.FringeDropped, 10),
			})
		}
	}
	if combined.ReplicaReads > 0 {
		qm().foReplicaReads.Add(combined.ReplicaReads)
	}
	return combined, nil
}

// bfsNode is one node's share of the search; it dispatches to the
// level-synchronous or pipelined variant. A failure caused by a dead or
// unresponsive peer is wrapped in ErrPartialCoverage: the search did not
// deadlock, but it also did not see the whole graph.
func bfsNode(ctx context.Context, ep cluster.Endpoint, rst *roster, qc queryChannels, db graphdb.Graph, cfg BFSConfig) (BFSResult, error) {
	visited, release, err := newVisited(ep.ID(), cfg, cfg.expandWorkers(db))
	if err != nil {
		return BFSResult{}, err
	}
	defer release()
	// On a partial roster the endpoint is filtered: down-declarations for
	// already-excluded peers no longer abort receives.
	ep = wrapActive(ep, rst)
	var res BFSResult
	if cfg.Pipelined {
		if cfg.ReturnPath {
			return BFSResult{}, fmt.Errorf("query: ReturnPath requires the level-synchronous BFS")
		}
		res, err = bfsPipelined(ctx, ep, rst, qc, db, visited, cfg)
	} else {
		res, err = bfsLevelSync(ctx, ep, rst, qc, db, visited, cfg)
	}
	if err != nil && (errors.Is(err, cluster.ErrNodeDown) || errors.Is(err, cluster.ErrTimeout)) {
		qm().partial.Inc()
		obs.DefaultTracer().Emit("bfs.partial_coverage", map[string]string{
			"node":  strconv.Itoa(int(ep.ID())),
			"level": strconv.Itoa(int(res.Levels)),
		})
		err = fmt.Errorf("%w: %w", ErrPartialCoverage, err)
	}
	return res, err
}

// newVisited builds the per-node visited structure and the release that
// returns it when the query finishes. With parallel expansion in effect
// it must tolerate concurrent markers: the default becomes the
// striped-lock ShardedVisited, and caller-provided structures (e.g.
// ExtVisited) are wrapped in a mutex unless they declare themselves
// concurrency-safe via ConcurrentVisited. The default structures come
// from (and go back to) the per-query scratch pools; caller-provided
// ones are Closed instead.
func newVisited(node cluster.NodeID, cfg BFSConfig, workers int) (Visited, func(), error) {
	if cfg.NewVisited == nil {
		var v Visited
		if workers > 1 {
			v = getShardedVisited()
		} else {
			v = getMemVisited()
		}
		return v, func() { releaseVisited(v) }, nil
	}
	v, err := cfg.NewVisited(node)
	if err != nil {
		return nil, nil, err
	}
	closer := v
	if workers > 1 {
		v = ensureConcurrentVisited(v)
	}
	return v, func() { closer.Close() }, nil
}

// bfsLevelSync is Algorithm 1: expand the whole fringe, exchange the next
// fringe, synchronize, repeat. The termination conditions of the paper
// ('found' message; exhausted graph) are realized with an all-reduce per
// level, which decides found/empty at identical points on every node.
func bfsLevelSync(ctx context.Context, ep cluster.Endpoint, rst *roster, qc queryChannels, db graphdb.Graph, visited Visited, cfg BFSConfig) (BFSResult, error) {
	coll := cluster.NewCollective(ep, qc.collUp, qc.collDn).WithContext(ctx)
	if rst.partial() {
		coll = coll.WithParticipants(rst.nodes)
	}
	p := ep.Nodes()
	self := ep.ID()
	rt := &vertexRouter{
		rst:      rst,
		owner:    func(v graph.VertexID) cluster.NodeID { return cfg.ownerOf(v, p) },
		replicas: cfg.ReplicasOf,
	}

	res := BFSResult{PathLength: -1}
	if cfg.Source == cfg.Dest {
		res.Found = true
		res.PathLength = 0
		if cfg.ReturnPath {
			res.Path = []graph.VertexID{cfg.Source}
		}
		return res, nil
	}

	// Seed: the source's first live replica holds the level-0 fringe
	// (the owner, on a full roster). Under broadcast ownership every
	// roster node seeds (local adjacency of non-local vertices is empty,
	// step 5 of Algorithm 1). A source with no live replica is dropped —
	// deterministically on the roster's first node so the level-1 barrier
	// sees exactly one drop on every node's account.
	var fringe []graph.VertexID
	var seedDropped int64
	if cfg.Ownership == BroadcastFringe {
		if _, err := visited.MarkIfNew(cfg.Source, 0); err != nil {
			return res, err
		}
		fringe = append(fringe, cfg.Source)
	} else if dest, replica, ok := rt.route(cfg.Source); !ok {
		if self == rst.first() {
			seedDropped = 1
		}
	} else if dest == self {
		if _, err := visited.MarkIfNew(cfg.Source, 0); err != nil {
			return res, err
		}
		fringe = append(fringe, cfg.Source)
		if replica {
			res.ReplicaReads++
		}
	}

	// parents records each vertex's BFS predecessor for ReturnPath.
	var parents map[graph.VertexID]graph.VertexID
	if cfg.ReturnPath {
		parents = make(map[graph.VertexID]graph.VertexID)
	}

	prefetcher, _ := db.(graphdb.Prefetcher)
	asyncPf, _ := db.(graphdb.AsyncPrefetcher)
	// pending holds the async prefetch jobs issued for the fringe about
	// to be expanded (the pipelined refinement of the §4.2 prefetch):
	// once a level's local discoveries are known, their chains start
	// warming in the background while this goroutine runs the exchange
	// and the level barrier. Jobs are joined at the top of the next
	// level; the deferred cancel guarantees no prefetch goroutine
	// outlives the query on any exit path.
	var pending []graphdb.PrefetchJob
	waitPending := func() {
		// Prefetch errors are advisory: a failed job means the cache was
		// not fully warmed, never that data is wrong — expansion surfaces
		// any real I/O failure.
		for _, j := range pending {
			_ = j.Wait()
		}
		pending = pending[:0]
	}
	defer func() {
		for _, j := range pending {
			j.Cancel()
		}
		waitPending()
	}()
	filterOp, filterRef := cfg.Filter.metaOp()
	nw := cfg.expandWorkers(db)
	adj := getAdjList()
	defer putAdjList(adj)
	met := qm()
	met.runs.Inc()
	runSpan := obs.DefaultTracer().StartSpan("bfs.levelsync", map[string]string{
		"node": strconv.Itoa(int(self)),
	})
	defer runSpan.End()
	var levcnt int32
	for levcnt < cfg.maxLevels() {
		// On a one-node fabric no receive ever blocks, so this per-level
		// check is the only place a lone node observes cancellation.
		if err := ctx.Err(); err != nil {
			return res, err
		}
		levcnt++
		levelStart := time.Now()
		met.fringe.Observe(int64(len(fringe)))
		lvlSpan := runSpan.Child("bfs.level", map[string]string{
			"level":  strconv.Itoa(int(levcnt)),
			"fringe": strconv.Itoa(len(fringe)),
		})
		if cfg.Prefetch {
			switch {
			case len(pending) > 0:
				// The previous level already started warming this fringe;
				// join the pipeline before expanding.
				waitPending()
			case asyncPf != nil:
				// First level (or a backend that appeared mid-query):
				// nothing is in flight yet, so issue and join immediately —
				// the fan-out across prefetch workers still beats the
				// serial sweep.
				pending = append(pending, asyncPf.PrefetchAsync(ctx, fringe))
				waitPending()
			case prefetcher != nil:
				if _, err := prefetcher.PrefetchAdjacency(fringe); err != nil {
					return res, err
				}
			}
		}

		foundLocal := int64(0)
		outbound := make([][]graph.VertexID, p)
		outboundPairs := make([][]graph.Edge, p)
		var localNext []graph.VertexID
		levelDropped := seedDropped
		seedDropped = 0
		var levelReplicaReads int64

		// classify routes one newly marked vertex discovered from parent.
		classify := func(u, parent graph.VertexID) {
			if cfg.Ownership == KnownMapping {
				dest, replica, ok := rt.route(u)
				if !ok {
					// No live replica serves u: its subtree is out of
					// reach. The barrier below turns a non-zero drop count
					// into ErrNoLiveReplica unless AllowPartial.
					levelDropped++
					return
				}
				res.VerticesVisited++
				if parents != nil {
					parents[u] = parent
				}
				if replica {
					levelReplicaReads++
				}
				if dest == self {
					localNext = append(localNext, u)
					return
				}
				if cfg.ReturnPath {
					outboundPairs[dest] = append(outboundPairs[dest], graph.Edge{Src: u, Dst: parent})
				} else {
					outbound[dest] = append(outbound[dest], u)
				}
				res.FringeSent++
				return
			}
			res.VerticesVisited++
			if parents != nil {
				parents[u] = parent
			}
			localNext = append(localNext, u)
			for _, q := range rst.nodes {
				if q == self {
					continue
				}
				if cfg.ReturnPath {
					outboundPairs[q] = append(outboundPairs[q], graph.Edge{Src: u, Dst: parent})
				} else {
					outbound[q] = append(outbound[q], u)
				}
				res.FringeSent++
			}
		}

		if cfg.ReturnPath {
			// Per-vertex expansion: the batch API loses which fringe
			// vertex produced each neighbour, and parents need it.
			for _, v := range fringe {
				adj.Reset()
				if err := db.AdjacencyUsingMetadata(v, adj, filterRef, filterOp); err != nil {
					return res, err
				}
				res.EdgesTraversed += int64(adj.Len())
				for _, u := range adj.IDs() {
					if u == cfg.Dest {
						foundLocal = 1
					}
					isNew, err := visited.MarkIfNew(u, levcnt)
					if err != nil {
						return res, err
					}
					if isNew {
						classify(u, v)
					}
				}
			}
		} else if nw > 1 {
			// Parallel expansion: workers split the fringe and only the
			// exchange below runs on this goroutine. Levels are sets, so
			// the scheduling-dependent order inside localNext/outbound
			// does not change any BFSResult field.
			acc, err := expandParallel(ctx, ep, rt, qc.fringe, db, visited, &cfg, fringe, levcnt, nw, 0)
			if err != nil {
				return res, err
			}
			if acc.found {
				foundLocal = 1
			}
			res.EdgesTraversed += acc.edgesTraversed
			res.VerticesVisited += acc.verticesVisited
			res.FringeSent += acc.fringeSent
			levelDropped += acc.dropped
			levelReplicaReads += acc.replicaReads
			localNext = acc.localNext
			outbound = acc.outbound
		} else {
			// Expand the local fringe in one batch (StreamDB requires
			// it; everyone else benefits from it too).
			adj.Reset()
			if err := graphdb.AdjacencyBatch(db, fringe, adj, filterRef, filterOp); err != nil {
				return res, err
			}
			res.EdgesTraversed += int64(adj.Len())
			for _, u := range adj.IDs() {
				if u == cfg.Dest {
					foundLocal = 1
				}
				isNew, err := visited.MarkIfNew(u, levcnt)
				if err != nil {
					return res, err
				}
				if isNew {
					classify(u, 0)
				}
			}
		}

		expandNs := time.Since(levelStart).Nanoseconds()
		met.expand.Observe(expandNs)
		met.levelHist(levcnt).Observe(expandNs)
		exchangeStart := time.Now()

		// Pipeline: the locally discovered share of the next fringe is
		// final, so its chains start warming now — overlapped with the
		// sends/receives and the level barrier below.
		if cfg.Prefetch && asyncPf != nil && len(localNext) > 0 {
			pending = append(pending, asyncPf.PrefetchAsync(ctx, localNext))
		}

		// Exchange: send each roster peer its share (possibly empty), then
		// a done marker; collect peers' chunks until all markers arrive.
		for _, q := range rst.nodes {
			if q == self {
				continue
			}
			if len(outbound[q]) > 0 {
				if err := ep.Send(q, qc.fringe, encodeChunk(outbound[q])); err != nil {
					return res, err
				}
			}
			if len(outboundPairs[q]) > 0 {
				if err := ep.Send(q, qc.fringe, encodeChunkPairs(outboundPairs[q])); err != nil {
					return res, err
				}
			}
			if err := ep.Send(q, qc.fringe, []byte{fkDone}); err != nil {
				return res, err
			}
		}
		next := localNext
		absorb := func(u, parent graph.VertexID) error {
			// Receive-side dedup (Algorithm 2 lines 24-27): a vertex
			// already seen here is not re-expanded.
			isNew, err := visited.MarkIfNew(u, levcnt)
			if err != nil {
				return err
			}
			if isNew {
				res.VerticesVisited++
				if parents != nil {
					parents[u] = parent
				}
				next = append(next, u)
			}
			return nil
		}
		for done := 0; done < rst.size()-1; {
			msg, err := ep.RecvCtx(ctx, qc.fringe)
			if err != nil {
				return res, err
			}
			switch msg.Payload[0] {
			case fkDone:
				done++
			case fkChunk:
				ids, err := decodeChunk(msg.Payload)
				if err != nil {
					return res, err
				}
				for _, u := range ids {
					if err := absorb(u, 0); err != nil {
						return res, err
					}
				}
			case fkChunkP:
				pairs, err := decodeChunkPairs(msg.Payload)
				if err != nil {
					return res, err
				}
				for _, pr := range pairs {
					if err := absorb(pr.Src, pr.Dst); err != nil {
						return res, err
					}
				}
			default:
				return res, fmt.Errorf("query: unknown fringe frame kind %d", msg.Payload[0])
			}
		}
		met.exchange.ObserveSince(exchangeStart)
		// Pipeline: vertices absorbed from peers (next beyond the local
		// prefix) warm during the level barrier.
		if cfg.Prefetch && asyncPf != nil && len(next) > len(localNext) {
			pending = append(pending, asyncPf.PrefetchAsync(ctx, next[len(localNext):]))
		}
		lvlSpan.End()
		res.ReplicaReads += levelReplicaReads
		res.FringeDropped += levelDropped
		res.LevelStats = append(res.LevelStats, LevelStat{
			Level:        levcnt,
			Fringe:       int64(len(fringe)),
			ExpandNs:     expandNs,
			TotalNs:      time.Since(levelStart).Nanoseconds(),
			ReplicaReads: levelReplicaReads,
			Dropped:      levelDropped,
		})

		// Level barrier + termination checks.
		foundGlobal, err := coll.AllReduceMax(foundLocal)
		if err != nil {
			return res, err
		}
		res.Levels = levcnt
		if foundGlobal > 0 {
			// Found at level L is exact even with drops: a dropped vertex
			// could only have yielded paths of length >= L+1.
			res.Found = true
			res.PathLength = levcnt
			if cfg.ReturnPath {
				path, err := walkParents(ctx, ep, rst, rt, qc, &cfg, parents, levcnt)
				if err != nil {
					return res, err
				}
				res.Path = path
			}
			return res, nil
		}
		total, err := coll.AllReduceSum(int64(len(next)))
		if err != nil {
			return res, err
		}
		// Coordinated drop check: on a partial roster every node runs one
		// extra reduction so they all learn — at the same point in the
		// collective schedule — whether any peer hit a replica-less shard,
		// and either all fail or all continue. Never checked mid-level: a
		// unilateral return would leave peers waiting at the exchange.
		if rst.partial() {
			dropTotal, err := coll.AllReduceSum(levelDropped)
			if err != nil {
				return res, err
			}
			if dropTotal > 0 && !cfg.AllowPartial {
				return res, fmt.Errorf("query: level %d dropped %d fringe vertices: %w",
					levcnt, dropTotal, ErrNoLiveReplica)
			}
		}
		if total == 0 {
			return res, nil
		}
		fringe = next
	}
	return res, fmt.Errorf("query: BFS exceeded %d levels", cfg.maxLevels())
}
