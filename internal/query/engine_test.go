package query

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// engineGraph builds a shared fabric + partitioned synthetic graph and a
// resident engine over them.
func engineGraph(t *testing.T, nodes int, cfg EngineConfig) (*Engine, cluster.Fabric, []graphdb.Graph, []graph.Edge) {
	t.Helper()
	edges, err := gen.Generate(gen.Config{Name: "engine-test", Vertices: 400, M: 4, Seed: 11})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	f := cluster.NewInProc(nodes, 0)
	t.Cleanup(func() { f.Close() })
	dbs := partition(t, edges, nodes)
	e, err := NewEngine(f, dbs, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e, f, dbs, edges
}

// TestEngineConcurrentMatchesSerial is the headline race test: many
// BFS + k-hop queries in flight at once on ONE shared fabric must return
// exactly what the same queries return serially. Run under -race (make
// race / make ci) this also proves the namespace isolation: any channel
// collision between interleaved queries would corrupt distances.
func TestEngineConcurrentMatchesSerial(t *testing.T) {
	e, f, dbs, edges := engineGraph(t, 4, EngineConfig{MaxInFlight: 8, QueueDepth: 64})

	dist := refDist(edges, 3)
	type bfsCase struct {
		dest graph.VertexID
		want int32 // -1 = unreachable
	}
	var cases []bfsCase
	for d := graph.VertexID(0); d < 40; d++ {
		want := int32(-1)
		if lv, ok := dist[d]; ok {
			want = lv
		}
		cases = append(cases, bfsCase{dest: d, want: want})
	}

	// Serial k-hop reference on the quiet fabric.
	khSerial, err := ParallelKHop(context.Background(), f, dbs, KHopConfig{Source: 3, K: 3})
	if err != nil {
		t.Fatalf("serial k-hop: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(cases)+8)
	for _, c := range cases {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, err := e.BFS(context.Background(), BFSConfig{Source: 3, Dest: c.dest, Pipelined: c.dest%2 == 0})
			if err != nil {
				errs <- fmt.Errorf("submit bfs ->%d: %w", c.dest, err)
				return
			}
			res, err := q.Wait()
			if err != nil {
				errs <- fmt.Errorf("bfs ->%d: %w", c.dest, err)
				return
			}
			r := res.(BFSResult)
			if c.want < 0 && r.Found {
				errs <- fmt.Errorf("bfs ->%d found unreachable vertex at distance %d", c.dest, r.PathLength)
			} else if c.want >= 0 && (!r.Found || r.PathLength != c.want) {
				errs <- fmt.Errorf("bfs ->%d = (%v,%d), serial says %d", c.dest, r.Found, r.PathLength, c.want)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, err := e.KHop(context.Background(), KHopConfig{Source: 3, K: 3})
			if err != nil {
				errs <- fmt.Errorf("submit khop: %w", err)
				return
			}
			res, err := q.Wait()
			if err != nil {
				errs <- fmt.Errorf("khop: %w", err)
				return
			}
			kh := res.(KHopResult)
			if kh.Total != khSerial.Total {
				errs <- fmt.Errorf("concurrent khop total %d != serial %d", kh.Total, khSerial.Total)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.Stats()
	if st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if want := int64(len(cases) + 8); st.Completed != want {
		t.Fatalf("completed %d queries, want %d", st.Completed, want)
	}
}

// TestEngineCancellation is the cancellation-conformance test: a
// cancelled query must (1) return an error satisfying
// errors.Is(err, context.Canceled), (2) release its channel namespace,
// and (3) leave the engine fully usable for the next query.
func TestEngineCancellation(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{})
	before := cluster.Namespaces().Leased()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the query body first checks ctx
	q, err := e.BFS(ctx, BFSConfig{Source: 3, Dest: 200})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}
	if q.Status() != StatusDone {
		t.Fatalf("status after cancel = %v", q.Status())
	}
	if got := cluster.Namespaces().Leased(); got != before {
		t.Fatalf("cancelled query leaked a namespace: leased %d -> %d", before, got)
	}
	if st := e.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want Cancelled=1", st)
	}

	// The engine must still serve fresh queries on the same fabric.
	q2, err := e.BFS(context.Background(), BFSConfig{Source: 3, Dest: 3})
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	res, err := q2.Wait()
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if r := res.(BFSResult); !r.Found || r.PathLength != 0 {
		t.Fatalf("query after cancel = %+v", r)
	}
	if got := cluster.Namespaces().Leased(); got != before {
		t.Fatalf("namespace leak after recovery query: %d -> %d", before, got)
	}
}

// TestEngineDeadline: DefaultDeadline must surface as DeadlineExceeded
// and count as cancelled, with the namespace released.
func TestEngineDeadline(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{DefaultDeadline: time.Nanosecond})
	before := cluster.Namespaces().Leased()
	q, err := e.SubmitFunc(context.Background(), "sleeper", func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline query returned %v, want context.DeadlineExceeded", err)
	}
	if st := e.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want Cancelled=1", st)
	}
	if got := cluster.Namespaces().Leased(); got != before {
		t.Fatalf("deadline query leaked a namespace: %d -> %d", before, got)
	}
}

// TestEngineAdmissionControl: with one slot and a queue of one, a third
// concurrent submission must be rejected fast with ErrRejected, and the
// engine must recover once the blocker finishes.
func TestEngineAdmissionControl(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{MaxInFlight: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := func(ctx context.Context) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return "ok", nil
	}
	q1, err := e.SubmitFunc(context.Background(), "blocker", blocker)
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started // blocker occupies the only slot
	q2, err := e.SubmitFunc(context.Background(), "queued", blocker)
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	// Slot busy + queue full: the third submission must bounce.
	if _, err := e.SubmitFunc(context.Background(), "overflow", blocker); !errors.Is(err, ErrRejected) {
		t.Fatalf("overflow submit = %v, want ErrRejected", err)
	}
	if st := e.Stats(); st.Rejected != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	close(release)
	if _, err := q1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Wait(); err != nil {
		t.Fatal(err)
	}
	// Capacity is back.
	q4, err := e.SubmitFunc(context.Background(), "after", func(ctx context.Context) (any, error) { return 7, nil })
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if res, err := q4.Wait(); err != nil || res.(int) != 7 {
		t.Fatalf("after-drain query = %v, %v", res, err)
	}
}

// TestEngineCloseDrains: Close must reject new work, run what was
// already admitted to completion, and be idempotent.
func TestEngineCloseDrains(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{MaxInFlight: 2, QueueDepth: 8})
	var qs []*Query
	for i := 0; i < 6; i++ {
		q, err := e.BFS(context.Background(), BFSConfig{Source: 3, Dest: graph.VertexID(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		qs = append(qs, q)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		select {
		case <-q.Done():
		default:
			t.Fatalf("query %d not finished after Close", i)
		}
		if q.Err != nil {
			t.Fatalf("drained query %d: %v", i, q.Err)
		}
	}
	if _, err := e.SubmitFunc(context.Background(), "late", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("submit after Close = %v, want ErrEngineClosed", err)
	}
	if err := e.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestEngineSubmitByName drives a registered analysis through the
// params-map front door.
func TestEngineSubmitByName(t *testing.T) {
	e, _, _, _ := engineGraph(t, 2, EngineConfig{})
	q, err := e.Submit(context.Background(), "khop", map[string]string{"source": "3", "k": "2"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := q.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if kh := res.(KHopResult); kh.Total <= 0 {
		t.Fatalf("khop by name = %+v", kh)
	}
	if _, err := e.Submit(context.Background(), "no-such-analysis", nil); err == nil {
		t.Fatal("unknown analysis accepted")
	}
}

// TestParallelQueriesWithoutEngine: the namespace layer alone must make
// bare ParallelBFS calls safe to interleave on one fabric.
func TestParallelQueriesWithoutEngine(t *testing.T) {
	edges := chainEdges(30)
	f := cluster.NewInProc(3, 0)
	defer f.Close()
	dbs := partition(t, edges, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for d := 1; d <= 20; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := ParallelBFS(context.Background(), f, dbs, BFSConfig{Source: 0, Dest: graph.VertexID(d)})
			if err != nil {
				errs <- err
				return
			}
			if !res.Found || res.PathLength != int32(d) {
				errs <- fmt.Errorf("concurrent BFS 0->%d = (%v,%d)", d, res.Found, res.PathLength)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
