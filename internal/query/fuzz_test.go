package query

import (
	"bytes"
	"testing"

	"mssg/internal/graph"
)

// FuzzFringeChunkDecode: the fringe chunk decoders must never panic on
// arbitrary frames, and every frame they accept must survive an
// encode(decode(p)) round trip back to the original bytes — the fringe
// exchange deduplicates nothing at the codec layer, so a lossy decode
// would silently corrupt a search.
func FuzzFringeChunkDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{fkChunk})
	f.Add([]byte{fkDone})
	f.Add(encodeChunk([]graph.VertexID{0, 1, graph.MaxVertexID}))
	f.Add(encodeChunkPairs([]graph.Edge{{Src: 7, Dst: 3}}))
	f.Add(encodePathMsg(pkLookup, 42))
	f.Fuzz(func(t *testing.T, p []byte) {
		if ids, err := decodeChunk(p); err == nil {
			re := encodeChunk(ids)
			// decodeChunk ignores the kind byte; normalize it before
			// comparing the round trip.
			want := append([]byte{fkChunk}, p[1:]...)
			if !bytes.Equal(re, want) {
				t.Fatalf("chunk round trip: %x -> %v -> %x", p, ids, re)
			}
		}
		if pairs, err := decodeChunkPairs(p); err == nil {
			re := encodeChunkPairs(pairs)
			want := append([]byte{fkChunkP}, p[1:]...)
			if !bytes.Equal(re, want) {
				t.Fatalf("pair round trip: %x -> %v -> %x", p, pairs, re)
			}
		}
		if kind, v, err := decodePathMsg(p); err == nil {
			if re := encodePathMsg(kind, v); !bytes.Equal(re, p) {
				t.Fatalf("path-msg round trip: %x -> (%d,%d) -> %x", p, kind, v, re)
			}
		}
	})
}

// FuzzFringeChunkRoundTrip drives the encoders from fuzzed id material:
// whatever ids we encode must decode back exactly.
func FuzzFringeChunkRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ids := make([]graph.VertexID, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			var v uint64
			for j := 0; j < 8; j++ {
				v |= uint64(raw[i+j]) << (8 * j)
			}
			ids = append(ids, graph.VertexID(v))
		}
		got, err := decodeChunk(encodeChunk(ids))
		if err != nil {
			t.Fatalf("decodeChunk(encodeChunk(%v)): %v", ids, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("round trip length %d != %d", len(got), len(ids))
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("round trip ids[%d] = %d, want %d", i, got[i], ids[i])
			}
		}

		pairs := make([]graph.Edge, 0, len(ids)/2)
		for i := 0; i+1 < len(ids); i += 2 {
			pairs = append(pairs, graph.Edge{Src: ids[i], Dst: ids[i+1]})
		}
		gotP, err := decodeChunkPairs(encodeChunkPairs(pairs))
		if err != nil {
			t.Fatalf("decodeChunkPairs(encodeChunkPairs(%v)): %v", pairs, err)
		}
		if len(gotP) != len(pairs) {
			t.Fatalf("pair round trip length %d != %d", len(gotP), len(pairs))
		}
		for i := range pairs {
			if gotP[i] != pairs[i] {
				t.Fatalf("pair round trip [%d] = %v, want %v", i, gotP[i], pairs[i])
			}
		}
	})
}
