// Query-time failover conformance: kill a back-end mid-BFS on a
// replicated deployment and the answer must still be exactly the
// single-node serial reference — replicas serve the dead primary's
// shard, the failed attempt is retried on the survivors, and only the
// loss of every replica of a shard degrades the result.
package chaos

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/hashdb"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// chainDBs stores the directed chain 0→1→…→n on p back-ends, each
// vertex's adjacency on all of its rendezvous replicas — the layout a
// ReplicationFactor=k ingest produces.
func chainDBs(t *testing.T, n, p int, rv *ingest.Rendezvous) []graphdb.Graph {
	t.Helper()
	dbs := make([]graphdb.Graph, p)
	for i := range dbs {
		dbs[i] = hashdb.New()
	}
	for v := 0; v < n; v++ {
		e := graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1)}
		for _, node := range rv.Replicas(e.Src) {
			if err := dbs[node].StoreEdges([]graph.Edge{e}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dbs
}

// serialChainDB is the single-node reference: the whole chain in one db.
func serialChainDB(t *testing.T, n int) []graphdb.Graph {
	t.Helper()
	db := hashdb.New()
	for v := 0; v < n; v++ {
		err := db.StoreEdges([]graph.Edge{{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	return []graphdb.Graph{db}
}

// failoverFabric layers reliable delivery over a faulty transport whose
// plan crashes the given nodes after their send counters pass the
// thresholds — several BFS levels into the first attempt.
func failoverFabric(p int, seed int64, crashes ...cluster.Crash) cluster.Fabric {
	return cluster.NewReliable(cluster.NewFaulty(cluster.NewInProc(p, 0), cluster.Plan{
		Seed:     seed,
		DropProb: 0.005,
		Crashes:  crashes,
	}), fastReliable())
}

// fastFailover keeps retry backoff within test budgets.
func fastFailover() query.FailoverOptions {
	return query.FailoverOptions{
		MaxRetries:     5,
		BackoffInitial: 20 * time.Millisecond,
		BackoffMax:     200 * time.Millisecond,
	}
}

// TestChaosFailoverQueryKillBFS is the tentpole guarantee: node 1 is
// killed mid-search on a 2-way replicated deployment, and BFS still
// returns the exact serial answer — the failed attempt is retried on
// the survivors and node 1's shard is read from its replicas.
func TestChaosFailoverQueryKillBFS(t *testing.T) {
	const p, n = 4, 200
	rv := ingest.NewRendezvous(p, 2, 0)

	ref, err := query.ParallelBFS(context.Background(), cluster.NewInProc(1, 0), serialChainDB(t, n),
		query.BFSConfig{Source: 0, Dest: n, MaxLevels: n + 10})
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range seeds(t) {
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			before := runtime.NumGoroutine()
			// Node 1 dies once its protocol traffic passes 60 messages —
			// several levels into the first attempt, long before level 200.
			f := failoverFabric(p, seed, cluster.Crash{Node: 1, AfterSends: 60})

			type out struct {
				res query.BFSResult
				err error
			}
			done := make(chan out, 1)
			go func() {
				res, err := query.FailoverBFS(context.Background(), f, chainDBs(t, n, p, rv),
					query.BFSConfig{
						Source: 0, Dest: n, MaxLevels: n + 10,
						OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
					}, fastFailover())
				done <- out{res, err}
			}()
			var o out
			select {
			case o = <-done:
			case <-time.After(90 * time.Second):
				t.Fatal("failover BFS wedged on the crashed back-end")
			}
			if o.err != nil {
				t.Fatalf("failover BFS: %v", o.err)
			}
			if o.res.Found != ref.Found || o.res.PathLength != ref.PathLength {
				t.Errorf("failover answer (%v,%d) != serial reference (%v,%d)",
					o.res.Found, o.res.PathLength, ref.Found, ref.PathLength)
			}
			fo := o.res.Failover
			if fo == nil || fo.Retries == 0 {
				t.Errorf("failover stats %+v — the mid-query kill never forced a retry", fo)
			}
			if fo != nil && fo.ReplicaReads == 0 {
				t.Errorf("no replica reads — the dead node's shard was never served by a replica")
			}
			t.Logf("failover: %d retries, %d replica reads, suspected %v",
				fo.Retries, fo.ReplicaReads, fo.Suspected)
			f.Close()
			checkGoroutines(t, before)
		})
	}
}

// TestChaosFailoverQueryKillKHop: the same guarantee for the k-hop
// neighborhood count — per-level counts identical to the serial
// reference after a mid-query kill.
func TestChaosFailoverQueryKillKHop(t *testing.T) {
	const p, n, k = 4, 120, 80
	rv := ingest.NewRendezvous(p, 2, 0)

	ref, err := query.ParallelKHop(context.Background(), cluster.NewInProc(1, 0), serialChainDB(t, n),
		query.KHopConfig{Source: 0, K: k})
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range seeds(t) {
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			before := runtime.NumGoroutine()
			f := failoverFabric(p, seed, cluster.Crash{Node: 1, AfterSends: 60})

			type out struct {
				res   query.KHopResult
				stats query.FailoverStats
				err   error
			}
			done := make(chan out, 1)
			go func() {
				res, stats, err := query.FailoverKHop(context.Background(), f, chainDBs(t, n, p, rv),
					query.KHopConfig{
						Source: 0, K: k,
						OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
					}, fastFailover())
				done <- out{res, stats, err}
			}()
			var o out
			select {
			case o = <-done:
			case <-time.After(90 * time.Second):
				t.Fatal("failover k-hop wedged on the crashed back-end")
			}
			if o.err != nil {
				t.Fatalf("failover k-hop: %v", o.err)
			}
			if o.res.Total != ref.Total || len(o.res.PerLevel) != len(ref.PerLevel) {
				t.Errorf("failover count %d (%d levels) != serial reference %d (%d levels)",
					o.res.Total, len(o.res.PerLevel), ref.Total, len(ref.PerLevel))
			}
			if o.stats.Retries == 0 {
				t.Errorf("failover stats %+v — the mid-query kill never forced a retry", o.stats)
			}
			t.Logf("failover: %d retries, %d replica reads, suspected %v",
				o.stats.Retries, o.stats.ReplicaReads, o.stats.Suspected)
			f.Close()
			checkGoroutines(t, before)
		})
	}
}

// replicaPair finds two nodes forming the complete replica set of some
// interior chain vertex while the source keeps a live replica: killing
// both makes that shard (and everything past it on the chain)
// unservable.
func replicaPair(t *testing.T, rv *ingest.Rendezvous, n, p int) (a, b cluster.NodeID) {
	t.Helper()
	srcReps := rv.Replicas(0)
	for v := graph.VertexID(1); v < graph.VertexID(n); v++ {
		reps := rv.Replicas(v)
		x, y := reps[0], reps[1]
		if x > y {
			x, y = y, x
		}
		if (srcReps[0] == x || srcReps[0] == y) && (srcReps[1] == x || srcReps[1] == y) {
			continue
		}
		return x, y
	}
	t.Fatal("no chain vertex with a usable replica pair")
	return 0, 0
}

// TestChaosFailoverBothReplicasDead pins the degradation contract when
// replication is actually exhausted: with both replicas of a required
// shard crashed mid-query, the default mode fails with
// ErrPartialCoverage (never a wrong answer, never a hang), and
// AllowPartial degrades to an explicit Coverage < 1 lower bound.
func TestChaosFailoverBothReplicasDead(t *testing.T) {
	const p, n = 5, 60
	rv := ingest.NewRendezvous(p, 2, 0)
	a, b := replicaPair(t, rv, n, p)
	t.Logf("killing replica pair %d,%d", a, b)

	for _, allowPartial := range []bool{false, true} {
		name := "default"
		if allowPartial {
			name = "allow-partial"
		}
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			f := failoverFabric(p, 1,
				cluster.Crash{Node: a, AfterSends: 20},
				cluster.Crash{Node: b, AfterSends: 25})

			type out struct {
				res query.BFSResult
				err error
			}
			done := make(chan out, 1)
			go func() {
				res, err := query.FailoverBFS(context.Background(), f, chainDBs(t, n, p, rv),
					query.BFSConfig{
						Source: 0, Dest: n, MaxLevels: n + 10,
						OwnerOf: rv.OwnerOf, ReplicasOf: rv.Replicas,
						AllowPartial: allowPartial,
					}, fastFailover())
				done <- out{res, err}
			}()
			var o out
			select {
			case o = <-done:
			case <-time.After(90 * time.Second):
				t.Fatal("failover BFS wedged with both replicas dead")
			}
			if allowPartial {
				if o.err != nil {
					t.Fatalf("allow-partial run: %v", o.err)
				}
				if o.res.Found {
					t.Errorf("found the destination across an unservable shard")
				}
				if o.res.Coverage >= 1 || o.res.FringeDropped == 0 {
					t.Errorf("coverage %v, dropped %d — expected an explicit partial result",
						o.res.Coverage, o.res.FringeDropped)
				}
			} else if !errors.Is(o.err, query.ErrPartialCoverage) {
				t.Errorf("err = %v, want ErrPartialCoverage with every replica of a shard dead", o.err)
			}
			f.Close()
			checkGoroutines(t, before)
		})
	}
}
