// Package chaos is the fault-tolerance conformance suite: it replays
// seeded fault plans (drops, duplicates, corruption, delays, ambiguous
// send failures, scripted crashes) over both fabrics and asserts the
// stack's end-to-end guarantees — exact ingest counts under masked
// faults, fail-fast ErrNodeDown on crashes, ErrPartialCoverage from BFS,
// and no goroutine leaks. Seeds come from MSSG_CHAOS_SEEDS (default
// "1,7,42"); `make chaos` runs the suite under -race.
package chaos

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/hashdb"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// seeds returns the fault-plan seeds to replay.
func seeds(t *testing.T) []int64 {
	t.Helper()
	spec := os.Getenv("MSSG_CHAOS_SEEDS")
	if spec == "" {
		spec = "1,7,42"
	}
	var out []int64
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("MSSG_CHAOS_SEEDS: %v", err)
		}
		out = append(out, v)
	}
	return out
}

var fabricKinds = map[string]core.FabricKind{
	"inproc": core.InProc,
	"tcp":    core.TCP,
}

// fastReliable keeps failure detection within test budgets.
func fastReliable() cluster.ReliableOptions {
	return cluster.ReliableOptions{
		RetransmitInitial: 5 * time.Millisecond,
		RetransmitMax:     50 * time.Millisecond,
		SendTimeout:       5 * time.Second,
		HeartbeatEvery:    20 * time.Millisecond,
		HeartbeatBudget:   300 * time.Millisecond,
	}
}

// testEdges builds a deterministic edge list (no self loops).
func testEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(i % 97),
			Dst: graph.VertexID(100 + (i*31+7)%89),
		}
	}
	return edges
}

// checkGoroutines asserts the goroutine count settles back near the
// baseline after a fabric shuts down.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestChaosIngestExactCounts is the headline guarantee: with the
// reliable layer over a fabric that drops, duplicates, corrupts, and
// delays 1-2%% of frames, ingestion completes with exact counts.
func TestChaosIngestExactCounts(t *testing.T) {
	edges := testEdges(2500)
	for fname, kind := range fabricKinds {
		for _, seed := range seeds(t) {
			t.Run(fname+"/seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				before := runtime.NumGoroutine()
				eng, err := core.New(core.Config{
					Backends:  4,
					FrontEnds: 2,
					Backend:   "hashmap",
					Fabric:    kind,
					Ingest:    ingest.Config{WindowEdges: 64},
					Fault: &cluster.Plan{
						Seed:     seed,
						DropProb: 0.01, DupProb: 0.005, CorruptProb: 0.005, DelayProb: 0.01,
						MaxDelay: 500 * time.Microsecond,
					},
					Reliable:        true,
					ReliableOptions: fastReliable(),
					IngestDeadline:  60 * time.Second,
				})
				if err != nil {
					t.Fatal(err)
				}
				stats, err := eng.IngestEdges(edges)
				if err != nil {
					t.Fatalf("ingest under masked faults: %v", err)
				}
				want := int64(len(edges))
				if got := stats.EdgesStored.Load(); got != want {
					t.Errorf("EdgesStored = %d, want exactly %d", got, want)
				}
				if got := stats.EdgesIn.Load(); got != want {
					t.Errorf("EdgesIn = %d, want %d", got, want)
				}
				eng.Close()
				checkGoroutines(t, before)
			})
		}
	}
}

// TestChaosIngestCrashFailsFast pins degradation under a real loss: a
// back-end crashes mid-ingest, and the run fails fast with ErrNodeDown
// instead of hanging or silently storing a partial graph as success.
func TestChaosIngestCrashFailsFast(t *testing.T) {
	edges := testEdges(4000)
	for fname, kind := range fabricKinds {
		for _, seed := range seeds(t) {
			t.Run(fname+"/seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				before := runtime.NumGoroutine()
				eng, err := core.New(core.Config{
					Backends:  4,
					FrontEnds: 2,
					Backend:   "hashmap",
					Fabric:    kind,
					Ingest:    ingest.Config{WindowEdges: 32},
					Fault: &cluster.Plan{
						Seed:     seed,
						DropProb: 0.01,
						// Node 2 dies once it has attempted 10 outgoing
						// messages (acks + heartbeats) — mid-ingest, well
						// before it has acked its ~60 windows.
						Crashes: []cluster.Crash{{Node: 2, AfterSends: 10}},
					},
					Reliable:        true,
					ReliableOptions: fastReliable(),
					IngestDeadline:  60 * time.Second,
					IngestFailFast:  true,
				})
				if err != nil {
					t.Fatal(err)
				}
				start := time.Now()
				_, err = eng.IngestEdges(edges)
				if !errors.Is(err, cluster.ErrNodeDown) {
					t.Errorf("ingest with a crashed back-end = %v, want ErrNodeDown", err)
				}
				if el := time.Since(start); el > 30*time.Second {
					t.Errorf("failure detection took %v — not fail-fast", el)
				}
				eng.Close()
				checkGoroutines(t, before)
			})
		}
	}
}

// TestChaosUnreliableMiscountsOrHangs is the negative control: the SAME
// fault plan as TestChaosIngestExactCounts, minus the reliable layer,
// must lose data or wedge (rescued only by the graph deadline). This is
// what justifies the reliable layer's existence.
func TestChaosUnreliableMiscountsOrHangs(t *testing.T) {
	edges := testEdges(2500)
	for _, seed := range seeds(t) {
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			eng, err := core.New(core.Config{
				Backends:  4,
				FrontEnds: 2,
				Backend:   "hashmap",
				Fabric:    core.InProc,
				Ingest:    ingest.Config{WindowEdges: 32},
				Fault: &cluster.Plan{
					// Stronger than the masked-fault plan: the point is to
					// show the raw fabric cannot survive, on every seed.
					Seed:     seed,
					DropProb: 0.05, DupProb: 0.005, CorruptProb: 0.02, DelayProb: 0.01,
					MaxDelay: 500 * time.Microsecond,
				},
				Reliable:       false,
				IngestDeadline: 3 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			stats, err := eng.IngestEdges(edges)
			stored := int64(0)
			if stats != nil {
				stored = stats.EdgesStored.Load()
			}
			if err == nil && stored == int64(len(edges)) {
				t.Fatalf("raw faulty fabric ingested %d/%d edges with no error — fault injection is inert",
					stored, len(edges))
			}
			t.Logf("unreliable run: stored %d/%d, err=%v", stored, len(edges), err)
		})
	}
}

// TestChaosRetryIdempotency drives the ingest retry protocol end to end:
// every send succeeds but a fraction report ambiguous failures, so
// front-ends re-ship windows that actually arrived. Dedup on the store
// side must keep the counts exact.
func TestChaosRetryIdempotency(t *testing.T) {
	edges := testEdges(2000)
	for _, seed := range seeds(t) {
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			before := runtime.NumGoroutine()
			eng, err := core.New(core.Config{
				Backends:  4,
				FrontEnds: 2,
				Backend:   "hashmap",
				Fabric:    core.InProc,
				Ingest:    ingest.Config{WindowEdges: 32, ShipRetries: 8},
				Fault: &cluster.Plan{
					Seed:        seed,
					SendErrProb: 0.15,
				},
				IngestDeadline: 60 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := eng.IngestEdges(edges)
			if err != nil {
				t.Fatalf("ingest with ambiguous send failures: %v", err)
			}
			want := int64(len(edges))
			if got := stats.EdgesStored.Load(); got != want {
				t.Errorf("EdgesStored = %d, want exactly %d (dedup failed)", got, want)
			}
			if stats.Retries.Load() == 0 {
				t.Errorf("no window re-ships happened — the fault plan exercised nothing")
			}
			if stats.DupBlocks.Load() == 0 {
				t.Errorf("no duplicate windows discarded — retries were not ambiguous")
			}
			// Adjacency must hold exactly one record per input edge.
			var deg int64
			for i := 0; i < eng.Backends(); i++ {
				for v := graph.VertexID(0); v < 97; v++ {
					d, err := graphdb.Degree(eng.DB(i), v)
					if err != nil {
						t.Fatal(err)
					}
					deg += d
				}
			}
			if deg != want {
				t.Errorf("total stored degree = %d, want %d", deg, want)
			}
			eng.Close()
			checkGoroutines(t, before)
		})
	}
}

// TestChaosBFSPartialCoverage pins the query-side contract: when a
// back-end crashes mid-search, BFS returns ErrPartialCoverage instead of
// deadlocking on the dead node's barrier.
func TestChaosBFSPartialCoverage(t *testing.T) {
	const p = 4
	for _, seed := range seeds(t) {
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			before := runtime.NumGoroutine()
			inner := cluster.NewInProc(p, 0)
			f := cluster.NewReliable(cluster.NewFaulty(inner, cluster.Plan{
				Seed: seed,
				// Node 1 dies once its protocol traffic (acks, heartbeats,
				// fringe sends) passes 60 messages — several BFS levels in.
				Crashes: []cluster.Crash{{Node: 1, AfterSends: 60}},
			}), fastReliable())

			// A directed line graph 0→1→…→399 declustered by vertex mod p:
			// every level crosses nodes, so the search cannot avoid the
			// crashed one.
			dbs := make([]graphdb.Graph, p)
			for i := range dbs {
				dbs[i] = hashdb.New()
			}
			for v := 0; v < 399; v++ {
				owner := v % p
				err := dbs[owner].StoreEdges([]graph.Edge{
					{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1)},
				})
				if err != nil {
					t.Fatal(err)
				}
			}

			done := make(chan error, 1)
			go func() {
				_, err := query.ParallelBFS(context.Background(), f, dbs, query.BFSConfig{
					Source: 0, Dest: 399, MaxLevels: 500,
				})
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, query.ErrPartialCoverage) {
					t.Errorf("BFS over a crashed back-end = %v, want ErrPartialCoverage", err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("BFS deadlocked on the crashed back-end")
			}
			f.Close()
			checkGoroutines(t, before)
		})
	}
}
