// Elastic-topology conformance: BFS keeps returning the exact serial
// reference while shards migrate for a node join and a planned drain,
// the epoch history stays monotonic, and a migration killed at any
// phase boundary — source, destination, or coordinator — either resumes
// after restart or aborts cleanly with the prior epoch authoritative.
// `make migrate` runs this file under -race.
package chaos

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/hashdb"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// chainLen is the BFS workload: the directed chain 0→1→…→chainLen,
// whose serial reference is Found with PathLength == chainLen.
const chainLen = 120

func chainEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for v := 0; v < n; v++ {
		edges[v] = graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1)}
	}
	return edges
}

// elasticPlacement is the suite's starting topology: members {0,1,2} of
// a 4-slot fabric, 2-way replication, node 3 spare.
func elasticPlacement() ingest.Placement {
	return ingest.Placement{
		Policy: "rendezvous", Backends: 4, Replication: 2, Seed: 5,
		Nodes: []cluster.NodeID{0, 1, 2},
	}
}

// elasticEngine builds a kill-capable elastic engine: reliable layer
// over a fault layer (so cluster.Kill can crash nodes on demand and
// dead peers become prompt NodeDownError), hashmap back-ends (internal
// locking tolerates migration writes racing BFS reads).
func elasticEngine(t *testing.T, holder *ingest.PlacementHolder, seed int64, plan cluster.Plan) *core.Engine {
	t.Helper()
	plan.Seed = seed
	e, err := core.New(core.Config{
		Backends:        4,
		FrontEnds:       1,
		Backend:         "hashmap",
		Ingest:          ingest.Config{WindowEdges: 32},
		Fault:           &plan,
		Reliable:        true,
		ReliableOptions: fastReliable(),
		Failover:        fastFailover(),
		Placement:       holder,
		IngestDeadline:  60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// bfsChecker runs BFS in a loop until stopped, requiring every result
// to equal the serial reference. Call stop() to end it; it reports any
// divergence and returns the number of successful queries. The goroutine
// never touches t directly — errors are carried back to stop() so a
// subtest that bails early cannot race a completed test.
func bfsChecker(t *testing.T, e *core.Engine) (stop func() int) {
	t.Helper()
	quit := make(chan struct{})
	type outcome struct {
		n   int
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		n := 0
		for {
			select {
			case <-quit:
				done <- outcome{n: n}
				return
			default:
			}
			res, err := e.BFS(query.BFSConfig{Source: 0, Dest: chainLen, MaxLevels: chainLen + 10})
			if err != nil {
				done <- outcome{n, fmt.Errorf("concurrent BFS: %w", err)}
				return
			}
			if !res.Found || res.PathLength != chainLen {
				done <- outcome{n, fmt.Errorf("concurrent BFS = (%v,%d), want (true,%d)", res.Found, res.PathLength, chainLen)}
				return
			}
			n++
		}
	}()
	return func() int {
		close(quit)
		select {
		case o := <-done:
			if o.err != nil {
				t.Error(o.err)
			}
			return o.n
		case <-time.After(90 * time.Second):
			t.Fatal("BFS checker wedged")
			return 0
		}
	}
}

// TestChaosMigrateLiveBFS: under masked random faults, BFS runs
// continuously while node 3 joins and node 0 drains; every answer is
// serial-reference-equal and the epoch history is consecutive.
func TestChaosMigrateLiveBFS(t *testing.T) {
	for _, seed := range seeds(t) {
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			before := runtime.NumGoroutine()
			holder, err := ingest.NewPlacementHolder("", ingest.Manifest{Committed: elasticPlacement()})
			if err != nil {
				t.Fatal(err)
			}
			e := elasticEngine(t, holder, seed, cluster.Plan{
				DropProb: 0.005, DupProb: 0.002, DelayProb: 0.005,
				MaxDelay: 200 * time.Microsecond,
			})
			defer e.Close()
			if _, err := e.IngestEdges(chainEdges(chainLen)); err != nil {
				t.Fatalf("ingest: %v", err)
			}

			stop := bfsChecker(t, e)
			joinStats, err := e.Join(3, ingest.MigrationConfig{WindowEdges: 8})
			if err != nil {
				t.Fatalf("Join: %v", err)
			}
			if _, err := e.Drain(0, ingest.MigrationConfig{WindowEdges: 8}); err != nil {
				t.Fatalf("Drain: %v", err)
			}
			queries := stop()
			if t.Failed() {
				return
			}
			if queries == 0 {
				t.Error("no BFS completed during the migrations")
			}
			if joinStats.MovedVertices == 0 {
				t.Errorf("join moved nothing: %+v", joinStats)
			}
			hist := holder.History()
			if len(hist) != 3 {
				t.Fatalf("epoch history %v, want 3 epochs", hist)
			}
			for i := 1; i < len(hist); i++ {
				if hist[i] != hist[i-1]+1 {
					t.Fatalf("epoch history %v not consecutive", hist)
				}
			}
			p := holder.Placement()
			if p.Epoch != 2 || p.HasMember(0) || !p.HasMember(3) {
				t.Fatalf("final placement %+v", p)
			}
			e.Close()
			checkGoroutines(t, before)
		})
	}
}

// TestChaosMigrateKillSweep kills the coordinator (node 0), a source
// (node 1), and the destination (node 3) at every phase boundary of a
// join migration while BFS runs. Every kill must leave the old epoch
// authoritative with the pending record intact, abort must be clean,
// and BFS must keep returning the serial reference around the corpse.
func TestChaosMigrateKillSweep(t *testing.T) {
	boundaries := []cluster.MigratePass{cluster.PassCopy, cluster.PassCatchup, cluster.PassVerify, cluster.PassCommit}
	victims := []struct {
		role string
		node cluster.NodeID
	}{{"coordinator", 0}, {"source", 1}, {"destination", 3}}

	for _, b := range boundaries {
		for _, v := range victims {
			t.Run(fmt.Sprintf("%s/%s", b, v.role), func(t *testing.T) {
				before := runtime.NumGoroutine()
				holder, err := ingest.NewPlacementHolder("", ingest.Manifest{Committed: elasticPlacement()})
				if err != nil {
					t.Fatal(err)
				}
				e := elasticEngine(t, holder, 1, cluster.Plan{})
				defer e.Close()
				if _, err := e.IngestEdges(chainEdges(chainLen)); err != nil {
					t.Fatalf("ingest: %v", err)
				}

				stop := bfsChecker(t, e)
				boundary, victim := b, v.node
				var once sync.Once
				_, err = e.Join(3, ingest.MigrationConfig{
					WindowEdges: 8,
					Hook: func(pass cluster.MigratePass) error {
						if pass == boundary {
							once.Do(func() {
								if !cluster.Kill(e.Fabric(), victim) {
									t.Errorf("cluster.Kill found no fault layer")
								}
							})
						}
						return nil
					},
				})
				stop()
				if t.Failed() {
					return
				}
				if err == nil {
					t.Fatalf("migration survived killing the %s at the %s boundary", v.role, b)
				}
				if errors.Is(err, cluster.ErrMigrationVerify) {
					t.Fatalf("kill surfaced as a verify failure: %v", err)
				}
				if holder.Epoch() != 0 {
					t.Fatalf("killed migration committed epoch %d", holder.Epoch())
				}
				if holder.Manifest().Pending == nil {
					t.Fatal("killed migration lost its pending record")
				}
				if err := e.AbortMigration(); err != nil {
					t.Fatalf("abort after kill: %v", err)
				}
				if holder.Epoch() != 0 || holder.Manifest().Pending != nil {
					t.Fatalf("abort left %+v", holder.Manifest())
				}
				if hist := holder.History(); len(hist) != 1 || hist[0] != 0 {
					t.Fatalf("epoch history %v after aborted migration", hist)
				}

				// The dead node is routed around: a member corpse is served
				// by its replicas, a destination corpse is outside the
				// epoch-0 roster entirely.
				res, err := e.BFS(query.BFSConfig{Source: 0, Dest: chainLen, MaxLevels: chainLen + 10})
				if err != nil {
					t.Fatalf("BFS after kill+abort: %v", err)
				}
				if !res.Found || res.PathLength != chainLen {
					t.Fatalf("BFS after kill+abort = (%v,%d), want (true,%d)", res.Found, res.PathLength, chainLen)
				}
				e.Close()
				checkGoroutines(t, before)
			})
		}
	}
}

// TestChaosMigrateKillThenResume: the destination dies at the catch-up
// boundary; after a full restart (fresh fabric, manifest reloaded from
// disk) ResumeMigration finishes the interrupted migration and commits,
// and BFS over the new topology matches the serial reference.
func TestChaosMigrateKillThenResume(t *testing.T) {
	for _, seed := range seeds(t) {
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			dir := t.TempDir()
			holder, err := ingest.NewPlacementHolder(dir, ingest.Manifest{Committed: elasticPlacement()})
			if err != nil {
				t.Fatal(err)
			}
			rp, ok := holder.Policy().(ingest.ReplicaPolicy)
			if !ok {
				t.Fatal("rendezvous policy lost its replica directory")
			}
			dbs := make([]graphdb.Graph, 4)
			for i := range dbs {
				dbs[i] = hashdb.New()
			}
			for _, e := range chainEdges(chainLen) {
				for _, n := range rp.Replicas(e.Src) {
					if err := dbs[n].StoreEdges([]graph.Edge{e}); err != nil {
						t.Fatal(err)
					}
				}
			}
			target, err := holder.JoinTarget(3)
			if err != nil {
				t.Fatal(err)
			}

			f1 := cluster.NewReliable(cluster.NewFaulty(cluster.NewInProc(4, 0), cluster.Plan{Seed: seed}), fastReliable())
			_, err = ingest.Migrate(f1, dbs, holder, target, ingest.MigrationConfig{
				WindowEdges: 8,
				Hook: func(pass cluster.MigratePass) error {
					if pass == cluster.PassCatchup {
						cluster.Kill(f1, 3)
					}
					return nil
				},
			})
			if err == nil {
				t.Fatal("migration survived its destination dying mid-flight")
			}
			f1.Close()
			if holder.Epoch() != 0 {
				t.Fatalf("dead destination committed epoch %d", holder.Epoch())
			}

			// Restart: fresh fabric (every node back up), manifest reloaded
			// from disk — the durable pending intent drives the resume.
			holder2, ok, err := ingest.OpenPlacementHolder(dir)
			if err != nil || !ok {
				t.Fatalf("reopen holder: ok=%v err=%v", ok, err)
			}
			if holder2.Manifest().Pending == nil {
				t.Fatal("restart lost the pending migration")
			}
			f2 := cluster.NewReliable(cluster.NewFaulty(cluster.NewInProc(4, 0), cluster.Plan{Seed: seed + 1}), fastReliable())
			defer f2.Close()
			stats, resumed, err := ingest.ResumeMigration(f2, dbs, holder2, ingest.MigrationConfig{WindowEdges: 8})
			if err != nil {
				t.Fatalf("ResumeMigration: %v", err)
			}
			if !resumed || holder2.Epoch() != 1 {
				t.Fatalf("resume: resumed=%v epoch=%d, want true/1", resumed, holder2.Epoch())
			}
			if stats.Windows == 0 {
				t.Fatalf("resume shipped nothing: %+v", stats)
			}

			newRP, ok := holder2.Policy().(ingest.ReplicaPolicy)
			if !ok {
				t.Fatal("committed policy lost its replica directory")
			}
			res, err := query.FailoverBFS(t.Context(), f2, dbs, query.BFSConfig{
				Source: 0, Dest: chainLen, MaxLevels: chainLen + 10,
				OwnerOf:     holder2.Policy().(ingest.DirectoryPolicy).OwnerOf,
				ReplicasOf:  newRP.Replicas,
				ActiveNodes: holder2.Placement().Members(),
			}, fastFailover())
			if err != nil {
				t.Fatalf("BFS after resume: %v", err)
			}
			if !res.Found || res.PathLength != chainLen {
				t.Fatalf("BFS after resume = (%v,%d), want (true,%d)", res.Found, res.PathLength, chainLen)
			}
		})
	}
}
