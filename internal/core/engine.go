// Package core assembles the MSSG framework (paper Fig 3.1): a cluster
// fabric, one GraphDB Service instance per back-end node, the Ingestion
// Service filters, and the Query Service — all behind one Engine type.
//
// The engine maps the paper's deployment onto the simulated cluster: the
// fabric has one node per back-end storage node, and the configured number
// of front-end ingest filter copies are placed round-robin across the
// first nodes (on the real cluster front-ends were distinct machines; the
// message pattern between the services is identical either way, which is
// what the experiments measure).
package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/datacutter"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/ingest"
	"mssg/internal/obs"
	"mssg/internal/query"
)

// FabricKind selects the message transport.
type FabricKind int

const (
	// InProc connects node goroutines with in-process mailboxes.
	InProc FabricKind = iota
	// TCP connects node goroutines over loopback TCP.
	TCP
)

// Config parameterizes an Engine.
type Config struct {
	// Backends is the number of back-end storage nodes (the fabric size).
	Backends int
	// FrontEnds is the number of ingest filter copies.
	FrontEnds int
	// Backend names the GraphDB implementation ("array", "hashmap",
	// "mysql", "bdb", "stream", "grdb").
	Backend string
	// Dir is the root working directory; node i stores under
	// Dir/nodeNNN. Required for out-of-core backends.
	Dir string
	// DBOptions tunes the backend (cache budget, grDB levels, ...). The
	// Dir field inside is overwritten per node.
	DBOptions graphdb.Options
	// Ingest configures windows/policy/reversal. FrontEnds/Backends
	// inside it are overwritten from this Config.
	Ingest ingest.Config
	// Fabric selects the transport.
	Fabric FabricKind
	// MailboxBuffer bounds per-channel queued messages (0 = default).
	MailboxBuffer int
	// Fault, when non-nil, wraps the fabric in a deterministic
	// fault-injection layer driven by this plan (drops, duplicates,
	// corruption, delays, scripted crashes).
	Fault *cluster.Plan
	// Reliable layers acked, deduplicated, checksummed delivery over the
	// (possibly faulty) fabric, with heartbeat-based failure detection.
	Reliable bool
	// ReliableOptions tunes the reliable layer; zero value uses defaults.
	ReliableOptions cluster.ReliableOptions
	// IngestDeadline bounds each ingestion run; 0 means none. Implies
	// fail-fast supervision so a dead back-end aborts the run instead of
	// wedging it.
	IngestDeadline time.Duration
	// IngestFailFast aborts an ingestion run as soon as any filter copy
	// fails, even without a deadline.
	IngestFailFast bool
	// Metrics, when non-nil, enables per-operation latency histograms in
	// every back-end (graphdb.<backend>.*_ns) and block-cache counter
	// mirrors (cache.<backend>.*). It is copied into DBOptions for each
	// node. The always-on service metrics (cluster, datacutter, ingest,
	// query) live in obs.Default() regardless of this field.
	Metrics *obs.Registry
	// AllowPartial degrades queries to best-effort results with an
	// explicit Coverage < 1 when every replica of a required shard is
	// unreachable, instead of failing with query.ErrPartialCoverage.
	AllowPartial bool
	// Failover tunes the query-time retry loop used when the
	// declustering policy replicates (ReplicationFactor > 1). The zero
	// value selects the defaults documented on query.FailoverOptions.
	Failover query.FailoverOptions
	// Placement, when non-nil, is the elastic routing authority: every
	// ingest window and query resolves its policy through the holder, so
	// a live migration's epoch commit flips all routing in one atomic
	// step. Overrides Ingest.Policy. The committed placement's node-ID
	// space must fit within Backends (spare nodes idle with empty
	// databases until a Join targets them).
	Placement *ingest.PlacementHolder
}

// Engine is a running MSSG instance.
type Engine struct {
	cfg    Config
	fabric cluster.Fabric
	dbs    []graphdb.Graph
	closed bool

	// lastIngest holds the most recent completed Ingest run's statistics,
	// for shutdown reporting from signal handlers.
	lastIngest atomic.Pointer[ingest.Stats]

	// qmu guards qengines: the resident query engines whose result
	// caches this engine invalidates on ingest commit and epoch swap.
	qmu      sync.Mutex
	qengines []*query.Engine
}

// New builds the fabric and opens one GraphDB instance per back-end node.
func New(cfg Config) (*Engine, error) {
	if cfg.Backends < 1 {
		return nil, fmt.Errorf("core: need at least 1 back-end, got %d", cfg.Backends)
	}
	if cfg.FrontEnds < 1 {
		cfg.FrontEnds = 1
	}
	if cfg.Backend == "" {
		cfg.Backend = "grdb"
	}
	if cfg.Placement != nil {
		if b := cfg.Placement.Placement().Backends; b > cfg.Backends {
			return nil, fmt.Errorf("core: placement spans %d back-ends, engine has %d", b, cfg.Backends)
		}
		cfg.Ingest.Policy = cfg.Placement.Policy
	}

	var fabric cluster.Fabric
	switch cfg.Fabric {
	case InProc:
		fabric = cluster.NewInProc(cfg.Backends, cfg.MailboxBuffer)
	case TCP:
		f, err := cluster.NewTCP(cfg.Backends, cfg.MailboxBuffer)
		if err != nil {
			return nil, err
		}
		fabric = f
	default:
		return nil, fmt.Errorf("core: unknown fabric kind %d", cfg.Fabric)
	}
	// Layering order matters: faults perturb the raw transport, and the
	// reliable layer (when enabled) sits above them, masking what it can
	// and converting what it cannot into ErrNodeDown/ErrTimeout.
	if cfg.Fault != nil {
		fabric = cluster.NewFaulty(fabric, *cfg.Fault)
	}
	if cfg.Reliable {
		fabric = cluster.NewReliable(fabric, cfg.ReliableOptions)
	}

	e := &Engine{cfg: cfg, fabric: fabric}
	for i := 0; i < cfg.Backends; i++ {
		opts := cfg.DBOptions
		if opts.Metrics == nil {
			opts.Metrics = cfg.Metrics
		}
		if cfg.Dir != "" {
			opts.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("node%03d", i))
			if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
				e.Close()
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		db, err := graphdb.Open(cfg.Backend, opts)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("core: opening %s on node %d: %w", cfg.Backend, i, err)
		}
		e.dbs = append(e.dbs, db)
	}
	return e, nil
}

// Backends returns the number of back-end nodes.
func (e *Engine) Backends() int { return e.cfg.Backends }

// Fabric exposes the cluster fabric (for custom analyses).
func (e *Engine) Fabric() cluster.Fabric { return e.fabric }

// DB returns back-end node i's GraphDB instance.
func (e *Engine) DB(i int) graphdb.Graph { return e.dbs[i] }

// Databases returns all back-end instances, indexed by node.
func (e *Engine) Databases() []graphdb.Graph { return e.dbs }

// Ingest streams edges into the back-ends through the Ingestion Service
// filter graph. makeReader returns front-end copy i's partition of the
// input (copies run concurrently). It returns ingest statistics.
func (e *Engine) Ingest(makeReader func(copy int) (graph.EdgeReader, error)) (*ingest.Stats, error) {
	if e.closed {
		return nil, fmt.Errorf("core: engine closed")
	}
	icfg := e.cfg.Ingest
	icfg.FrontEnds = e.cfg.FrontEnds
	icfg.Backends = e.cfg.Backends
	if e.cfg.Placement != nil {
		// Pin one placement snapshot for the whole run so every filter
		// copy routes identically, and take the replication factor from
		// it — a replicated placement must engage the k-way store path,
		// or query-time replica fallback would read empty shards.
		_, pol := e.cfg.Placement.Snapshot()
		icfg.Policy = func() ingest.Policy { return pol }
		if rp, ok := pol.(ingest.ReplicaPolicy); ok {
			icfg.ReplicationFactor = rp.ReplicationFactor()
		}
	}
	// Durable databases get durable ingest: back-ends checkpoint their
	// window dedup-set so a crashed-and-restarted run can re-ship the
	// stream without double-storing.
	if e.cfg.DBOptions.Durability >= graphdb.DurabilityFull {
		icfg.Durable = true
	}

	stats := &ingest.Stats{}
	g := datacutter.NewGraph()
	err := ingest.BuildGraph(g, icfg, stats,
		makeReader,
		func(copy int) graphdb.Graph { return e.dbs[copy] },
		datacutter.PlaceCopies(icfg.FrontEnds),
		datacutter.PlaceOnePerNode(),
	)
	if err != nil {
		return nil, err
	}
	rt := datacutter.NewRuntime(e.fabric)
	ropts := datacutter.RunOptions{
		Deadline: e.cfg.IngestDeadline,
		FailFast: e.cfg.IngestFailFast || e.cfg.IngestDeadline > 0,
	}
	runStart := time.Now()
	runErr := rt.RunWith(g, ropts)
	obs.Default().Histogram("ingest.run_ns").Observe(time.Since(runStart).Nanoseconds())
	e.lastIngest.Store(stats)
	// The commit advanced every back-end's generation stamp, so cached
	// query results keyed by the old generation can no longer match;
	// reclaim their memory now. Structural correctness does not depend
	// on this call (see query/qcache package doc).
	e.invalidateQueryCaches()
	if runErr != nil {
		return stats, runErr
	}
	return stats, nil
}

// invalidateQueryCaches purges stale result-cache entries in every
// resident query engine built by NewQueryEngine.
func (e *Engine) invalidateQueryCaches() {
	e.qmu.Lock()
	qes := append([]*query.Engine(nil), e.qengines...)
	e.qmu.Unlock()
	for _, qe := range qes {
		qe.InvalidateCache()
	}
}

// LastIngestStats returns the statistics of the most recent Ingest run
// (even a failed one), or nil if none has run. Safe to call from a signal
// handler while a run is in flight: it sees the previous completed run.
func (e *Engine) LastIngestStats() *ingest.Stats {
	return e.lastIngest.Load()
}

// IngestEdges ingests a materialized edge list, splitting it evenly
// across the configured front-ends.
func (e *Engine) IngestEdges(edges []graph.Edge) (*ingest.Stats, error) {
	f := e.cfg.FrontEnds
	return e.Ingest(func(copy int) (graph.EdgeReader, error) {
		lo := len(edges) * copy / f
		hi := len(edges) * (copy + 1) / f
		return &sliceReader{edges: edges[lo:hi]}, nil
	})
}

// IngestGenerated streams a synthetic graph straight from its generator
// (single front-end; generators are sequential streams).
func (e *Engine) IngestGenerated(cfg gen.Config) (*ingest.Stats, error) {
	gen, err := gen.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	save := e.cfg.FrontEnds
	e.cfg.FrontEnds = 1
	defer func() { e.cfg.FrontEnds = save }()
	return e.Ingest(func(copy int) (graph.EdgeReader, error) { return gen, nil })
}

type sliceReader struct {
	edges []graph.Edge
	pos   int
}

func (r *sliceReader) ReadEdge() (graph.Edge, error) {
	if r.pos >= len(r.edges) {
		return graph.Edge{}, io.EOF
	}
	e := r.edges[r.pos]
	r.pos++
	return e, nil
}

// BFS runs a parallel out-of-core BFS across the back-ends. The fringe
// routing follows the ingestion-time declustering (paper §4.2): a
// directory policy supplies its vertex→node mapping, a policy without a
// global mapping forces broadcast fringe exchange.
func (e *Engine) BFS(cfg query.BFSConfig) (query.BFSResult, error) {
	return e.BFSCtx(context.Background(), cfg)
}

// BFSCtx is BFS with cancellation: cancelling ctx aborts the search on
// every node with ctx.Err(). On a replicated deployment the query runs
// through the failover loop: attempts exclude back-ends the health view
// or earlier errors convicted, fringe routing falls through to a dead
// primary's replicas, and the result carries FailoverStats.
func (e *Engine) BFSCtx(ctx context.Context, cfg query.BFSConfig) (query.BFSResult, error) {
	if e.closed {
		return query.BFSResult{}, fmt.Errorf("core: engine closed")
	}
	rcfg := e.routedBFS(cfg)
	if rcfg.ReplicasOf != nil {
		return query.FailoverBFS(ctx, e.fabric, e.dbs, rcfg, e.cfg.Failover)
	}
	return query.ParallelBFS(ctx, e.fabric, e.dbs, rcfg)
}

// KHop counts the vertices within cfg.K hops of cfg.Source, with the
// same policy-based routing and (on replicated deployments) the same
// failover behaviour as BFS.
func (e *Engine) KHop(cfg query.KHopConfig) (query.KHopResult, error) {
	return e.KHopCtx(context.Background(), cfg)
}

// KHopCtx is KHop with cancellation.
func (e *Engine) KHopCtx(ctx context.Context, cfg query.KHopConfig) (query.KHopResult, error) {
	if e.closed {
		return query.KHopResult{}, fmt.Errorf("core: engine closed")
	}
	if p := e.queryPolicy(&cfg.ActiveNodes); p != nil {
		switch {
		case cfg.OwnerOf != nil:
			// Caller-provided directory wins.
		case isDirectoryPolicy(p):
			cfg.OwnerOf = p.(ingest.DirectoryPolicy).OwnerOf
		case !p.GloballyMapped():
			cfg.Ownership = query.BroadcastFringe
		}
		if cfg.ReplicasOf == nil {
			cfg.ReplicasOf = replicasOf(p)
		}
	}
	if !cfg.AllowPartial {
		cfg.AllowPartial = e.cfg.AllowPartial
	}
	if cfg.ReplicasOf != nil {
		res, _, err := query.FailoverKHop(ctx, e.fabric, e.dbs, cfg, e.cfg.Failover)
		return res, err
	}
	return query.ParallelKHop(ctx, e.fabric, e.dbs, cfg)
}

// routedBFS applies the ingestion policy's vertex→node mapping (and, for
// replicating policies, its replica directory) to a BFS configuration.
// On an elastic engine the directory, the replica lists, and the member
// roster all come from one placement snapshot, so a query admitted
// mid-migration is internally consistent and a commit flips routing for
// the next query in one step.
func (e *Engine) routedBFS(cfg query.BFSConfig) query.BFSConfig {
	if p := e.queryPolicy(&cfg.ActiveNodes); p != nil {
		switch {
		case cfg.OwnerOf != nil:
			// Caller-provided directory wins.
		case isDirectoryPolicy(p):
			cfg.OwnerOf = p.(ingest.DirectoryPolicy).OwnerOf
		case !p.GloballyMapped():
			cfg.Ownership = query.BroadcastFringe
		}
		if cfg.ReplicasOf == nil {
			cfg.ReplicasOf = replicasOf(p)
		}
	}
	if !cfg.AllowPartial {
		cfg.AllowPartial = e.cfg.AllowPartial
	}
	return cfg
}

// queryPolicy resolves one query's routing policy. With a placement
// holder it also restricts the roster (*active) to the committed
// members — taken from the same snapshot as the policy — so queries
// never span nodes that joined but have not committed, or nodes already
// drained. A nil *active (full membership) keeps the roster fast path.
func (e *Engine) queryPolicy(active *[]cluster.NodeID) ingest.Policy {
	if e.cfg.Placement != nil {
		pl, pol := e.cfg.Placement.Snapshot()
		if *active == nil && pl.Nodes != nil {
			*active = pl.Members()
		}
		return pol
	}
	if pf := e.cfg.Ingest.Policy; pf != nil {
		return pf()
	}
	return nil
}

// replicasOf returns p's replica directory when p actually replicates
// (factor > 1), nil otherwise — a factor-1 policy has nothing to fail
// over to, and nil keeps the query layer on its allocation-free
// owner-only fast path.
func replicasOf(p ingest.Policy) func(graph.VertexID) []cluster.NodeID {
	rp, ok := p.(ingest.ReplicaPolicy)
	if !ok || rp.ReplicationFactor() < 2 {
		return nil
	}
	return rp.Replicas
}

// NewQueryEngine builds a resident concurrent query scheduler over this
// engine's fabric and databases (see query.Engine). Queries submitted
// through it run as concurrent readers; the caller closes the returned
// engine before closing this one.
//
// On an elastic engine (Placement set) the scheduler's cache keys and
// snapshot pins carry the committed placement epoch, and a caching
// scheduler is registered for invalidation on every ingest commit and
// epoch swap — so a cached result can never outlive the graph state it
// was computed against.
func (e *Engine) NewQueryEngine(qcfg query.EngineConfig) (*query.Engine, error) {
	if e.closed {
		return nil, fmt.Errorf("core: engine closed")
	}
	if e.cfg.Placement != nil && qcfg.Epoch == nil {
		qcfg.Epoch = e.cfg.Placement.Epoch
	}
	qe, err := query.NewEngine(e.fabric, e.dbs, qcfg)
	if err != nil {
		return nil, err
	}
	if qe.Cache() != nil {
		e.qmu.Lock()
		e.qengines = append(e.qengines, qe)
		e.qmu.Unlock()
		if e.cfg.Placement != nil {
			e.cfg.Placement.AddSwapHook(func(uint64) { qe.InvalidateCache() })
		}
	}
	return qe, nil
}

// SubmitBFS admits one BFS run (with policy-based fringe routing
// applied) into a resident query engine built by NewQueryEngine, under
// the default tenant.
func (e *Engine) SubmitBFS(ctx context.Context, qe *query.Engine, cfg query.BFSConfig) (*query.Query, error) {
	return qe.BFS(ctx, e.routedBFS(cfg))
}

// SubmitBFSAs is SubmitBFS under an explicit tenant.
func (e *Engine) SubmitBFSAs(ctx context.Context, qe *query.Engine, tenant string, cfg query.BFSConfig) (*query.Query, error) {
	return qe.BFSAs(ctx, tenant, e.routedBFS(cfg))
}

func isDirectoryPolicy(p ingest.Policy) bool {
	_, ok := p.(ingest.DirectoryPolicy)
	return ok
}

// RunAnalysis invokes a registered Query Service analysis by name.
func (e *Engine) RunAnalysis(name string, params map[string]string) (any, error) {
	return e.RunAnalysisCtx(context.Background(), name, params)
}

// RunAnalysisCtx is RunAnalysis with cancellation.
func (e *Engine) RunAnalysisCtx(ctx context.Context, name string, params map[string]string) (any, error) {
	a, ok := query.LookupAnalysis(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown analysis %q (registered: %v)", name, query.Analyses())
	}
	return a.Run(ctx, e.fabric, e.dbs, params)
}

// ResetMetadata clears per-vertex metadata on every back-end (between
// queries).
func (e *Engine) ResetMetadata() {
	for _, db := range e.dbs {
		graphdb.ResetMetadata(db)
	}
}

// Close shuts down the databases and the fabric.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	var first error
	for _, db := range e.dbs {
		if db == nil {
			continue
		}
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := e.fabric.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
