package core_test

import (
	"strings"
	"testing"

	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

func TestConfigValidation(t *testing.T) {
	if _, err := core.New(core.Config{Backends: 0}); err == nil {
		t.Error("zero backends accepted")
	}
	if _, err := core.New(core.Config{Backends: 2, Backend: "no-such-db"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := core.New(core.Config{Backends: 2, Fabric: core.FabricKind(9)}); err == nil {
		t.Error("unknown fabric accepted")
	}
	// Out-of-core backend without a directory must fail cleanly.
	if _, err := core.New(core.Config{Backends: 2, Backend: "grdb"}); err == nil {
		t.Error("grdb without Dir accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	e, err := core.New(core.Config{Backends: 2, Backend: "hashmap"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Backends() != 2 {
		t.Fatalf("Backends = %d", e.Backends())
	}
	if len(e.Databases()) != 2 || e.DB(0) == nil || e.DB(1) == nil {
		t.Fatal("databases not opened")
	}
	if e.Fabric() == nil || e.Fabric().Nodes() != 2 {
		t.Fatal("fabric not built")
	}
}

func TestEngineClosedOperationsFail(t *testing.T) {
	e, err := core.New(core.Config{Backends: 2, Backend: "hashmap"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestEdges([]graph.Edge{{Src: 1, Dst: 2}}); err == nil {
		t.Error("Ingest after Close succeeded")
	}
	if _, err := e.BFS(query.BFSConfig{Source: 1, Dest: 2}); err == nil {
		t.Error("BFS after Close succeeded")
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestIngestGenerated(t *testing.T) {
	e := newEngine(t, "hashmap", 3, 2)
	stats, err := e.IngestGenerated(gen.Config{Name: "g", Vertices: 200, M: 2, Seed: 9})
	if err != nil {
		t.Fatalf("IngestGenerated: %v", err)
	}
	if stats.EdgesIn.Load() == 0 {
		t.Fatal("no edges generated")
	}
	res, err := e.BFS(query.BFSConfig{Source: 0, Dest: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("generated graph not searchable")
	}
}

func TestResetMetadataAcrossEngine(t *testing.T) {
	e := newEngine(t, "hashmap", 2, 1)
	if _, err := e.IngestEdges([]graph.Edge{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := e.DB(0).SetMetadata(0, 9); err != nil {
		t.Fatal(err)
	}
	e.ResetMetadata()
	md, err := e.DB(0).Metadata(0)
	if err != nil || md != 0 {
		t.Fatalf("metadata after reset = %d, %v", md, err)
	}
}

// TestSimulatedLatencySlowsEngine wires the simulated disk through the
// whole engine and checks it actually costs time.
func TestSimulatedLatencySlowsEngine(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "lat", Vertices: 2000, M: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts graphdb.Options) int64 {
		e, err := core.New(core.Config{
			Backends:  2,
			Backend:   "grdb",
			Dir:       t.TempDir(),
			DBOptions: opts,
			Ingest:    ingest.Config{AddReverse: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if _, err := e.IngestEdges(edges); err != nil {
			t.Fatal(err)
		}
		var reads int64
		for _, db := range e.Databases() {
			r, _ := db.(graphdb.IOCounters).IOCounters()
			reads += r
		}
		return reads
	}
	// Same workload with and without latency must do identical physical
	// work; wall time differs but I/O counts are the determinism check.
	plain := run(graphdb.Options{CacheBytes: 1 << 20})
	simulated := run(graphdb.Options{CacheBytes: 1 << 20, SimReadLatency: 50_000, SimWriteLatency: 50_000})
	if plain != simulated {
		t.Fatalf("simulated latency changed I/O counts: %d vs %d", plain, simulated)
	}
}

func TestBackendsListedInErrors(t *testing.T) {
	_, err := core.New(core.Config{Backends: 1, Backend: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "grdb") {
		t.Fatalf("error %v does not list available backends", err)
	}
}
