package core_test

import (
	"testing"

	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// TestGreedyClusteringEndToEnd ingests with the summary-based greedy
// policy (§3.2) and checks that searches routed through its directory
// return correct distances and move less fringe traffic than the
// locality-free modulo declustering.
func TestGreedyClusteringEndToEnd(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "g", Vertices: 800, M: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dist := refBFS(edges, 3)
	queries := [][2]graph.VertexID{{3, 700}, {3, 101}, {3, 555}}

	run := func(policy func() ingest.Policy) (int64, *core.Engine) {
		e, err := core.New(core.Config{
			Backends:  4,
			FrontEnds: 2,
			Backend:   "hashmap",
			Ingest:    ingest.Config{AddReverse: true, Policy: policy},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		if _, err := e.IngestEdges(edges); err != nil {
			t.Fatal(err)
		}
		var sent int64
		for _, q := range queries {
			res, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1]})
			if err != nil {
				t.Fatal(err)
			}
			want := dist[q[1]]
			if !res.Found || res.PathLength != want {
				t.Fatalf("policy BFS %v = (%v,%d), want (true,%d)", q, res.Found, res.PathLength, want)
			}
			sent += res.FringeSent
		}
		return sent, e
	}

	// One shared greedy instance across both front-ends.
	greedy := ingest.NewGreedyCluster(256)
	greedySent, _ := run(func() ingest.Policy { return greedy })
	modSent, _ := run(nil) // default VertexMod

	if greedy.DirectorySize() == 0 {
		t.Fatal("greedy directory is empty")
	}
	// The affinity policy must reduce cross-node fringe traffic.
	if greedySent >= modSent {
		t.Fatalf("greedy clustering sent %d fringe vertices, modulo sent %d — no locality win",
			greedySent, modSent)
	}
	t.Logf("fringe sent: greedy=%d, modulo=%d (%.0f%% saved)",
		greedySent, modSent, 100*(1-float64(greedySent)/float64(modSent)))
}
