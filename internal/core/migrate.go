// Elastic topology at the engine level: node join, planned drain, and
// the generic migrate/resume/abort operations, all delegating to
// internal/ingest's live migration over this engine's fabric and
// databases. Queries keep running throughout — they route through the
// placement holder, which flips only at epoch commit.

package core

import (
	"fmt"

	"mssg/internal/cluster"
	"mssg/internal/graphdb"
	"mssg/internal/ingest"
)

// PlacementHolder returns the engine's elastic placement authority, or
// nil when the engine runs a static policy (Config.Placement unset).
func (e *Engine) PlacementHolder() *ingest.PlacementHolder { return e.cfg.Placement }

// migrationConfig applies engine-level defaults: durable back-ends get
// durable migrations (destinations checkpoint their dedup-set, so a
// killed migration resumes without double-storing).
func (e *Engine) migrationConfig(cfg ingest.MigrationConfig) ingest.MigrationConfig {
	if e.cfg.DBOptions.Durability >= graphdb.DurabilityFull {
		cfg.Durable = true
	}
	return cfg
}

func (e *Engine) placement() (*ingest.PlacementHolder, error) {
	if e.closed {
		return nil, fmt.Errorf("core: engine closed")
	}
	if e.cfg.Placement == nil {
		return nil, fmt.Errorf("core: engine has no placement holder (set Config.Placement for elastic topology)")
	}
	return e.cfg.Placement, nil
}

// Migrate live-migrates the cluster to target: durable pending intent,
// bulk copy, catch-up, destination-side verify, epoch commit. On error
// the committed epoch stays authoritative and the pending record makes
// the migration resumable (ResumeMigration) or abortable
// (AbortMigration).
func (e *Engine) Migrate(target ingest.Placement, cfg ingest.MigrationConfig) (ingest.MigrationStats, error) {
	h, err := e.placement()
	if err != nil {
		return ingest.MigrationStats{}, err
	}
	return ingest.Migrate(e.fabric, e.dbs, h, target, e.migrationConfig(cfg))
}

// Join adds node n to the cluster: the next epoch's placement includes
// n, and the minimal shard set HRW re-ranking assigns to n is streamed
// over before the epoch commits. n must be a fabric node (engines
// reserve spare slots via Config.Backends).
func (e *Engine) Join(n cluster.NodeID, cfg ingest.MigrationConfig) (ingest.MigrationStats, error) {
	h, err := e.placement()
	if err != nil {
		return ingest.MigrationStats{}, err
	}
	target, err := h.JoinTarget(n)
	if err != nil {
		return ingest.MigrationStats{}, err
	}
	return ingest.Migrate(e.fabric, e.dbs, h, target, e.migrationConfig(cfg))
}

// Drain removes node n in a planned way: every shard whose new replica
// set no longer includes n is re-homed before the epoch commits, so the
// node can be shut down with no coverage loss.
func (e *Engine) Drain(n cluster.NodeID, cfg ingest.MigrationConfig) (ingest.MigrationStats, error) {
	h, err := e.placement()
	if err != nil {
		return ingest.MigrationStats{}, err
	}
	target, err := h.DrainTarget(n)
	if err != nil {
		return ingest.MigrationStats{}, err
	}
	return ingest.Migrate(e.fabric, e.dbs, h, target, e.migrationConfig(cfg))
}

// ResumeMigration re-runs the migration recorded in the pending
// placement, if any. Durable back-ends skip already-applied windows via
// their checkpointed dedup-set.
func (e *Engine) ResumeMigration(cfg ingest.MigrationConfig) (stats ingest.MigrationStats, resumed bool, err error) {
	h, err := e.placement()
	if err != nil {
		return ingest.MigrationStats{}, false, err
	}
	return ingest.ResumeMigration(e.fabric, e.dbs, h, e.migrationConfig(cfg))
}

// AbortMigration abandons the pending migration: the committed epoch
// stays authoritative and the aborted target epoch is recorded in the
// quarantine log.
func (e *Engine) AbortMigration() error {
	h, err := e.placement()
	if err != nil {
		return err
	}
	return h.AbortMigration()
}
