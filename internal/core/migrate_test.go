package core_test

import (
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// TestEngineElasticTopology is the engine-level join/drain integration
// test: ingest under a 3-member placement (one spare fabric slot), join
// the spare, drain an original member, and check BFS answers against
// the sequential oracle at every epoch.
func TestEngineElasticTopology(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "t", Vertices: 500, M: 3, HubFraction: 0.1, Seed: 23})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	dist := refBFS(edges, 3)
	queries := [][2]graph.VertexID{{3, 4}, {3, 57}, {3, 499}, {3, 3}}

	holder, err := ingest.NewPlacementHolder("", ingest.Manifest{Committed: ingest.Placement{
		Policy: "rendezvous", Backends: 4, Replication: 2, Seed: 5,
		Nodes: []cluster.NodeID{0, 1, 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(core.Config{
		Backends:  4,
		FrontEnds: 2,
		Backend:   "hashmap",
		Ingest:    ingest.Config{AddReverse: true},
		Placement: holder,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	defer e.Close()
	if e.PlacementHolder() != holder {
		t.Fatal("engine does not expose its placement holder")
	}
	if _, err := e.IngestEdges(edges); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	checkQueries := func(stage string) {
		t.Helper()
		for _, q := range queries {
			res, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1]})
			if err != nil {
				t.Fatalf("%s: BFS %v: %v", stage, q, err)
			}
			want, reachable := dist[q[1]]
			if q[0] == q[1] {
				want, reachable = 0, true
			}
			if res.Found != reachable || (reachable && res.PathLength != want) {
				t.Fatalf("%s: BFS %v = (%v,%d), want (%v,%d)", stage, q, res.Found, res.PathLength, reachable, want)
			}
		}
	}
	checkQueries("epoch 0")

	// The ingest-time policy must have routed nothing to the spare slot.
	if got := e.DB(3).Stats().EdgesStored; got != 0 {
		t.Fatalf("spare node 3 holds %d edges before joining", got)
	}

	stats, err := e.Join(3, ingest.MigrationConfig{})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if stats.MovedVertices == 0 {
		t.Fatalf("join moved nothing: %+v", stats)
	}
	if holder.Epoch() != 1 {
		t.Fatalf("join committed epoch %d, want 1", holder.Epoch())
	}
	if got := e.DB(3).Stats().EdgesStored; got == 0 {
		t.Fatal("joined node received no data")
	}
	checkQueries("epoch 1 (after join)")

	if _, err := e.Drain(0, ingest.MigrationConfig{}); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	p := holder.Placement()
	if p.Epoch != 2 || p.HasMember(0) {
		t.Fatalf("drain committed %+v", p)
	}
	checkQueries("epoch 2 (after drain)")

	// No epoch skipped or repeated.
	hist := holder.History()
	for i := 1; i < len(hist); i++ {
		if hist[i] != hist[i-1]+1 {
			t.Fatalf("epoch history %v is not consecutive", hist)
		}
	}

	// Elastic operations without a holder fail loudly.
	static := newEngine(t, "hashmap", 2, 1)
	if _, err := static.Join(1, ingest.MigrationConfig{}); err == nil {
		t.Fatal("Join on a static engine succeeded")
	}
	if err := static.AbortMigration(); err == nil {
		t.Fatal("AbortMigration on a static engine succeeded")
	}
	if _, resumed, err := e.ResumeMigration(ingest.MigrationConfig{}); err != nil || resumed {
		t.Fatalf("quiescent resume: resumed=%v err=%v", resumed, err)
	}
}
